/**
 * @file
 * Extension experiment: radix vs hashed page-table formats.
 *
 * The paper's Discussion: overhead scales with log(footprint) because
 * the page table is a radix *tree*; "alternative page table data
 * structures that do not introduce a log M overhead are deserving of
 * further study." This bench drives both formats with the same
 * locality-profiled miss stream at growing footprints: radix walks get
 * longer and slower as the upper levels fall out of the MMU caches and
 * PTEs cool in the hierarchy, while hashed walks stay at ~1 access —
 * but lose the radix format's 512-pages-per-leaf-line clustering.
 */

#include <iostream>

#include "bench/common.hh"
#include "mmu/paging_structure_cache.hh"
#include "mmu/walker.hh"
#include "util/csv.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "vm/hashed_page_table.hh"
#include "workloads/locality.hh"

using namespace atscale;
using namespace atscale::benchx;

namespace
{

struct FormatStats
{
    double accessesPerWalk = 0;
    double cyclesPerWalk = 0;
};

/** Walk `walks` locality-drawn pages of an n-page footprint. */
void
measureFormats(std::uint64_t pages, Count walks, FormatStats &radix,
               FormatStats &hashed)
{
    const LocalityProfile profile{0.3, 0.3, 0.8, 1.0, 8192};

    // Radix setup.
    PhysicalMemory mem_r;
    FrameAllocator alloc_r(768ull << 30);
    CacheHierarchy hierarchy_r;
    PageTable radix_table(mem_r, alloc_r);
    PagingStructureCaches pscs;
    PageWalker walker(mem_r, hierarchy_r, pscs);

    // Hashed setup.
    PhysicalMemory mem_h;
    FrameAllocator alloc_h(768ull << 30);
    CacheHierarchy hierarchy_h;
    HashedPageTable hashed_table(mem_h, alloc_h, pages);

    // Identical population (map on first touch) and identical draws.
    Rng rng_r(9), rng_h(9);
    std::vector<bool> mapped(pages, false);
    Cycles radix_cycles = 0, hashed_cycles = 0;
    Count radix_accesses = 0, hashed_accesses = 0;
    std::uint64_t cursor = 0;

    for (Count i = 0; i < walks; ++i) {
        cursor = (cursor + 1) % pages;
        std::uint64_t page = drawLocal(rng_r, cursor, pages, profile);
        (void)rng_h.next(); // keep the generators in lockstep (unused)
        Addr vaddr = (1ull << 30) + (page << pageShift4K);
        if (!mapped[page]) {
            mapped[page] = true;
            radix_table.map(vaddr, alloc_r.allocate(pageSize4K),
                            PageSize::Size4K);
            hashed_table.map(vaddr, alloc_h.allocate(pageSize4K));
        }
        WalkResult r = walker.walk(vaddr, radix_table);
        radix_cycles += r.cycles;
        radix_accesses += r.ptwAccesses;
        HashedWalkResult h = hashed_table.walk(vaddr, hierarchy_h);
        hashed_cycles += h.cycles;
        hashed_accesses += h.accesses;
    }

    radix.accessesPerWalk =
        static_cast<double>(radix_accesses) / static_cast<double>(walks);
    radix.cyclesPerWalk =
        static_cast<double>(radix_cycles) / static_cast<double>(walks);
    hashed.accessesPerWalk =
        static_cast<double>(hashed_accesses) / static_cast<double>(walks);
    hashed.cyclesPerWalk =
        static_cast<double>(hashed_cycles) / static_cast<double>(walks);
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const Count walks = quick() ? 200'000 : 500'000;

    TablePrinter table("Radix vs hashed page table: cost per walk on the "
                       "same miss stream");
    table.header({"footprint", "radix acc/walk", "radix cyc/walk",
                  "hashed acc/walk", "hashed cyc/walk"});
    CsvWriter csv(outputPath("ablation_page_table.csv"));
    csv.rowv("footprint_bytes", "radix_acc", "radix_cyc", "hashed_acc",
             "hashed_cyc");

    // Each footprint's format comparison is task-local (own tables,
    // memories, RNGs); run them on the engine pool, emit in order.
    const std::uint64_t gibs[] = {1ull, 8ull, 64ull, 512ull};
    std::vector<FormatStats> radixes(std::size(gibs));
    std::vector<FormatStats> hasheds(std::size(gibs));
    SweepEngine engine;
    engine.forEachTask(std::size(gibs), [&](std::size_t i) {
        std::uint64_t pages = (gibs[i] << 30) >> pageShift4K;
        measureFormats(pages, walks, radixes[i], hasheds[i]);
    });

    double first_radix = 0, last_radix = 0;
    double first_hashed = 0, last_hashed = 0;
    bool first = true;
    for (std::size_t i = 0; i < std::size(gibs); ++i) {
        const std::uint64_t gib = gibs[i];
        const FormatStats &radix = radixes[i];
        const FormatStats &hashed = hasheds[i];
        table.rowv(fmtBytes(gib << 30), fmtDouble(radix.accessesPerWalk, 3),
                   fmtDouble(radix.cyclesPerWalk, 1),
                   fmtDouble(hashed.accessesPerWalk, 3),
                   fmtDouble(hashed.cyclesPerWalk, 1));
        csv.rowv(gib << 30, radix.accessesPerWalk, radix.cyclesPerWalk,
                 hashed.accessesPerWalk, hashed.cyclesPerWalk);
        if (first) {
            first_radix = radix.cyclesPerWalk;
            first_hashed = hashed.cyclesPerWalk;
            first = false;
        }
        last_radix = radix.cyclesPerWalk;
        last_hashed = hashed.cyclesPerWalk;
    }
    table.print(std::cout);

    std::cout << "\nWalk-cost growth over the sweep: radix "
              << fmtDouble(last_radix / first_radix, 2) << "x, hashed "
              << fmtDouble(last_hashed / first_hashed, 2)
              << "x  (the radix tree's log M component vs the hash "
                 "table's flat ~1 access — the trade-off the paper's "
                 "Discussion raises)\n";
    std::cout << "Note the absolute latencies: hashing scatters "
                 "translations, so it forfeits the radix leaf's "
                 "8-adjacent-PTEs-per-line clustering and the MMU caches "
                 "— flat asymptotics, worse constants. This is why "
                 "hashed formats need their own translation caching to "
                 "win (cf. Elastic Cuckoo page tables).\n";
    return 0;
}
