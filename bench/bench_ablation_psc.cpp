/**
 * @file
 * Ablation: paging-structure caches on vs off vs resized.
 *
 * DESIGN.md calls the PSC skip semantics out as a key design decision:
 * without MMU caches every 4K walk takes 4 PTE loads; the default
 * (PML4E:4 / PDPTE:4 / PDE:32) should keep the paper's observed 1-2
 * accesses per walk at moderate footprints.
 */

#include <iostream>

#include "bench/common.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    RunSpec base = baseRunConfig();
    base.workload = "pr-urand";
    base.footprintBytes = quick() ? 4ull << 30 : 32ull << 30;

    struct Variant
    {
        const char *name;
        const char *tag;
        PscParams psc;
    };
    const Variant variants[] = {
        {"PSC off", "pscoff", {4, 4, 32, false}},
        {"PDE only x8", "pscpde8", {0, 0, 8, true}},
        {"default (4/4/32)", "pscdef", {4, 4, 32, true}},
        {"oversized (16/16/128)", "pscbig", {16, 16, 128, true}},
    };

    // Each variant changes the platform, so each carries its own
    // platformTag — distinct cache entries, no single-flight collapse.
    std::vector<SweepJob> jobs;
    for (const Variant &v : variants) {
        SweepJob job;
        job.spec = base;
        job.spec.platformTag = v.tag;
        job.params.mmu.psc = v.psc;
        jobs.push_back(std::move(job));
    }
    SweepEngine engine;
    std::vector<RunResult> results = engine.run(jobs);

    TablePrinter table("Ablation: paging-structure caches (pr-urand, " +
                       fmtBytes(base.footprintBytes) + ", 4K pages)");
    table.header({"variant", "PTW acc/walk", "WCPI", "CPI",
                  "PSC hit rate"});
    CsvWriter csv(outputPath("ablation_psc.csv"));
    csv.rowv("variant", "ptw_accesses_per_walk", "wcpi", "cpi");

    for (std::size_t i = 0; i < results.size(); ++i) {
        const Variant &v = variants[i];
        const RunResult &result = results[i];
        WcpiTerms terms = wcpiTerms(result.counters);
        table.rowv(v.name, fmtDouble(terms.ptwAccessesPerWalk, 3),
                   fmtDouble(terms.wcpi(), 4), fmtDouble(result.cpi(), 3),
                   v.psc.enabled ? "on" : "off");
        csv.rowv(v.name, terms.ptwAccessesPerWalk, terms.wcpi(),
                 result.cpi());
    }
    table.print(std::cout);
    std::cout << "\nExpected: ~4 accesses/walk with the PSCs off, 1-2 with "
                 "them on (Barr et al. skip semantics); WCPI and CPI track "
                 "accordingly.\n";
    return 0;
}
