/**
 * @file
 * Ablation: speculation aggressiveness vs walk outcomes.
 *
 * Turning misprediction-driven wrong-path execution and machine clears
 * off isolates their contribution to initiated walks (Table VI): with no
 * speculation every initiated walk should retire.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/platform.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;
using namespace atscale::benchx;

namespace
{

WalkOutcomes
runVariant(const std::string &name, std::uint64_t footprint,
           bool speculation, double clear_coef, Count refs)
{
    auto workload = createWorkload(name);
    WorkloadTraits traits = workload->traits();
    PlatformParams params;
    params.core.machineClearCoef = clear_coef;
    if (!speculation)
        traits.mispredictRate = 0.0;

    Platform platform(params, PageSize::Size4K, traits, 7);
    WorkloadConfig config;
    config.footprintBytes = footprint;
    auto stream = workload->instantiate(platform.space, config);
    platform.core.run(*stream, refs / 4); // warm up
    platform.core.resetCounters();
    platform.core.run(*stream, refs);
    return walkOutcomes(platform.core.counters());
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::uint64_t footprint = quick() ? 4ull << 30 : 32ull << 30;
    const Count refs = quick() ? 400'000 : 1'200'000;

    TablePrinter table("Ablation: speculation vs walk outcomes (bc-urand, " +
                       fmtBytes(footprint) + ", 4K pages)");
    table.header({"variant", "initiated", "retired frac", "wrong-path frac",
                  "aborted frac"});
    CsvWriter csv(outputPath("ablation_speculation.csv"));
    csv.rowv("variant", "initiated", "retired_frac", "wrong_path_frac",
             "aborted_frac");

    struct Variant
    {
        const char *name;
        bool speculation;
        double clearCoef;
    };
    const Variant variants[] = {
        {"no speculation, no clears", false, 0.0},
        {"clears only", false, 2e-4},
        {"speculation only", true, 0.0},
        {"full (default)", true, 2e-4},
    };

    // The variants mutate workload traits, so they are not RunSpec-shaped;
    // run them as opaque engine tasks, collect by index, emit in order.
    std::vector<WalkOutcomes> outcomes(std::size(variants));
    SweepEngine engine;
    engine.forEachTask(outcomes.size(), [&](std::size_t i) {
        outcomes[i] = runVariant("bc-urand", footprint,
                                 variants[i].speculation,
                                 variants[i].clearCoef, refs);
    });

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Variant &v = variants[i];
        const WalkOutcomes &o = outcomes[i];
        double retired = 1.0 - o.nonRetiredFraction();
        table.rowv(v.name, o.initiated, fmtDouble(retired, 3),
                   fmtDouble(o.wrongPathFraction(), 3),
                   fmtDouble(o.abortedFraction(), 3));
        csv.rowv(v.name, o.initiated, retired, o.wrongPathFraction(),
                 o.abortedFraction());
    }
    table.print(std::cout);
    std::cout << "\nExpected: without speculation and clears, every "
                 "initiated walk retires; mispredictions add wrong-path "
                 "walks, clears add aborted walks.\n";
    return 0;
}
