/**
 * @file
 * Ablation: second-level TLB capacity sweep — and the cleanest
 * demonstration of the paper's TLB filtering effect.
 *
 * The STLB's reach determines where each workload's miss-rate cliff
 * falls. Holding the workload and footprint fixed and growing the STLB
 * isolates the filtering effect (Section V-C): higher TLB hit rates
 * strip the dense, reuse-heavy part of the access pattern out of the
 * miss stream, so the MMU caches hit less (more PTW accesses per walk)
 * and PTEs sit colder in the data hierarchy (more cycles per PTW
 * access) — higher TLB hit rates cause longer page table walks.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    RunSpec base = baseRunConfig();
    base.workload = "bfs-urand";
    base.footprintBytes = quick() ? 4ull << 30 : 32ull << 30;

    TablePrinter table("Ablation: STLB capacity (bfs-urand, " +
                       fmtBytes(base.footprintBytes) + ", 4K pages)");
    table.header({"STLB entries", "TLB miss/access", "PTW acc/walk",
                  "cyc/PTW acc", "WCPI", "CPI"});
    CsvWriter csv(outputPath("ablation_tlb.csv"));
    csv.rowv("stlb_entries", "miss_per_access", "ptw_acc_per_walk",
             "cycles_per_ptw_access", "wcpi", "cpi");

    // Declare all variants as jobs; platformTag keeps each variant's
    // cache entry (and single-flight identity) distinct.
    const std::uint32_t set_counts[] = {16u, 64u, 128u, 512u, 2048u};
    std::vector<SweepJob> jobs;
    for (std::uint32_t sets : set_counts) {
        SweepJob job;
        job.spec = base;
        job.spec.platformTag = "stlb" + std::to_string(sets * 8);
        job.params.mmu.tlb.l2.sets = sets; // x 8 ways
        jobs.push_back(std::move(job));
    }
    SweepEngine engine;
    std::vector<RunResult> results = engine.run(jobs);

    std::vector<double> hit_rate, acc_per_walk;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &result = results[i];
        std::uint32_t sets = set_counts[i];
        WcpiTerms terms = wcpiTerms(result.counters);
        table.rowv(sets * 8, fmtDouble(terms.tlbMissesPerAccess, 4),
                   fmtDouble(terms.ptwAccessesPerWalk, 3),
                   fmtDouble(terms.walkCyclesPerPtwAccess, 1),
                   fmtDouble(terms.wcpi(), 4), fmtDouble(result.cpi(), 3));
        csv.rowv(sets * 8, terms.tlbMissesPerAccess,
                 terms.ptwAccessesPerWalk, terms.walkCyclesPerPtwAccess,
                 terms.wcpi(), result.cpi());
        hit_rate.push_back(1.0 - terms.tlbMissesPerAccess);
        acc_per_walk.push_back(terms.ptwAccessesPerWalk);
    }
    table.print(std::cout);
    std::cout << "\nTLB filtering effect: Pearson(TLB hit rate, PTW "
                 "accesses/walk) = "
              << fmtDouble(pearson(hit_rate, acc_per_walk), 3)
              << "  (paper Section V-C: positive — higher hit rates mean "
                 "longer walks, because the TLB filters the dense part of "
                 "the pattern away from the MMU caches)\n";
    return 0;
}
