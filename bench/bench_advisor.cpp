/**
 * @file
 * Extension experiment: the paper's proposed WCPI-guided hugepage policy
 * in action.
 *
 * For each workload at a fixed footprint: run with 4 KiB backing while
 * the advisor samples WCPI in instruction windows; when it recommends
 * promotion, re-run with 2 MiB backing (the khugepaged analogue). Report
 * the runtime of the adaptive policy (including the pre-promotion phase)
 * against always-4K and the static best.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/hugepage_advisor.hh"
#include "core/platform.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;
using namespace atscale::benchx;

namespace
{

struct PolicyOutcome
{
    HugepageAdvice finalAdvice = HugepageAdvice::Keep4K;
    Cycles adaptiveCycles = 0;
    Cycles cycles4k = 0;
    Cycles cycles2m = 0;
    double peakWindowWcpi = 0;
};

PolicyOutcome
runPolicy(const std::string &name, std::uint64_t footprint, Count refs)
{
    auto make_platform = [&](PageSize backing) {
        auto workload = createWorkload(name);
        auto platform = std::make_unique<Platform>(
            PlatformParams{}, backing, workload->traits(), 5);
        WorkloadConfig config;
        config.footprintBytes = footprint;
        auto stream = workload->instantiate(platform->space, config);
        return std::pair{std::move(platform), std::move(stream)};
    };

    PolicyOutcome outcome;

    // Static baselines.
    {
        auto [p4, s4] = make_platform(PageSize::Size4K);
        p4->core.run(*s4, refs);
        outcome.cycles4k = p4->core.cycles();
    }
    {
        auto [p2, s2] = make_platform(PageSize::Size2M);
        p2->core.run(*s2, refs);
        outcome.cycles2m = p2->core.cycles();
    }

    // Adaptive: start on 4K, promote when the advisor says so.
    auto [p4, s4] = make_platform(PageSize::Size4K);
    HugepageAdvisor advisor;
    const Count slice = refs / 40;
    Count executed = 0;
    while (executed < refs) {
        p4->core.run(*s4, slice);
        executed += slice;
        if (advisor.observe(p4->core.counters()) ==
            HugepageAdvice::Promote2M) {
            break;
        }
    }
    outcome.adaptiveCycles = p4->core.cycles();
    outcome.finalAdvice = advisor.advice();
    for (double w : advisor.windowWcpi())
        outcome.peakWindowWcpi = std::max(outcome.peakWindowWcpi, w);

    if (executed < refs) {
        // Promotion: the remaining work runs 2M-backed (fresh platform,
        // warmed by its own first slice, as after a remap + TLB flush).
        auto [p2, s2] = make_platform(PageSize::Size2M);
        p2->core.run(*s2, refs - executed);
        outcome.adaptiveCycles += p2->core.cycles();
    }
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::uint64_t footprint = quick() ? 4ull << 30 : 16ull << 30;
    const Count refs = quick() ? 600'000 : 1'600'000;

    TablePrinter table("WCPI-guided hugepage promotion @ " +
                       fmtBytes(footprint));
    table.header({"workload", "advice", "peak wWCPI", "4K cycles",
                  "2M cycles", "adaptive", "adaptive vs 4K"});
    CsvWriter csv(outputPath("advisor.csv"));
    csv.rowv("workload", "advice", "peak_window_wcpi", "cycles_4k",
             "cycles_2m", "cycles_adaptive");

    // The adaptive policy is a stateful slice loop, not a RunSpec, so
    // each workload's policy run is an opaque engine task; emit after.
    const std::vector<std::string> names = workloadNames();
    std::vector<PolicyOutcome> outcomes(names.size());
    SweepEngine engine;
    engine.forEachTask(names.size(), [&](std::size_t i) {
        outcomes[i] = runPolicy(names[i], footprint, refs);
    });

    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const PolicyOutcome &o = outcomes[i];
        double speedup = static_cast<double>(o.cycles4k) /
                         static_cast<double>(o.adaptiveCycles);
        table.rowv(name,
                   o.finalAdvice == HugepageAdvice::Promote2M ? "promote"
                                                              : "keep 4K",
                   fmtDouble(o.peakWindowWcpi, 4), o.cycles4k, o.cycles2m,
                   o.adaptiveCycles, fmtDouble(speedup, 2) + "x");
        csv.rowv(name,
                 o.finalAdvice == HugepageAdvice::Promote2M ? "promote"
                                                            : "keep4k",
                 o.peakWindowWcpi, o.cycles4k, o.cycles2m,
                 o.adaptiveCycles);
    }
    table.print(std::cout);
    std::cout << "\nExpected: AT-intensive workloads promote early and "
                 "recover most of the static-2M win; streamcluster-like "
                 "workloads with low WCPI stay on 4K at no cost.\n";
    return 0;
}
