/**
 * @file
 * Figure 1: relative AT overhead vs memory footprint, all thirteen
 * workloads. The paper's headline inter-workload view: a positive trend
 * with large per-workload variation.
 */

#include <iostream>

#include <cmath>
#include <utility>
#include <vector>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    // --jobs-dry-run: print the expanded job list (workload x footprint
    // x page size) with each spec's cache status and the planned lane
    // grouping, without executing.
    bool dry_run = false;
    for (int i = 1; i < argc; ++i)
        dry_run = dry_run || std::string(argv[i]) == "--jobs-dry-run";
    if (dry_run) {
        SweepEngine engine;
        auto jobs = overheadSweepJobs(workloadNames(), footprints(),
                                      baseRunConfig());
        auto entries = engine.plan(jobs);
        std::size_t cached = 0, duplicates = 0;
        for (const SweepPlanEntry &entry : entries) {
            const char *status = entry.duplicate ? "duplicate"
                                 : entry.cached  ? "cached"
                                                 : "pending";
            std::cout << entry.spec.describe() << "  [" << status << "]\n";
            cached += entry.cached && !entry.duplicate;
            duplicates += entry.duplicate;
        }
        // Planned lockstep lane groups: pending jobs sharing a stream
        // identity execute over one shared generator (empty with
        // --no-lanes or a fully cached sweep).
        std::vector<std::pair<std::string, std::vector<std::size_t>>>
            groups;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].laneGroup.empty())
                continue;
            auto it = groups.begin();
            for (; it != groups.end(); ++it)
                if (it->first == entries[i].laneGroup)
                    break;
            if (it == groups.end())
                it = groups.emplace(groups.end(), entries[i].laneGroup,
                                    std::vector<std::size_t>{});
            it->second.push_back(i);
        }
        if (!groups.empty())
            std::cout << "\nplanned lane groups:\n";
        for (const auto &[key, members] : groups) {
            std::cout << "  " << key << "  (" << members.size()
                      << " lane" << (members.size() == 1 ? "" : "s")
                      << ")\n";
            for (std::size_t i : members)
                std::cout << "    - " << entries[i].spec.describe()
                          << '\n';
        }
        std::cout << jobs.size() << " jobs (" << jobs.size() - duplicates
                  << " unique, " << cached << " cached, " << groups.size()
                  << " lane groups) on " << engine.threads()
                  << " thread(s)\n";
        return 0;
    }

    auto sweeps = sweepWorkloads(workloadNames(), footprints(),
                                 baseRunConfig());

    ScatterChart chart("Fig 1: Relative AT overhead vs memory footprint",
                       "footprint (KB)", "relative AT overhead");
    chart.logX(true);
    CsvWriter csv(outputPath("fig01_overhead_vs_footprint.csv"));
    csv.rowv("workload", "footprint_bytes", "footprint_kb",
             "relative_overhead", "cycles_4k", "cycles_2m", "cycles_1g");

    TablePrinter table("Fig 1 data: relative AT overhead by footprint");
    table.header({"workload", "footprint", "rel. overhead"});

    int series = 0;
    for (const WorkloadSweep &sweep : sweeps) {
        chart.addSeries(sweep.workload);
        for (const OverheadPoint &p : sweep.points) {
            chart.point(series, footprintKb(p.footprintBytes),
                        p.relativeOverhead());
            csv.rowv(p.workload, p.footprintBytes,
                     footprintKb(p.footprintBytes),
                     p.relativeOverhead(), p.run4k.cycles(),
                     p.run2m.cycles(), p.run1g.cycles());
            table.rowv(p.workload, fmtBytes(p.footprintBytes),
                       fmtDouble(p.relativeOverhead(), 3));
        }
        ++series;
    }

    chart.print(std::cout);
    std::cout << '\n';
    table.print(std::cout);

    // Paper check: positive inter-workload correlation with large spread.
    std::vector<double> lg, overhead;
    for (const WorkloadSweep &sweep : sweeps) {
        for (const OverheadPoint &p : sweep.points) {
            lg.push_back(std::log10(footprintKb(p.footprintBytes)));
            overhead.push_back(p.relativeOverhead());
        }
    }
    std::cout << "\nInter-workload Pearson(log10 footprint, overhead) = "
              << fmtDouble(pearson(lg, overhead), 3)
              << "  (paper: positive, with large variation)\n";
    return 0;
}
