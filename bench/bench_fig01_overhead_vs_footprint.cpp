/**
 * @file
 * Figure 1: relative AT overhead vs memory footprint, all thirteen
 * workloads. The paper's headline inter-workload view: a positive trend
 * with large per-workload variation.
 */

#include <iostream>

#include <cmath>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    // --jobs-dry-run: print the expanded job list (workload x footprint
    // x page size) with each spec's cache status, without executing.
    bool dry_run = false;
    for (int i = 1; i < argc; ++i)
        dry_run = dry_run || std::string(argv[i]) == "--jobs-dry-run";
    if (dry_run) {
        SweepEngine engine;
        auto jobs = overheadSweepJobs(workloadNames(), footprints(),
                                      baseRunConfig());
        std::size_t cached = 0, duplicates = 0;
        for (const SweepPlanEntry &entry : engine.plan(jobs)) {
            const char *status = entry.duplicate ? "duplicate"
                                 : entry.cached  ? "cached"
                                                 : "pending";
            std::cout << entry.spec.describe() << "  [" << status << "]\n";
            cached += entry.cached && !entry.duplicate;
            duplicates += entry.duplicate;
        }
        std::cout << jobs.size() << " jobs (" << jobs.size() - duplicates
                  << " unique, " << cached << " cached) on "
                  << engine.threads() << " thread(s)\n";
        return 0;
    }

    auto sweeps = sweepWorkloads(workloadNames(), footprints(),
                                 baseRunConfig());

    ScatterChart chart("Fig 1: Relative AT overhead vs memory footprint",
                       "footprint (KB)", "relative AT overhead");
    chart.logX(true);
    CsvWriter csv(outputPath("fig01_overhead_vs_footprint.csv"));
    csv.rowv("workload", "footprint_bytes", "footprint_kb",
             "relative_overhead", "cycles_4k", "cycles_2m", "cycles_1g");

    TablePrinter table("Fig 1 data: relative AT overhead by footprint");
    table.header({"workload", "footprint", "rel. overhead"});

    int series = 0;
    for (const WorkloadSweep &sweep : sweeps) {
        chart.addSeries(sweep.workload);
        for (const OverheadPoint &p : sweep.points) {
            chart.point(series, footprintKb(p.footprintBytes),
                        p.relativeOverhead());
            csv.rowv(p.workload, p.footprintBytes,
                     footprintKb(p.footprintBytes),
                     p.relativeOverhead(), p.run4k.cycles(),
                     p.run2m.cycles(), p.run1g.cycles());
            table.rowv(p.workload, fmtBytes(p.footprintBytes),
                       fmtDouble(p.relativeOverhead(), 3));
        }
        ++series;
    }

    chart.print(std::cout);
    std::cout << '\n';
    table.print(std::cout);

    // Paper check: positive inter-workload correlation with large spread.
    std::vector<double> lg, overhead;
    for (const WorkloadSweep &sweep : sweeps) {
        for (const OverheadPoint &p : sweep.points) {
            lg.push_back(std::log10(footprintKb(p.footprintBytes)));
            overhead.push_back(p.relativeOverhead());
        }
    }
    std::cout << "\nInter-workload Pearson(log10 footprint, overhead) = "
              << fmtDouble(pearson(lg, overhead), 3)
              << "  (paper: positive, with large variation)\n";
    return 0;
}
