/**
 * @file
 * Figure 2: relative AT overhead vs memory footprint for cc-urand, with
 * the log-linear fit (relative overhead ~ beta0 + beta1 log10 M) that
 * motivates the paper's Table IV regression model.
 */

#include <cmath>
#include <iostream>

#include "bench/common.hh"
#include "core/regression.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    WorkloadSweep sweep = sweepWorkload("cc-urand", footprints(),
                                        baseRunConfig());

    std::vector<double> lg, overhead;
    CsvWriter csv(outputPath("fig02_cc_urand.csv"));
    csv.rowv("footprint_kb", "relative_overhead", "fit");

    ScatterChart chart("Fig 2: Relative AT overhead vs footprint (cc-urand)",
                       "footprint (KB)", "relative AT overhead");
    chart.logX(true);
    chart.addSeries("measured");
    chart.addSeries("log-linear fit");

    for (const OverheadPoint &p : sweep.points) {
        double kb = footprintKb(p.footprintBytes);
        lg.push_back(std::log10(kb));
        overhead.push_back(p.relativeOverhead());
        chart.point(0, kb, p.relativeOverhead());
    }

    OlsFit fit = fitOls(lg, overhead);
    for (size_t i = 0; i < lg.size(); ++i) {
        double kb = std::pow(10.0, lg[i]);
        chart.point(1, kb, fit.predict(lg[i]));
        csv.rowv(kb, overhead[i], fit.predict(lg[i]));
    }
    chart.print(std::cout);

    TablePrinter table("\nLog-linear model for cc-urand "
                       "(paper Table IV row: const -0.695, slope 0.135, "
                       "adj R^2 0.973)");
    table.header({"const", "log10(M) coeff", "adj. R^2"});
    table.rowv(fmtDouble(fit.intercept), fmtDouble(fit.slope),
               fmtDouble(fit.adjustedR2));
    table.print(std::cout);

    std::cout << "\nInterpretation: a 10x footprint increase adds "
              << fmtDouble(fit.slope * 100, 1)
              << "% relative AT overhead (paper: ~13% averaged over "
                 "well-correlated workloads).\n";
    return 0;
}
