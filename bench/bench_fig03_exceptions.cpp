/**
 * @file
 * Figure 3: the four workloads with weaker log-linear correlation —
 * mcf-rand (convex, explosive growth), memcached-uniform (hit-rate-driven
 * nonlinearity), streamcluster-rand (footprint-uncorrelated scatter), and
 * tc-kron (levels off thanks to the orientation optimization).
 */

#include <cmath>
#include <iostream>

#include "bench/common.hh"
#include "core/regression.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::vector<std::string> exceptions = {
        "mcf-rand", "memcached-uniform", "streamcluster-rand", "tc-kron"};

    CsvWriter csv(outputPath("fig03_exceptions.csv"));
    csv.rowv("workload", "footprint_kb", "relative_overhead");

    TablePrinter table("Fig 3 fits: the paper's weakly log-linear four");
    table.header({"workload", "const", "log10(M)", "adj. R^2",
                  "paper adj. R^2"});
    const char *paper_r2[] = {"0.667", "0.580", "0.122", "0.627"};

    int series = 0;
    for (const std::string &name : exceptions) {
        WorkloadSweep sweep = sweepWorkload(name, footprints(),
                                            baseRunConfig());
        ScatterChart chart("Fig 3: " + name, "footprint (KB)",
                           "relative AT overhead");
        chart.logX(true);
        chart.addSeries(name);

        std::vector<double> lg, overhead;
        for (const OverheadPoint &p : sweep.points) {
            double kb = footprintKb(p.footprintBytes);
            chart.point(0, kb, p.relativeOverhead());
            csv.rowv(name, kb, p.relativeOverhead());
            lg.push_back(std::log10(kb));
            overhead.push_back(p.relativeOverhead());
        }
        chart.print(std::cout);
        std::cout << '\n';

        OlsFit fit = fitOls(lg, overhead);
        table.rowv(name, fmtDouble(fit.intercept), fmtDouble(fit.slope),
                   fmtDouble(fit.adjustedR2), paper_r2[series]);
        ++series;
    }
    table.print(std::cout);
    std::cout << "\nExpected shapes: mcf convex-increasing; memcached "
                 "nonlinear; streamcluster uncorrelated; tc-kron rises "
                 "then levels off.\n";
    return 0;
}
