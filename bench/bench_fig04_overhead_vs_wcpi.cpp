/**
 * @file
 * Figure 4: relative AT overhead vs walk cycles per instruction across
 * all workloads (AT-sensitive points only, as in the paper).
 */

#include <iostream>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "perf/derived.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    auto sweeps = sweepWorkloads(workloadNames(), footprints(),
                                 baseRunConfig());

    ScatterChart chart("Fig 4: relative AT overhead vs WCPI (all workloads)",
                       "walk cycles per instruction", "relative AT overhead");
    CsvWriter csv(outputPath("fig04_overhead_vs_wcpi.csv"));
    csv.rowv("workload", "wcpi", "relative_overhead");

    std::vector<double> all_wcpi, all_overhead;
    int series = 0;
    for (const WorkloadSweep &sweep : sweeps) {
        chart.addSeries(sweep.workload);
        for (const OverheadPoint &p : sweep.points) {
            if (!p.atSensitive())
                continue;
            double wcpi = wcpiTerms(p.run4k.counters).wcpi();
            chart.point(series, wcpi, p.relativeOverhead());
            csv.rowv(sweep.workload, wcpi, p.relativeOverhead());
            all_wcpi.push_back(wcpi);
            all_overhead.push_back(p.relativeOverhead());
        }
        ++series;
    }
    chart.print(std::cout);

    std::cout << "\nPearson(WCPI, overhead) = "
              << fmtDouble(pearson(all_wcpi, all_overhead), 3)
              << ", Spearman = "
              << fmtDouble(spearman(all_wcpi, all_overhead), 3)
              << "  (paper: 0.567 / 0.768 — nonlinear but strongly "
                 "monotone)\n";
    return 0;
}
