/**
 * @file
 * Figure 5: AT overhead vs WCPI for bc-urand, each point labelled by its
 * memory footprint — the paper's intra-workload view showing a monotone
 * but nonlinear relationship.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "perf/derived.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    ObsOptions obs_options = obsFromArgs(argc, argv);
    WorkloadSweep sweep = sweepWorkload("bc-urand", footprints(),
                                        baseRunConfig());

    ScatterChart chart("Fig 5: overhead vs WCPI for bc-urand",
                       "walk cycles per instruction",
                       "relative AT overhead");
    chart.addSeries("bc-urand");

    TablePrinter table("Fig 5 points (labelled by footprint)");
    table.header({"footprint", "WCPI", "relative overhead"});
    CsvWriter csv(outputPath("fig05_bc_urand_wcpi.csv"));
    csv.rowv("footprint_bytes", "wcpi", "relative_overhead");

    std::vector<double> wcpis, overheads;
    for (const OverheadPoint &p : sweep.points) {
        double wcpi = wcpiTerms(p.run4k.counters).wcpi();
        chart.point(0, wcpi, p.relativeOverhead());
        table.rowv(fmtBytes(p.footprintBytes), fmtDouble(wcpi, 4),
                   fmtDouble(p.relativeOverhead(), 3));
        csv.rowv(p.footprintBytes, wcpi, p.relativeOverhead());
        wcpis.push_back(wcpi);
        overheads.push_back(p.relativeOverhead());
    }
    chart.print(std::cout);
    std::cout << '\n';
    table.print(std::cout);

    std::cout << "\nSpearman(WCPI, overhead) for bc-urand = "
              << fmtDouble(spearman(wcpis, overheads), 3)
              << "  (paper: monotonically increasing, i.e. ~1.0, with a "
                 "nonlinear shape)\n";

    // With observability flags, re-run the largest sweep point fully
    // instrumented (per-window WCPI series, walk traces, JSON).
    if (obs_options.any() && !sweep.points.empty()) {
        RunConfig config = baseRunConfig();
        config.workload = "bc-urand";
        config.footprintBytes = sweep.points.back().footprintBytes;
        observeRun(config, obs_options);
    }
    return 0;
}
