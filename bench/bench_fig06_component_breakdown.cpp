/**
 * @file
 * Figure 6: component-wise breakdown of WCPI scaling for bfs-urand,
 * mcf-rand, pr-kron, and tc-kron — the five rows of the paper's figure:
 * WCPI, accesses/instruction, TLB misses/access, PTW accesses/walk, and
 * walk cycles/PTW access, each as a function of footprint.
 *
 * This is also where the TLB filtering effect shows: rising TLB miss
 * rates expose more of the access pattern to the MMU caches, pushing
 * PTW accesses per walk *down* (all four workloads except tc-kron).
 */

#include <iostream>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "perf/derived.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::vector<std::string> picks = {"bfs-urand", "mcf-rand",
                                            "pr-kron", "tc-kron"};

    CsvWriter csv(outputPath("fig06_component_breakdown.csv"));
    csv.rowv("workload", "footprint_kb", "wcpi", "accesses_per_instr",
             "tlb_misses_per_access", "ptw_accesses_per_walk",
             "walk_cycles_per_ptw_access");

    for (const std::string &name : picks) {
        WorkloadSweep sweep = sweepWorkload(name, footprints(),
                                            baseRunConfig());

        TablePrinter table("Fig 6 breakdown: " + name + " (4K runs)");
        table.header({"footprint", "WCPI", "acc/instr", "miss/acc",
                      "PTWacc/walk", "cyc/PTWacc"});

        std::vector<double> miss_rate, acc_per_walk;
        for (const OverheadPoint &p : sweep.points) {
            WcpiTerms terms = wcpiTerms(p.run4k.counters);
            table.rowv(fmtBytes(p.footprintBytes),
                       fmtDouble(terms.wcpi(), 4),
                       fmtDouble(terms.accessesPerInstr, 3),
                       fmtDouble(terms.tlbMissesPerAccess, 4),
                       fmtDouble(terms.ptwAccessesPerWalk, 3),
                       fmtDouble(terms.walkCyclesPerPtwAccess, 1));
            csv.rowv(name, footprintKb(p.footprintBytes), terms.wcpi(),
                     terms.accessesPerInstr, terms.tlbMissesPerAccess,
                     terms.ptwAccessesPerWalk,
                     terms.walkCyclesPerPtwAccess);
            miss_rate.push_back(terms.tlbMissesPerAccess);
            acc_per_walk.push_back(terms.ptwAccessesPerWalk);
        }
        table.print(std::cout);

        // Within a footprint sweep the filtering effect competes with
        // PSC reach loss (footprint grows under both curves); report the
        // raw correlation, and see bench_ablation_tlb for the isolated
        // effect at fixed footprint.
        double filter = pearson(miss_rate, acc_per_walk);
        std::cout << "Pearson(miss rate, PTW accesses/walk) across the "
                  << name << " sweep = " << fmtDouble(filter, 3)
                  << "  (confounded by footprint; the isolated filtering "
                     "effect is demonstrated in bench_ablation_tlb)\n\n";
    }
    return 0;
}
