/**
 * @file
 * Figure 7: walk outcome distribution (retired / wrong-path / aborted as
 * fractions of initiated walks) vs memory footprint for bc-urand,
 * streamcluster-rand, and mcf-rand — the paper's "misspeculated and
 * aborted walks reach 57%" result.
 */

#include <algorithm>
#include <iostream>

#include "bench/common.hh"
#include "perf/derived.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::vector<std::string> picks = {"bc-urand", "streamcluster-rand",
                                            "mcf-rand"};

    CsvWriter csv(outputPath("fig07_walk_outcomes.csv"));
    csv.rowv("workload", "footprint_kb", "retired", "wrong_path", "aborted");

    double max_non_retired = 0;
    for (const std::string &name : picks) {
        WorkloadSweep sweep = sweepWorkload(name, footprints(),
                                            baseRunConfig());
        BandChart chart("Fig 7: walk outcomes vs footprint — " + name,
                        "footprint");
        chart.addBand("retired");
        chart.addBand("wrong path");
        chart.addBand("aborted");

        TablePrinter table("Outcome fractions (" + name + ", 4K runs)");
        table.header({"footprint", "retired", "wrong path", "aborted",
                      "non-retired"});

        for (const OverheadPoint &p : sweep.points) {
            WalkOutcomes o = walkOutcomes(p.run4k.counters);
            double retired =
                1.0 - o.wrongPathFraction() - o.abortedFraction();
            chart.column(fmtBytes(p.footprintBytes).substr(0, 5),
                         {retired, o.wrongPathFraction(),
                          o.abortedFraction()});
            table.rowv(fmtBytes(p.footprintBytes), fmtDouble(retired, 3),
                       fmtDouble(o.wrongPathFraction(), 3),
                       fmtDouble(o.abortedFraction(), 3),
                       fmtDouble(o.nonRetiredFraction(), 3));
            csv.rowv(name, footprintKb(p.footprintBytes), retired,
                     o.wrongPathFraction(), o.abortedFraction());
            max_non_retired =
                std::max(max_non_retired, o.nonRetiredFraction());
        }
        chart.print(std::cout);
        std::cout << '\n';
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Maximum wrong-path + aborted fraction observed: "
              << fmtDouble(max_non_retired * 100, 1)
              << "%  (paper: up to 57%, growing with footprint for most "
                 "workloads)\n";
    return 0;
}
