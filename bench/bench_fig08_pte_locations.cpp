/**
 * @file
 * Figure 8: distribution of PTE access location (which cache level the
 * page walker found its PTEs in) as a function of footprint for pr-kron,
 * from the page_walker_loads.* counters.
 */

#include <iostream>

#include "bench/common.hh"
#include "perf/derived.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    WorkloadSweep sweep = sweepWorkload("pr-kron", footprints(),
                                        baseRunConfig());

    BandChart chart("Fig 8: PTE access location vs footprint (pr-kron, 4K)",
                    "footprint");
    chart.addBand("L1");
    chart.addBand("L2");
    chart.addBand("L3");
    chart.addBand("memory");

    TablePrinter table("PTE location fractions (pr-kron, 4K runs)");
    table.header({"footprint", "L1", "L2", "L3", "memory"});
    CsvWriter csv(outputPath("fig08_pte_locations.csv"));
    csv.rowv("footprint_kb", "l1", "l2", "l3", "memory");

    for (const OverheadPoint &p : sweep.points) {
        PteLocations loc = pteLocations(p.run4k.counters);
        chart.column(fmtBytes(p.footprintBytes).substr(0, 5),
                     {loc.l1, loc.l2, loc.l3, loc.memory});
        table.rowv(fmtBytes(p.footprintBytes), fmtDouble(loc.l1, 3),
                   fmtDouble(loc.l2, 3), fmtDouble(loc.l3, 3),
                   fmtDouble(loc.memory, 3));
        csv.rowv(footprintKb(p.footprintBytes), loc.l1, loc.l2, loc.l3,
                 loc.memory);
    }
    chart.print(std::cout);
    std::cout << '\n';
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): PTEs mostly near the core at "
                 "small footprints, drifting toward L3 and a small but "
                 "latency-dominating memory fraction at the largest "
                 "footprints.\n";
    return 0;
}
