/**
 * @file
 * Figure 9: non-correct-path (wrong-path + aborted) walk fraction vs
 * machine clears per instruction, for bc-kron — the paper's evidence
 * that machine clears, not branch mispredictions, track misspeculated
 * walk growth.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "perf/derived.hh"
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    WorkloadSweep sweep = sweepWorkload("bc-kron", footprints(),
                                        baseRunConfig());

    ScatterChart chart("Fig 9: non-correct-path walk fraction vs machine "
                       "clears per kilo-instruction (bc-kron)",
                       "machine clears per kilo-instruction",
                       "wrong-path + aborted fraction");
    chart.addSeries("bc-kron");

    TablePrinter table("Fig 9 data (bc-kron, 4K runs)");
    table.header({"footprint", "clears/kinstr", "non-correct-path",
                  "br misp/kinstr"});
    CsvWriter csv(outputPath("fig09_machine_clears.csv"));
    csv.rowv("footprint_kb", "clears_per_kiloinstr", "non_correct_fraction",
             "mispredicts_per_kiloinstr");

    std::vector<double> clears, fractions, mispredicts;
    for (const OverheadPoint &p : sweep.points) {
        const CounterSet &c = p.run4k.counters;
        double clears_pki = machineClearsPerKiloInstr(c);
        double frac = walkOutcomes(c).nonRetiredFraction();
        double misp_pki =
            1000.0 *
            static_cast<double>(c.get(EventId::BrMispRetiredAllBranches)) /
            static_cast<double>(c.get(EventId::InstRetired));
        chart.point(0, clears_pki, frac);
        table.rowv(fmtBytes(p.footprintBytes), fmtDouble(clears_pki, 4),
                   fmtDouble(frac, 3), fmtDouble(misp_pki, 3));
        csv.rowv(footprintKb(p.footprintBytes), clears_pki, frac, misp_pki);
        clears.push_back(clears_pki);
        fractions.push_back(frac);
        mispredicts.push_back(misp_pki);
    }
    chart.print(std::cout);
    std::cout << '\n';
    table.print(std::cout);

    std::cout << "\nPearson(machine clears/instr, non-correct-path "
                 "fraction) = "
              << fmtDouble(pearson(clears, fractions), 3)
              << "  (paper: clearly positive)\n";
    std::cout << "Pearson(branch mispredicts/instr, non-correct-path "
                 "fraction) = "
              << fmtDouble(pearson(mispredicts, fractions), 3)
              << "  (paper: no clear relationship — mispredict *rate* is "
                 "footprint-independent)\n";
    return 0;
}
