/**
 * @file
 * Figure 10: key address translation metrics for bc-urand with 2 MiB
 * superpages, compared against 4 KiB pages — the paper's "superpages help
 * a lot, but the benefit erodes at very large footprints" result, plus
 * the observation that 2 MiB pages also shrink the wrong-path/aborted
 * walk fraction.
 */

#include <algorithm>
#include <iostream>

#include "bench/common.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    WorkloadSweep sweep = sweepWorkload("bc-urand", footprints(),
                                        baseRunConfig());

    TablePrinter table("Fig 10: bc-urand with 4K vs 2M backing");
    table.header({"footprint", "WCPI 4K", "WCPI 2M", "miss/acc 4K",
                  "miss/acc 2M", "walk cyc 4K", "walk cyc 2M",
                  "non-ret 4K", "non-ret 2M"});
    CsvWriter csv(outputPath("fig10_2mb_pages.csv"));
    csv.rowv("footprint_kb", "wcpi_4k", "wcpi_2m", "miss_per_access_4k",
             "miss_per_access_2m", "walk_cycles_per_walk_4k",
             "walk_cycles_per_walk_2m", "non_retired_4k", "non_retired_2m");

    double last_2m_wcpi = 0, first_2m_wcpi = -1;
    double last_non_ret_2m = 0, last_non_ret_4k = 0;
    for (const OverheadPoint &p : sweep.points) {
        WcpiTerms t4 = wcpiTerms(p.run4k.counters);
        WcpiTerms t2 = wcpiTerms(p.run2m.counters);
        WalkOutcomes o4 = walkOutcomes(p.run4k.counters);
        WalkOutcomes o2 = walkOutcomes(p.run2m.counters);
        double walk4 = t4.ptwAccessesPerWalk * t4.walkCyclesPerPtwAccess;
        double walk2 = t2.ptwAccessesPerWalk * t2.walkCyclesPerPtwAccess;

        table.rowv(fmtBytes(p.footprintBytes), fmtDouble(t4.wcpi(), 4),
                   fmtDouble(t2.wcpi(), 4),
                   fmtDouble(t4.tlbMissesPerAccess, 4),
                   fmtDouble(t2.tlbMissesPerAccess, 4),
                   fmtDouble(walk4, 1), fmtDouble(walk2, 1),
                   fmtDouble(o4.nonRetiredFraction(), 3),
                   fmtDouble(o2.nonRetiredFraction(), 3));
        csv.rowv(footprintKb(p.footprintBytes), t4.wcpi(), t2.wcpi(),
                 t4.tlbMissesPerAccess, t2.tlbMissesPerAccess, walk4, walk2,
                 o4.nonRetiredFraction(), o2.nonRetiredFraction());

        if (first_2m_wcpi < 0)
            first_2m_wcpi = t2.wcpi();
        last_2m_wcpi = t2.wcpi();
        last_non_ret_2m = o2.nonRetiredFraction();
        last_non_ret_4k = o4.nonRetiredFraction();
    }
    table.print(std::cout);

    std::cout << "\n2M WCPI at the smallest vs largest footprint: "
              << fmtDouble(first_2m_wcpi, 4) << " -> "
              << fmtDouble(last_2m_wcpi, 4)
              << "  (paper: rises at very large footprints — the benefit "
                 "starts to expire past ~100GB)\n";
    std::cout << "Wrong-path+aborted fraction at the largest footprint: "
              << "4K " << fmtDouble(last_non_ret_4k * 100, 1) << "% vs 2M "
              << fmtDouble(last_non_ret_2m * 100, 1)
              << "%  (paper: ~50% vs ~20% — superpages reduce "
                 "misspeculated walks)\n";
    return 0;
}
