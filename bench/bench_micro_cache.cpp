/**
 * @file
 * Microbenchmarks (google-benchmark) for the cache substrates: the
 * set-associative array under different policies and geometries, the
 * three-level hierarchy, and the DRAM model.
 */

#include <benchmark/benchmark.h>

#include "bench/gbench_main.hh"
#include "cache/hierarchy.hh"
#include "mem/dram.hh"
#include "util/random.hh"

using namespace atscale;

namespace
{

void
BM_SetAssocAccess(benchmark::State &state)
{
    auto policy = static_cast<ReplPolicy>(state.range(0));
    auto ways = static_cast<std::uint32_t>(state.range(1));
    SetAssocCache cache("bench", {256, ways, policy});
    Rng rng(3);
    for (auto _ : state) {
        std::uint64_t key = rng.below(256 * ways * 2);
        if (!cache.access(key))
            cache.fill(key);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SetAssocAccess)
    ->Args({static_cast<int>(ReplPolicy::Lru), 8})
    ->Args({static_cast<int>(ReplPolicy::TreePlru), 8})
    ->Args({static_cast<int>(ReplPolicy::Random), 8})
    ->Args({static_cast<int>(ReplPolicy::Lru), 20});

void
BM_HierarchySequential(benchmark::State &state)
{
    CacheHierarchy hierarchy;
    PhysAddr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hierarchy.access(addr, AccessKind::Data));
        addr += 64;
        addr &= (64ull << 20) - 1;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchySequential);

void
BM_HierarchyRandom(benchmark::State &state)
{
    CacheHierarchy hierarchy;
    Rng rng(5);
    std::uint64_t span = 1ull << state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hierarchy.access(rng.below(span), AccessKind::Data));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchyRandom)->Arg(20)->Arg(26)->Arg(32);

void
BM_DramAccess(benchmark::State &state)
{
    Dram dram;
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(dram.access(rng.below(1ull << 34)));
}
BENCHMARK(BM_DramAccess);

} // namespace

int
main(int argc, char **argv)
{
    return atscale::benchx::gbenchMain(argc, argv);
}
