/**
 * @file
 * Microbenchmarks (google-benchmark) for the MMU substrates: TLB lookup,
 * paging-structure-cache probe, page-table walks, and end-to-end MMU
 * translation throughput.
 */

#include <benchmark/benchmark.h>

#include "bench/gbench_main.hh"
#include "mmu/mmu.hh"
#include "util/random.hh"

using namespace atscale;

namespace
{

MmuParams
rigParams(bool fastPath)
{
    MmuParams params;
    params.fastPath = fastPath;
    return params;
}

struct MmuRig
{
    explicit MmuRig(bool fastPath = true)
        : alloc(64ull << 30), space(mem, alloc, PageSize::Size4K),
          mmu(space, mem, hierarchy, rigParams(fastPath))
    {
        base = space.mapRegion("data", 4ull << 30);
        // Pre-populate a window of pages.
        for (int i = 0; i < 4096; ++i)
            space.touch(base + static_cast<Addr>(i) * pageSize4K);
    }

    PhysicalMemory mem;
    FrameAllocator alloc;
    CacheHierarchy hierarchy;
    AddressSpace space;
    Mmu mmu;
    Addr base = 0;
};

void
BM_TlbLookupHit(benchmark::State &state)
{
    TlbComplex tlb;
    tlb.install(0x1000, PageSize::Size4K);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(0x1abc));
}
BENCHMARK(BM_TlbLookupHit);

void
BM_TlbLookupMiss(benchmark::State &state)
{
    TlbComplex tlb;
    Addr va = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(va));
        va += pageSize4K;
    }
}
BENCHMARK(BM_TlbLookupMiss);

void
BM_PscProbe(benchmark::State &state)
{
    PagingStructureCaches pscs;
    for (int i = 0; i < 32; ++i)
        pscs.fill(static_cast<Addr>(i) << 21, 1, 0x1000);
    Addr va = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pscs.probe(va, 0x1000));
        va += pageSize2M;
        va &= (64ull << 21) - 1;
    }
}
BENCHMARK(BM_PscProbe);

void
BM_WalkWarm(benchmark::State &state)
{
    MmuRig rig;
    PageWalker &walker = rig.mmu.walker();
    // Warm caches and PSCs.
    for (int i = 0; i < 4096; ++i)
        walker.walk(rig.base + static_cast<Addr>(i) * pageSize4K,
                    rig.space.pageTable());
    int i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(walker.walk(
            rig.base + static_cast<Addr>(i & 4095) * pageSize4K,
            rig.space.pageTable()));
        ++i;
    }
}
BENCHMARK(BM_WalkWarm);

/**
 * A/B pair: identical access pattern with the software fast path on and
 * off, so the fast path's speedup (and any regression of it) is visible
 * directly in one benchmark report. range(0) != 0 enables the fast path.
 */
void
BM_MmuTranslateRandom(benchmark::State &state)
{
    MmuRig rig(state.range(0) != 0);
    Rng rng(1);
    for (auto _ : state) {
        Addr va = rig.base + (rng.below(4096) << pageShift4K);
        benchmark::DoNotOptimize(rig.mmu.translate(va));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MmuTranslateRandom)->ArgName("fastpath")->Arg(1)->Arg(0);

void
BM_MmuTranslateSequential(benchmark::State &state)
{
    MmuRig rig(state.range(0) != 0);
    Addr va = rig.base;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rig.mmu.translate(va));
        va += 64;
        if (va >= rig.base + (4096ull << pageShift4K))
            va = rig.base;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MmuTranslateSequential)->ArgName("fastpath")->Arg(1)->Arg(0);

/**
 * Batch-translate A/B: the same streams as the scalar pair above, pushed
 * through Mmu::translateBatch in 256-reference chunks (the core's fetch
 * granularity). Sequential streams coalesce into equal-page runs (64
 * references per page at cache-line stride), so the per-reference cost
 * collapses to ~1/64 of a scalar fast-path translate; random streams
 * degenerate to scalar-plus-prefetch and bound the overhead of the batch
 * machinery itself. ns/op is per *reference*, directly comparable to the
 * scalar benchmarks.
 */
void
BM_MmuTranslateBatchSequential(benchmark::State &state)
{
    MmuRig rig(state.range(0) != 0);
    // The whole wrap period of the scalar sequential stream (64
    // references per page over 4096 pages), generated once outside the
    // timing: chunk production belongs to the workload generator, and
    // the scalar pair charges only the translate call too. One timed
    // pass = one 256-reference chunk, counted as 256 iterations
    // (KeepRunningBatch), so ns/op stays the per-reference cost.
    std::vector<Addr> stream(4096 * 64);
    Addr va = rig.base;
    for (Addr &slot : stream) {
        slot = va;
        va += 64;
    }
    std::array<MmuResult, 256> results;
    std::size_t at = 0;
    while (state.KeepRunningBatch(256)) {
        rig.mmu.translateBatch(std::span(stream.data() + at, 256), results);
        at = (at + 256) % stream.size();
        benchmark::DoNotOptimize(results.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MmuTranslateBatchSequential)
    ->ArgName("fastpath")->Arg(1)->Arg(0);

void
BM_MmuTranslateBatchRandom(benchmark::State &state)
{
    MmuRig rig(state.range(0) != 0);
    Rng rng(1);
    // A long pre-generated uniform-random ring over the same 4096 pages
    // as the scalar random bench; runs degenerate to length 1 so this
    // bounds the batch machinery's overhead on uncoalescible streams.
    std::vector<Addr> stream(4096 * 64);
    for (Addr &slot : stream)
        slot = rig.base + (rng.below(4096) << pageShift4K);
    std::array<MmuResult, 256> results;
    std::size_t at = 0;
    while (state.KeepRunningBatch(256)) {
        rig.mmu.translateBatch(std::span(stream.data() + at, 256), results);
        at = (at + 256) % stream.size();
        benchmark::DoNotOptimize(results.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MmuTranslateBatchRandom)->ArgName("fastpath")->Arg(1)->Arg(0);

} // namespace

int
main(int argc, char **argv)
{
    return atscale::benchx::gbenchMain(argc, argv);
}
