/**
 * @file
 * Multi-core shared-hierarchy sweep: cores x page size x translation
 * scheme over the multi-tenant KV-server workload (ROADMAP item 1's
 * multi-core leg). Every point runs K tenant streams against one KV
 * store on a SharedSystem — private L1/L2 per core, one shared L3,
 * inter-core TLB shootdowns on slab compactions — and reports the
 * per-tenant CPI, Eq-1 WCPI, and walk-cycle share next to the
 * shootdown traffic, so translation contention on the shared levels is
 * visible per tenant rather than averaged away.
 *
 * Output: a per-tenant table, a CSV, and one machine-readable
 * `[multicore-summary] <point> cpi=<v> wcpi=<v> shootdowns=<n>` line
 * per point for tools/bench/record_bench.py (BENCH_10.json).
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "core/multicore.hh"
#include "mmu/scheme/registry.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    // A compact matrix: the cores axis multiplies simulated work (every
    // core executes the full per-core window), so points stay few.
    std::vector<std::uint32_t> core_counts = {1, 2, 4};
    std::vector<PageSize> page_sizes = {PageSize::Size4K, PageSize::Size2M};
    std::vector<std::string> schemes = schemeNames();
    if (quick()) {
        core_counts = {1, 4};
        page_sizes = {PageSize::Size4K};
        schemes = {"radix"};
    }

    RunConfig base = baseRunConfig();
    base.workload = "kvserver-mix";
    base.footprintBytes = quick() ? 1ull << 24 : 1ull << 27;
    base.tenantMix = "zipfian,scan,churn";
    if (quick()) {
        base.warmupRefs = 10'000;
        base.measureRefs = 40'000;
    } else {
        base.warmupRefs = 100'000;
        base.measureRefs = 300'000;
    }

    TablePrinter table("Multi-tenant KV store on a shared hierarchy: "
                       "per-tenant CPI, WCPI, and walk-cycle share");
    table.header({"cores", "page", "scheme", "tenant", "cpi", "wcpi",
                  "walk-share", "sd-init", "sd-recv", "sd-cycles"});
    CsvWriter csv(outputPath("multicore.csv"));
    csv.rowv("cores", "page_size", "scheme", "tenant", "cpi", "wcpi",
             "walk_cycle_share", "cycles", "instructions",
             "shootdowns_initiated", "shootdowns_received",
             "shootdown_cycles");

    struct Summary
    {
        std::string point;
        double cpi = 0;
        double wcpi = 0;
        Count shootdowns = 0;
    };
    std::vector<Summary> summaries;

    for (std::uint32_t cores : core_counts) {
        for (PageSize page : page_sizes) {
            for (const std::string &scheme : schemes) {
                RunSpec spec = base;
                spec.cores = cores;
                spec.pageSize = page;
                spec.scheme = scheme;
                MulticoreRunResult result = runMulticoreExperiment(spec);

                Summary summary;
                summary.point = "c" + std::to_string(cores) + "_" +
                                pageSizeName(page) + "_" + scheme;
                summary.cpi = result.aggregate.cpi();
                summary.wcpi = wcpiTerms(result.aggregate.counters).wcpi();
                for (std::size_t t = 0; t < result.perTenant.size(); ++t) {
                    const TenantResult &tenant = result.perTenant[t];
                    WcpiTerms terms = wcpiTerms(tenant.counters);
                    double walk_share =
                        tenant.cycles() > 0
                            ? static_cast<double>(
                                  totalWalkCycles(tenant.counters)) /
                                  static_cast<double>(tenant.cycles())
                            : 0.0;
                    table.rowv(cores, pageSizeName(page), scheme, t,
                               fmtDouble(tenant.cpi(), 3),
                               fmtDouble(terms.wcpi(), 4),
                               fmtDouble(walk_share, 4),
                               tenant.shootdownsInitiated,
                               tenant.shootdownsReceived,
                               tenant.shootdownCycles);
                    csv.rowv(cores, pageSizeName(page), scheme, t,
                             tenant.cpi(), terms.wcpi(), walk_share,
                             tenant.cycles(), tenant.instructions(),
                             tenant.shootdownsInitiated,
                             tenant.shootdownsReceived,
                             tenant.shootdownCycles);
                    summary.shootdowns += tenant.shootdownsInitiated;
                }
                summaries.push_back(summary);
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nPer-point aggregates (CPI over summed counters; "
                 "shootdowns = remap-triggered IPIs initiated):\n";
    for (const Summary &summary : summaries) {
        std::cout << "[multicore-summary] " << summary.point
                  << " cpi=" << fmtDouble(summary.cpi, 4)
                  << " wcpi=" << fmtDouble(summary.wcpi, 4)
                  << " shootdowns=" << summary.shootdowns << "\n";
    }
    std::cout << "\nReading the table: tenant 2 (churn) compacts its slab "
                 "8x more often than its neighbours, so its sd-init "
                 "column dominates while everyone pays sd-recv; larger "
                 "pages shrink both the walk share and the page-migration "
                 "rate's footprint in WCPI (docs/MULTICORE.md).\n";
    return 0;
}
