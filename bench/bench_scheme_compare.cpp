/**
 * @file
 * Scheme-comparison sweep: the payoff of the pluggable translation-
 * scheme seam (ROADMAP item 2). Every (workload, footprint) point runs
 * once per registered scheme — radix, hashed, cache_tlb, no_vm — and
 * because RunSpec::laneGroupKey() excludes the scheme, the K variants
 * of one point execute as one lockstep lane group over a single shared
 * reference stream: the schemes are compared on literally the same
 * accesses, not statistically similar ones.
 *
 * Output: the per-point Eq-1 WCPI decomposition side by side (where the
 * hashed table's flat walks, the parked TLB's second chances, and
 * no_vm's empty walk terms are directly visible), a CSV, and one
 * machine-readable `[scheme-summary] <scheme> cpi=<v> wcpi=<v>` line
 * per scheme for tools/bench/record_bench.py.
 */

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "mmu/scheme/registry.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    // A compact matrix: the scheme axis multiplies every point by the
    // registry size, and the point of this bench is the cross-scheme
    // comparison, not footprint resolution (bench_fig01 owns that).
    std::vector<std::string> workloads = {"memcached-uniform", "pr-kron",
                                          "mcf-rand"};
    std::vector<std::uint64_t> footprint_points = {1ull << 26, 1ull << 28};
    if (quick()) {
        workloads = {"memcached-uniform", "mcf-rand"};
        footprint_points = {1ull << 24};
    }
    const std::vector<std::string> &schemes = schemeNames();

    RunConfig base = baseRunConfig();
    if (quick()) {
        base.warmupRefs = 20'000;
        base.measureRefs = 60'000;
    }

    SweepEngine engine;
    std::vector<SweepJob> jobs =
        schemeSweepJobs(workloads, footprint_points, schemes, base);
    std::vector<RunResult> results = engine.run(jobs);

    TablePrinter table("Translation schemes on one shared reference "
                       "stream: CPI and the Eq-1 WCPI decomposition");
    table.header({"workload", "footprint", "scheme", "cpi", "wcpi",
                  "miss/acc", "ptw/walk", "cyc/ptw"});
    CsvWriter csv(outputPath("scheme_compare.csv"));
    csv.rowv("workload", "footprint_bytes", "scheme", "cpi", "wcpi",
             "accesses_per_instr", "tlb_misses_per_access",
             "ptw_accesses_per_walk", "walk_cycles_per_ptw_access",
             "cycles", "instructions");

    // Declared order is workload-major, then footprint, then scheme —
    // so consecutive rows of K results are one lane group's lanes.
    struct Totals
    {
        double cpi = 0;
        double wcpi = 0;
        int points = 0;
    };
    std::map<std::string, Totals> by_scheme;
    for (const RunResult &result : results) {
        const RunSpec &spec = result.spec;
        WcpiTerms terms = wcpiTerms(result.counters);
        table.rowv(spec.workload, fmtBytes(spec.footprintBytes),
                   spec.scheme, fmtDouble(result.cpi(), 3),
                   fmtDouble(terms.wcpi(), 4),
                   fmtDouble(terms.tlbMissesPerAccess, 4),
                   fmtDouble(terms.ptwAccessesPerWalk, 3),
                   fmtDouble(terms.walkCyclesPerPtwAccess, 1));
        csv.rowv(spec.workload, spec.footprintBytes, spec.scheme,
                 result.cpi(), terms.wcpi(), terms.accessesPerInstr,
                 terms.tlbMissesPerAccess, terms.ptwAccessesPerWalk,
                 terms.walkCyclesPerPtwAccess, result.cycles(),
                 result.instructions());
        Totals &totals = by_scheme[spec.scheme];
        totals.cpi += result.cpi();
        totals.wcpi += terms.wcpi();
        ++totals.points;
    }
    table.print(std::cout);

    std::cout << "\nPer-scheme means over " << workloads.size() << "x"
              << footprint_points.size()
              << " (workload, footprint) points — every point's schemes "
                 "ran as lockstep lanes over one stream (lanes shared: "
              << engine.progress().laneShared << "/" << results.size()
              << " jobs):\n";
    // Registry order, not map order, so the lines are stable.
    for (const std::string &scheme : schemes) {
        const Totals &totals = by_scheme[scheme];
        if (totals.points == 0)
            continue;
        std::cout << "[scheme-summary] " << scheme << " cpi="
                  << fmtDouble(totals.cpi / totals.points, 4) << " wcpi="
                  << fmtDouble(totals.wcpi / totals.points, 4) << "\n";
    }
    std::cout << "\nReading the table: no_vm's walk terms are identically "
                 "zero (its software cost lives in CPI alone); hashed "
                 "holds ptw/walk near 1 where radix grows with footprint; "
                 "cache_tlb's park probe adds a PTW access per miss that "
                 "pays off once parked lines out-hit the radix descent "
                 "(docs/TRANSLATION_SCHEMES.md).\n";
    return 0;
}
