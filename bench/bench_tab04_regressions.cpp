/**
 * @file
 * Table IV: per-workload OLS regression of
 *   relative AT overhead = beta0 + beta1 * log10(M) + eps
 * across the footprint sweep, with adjusted R^2, alongside the paper's
 * published coefficients for comparison.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench/common.hh"
#include "core/regression.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;
using namespace atscale::benchx;

namespace
{

struct PaperRow
{
    double constant;
    double slope;
    double adjR2;
};

const std::map<std::string, PaperRow> paperTable4 = {
    {"bc-kron", {-0.497, 0.101, 0.982}},
    {"bc-urand", {-0.830, 0.153, 0.959}},
    {"bfs-kron", {-0.471, 0.097, 0.986}},
    {"bfs-urand", {-0.797, 0.147, 0.987}},
    {"cc-kron", {-0.442, 0.093, 0.974}},
    {"cc-urand", {-0.695, 0.135, 0.973}},
    {"mcf-rand", {-1.129, 0.187, 0.667}},
    {"memcached-uniform", {-1.381, 0.207, 0.580}},
    {"pr-kron", {-0.479, 0.099, 0.990}},
    {"pr-urand", {-0.739, 0.139, 0.956}},
    {"streamcluster-rand", {1.215, -0.094, 0.122}},
    {"tc-kron", {-0.089, 0.030, 0.627}},
    {"tc-urand", {-1.048, 0.196, 0.970}},
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    auto sweeps = sweepWorkloads(workloadNames(), footprints(),
                                 baseRunConfig());

    TablePrinter table("Table IV: relative AT overhead = b0 + b1 log10(M_KB)"
                       " (measured vs paper)");
    table.header({"workload", "const", "log10 M", "adj R^2", "paper const",
                  "paper log10 M", "paper adj R^2"});
    CsvWriter csv(outputPath("tab04_regressions.csv"));
    csv.rowv("workload", "const", "slope", "adj_r2", "paper_const",
             "paper_slope", "paper_adj_r2");

    double slope_sum = 0;
    int strong = 0;
    for (const WorkloadSweep &sweep : sweeps) {
        std::vector<double> lg, overhead;
        for (const OverheadPoint &p : sweep.points) {
            lg.push_back(std::log10(footprintKb(p.footprintBytes)));
            overhead.push_back(p.relativeOverhead());
        }
        OlsFit fit = fitOls(lg, overhead);
        const PaperRow &paper = paperTable4.at(sweep.workload);
        table.rowv(sweep.workload, fmtDouble(fit.intercept),
                   fmtDouble(fit.slope), fmtDouble(fit.adjustedR2),
                   fmtDouble(paper.constant), fmtDouble(paper.slope),
                   fmtDouble(paper.adjR2));
        csv.rowv(sweep.workload, fit.intercept, fit.slope, fit.adjustedR2,
                 paper.constant, paper.slope, paper.adjR2);
        if (fit.adjustedR2 > 0.9) {
            slope_sum += fit.slope;
            ++strong;
        }
    }
    table.print(std::cout);

    if (strong) {
        std::cout << "\nMean log10(M) coefficient over workloads with "
                     "adj R^2 > 0.9: "
                  << fmtDouble(slope_sum / strong, 3)
                  << "  (paper: 0.13 => +13% overhead per 10x footprint)\n";
    }
    return 0;
}
