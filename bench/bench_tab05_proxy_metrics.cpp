/**
 * @file
 * Table V: Pearson and Spearman correlation between five AT-pressure
 * proxy metrics (measured on the 4 KiB runs) and relative AT overhead,
 * across all AT-sensitive workload-footprint points. The paper's result:
 * WCPI has the strongest Pearson and near-strongest Spearman correlation.
 *
 * Also reproduces the paper's intra-workload Spearman analysis (V-B):
 * the per-workload monotonicity of WCPI vs overhead.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/correlation.hh"
#include "perf/derived.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;
using namespace atscale::benchx;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    auto sweeps = sweepWorkloads(workloadNames(), footprints(),
                                 baseRunConfig());

    // Collect proxy metrics (from the 4K run) and overhead per point.
    // As in the paper, points with negative measured overhead are deemed
    // not AT-sensitive and are excluded from this analysis only.
    std::vector<double> overhead;
    std::vector<double> mpka, mpki, wcf, wcpa, wcpi;
    int excluded = 0;
    for (const WorkloadSweep &sweep : sweeps) {
        for (const OverheadPoint &p : sweep.points) {
            if (!p.atSensitive()) {
                ++excluded;
                continue;
            }
            ProxyMetrics proxy = proxyMetrics(p.run4k.counters);
            overhead.push_back(p.relativeOverhead());
            mpka.push_back(proxy.tlbMissesPerKiloAccess);
            mpki.push_back(proxy.tlbMissesPerKiloInstr);
            wcf.push_back(proxy.walkCycleFraction);
            wcpa.push_back(proxy.walkCyclesPerAccess);
            wcpi.push_back(proxy.walkCyclesPerInstr);
        }
    }

    TablePrinter table("Table V: correlation between AT pressure metric "
                       "and relative AT overhead");
    table.header({"AT pressure metric", "Pearson", "Spearman",
                  "paper Pearson", "paper Spearman"});
    CsvWriter csv(outputPath("tab05_proxy_metrics.csv"));
    csv.rowv("metric", "pearson", "spearman");

    struct Row
    {
        const char *name;
        const std::vector<double> *metric;
        const char *paperPearson;
        const char *paperSpearman;
    };
    const Row rows[] = {
        {"TLB misses per kilo access", &mpka, "0.452", "0.582"},
        {"TLB misses per kilo instruction", &mpki, "0.364", "0.579"},
        {"Walk cycle fraction", &wcf, "0.555", "0.688"},
        {"Walk cycles per access", &wcpa, "0.462", "0.769"},
        {"Walk cycles per instruction", &wcpi, "0.567", "0.768"},
    };
    double best_pearson = -2;
    std::string best_name;
    for (const Row &row : rows) {
        double p = pearson(*row.metric, overhead);
        double s = spearman(*row.metric, overhead);
        table.rowv(row.name, fmtDouble(p), fmtDouble(s), row.paperPearson,
                   row.paperSpearman);
        csv.rowv(row.name, p, s);
        if (p > best_pearson) {
            best_pearson = p;
            best_name = row.name;
        }
    }
    table.print(std::cout);
    std::cout << "\nExcluded " << excluded
              << " non-AT-sensitive points (paper: 4 of 132).\n";
    std::cout << "Best Pearson correlate: " << best_name
              << " (paper: walk cycles per instruction)\n\n";

    // Intra-workload Spearman of WCPI vs overhead (Section V-B).
    TablePrinter intra("Intra-workload Spearman(WCPI, overhead)");
    intra.header({"workload", "Spearman"});
    int perfect = 0, above09 = 0;
    for (const WorkloadSweep &sweep : sweeps) {
        std::vector<double> w, o;
        for (const OverheadPoint &p : sweep.points) {
            if (!p.atSensitive())
                continue;
            w.push_back(proxyMetrics(p.run4k.counters).walkCyclesPerInstr);
            o.push_back(p.relativeOverhead());
        }
        double s = spearman(w, o);
        intra.rowv(sweep.workload, fmtDouble(s));
        perfect += (s >= 0.999);
        above09 += (s >= 0.9);
    }
    intra.print(std::cout);
    std::cout << "\n" << perfect << " workloads at Spearman 1.0, " << above09
              << " at >= 0.9 (paper: 7 at exactly 1.0, 10 at >= 0.9)\n";
    return 0;
}
