/**
 * @file
 * Reproduces the paper's setup tables: Table I (workloads), Table II
 * (input generators), and Table III (the simulated system configuration).
 */

#include <iostream>

#include "bench/common.hh"
#include "core/platform.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace atscale;

int
main(int argc, char **argv)
{
    benchx::initBench(argc, argv);
    TablePrinter tab1("Table I: Workloads (ST = single-threaded, "
                      "MT = multithreaded)");
    tab1.header({"Suite", "Program", "Generators", "Type"});
    tab1.rowv("gapbs", "bc, bfs, cc, pr, tc", "urand, kron",
              "graph processing (MT)");
    tab1.rowv("ycsb", "memcached", "uniform", "key-value store (MT)");
    tab1.rowv("spec2006", "mcf", "rand", "network simplex (ST)");
    tab1.rowv("parsec", "streamcluster", "rand", "clustering (MT)");
    tab1.print(std::cout);

    std::cout << '\n';
    TablePrinter tab2("Table II: Input generators");
    tab2.header({"Generator", "Description"});
    tab2.rowv("urand", "uniform random graph, average degree 16");
    tab2.rowv("kron", "Kronecker/RMAT scale-free graph, average degree 16");
    tab2.rowv("uniform", "YCSB uniform key distribution");
    tab2.rowv("rand", "uniform random network / points");
    tab2.print(std::cout);

    std::cout << '\n';
    PlatformParams params;
    TablePrinter tab3("Table III: Simulated system");
    tab3.header({"Component", "Description"});
    tab3.rowv("CPU", strfmt("Haswell-class core @ %.1fGHz (simulated)",
                            params.freqGHz));
    tab3.rowv("L1D", strfmt("%s, %u-way",
                            fmtBytes(params.hierarchy.l1.sets *
                                     params.hierarchy.l1.ways *
                                     params.hierarchy.lineBytes).c_str(),
                            params.hierarchy.l1.ways));
    tab3.rowv("L2", strfmt("%s, %u-way",
                           fmtBytes(params.hierarchy.l2.sets *
                                    params.hierarchy.l2.ways *
                                    params.hierarchy.lineBytes).c_str(),
                           params.hierarchy.l2.ways));
    tab3.rowv("L3", strfmt("%s, %u-way (shared)",
                           fmtBytes(static_cast<std::uint64_t>(
                                        params.hierarchy.l3.sets) *
                                    params.hierarchy.l3.ways *
                                    params.hierarchy.lineBytes).c_str(),
                           params.hierarchy.l3.ways));
    tab3.rowv("TLB-L1D",
              strfmt("%ux4KB, %ux2MB, %ux1GB",
                     params.mmu.tlb.l1_4k.sets * params.mmu.tlb.l1_4k.ways,
                     params.mmu.tlb.l1_2m.sets * params.mmu.tlb.l1_2m.ways,
                     params.mmu.tlb.l1_1g.sets * params.mmu.tlb.l1_1g.ways));
    tab3.rowv("TLB-L2",
              strfmt("%ux shared 4KB/2MB pages",
                     params.mmu.tlb.l2.sets * params.mmu.tlb.l2.ways));
    tab3.rowv("MMU caches",
              strfmt("PML4E:%u PDPTE:%u PDE:%u entries",
                     params.mmu.psc.pml4eEntries,
                     params.mmu.psc.pdpteEntries,
                     params.mmu.psc.pdeEntries));
    tab3.rowv("Page walkers", "1");
    tab3.rowv("DRAM", fmtBytes(params.dramBytes));
    tab3.print(std::cout);

    std::cout << "\nRegistered workloads:";
    for (const std::string &name : workloadNames())
        std::cout << ' ' << name;
    std::cout << '\n';
    return 0;
}
