/**
 * @file
 * Shared plumbing for the per-figure/per-table bench harnesses.
 *
 * Knobs (environment):
 *  - ATSCALE_QUICK=1     reduced footprint sweep and shorter windows
 *  - ATSCALE_CACHE_DIR   run-result cache directory (benches default to
 *                        ./atscale_cache so the whole suite shares runs)
 *  - ATSCALE_OUT_DIR     where to drop CSV data files (optional)
 *  - ATSCALE_THREADS=N   sweep-engine worker threads (--threads=N wins)
 *  - ATSCALE_NO_FASTPATH=1  disable the software translation fast path
 *                        (--no-fastpath; results are bit-identical, see
 *                        docs/PERF.md)
 *  - ATSCALE_SCHEME=NAME translation scheme for every run (--scheme=;
 *                        radix, hashed, cache_tlb, no_vm — see
 *                        docs/TRANSLATION_SCHEMES.md)
 */

#ifndef ATSCALE_BENCH_COMMON_HH
#define ATSCALE_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/run_export.hh"
#include "core/sweep.hh"
#include "obs/session.hh"

namespace atscale::benchx
{

/** Make run results shareable across bench binaries by default. */
inline void
ensureCacheDir()
{
    const char *dir = std::getenv("ATSCALE_CACHE_DIR");
    std::string path = dir && *dir ? dir : "atscale_cache";
    ::mkdir(path.c_str(), 0755);
    setenv("ATSCALE_CACHE_DIR", path.c_str(), 0);
}

/**
 * Standard bench start-up: make the cache shareable and consume the
 * sweep-engine flags (--threads=N, --no-fastpath, --scheme=NAME; see
 * core/sweep.hh). Malformed flags
 * print the error and exit(2); the remaining argv is compacted in place
 * for the bench's own parsing. Call first in every bench main().
 */
inline void
initBench(int &argc, char **argv)
{
    ensureCacheDir();
    std::string error;
    if (!extractSweepFlags(argc, argv, error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        std::exit(2);
    }
}

/** True when ATSCALE_QUICK requests a reduced run. */
inline bool
quick()
{
    const char *q = std::getenv("ATSCALE_QUICK");
    return q && *q && *q != '0';
}

/**
 * Measurement window sizes, quick-aware; honours --no-fastpath and
 * --scheme=.
 */
inline RunConfig
baseRunConfig()
{
    RunConfig config;
    config.warmupRefs = quick() ? 150'000 : 400'000;
    config.measureRefs = quick() ? 400'000 : 1'200'000;
    config.fastPath = fastPathDefault();
    config.scheme = schemeDefault();
    return config;
}

/** The footprint sweep used by every figure (quick-aware). */
inline std::vector<std::uint64_t>
footprints()
{
    return sweepFootprints();
}

/** Footprint in the paper's axis unit (KB, as in Figs 2/5/8). */
inline double
footprintKb(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / 1024.0;
}

/**
 * Parse the shared observability flags (--sample-window=, --trace=,
 * --json-out=, --trace-capacity=; see obs/session.hh) out of argv.
 * Malformed flags print the error and exit(2); unrelated arguments are
 * compacted in place for the harness to parse.
 */
inline ObsOptions
obsFromArgs(int &argc, char **argv)
{
    ObsOptions options;
    std::string error;
    if (!extractObsFlags(argc, argv, options, error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        std::exit(2);
    }
    return options;
}

/**
 * Run one observed 4 KiB run of `config` and write every enabled
 * output (RunResult JSON, per-window WCPI JSONL, walk traces). Used by
 * benches to make one sweep point fully observable without perturbing
 * the cached sweep itself.
 */
inline void
observeRun(RunConfig config, const ObsOptions &options,
           const PlatformParams &params = {})
{
    if (!options.any())
        return;
    config.pageSize = PageSize::Size4K;
    ObsSession session(options);
    RunResult run = runExperiment(config, params, &session);
    if (!options.jsonOut.empty()) {
        writeRunResultJsonFile(options.jsonOut, run,
                               &session.statsSnapshot(), params.freqGHz);
        std::cout << "wrote " << options.jsonOut << "\n";
    }
    for (const std::string &path : session.writeOutputs(params.freqGHz))
        std::cout << "wrote " << path << "\n";
}

} // namespace atscale::benchx

#endif // ATSCALE_BENCH_COMMON_HH
