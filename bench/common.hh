/**
 * @file
 * Shared plumbing for the per-figure/per-table bench harnesses.
 *
 * Knobs (environment):
 *  - ATSCALE_QUICK=1     reduced footprint sweep and shorter windows
 *  - ATSCALE_CACHE_DIR   run-result cache directory (benches default to
 *                        ./atscale_cache so the whole suite shares runs)
 *  - ATSCALE_OUT_DIR     where to drop CSV data files (optional)
 */

#ifndef ATSCALE_BENCH_COMMON_HH
#define ATSCALE_BENCH_COMMON_HH

#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/sweep.hh"

namespace atscale::benchx
{

/** Make run results shareable across bench binaries by default. */
inline void
ensureCacheDir()
{
    const char *dir = std::getenv("ATSCALE_CACHE_DIR");
    std::string path = dir && *dir ? dir : "atscale_cache";
    ::mkdir(path.c_str(), 0755);
    setenv("ATSCALE_CACHE_DIR", path.c_str(), 0);
}

/** True when ATSCALE_QUICK requests a reduced run. */
inline bool
quick()
{
    const char *q = std::getenv("ATSCALE_QUICK");
    return q && *q && *q != '0';
}

/** Measurement window sizes, quick-aware. */
inline RunConfig
baseRunConfig()
{
    RunConfig config;
    config.warmupRefs = quick() ? 150'000 : 400'000;
    config.measureRefs = quick() ? 400'000 : 1'200'000;
    return config;
}

/** The footprint sweep used by every figure (quick-aware). */
inline std::vector<std::uint64_t>
footprints()
{
    return sweepFootprints();
}

/** Footprint in the paper's axis unit (KB, as in Figs 2/5/8). */
inline double
footprintKb(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / 1024.0;
}

} // namespace atscale::benchx

#endif // ATSCALE_BENCH_COMMON_HH
