/**
 * @file
 * Shared main() helper for the google-benchmark micro suites.
 *
 * Adds one extra flag on top of the stock benchmark driver:
 *
 *   --quick   rewrite to --benchmark_min_time=0.01, so a full binary run
 *             finishes in a couple of seconds. This is what the ctest
 *             `smoke` label uses: the point is "does every benchmark
 *             still construct its rig and execute", not stable timing.
 *
 * Everything else is passed through to benchmark::Initialize untouched,
 * so the usual --benchmark_filter / --benchmark_format flags keep
 * working alongside --quick.
 */

#ifndef ATSCALE_BENCH_GBENCH_MAIN_HH
#define ATSCALE_BENCH_GBENCH_MAIN_HH

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace atscale::benchx
{

inline int
gbenchMain(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    for (std::string &arg : args) {
        if (arg == "--quick")
            arg = "--benchmark_min_time=0.01";
    }
    std::vector<char *> raw;
    raw.reserve(args.size());
    for (std::string &arg : args)
        raw.push_back(arg.data());
    int raw_argc = static_cast<int>(raw.size());

    benchmark::Initialize(&raw_argc, raw.data());
    if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace atscale::benchx

#endif // ATSCALE_BENCH_GBENCH_MAIN_HH
