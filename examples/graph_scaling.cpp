/**
 * @file
 * Example: sweep one graph workload across memory footprints and watch
 * the Equation-1 components evolve — a minimal version of the paper's
 * Fig 6 methodology using the public API.
 *
 * Usage: graph_scaling [workload] [points] [--threads=N]
 */

#include <cstdlib>
#include <iostream>

#include "core/sweep.hh"
#include "perf/derived.hh"
#include "util/table.hh"

using namespace atscale;

int
main(int argc, char **argv)
{
    std::string error;
    if (!extractSweepFlags(argc, argv, error)) {
        std::cerr << "graph_scaling: " << error << "\n";
        return 2;
    }
    std::string workload = argc > 1 ? argv[1] : "pr-urand";
    int points = argc > 2 ? std::atoi(argv[2]) : 5;

    RunConfig base;
    base.warmupRefs = 200'000;
    base.measureRefs = 600'000;

    auto sweep_footprints =
        footprintSweep(512ull << 20, 128ull << 30, 1);
    if (static_cast<int>(sweep_footprints.size()) > points)
        sweep_footprints.resize(static_cast<size_t>(points));

    std::cout << "Sweeping " << workload << " over "
              << sweep_footprints.size() << " footprints...\n\n";

    WorkloadSweep sweep =
        sweepWorkload(workload, sweep_footprints, base, {},
                      [](const OverheadPoint &p) {
                          std::cerr << "  measured "
                                    << fmtBytes(p.footprintBytes) << ": "
                                    << fmtDouble(p.relativeOverhead() * 100, 1)
                                    << "% overhead\n";
                      });

    TablePrinter table("Equation-1 components for " + workload +
                       " (4K runs)");
    table.header({"footprint", "overhead", "WCPI", "acc/instr", "miss/acc",
                  "PTWacc/walk", "cyc/PTWacc"});
    for (const OverheadPoint &p : sweep.points) {
        WcpiTerms terms = wcpiTerms(p.run4k.counters);
        table.rowv(fmtBytes(p.footprintBytes),
                   fmtDouble(p.relativeOverhead(), 3),
                   fmtDouble(terms.wcpi(), 4),
                   fmtDouble(terms.accessesPerInstr, 3),
                   fmtDouble(terms.tlbMissesPerAccess, 4),
                   fmtDouble(terms.ptwAccessesPerWalk, 3),
                   fmtDouble(terms.walkCyclesPerPtwAccess, 1));
    }
    table.print(std::cout);

    std::cout << "\nReading guide: overhead should grow roughly linearly "
                 "in log10(footprint); the last two columns show whether "
                 "the MMU caches or the PTE hierarchy hotness is driving "
                 "it (Section V-C of the paper).\n";
    return 0;
}
