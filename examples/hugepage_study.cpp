/**
 * @file
 * Example: should this workload use 2 MiB or 1 GiB pages?
 *
 * Replays the paper's Section III methodology for one workload and
 * footprint: run with every page size, report runtimes and the WCPI
 * decomposition, and show the small-footprint 1 GiB fallback anomaly
 * that motivates min(t_2MB, t_1GB) as the baseline.
 *
 * Usage: hugepage_study [workload] [footprint-MiB] [--threads=N]
 *                       [--sample-window=N] [--trace=PREFIX]
 *                       [--json-out=PATH]
 *
 * With --sample-window the 4 KiB run is additionally fed, window by
 * window, into the online HugepageAdvisor — the khugepaged-style
 * consumer of the same per-window counter deltas the sampler exports.
 */

#include <cstdlib>
#include <iostream>

#include "core/hugepage_advisor.hh"
#include "core/overhead.hh"
#include "core/run_export.hh"
#include "core/sweep.hh"
#include "obs/session.hh"
#include "util/table.hh"

using namespace atscale;

int
main(int argc, char **argv)
{
    ObsOptions obs_options;
    std::string error;
    if (!extractSweepFlags(argc, argv, error) ||
        !extractObsFlags(argc, argv, obs_options, error)) {
        std::cerr << "hugepage_study: " << error << "\n";
        return 2;
    }

    std::string workload = argc > 1 ? argv[1] : "cc-urand";
    std::uint64_t mib = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 768;

    RunSpec base;
    base.workload = workload;
    base.footprintBytes = mib << 20;
    base.warmupRefs = 200'000;
    base.measureRefs = 600'000;

    std::cout << "Page-size study for " << workload << " at "
              << fmtBytes(base.footprintBytes) << "\n\n";

    ObsSession session(obs_options);
    HugepageAdvisor advisor;
    if (session.sampling()) {
        // The advisor consumes the sampler's windows as they close —
        // the same data path that feeds the JSONL export.
        session.sampler()->addSink([&advisor](const WindowSample &w) {
            advisor.observeDelta(w.delta);
        });
    }

    // The unobserved superpage baselines go through the sweep engine
    // (cacheable, parallel under --threads); the 4 KiB run stays direct
    // because this session's sampler sinks must see its live windows.
    RunSpec spec2m = base, spec1g = base;
    spec2m.pageSize = PageSize::Size2M;
    spec1g.pageSize = PageSize::Size1G;
    SweepEngine engine;
    std::vector<RunResult> baselines = engine.run({spec2m, spec1g});

    OverheadPoint point;
    point.workload = base.workload;
    point.footprintBytes = base.footprintBytes;
    point.run4k = runExperiment(base, {}, &session);
    point.run2m = baselines[0];
    point.run1g = baselines[1];

    TablePrinter table("Runtime and AT pressure by page backing");
    table.header({"backing", "cycles", "vs 4K", "TLB miss/acc", "WCPI",
                  "walks initiated"});
    for (const RunResult *run : {&point.run4k, &point.run2m, &point.run1g}) {
        WcpiTerms terms = wcpiTerms(run->counters);
        double speedup = static_cast<double>(point.run4k.cycles()) /
                         static_cast<double>(run->cycles());
        table.rowv(pageSizeName(run->spec.pageSize), run->cycles(),
                   fmtDouble(speedup, 2) + "x",
                   fmtDouble(terms.tlbMissesPerAccess, 4),
                   fmtDouble(terms.wcpi(), 4),
                   totalWalksInitiated(run->counters));
    }
    table.print(std::cout);

    bool one_gig_won = point.run1g.cycles() < point.run2m.cycles();
    std::cout << "\nBaseline = min(t_2M, t_1G) = "
              << fmtDouble(point.baselineCycles(), 0) << " cycles ("
              << (one_gig_won ? "1G" : "2M") << " backing won)\n";
    std::cout << "Relative AT overhead of 4K pages: "
              << fmtDouble(point.relativeOverhead() * 100, 1) << "%\n";

    if (!one_gig_won) {
        std::cout << "\nNote: 1G lost here. At small footprints regions "
                     "under 1 GiB cannot be 1G-backed (hugetlbfs "
                     "fallback), exactly the anomaly the paper describes "
                     "in Section III-B.\n";
    }

    if (session.sampling()) {
        std::cout << "\nOnline advisor (fed per-window from the 4K run): "
                  << (advisor.advice() == HugepageAdvice::Promote2M
                          ? "promote to 2M"
                          : "keep 4K")
                  << " after " << advisor.windowCount() << " windows\n";
    }
    if (session.enabled()) {
        if (!obs_options.jsonOut.empty()) {
            writeRunResultJsonFile(obs_options.jsonOut, point.run4k,
                                   &session.statsSnapshot());
            std::cout << "wrote " << obs_options.jsonOut << "\n";
        }
        for (const std::string &path : session.writeOutputs())
            std::cout << "wrote " << path << "\n";
    }
    return 0;
}
