/**
 * @file
 * Example: should this workload use 2 MiB or 1 GiB pages?
 *
 * Replays the paper's Section III methodology for one workload and
 * footprint: run with every page size, report runtimes and the WCPI
 * decomposition, and show the small-footprint 1 GiB fallback anomaly
 * that motivates min(t_2MB, t_1GB) as the baseline.
 *
 * Usage: hugepage_study [workload] [footprint-MiB]
 */

#include <cstdlib>
#include <iostream>

#include "core/overhead.hh"
#include "util/table.hh"

using namespace atscale;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "cc-urand";
    std::uint64_t mib = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 768;

    RunConfig config;
    config.workload = workload;
    config.footprintBytes = mib << 20;
    config.warmupRefs = 200'000;
    config.measureRefs = 600'000;

    std::cout << "Page-size study for " << workload << " at "
              << fmtBytes(config.footprintBytes) << "\n\n";
    OverheadPoint point = measureOverhead(config);

    TablePrinter table("Runtime and AT pressure by page backing");
    table.header({"backing", "cycles", "vs 4K", "TLB miss/acc", "WCPI",
                  "walks initiated"});
    for (const RunResult *run : {&point.run4k, &point.run2m, &point.run1g}) {
        WcpiTerms terms = wcpiTerms(run->counters);
        double speedup = static_cast<double>(point.run4k.cycles()) /
                         static_cast<double>(run->cycles());
        table.rowv(pageSizeName(run->config.pageSize), run->cycles(),
                   fmtDouble(speedup, 2) + "x",
                   fmtDouble(terms.tlbMissesPerAccess, 4),
                   fmtDouble(terms.wcpi(), 4),
                   totalWalksInitiated(run->counters));
    }
    table.print(std::cout);

    bool one_gig_won = point.run1g.cycles() < point.run2m.cycles();
    std::cout << "\nBaseline = min(t_2M, t_1G) = "
              << fmtDouble(point.baselineCycles(), 0) << " cycles ("
              << (one_gig_won ? "1G" : "2M") << " backing won)\n";
    std::cout << "Relative AT overhead of 4K pages: "
              << fmtDouble(point.relativeOverhead() * 100, 1) << "%\n";

    if (!one_gig_won) {
        std::cout << "\nNote: 1G lost here. At small footprints regions "
                     "under 1 GiB cannot be 1G-backed (hugetlbfs "
                     "fallback), exactly the anomaly the paper describes "
                     "in Section III-B.\n";
    }
    return 0;
}
