/**
 * @file
 * Example: the memcached nonlinearity.
 *
 * Sweeps the memcached-uniform workload across footprints and shows how
 * the KV hit rate (a program-level property) couples with AT pressure —
 * the paper's explanation for memcached's complex scaling (Section V-A).
 * Also demonstrates exec mode: the real chained-hash store is run and
 * traced at a small footprint and compared against the model stream.
 */

#include <iostream>

#include "core/sweep.hh"
#include "perf/derived.hh"
#include "util/table.hh"
#include "workloads/kv/memcached_workload.hh"

using namespace atscale;

int
main(int argc, char **argv)
{
    std::string error;
    if (!extractSweepFlags(argc, argv, error)) {
        std::cerr << "kv_cache_study: " << error << "\n";
        return 2;
    }

    RunSpec base;
    base.workload = "memcached-uniform";
    base.warmupRefs = 200'000;
    base.measureRefs = 600'000;

    auto footprints = footprintSweep(1ull << 30, 256ull << 30, 1);
    WorkloadSweep sweep = sweepWorkload(base.workload, footprints, base);

    TablePrinter table("memcached-uniform scaling (model mode)");
    table.header({"footprint", "expected KV hit rate", "overhead", "WCPI",
                  "acc/instr"});
    for (const OverheadPoint &p : sweep.points) {
        WcpiTerms terms = wcpiTerms(p.run4k.counters);
        double items = static_cast<double>(p.footprintBytes) /
                       (MemcachedWorkload::itemBytes + 8);
        double hit_rate = std::min(
            1.0, items / static_cast<double>(MemcachedWorkload::keyspace));
        table.rowv(fmtBytes(p.footprintBytes), fmtDouble(hit_rate, 3),
                   fmtDouble(p.relativeOverhead(), 3),
                   fmtDouble(terms.wcpi(), 4),
                   fmtDouble(terms.accessesPerInstr, 3));
    }
    table.print(std::cout);
    std::cout << "\nThe overhead curve is nonlinear because the hit rate "
                 "changes which code path dominates — exactly why "
                 "memcached is one of the paper's Table IV outliers "
                 "(adj R^2 = 0.58).\n\n";

    // Exec-mode cross-check at a small footprint: run the real store.
    // Both modes are one engine job set (mode is part of the spec).
    RunSpec exec_spec = base;
    exec_spec.footprintBytes = 64ull << 20;
    exec_spec.mode = WorkloadMode::Exec;
    RunSpec model_spec = exec_spec;
    model_spec.mode = WorkloadMode::Model;

    SweepEngine engine;
    std::vector<RunResult> pair = engine.run({exec_spec, model_spec});
    RunResult exec_run = pair[0];
    RunResult model_run = pair[1];

    TablePrinter compare("Exec vs model mode at 64 MiB (4K pages)");
    compare.header({"mode", "CPI", "TLB miss/access", "acc/instr"});
    for (const auto &[name, run] :
         {std::pair{"exec (real store, traced)", &exec_run},
          std::pair{"model (streaming twin)", &model_run}}) {
        WcpiTerms terms = wcpiTerms(run->counters);
        compare.rowv(name, fmtDouble(run->cpi(), 3),
                     fmtDouble(terms.tlbMissesPerAccess, 4),
                     fmtDouble(terms.accessesPerInstr, 3));
    }
    compare.print(std::cout);
    return 0;
}
