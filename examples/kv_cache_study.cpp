/**
 * @file
 * Example: the memcached nonlinearity.
 *
 * Sweeps the memcached-uniform workload across footprints and shows how
 * the KV hit rate (a program-level property) couples with AT pressure —
 * the paper's explanation for memcached's complex scaling (Section V-A).
 * Also demonstrates exec mode: the real chained-hash store is run and
 * traced at a small footprint and compared against the model stream.
 */

#include <iostream>

#include "core/sweep.hh"
#include "perf/derived.hh"
#include "util/table.hh"
#include "workloads/kv/memcached_workload.hh"

using namespace atscale;

int
main()
{
    RunConfig base;
    base.workload = "memcached-uniform";
    base.warmupRefs = 200'000;
    base.measureRefs = 600'000;

    auto footprints = footprintSweep(1ull << 30, 256ull << 30, 1);

    TablePrinter table("memcached-uniform scaling (model mode)");
    table.header({"footprint", "expected KV hit rate", "overhead", "WCPI",
                  "acc/instr"});
    for (std::uint64_t footprint : footprints) {
        RunConfig config = base;
        config.footprintBytes = footprint;
        OverheadPoint p = measureOverhead(config);
        WcpiTerms terms = wcpiTerms(p.run4k.counters);
        double items = static_cast<double>(footprint) /
                       (MemcachedWorkload::itemBytes + 8);
        double hit_rate = std::min(
            1.0, items / static_cast<double>(MemcachedWorkload::keyspace));
        table.rowv(fmtBytes(footprint), fmtDouble(hit_rate, 3),
                   fmtDouble(p.relativeOverhead(), 3),
                   fmtDouble(terms.wcpi(), 4),
                   fmtDouble(terms.accessesPerInstr, 3));
    }
    table.print(std::cout);
    std::cout << "\nThe overhead curve is nonlinear because the hit rate "
                 "changes which code path dominates — exactly why "
                 "memcached is one of the paper's Table IV outliers "
                 "(adj R^2 = 0.58).\n\n";

    // Exec-mode cross-check at a small footprint: run the real store.
    RunConfig exec_config = base;
    exec_config.footprintBytes = 64ull << 20;
    exec_config.mode = WorkloadMode::Exec;
    RunResult exec_run = runExperiment(exec_config);

    RunConfig model_config = exec_config;
    model_config.mode = WorkloadMode::Model;
    RunResult model_run = runExperiment(model_config);

    TablePrinter compare("Exec vs model mode at 64 MiB (4K pages)");
    compare.header({"mode", "CPI", "TLB miss/access", "acc/instr"});
    for (const auto &[name, run] :
         {std::pair{"exec (real store, traced)", &exec_run},
          std::pair{"model (streaming twin)", &model_run}}) {
        WcpiTerms terms = wcpiTerms(run->counters);
        compare.rowv(name, fmtDouble(run->cpi(), 3),
                     fmtDouble(terms.tlbMissesPerAccess, 4),
                     fmtDouble(terms.accessesPerInstr, 3));
    }
    compare.print(std::cout);
    return 0;
}
