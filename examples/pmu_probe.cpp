/**
 * @file
 * Example: the same analysis layer on real hardware.
 *
 * Probes perf_event_open, opens whatever subset of the paper's events
 * the machine exposes, measures a pointer-chasing loop over a growing
 * working set, and prints the derived metrics. On machines without PMU
 * access (containers, CI) it degrades to reporting which events were
 * unavailable — the simulator backend is the fallback for everything
 * else in this repository.
 */

#include <cstdint>
#include <iostream>
#include <numeric>
#include <vector>

#include "perf/derived.hh"
#include "perf/linux_backend.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace atscale;

namespace
{

/** Chase a random cycle through `bytes` of memory. */
std::uint64_t
chase(std::uint64_t bytes, std::uint64_t steps)
{
    std::size_t slots = bytes / sizeof(std::uint64_t*);
    std::vector<std::uint64_t*> ring(slots);
    std::vector<std::size_t> order(slots);
    std::iota(order.begin(), order.end(), 0);
    Rng rng(1);
    for (std::size_t i = slots - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);
    for (std::size_t i = 0; i < slots; ++i)
        ring[order[i]] = reinterpret_cast<std::uint64_t*>(
            &ring[order[(i + 1) % slots]]);

    auto *p = reinterpret_cast<std::uint64_t*>(ring[0]);
    for (std::uint64_t i = 0; i < steps; ++i)
        p = reinterpret_cast<std::uint64_t*>(*p);
    return reinterpret_cast<std::uint64_t>(p);
}

} // namespace

int
main()
{
    if (!LinuxPerfBackend::available()) {
        std::cout << "perf_event_open is not permitted in this "
                     "environment; the simulator backend (see quickstart) "
                     "provides all of the paper's events instead.\n";
        return 0;
    }

    std::vector<EventId> wanted = {
        EventId::CpuClkUnhalted,
        EventId::InstRetired,
        EventId::DtlbLoadMissesMissCausesAWalk,
        EventId::DtlbLoadMissesWalkCompleted,
        EventId::DtlbLoadMissesWalkDuration,
        EventId::MemUopsRetiredAllLoads,
        EventId::MemUopsRetiredStlbMissLoads,
        EventId::PageWalkerLoadsDtlbL1,
        EventId::PageWalkerLoadsDtlbL2,
        EventId::PageWalkerLoadsDtlbL3,
        EventId::PageWalkerLoadsDtlbMemory,
    };

    LinuxPerfBackend backend;
    auto opened = backend.open(wanted);
    std::cout << "Opened " << opened.size() << "/" << wanted.size()
              << " events:";
    for (EventId id : opened)
        std::cout << ' ' << eventName(id);
    std::cout << "\n\n";
    if (opened.empty())
        return 0;

    TablePrinter table("Pointer chase: measured AT pressure by working set");
    table.header({"working set", "cycles", "CPI-ish", "walks/1k chases",
                  "WCPI"});
    for (std::uint64_t bytes : {1ull << 20, 16ull << 20, 256ull << 20}) {
        const std::uint64_t steps = 20'000'000;
        backend.start();
        chase(bytes, steps);
        backend.stop();
        CounterSet counters = backend.read();

        double walks = static_cast<double>(
            counters.get(EventId::DtlbLoadMissesMissCausesAWalk));
        double instr =
            static_cast<double>(counters.get(EventId::InstRetired));
        double cycles =
            static_cast<double>(counters.get(EventId::CpuClkUnhalted));
        table.rowv(fmtBytes(bytes), static_cast<std::uint64_t>(cycles),
                   fmtDouble(instr > 0 ? cycles / instr : 0, 2),
                   fmtDouble(walks / (steps / 1000.0), 3),
                   fmtDouble(proxyMetrics(counters).walkCyclesPerInstr, 5));
    }
    table.print(std::cout);
    std::cout << "\nExpect walks and WCPI to rise as the working set "
                 "outgrows TLB reach — the paper's core mechanism, live.\n";
    return 0;
}
