/**
 * @file
 * Example: the same analysis layer on real hardware.
 *
 * Probes perf_event_open, opens whatever subset of the paper's events
 * the machine exposes, measures a pointer-chasing loop over a growing
 * working set, and prints the derived metrics. On machines without PMU
 * access (containers, CI) it degrades to reporting which events were
 * unavailable — the simulator backend is the fallback for everything
 * else in this repository.
 *
 * Usage: pmu_probe [--sample-window=N] [--json-out=PATH]
 *
 * --sample-window feeds the measured counters through the same
 * WindowSampler the simulator uses and prints per-window derived
 * metrics (CPI, WCPI and its Equation-1 factors). --json-out writes the
 * cumulative counters and derived metrics as JSON (and, when sampling,
 * the windows as JSONL next to it). Per-walk tracing (--trace=) is
 * simulator-only: real PMUs expose no per-walk records. Malformed or
 * unknown arguments exit with status 2.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <vector>

#include "obs/json.hh"
#include "obs/session.hh"
#include "perf/derived.hh"
#include "perf/linux_backend.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace atscale;

namespace
{

/** Chase a random cycle through `bytes` of memory. */
std::uint64_t
chase(std::uint64_t bytes, std::uint64_t steps)
{
    std::size_t slots = bytes / sizeof(std::uint64_t*);
    std::vector<std::uint64_t*> ring(slots);
    std::vector<std::size_t> order(slots);
    std::iota(order.begin(), order.end(), 0);
    Rng rng(1);
    for (std::size_t i = slots - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);
    for (std::size_t i = 0; i < slots; ++i)
        ring[order[i]] = reinterpret_cast<std::uint64_t*>(
            &ring[order[(i + 1) % slots]]);

    auto *p = reinterpret_cast<std::uint64_t*>(ring[0]);
    for (std::uint64_t i = 0; i < steps; ++i)
        p = reinterpret_cast<std::uint64_t*>(*p);
    return reinterpret_cast<std::uint64_t>(p);
}

/** Dump the cumulative counters and derived metrics as JSON. */
void
writeJson(const std::string &path, const CounterSet &counters)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "pmu_probe: cannot open '" << path << "'\n";
        std::exit(2);
    }
    JsonWriter json(out, true);
    json.beginObject();

    WcpiTerms terms = wcpiTerms(counters);
    json.key("wcpi").beginObject();
    json.kv("wcpi", terms.wcpi());
    json.kv("accesses_per_instr", terms.accessesPerInstr);
    json.kv("tlb_misses_per_access", terms.tlbMissesPerAccess);
    json.kv("ptw_accesses_per_walk", terms.ptwAccessesPerWalk);
    json.kv("walk_cycles_per_ptw_access", terms.walkCyclesPerPtwAccess);
    json.endObject();

    ProxyMetrics proxy = proxyMetrics(counters);
    json.key("proxies").beginObject();
    json.kv("tlb_misses_per_kilo_instr", proxy.tlbMissesPerKiloInstr);
    json.kv("walk_cycle_fraction", proxy.walkCycleFraction);
    json.kv("walk_cycles_per_instr", proxy.walkCyclesPerInstr);
    json.endObject();

    json.key("counters").beginObject();
    counters.forEach([&json](EventId, const char *name, Count value) {
        json.kv(name, value);
    });
    json.endObject();

    json.endObject();
    out << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    ObsOptions options;
    std::string error;
    if (!extractObsFlags(argc, argv, options, error)) {
        std::cerr << "pmu_probe: " << error << "\n";
        return 2;
    }
    if (argc > 1) {
        std::cerr << "pmu_probe: unknown argument '" << argv[1]
                  << "'\nusage: pmu_probe [--sample-window=N]"
                     " [--json-out=PATH]\n";
        return 2;
    }
    if (!options.tracePrefix.empty()) {
        std::cerr << "pmu_probe: --trace is simulator-only (real PMUs "
                     "expose no per-walk records); see quickstart\n";
        return 2;
    }

    if (!LinuxPerfBackend::available()) {
        std::cout << "perf_event_open is not permitted in this "
                     "environment; the simulator backend (see quickstart) "
                     "provides all of the paper's events instead.\n";
        return 0;
    }

    std::vector<EventId> wanted = {
        EventId::CpuClkUnhalted,
        EventId::InstRetired,
        EventId::DtlbLoadMissesMissCausesAWalk,
        EventId::DtlbLoadMissesWalkCompleted,
        EventId::DtlbLoadMissesWalkDuration,
        EventId::MemUopsRetiredAllLoads,
        EventId::MemUopsRetiredStlbMissLoads,
        EventId::PageWalkerLoadsDtlbL1,
        EventId::PageWalkerLoadsDtlbL2,
        EventId::PageWalkerLoadsDtlbL3,
        EventId::PageWalkerLoadsDtlbMemory,
    };

    LinuxPerfBackend backend;
    auto opened = backend.open(wanted);
    std::cout << "Opened " << opened.size() << "/" << wanted.size()
              << " events:";
    for (EventId id : opened)
        std::cout << ' ' << eventName(id);
    std::cout << "\n\n";
    if (opened.empty())
        return 0;

    ObsSession session(options);
    CounterSet cumulative;
    session.beginMeasurement(cumulative);

    TablePrinter table("Pointer chase: measured AT pressure by working set");
    table.header({"working set", "cycles", "CPI-ish", "walks/1k chases",
                  "WCPI"});
    for (std::uint64_t bytes : {1ull << 20, 16ull << 20, 256ull << 20}) {
        const std::uint64_t steps = 20'000'000;
        backend.start();
        chase(bytes, steps);
        backend.stop();
        CounterSet counters = backend.read();
        counters.forEach([&](EventId id, const char *, Count value) {
            cumulative.add(id, value);
        });
        session.observe(cumulative);

        double walks = static_cast<double>(
            counters.get(EventId::DtlbLoadMissesMissCausesAWalk));
        double instr =
            static_cast<double>(counters.get(EventId::InstRetired));
        double cycles =
            static_cast<double>(counters.get(EventId::CpuClkUnhalted));
        table.rowv(fmtBytes(bytes), static_cast<std::uint64_t>(cycles),
                   fmtDouble(instr > 0 ? cycles / instr : 0, 2),
                   fmtDouble(walks / (steps / 1000.0), 3),
                   fmtDouble(proxyMetrics(counters).walkCyclesPerInstr, 5));
    }
    table.print(std::cout);

    if (session.sampling() && !session.sampler()->windows().empty()) {
        TablePrinter windows("\nPer-window derived metrics (Equation 1)");
        windows.header({"window", "instructions", "CPI", "WCPI",
                        "acc/instr", "miss/acc", "ptw/walk", "cyc/ptw"});
        for (const WindowSample &w : session.sampler()->windows()) {
            windows.rowv(w.index, w.instructions(), fmtDouble(w.cpi(), 2),
                         fmtDouble(w.wcpi.wcpi(), 5),
                         fmtDouble(w.wcpi.accessesPerInstr, 4),
                         fmtDouble(w.wcpi.tlbMissesPerAccess, 5),
                         fmtDouble(w.wcpi.ptwAccessesPerWalk, 3),
                         fmtDouble(w.wcpi.walkCyclesPerPtwAccess, 2));
        }
        windows.print(std::cout);
    }

    if (!options.jsonOut.empty()) {
        writeJson(options.jsonOut, cumulative);
        std::cout << "\nwrote " << options.jsonOut << "\n";
    }
    for (const std::string &path : session.writeOutputs())
        std::cout << "wrote " << path << "\n";

    std::cout << "\nExpect walks and WCPI to rise as the working set "
                 "outgrows TLB reach — the paper's core mechanism, live.\n";
    return 0;
}
