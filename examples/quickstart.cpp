/**
 * @file
 * Quickstart: measure one workload's address-translation behaviour at one
 * footprint, print the WCPI decomposition (Equation 1), the walk-outcome
 * split (Table VI), and the AT overhead versus superpage baselines.
 *
 * Usage: quickstart [workload] [footprint-MiB]
 *                   [--sample-window=N] [--trace=PREFIX]
 *                   [--json-out=PATH] [--trace-capacity=N]
 *
 * The observability flags apply to the 4 KiB run: --json-out writes its
 * RunResult (plus component stats) as JSON, --sample-window emits
 * per-window WCPI JSONL, and --trace emits per-walk JSONL plus a Chrome
 * trace_event file loadable in Perfetto.
 */

#include <cstdlib>
#include <iostream>

#include "core/overhead.hh"
#include "core/run_export.hh"
#include "obs/session.hh"
#include "util/table.hh"

using namespace atscale;

int
main(int argc, char **argv)
{
    ObsOptions obs_options;
    std::string obs_error;
    if (!extractObsFlags(argc, argv, obs_options, obs_error)) {
        std::cerr << "quickstart: " << obs_error << "\n";
        return 2;
    }

    std::string workload = argc > 1 ? argv[1] : "bfs-urand";
    std::uint64_t footprint_mib = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                           : 4096;

    RunConfig config;
    config.workload = workload;
    config.footprintBytes = footprint_mib << 20;

    std::cout << "Measuring " << workload << " at "
              << fmtBytes(config.footprintBytes)
              << " with 4K / 2M / 1G page backing...\n\n";

    ObsSession session(obs_options);
    OverheadPoint point = measureOverhead(config, {}, &session);

    TablePrinter runs("Runtime by page size");
    runs.header({"page size", "cycles", "CPI", "WCPI", "TLB miss/access"});
    for (const RunResult *run : {&point.run4k, &point.run2m, &point.run1g}) {
        WcpiTerms terms = wcpiTerms(run->counters);
        runs.rowv(pageSizeName(run->spec.pageSize), run->cycles(),
                  fmtDouble(run->cpi()), fmtDouble(terms.wcpi(), 4),
                  fmtDouble(terms.tlbMissesPerAccess, 4));
    }
    runs.print(std::cout);

    std::cout << "\nRelative AT overhead: "
              << fmtDouble(point.relativeOverhead() * 100, 1) << "%  "
              << "(baseline = min(t_2M, t_1G))\n\n";

    WcpiTerms terms = wcpiTerms(point.run4k.counters);
    TablePrinter eq1("Equation 1 decomposition (4K run)");
    eq1.header({"term", "component", "value"});
    eq1.rowv("accesses / instruction", "program",
             fmtDouble(terms.accessesPerInstr, 4));
    eq1.rowv("TLB misses / access", "TLB",
             fmtDouble(terms.tlbMissesPerAccess, 5));
    eq1.rowv("PTW accesses / walk", "MMU caches",
             fmtDouble(terms.ptwAccessesPerWalk, 3));
    eq1.rowv("walk cycles / PTW access", "cache hierarchy",
             fmtDouble(terms.walkCyclesPerPtwAccess, 2));
    eq1.rowv("walk cycles / instruction", "(product)",
             fmtDouble(terms.wcpi(), 5));
    eq1.print(std::cout);

    WalkOutcomes outcomes = walkOutcomes(point.run4k.counters);
    TablePrinter tab6("\nWalk outcomes (Table VI, 4K run)");
    tab6.header({"outcome", "count", "fraction of initiated"});
    tab6.rowv("initiated", outcomes.initiated, "1.000");
    tab6.rowv("retired", outcomes.retired,
              fmtDouble(static_cast<double>(outcomes.retired) /
                        std::max<Count>(outcomes.initiated, 1), 3));
    tab6.rowv("wrong path", outcomes.wrongPath,
              fmtDouble(outcomes.wrongPathFraction(), 3));
    tab6.rowv("aborted", outcomes.aborted,
              fmtDouble(outcomes.abortedFraction(), 3));
    tab6.print(std::cout);

    PteLocations loc = pteLocations(point.run4k.counters);
    std::cout << "\nPTE hit locations (4K run): L1 "
              << fmtDouble(loc.l1 * 100, 1) << "%, L2 "
              << fmtDouble(loc.l2 * 100, 1) << "%, L3 "
              << fmtDouble(loc.l3 * 100, 1) << "%, memory "
              << fmtDouble(loc.memory * 100, 1) << "%\n";

    if (session.enabled()) {
        std::cout << "\n";
        if (!obs_options.jsonOut.empty()) {
            writeRunResultJsonFile(obs_options.jsonOut, point.run4k,
                                   &session.statsSnapshot());
            std::cout << "wrote " << obs_options.jsonOut << "\n";
        }
        for (const std::string &path : session.writeOutputs())
            std::cout << "wrote " << path << "\n";
        if (session.tracing()) {
            std::cout << "traced " << session.tracer()->recorded()
                      << " walks (" << session.tracer()->size()
                      << " in the ring)\n";
        }
    }
    return 0;
}
