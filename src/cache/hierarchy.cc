#include "cache/hierarchy.hh"

#include "obs/stats_registry.hh"
#include "util/bitfield.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace atscale
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1:
        return "L1";
      case MemLevel::L2:
        return "L2";
      case MemLevel::L3:
        return "L3";
      case MemLevel::Memory:
        return "Memory";
    }
    return "?";
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               SharedLlc *shared)
    : params_(params),
      lineShift_(static_cast<std::uint32_t>(floorLog2(params.lineBytes))),
      l1_("L1D", params.l1, 11),
      l2_("L2", params.l2, 22),
      ownLlc_(shared ? nullptr : std::make_unique<SharedLlc>(params)),
      llc_(shared ? shared : ownLlc_.get())
{
    panic_if(!isPowerOf2(params_.lineBytes), "line size must be power of 2");
}

MemAccessResult
CacheHierarchy::accessMiss(PhysAddr paddr, std::uint64_t line,
                           AccessKind kind)
{
    auto &kcounts = counts_[static_cast<size_t>(kind)];
    SetAssocCache &l3 = llc_->l3();

    // Overlap the (almost always host-cold) L3 set row with the L2 scan;
    // stamps included because an L3 miss immediately LRU-victim-scans.
    l3.prefetchSet(line, true);

    // Every fill below follows a just-observed miss of the same line in
    // that array, so the presence re-scan of fill() can be skipped.
    MemAccessResult result;
    if (l2_.access(line)) {
        result.level = MemLevel::L2;
        result.latency = params_.l2Latency;
        l1_.fillMissed(line);
    } else if (l3.access(line)) {
        result.level = MemLevel::L3;
        result.latency = params_.l3Latency;
        l2_.fillMissed(line);
        l1_.fillMissed(line);
    } else {
        result.level = MemLevel::Memory;
        result.latency = params_.l3Latency + llc_->dram().access(paddr);
        l3.fillMissed(line);
        l2_.fillMissed(line);
        l1_.fillMissed(line);
    }
    ++kcounts[static_cast<size_t>(result.level)];
    return result;
}

Count
CacheHierarchy::kindCount(AccessKind kind) const
{
    Count total = 0;
    for (Count c : counts_[static_cast<size_t>(kind)])
        total += c;
    return total;
}

void
CacheHierarchy::resetStats()
{
    for (auto &kind : counts_)
        kind.fill(0);
    l1_.resetStats();
    l2_.resetStats();
    if (ownLlc_)
        ownLlc_->resetStats();
}

void
CacheHierarchy::flush()
{
    l1_.flush();
    l2_.flush();
    if (ownLlc_)
        ownLlc_->flush();
    resetStats();
}

std::uint64_t
CacheHierarchy::stateHash() const
{
    std::uint64_t h = l1_.stateHash();
    h = hashCombine(h, l2_.stateHash());
    h = hashCombine(h, llc_->l3().stateHash());
    for (const auto &kind : counts_)
        for (Count c : kind)
            h = hashCombine(h, c);
    return h;
}

void
CacheHierarchy::registerStats(StatsRegistry &registry,
                              const std::string &prefix) const
{
    const char *kindNames[] = {"data", "ptw"};
    for (int kind = 0; kind < 2; ++kind) {
        auto k = static_cast<AccessKind>(kind);
        std::string base = prefix + "." + kindNames[kind];
        for (int level = 0; level < numMemLevels; ++level) {
            auto l = static_cast<MemLevel>(level);
            registry.addScalar(
                base + ".hits_" + memLevelName(l),
                [this, k, l] {
                    return static_cast<double>(levelCount(k, l));
                },
                "accesses satisfied at this level");
        }
        registry.addScalar(base + ".total", [this, k] {
            return static_cast<double>(kindCount(k));
        }, "total accesses of this kind");
    }
}

} // namespace atscale
