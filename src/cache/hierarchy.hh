/**
 * @file
 * The three-level data cache hierarchy shared by regular program loads and
 * page-table-walker loads.
 *
 * Sharing one physical tag path between data and PTEs is what lets the
 * paper's effects appear: PTE hotness in L1/L2/L3 vs memory (Fig 8), cache
 * contention between PTEs and data, and mcf's "PTEs outcompete data"
 * inversion.
 */

#ifndef ATSCALE_CACHE_HIERARCHY_HH
#define ATSCALE_CACHE_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/set_assoc_cache.hh"
#include "mem/dram.hh"
#include "util/thread_annotations.hh"
#include "util/types.hh"

namespace atscale
{

class StatsRegistry;

/** Where an access was satisfied. */
enum class MemLevel : std::uint8_t
{
    L1 = 0,
    L2 = 1,
    L3 = 2,
    Memory = 3,
};

/** Number of MemLevel values. */
constexpr int numMemLevels = 4;

/** Name of a hierarchy level. */
const char *memLevelName(MemLevel level);

/** Who is performing the access (for attribution/statistics). */
enum class AccessKind : std::uint8_t
{
    Data = 0,
    PtwLoad = 1,
};

/** Result of one access through the hierarchy. */
struct MemAccessResult
{
    MemLevel level = MemLevel::L1;
    Cycles latency = 0;
};

/** Hierarchy configuration (defaults: Haswell Xeon E5-2680 v3, Table III). */
struct HierarchyParams
{
    /** Cache line size in bytes. */
    std::uint32_t lineBytes = 64;

    CacheGeometry l1 = {64, 8, ReplPolicy::TreePlru};    // 32 KiB
    CacheGeometry l2 = {512, 8, ReplPolicy::TreePlru};   // 256 KiB
    CacheGeometry l3 = {16384, 30, ReplPolicy::Lru};     // 30 MiB

    /** Load-to-use latency of each level in core cycles. */
    Cycles l1Latency = 4;
    Cycles l2Latency = 12;
    Cycles l3Latency = 36;

    DramParams dram;
};

/**
 * The shared tail of a cache hierarchy: one L3 plus DRAM. A private
 * hierarchy owns its own instance; a multi-core SharedSystem constructs
 * one and hands it to every core's CacheHierarchy, which is what makes
 * PTE lines and data lines from different cores contend for the same
 * L3 sets (the Patil shared-hierarchy effect, PAPERS.md).
 *
 * cross-core: shared by every core of a SharedSystem without a lock.
 * The multi-core interleave is serial by contract (one core steps at a
 * time, docs/MULTICORE.md), so no concurrent access can exist; the
 * lockstep lane executor never shares a hierarchy between lanes.
 */
class ATSCALE_SHARED_ACROSS_CORES SharedLlc
{
  public:
    explicit SharedLlc(const HierarchyParams &params)
        : l3_("L3", params.l3, 33), dram_(params.dram)
    {
    }

    SetAssocCache &l3() { return l3_; }
    const SetAssocCache &l3() const { return l3_; }
    Dram &dram() { return dram_; }
    const Dram &dram() const { return dram_; }

    /** Reset statistics (contents retained). */
    void
    resetStats()
    {
        l3_.resetStats();
        dram_.reset();
    }

    /** Invalidate contents and statistics. */
    void
    flush()
    {
        l3_.flush();
        dram_.reset();
    }

  private:
    SetAssocCache l3_;
    Dram dram_;
};

/**
 * Latency- and tag-only model of L1D/L2/L3 + DRAM. Misses at each level
 * fill that level (non-inclusive, write-allocate, writes modelled as
 * reads for tag purposes). L1/L2 are always private; the L3+DRAM tail
 * is owned by default, or borrowed from a SharedSystem-owned SharedLlc
 * so several cores' hierarchies converge on one last-level cache.
 */
class CacheHierarchy
{
  public:
    /**
     * @param shared borrow this L3+DRAM tail instead of owning one
     *               (nullptr = private hierarchy, identical behaviour
     *               to the pre-SharedLlc design)
     */
    explicit CacheHierarchy(const HierarchyParams &params = {},
                            SharedLlc *shared = nullptr);

    /**
     * Perform one physical access and return where it hit and latency.
     * The L1D hit path — the overwhelmingly common case — is fully
     * inline; misses take the out-of-line fill path.
     */
    MemAccessResult
    access(PhysAddr paddr, AccessKind kind)
    {
        std::uint64_t line = paddr >> lineShift_;
        // Start the L2 set row early: misses are common enough (the
        // workloads of interest stress the hierarchy) that overlapping
        // the L2 scan with the L1 one is a net win.
        l2_.prefetchSet(line);
        if (l1_.access(line)) {
            ++counts_[static_cast<size_t>(kind)]
                     [static_cast<size_t>(MemLevel::L1)];
            return {MemLevel::L1, params_.l1Latency};
        }
        return accessMiss(paddr, line, kind);
    }

    /** Per-kind, per-level access counts. */
    Count
    levelCount(AccessKind kind, MemLevel level) const
    {
        return counts_[static_cast<size_t>(kind)][static_cast<size_t>(level)];
    }

    /** Total accesses of a kind. */
    Count kindCount(AccessKind kind) const;

    /** Reset statistics (contents retained). The L3/DRAM tail is reset
     * only when owned; a borrowed SharedLlc is reset once by its owner
     * (resetting it per-core would tear another core's stats). */
    void resetStats();
    /** Invalidate all cache contents and statistics (same ownership
     * rule as resetStats for the shared tail). */
    void flush();

    /** Register per-kind, per-level access counts under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    const HierarchyParams &params() const { return params_; }
    const Dram &dram() const { return llc_->dram(); }

    /** The L3+DRAM tail this hierarchy probes (owned or borrowed). */
    SharedLlc &llc() { return *llc_; }
    /** Whether the tail is owned (private) or borrowed (shared). */
    bool ownsLlc() const { return ownLlc_ != nullptr; }

    /** Process-stable digest of cache contents, recency, and counts. */
    std::uint64_t stateHash() const;

  private:
    /** L1 missed: probe/fill L2, L3, memory. */
    MemAccessResult accessMiss(PhysAddr paddr, std::uint64_t line,
                               AccessKind kind);

    HierarchyParams params_;
    std::uint32_t lineShift_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    /** Owned tail for a private hierarchy; null when borrowing. */
    std::unique_ptr<SharedLlc> ownLlc_;
    /** The probed tail, owned or borrowed.
     * cross-core: points at a SharedSystem's SharedLlc when shared;
     * safe lock-free because the multi-core interleave is serial. */
    SharedLlc *llc_;
    std::array<std::array<Count, numMemLevels>, 2> counts_{};
};

} // namespace atscale

#endif // ATSCALE_CACHE_HIERARCHY_HH
