/**
 * @file
 * The three-level data cache hierarchy shared by regular program loads and
 * page-table-walker loads.
 *
 * Sharing one physical tag path between data and PTEs is what lets the
 * paper's effects appear: PTE hotness in L1/L2/L3 vs memory (Fig 8), cache
 * contention between PTEs and data, and mcf's "PTEs outcompete data"
 * inversion.
 */

#ifndef ATSCALE_CACHE_HIERARCHY_HH
#define ATSCALE_CACHE_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <string>

#include "cache/set_assoc_cache.hh"
#include "mem/dram.hh"
#include "util/types.hh"

namespace atscale
{

class StatsRegistry;

/** Where an access was satisfied. */
enum class MemLevel : std::uint8_t
{
    L1 = 0,
    L2 = 1,
    L3 = 2,
    Memory = 3,
};

/** Number of MemLevel values. */
constexpr int numMemLevels = 4;

/** Name of a hierarchy level. */
const char *memLevelName(MemLevel level);

/** Who is performing the access (for attribution/statistics). */
enum class AccessKind : std::uint8_t
{
    Data = 0,
    PtwLoad = 1,
};

/** Result of one access through the hierarchy. */
struct MemAccessResult
{
    MemLevel level = MemLevel::L1;
    Cycles latency = 0;
};

/** Hierarchy configuration (defaults: Haswell Xeon E5-2680 v3, Table III). */
struct HierarchyParams
{
    /** Cache line size in bytes. */
    std::uint32_t lineBytes = 64;

    CacheGeometry l1 = {64, 8, ReplPolicy::TreePlru};    // 32 KiB
    CacheGeometry l2 = {512, 8, ReplPolicy::TreePlru};   // 256 KiB
    CacheGeometry l3 = {16384, 30, ReplPolicy::Lru};     // 30 MiB

    /** Load-to-use latency of each level in core cycles. */
    Cycles l1Latency = 4;
    Cycles l2Latency = 12;
    Cycles l3Latency = 36;

    DramParams dram;
};

/**
 * Latency- and tag-only model of L1D/L2/L3 + DRAM. Misses at each level
 * fill that level (non-inclusive, write-allocate, writes modelled as
 * reads for tag purposes).
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params = {});

    /**
     * Perform one physical access and return where it hit and latency.
     * The L1D hit path — the overwhelmingly common case — is fully
     * inline; misses take the out-of-line fill path.
     */
    MemAccessResult
    access(PhysAddr paddr, AccessKind kind)
    {
        std::uint64_t line = paddr >> lineShift_;
        // Start the L2 set row early: misses are common enough (the
        // workloads of interest stress the hierarchy) that overlapping
        // the L2 scan with the L1 one is a net win.
        l2_.prefetchSet(line);
        if (l1_.access(line)) {
            ++counts_[static_cast<size_t>(kind)]
                     [static_cast<size_t>(MemLevel::L1)];
            return {MemLevel::L1, params_.l1Latency};
        }
        return accessMiss(paddr, line, kind);
    }

    /** Per-kind, per-level access counts. */
    Count
    levelCount(AccessKind kind, MemLevel level) const
    {
        return counts_[static_cast<size_t>(kind)][static_cast<size_t>(level)];
    }

    /** Total accesses of a kind. */
    Count kindCount(AccessKind kind) const;

    /** Reset statistics (contents retained). */
    void resetStats();
    /** Invalidate all cache contents and statistics. */
    void flush();

    /** Register per-kind, per-level access counts under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    const HierarchyParams &params() const { return params_; }
    const Dram &dram() const { return dram_; }

    /** Process-stable digest of cache contents, recency, and counts. */
    std::uint64_t stateHash() const;

  private:
    /** L1 missed: probe/fill L2, L3, memory. */
    MemAccessResult accessMiss(PhysAddr paddr, std::uint64_t line,
                               AccessKind kind);

    HierarchyParams params_;
    std::uint32_t lineShift_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    SetAssocCache l3_;
    Dram dram_;
    std::array<std::array<Count, numMemLevels>, 2> counts_{};
};

} // namespace atscale

#endif // ATSCALE_CACHE_HIERARCHY_HH
