/**
 * @file
 * Replacement policies for the set-associative caches and TLBs.
 */

#ifndef ATSCALE_CACHE_REPLACEMENT_HH
#define ATSCALE_CACHE_REPLACEMENT_HH

#include <cstdint>

namespace atscale
{

/** Supported replacement policies. */
enum class ReplPolicy : std::uint8_t
{
    /** True least-recently-used via per-way timestamps. */
    Lru,
    /** Tree pseudo-LRU (what real L1/L2 arrays typically implement). */
    TreePlru,
    /** Uniformly random victim. */
    Random,
};

/** Policy name for reports. */
const char *replPolicyName(ReplPolicy policy);

} // namespace atscale

#endif // ATSCALE_CACHE_REPLACEMENT_HH
