#include "cache/set_assoc_cache.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace atscale
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::Lru:
        return "LRU";
      case ReplPolicy::TreePlru:
        return "TreePLRU";
      case ReplPolicy::Random:
        return "Random";
    }
    return "?";
}

SetAssocCache::SetAssocCache(std::string name, const CacheGeometry &geom,
                             std::uint64_t seed)
    : name_(std::move(name)), geom_(geom), rng_(seed)
{
    panic_if(!isPowerOf2(geom_.sets), "cache '%s': sets must be a power of 2",
             name_.c_str());
    panic_if(geom_.ways == 0, "cache '%s': needs at least one way",
             name_.c_str());
    panic_if(geom_.policy == ReplPolicy::TreePlru && geom_.ways > 32,
             "cache '%s': tree-PLRU supports at most 32 ways", name_.c_str());
    setShift_ = static_cast<std::uint32_t>(floorLog2(geom_.sets));
    ways_.resize(static_cast<size_t>(geom_.sets) * geom_.ways);
    plruBits_.assign(geom_.sets, 0);
}

std::uint32_t
SetAssocCache::setIndex(std::uint64_t key) const
{
    return static_cast<std::uint32_t>(key & (geom_.sets - 1));
}

std::uint64_t
SetAssocCache::tagOf(std::uint64_t key) const
{
    return key >> setShift_;
}

void
SetAssocCache::touch(std::uint32_t set, std::uint32_t way)
{
    Way &w = ways_[static_cast<size_t>(set) * geom_.ways + way];
    switch (geom_.policy) {
      case ReplPolicy::Lru:
        w.stamp = ++clock_;
        break;
      case ReplPolicy::TreePlru: {
        // Walk the implicit binary tree from root to this way, flipping
        // each node to point away from the path taken.
        std::uint64_t &bits = plruBits_[set];
        std::uint32_t node = 1; // 1-based heap position in the implicit tree
        std::uint32_t lo = 0, hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            bool right = way >= mid;
            if (right) {
                bits &= ~(1ull << node);
                lo = mid;
            } else {
                bits |= (1ull << node);
                hi = mid;
            }
            node = node * 2 + (right ? 1 : 0);
        }
        break;
      }
      case ReplPolicy::Random:
        break;
    }
}

std::uint32_t
SetAssocCache::victim(std::uint32_t set)
{
    const size_t base = static_cast<size_t>(set) * geom_.ways;
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < geom_.ways; ++w)
        if (!ways_[base + w].valid)
            return w;

    switch (geom_.policy) {
      case ReplPolicy::Lru: {
        std::uint32_t best = 0;
        std::uint64_t oldest = ways_[base].stamp;
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            if (ways_[base + w].stamp < oldest) {
                oldest = ways_[base + w].stamp;
                best = w;
            }
        }
        return best;
      }
      case ReplPolicy::TreePlru: {
        std::uint64_t bits = plruBits_[set];
        std::uint32_t node = 1;
        std::uint32_t lo = 0, hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            bool right = (bits >> node) & 1;
            if (right) {
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node = node * 2;
            }
        }
        return lo;
      }
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng_.below(geom_.ways));
    }
    return 0;
}

bool
SetAssocCache::access(std::uint64_t key)
{
    std::uint32_t set = setIndex(key);
    std::uint64_t tag = tagOf(key);
    const size_t base = static_cast<size_t>(set) * geom_.ways;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            touch(set, w);
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
SetAssocCache::probe(std::uint64_t key) const
{
    std::uint32_t set = setIndex(key);
    std::uint64_t tag = tagOf(key);
    const size_t base = static_cast<size_t>(set) * geom_.ways;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        const Way &way = ways_[base + w];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::fill(std::uint64_t key)
{
    std::uint32_t set = setIndex(key);
    std::uint64_t tag = tagOf(key);
    const size_t base = static_cast<size_t>(set) * geom_.ways;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            touch(set, w);
            return;
        }
    }
    std::uint32_t w = victim(set);
    Way &way = ways_[base + w];
    way.valid = true;
    way.tag = tag;
    touch(set, w);
}

bool
SetAssocCache::invalidate(std::uint64_t key)
{
    std::uint32_t set = setIndex(key);
    std::uint64_t tag = tagOf(key);
    const size_t base = static_cast<size_t>(set) * geom_.ways;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.valid = false;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (Way &w : ways_)
        w.valid = false;
    std::fill(plruBits_.begin(), plruBits_.end(), 0);
}

Count
SetAssocCache::validEntries() const
{
    Count n = 0;
    for (const Way &w : ways_)
        n += w.valid ? 1 : 0;
    return n;
}

} // namespace atscale
