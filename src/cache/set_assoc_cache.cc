#include "cache/set_assoc_cache.hh"

#include "util/bitfield.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace atscale
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::Lru:
        return "LRU";
      case ReplPolicy::TreePlru:
        return "TreePLRU";
      case ReplPolicy::Random:
        return "Random";
    }
    return "?";
}

SetAssocCache::SetAssocCache(std::string name, const CacheGeometry &geom,
                             std::uint64_t seed)
    : name_(std::move(name)), geom_(geom), rng_(seed)
{
    panic_if(!isPowerOf2(geom_.sets), "cache '%s': sets must be a power of 2",
             name_.c_str());
    panic_if(geom_.ways == 0, "cache '%s': needs at least one way",
             name_.c_str());
    panic_if(geom_.ways > 64,
             "cache '%s': at most 64 ways (one valid-mask word per set)",
             name_.c_str());
    panic_if(geom_.policy == ReplPolicy::TreePlru && geom_.ways > 32,
             "cache '%s': tree-PLRU supports at most 32 ways", name_.c_str());
    setShift_ = static_cast<std::uint32_t>(floorLog2(geom_.sets));
    const std::size_t entries = static_cast<std::size_t>(geom_.sets) *
                                geom_.ways;
    tags_.assign(entries, emptyTag);
    stamps_.assign(entries, 0);
    valid_.assign(geom_.sets, 0);
    plruBits_.assign(geom_.sets, 0);
}

std::uint32_t
SetAssocCache::victim(std::uint32_t set)
{
    // Prefer the lowest-index invalid way; the policy only decides among
    // full sets.
    const std::uint64_t free = ~valid_[set] & fullMask();
    if (free != 0)
        return static_cast<std::uint32_t>(std::countr_zero(free));

    const std::size_t base = static_cast<std::size_t>(set) * geom_.ways;
    switch (geom_.policy) {
      case ReplPolicy::Lru: {
        std::uint32_t best = 0;
        std::uint64_t oldest = stamps_[base];
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            if (stamps_[base + w] < oldest) {
                oldest = stamps_[base + w];
                best = w;
            }
        }
        return best;
      }
      case ReplPolicy::TreePlru: {
        std::uint64_t bits = plruBits_[set];
        std::uint32_t node = 1;
        std::uint32_t lo = 0, hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            bool right = (bits >> node) & 1;
            if (right) {
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node = node * 2;
            }
        }
        return lo;
      }
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng_.below(geom_.ways));
    }
    return 0;
}

void
SetAssocCache::fill(std::uint64_t key)
{
    int w = findWay(key);
    if (w >= 0) {
        touch(setIndex(key), static_cast<std::uint32_t>(w));
        return;
    }
    fillMissed(key);
}

void
SetAssocCache::fillMissed(std::uint64_t key)
{
    std::uint64_t tag = tagOf(key);
    panic_if(tag == emptyTag, "cache '%s': key %#lx collides with the "
             "invalid-way sentinel tag", name_.c_str(), key);
    std::uint32_t set = setIndex(key);
    std::uint32_t w = victim(set);
    valid_[set] |= 1ull << w;
    tags_[static_cast<std::size_t>(set) * geom_.ways + w] = tag;
    touch(set, w);
}

bool
SetAssocCache::invalidate(std::uint64_t key)
{
    int w = findWay(key);
    if (w < 0)
        return false;
    std::uint32_t set = setIndex(key);
    valid_[set] &= ~(1ull << w);
    tags_[static_cast<std::size_t>(set) * geom_.ways + w] = emptyTag;
    return true;
}

void
SetAssocCache::flush()
{
    std::fill(tags_.begin(), tags_.end(), emptyTag);
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(plruBits_.begin(), plruBits_.end(), 0);
}

Count
SetAssocCache::validEntries() const
{
    Count n = 0;
    for (std::uint64_t mask : valid_)
        n += static_cast<Count>(std::popcount(mask));
    return n;
}

std::uint64_t
SetAssocCache::stateHash() const
{
    std::uint64_t h = fnv1aBasis;
    for (std::uint32_t s = 0; s < geom_.sets; ++s) {
        const std::size_t base = static_cast<std::size_t>(s) * geom_.ways;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            bool valid = (valid_[s] >> w) & 1;
            h = hashCombine(h, valid ? 1 : 0);
            if (valid)
                h = hashCombine(h, tags_[base + w]);
            h = hashCombine(h, stamps_[base + w]);
        }
    }
    for (std::uint64_t bits : plruBits_)
        h = hashCombine(h, bits);
    h = hashCombine(h, clock_);
    h = hashCombine(h, hits_);
    h = hashCombine(h, misses_);
    return h;
}

} // namespace atscale
