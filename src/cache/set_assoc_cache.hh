/**
 * @file
 * Generic tag-only set-associative cache.
 *
 * Used for every tag array in the machine: the L1D/L2/L3 data caches, the
 * TLBs, and the paging-structure caches. Only hit/miss behaviour is
 * modelled — no data storage — which is all the paper's counter-level
 * metrics require.
 */

#ifndef ATSCALE_CACHE_SET_ASSOC_CACHE_HH
#define ATSCALE_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace atscale
{

/** Geometry and policy of a set-associative array. */
struct CacheGeometry
{
    /** Number of sets; must be a power of two (1 = fully associative). */
    std::uint32_t sets = 64;
    /** Ways per set. */
    std::uint32_t ways = 8;
    /** Replacement policy. */
    ReplPolicy policy = ReplPolicy::Lru;
};

/**
 * A set-associative array of 64-bit keys. The caller is responsible for
 * converting addresses into keys (e.g. stripping the line or page offset);
 * the array splits the key into set index (low bits) and tag.
 */
class SetAssocCache
{
  public:
    SetAssocCache(std::string name, const CacheGeometry &geom,
                  std::uint64_t seed = 1);

    /**
     * Look up a key and update replacement state on a hit.
     * @return true on hit
     */
    bool access(std::uint64_t key);

    /** Look up without updating any state. */
    bool probe(std::uint64_t key) const;

    /**
     * Insert a key (does nothing if already present), evicting the
     * policy's victim if the set is full.
     */
    void fill(std::uint64_t key);

    /** Invalidate a key if present; @return true if it was present. */
    bool invalidate(std::uint64_t key);

    /** Invalidate everything and reset replacement state. */
    void flush();

    /** Number of valid entries. */
    Count validEntries() const;

    /** Total capacity in entries. */
    Count
    capacity() const
    {
        return static_cast<Count>(geom_.sets) * geom_.ways;
    }

    /** Lifetime hits. */
    Count hits() const { return hits_; }
    /** Lifetime misses. */
    Count misses() const { return misses_; }
    /** Reset statistics only (keeps contents). */
    void resetStats() { hits_ = misses_ = 0; }

    const std::string &name() const { return name_; }
    const CacheGeometry &geometry() const { return geom_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    std::uint32_t setIndex(std::uint64_t key) const;
    std::uint64_t tagOf(std::uint64_t key) const;
    /** Way index of the victim in set s per the replacement policy. */
    std::uint32_t victim(std::uint32_t set);
    /** Update replacement metadata for a touch of (set, way). */
    void touch(std::uint32_t set, std::uint32_t way);

    std::string name_;
    CacheGeometry geom_;
    std::uint32_t setShift_;
    std::vector<Way> ways_;
    /** Tree-PLRU bit vectors, one per set (ways rounded to power of two). */
    std::vector<std::uint64_t> plruBits_;
    std::uint64_t clock_ = 0;
    Rng rng_;
    Count hits_ = 0;
    Count misses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_CACHE_SET_ASSOC_CACHE_HH
