/**
 * @file
 * Generic tag-only set-associative cache.
 *
 * Used for every tag array in the machine: the L1D/L2/L3 data caches, the
 * TLBs, and the paging-structure caches. Only hit/miss behaviour is
 * modelled — no data storage — which is all the paper's counter-level
 * metrics require.
 *
 * The lookup path (access/probe/touch) is defined inline here: these run
 * once or more per simulated memory reference across every tag array in
 * the machine, and are the substrate of the fast-path translation layer
 * (mmu/fastpath.hh), which needs them — plus the direct-way API below —
 * fully inlinable into the simulation hot loop.
 *
 * Storage is struct-of-arrays: tags, recency stamps, and a per-set valid
 * bitmask live in separate vectors. A tag scan of a 30-way L3 set then
 * touches 240 B of tags instead of ~720 B of interleaved way records —
 * the set scans are the dominant memory traffic of the whole simulation
 * (the L3 alone is ~0.5 M ways). Invalid ways hold a sentinel tag so the
 * scan is a pure contiguous 64-bit compare loop the compiler can
 * vectorize; the valid bitmask remains the authority for victim
 * selection and state digests.
 */

#ifndef ATSCALE_CACHE_SET_ASSOC_CACHE_HH
#define ATSCALE_CACHE_SET_ASSOC_CACHE_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace atscale
{

/** Geometry and policy of a set-associative array. */
struct CacheGeometry
{
    /** Number of sets; must be a power of two (1 = fully associative). */
    std::uint32_t sets = 64;
    /** Ways per set; at most 64 (the valid mask is one word per set). */
    std::uint32_t ways = 8;
    /** Replacement policy. */
    ReplPolicy policy = ReplPolicy::Lru;
};

/**
 * A set-associative array of 64-bit keys. The caller is responsible for
 * converting addresses into keys (e.g. stripping the line or page offset);
 * the array splits the key into set index (low bits) and tag.
 */
class SetAssocCache
{
  public:
    SetAssocCache(std::string name, const CacheGeometry &geom,
                  std::uint64_t seed = 1);

    /**
     * Look up a key and update replacement state on a hit.
     * @return true on hit
     */
    bool access(std::uint64_t key);

    /** Look up without updating any state. */
    bool probe(std::uint64_t key) const;

    /**
     * Hint the host to start loading this key's set. The simulated L2/L3
     * tag arrays are megabytes, so a lookup's set scan is usually a host
     * cache miss; callers that know a lookup is coming (the hierarchy
     * miss path) overlap it with earlier work. `withStamps` also fetches
     * the set's recency stamps — worthwhile when a victim scan is likely
     * to follow (LRU arrays on the fill path).
     */
    void
    prefetchSet(std::uint64_t key, bool withStamps = false) const
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(key)) * geom_.ways;
        // A 30-way set spans ~4 cache lines; touch both ends of the row.
        __builtin_prefetch(&tags_[base]);
        __builtin_prefetch(&tags_[base + geom_.ways - 1]);
        if (withStamps) {
            __builtin_prefetch(&stamps_[base]);
            __builtin_prefetch(&stamps_[base + geom_.ways - 1]);
        }
    }

    /**
     * Insert a key (does nothing if already present), evicting the
     * policy's victim if the set is full.
     */
    void fill(std::uint64_t key);

    /**
     * Insert a key the caller has just proven absent (an access() or
     * probe() of the same key returned false, with no intervening
     * operations). Skips fill()'s presence re-scan; behaviour is
     * otherwise identical.
     */
    void fillMissed(std::uint64_t key);

    /** Invalidate a key if present; @return true if it was present. */
    bool invalidate(std::uint64_t key);

    /** Invalidate everything and reset replacement state. */
    void flush();

    /** Number of valid entries. */
    Count validEntries() const;

    /** Total capacity in entries. */
    Count
    capacity() const
    {
        return static_cast<Count>(geom_.sets) * geom_.ways;
    }

    /** Lifetime hits. */
    Count hits() const { return hits_; }
    /** Lifetime misses. */
    Count misses() const { return misses_; }
    /** Reset statistics only (keeps contents). */
    void resetStats() { hits_ = misses_ = 0; }

    const std::string &name() const { return name_; }
    const CacheGeometry &geometry() const { return geom_; }

    // --- Direct-way API (fast-path translation layer) -------------------
    //
    // A fast-path cache entry remembers where a key resides (set, way,
    // tag) and replays a hit without re-scanning the set — but only after
    // revalidating against the live array with holdsAt(), so an entry can
    // never be served after the underlying way was evicted or replaced.
    // touchHit() and noteMiss() replicate access()'s hit and miss
    // bookkeeping exactly; this is what makes fast-path replays
    // indistinguishable from full lookups at the counter level.

    /** Set index a key maps to. */
    std::uint32_t setIndexOf(std::uint64_t key) const { return setIndex(key); }

    /** Tag a key carries within its set. */
    std::uint64_t tagOf(std::uint64_t key) const { return key >> setShift_; }

    /** Way currently holding key, or -1. Does not update any state. */
    int
    findWay(std::uint64_t key) const
    {
        std::uint32_t set = setIndex(key);
        std::uint64_t tag = tagOf(key);
        const std::size_t base = static_cast<std::size_t>(set) * geom_.ways;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (tags_[base + w] == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    /** True iff (set, way) still holds exactly this tag. */
    bool
    holdsAt(std::uint32_t set, std::uint32_t way, std::uint64_t tag) const
    {
        return tags_[static_cast<std::size_t>(set) * geom_.ways + way] == tag;
    }

    /** Replay the hit bookkeeping of access() for a validated (set, way). */
    void
    touchHit(std::uint32_t set, std::uint32_t way)
    {
        touch(set, way);
        ++hits_;
    }

    /** Replay the miss bookkeeping of access() (no replacement change). */
    void noteMiss() { ++misses_; }

    /**
     * Replay n consecutive touchHit() calls on the same validated
     * (set, way) in O(1). Equivalent to calling touchHit() n times with
     * no intervening operations: under LRU each touch advances the clock
     * and restamps the same way, so only the final clock value matters;
     * tree-PLRU touches are idempotent per way; Random keeps no recency.
     */
    void
    touchHitRun(std::uint32_t set, std::uint32_t way, Count n)
    {
        switch (geom_.policy) {
          case ReplPolicy::Lru:
            clock_ += n;
            stamps_[static_cast<std::size_t>(set) * geom_.ways + way] =
                clock_;
            break;
          case ReplPolicy::TreePlru:
            touchPlru(set, way);
            break;
          case ReplPolicy::Random:
            break;
        }
        hits_ += n;
    }

    /** Replay n consecutive noteMiss() calls in O(1). */
    void noteMissRun(Count n) { misses_ += n; }

    /** Invoke fn(set, way, tag) for every valid entry (diff testing). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (std::uint32_t s = 0; s < geom_.sets; ++s) {
            const std::size_t base = static_cast<std::size_t>(s) * geom_.ways;
            for (std::uint32_t w = 0; w < geom_.ways; ++w) {
                if ((valid_[s] >> w) & 1)
                    fn(s, w, tags_[base + w]);
            }
        }
    }

    /**
     * Process-stable digest of the complete microarchitectural state:
     * contents, per-way recency stamps, PLRU bits, the replacement clock,
     * and the statistics counters. Two arrays that evolved through the
     * same sequence of (hit, miss, fill, invalidate) operations hash
     * equal — the differential suite's definition of "identical state".
     */
    std::uint64_t stateHash() const;

  private:
    /**
     * Tag stored in invalid ways so lookups are pure tag compares. No
     * real key produces it: tags are keys shifted right by the set bits,
     * and keys are page/line numbers of at-most-52-bit addresses, so a
     * genuine all-ones tag is impossible (fill() enforces this).
     */
    static constexpr std::uint64_t emptyTag = ~0ull;

    std::uint32_t
    setIndex(std::uint64_t key) const
    {
        return static_cast<std::uint32_t>(key & (geom_.sets - 1));
    }

    /** Way index of the victim in set s per the replacement policy. */
    std::uint32_t victim(std::uint32_t set);

    /** Update replacement metadata for a touch of (set, way). */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        switch (geom_.policy) {
          case ReplPolicy::Lru:
            stamps_[static_cast<std::size_t>(set) * geom_.ways + way] =
                ++clock_;
            break;
          case ReplPolicy::TreePlru:
            touchPlru(set, way);
            break;
          case ReplPolicy::Random:
            break;
        }
    }

    /**
     * Walk the implicit binary tree from root to this way, flipping each
     * node to point away from the path taken. Inline: the tree-PLRU L1/L2
     * data caches touch on every hit.
     */
    void
    touchPlru(std::uint32_t set, std::uint32_t way)
    {
        std::uint64_t bits = plruBits_[set];
        std::uint32_t node = 1; // 1-based heap position in the implicit tree
        std::uint32_t lo = 0, hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            bool right = way >= mid;
            if (right) {
                bits &= ~(1ull << node);
                lo = mid;
            } else {
                bits |= (1ull << node);
                hi = mid;
            }
            node = node * 2 + (right ? 1 : 0);
        }
        plruBits_[set] = bits;
    }

    /** All-ways-valid mask for one set. */
    std::uint64_t
    fullMask() const
    {
        return geom_.ways == 64 ? ~0ull : (1ull << geom_.ways) - 1;
    }

    std::string name_;
    CacheGeometry geom_;
    std::uint32_t setShift_;
    /** Per-way tags (sets × ways, row-major). */
    std::vector<std::uint64_t> tags_;
    /** Per-way LRU recency stamps (sets × ways; only LRU reads them). */
    std::vector<std::uint64_t> stamps_;
    /** One valid bitmask word per set (bit w = way w holds a tag). */
    std::vector<std::uint64_t> valid_;
    /** Tree-PLRU bit vectors, one per set (ways rounded to power of two). */
    std::vector<std::uint64_t> plruBits_;
    std::uint64_t clock_ = 0;
    Rng rng_;
    Count hits_ = 0;
    Count misses_ = 0;
};

inline bool
SetAssocCache::access(std::uint64_t key)
{
    std::uint32_t set = setIndex(key);
    std::uint64_t tag = tagOf(key);
    const std::size_t base = static_cast<std::size_t>(set) * geom_.ways;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (tags_[base + w] == tag) {
            touch(set, w);
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

inline bool
SetAssocCache::probe(std::uint64_t key) const
{
    return findWay(key) >= 0;
}

} // namespace atscale

#endif // ATSCALE_CACHE_SET_ASSOC_CACHE_HH
