#include "core/correlation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace atscale
{

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    panic_if(x.size() != y.size(), "correlation input size mismatch");
    std::size_t n = x.size();
    if (n < 2)
        return 0.0;

    double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / n;
    double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / n;
    double sxx = 0, syy = 0, sxy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = x[i] - mean_x;
        double dy = y[i] - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if (sxx <= 0 || syy <= 0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
averageRanks(const std::vector<double> &values)
{
    std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return values[a] < values[b];
    });

    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        // Average rank for the tie group [i, j] (1-based ranks).
        double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                     1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

double
spearman(const std::vector<double> &x, const std::vector<double> &y)
{
    return pearson(averageRanks(x), averageRanks(y));
}

} // namespace atscale
