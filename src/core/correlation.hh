/**
 * @file
 * Pearson and Spearman correlation, the two statistics of the paper's
 * proxy-metric comparison (Table V).
 */

#ifndef ATSCALE_CORE_CORRELATION_HH
#define ATSCALE_CORE_CORRELATION_HH

#include <vector>

namespace atscale
{

/** Pearson linear correlation coefficient; 0 for degenerate inputs. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Spearman rank correlation: Pearson on tie-aware (average) ranks.
 * Measures monotonicity rather than linearity.
 */
double spearman(const std::vector<double> &x, const std::vector<double> &y);

/** Tie-aware average ranks of the values (1-based). */
std::vector<double> averageRanks(const std::vector<double> &values);

} // namespace atscale

#endif // ATSCALE_CORE_CORRELATION_HH
