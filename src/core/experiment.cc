#include "core/experiment.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "workloads/registry.hh"

namespace atscale
{

namespace
{

/** Cache-file name for a run (all knobs that affect the result). */
std::string
cachePath(const RunConfig &config)
{
    const char *dir = std::getenv("ATSCALE_CACHE_DIR");
    if (!dir || !*dir)
        return "";
    char buf[512];
    std::snprintf(buf, sizeof(buf), "%s/%s_f%llu_%s_m%d_w%llu_n%llu_s%llu.run",
                  dir, config.workload.c_str(),
                  static_cast<unsigned long long>(config.footprintBytes),
                  pageSizeName(config.pageSize).c_str(),
                  static_cast<int>(config.mode),
                  static_cast<unsigned long long>(config.warmupRefs),
                  static_cast<unsigned long long>(config.measureRefs),
                  static_cast<unsigned long long>(config.seed));
    return buf;
}

bool
loadCached(const std::string &path, RunResult &result)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string name;
    unsigned long long value;
    int fields = 0;
    while (in >> name >> value) {
        if (name == "footprint_touched") {
            result.footprintTouched = value;
        } else if (name == "page_table_bytes") {
            result.pageTableBytes = value;
        } else {
            auto id = eventFromName(name);
            if (!id)
                return false;
            result.counters.add(*id, value);
        }
        ++fields;
    }
    return fields > 0;
}

void
storeCached(const std::string &path, const RunResult &result)
{
    std::ofstream out(path);
    if (!out)
        return;
    for (int i = 0; i < numEvents; ++i) {
        auto id = static_cast<EventId>(i);
        out << eventName(id) << ' ' << result.counters.get(id) << '\n';
    }
    out << "footprint_touched " << result.footprintTouched << '\n';
    out << "page_table_bytes " << result.pageTableBytes << '\n';
}

} // namespace

double
RunResult::cpi() const
{
    auto instr = static_cast<double>(instructions());
    return instr > 0 ? static_cast<double>(cycles()) / instr : 0.0;
}

double
RunResult::seconds(double freqGHz) const
{
    return static_cast<double>(cycles()) / (freqGHz * 1e9);
}

RunResult
runExperiment(const RunConfig &config, const PlatformParams &params)
{
    RunResult result;
    result.config = config;

    std::string cache_file = cachePath(config);
    if (!cache_file.empty() && loadCached(cache_file, result))
        return result;

    std::unique_ptr<Workload> workload = createWorkload(config.workload);
    fatal_if(!workload->supports(config.mode),
             "workload '%s' does not support the requested mode",
             config.workload.c_str());

    Platform platform(params, config.pageSize, workload->traits(),
                      config.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = config.footprintBytes;
    wl_config.seed = config.seed;
    wl_config.mode = config.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);

    // Warm-up: populate pages, fill TLBs/caches (the paper's dry run).
    platform.core.run(*stream, config.warmupRefs);

    // Measurement window.
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    platform.core.run(*stream, config.measureRefs);

    result.counters = platform.core.counters();
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();

    if (!cache_file.empty())
        storeCached(cache_file, result);
    return result;
}

} // namespace atscale
