#include "core/experiment.hh"

#include <algorithm>

#include "core/multicore.hh"
#include "core/ref_stream_store.hh"
#include "core/run_cache.hh"
#include "obs/session.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace atscale
{

double
RunResult::cpi() const
{
    auto instr = static_cast<double>(instructions());
    return instr > 0 ? static_cast<double>(cycles()) / instr : 0.0;
}

double
RunResult::seconds(double freqGHz) const
{
    return static_cast<double>(cycles()) / (freqGHz * 1e9);
}

RunResult
runExperiment(const RunSpec &spec, const PlatformParams &params)
{
    return runExperiment(spec, params, nullptr);
}

RunResult
runExperiment(const RunSpec &spec, const PlatformParams &params,
              ObsSession *obs)
{
    const bool observing = obs && obs->enabled();

    RunResult result;
    result.spec = spec;

    // Observed runs bypass the memoization cache in both directions: a
    // cached result carries no windows, traces, or registry samples, and
    // a chunked run publishes CpuClkUnhalted with different fractional
    // rounding than a single run, so storing it would perturb later
    // unobserved replays of the same spec.
    if (!observing && loadCachedRun(spec, result))
        return result;

    // Multi-core specs run on a SharedSystem (core/multicore.hh); the
    // aggregate result flows through the same cache and export paths as
    // a single-core run.
    if (spec.cores > 1) {
        result = runMulticoreExperiment(spec, params, obs).aggregate;
        if (!observing)
            storeCachedRun(spec, result);
        return result;
    }

    std::unique_ptr<Workload> workload = createWorkload(spec.workload);
    fatal_if(!workload->supports(spec.mode),
             "workload '%s' does not support the requested mode",
             spec.workload.c_str());

    PlatformParams run_params = params;
    run_params.mmu.fastPath = params.mmu.fastPath && spec.fastPath;
    run_params.mmu.scheme = spec.scheme;
    Platform platform(run_params, spec.pageSize, workload->traits(),
                      spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);
    // Record/replay interposition (no-op unless ATSCALE_STREAM_DIR is
    // set): replayed, recorded, and plain streams are bit-identical.
    // The post-instantiate vmas are the rebase target — recordings made
    // under a different page size carry different region bases.
    stream = wrapWithStreamStore(std::move(stream), spec, observing,
                                 platform.space.vmas());

    if (observing) {
        platform.registerStats(obs->registry());
        stream->registerStats(obs->registry(), "workload");
        platform.core.attachTracer(obs->tracer());
    }

    // Warm-up: populate pages, fill TLBs/caches (the paper's dry run).
    platform.core.run(*stream, spec.warmupRefs);

    // Measurement window.
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    if (observing)
        obs->beginMeasurement(platform.core.counters());

    Count chunk = observing ? obs->chunkRefs() : 0;
    if (chunk == 0) {
        platform.core.run(*stream, spec.measureRefs);
    } else {
        // Chunked execution so the sampler sees periodic snapshots.
        Count done = 0;
        while (done < spec.measureRefs) {
            Count n = std::min(chunk, spec.measureRefs - done);
            Count ran = platform.core.run(*stream, n);
            obs->observe(platform.core.counters());
            done += ran;
            if (ran < n)
                break; // stream exhausted
        }
    }

#ifndef NDEBUG
    // The conservation contract (docs/OBSERVABILITY.md): the whole
    // measurement window must be attributed across Eq-1 components —
    // this is what makes the golden suite's pinned counters trustworthy
    // as a decomposition, not just as bytes.
    {
        const CycleLedger &ledger = platform.core.ledger();
        ledger.verify(ledger.total(), platform.core.cycles(),
                      "runExperiment");
    }
#endif

    result.counters = platform.core.counters();
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();

    if (observing) {
        // Materialize registry values before the platform is destroyed,
        // and detach the tracer (it outlives this frame; the core does
        // not).
        obs->finishRun();
        platform.core.attachTracer(nullptr);
    }

    if (!observing)
        storeCachedRun(spec, result);
    return result;
}

} // namespace atscale
