#include "core/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/session.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace atscale
{

namespace
{

/** Cache-file name for a run (all knobs that affect the result). */
std::string
cachePath(const RunConfig &config)
{
    const char *dir = std::getenv("ATSCALE_CACHE_DIR");
    if (!dir || !*dir)
        return "";
    char buf[512];
    std::snprintf(buf, sizeof(buf), "%s/%s_f%llu_%s_m%d_w%llu_n%llu_s%llu.run",
                  dir, config.workload.c_str(),
                  static_cast<unsigned long long>(config.footprintBytes),
                  pageSizeName(config.pageSize).c_str(),
                  static_cast<int>(config.mode),
                  static_cast<unsigned long long>(config.warmupRefs),
                  static_cast<unsigned long long>(config.measureRefs),
                  static_cast<unsigned long long>(config.seed));
    return buf;
}

bool
loadCached(const std::string &path, RunResult &result)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string name;
    unsigned long long value;
    int fields = 0;
    while (in >> name >> value) {
        if (name == "footprint_touched") {
            result.footprintTouched = value;
        } else if (name == "page_table_bytes") {
            result.pageTableBytes = value;
        } else {
            auto id = eventFromName(name);
            if (!id)
                return false;
            result.counters.add(*id, value);
        }
        ++fields;
    }
    return fields > 0;
}

void
storeCached(const std::string &path, const RunResult &result)
{
    std::ofstream out(path);
    if (!out)
        return;
    result.counters.forEach([&out](EventId, const char *name, Count value) {
        out << name << ' ' << value << '\n';
    });
    out << "footprint_touched " << result.footprintTouched << '\n';
    out << "page_table_bytes " << result.pageTableBytes << '\n';
}

} // namespace

double
RunResult::cpi() const
{
    auto instr = static_cast<double>(instructions());
    return instr > 0 ? static_cast<double>(cycles()) / instr : 0.0;
}

double
RunResult::seconds(double freqGHz) const
{
    return static_cast<double>(cycles()) / (freqGHz * 1e9);
}

RunResult
runExperiment(const RunConfig &config, const PlatformParams &params)
{
    return runExperiment(config, params, nullptr);
}

RunResult
runExperiment(const RunConfig &config, const PlatformParams &params,
              ObsSession *obs)
{
    const bool observing = obs && obs->enabled();

    RunResult result;
    result.config = config;

    // Observed runs bypass the memoization cache in both directions: a
    // cached result carries no windows, traces, or registry samples, and
    // a chunked run publishes CpuClkUnhalted with different fractional
    // rounding than a single run, so storing it would perturb later
    // unobserved replays of the same config.
    std::string cache_file = observing ? std::string() : cachePath(config);
    if (!cache_file.empty() && loadCached(cache_file, result))
        return result;

    std::unique_ptr<Workload> workload = createWorkload(config.workload);
    fatal_if(!workload->supports(config.mode),
             "workload '%s' does not support the requested mode",
             config.workload.c_str());

    Platform platform(params, config.pageSize, workload->traits(),
                      config.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = config.footprintBytes;
    wl_config.seed = config.seed;
    wl_config.mode = config.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);

    if (observing) {
        platform.registerStats(obs->registry());
        stream->registerStats(obs->registry(), "workload");
        platform.core.attachTracer(obs->tracer());
    }

    // Warm-up: populate pages, fill TLBs/caches (the paper's dry run).
    platform.core.run(*stream, config.warmupRefs);

    // Measurement window.
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    if (observing)
        obs->beginMeasurement(platform.core.counters());

    Count chunk = observing ? obs->chunkRefs() : 0;
    if (chunk == 0) {
        platform.core.run(*stream, config.measureRefs);
    } else {
        // Chunked execution so the sampler sees periodic snapshots.
        Count done = 0;
        while (done < config.measureRefs) {
            Count n = std::min(chunk, config.measureRefs - done);
            Count ran = platform.core.run(*stream, n);
            obs->observe(platform.core.counters());
            done += ran;
            if (ran < n)
                break; // stream exhausted
        }
    }

    result.counters = platform.core.counters();
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();

    if (observing) {
        // Materialize registry values before the platform is destroyed,
        // and detach the tracer (it outlives this frame; the core does
        // not).
        obs->finishRun();
        platform.core.attachTracer(nullptr);
    }

    if (!cache_file.empty())
        storeCached(cache_file, result);
    return result;
}

} // namespace atscale
