/**
 * @file
 * The single-run experiment: instantiate a workload on a fresh platform at
 * one (footprint, page size), warm up, measure a counter window.
 *
 * This is the simulated analogue of one of the paper's runs: the warm-up
 * window plays the role of the 60-second dry run, and counter deltas are
 * taken over the measurement window only.
 *
 * Each run is fully self-contained: the workload instance, its reference
 * stream, and the whole simulated platform (with RNG state seeded from
 * the spec) are constructed inside runExperiment() and torn down before
 * it returns. No mutable state is shared between runs, which is the
 * invariant that lets SweepEngine (core/sweep.hh) execute many specs
 * concurrently.
 */

#ifndef ATSCALE_CORE_EXPERIMENT_HH
#define ATSCALE_CORE_EXPERIMENT_HH

#include <string>

#include "core/platform.hh"
#include "core/run_spec.hh"
#include "perf/counter_set.hh"
#include "perf/derived.hh"
#include "vm/page_size.hh"
#include "workloads/workload.hh"

namespace atscale
{

class ObsSession;

/** Everything measured in one run. */
struct RunResult
{
    RunSpec spec;
    /** Counter deltas over the measurement window. */
    CounterSet counters;
    /** Data bytes actually populated (pages touched x page size). */
    std::uint64_t footprintTouched = 0;
    /** Page-table bytes built. */
    std::uint64_t pageTableBytes = 0;

    Count cycles() const { return counters.get(EventId::CpuClkUnhalted); }
    Count instructions() const { return counters.get(EventId::InstRetired); }

    /** Cycles per instruction over the window. */
    double cpi() const;

    /** Wall-clock seconds at the platform frequency. */
    double seconds(double freqGHz = 2.5) const;
};

/**
 * Run one experiment on a fresh platform.
 *
 * Runs are memoized on disk when the environment variable
 * ATSCALE_CACHE_DIR is set (see core/run_cache.hh), so the per-figure
 * benches can share the expensive sweep results.
 */
RunResult runExperiment(const RunSpec &spec,
                        const PlatformParams &params = {});

/**
 * Run one experiment with observability attached. When `obs` is null or
 * has nothing enabled this is identical to the two-argument overload.
 * Otherwise component/workload statistics are registered into the
 * session's registry, the session's tracer (if any) is attached to the
 * core, the measurement window is executed in chunks so the sampler sees
 * periodic counter snapshots, and the disk memoization cache is bypassed
 * in both directions (cached results carry no windows or traces, and
 * chunked runs publish cycles with slightly different rounding than a
 * single run, so they must not poison the cache).
 */
RunResult runExperiment(const RunSpec &spec, const PlatformParams &params,
                        ObsSession *obs);

} // namespace atscale

#endif // ATSCALE_CORE_EXPERIMENT_HH
