#include "core/hugepage_advisor.hh"

#include "perf/derived.hh"

namespace atscale
{

HugepageAdvisor::HugepageAdvisor(const AdvisorParams &params)
    : params_(params)
{
}

void
HugepageAdvisor::finishWindow(double wcpi)
{
    windows_.push_back(wcpi);
    if (wcpi >= params_.promoteWcpi) {
        ++hotStreak_;
        coldStreak_ = 0;
    } else if (wcpi <= params_.demoteWcpi) {
        ++coldStreak_;
        hotStreak_ = 0;
    } else {
        hotStreak_ = 0;
        coldStreak_ = 0;
    }

    if (advice_ == HugepageAdvice::Keep4K &&
        hotStreak_ >= params_.promoteWindows) {
        advice_ = HugepageAdvice::Promote2M;
    } else if (advice_ == HugepageAdvice::Promote2M &&
               coldStreak_ >= params_.demoteWindows) {
        advice_ = HugepageAdvice::Keep4K;
    }
}

HugepageAdvice
HugepageAdvisor::observe(const CounterSet &cumulative)
{
    // Consume as many complete windows as the snapshot delta covers.
    while (true) {
        CounterSet delta = cumulative.since(lastSnapshot_);
        Count instr = delta.get(EventId::InstRetired);
        if (instr < params_.windowInstructions)
            break;
        // Close one window's worth of instructions. Counter windows are
        // only as granular as the snapshots we were given; attribute the
        // whole delta if it spans fewer than two windows, otherwise
        // consume it proportionally.
        double wcpi = static_cast<double>(totalWalkCycles(delta)) /
                      static_cast<double>(instr);
        Count windows = instr / params_.windowInstructions;
        for (Count w = 0; w < windows; ++w)
            finishWindow(wcpi);
        lastSnapshot_ = cumulative;
    }
    return advice_;
}

HugepageAdvice
HugepageAdvisor::observeDelta(const CounterSet &delta)
{
    Count instr = delta.get(EventId::InstRetired);
    if (instr == 0)
        return advice_;
    finishWindow(static_cast<double>(totalWalkCycles(delta)) /
                 static_cast<double>(instr));
    return advice_;
}

} // namespace atscale
