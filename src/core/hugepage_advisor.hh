/**
 * @file
 * WCPI-guided hugepage promotion — the application the paper proposes in
 * its Discussion: "using WCPI as a heuristic to guide huge page
 * allocation either in the compiler or operating system would be worthy
 * of further investigation."
 *
 * The advisor watches a run's counters in fixed instruction windows,
 * computes WCPI online, and recommends promotion to 2 MiB backing when
 * sustained WCPI crosses a threshold (and, symmetrically, demotion when
 * it stays negligible). The atscale Platform cannot remap live (one
 * backing per run), so the harness applies the advice by re-running the
 * instance with the recommended backing — the OS-level analogue of
 * khugepaged promoting a process's heap after observing sustained AT
 * pressure.
 */

#ifndef ATSCALE_CORE_HUGEPAGE_ADVISOR_HH
#define ATSCALE_CORE_HUGEPAGE_ADVISOR_HH

#include <cstddef>
#include <vector>

#include "perf/counter_set.hh"
#include "vm/page_size.hh"

namespace atscale
{

/** Advisor policy knobs. */
struct AdvisorParams
{
    /** Instructions per observation window. */
    Count windowInstructions = 200'000;
    /** Promote to 2 MiB when windowed WCPI exceeds this... */
    double promoteWcpi = 0.05;
    /** ...for at least this many consecutive windows. */
    int promoteWindows = 3;
    /** Demote back to 4 KiB when windowed WCPI stays below this. */
    double demoteWcpi = 0.005;
    int demoteWindows = 5;
};

/** What the advisor currently recommends. */
enum class HugepageAdvice
{
    Keep4K,
    Promote2M,
};

/**
 * Online WCPI observer. Feed it counter snapshots; it segments them into
 * instruction windows and applies the hysteresis policy.
 */
class HugepageAdvisor
{
  public:
    explicit HugepageAdvisor(const AdvisorParams &params = {});

    /**
     * Observe the cumulative counter state (monotone snapshots of the
     * same run). Returns the advice after incorporating any windows the
     * new snapshot completes.
     */
    HugepageAdvice observe(const CounterSet &cumulative);

    /**
     * Observe one pre-segmented window delta — the form the obs
     * WindowSampler hands to its sinks. The delta is scored as exactly
     * one window regardless of its instruction count (the sampler has
     * already done the segmentation), so a sampler window feeds the same
     * hysteresis policy observe() applies to cumulative snapshots.
     */
    HugepageAdvice observeDelta(const CounterSet &delta);

    /** Current advice. */
    HugepageAdvice advice() const { return advice_; }

    /** Windowed WCPI values seen so far (for reporting). */
    const std::vector<double> &windowWcpi() const { return windows_; }

    /** Windows observed. */
    std::size_t windowCount() const { return windows_.size(); }

    const AdvisorParams &params() const { return params_; }

  private:
    void finishWindow(double wcpi);

    AdvisorParams params_;
    CounterSet lastSnapshot_;
    std::vector<double> windows_;
    int hotStreak_ = 0;
    int coldStreak_ = 0;
    HugepageAdvice advice_ = HugepageAdvice::Keep4K;
};

} // namespace atscale

#endif // ATSCALE_CORE_HUGEPAGE_ADVISOR_HH
