#include "core/lane_exec.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/ref_stream_store.hh"
#include "core/run_cache.hh"
#include "obs/session.hh"
#include "util/logging.hh"
#include "util/thread_annotations.hh"
#include "workloads/registry.hh"

namespace atscale
{

bool
lanesDefault()
{
    const char *off = std::getenv("ATSCALE_NO_LANES");
    if (off && *off && *off != '0')
        return false;
    const char *on = std::getenv("ATSCALE_LANES");
    if (on && *on && *on != '0')
        return true;
    // Lane groups run one worker thread per lane. On a single-core host
    // that parallelism has nowhere to go, and interleaving the lanes'
    // simulated TLB/cache/page-table working sets through one core's
    // cache is measurably slower than running each lane standalone
    // (docs/PERF.md §lanes), so lanes default off there.
    return std::thread::hardware_concurrency() > 1;
}

namespace
{

/** Everything one executing lane owns during a lockstep run. */
struct LaneState
{
    const LaneJob *job = nullptr;
    /** Index into the caller's lane list (results slot). */
    std::size_t slot = 0;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<Platform> platform;
    std::unique_ptr<LaneRefView> view;
    bool observing = false;
    /** Observe cadence in refs (0 = no windowed observation). */
    Count obsChunk = 0;
    /** References executed so far (warm-up + measurement). */
    Count consumed = 0;
    /** Next observe position in absolute refs (0 = none scheduled). */
    Count nextObserve = 0;
    /** Past the warm-up boundary. */
    bool measuring = false;
};

/**
 * Open the measurement window exactly as runExperiment does between its
 * warm-up and measurement run() calls: counter/stat resets, sampler
 * baseline, and the first observe position (the standalone windowed loop
 * observes after every min(chunk, remaining) refs).
 */
void
openMeasurement(LaneState &lane)
{
    const RunSpec &spec = lane.job->spec;
    Platform &platform = *lane.platform;
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    if (lane.observing)
        lane.job->obs->beginMeasurement(platform.core.counters());
    lane.measuring = true;
    lane.nextObserve =
        lane.obsChunk > 0
            ? spec.warmupRefs + std::min(lane.obsChunk, spec.measureRefs)
            : 0;
}

/**
 * Run one lane over its share of the current shared chunk, splitting the
 * consumption at the warm-up boundary and at observe positions. Core's
 * cycle publication is invariant to this partitioning, so the splits are
 * invisible in every counter.
 */
void
consumeChunk(LaneState &lane, Count take)
{
    const RunSpec &spec = lane.job->spec;
    const Count total = spec.warmupRefs + spec.measureRefs;
    const Count end = lane.consumed + take;
    while (lane.consumed < end) {
        if (!lane.measuring && lane.consumed >= spec.warmupRefs)
            openMeasurement(lane);
        Count stop = end;
        if (!lane.measuring)
            stop = std::min(stop, spec.warmupRefs);
        else if (lane.nextObserve > 0)
            stop = std::min(stop, lane.nextObserve);
        Count ran =
            lane.platform->core.run(*lane.view, stop - lane.consumed);
        panic_if(ran != stop - lane.consumed,
                 "lane fell out of lockstep with the shared stream");
        lane.consumed = stop;
        if (lane.measuring && lane.nextObserve == stop) {
            lane.job->obs->observe(lane.platform->core.counters());
            lane.nextObserve =
                stop == total
                    ? 0
                    : std::min(stop + lane.obsChunk, total);
        }
    }
}

/**
 * A reusable generation barrier for the lockstep loop: when the last
 * lane arrives, the completion hook runs exclusively (it advances the
 * shared stream), then every lane is released into the next round. The
 * mutex publishes the hook's writes to every lane, so the shared chunk
 * and loop state need no atomics of their own.
 */
class LaneBarrier
{
  public:
    LaneBarrier(std::size_t parties, std::function<void()> onAllArrived)
        : parties_(parties), onAllArrived_(std::move(onAllArrived))
    {
    }

    void
    arriveAndWait()
    {
        MutexLock lock(mu_);
        const std::uint64_t round = round_;
        if (++arrived_ == parties_) {
            onAllArrived_();
            arrived_ = 0;
            ++round_;
            cv_.notify_all();
            return;
        }
        cv_.waitUntil(mu_, [&]() ATSCALE_REQUIRES(mu_) {
            return round_ != round;
        });
    }

  private:
    const std::size_t parties_;
    const std::function<void()> onAllArrived_;
    Mutex mu_;
    CondVar cv_;
    std::size_t arrived_ ATSCALE_GUARDED_BY(mu_) = 0;
    std::uint64_t round_ ATSCALE_GUARDED_BY(mu_) = 0;
};

} // namespace

std::vector<RunResult>
runLaneGroup(const std::vector<LaneJob> &lanes, const LaneProbe &probe)
{
    panic_if(lanes.empty(), "empty lane group");
    std::vector<RunResult> results(lanes.size());

    // Per-lane cache pre-pass, mirroring runExperiment: satisfied lanes
    // drop out of the group; observed lanes always execute (cached
    // entries carry no windows or traces).
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        results[i].spec = lanes[i].spec;
        const bool observing = lanes[i].obs && lanes[i].obs->enabled();
        if (!observing && loadCachedRun(lanes[i].spec, results[i]))
            continue;
        live.push_back(i);
    }
    if (live.empty())
        return results;

    const RunSpec &lead = lanes[live.front()].spec;
    for (std::size_t i : live) {
        fatal_if(lanes[i].spec.laneGroupKey() != lead.laneGroupKey(),
                 "lane group mixes reference streams: '%s' vs '%s'",
                 lanes[i].spec.laneGroupKey().c_str(),
                 lead.laneGroupKey().c_str());
    }

    // A group of one (as declared, or after cache dropouts) is exactly a
    // standalone run; take that path unless a probe needs the platform.
    if (live.size() == 1 && !probe) {
        const LaneJob &only = lanes[live.front()];
        const bool observing = only.obs && only.obs->enabled();
        results[live.front()] = runExperiment(
            only.spec, only.params, observing ? only.obs : nullptr);
        return results;
    }

    std::vector<LaneState> group(live.size());
    for (std::size_t k = 0; k < group.size(); ++k) {
        LaneState &lane = group[k];
        lane.job = &lanes[live[k]];
        lane.slot = live[k];
        const RunSpec &spec = lane.job->spec;
        lane.workload = createWorkload(spec.workload);
        fatal_if(!lane.workload->supports(spec.mode),
                 "workload '%s' does not support the requested mode",
                 spec.workload.c_str());
        PlatformParams run_params = lane.job->params;
        run_params.mmu.fastPath = run_params.mmu.fastPath && spec.fastPath;
        run_params.mmu.scheme = spec.scheme;
        lane.platform = std::make_unique<Platform>(
            run_params, spec.pageSize, lane.workload->traits(),
            spec.seed * 0x9e37 + 7);
        lane.observing = lane.job->obs && lane.job->obs->enabled();
        lane.obsChunk = lane.observing ? lane.job->obs->chunkRefs() : 0;
    }

    // The shared stream lives in the primary (first live) lane's space.
    // Generators emit base + layout-independent offsets, so which lane
    // hosts the stream does not affect any lane's rebased addresses.
    LaneState &primary = group.front();
    WorkloadConfig wl_config;
    wl_config.footprintBytes = lead.footprintBytes;
    wl_config.seed = lead.seed;
    wl_config.mode = lead.mode;
    std::unique_ptr<RefSource> stream =
        primary.workload->instantiate(primary.platform->space, wl_config);
    // Record/replay interposition, as runExperiment does. Any observing
    // lane disables replay: the stream registers its cursors as workload
    // stats, and a replayed generator never advances them.
    bool any_observing = false;
    for (const LaneState &lane : group)
        any_observing = any_observing || lane.observing;
    stream = wrapWithStreamStore(std::move(stream), lead, any_observing,
                                 primary.platform->space.vmas());
    RefChunkFanout fanout(*stream);

    // Replay the primary's region reservations into every other lane's
    // space — mapRegion calls are all instantiate() does to a space, and
    // Vma::size records the raw requested bytes — then derive each
    // lane's base-to-base remap table.
    const std::vector<Vma> &home = primary.platform->space.vmas();
    for (std::size_t k = 0; k < group.size(); ++k) {
        std::vector<RegionRemap> remaps;
        remaps.reserve(home.size());
        for (const Vma &vma : home) {
            Addr to = k == 0 ? vma.base
                             : group[k].platform->space.mapRegion(vma.name,
                                                                  vma.size);
            remaps.push_back(RegionRemap{vma.base, to, vma.size});
        }
        group[k].view =
            std::make_unique<LaneRefView>(fanout, std::move(remaps));
    }

    // Per-lane observability, wired as runExperiment wires it. The
    // shared stream registers into each observing lane's registry; its
    // end-of-run state equals a standalone stream's (same fill count),
    // so the materialized workload stats match too.
    for (LaneState &lane : group) {
        if (!lane.observing)
            continue;
        ObsSession &obs = *lane.job->obs;
        lane.platform->registerStats(obs.registry());
        stream->registerStats(obs.registry(), "workload");
        lane.platform->core.attachTracer(obs.tracer());
    }

    // Lockstep: advance the shared stream one chunk, run every lane over
    // it on its own worker thread, repeat. The chunk is generated once
    // per round, and pinning each lane to one thread keeps that lane's
    // simulated TLB/cache/page-table state hot in a single host core's
    // cache — interleaving all K working sets on one core is measurably
    // slower than standalone runs (docs/PERF.md §lanes). Per-lane state
    // is thread-private; the only shared state is the chunk buffer and
    // the loop cursor, both written solely by the barrier's completion
    // hook while every lane is parked.
    const Count total = lead.warmupRefs + lead.measureRefs;
    Count consumed = 0;
    Count take = 0;
    auto advanceShared = [&]() {
        take = 0;
        if (consumed >= total)
            return;
        // advance() returning short (or zero) means the stream is
        // exhausted; the final round hands out what remains. The cap
        // keeps the shared stream's final position identical to a
        // standalone run's (advance never starts a chunk past the
        // quota).
        take = std::min(fanout.advance(total - consumed), total - consumed);
        consumed += take;
    };
    advanceShared(); // first chunk, before the workers exist
    LaneBarrier barrier(group.size(), advanceShared);
    auto laneMain = [&](LaneState &lane) {
        // `take` is stable between barriers: the completion hook is the
        // only writer, it runs while every lane is parked inside
        // arriveAndWait(), and the barrier's mutex publishes the value.
        while (take > 0) {
            consumeChunk(lane, take);
            barrier.arriveAndWait();
        }
    };
    std::vector<std::thread> workers;
    workers.reserve(group.size() - 1);
    for (std::size_t k = 1; k < group.size(); ++k)
        workers.emplace_back([&, k] { laneMain(group[k]); });
    laneMain(group.front());
    for (std::thread &worker : workers)
        worker.join();

    // Exhaustion: the standalone driver still opens the measurement
    // window after a short warm-up and (when windowed) observes once
    // after the final short measurement run; mirror both.
    for (LaneState &lane : group) {
        if (lane.consumed >= total)
            continue;
        if (!lane.measuring)
            openMeasurement(lane);
        if (lane.obsChunk > 0)
            lane.job->obs->observe(lane.platform->core.counters());
    }

    for (LaneState &lane : group) {
        RunResult &result = results[lane.slot];
        result.counters = lane.platform->core.counters();
        result.footprintTouched = lane.platform->space.footprintBytes();
        result.pageTableBytes =
            lane.platform->space.pageTable().nodeBytes();
        if (probe)
            probe(lane.slot, *lane.platform);
        if (lane.observing) {
            lane.job->obs->finishRun();
            lane.platform->core.attachTracer(nullptr);
        } else {
            storeCachedRun(lane.job->spec, result);
        }
    }
    return results;
}

} // namespace atscale
