/**
 * @file
 * Lockstep multi-lane execution: one reference stream, K platforms.
 *
 * The paper's central metric — AT overhead t_4KB - min(t_2MB, t_1GB) —
 * needs the *same* workload stream simulated under several platform
 * configurations. A LaneGroup generates that stream once: the primary
 * lane's workload instance feeds a RefChunkFanout, and every lane — a
 * full Core+Mmu+CacheHierarchy for one RunSpec — consumes each
 * refStreamChunk batch (rebased into its own virtual layout, see
 * LaneRefView) before the stream advances. Generation cost is paid once
 * and the chunk stays hot in the host cache across all K consumers.
 *
 * Exactness is the contract: every lane's counters, microarchitectural
 * state, and exported JSON are byte-identical to a standalone
 * runExperiment() of the same spec (enforced by tests/test_lane_exec.cc;
 * escape hatch: --no-lanes / ATSCALE_NO_LANES). The argument, piece by
 * piece:
 *
 *  - Stream identity. Workload generators emit region base + offset
 *    where the offset sequence never depends on the base, so the shared
 *    stream (instantiated in the primary lane's space) carries the same
 *    offsets every lane's private stream would, and per-region rebasing
 *    reproduces each lane's absolute addresses exactly.
 *  - Fetch cadence. Core::run fetches in whole refStreamChunk batches
 *    and its buffer persists across calls, so a standalone run's fetch
 *    boundaries fall at chunk multiples — exactly where the fanout
 *    advances. Wrong-path draws forwarded to the shared generator
 *    therefore see the same run-ahead cursor state, and use only the
 *    calling lane's rng (the RefSource::wrongPathAddr contract).
 *  - Partition invariance. Core publishes whole cycles on every run()
 *    call boundary such that published totals depend only on the stream
 *    position, so splitting a lane's execution at chunk/warm-up/observe
 *    boundaries cannot change any counter.
 */

#ifndef ATSCALE_CORE_LANE_EXEC_HH
#define ATSCALE_CORE_LANE_EXEC_HH

#include <functional>
#include <vector>

#include "core/experiment.hh"

namespace atscale
{

/**
 * One lane of a lockstep group: a spec, the platform parameters to run
 * it under, and optional per-lane observability (each lane samples,
 * traces, and registers stats independently, exactly as its standalone
 * run would).
 */
struct LaneJob
{
    RunSpec spec;
    PlatformParams params{};
    ObsSession *obs = nullptr;
};

/**
 * Default for lane execution in this process. Explicit overrides win:
 * ATSCALE_NO_LANES (or --no-lanes via extractSweepFlags) forces lanes
 * off, else ATSCALE_LANES (or --lanes) forces them on. With neither
 * set, lanes are on exactly when the host has more than one core —
 * each lane runs on its own worker thread, so a single-core host gains
 * nothing and pays the cache cost of interleaving every lane's working
 * set through one core (docs/PERF.md §lanes).
 */
bool lanesDefault();

/**
 * Called per executed lane after its measurement window closes but
 * before the platform is torn down, with the lane's index into the
 * group's job list. Lets the differential suite hash microarchitectural
 * state; never used on the production path.
 */
using LaneProbe = std::function<void(std::size_t, const Platform &)>;

/**
 * Execute a group of lanes over one shared reference stream.
 *
 * Every lane must share laneGroupKey() (same workload, footprint, mode,
 * window sizes, seed); page size, fast-path setting, and platform
 * parameters are free to differ per lane. Results are returned in
 * declared order. Lanes whose result the on-disk cache already holds are
 * served from it and drop out of the group (observed lanes always
 * execute, as in runExperiment); unobserved executed lanes are stored
 * back to the cache. A group that shrinks to one unobserved, unprobed
 * lane degenerates to runExperiment().
 *
 * @param probe optional per-executed-lane state hook (tests only)
 */
std::vector<RunResult> runLaneGroup(const std::vector<LaneJob> &lanes,
                                    const LaneProbe &probe = {});

} // namespace atscale

#endif // ATSCALE_CORE_LANE_EXEC_HH
