#include "core/multicore.hh"

#include <memory>
#include <string>

#include "obs/session.hh"
#include "sys/shared_system.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace atscale
{

MulticoreRunResult
runMulticoreExperiment(const RunSpec &spec, const PlatformParams &params,
                       ObsSession *obs)
{
    const bool observing = obs && obs->enabled();

    MulticoreRunResult result;
    result.aggregate.spec = spec;

    std::unique_ptr<Workload> workload = createWorkload(spec.workload);
    fatal_if(!workload->supports(spec.mode),
             "workload '%s' does not support the requested mode",
             spec.workload.c_str());

    SharedSystemParams sys_params;
    sys_params.hierarchy = params.hierarchy;
    sys_params.mmu = params.mmu;
    sys_params.mmu.fastPath = params.mmu.fastPath && spec.fastPath;
    sys_params.mmu.scheme = spec.scheme;
    sys_params.core = params.core;
    sys_params.freqGHz = params.freqGHz;
    sys_params.dramBytes = params.dramBytes;
    sys_params.cores = spec.cores;

    // Same platform seed recipe as runExperiment: core 0 of the shared
    // system is seeded exactly like the private platform's core.
    SharedSystem sys(sys_params, spec.pageSize, workload->traits(),
                     spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    wl_config.tenantMix = spec.tenantMix;
    std::vector<std::unique_ptr<RefSource>> tenants =
        workload->instantiateTenants(sys.space(), wl_config, sys.cores());
    std::vector<RefSource *> streams;
    streams.reserve(tenants.size());
    for (const auto &tenant : tenants)
        streams.push_back(tenant.get());

    if (observing) {
        sys.registerStats(obs->registry(), "platform");
        for (std::size_t t = 0; t < tenants.size(); ++t) {
            tenants[t]->registerStats(
                obs->registry(), "workload.tenant" + std::to_string(t));
        }
        sys.core(0).attachTracer(obs->tracer());
    }

    // Warm-up: populate pages, fill TLBs/caches (the paper's dry run).
    sys.run(streams, spec.warmupRefs);

    // Measurement window.
    sys.resetStats();
    if (observing)
        obs->beginMeasurement(sys.core(0).counters());

    sys.run(streams, spec.measureRefs);

    result.perTenant.resize(sys.cores());
    for (std::uint32_t k = 0; k < sys.cores(); ++k) {
        TenantResult &tenant = result.perTenant[k];
        tenant.counters = sys.core(k).counters();
        tenant.shootdownsInitiated = sys.shootdownsInitiated(k);
        tenant.shootdownsReceived = sys.shootdownsReceived(k);
        tenant.shootdownCycles = sys.shootdownCycles(k);
        result.aggregate.counters += tenant.counters;
#ifndef NDEBUG
        // Per-tenant leg of the conservation contract
        // (docs/OBSERVABILITY.md): each tenant's published cycles must
        // be fully attributed in its core's ledger, and the coherence
        // component must match the shootdown cycles the SharedSystem
        // accounted against the same core — both sum the same integer
        // charges, so the doubles are exactly equal.
        const CycleLedger &ledger = sys.core(k).ledger();
        CycleLedger::Report report = ledger.check(
            ledger.total(), tenant.counters.get(EventId::CpuClkUnhalted));
        fatal_if(!report.ok, "tenant %u: %s", k, report.message.c_str());
        fatal_if(ledger.component(CycleComponent::ShootdownIpi) !=
                     static_cast<double>(tenant.shootdownCycles),
                 "tenant %u: ledger shootdown_ipi component (%f) diverges "
                 "from the SharedSystem's shootdown-cycle account (%llu)",
                 k, ledger.component(CycleComponent::ShootdownIpi),
                 static_cast<unsigned long long>(tenant.shootdownCycles));
#endif
    }
    result.aggregate.footprintTouched = sys.space().footprintBytes();
    result.aggregate.pageTableBytes = sys.space().pageTable().nodeBytes();
    result.stateHash = sys.stateHash();

    if (observing) {
        // One aggregate window for the sampler (the baseline above was
        // the zeroed post-reset snapshot), then materialize registry
        // values before the system is torn down.
        obs->observe(result.aggregate.counters);
        obs->finishRun();
        sys.core(0).attachTracer(nullptr);
    }
    return result;
}

} // namespace atscale
