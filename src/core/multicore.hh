/**
 * @file
 * The multi-core experiment driver: one RunSpec with cores > 1 executed
 * on a SharedSystem (src/sys) — K cores with private L1/L2 over one
 * shared L3, one tenant reference stream per core, inter-core TLB
 * shootdowns — with per-tenant counter windows and an aggregate
 * RunResult compatible with every single-core consumer.
 *
 * Mirrors runExperiment()'s structure exactly (warm-up, stat reset,
 * measurement window), which is what makes a cores=1 spec through this
 * path bit-identical to the classic private-Platform path
 * (tests/test_multicore_diff.cc).
 */

#ifndef ATSCALE_CORE_MULTICORE_HH
#define ATSCALE_CORE_MULTICORE_HH

#include <vector>

#include "core/experiment.hh"
#include "core/run_spec.hh"
#include "perf/counter_set.hh"

namespace atscale
{

class ObsSession;

/** One tenant's (= one core's) measurement-window slice. */
struct TenantResult
{
    /** Counter deltas over the measurement window, this core only. */
    CounterSet counters;
    Count shootdownsInitiated = 0;
    Count shootdownsReceived = 0;
    /** Stall cycles the shootdown cost model charged to this core. */
    Count shootdownCycles = 0;

    Count cycles() const { return counters.get(EventId::CpuClkUnhalted); }
    Count instructions() const
    {
        return counters.get(EventId::InstRetired);
    }
    double
    cpi() const
    {
        auto instr = static_cast<double>(instructions());
        return instr > 0 ? static_cast<double>(cycles()) / instr : 0.0;
    }
};

/** Everything measured in one multi-core run. */
struct MulticoreRunResult
{
    /**
     * Spec + counters summed across cores + shared footprint, shaped
     * exactly like a single-core RunResult so sweeps, exports, and the
     * run cache consume multi-core runs unchanged. The summed CPI is
     * system cycles-per-instruction (cores run concurrently, so wall
     * time is cycles of the longest core, not the sum; use perTenant
     * for per-core time).
     */
    RunResult aggregate;
    /** One slice per core, index = core = tenant. */
    std::vector<TenantResult> perTenant;
    /** Digest over every core's MMU + cache + shootdown state at the
     * end of the measurement window (determinism proofs). */
    std::uint64_t stateHash = 0;
};

/**
 * Run one multi-core experiment on a fresh SharedSystem. Accepts
 * spec.cores == 1 (the degenerate case the differential suite pins);
 * runExperiment() delegates every cores > 1 spec here, so callers that
 * need only the aggregate can keep calling runExperiment().
 *
 * Observability: component stats register per core
 * ("platform.core<k>.*") plus per-tenant workload stats
 * ("workload.tenant<k>.*"); the walk tracer attaches to core 0; the
 * window sampler sees the whole measurement as one aggregate window
 * (per-quantum sampling across cores is not modelled).
 *
 * This function never touches the run cache — runExperiment() owns
 * memoization of the aggregate.
 */
MulticoreRunResult runMulticoreExperiment(const RunSpec &spec,
                                          const PlatformParams &params = {},
                                          ObsSession *obs = nullptr);

} // namespace atscale

#endif // ATSCALE_CORE_MULTICORE_HH
