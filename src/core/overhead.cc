#include "core/overhead.hh"

namespace atscale
{

OverheadPoint
measureOverhead(const RunConfig &base, const PlatformParams &params)
{
    return measureOverhead(base, params, nullptr);
}

OverheadPoint
measureOverhead(const RunConfig &base, const PlatformParams &params,
                ObsSession *obs4k)
{
    OverheadPoint point;
    point.workload = base.workload;
    point.footprintBytes = base.footprintBytes;

    RunConfig config = base;
    config.pageSize = PageSize::Size4K;
    point.run4k = runExperiment(config, params, obs4k);
    config.pageSize = PageSize::Size2M;
    point.run2m = runExperiment(config, params);
    config.pageSize = PageSize::Size1G;
    point.run1g = runExperiment(config, params);
    return point;
}

} // namespace atscale
