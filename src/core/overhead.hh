/**
 * @file
 * Address translation overhead (Section III): run a workload instance
 * with 4 KiB, 2 MiB, and 1 GiB backing and compare runtimes against the
 * min(t_2MB, t_1GB) baseline.
 */

#ifndef ATSCALE_CORE_OVERHEAD_HH
#define ATSCALE_CORE_OVERHEAD_HH

#include <algorithm>

#include "core/experiment.hh"

namespace atscale
{

/** Overhead measurement for one (workload, footprint) point. */
struct OverheadPoint
{
    std::string workload;
    std::uint64_t footprintBytes = 0;

    /** The three runs (index by PageSize). */
    RunResult run4k;
    RunResult run2m;
    RunResult run1g;

    /** The paper's baseline: min(t_2MB, t_1GB). */
    double
    baselineCycles() const
    {
        return static_cast<double>(
            std::min(run2m.cycles(), run1g.cycles()));
    }

    /** Absolute AT overhead in cycles. */
    double
    overheadCycles() const
    {
        return static_cast<double>(run4k.cycles()) - baselineCycles();
    }

    /** Relative AT overhead: (t_4KB - baseline) / baseline. */
    double
    relativeOverhead() const
    {
        double base = baselineCycles();
        return base > 0 ? overheadCycles() / base : 0.0;
    }

    /** True if this point counts as AT-sensitive (overhead >= 0). */
    bool atSensitive() const { return overheadCycles() >= 0.0; }
};

/**
 * Measure one overhead point: three runs of the same instance (same
 * stream seed) differing only in page-size backing.
 */
OverheadPoint measureOverhead(const RunConfig &base,
                              const PlatformParams &params = {});

/**
 * As above, with observability attached to the 4 KiB run (the run whose
 * AT behaviour the paper dissects); the superpage baselines stay
 * unobserved so they can come from the memoization cache.
 */
OverheadPoint measureOverhead(const RunConfig &base,
                              const PlatformParams &params,
                              ObsSession *obs4k);

} // namespace atscale

#endif // ATSCALE_CORE_OVERHEAD_HH
