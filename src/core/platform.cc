#include "core/platform.hh"

namespace atscale
{

Platform::Platform(const PlatformParams &params, PageSize backing,
                   const WorkloadTraits &traits, std::uint64_t seed)
    : alloc(params.dramBytes),
      space(mem, alloc, backing),
      hierarchy(params.hierarchy),
      mmu(space, mem, hierarchy, params.mmu),
      core(mmu, hierarchy, space, params.core, traits, seed),
      params_(params)
{
}

} // namespace atscale
