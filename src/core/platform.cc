#include "core/platform.hh"

#include "obs/stats_registry.hh"

namespace atscale
{

Platform::Platform(const PlatformParams &params, PageSize backing,
                   const WorkloadTraits &traits, std::uint64_t seed)
    : alloc(params.dramBytes),
      space(mem, alloc, backing),
      hierarchy(params.hierarchy),
      mmu(space, mem, hierarchy, params.mmu, &alloc),
      core(mmu, hierarchy, space, params.core, traits, seed),
      params_(params)
{
    // Every structure caching translations observes remaps, so a page
    // migration can never be served from a stale cached frame.
    space.addTranslationListener(&mmu);
    space.addTranslationListener(&core);
}

void
Platform::registerStats(StatsRegistry &registry,
                        const std::string &prefix) const
{
    mmu.registerStats(registry, prefix + ".mmu");
    hierarchy.registerStats(registry, prefix + ".cache");
    registry.addScalar(prefix + ".vm.footprint_bytes", [this] {
        return static_cast<double>(space.footprintBytes());
    }, "data bytes populated (pages touched x page size)");
    registry.addScalar(prefix + ".vm.page_table_bytes", [this] {
        return static_cast<double>(space.pageTable().nodeBytes());
    }, "bytes of page-table nodes built");
}

} // namespace atscale
