/**
 * @file
 * Assembly of one simulated machine (Table III): physical memory, address
 * space, cache hierarchy, MMU, and timing core, built for one experiment
 * run at a chosen page-size backing.
 */

#ifndef ATSCALE_CORE_PLATFORM_HH
#define ATSCALE_CORE_PLATFORM_HH

#include <memory>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "mmu/mmu.hh"
#include "vm/address_space.hh"

namespace atscale
{

/** Full machine configuration (defaults reproduce the paper's system). */
struct PlatformParams
{
    HierarchyParams hierarchy;
    MmuParams mmu;
    CoreParams core;
    /** Core frequency, for converting cycles to seconds. */
    double freqGHz = 2.5;
    /** Simulated DRAM capacity (2 sockets x 384 GiB). */
    std::uint64_t dramBytes = 768ull << 30;
};

/**
 * One simulated machine instance. Components are wired once at
 * construction; the workload then reserves regions in `space` and the
 * caller drives `core`.
 */
class Platform
{
  public:
    /**
     * @param backing page size requested for all workload data regions
     * @param traits workload character for the timing core
     */
    Platform(const PlatformParams &params, PageSize backing,
             const WorkloadTraits &traits, std::uint64_t seed = 42);

    PhysicalMemory mem;
    FrameAllocator alloc;
    AddressSpace space;
    CacheHierarchy hierarchy;
    Mmu mmu;
    Core core;

    /**
     * Register the machine's component statistics (MMU, cache hierarchy,
     * address-space footprint) under "<prefix>.".
     */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix = "platform") const;

    const PlatformParams &params() const { return params_; }

  private:
    PlatformParams params_;
};

} // namespace atscale

#endif // ATSCALE_CORE_PLATFORM_HH
