#include "core/ref_stream_store.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <vector>
#include <sys/stat.h>
#include <unistd.h>

#include "util/hash.hh"
#include "util/logging.hh"
#include "vm/address_space.hh"

namespace atscale
{

namespace
{

constexpr std::uint64_t streamMagic = 0x4d5453464552'5441ull; // "ATREFSTM"
// v2: region table after the identity; vaddrs rebase at replay.
constexpr std::uint32_t streamVersion = 2;

/** One mapRegion reservation, as the file records it. */
struct RegionExtent
{
    Addr base;
    std::uint64_t size;
};

std::vector<RegionExtent>
regionExtents(const std::vector<Vma> &vmas)
{
    std::vector<RegionExtent> extents;
    extents.reserve(vmas.size());
    for (const Vma &vma : vmas)
        extents.push_back(RegionExtent{vma.base, vma.size});
    return extents;
}

// --- Byte-stream primitives ---------------------------------------------

void
putU32(std::string &out, std::uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putU64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

/** LEB128: 7 value bits per byte, high bit = continuation. */
void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/** Zigzag: small deltas of either sign become small varints. */
std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Bounds-checked reader over a loaded file; any overrun poisons it. */
struct ByteReader
{
    const unsigned char *data;
    std::size_t size;
    std::size_t pos = 0;
    bool ok = true;

    bool
    take(void *out, std::size_t n)
    {
        if (!ok || size - pos < n) {
            ok = false;
            return false;
        }
        std::memcpy(out, data + pos, n);
        pos += n;
        return true;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (!ok || pos >= size) {
                ok = false;
                return 0;
            }
            unsigned char byte = data[pos++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        ok = false;
        return 0;
    }
};

// --- Decoded stream -----------------------------------------------------

/**
 * A fully decoded recording: the chunk-flattened reference sequence plus
 * the per-chunk lengths and wrong-path anchors. Only the final chunk may
 * be short (a short fill signals exhaustion, which ends the recording).
 */
struct StreamData
{
    std::vector<Ref> refs;
    std::vector<Count> chunkLens;
    std::vector<std::uint64_t> anchors;
};

std::optional<StreamData>
loadStream(const std::string &path, const std::string &identity,
           const std::vector<RegionExtent> &replay)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;

    // Trailing checksum covers everything before it; a mismatch means a
    // torn or corrupt file and is treated as a miss.
    if (bytes.size() < sizeof(std::uint64_t))
        return std::nullopt;
    std::size_t body = bytes.size() - sizeof(std::uint64_t);
    std::uint64_t want = 0;
    std::memcpy(&want, bytes.data() + body, sizeof(want));
    if (fnv1a(std::string_view(bytes.data(), body)) != want)
        return std::nullopt;

    ByteReader r{reinterpret_cast<const unsigned char *>(bytes.data()),
                 body};
    if (r.u64() != streamMagic || r.u32() != streamVersion)
        return std::nullopt;
    std::uint32_t id_len = r.u32();
    if (!r.ok || r.size - r.pos < id_len)
        return std::nullopt;
    if (std::string_view(bytes.data() + r.pos, id_len) != identity)
        return std::nullopt;
    r.pos += id_len;

    // Region table: the identity excludes page size, so the recorder's
    // layout may differ from this run's. Same reservation sequence
    // (count and sizes) is required; bases are rebased per reference.
    std::uint32_t num_regions = r.u32();
    if (!r.ok || num_regions != replay.size())
        return std::nullopt;
    std::vector<RegionExtent> recorded(num_regions);
    bool rebasing = false;
    for (std::uint32_t i = 0; i < num_regions; ++i) {
        recorded[i].base = r.u64();
        recorded[i].size = r.u64();
        if (!r.ok || recorded[i].size != replay[i].size)
            return std::nullopt;
        rebasing = rebasing || recorded[i].base != replay[i].base;
    }

    std::uint64_t total_refs = r.u64();
    std::uint64_t num_chunks = r.u64();
    if (!r.ok || num_chunks > (total_refs / refStreamChunk) + 1)
        return std::nullopt;

    StreamData data;
    data.refs.reserve(total_refs);
    data.chunkLens.reserve(num_chunks);
    data.anchors.reserve(num_chunks);
    // Rebase cursor: references cluster by region, so the previous hit
    // is almost always the next one too.
    std::uint32_t region = 0;
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
        std::uint32_t len = r.u32();
        std::uint64_t anchor = r.u64();
        if (!r.ok || len > refStreamChunk)
            return std::nullopt;
        // A short chunk is only legal at the end (recorded exhaustion).
        if (c + 1 < num_chunks && len != refStreamChunk)
            return std::nullopt;
        std::size_t base = data.refs.size();
        data.refs.resize(base + len);
        std::uint64_t prev = 0;
        for (std::uint32_t i = 0; i < len; ++i) {
            // Deltas chain in the recorder's layout; only the stored
            // vaddr is rebased.
            prev = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(prev) + unzigzag(r.varint()));
            Addr vaddr = prev;
            if (rebasing) {
                if (vaddr - recorded[region].base >= recorded[region].size) {
                    region = 0;
                    while (region < num_regions &&
                           vaddr - recorded[region].base >=
                               recorded[region].size)
                        ++region;
                    // A reference outside every recorded region cannot
                    // be relocated: treat the file as unusable.
                    if (region == num_regions)
                        return std::nullopt;
                }
                vaddr = replay[region].base +
                        (vaddr - recorded[region].base);
            }
            data.refs[base + i].vaddr = vaddr;
        }
        for (std::uint32_t i = 0; i < len; ++i) {
            data.refs[base + i].instGap =
                static_cast<std::uint32_t>(r.varint());
        }
        for (std::uint32_t i = 0; i < len; i += 8) {
            unsigned char bits = 0;
            r.take(&bits, 1);
            for (std::uint32_t b = 0; b < 8 && i + b < len; ++b)
                data.refs[base + i + b].isStore = (bits >> b) & 1;
        }
        if (!r.ok)
            return std::nullopt;
        data.chunkLens.push_back(len);
        data.anchors.push_back(anchor);
    }
    if (!r.ok || r.pos != r.size || data.refs.size() != total_refs)
        return std::nullopt;
    return data;
}

void
encodeChunk(std::string &out, const Ref *refs, Count len,
            std::uint64_t anchor)
{
    putU32(out, static_cast<std::uint32_t>(len));
    putU64(out, anchor);
    std::uint64_t prev = 0;
    for (Count i = 0; i < len; ++i) {
        out.reserve(out.size() + 10);
        putVarint(out, zigzag(static_cast<std::int64_t>(refs[i].vaddr -
                                                        prev)));
        prev = refs[i].vaddr;
    }
    for (Count i = 0; i < len; ++i)
        putVarint(out, refs[i].instGap);
    for (Count i = 0; i < len; i += 8) {
        unsigned char bits = 0;
        for (Count b = 0; b < 8 && i + b < len; ++b)
            bits |= static_cast<unsigned char>(refs[i + b].isStore) << b;
        out.push_back(static_cast<char>(bits));
    }
}

void
writeStream(const std::string &path, const std::string &identity,
            const std::vector<RegionExtent> &regions, const StreamData &data)
{
    std::string bytes;
    // Varint columns usually land well under 4 bytes per ref.
    bytes.reserve(data.refs.size() * 6 + data.chunkLens.size() * 16 + 64);
    putU64(bytes, streamMagic);
    putU32(bytes, streamVersion);
    putU32(bytes, static_cast<std::uint32_t>(identity.size()));
    bytes.append(identity);
    putU32(bytes, static_cast<std::uint32_t>(regions.size()));
    for (const RegionExtent &region : regions) {
        putU64(bytes, region.base);
        putU64(bytes, region.size);
    }
    putU64(bytes, data.refs.size());
    putU64(bytes, data.chunkLens.size());
    std::size_t base = 0;
    for (std::size_t c = 0; c < data.chunkLens.size(); ++c) {
        encodeChunk(bytes, data.refs.data() + base, data.chunkLens[c],
                    data.anchors[c]);
        base += static_cast<std::size_t>(data.chunkLens[c]);
    }
    putU64(bytes, fnv1a(bytes));

    // Same atomicity discipline as the run cache: unique temp in the
    // same directory, then rename; concurrent recorders of one identity
    // produce byte-identical files, so last-rename-wins is harmless.
    ::mkdir(refStreamDir().c_str(), 0777); // best-effort, may exist
    static std::atomic<unsigned> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

// --- Recording tee ------------------------------------------------------

/**
 * Transparent tee over the live generator: forwards every call
 * unchanged, accumulating whole fetch chunks and their anchors until the
 * run's reference quota has streamed through, then writes the file.
 * Recording silently cancels on anything that breaks the chunk-cadence
 * invariant (a non-chunk fill size or a next() consumer) — the run is
 * unaffected, the file just is not produced.
 */
class RecordingRefSource : public RefSource
{
  public:
    RecordingRefSource(std::unique_ptr<RefSource> inner, std::string path,
                       std::string identity,
                       std::vector<RegionExtent> regions, Count targetRefs)
        : inner_(std::move(inner)), path_(std::move(path)),
          identity_(std::move(identity)), regions_(std::move(regions)),
          target_(targetRefs)
    {
        data_.refs.reserve(static_cast<std::size_t>(
            std::min<Count>(targetRefs + refStreamChunk, 1u << 26)));
    }

    bool
    next(Ref &ref) override
    {
        recording_ = false;
        return inner_->next(ref);
    }

    Count
    fill(Ref *out, Count max) override
    {
        Count n = inner_->fill(out, max);
        if (!recording_)
            return n;
        if (max != refStreamChunk) {
            recording_ = false;
            return n;
        }
        data_.refs.insert(data_.refs.end(), out, out + n);
        data_.chunkLens.push_back(n);
        data_.anchors.push_back(inner_->wrongPathAnchor());
        recorded_ += n;
        // Finalize at the quota — or at exhaustion, when the recorded
        // prefix is the entire stream.
        if (recorded_ >= target_ || n < refStreamChunk) {
            writeStream(path_, identity_, regions_, data_);
            recording_ = false;
            data_ = StreamData{};
        }
        return n;
    }

    Addr wrongPathAddr(Rng &rng) override
    {
        return inner_->wrongPathAddr(rng);
    }

    bool supportsAnchors() const override
    {
        return inner_->supportsAnchors();
    }

    std::uint64_t wrongPathAnchor() const override
    {
        return inner_->wrongPathAnchor();
    }

    Addr
    wrongPathAddrAt(std::uint64_t anchor, Rng &rng) override
    {
        return inner_->wrongPathAddrAt(anchor, rng);
    }

    void
    registerStats(StatsRegistry &registry,
                  const std::string &prefix) const override
    {
        inner_->registerStats(registry, prefix);
    }

  private:
    std::unique_ptr<RefSource> inner_;
    std::string path_;
    std::string identity_;
    std::vector<RegionExtent> regions_;
    // uint64 rather than Count: these are recording cursors, not
    // statistics, and must not read as unregistered counters (lint R3).
    std::uint64_t target_;
    std::uint64_t recorded_ = 0;
    bool recording_ = true;
    StreamData data_;
};

// --- Replay -------------------------------------------------------------

/**
 * Serves a decoded recording chunk by chunk. The live generator is kept
 * (never advanced) purely as the wrong-path oracle: draws go through
 * wrongPathAddrAt() with the anchor recorded at the served chunk's
 * boundary — the cursor state a standalone generator would have had
 * while its consumer executed that chunk. Anchors pass through, so a
 * replaying source can itself sit under a lane fan-out.
 */
class ReplayRefSource : public RefSource
{
  public:
    ReplayRefSource(std::unique_ptr<RefSource> inner, StreamData data)
        : inner_(std::move(inner)), data_(std::move(data))
    {
    }

    bool
    next(Ref &ref) override
    {
        (void)ref;
        panic("replayed ref streams are chunk-granular; use fill()");
    }

    Count
    fill(Ref *out, Count max) override
    {
        // The store key pins every field that sets the run's reference
        // quota, so a matched consumer requests exactly the recorded
        // fill sequence; past-the-end reads mean identity corruption.
        panic_if(served_ >= data_.chunkLens.size(),
                 "replayed ref stream over-read (recording/spec mismatch)");
        cur_ = served_++;
        Count len = data_.chunkLens[cur_];
        panic_if(max < len, "replay fetch smaller than the recorded chunk");
        const Ref *src =
            data_.refs.data() + cur_ * static_cast<std::size_t>(
                                           refStreamChunk);
        std::copy_n(src, len, out);
        return len;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return inner_->wrongPathAddrAt(data_.anchors[cur_], rng);
    }

    bool supportsAnchors() const override { return true; }

    std::uint64_t wrongPathAnchor() const override
    {
        return data_.anchors[cur_];
    }

    Addr
    wrongPathAddrAt(std::uint64_t anchor, Rng &rng) override
    {
        return inner_->wrongPathAddrAt(anchor, rng);
    }

  private:
    std::unique_ptr<RefSource> inner_;
    StreamData data_;
    /** Chunks handed out so far. */
    std::size_t served_ = 0;
    /** Chunk currently being executed by the consumer. */
    std::size_t cur_ = 0;
};

} // namespace

std::string
refStreamDir()
{
    const char *dir = std::getenv("ATSCALE_STREAM_DIR");
    return dir && *dir ? dir : "";
}

std::string
refStreamPath(const RunSpec &spec)
{
    std::string dir = refStreamDir();
    if (dir.empty())
        return "";
    return dir + "/" + spec.laneGroupKey() + ".refs";
}

std::unique_ptr<RefSource>
wrapWithStreamStore(std::unique_ptr<RefSource> stream, const RunSpec &spec,
                    bool observing, const std::vector<Vma> &regions)
{
    std::string path = refStreamPath(spec);
    if (path.empty() || spec.mode != WorkloadMode::Model ||
        spec.cores != 1 || !stream->supportsAnchors()) {
        return stream;
    }
    std::string identity = spec.laneGroupKey();
    std::vector<RegionExtent> extents = regionExtents(regions);
    if (!observing) {
        if (std::optional<StreamData> data =
                loadStream(path, identity, extents)) {
            return std::make_unique<ReplayRefSource>(std::move(stream),
                                                     std::move(*data));
        }
    }
    return std::make_unique<RecordingRefSource>(
        std::move(stream), std::move(path), std::move(identity),
        std::move(extents), spec.warmupRefs + spec.measureRefs);
}

} // namespace atscale
