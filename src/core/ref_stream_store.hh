/**
 * @file
 * On-disk record/replay store for model-mode reference streams.
 *
 * Generating a reference stream is pure CPU work that every sweep, lane
 * group, and validation rerun of the same spec repeats from scratch. The
 * store memoizes it: the first run of a stream identity records every
 * fetch chunk (and the generator's wrong-path anchor at each chunk
 * boundary) into a columnar, delta-compressed file; later runs replay
 * the chunks straight out of that file. Replay is exact by the anchor
 * contract (cpu/ref_stream.hh): a recorded chunk plus its anchor
 * reproduces both the references and every wrongPathAddr() draw a live
 * generator would have produced while the consumer executed that chunk,
 * so recorded, replayed, and plain runs are bit-identical.
 *
 * Identity and durability follow the run cache (core/run_cache.hh):
 * files are keyed by RunSpec::laneGroupKey() — exactly the fields that
 * select the stream — under the directory named by ATSCALE_STREAM_DIR
 * (the sweep driver's --record-streams flag), written via unique temp
 * name + rename so concurrent writers are safe, and verified by a
 * trailing FNV-1a checksum on load: a torn, truncated, or stale-format
 * file is simply a miss and the run falls back to recording.
 *
 * Region rebasing: the stream identity excludes the page size (lane
 * groups share one stream across page-size lanes), but region base
 * addresses depend on it — AddressSpace::mapRegion aligns each region
 * to its effective page. Recorded files therefore carry the recorder's
 * region table (base, size per mapRegion call, in order), and replay
 * rebases every reference into the replaying run's own layout, exactly
 * as LaneRefView does for lanes: generators emit base + layout-
 * independent offsets, so base-to-base remapping reproduces the
 * addresses a live generator would have produced in this space. A file
 * whose region count or sizes disagree with the replaying space — or
 * with a reference outside every recorded region — is a miss.
 *
 * On-disk format (host-endian; the store is a local cache, not an
 * interchange format):
 *
 *   u64 magic, u32 version, u32 identity length, identity bytes,
 *   u32 region count, per region u64 base + u64 size,
 *   u64 total refs, u64 chunk count, then per chunk:
 *     u32 refs in chunk, u64 wrong-path anchor,
 *     vaddr column   — zigzag varint deltas (previous vaddr, 0 at
 *                      chunk start),
 *     instGap column — varints,
 *     isStore column — bitmap, one bit per ref;
 *   u64 FNV-1a checksum over everything above.
 */

#ifndef ATSCALE_CORE_REF_STREAM_STORE_HH
#define ATSCALE_CORE_REF_STREAM_STORE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/run_spec.hh"
#include "cpu/ref_stream.hh"

namespace atscale
{

struct Vma;

/**
 * Directory holding recorded reference streams (ATSCALE_STREAM_DIR).
 * Empty when the store is disabled, which is the default: stream files
 * are only worth their disk when a workflow reruns the same specs.
 */
std::string refStreamDir();

/** Store file for a spec's stream ("" when the store is disabled). */
std::string refStreamPath(const RunSpec &spec);

/**
 * Interpose the store on a freshly instantiated workload stream.
 *
 * Returns the stream unchanged when the store cannot apply: disabled
 * (no directory), non-model mode, multi-core specs (those consume
 * per-tenant streams, not this one), or a stream without wrong-path
 * anchor support. Otherwise returns a replaying source when a valid
 * recording exists, else a recording tee that writes the file once the
 * run's warm-up + measurement window has streamed through it.
 *
 * Replay is additionally skipped for observing runs: an observed run
 * registers the stream's internal cursors as workload statistics, and a
 * replayed generator never advances them. Recording is transparent
 * (pure tee over the live generator), so observed runs still record.
 *
 * The inner stream must be the product of Workload::instantiate on the
 * run's address space — instantiate() performs the region mappings, and
 * replay keeps the instance for wrong-path draws via wrongPathAddrAt().
 * `regions` is that space's post-instantiate vmas(): recorded into new
 * files, and the rebase target when replaying existing ones.
 */
std::unique_ptr<RefSource>
wrapWithStreamStore(std::unique_ptr<RefSource> stream, const RunSpec &spec,
                    bool observing, const std::vector<Vma> &regions);

} // namespace atscale

#endif // ATSCALE_CORE_REF_STREAM_STORE_HH
