#include "core/regression.hh"

#include "util/logging.hh"

namespace atscale
{

OlsFit
fitOls(const std::vector<double> &x, const std::vector<double> &y)
{
    panic_if(x.size() != y.size(), "regression input size mismatch");
    OlsFit fit;
    fit.n = x.size();
    if (fit.n < 2)
        return fit;

    auto n = static_cast<double>(fit.n);
    double sum_x = 0, sum_y = 0;
    for (std::size_t i = 0; i < fit.n; ++i) {
        sum_x += x[i];
        sum_y += y[i];
    }
    double mean_x = sum_x / n;
    double mean_y = sum_y / n;

    double sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < fit.n; ++i) {
        double dx = x[i] - mean_x;
        double dy = y[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx <= 0)
        return fit;

    fit.slope = sxy / sxx;
    fit.intercept = mean_y - fit.slope * mean_x;

    double ss_res = 0;
    for (std::size_t i = 0; i < fit.n; ++i) {
        double e = y[i] - fit.predict(x[i]);
        ss_res += e * e;
    }
    fit.r2 = syy > 0 ? 1.0 - ss_res / syy : 1.0;
    if (fit.n > 2) {
        fit.adjustedR2 =
            1.0 - (1.0 - fit.r2) * (n - 1.0) / (n - 2.0);
    } else {
        fit.adjustedR2 = fit.r2;
    }
    return fit;
}

} // namespace atscale
