/**
 * @file
 * Ordinary least squares for the paper's scaling model (Table IV):
 * relative AT overhead = beta0 + beta1 * log10(footprint) + eps.
 */

#ifndef ATSCALE_CORE_REGRESSION_HH
#define ATSCALE_CORE_REGRESSION_HH

#include <vector>

namespace atscale
{

/** Result of a simple linear regression y = b0 + b1 x. */
struct OlsFit
{
    double intercept = 0.0;   ///< beta0
    double slope = 0.0;       ///< beta1
    double r2 = 0.0;          ///< coefficient of determination
    double adjustedR2 = 0.0;  ///< adjusted for the 2 parameters
    std::size_t n = 0;        ///< samples

    /** Predicted y at x. */
    double
    predict(double x) const
    {
        return intercept + slope * x;
    }
};

/** Fit y = b0 + b1 x by ordinary least squares. Needs n >= 3 for a
 * meaningful adjusted R^2 (returns r2 there otherwise). */
OlsFit fitOls(const std::vector<double> &x, const std::vector<double> &y);

} // namespace atscale

#endif // ATSCALE_CORE_REGRESSION_HH
