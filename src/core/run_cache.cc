#include "core/run_cache.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

namespace atscale
{

std::string
runCacheDir()
{
    const char *dir = std::getenv("ATSCALE_CACHE_DIR");
    return dir && *dir ? dir : "";
}

std::string
runCachePath(const RunSpec &spec)
{
    std::string dir = runCacheDir();
    if (dir.empty())
        return "";
    return dir + "/" + spec.cacheFileName();
}

bool
cachedRunExists(const RunSpec &spec)
{
    std::string path = runCachePath(spec);
    if (path.empty())
        return false;
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

bool
loadCachedRun(const RunSpec &spec, RunResult &result)
{
    std::string path = runCachePath(spec);
    if (path.empty())
        return false;
    std::ifstream in(path);
    if (!in)
        return false;
    result.spec = spec;
    std::string name;
    unsigned long long value;
    int fields = 0;
    while (in >> name >> value) {
        if (name == "footprint_touched") {
            result.footprintTouched = value;
        } else if (name == "page_table_bytes") {
            result.pageTableBytes = value;
        } else {
            auto id = eventFromName(name);
            if (!id)
                return false;
            result.counters.add(*id, value);
        }
        ++fields;
    }
    return fields > 0;
}

void
storeCachedRun(const RunSpec &spec, const RunResult &result)
{
    std::string path = runCachePath(spec);
    if (path.empty())
        return;

    // Unique temp name in the same directory (rename is only atomic
    // within a filesystem): pid + a process-local counter covers both
    // concurrent processes and concurrent engine workers.
    static std::atomic<unsigned> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        result.counters.forEach(
            [&out](EventId, const char *name, Count value) {
                out << name << ' ' << value << '\n';
            });
        out << "footprint_touched " << result.footprintTouched << '\n';
        out << "page_table_bytes " << result.pageTableBytes << '\n';
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

} // namespace atscale
