/**
 * @file
 * On-disk memoization of run results, keyed by RunSpec.
 *
 * Enabled by the ATSCALE_CACHE_DIR environment variable (the benches
 * default it to ./atscale_cache so the whole suite shares runs). Entries
 * are tiny "name value" text files named by RunSpec::cacheFileName().
 *
 * Writes are crash- and race-safe: each writer emits to a private temp
 * file in the cache directory and atomically rename()s it into place, so
 * a killed process or two racing jobs can never leave a truncated entry
 * that later deserializes garbage — readers only ever see absent or
 * complete files.
 */

#ifndef ATSCALE_CORE_RUN_CACHE_HH
#define ATSCALE_CORE_RUN_CACHE_HH

#include <string>

#include "core/experiment.hh"

namespace atscale
{

/** Cache directory from ATSCALE_CACHE_DIR, or "" when caching is off. */
std::string runCacheDir();

/** Full path of the cache entry for a spec, or "" when caching is off. */
std::string runCachePath(const RunSpec &spec);

/** True when a (possibly stale-format) cache entry exists for the spec. */
bool cachedRunExists(const RunSpec &spec);

/**
 * Load a cached result. Returns false (leaving `result` unspecified)
 * when caching is off, the entry is absent, or it fails to parse.
 * On success result.spec is set to `spec`.
 */
bool loadCachedRun(const RunSpec &spec, RunResult &result);

/**
 * Store a result under its spec (no-op when caching is off). Writes to a
 * temp file and atomically renames; concurrent writers of the same spec
 * are deterministic-identical, so last-rename-wins is safe.
 */
void storeCachedRun(const RunSpec &spec, const RunResult &result);

} // namespace atscale

#endif // ATSCALE_CORE_RUN_CACHE_HH
