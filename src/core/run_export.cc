#include "core/run_export.hh"

#include <fstream>
#include <ostream>

#include "obs/json.hh"
#include "perf/derived.hh"
#include "util/logging.hh"

namespace atscale
{

namespace
{

const char *
modeName(WorkloadMode mode)
{
    return mode == WorkloadMode::Exec ? "exec" : "model";
}

/** Body of one RunResult object (writer already inside the object). */
void
writeRunResultBody(JsonWriter &json, const RunResult &result,
                   const std::vector<StatsRegistry::Sample> *stats,
                   double freqGHz)
{
    const RunSpec &spec = result.spec;
    json.key("config").beginObject();
    json.kv("workload", spec.workload);
    json.kv("footprint_bytes", spec.footprintBytes);
    json.kv("page_size", pageSizeName(spec.pageSize));
    json.kv("mode", modeName(spec.mode));
    json.kv("warmup_refs", spec.warmupRefs);
    json.kv("measure_refs", spec.measureRefs);
    json.kv("seed", spec.seed);
    // Only non-default schemes are emitted, so radix exports stay
    // byte-identical to the pre-seam format (golden suite contract).
    if (spec.scheme != "radix")
        json.kv("scheme", spec.scheme);
    // Same contract for the multi-core fields: single-core exports are
    // byte-identical to the pre-SharedSystem format.
    if (spec.cores != 1)
        json.kv("cores", static_cast<std::uint64_t>(spec.cores));
    if (!spec.tenantMix.empty())
        json.kv("tenant_mix", spec.tenantMix);
    json.endObject();

    json.kv("footprint_touched", result.footprintTouched);
    json.kv("page_table_bytes", result.pageTableBytes);
    json.kv("instructions", result.instructions());
    json.kv("cycles", result.cycles());
    json.kv("cpi", result.cpi());
    json.kv("seconds", result.seconds(freqGHz));

    WcpiTerms wcpi = wcpiTerms(result.counters);
    json.key("wcpi").beginObject();
    json.kv("wcpi", wcpi.wcpi());
    json.kv("accesses_per_instr", wcpi.accessesPerInstr);
    json.kv("tlb_misses_per_access", wcpi.tlbMissesPerAccess);
    json.kv("ptw_accesses_per_walk", wcpi.ptwAccessesPerWalk);
    json.kv("walk_cycles_per_ptw_access", wcpi.walkCyclesPerPtwAccess);
    json.endObject();

    WalkOutcomes outcomes = walkOutcomes(result.counters);
    json.key("walk_outcomes").beginObject();
    json.kv("initiated", outcomes.initiated);
    json.kv("completed", outcomes.completed);
    json.kv("retired", outcomes.retired);
    json.kv("aborted", outcomes.aborted);
    json.kv("wrong_path", outcomes.wrongPath);
    json.kv("aborted_fraction", outcomes.abortedFraction());
    json.kv("wrong_path_fraction", outcomes.wrongPathFraction());
    json.kv("non_retired_fraction", outcomes.nonRetiredFraction());
    json.endObject();

    PteLocations pte = pteLocations(result.counters);
    json.key("pte_locations").beginObject();
    json.kv("l1", pte.l1);
    json.kv("l2", pte.l2);
    json.kv("l3", pte.l3);
    json.kv("memory", pte.memory);
    json.endObject();

    json.key("counters").beginObject();
    result.counters.forEach([&json](EventId, const char *name, Count value) {
        json.kv(name, value);
    });
    json.endObject();

    if (stats) {
        json.key("stats").beginObject();
        for (const StatsRegistry::Sample &sample : *stats)
            json.kv(sample.name, sample.value);
        json.endObject();
    }
}

} // namespace

void
writeRunResultJson(std::ostream &os, const RunResult &result,
                   const std::vector<StatsRegistry::Sample> *stats,
                   double freqGHz)
{
    JsonWriter json(os, true);
    json.beginObject();
    writeRunResultBody(json, result, stats, freqGHz);
    json.endObject();
    os << '\n';
}

void
writeRunResultsJson(std::ostream &os, const std::vector<RunResult> &results,
                    double freqGHz)
{
    JsonWriter json(os, true);
    json.beginArray();
    for (const RunResult &result : results) {
        json.beginObject();
        writeRunResultBody(json, result, nullptr, freqGHz);
        json.endObject();
    }
    json.endArray();
    os << '\n';
}

void
writeRunResultsJsonFile(const std::string &path,
                        const std::vector<RunResult> &results, double freqGHz)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open JSON output file '%s'", path.c_str());
    writeRunResultsJson(out, results, freqGHz);
}

void
writeRunResultJsonFile(const std::string &path, const RunResult &result,
                       const std::vector<StatsRegistry::Sample> *stats,
                       double freqGHz)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open JSON output file '%s'", path.c_str());
    writeRunResultJson(out, result, stats, freqGHz);
}

} // namespace atscale
