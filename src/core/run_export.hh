/**
 * @file
 * JSON export of experiment results: one RunResult (config + raw
 * counters + the paper's derived metrics + an optional stats-registry
 * snapshot) or a whole sweep as a JSON array. Lives in core rather than
 * obs because it needs RunResult; obs stays below core in the link
 * graph.
 */

#ifndef ATSCALE_CORE_RUN_EXPORT_HH
#define ATSCALE_CORE_RUN_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "obs/stats_registry.hh"

namespace atscale
{

/**
 * Write one RunResult as a JSON object: config, derived metrics (CPI,
 * WCPI and its Equation-1 factors, Table-VI walk outcomes, Fig-8 PTE
 * locations), every raw counter, and — when non-null — a stats-registry
 * snapshot captured by ObsSession::finishRun().
 *
 * @param freqGHz cycle-to-seconds scale for the "seconds" field
 */
void writeRunResultJson(std::ostream &os, const RunResult &result,
                        const std::vector<StatsRegistry::Sample> *stats =
                            nullptr,
                        double freqGHz = 2.5);

/** Write several RunResults as a JSON array (a sweep export). */
void writeRunResultsJson(std::ostream &os,
                         const std::vector<RunResult> &results,
                         double freqGHz = 2.5);

/**
 * Write a whole sweep as a JSON array to a file (declared order; used by
 * SweepEngine's aggregate export). fatal() if the file cannot be opened.
 */
void writeRunResultsJsonFile(const std::string &path,
                             const std::vector<RunResult> &results,
                             double freqGHz = 2.5);

/**
 * Write one RunResult (plus optional registry snapshot) to a file.
 * fatal() if the file cannot be opened.
 */
void writeRunResultJsonFile(const std::string &path, const RunResult &result,
                            const std::vector<StatsRegistry::Sample> *stats =
                                nullptr,
                            double freqGHz = 2.5);

} // namespace atscale

#endif // ATSCALE_CORE_RUN_EXPORT_HH
