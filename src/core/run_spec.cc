#include "core/run_spec.hh"

#include <cstdio>

#include "util/hash.hh"
#include "util/table.hh"

namespace atscale
{

std::string
RunSpec::cacheKey() const
{
    char buf[384];
    std::snprintf(buf, sizeof(buf), "v3_%s_f%llu_%s_m%d_w%llu_n%llu_s%llu",
                  workload.c_str(),
                  static_cast<unsigned long long>(footprintBytes),
                  pageSizeName(pageSize).c_str(), static_cast<int>(mode),
                  static_cast<unsigned long long>(warmupRefs),
                  static_cast<unsigned long long>(measureRefs),
                  static_cast<unsigned long long>(seed));
    std::string key = buf;
    if (!fastPath)
        key += "_nofp";
    if (scheme != "radix")
        key += "_sch" + scheme;
    if (!platformTag.empty())
        key += "_p" + platformTag;
    return key;
}

std::string
RunSpec::fileTag() const
{
    std::string tag = workload + "_f" + std::to_string(footprintBytes) +
                      "_" + pageSizeName(pageSize) + "_s" +
                      std::to_string(seed);
    if (!fastPath)
        tag += "_nofp";
    if (scheme != "radix")
        tag += "_" + scheme;
    if (!platformTag.empty())
        tag += "_" + platformTag;
    return tag;
}

std::string
RunSpec::describe() const
{
    std::string text = workload + " " + fmtBytes(footprintBytes) + " " +
                       pageSizeName(pageSize) +
                       (mode == WorkloadMode::Exec ? " exec" : " model") +
                       " seed=" + std::to_string(seed);
    if (!fastPath)
        text += " no-fastpath";
    if (scheme != "radix")
        text += " scheme=" + scheme;
    if (!platformTag.empty())
        text += " platform=" + platformTag;
    return text;
}

std::string
RunSpec::laneGroupKey() const
{
    char buf[320];
    std::snprintf(buf, sizeof(buf), "%s_f%llu_m%d_w%llu_n%llu_s%llu",
                  workload.c_str(),
                  static_cast<unsigned long long>(footprintBytes),
                  static_cast<int>(mode),
                  static_cast<unsigned long long>(warmupRefs),
                  static_cast<unsigned long long>(measureRefs),
                  static_cast<unsigned long long>(seed));
    return buf;
}

std::uint64_t
RunSpec::hash() const
{
    std::uint64_t h = fnv1a(workload);
    h = hashCombine(h, footprintBytes);
    h = hashCombine(h, static_cast<std::uint64_t>(pageSize));
    h = hashCombine(h, static_cast<std::uint64_t>(mode));
    h = hashCombine(h, warmupRefs);
    h = hashCombine(h, measureRefs);
    h = hashCombine(h, seed);
    h = hashCombine(h, fastPath ? 1 : 0);
    h = fnv1a(scheme, hashCombine(h, scheme.size()));
    h = fnv1a(platformTag, hashCombine(h, platformTag.size()));
    return h;
}

} // namespace atscale
