#include "core/run_spec.hh"

#include <cstdio>

#include "util/hash.hh"
#include "util/table.hh"

namespace atscale
{

namespace
{

/** Filesystem-safe form of a tenant-mix list ("zipfian,scan" ->
 * "zipfian-scan"); keys and file tags must not contain commas. */
std::string
sanitizedMixTag(const std::string &mix)
{
    std::string tag = mix;
    for (char &c : tag) {
        if (c == ',')
            c = '-';
    }
    return tag;
}

} // namespace

std::string
RunSpec::cacheKey() const
{
    char buf[384];
    std::snprintf(buf, sizeof(buf), "v4_%s_f%llu_%s_m%d_w%llu_n%llu_s%llu",
                  workload.c_str(),
                  static_cast<unsigned long long>(footprintBytes),
                  pageSizeName(pageSize).c_str(), static_cast<int>(mode),
                  static_cast<unsigned long long>(warmupRefs),
                  static_cast<unsigned long long>(measureRefs),
                  static_cast<unsigned long long>(seed));
    std::string key = buf;
    if (!fastPath)
        key += "_nofp";
    if (scheme != "radix")
        key += "_sch" + scheme;
    if (cores != 1)
        key += "_c" + std::to_string(cores);
    if (!tenantMix.empty())
        key += "_t" + sanitizedMixTag(tenantMix);
    if (!platformTag.empty())
        key += "_p" + platformTag;
    return key;
}

std::string
RunSpec::fileTag() const
{
    std::string tag = workload + "_f" + std::to_string(footprintBytes) +
                      "_" + pageSizeName(pageSize) + "_s" +
                      std::to_string(seed);
    if (!fastPath)
        tag += "_nofp";
    if (scheme != "radix")
        tag += "_" + scheme;
    if (cores != 1)
        tag += "_c" + std::to_string(cores);
    if (!tenantMix.empty())
        tag += "_" + sanitizedMixTag(tenantMix);
    if (!platformTag.empty())
        tag += "_" + platformTag;
    return tag;
}

std::string
RunSpec::describe() const
{
    std::string text = workload + " " + fmtBytes(footprintBytes) + " " +
                       pageSizeName(pageSize) +
                       (mode == WorkloadMode::Exec ? " exec" : " model") +
                       " seed=" + std::to_string(seed);
    if (!fastPath)
        text += " no-fastpath";
    if (scheme != "radix")
        text += " scheme=" + scheme;
    if (cores != 1)
        text += " cores=" + std::to_string(cores);
    if (!tenantMix.empty())
        text += " mix=" + tenantMix;
    if (!platformTag.empty())
        text += " platform=" + platformTag;
    return text;
}

std::string
RunSpec::laneGroupKey() const
{
    char buf[320];
    std::snprintf(buf, sizeof(buf), "%s_f%llu_m%d_w%llu_n%llu_s%llu",
                  workload.c_str(),
                  static_cast<unsigned long long>(footprintBytes),
                  static_cast<int>(mode),
                  static_cast<unsigned long long>(warmupRefs),
                  static_cast<unsigned long long>(measureRefs),
                  static_cast<unsigned long long>(seed));
    std::string key = buf;
    // Multi-core runs consume per-tenant streams, not the shared single
    // stream lanes replay; keep their stream identity distinct.
    if (cores != 1)
        key += "_c" + std::to_string(cores);
    if (!tenantMix.empty())
        key += "_t" + sanitizedMixTag(tenantMix);
    return key;
}

std::uint64_t
RunSpec::hash() const
{
    std::uint64_t h = fnv1a(workload);
    h = hashCombine(h, footprintBytes);
    h = hashCombine(h, static_cast<std::uint64_t>(pageSize));
    h = hashCombine(h, static_cast<std::uint64_t>(mode));
    h = hashCombine(h, warmupRefs);
    h = hashCombine(h, measureRefs);
    h = hashCombine(h, seed);
    h = hashCombine(h, fastPath ? 1 : 0);
    h = fnv1a(scheme, hashCombine(h, scheme.size()));
    h = hashCombine(h, static_cast<std::uint64_t>(cores));
    h = fnv1a(tenantMix, hashCombine(h, tenantMix.size()));
    h = fnv1a(platformTag, hashCombine(h, platformTag.size()));
    return h;
}

} // namespace atscale
