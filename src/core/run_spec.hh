/**
 * @file
 * RunSpec: the complete, self-contained identity of one experiment run.
 *
 * A RunSpec carries every knob that can change a RunResult — workload,
 * footprint, page-size backing, instantiation mode, window sizes, seed,
 * and (when a caller varies PlatformParams between runs) an explicit
 * platform tag. Two runs with equal specs are guaranteed bit-identical,
 * which is what lets the sweep engine deduplicate work (single-flight)
 * and the on-disk cache key results by spec alone.
 *
 * The engine and cache treat specs as immutable values: callers build a
 * spec (aggregate-style), hand it over, and every consumer copies it.
 * Equality and hash() cover all fields; hash() is process-stable
 * (FNV-1a, not std::hash) so it can key on-disk artifacts.
 */

#ifndef ATSCALE_CORE_RUN_SPEC_HH
#define ATSCALE_CORE_RUN_SPEC_HH

#include <cstddef>
#include <string>

#include "util/types.hh"
#include "vm/page_size.hh"
#include "workloads/workload.hh"

namespace atscale
{

/** Immutable identity of one run (all knobs that affect the result). */
struct RunSpec
{
    std::string workload = "bfs-urand";
    std::uint64_t footprintBytes = 1ull << 30;
    PageSize pageSize = PageSize::Size4K;
    WorkloadMode mode = WorkloadMode::Model;
    /** References executed before the counter window opens. */
    Count warmupRefs = 500'000;
    /** References in the measured window. */
    Count measureRefs = 2'000'000;
    std::uint64_t seed = 1;
    /**
     * Consult the software translation fast path (mmu/fastpath.hh).
     * Results are bit-identical either way — that is the fast path's
     * contract, enforced by the differential suite — so this knob exists
     * as an escape hatch (--no-fastpath) and for A/B validation, not as
     * a modelling choice.
     */
    bool fastPath = true;
    /**
     * Translation scheme the MMU runs (mmu/scheme/registry.hh):
     * "radix" (default), "hashed", "cache_tlb", or "no_vm". A platform-
     * side knob like pageSize: it never changes the reference stream,
     * so scheme variants of one spec co-schedule as lockstep lanes —
     * the scheme-comparison sweeps ride the lane engine for free.
     */
    std::string scheme = "radix";
    /**
     * Simulated cores. 1 (default) runs the classic private single-core
     * Platform; >1 runs a SharedSystem (src/sys) of this many cores with
     * private L1/L2 over one shared L3, one tenant stream per core, and
     * inter-core TLB shootdowns (docs/MULTICORE.md). Included in
     * laneGroupKey: a multi-core run consumes per-tenant streams, not
     * the shared single stream lockstep lanes replay, so cores>1 specs
     * never co-schedule with single-core ones.
     */
    std::uint32_t cores = 1;
    /**
     * Per-tenant key-mix list for multi-tenant workloads, passed
     * through to WorkloadConfig::tenantMix ("zipfian,scan,churn",
     * cycled across tenants). Empty = workload default. Only
     * meaningful with cores > 1 on a multi-tenant workload.
     */
    std::string tenantMix;
    /**
     * Distinguishes runs made under non-default PlatformParams. The
     * params themselves are not part of the spec (they are not hashable
     * and rarely vary); any caller that runs the same (workload,
     * footprint, ...) under different platform geometries MUST give each
     * variant a distinct tag, or the cache and the engine's single-flight
     * dedup will conflate them. Empty for the default platform.
     */
    std::string platformTag;

    bool operator==(const RunSpec &) const = default;

    /**
     * Canonical key string encoding every field. This is the on-disk
     * cache-file stem (with ".run" appended) and the basis of hash().
     * The key carries a result-semantics version prefix ("v4_"): bumped
     * when the simulation's results change for the same knobs (v2 = the
     * chunked fetch-ahead frontend, v3 = the translation-scheme seam,
     * v4 = the multi-core shared system), which retires stale cache
     * files wholesale. fastPath does not alter default keys —
     * fast-path-on is bit-identical to off — but disabled runs are
     * tagged "_nofp" so A/B validation sweeps cannot conflate cache
     * entries; likewise non-radix schemes are tagged "_sch<name>",
     * multi-core runs "_c<cores>", and non-default tenant mixes
     * "_t<mix>", while the default single-core radix key stays
     * untagged.
     */
    std::string cacheKey() const;

    /** Cache file name: cacheKey() + ".run". */
    std::string cacheFileName() const { return cacheKey() + ".run"; }

    /**
     * Short filesystem-safe tag for per-job output files
     * (workload_f<bytes>_<pagesize>_s<seed>[_<platformTag>]); unlike
     * cacheKey() it omits window sizes and mode for readability.
     */
    std::string fileTag() const;

    /** One-line human description for progress and dry-run listings. */
    std::string describe() const;

    /**
     * Key over exactly the fields that select the reference stream
     * (workload, footprint, mode, window sizes, seed, cores, tenant
     * mix). Specs sharing a key consume bit-identical streams, so the
     * sweep engine may execute them as lockstep lanes over one shared
     * generator (core/lane_exec); platform-side knobs — pageSize,
     * fastPath, scheme, platformTag — are deliberately excluded, which
     * is what makes page-size, MMU-ablation, and translation-scheme
     * variants co-schedulable. cores/tenantMix are included (they
     * change the streams), but the engine still runs every cores>1
     * spec standalone — the lane executor replays one shared stream,
     * and a multi-core run consumes K per-tenant streams.
     */
    std::string laneGroupKey() const;

    /** Process-stable value hash over all fields (FNV-1a based). */
    std::uint64_t hash() const;
};

/** Hasher for unordered containers keyed by RunSpec. */
struct RunSpecHash
{
    std::size_t
    operator()(const RunSpec &spec) const
    {
        return static_cast<std::size_t>(spec.hash());
    }
};

/**
 * Transitional alias: RunConfig was split into this immutable spec; the
 * old name remains valid for callers that build specs field by field.
 */
using RunConfig = RunSpec;

} // namespace atscale

#endif // ATSCALE_CORE_RUN_SPEC_HH
