#include "core/sweep.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unistd.h>
#include <unordered_map>

#include "core/lane_exec.hh"
#include "core/run_cache.hh"
#include "core/run_export.hh"
#include "core/sweep_partial.hh"
#include "mmu/scheme/registry.hh"
#include "util/logging.hh"

namespace atscale
{

namespace
{

bool
stderrIsTty()
{
    static const bool tty = ::isatty(::fileno(stderr)) != 0;
    return tty;
}

} // namespace

std::vector<std::uint64_t>
footprintSweep(std::uint64_t lo, std::uint64_t hi, int pointsPerDecade)
{
    panic_if(lo == 0 || hi < lo, "bad footprint range");
    std::vector<std::uint64_t> sweep;
    double log_lo = std::log10(static_cast<double>(lo));
    double log_hi = std::log10(static_cast<double>(hi));
    int steps = static_cast<int>(
        std::ceil((log_hi - log_lo) * pointsPerDecade));
    for (int i = 0; i <= steps; ++i) {
        double lg = log_lo + (log_hi - log_lo) * i / std::max(steps, 1);
        sweep.push_back(static_cast<std::uint64_t>(std::pow(10.0, lg)));
    }
    // Pin the endpoints exactly (pow/log round-tripping truncates).
    sweep.front() = lo;
    sweep.back() = hi;
    return sweep;
}

std::vector<std::uint64_t>
defaultFootprints()
{
    // ~250 MB to ~600 GB, 2 points per decade (the paper's Figs use
    // ~8-12 input sizes per workload).
    return footprintSweep(256ull << 20, 600ull << 30, 2);
}

std::vector<std::uint64_t>
quickFootprints()
{
    return footprintSweep(256ull << 20, 64ull << 30, 1);
}

std::vector<std::uint64_t>
sweepFootprints()
{
    const char *quick = std::getenv("ATSCALE_QUICK");
    if (quick && *quick && *quick != '0')
        return quickFootprints();
    return defaultFootprints();
}

int
resolveThreads(int requested)
{
    int threads = requested;
    if (threads <= 0) {
        if (const char *env = std::getenv("ATSCALE_THREADS"))
            threads = std::atoi(env);
    }
    if (threads <= 0)
        threads = 1;
    return std::min(threads, 512);
}

bool
fastPathDefault()
{
    const char *env = std::getenv("ATSCALE_NO_FASTPATH");
    return !(env && *env && *env != '0');
}

std::string
schemeDefault()
{
    const char *env = std::getenv("ATSCALE_SCHEME");
    if (env && *env)
        return env;
    return "radix";
}

bool
extractSweepFlags(int &argc, char **argv, std::string &error)
{
    error.clear();
    const std::string prefix = "--threads=";
    const std::string scheme_prefix = "--scheme=";
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.compare(0, scheme_prefix.size(), scheme_prefix) == 0) {
            std::string name = arg.substr(scheme_prefix.size());
            if (!isTranslationScheme(name)) {
                if (error.empty())
                    error = "--scheme: unknown translation scheme '" + name +
                            "' (known: " + schemeNameList() + ")";
                continue;
            }
            // Environment-carried for the same reason as --threads:
            // every RunSpec this process builds via schemeDefault()
            // picks up the request.
            setenv("ATSCALE_SCHEME", name.c_str(), 1);
            continue;
        }
        if (arg.rfind("--scheme", 0) == 0) {
            if (error.empty())
                error = "--scheme requires =<name> (known: " +
                        schemeNameList() + ")";
            continue;
        }
        if (arg.compare(0, prefix.size(), prefix) == 0) {
            char *end = nullptr;
            long value = std::strtol(arg.c_str() + prefix.size(), &end, 10);
            if (*end != '\0' || value <= 0 || value > 512) {
                if (error.empty())
                    error = "--threads expects an integer in [1, 512]";
                continue;
            }
            // Store into the environment so every engine constructed in
            // this process (including ones inside library helpers like
            // sweepWorkloads) sees the request.
            setenv("ATSCALE_THREADS", std::to_string(value).c_str(), 1);
            continue;
        }
        if (arg.rfind("--threads", 0) == 0) {
            if (error.empty())
                error = "--threads requires =<count>";
            continue;
        }
        if (arg == "--no-fastpath") {
            // Escape hatch: disable the software translation fast path
            // for every run this process makes (A/B validation, or
            // ruling the fast path out while chasing a discrepancy).
            // Environment-carried for the same reason as --threads.
            setenv("ATSCALE_NO_FASTPATH", "1", 1);
            continue;
        }
        if (arg == "--no-lanes") {
            // Escape hatch: run every job standalone instead of in
            // lockstep lane groups (A/B validation of the lane
            // exactness contract, or isolating a suspect job).
            setenv("ATSCALE_NO_LANES", "1", 1);
            continue;
        }
        if (arg == "--lanes") {
            // Force lane groups on even where lanesDefault() would
            // decline them (a single-core host) — exactness A/B runs
            // and the differential suite use this.
            setenv("ATSCALE_LANES", "1", 1);
            continue;
        }
        if (arg == "--no-batch") {
            // Escape hatch: disable the core's chunk translation screen
            // (prefetch pass over freshly fetched chunks). Bit-identical
            // either way; an A/B handle for perf triage.
            setenv("ATSCALE_NO_BATCH", "1", 1);
            continue;
        }
        if (arg == "--record-streams" ||
            arg.rfind("--record-streams=", 0) == 0) {
            // Enable the reference-stream record/replay store
            // (core/ref_stream_store.hh) for every run this process
            // makes, rooted at the given (or default) directory.
            std::string dir = arg == "--record-streams"
                                  ? "atscale_streams"
                                  : arg.substr(std::string(
                                                   "--record-streams=")
                                                   .size());
            if (dir.empty()) {
                if (error.empty())
                    error = "--record-streams=<dir> requires a directory";
                continue;
            }
            setenv("ATSCALE_STREAM_DIR", dir.c_str(), 1);
            continue;
        }
        if (arg.rfind("--shard=", 0) == 0) {
            unsigned index = 0;
            unsigned count = 0;
            char trailing = 0;
            int matched =
                std::sscanf(arg.c_str() + std::string("--shard=").size(),
                            "%u/%u%c", &index, &count, &trailing);
            if (matched != 2 || count == 0 || index == 0 ||
                index > count) {
                if (error.empty())
                    error = "--shard expects i/N with 1 <= i <= N";
                continue;
            }
            // Environment-carried like --threads so every engine this
            // process constructs partitions identically.
            std::string value =
                std::to_string(index) + "/" + std::to_string(count);
            setenv("ATSCALE_SHARD", value.c_str(), 1);
            continue;
        }
        if (arg.rfind("--shard", 0) == 0) {
            if (error.empty())
                error = "--shard requires =i/N";
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return error.empty();
}

ShardSpec
shardSpec()
{
    ShardSpec shard;
    const char *env = std::getenv("ATSCALE_SHARD");
    if (!env || !*env)
        return shard;
    unsigned index = 0;
    unsigned count = 0;
    char trailing = 0;
    int matched = std::sscanf(env, "%u/%u%c", &index, &count, &trailing);
    fatal_if(matched != 2 || count == 0 || index == 0 || index > count,
             "ATSCALE_SHARD='%s' is malformed (want i/N with "
             "1 <= i <= N)",
             env);
    shard.index = index;
    shard.count = count;
    return shard;
}

SweepEngine::SweepEngine(SweepOptions options)
    : options_(std::move(options)),
      threads_(resolveThreads(options_.threads)),
      lanes_(options_.lanes && lanesDefault())
{
}

std::vector<SweepPlanEntry>
SweepEngine::plan(const std::vector<SweepJob> &jobs) const
{
    std::unordered_map<RunSpec, std::size_t, RunSpecHash> seen;
    std::vector<SweepPlanEntry> entries;
    entries.reserve(jobs.size());
    for (const SweepJob &job : jobs) {
        SweepPlanEntry entry;
        entry.spec = job.spec;
        entry.duplicate = !seen.try_emplace(job.spec, entries.size()).second;
        entry.cached = cachedRunExists(job.spec);
        // Jobs that would execute are grouped exactly as run() groups
        // them: by stream identity, cached/duplicate entries dropped.
        if (lanes_ && !entry.duplicate && !entry.cached)
            entry.laneGroup = job.spec.laneGroupKey();
        entries.push_back(std::move(entry));
    }
    return entries;
}

void
SweepEngine::noteRunning(std::size_t jobs)
{
    MutexLock lock(mu_);
    progress_.running += jobs;
    if (options_.onProgress)
        options_.onProgress(progress_);
}

void
SweepEngine::noteFinished(bool cached, std::size_t jobs, bool laneShared)
{
    MutexLock lock(mu_);
    if (cached) {
        progress_.cached += jobs;
    } else {
        progress_.running -= jobs;
        progress_.completed += jobs;
        if (laneShared)
            progress_.laneShared += jobs;
    }
    if (options_.onProgress) {
        options_.onProgress(progress_);
    } else if (stderrIsTty()) {
        std::fprintf(stderr,
                     "\rsweep: %zu/%zu executed (%zu cached, "
                     "%zu lane-shared, %zu running) ",
                     progress_.completed,
                     progress_.total - progress_.cached, progress_.cached,
                     progress_.laneShared, progress_.running);
        std::fflush(stderr);
    }
}

void
SweepEngine::executeJob(const SweepJob &job, RunResult &result)
{
    if (!options_.obs.any()) {
        result = runExperiment(job.spec, job.params);
        return;
    }

    // Per-job observability: a private session, outputs under per-job
    // names. Emission is serialized so concurrent jobs never interleave
    // writes or stdout "wrote ..." lines.
    ObsOptions job_obs = options_.obs.forJob(job.spec.fileTag());
    ObsSession session(job_obs);
    result = runExperiment(job.spec, job.params, &session);

    MutexLock lock(mu_);
    if (!job_obs.jsonOut.empty()) {
        writeRunResultJsonFile(job_obs.jsonOut, result,
                               &session.statsSnapshot(),
                               job.params.freqGHz);
        written_.push_back(job_obs.jsonOut);
    }
    for (const std::string &path : session.writeOutputs(job.params.freqGHz))
        written_.push_back(path);
}

void
SweepEngine::executeLaneUnit(const std::vector<const SweepJob *> &unit,
                             const std::vector<RunResult *> &results)
{
    // Co-scheduled jobs share one reference stream (core/lane_exec.hh);
    // each lane still gets its own platform and — when observability is
    // on — its own session with per-job output names, exactly as
    // executeJob would give it.
    const bool observing = options_.obs.any();
    std::vector<LaneJob> lanes;
    std::vector<ObsOptions> lane_obs;
    std::vector<std::unique_ptr<ObsSession>> sessions;
    lanes.reserve(unit.size());
    for (const SweepJob *job : unit) {
        LaneJob lane;
        lane.spec = job->spec;
        lane.params = job->params;
        if (observing) {
            lane_obs.push_back(options_.obs.forJob(job->spec.fileTag()));
            sessions.push_back(
                std::make_unique<ObsSession>(lane_obs.back()));
            lane.obs = sessions.back().get();
        }
        lanes.push_back(std::move(lane));
    }

    std::vector<RunResult> lane_results = runLaneGroup(lanes);
    for (std::size_t i = 0; i < unit.size(); ++i)
        *results[i] = std::move(lane_results[i]);

    if (!observing)
        return;
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < unit.size(); ++i) {
        if (!lane_obs[i].jsonOut.empty()) {
            writeRunResultJsonFile(lane_obs[i].jsonOut, *results[i],
                                   &sessions[i]->statsSnapshot(),
                                   unit[i]->params.freqGHz);
            written_.push_back(lane_obs[i].jsonOut);
        }
        for (const std::string &path :
             sessions[i]->writeOutputs(unit[i]->params.freqGHz))
            written_.push_back(path);
    }
}

std::vector<RunResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    // Single-flight: duplicate specs collapse onto the first occurrence.
    std::unordered_map<RunSpec, std::size_t, RunSpecHash> index;
    std::vector<std::size_t> owner(jobs.size());
    std::vector<std::size_t> uniq;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto [it, inserted] = index.try_emplace(jobs[i].spec, uniq.size());
        if (inserted)
            uniq.push_back(i);
        owner[i] = it->second;
    }

    {
        MutexLock lock(mu_);
        written_.clear();
        progress_ = SweepProgress{};
        progress_.total = uniq.size();
    }

    // Partition the unique jobs into execution units: with lanes
    // enabled, jobs sharing a stream identity (RunSpec::laneGroupKey)
    // become one lockstep lane group — the stream is generated once for
    // all of them — and everything else (or everything, with lanes off)
    // runs standalone. Declared order is preserved within each group.
    // Units are formed from the full unique list, *before* the cache
    // pre-pass: unit positions are then a function of the declared job
    // list alone, which is what lets N sharded invocations of the same
    // sweep partition it identically whatever each machine's cache
    // holds.
    std::vector<std::vector<std::size_t>> units;
    if (lanes_) {
        std::unordered_map<std::string, std::size_t> groups;
        for (std::size_t u = 0; u < uniq.size(); ++u) {
            // Multi-core specs always run standalone: the lane executor
            // replays one shared stream through per-lane platforms,
            // while a SharedSystem consumes K per-tenant streams (and
            // is itself already a serial K-core interleave).
            if (jobs[uniq[u]].spec.cores > 1) {
                units.emplace_back(1, u);
                continue;
            }
            auto [it, inserted] = groups.try_emplace(
                jobs[uniq[u]].spec.laneGroupKey(), units.size());
            if (inserted)
                units.emplace_back();
            units[it->second].push_back(u);
        }
    } else {
        units.reserve(uniq.size());
        for (std::size_t u = 0; u < uniq.size(); ++u)
            units.emplace_back(1, u);
    }

    // Shard filter: keep every count-th unit, round-robin from the
    // shard index. Whole units (not jobs) are assigned so a lane
    // group's shared stream is still generated exactly once, by
    // whichever shard owns the group.
    const ShardSpec shard = shardSpec();
    std::vector<char> owned_uniq(uniq.size(), 1);
    if (shard.active()) {
        std::vector<std::vector<std::size_t>> mine;
        for (std::size_t w = 0; w < units.size(); ++w) {
            if (w % shard.count == shard.index - 1) {
                mine.push_back(std::move(units[w]));
                continue;
            }
            for (std::size_t u : units[w])
                owned_uniq[u] = 0;
        }
        units = std::move(mine);
    }

    // Check the cache before dispatch — for every unique job, owned or
    // not, so a sharded run's result vector still covers whatever the
    // cache can serve. Observed sweeps execute every owned job: cached
    // entries carry no windows or traces, so serving them would
    // silently drop the requested outputs.
    std::vector<RunResult> results(uniq.size());
    std::vector<char> cached_uniq(uniq.size(), 0);
    const bool observing = options_.obs.any();
    for (std::size_t u = 0; u < uniq.size(); ++u) {
        if (!observing && loadCachedRun(jobs[uniq[u]].spec, results[u])) {
            cached_uniq[u] = 1;
            noteFinished(true, 1, false);
        }
    }
    std::size_t live_units = 0;
    for (std::size_t w = 0; w < units.size(); ++w) {
        std::erase_if(units[w],
                      [&](std::size_t u) { return cached_uniq[u] != 0; });
        if (units[w].empty())
            continue;
        if (live_units != w)
            units[live_units] = std::move(units[w]);
        ++live_units;
    }
    units.resize(live_units);

    std::size_t cached_total = 0;
    for (std::size_t u = 0; u < uniq.size(); ++u)
        cached_total += cached_uniq[u];
    if (!jobs.empty()) {
        std::size_t lane_shared = 0;
        for (const std::vector<std::size_t> &unit : units)
            lane_shared += unit.size() > 1 ? unit.size() : 0;
        if (shard.active()) {
            std::size_t owned = 0;
            for (const std::vector<std::size_t> &unit : units)
                owned += unit.size();
            inform("sweep: shard %u/%u executes %zu of %zu unique jobs "
                   "(%zu cached, %zu lane-shared) on %d thread(s)",
                   shard.index, shard.count, owned, uniq.size(),
                   cached_total, lane_shared, threads_);
        } else {
            inform("sweep: %zu jobs (%zu unique, %zu cached, "
                   "%zu lane-shared) on %d thread(s)",
                   jobs.size(), uniq.size(), cached_total, lane_shared,
                   threads_);
        }
    }

    if (!units.empty()) {
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                std::size_t w = next.fetch_add(1);
                if (w >= units.size())
                    return;
                const std::vector<std::size_t> &unit = units[w];
                noteRunning(unit.size());
                if (unit.size() == 1) {
                    std::size_t u = unit.front();
                    executeJob(jobs[uniq[u]], results[u]);
                    noteFinished(false, 1, false);
                } else {
                    std::vector<const SweepJob *> unit_jobs;
                    std::vector<RunResult *> unit_results;
                    unit_jobs.reserve(unit.size());
                    unit_results.reserve(unit.size());
                    for (std::size_t u : unit) {
                        unit_jobs.push_back(&jobs[uniq[u]]);
                        unit_results.push_back(&results[u]);
                    }
                    executeLaneUnit(unit_jobs, unit_results);
                    noteFinished(false, unit.size(), true);
                }
            }
        };
        int pool_size = static_cast<int>(
            std::min<std::size_t>(threads_, units.size()));
        if (pool_size <= 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(pool_size);
            for (int t = 0; t < pool_size; ++t)
                pool.emplace_back(worker);
            for (std::thread &thread : pool)
                thread.join();
        }
        if (!options_.onProgress && stderrIsTty())
            std::fputc('\n', stderr);
    }

    // Results in declared order, duplicates sharing their owner's run.
    std::vector<RunResult> out;
    out.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        out.push_back(results[owner[i]]);

    // Whole-sweep JSON aggregate, in declared order (deterministic for
    // any thread count). A sharded sweep cannot emit the aggregate — it
    // holds only its own units — so it writes a partial
    // (core/sweep_partial.hh) tagged with global declared indices;
    // tools/sweep/merge_runs reassembles the shards' partials into the
    // byte-identical single-machine aggregate.
    if (observing && !options_.obs.jsonOut.empty()) {
        double freq = jobs.empty() ? PlatformParams{}.freqGHz
                                   : jobs.front().params.freqGHz;
        if (shard.active()) {
            SweepPartial partial;
            partial.totalJobs = jobs.size();
            partial.freqGHz = freq;
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (!owned_uniq[owner[i]])
                    continue;
                partial.entries.push_back(
                    SweepPartial::Entry{i, results[owner[i]]});
            }
            std::string path = options_.obs.jsonOut + ".partial";
            writeSweepPartialFile(path, partial);
            MutexLock lock(mu_);
            written_.push_back(path);
        } else {
            writeRunResultsJsonFile(options_.obs.jsonOut, out, freq);
            MutexLock lock(mu_);
            written_.push_back(options_.obs.jsonOut);
        }
    }
    return out;
}

std::vector<RunResult>
SweepEngine::run(const std::vector<RunSpec> &specs,
                 const PlatformParams &params)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(specs.size());
    for (const RunSpec &spec : specs)
        jobs.push_back(SweepJob{spec, params});
    return run(jobs);
}

void
SweepEngine::forEachTask(std::size_t count,
                         const std::function<void(std::size_t)> &task)
{
    if (count == 0)
        return;
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            task(i);
        }
    };
    int pool_size =
        static_cast<int>(std::min<std::size_t>(threads_, count));
    if (pool_size <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (int t = 0; t < pool_size; ++t)
        pool.emplace_back(worker);
    for (std::thread &thread : pool)
        thread.join();
}

std::vector<SweepJob>
overheadSweepJobs(const std::vector<std::string> &workloads,
                  const std::vector<std::uint64_t> &footprints,
                  const RunSpec &base, const PlatformParams &params)
{
    static constexpr PageSize kSizes[] = {PageSize::Size4K, PageSize::Size2M,
                                          PageSize::Size1G};
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * footprints.size() * 3);
    for (const std::string &workload : workloads) {
        for (std::uint64_t footprint : footprints) {
            for (PageSize size : kSizes) {
                RunSpec spec = base;
                spec.workload = workload;
                spec.footprintBytes = footprint;
                spec.pageSize = size;
                jobs.push_back(SweepJob{std::move(spec), params});
            }
        }
    }
    return jobs;
}

std::vector<SweepJob>
schemeSweepJobs(const std::vector<std::string> &workloads,
                const std::vector<std::uint64_t> &footprints,
                const std::vector<std::string> &schemes,
                const RunSpec &base, const PlatformParams &params)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * footprints.size() * schemes.size());
    for (const std::string &workload : workloads) {
        for (std::uint64_t footprint : footprints) {
            for (const std::string &scheme : schemes) {
                fatal_if(!isTranslationScheme(scheme),
                         "schemeSweepJobs: unknown translation scheme '%s' "
                         "(known: %s)",
                         scheme.c_str(), schemeNameList().c_str());
                RunSpec spec = base;
                spec.workload = workload;
                spec.footprintBytes = footprint;
                spec.scheme = scheme;
                jobs.push_back(SweepJob{std::move(spec), params});
            }
        }
    }
    return jobs;
}

namespace
{

/** Reassemble engine results (overheadSweepJobs order) into sweeps. */
std::vector<WorkloadSweep>
assembleSweeps(const std::vector<std::string> &workloads,
               const std::vector<std::uint64_t> &footprints,
               const std::vector<RunResult> &results)
{
    std::vector<WorkloadSweep> sweeps;
    sweeps.reserve(workloads.size());
    std::size_t next = 0;
    for (const std::string &workload : workloads) {
        WorkloadSweep sweep;
        sweep.workload = workload;
        sweep.points.reserve(footprints.size());
        for (std::uint64_t footprint : footprints) {
            OverheadPoint point;
            point.workload = workload;
            point.footprintBytes = footprint;
            point.run4k = results[next++];
            point.run2m = results[next++];
            point.run1g = results[next++];
            sweep.points.push_back(std::move(point));
        }
        sweeps.push_back(std::move(sweep));
    }
    return sweeps;
}

} // namespace

WorkloadSweep
sweepWorkload(const std::string &workload,
              const std::vector<std::uint64_t> &footprints,
              const RunSpec &base, const PlatformParams &params,
              const std::function<void(const OverheadPoint &)> &progress)
{
    SweepEngine engine;
    auto results =
        engine.run(overheadSweepJobs({workload}, footprints, base, params));
    WorkloadSweep sweep =
        std::move(assembleSweeps({workload}, footprints, results).front());
    if (progress) {
        for (const OverheadPoint &point : sweep.points)
            progress(point);
    }
    return sweep;
}

std::vector<WorkloadSweep>
sweepWorkloads(const std::vector<std::string> &workloads,
               const std::vector<std::uint64_t> &footprints,
               const RunSpec &base, const PlatformParams &params)
{
    SweepEngine engine;
    auto results =
        engine.run(overheadSweepJobs(workloads, footprints, base, params));
    return assembleSweeps(workloads, footprints, results);
}

} // namespace atscale
