#include "core/sweep.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace atscale
{

std::vector<std::uint64_t>
footprintSweep(std::uint64_t lo, std::uint64_t hi, int pointsPerDecade)
{
    panic_if(lo == 0 || hi < lo, "bad footprint range");
    std::vector<std::uint64_t> sweep;
    double log_lo = std::log10(static_cast<double>(lo));
    double log_hi = std::log10(static_cast<double>(hi));
    int steps = static_cast<int>(
        std::ceil((log_hi - log_lo) * pointsPerDecade));
    for (int i = 0; i <= steps; ++i) {
        double lg = log_lo + (log_hi - log_lo) * i / std::max(steps, 1);
        sweep.push_back(static_cast<std::uint64_t>(std::pow(10.0, lg)));
    }
    // Pin the endpoints exactly (pow/log round-tripping truncates).
    sweep.front() = lo;
    sweep.back() = hi;
    return sweep;
}

std::vector<std::uint64_t>
defaultFootprints()
{
    // ~250 MB to ~600 GB, 2 points per decade (the paper's Figs use
    // ~8-12 input sizes per workload).
    return footprintSweep(256ull << 20, 600ull << 30, 2);
}

std::vector<std::uint64_t>
quickFootprints()
{
    return footprintSweep(256ull << 20, 64ull << 30, 1);
}

std::vector<std::uint64_t>
sweepFootprints()
{
    const char *quick = std::getenv("ATSCALE_QUICK");
    if (quick && *quick && *quick != '0')
        return quickFootprints();
    return defaultFootprints();
}

WorkloadSweep
sweepWorkload(const std::string &workload,
              const std::vector<std::uint64_t> &footprints,
              const RunConfig &base, const PlatformParams &params,
              const std::function<void(const OverheadPoint &)> &progress)
{
    WorkloadSweep sweep;
    sweep.workload = workload;
    for (std::uint64_t footprint : footprints) {
        RunConfig config = base;
        config.workload = workload;
        config.footprintBytes = footprint;
        sweep.points.push_back(measureOverhead(config, params));
        if (progress)
            progress(sweep.points.back());
    }
    return sweep;
}

std::vector<WorkloadSweep>
sweepWorkloads(const std::vector<std::string> &workloads,
               const std::vector<std::uint64_t> &footprints,
               const RunConfig &base, const PlatformParams &params)
{
    std::vector<WorkloadSweep> sweeps;
    for (const std::string &workload : workloads) {
        inform("sweeping %s (%zu footprints)", workload.c_str(),
               footprints.size());
        sweeps.push_back(sweepWorkload(workload, footprints, base, params));
    }
    return sweeps;
}

} // namespace atscale
