/**
 * @file
 * Footprint sweeps: the paper's input-size sweeps per workload, yielding
 * one OverheadPoint per (workload, footprint).
 */

#ifndef ATSCALE_CORE_SWEEP_HH
#define ATSCALE_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "core/overhead.hh"

namespace atscale
{

/**
 * Log-spaced footprints from lo to hi (inclusive-ish), pointsPerDecade
 * per factor of 10, mirroring the paper's ~250 MB to ~600 GB range.
 */
std::vector<std::uint64_t> footprintSweep(std::uint64_t lo, std::uint64_t hi,
                                          int pointsPerDecade);

/** The default sweep used by the figure benches. */
std::vector<std::uint64_t> defaultFootprints();

/** A reduced sweep for quick runs (ATSCALE_QUICK=1). */
std::vector<std::uint64_t> quickFootprints();

/** Honours ATSCALE_QUICK: quick or default footprints. */
std::vector<std::uint64_t> sweepFootprints();

/** One workload's sweep. */
struct WorkloadSweep
{
    std::string workload;
    std::vector<OverheadPoint> points;
};

/**
 * Sweep one workload across footprints.
 * @param progress optional callback invoked after each point
 */
WorkloadSweep
sweepWorkload(const std::string &workload,
              const std::vector<std::uint64_t> &footprints,
              const RunConfig &base = {}, const PlatformParams &params = {},
              const std::function<void(const OverheadPoint &)> &progress = {});

/** Sweep several workloads. */
std::vector<WorkloadSweep>
sweepWorkloads(const std::vector<std::string> &workloads,
               const std::vector<std::uint64_t> &footprints,
               const RunConfig &base = {},
               const PlatformParams &params = {});

} // namespace atscale

#endif // ATSCALE_CORE_SWEEP_HH
