/**
 * @file
 * The sweep engine: declared sets of RunSpecs executed as schedulable
 * jobs on a fixed thread pool, plus the paper's footprint-sweep helpers.
 *
 * The paper's headline artifacts are dozens of independent (workload,
 * footprint, page size) runs whose results only meet at the analysis
 * stage — on real Haswell the sweeps took up to 3 days. SweepEngine
 * turns that shape into a first-class object: callers declare the full
 * job list up front, the engine deduplicates equal specs (single-flight),
 * satisfies what it can from the on-disk result cache, executes the rest
 * on --threads=N / ATSCALE_THREADS worker threads, and returns results
 * in declared order — so every downstream CSV/report/chart emission is
 * byte-identical regardless of thread count.
 *
 * Determinism contract: runExperiment() is a pure function of
 * (RunSpec, PlatformParams) — each job builds its own platform, workload
 * instance, and RNG state from the spec (see core/experiment.hh) — so
 * parallel execution can only change *when* a result is computed, never
 * its value.
 */

#ifndef ATSCALE_CORE_SWEEP_HH
#define ATSCALE_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "core/overhead.hh"
#include "obs/session.hh"
#include "util/thread_annotations.hh"

namespace atscale
{

/**
 * Log-spaced footprints from lo to hi (inclusive-ish), pointsPerDecade
 * per factor of 10, mirroring the paper's ~250 MB to ~600 GB range.
 */
std::vector<std::uint64_t> footprintSweep(std::uint64_t lo, std::uint64_t hi,
                                          int pointsPerDecade);

/** The default sweep used by the figure benches. */
std::vector<std::uint64_t> defaultFootprints();

/** A reduced sweep for quick runs (ATSCALE_QUICK=1). */
std::vector<std::uint64_t> quickFootprints();

/** Honours ATSCALE_QUICK: quick or default footprints. */
std::vector<std::uint64_t> sweepFootprints();

/**
 * Resolve the worker-thread count for a sweep: an explicit positive
 * request wins; otherwise the ATSCALE_THREADS environment variable;
 * otherwise 1 (serial — the pre-engine behaviour).
 */
int resolveThreads(int requested = 0);

/**
 * Extract engine flags (--threads=N, --no-fastpath, --no-lanes,
 * --lanes, --scheme=NAME, --shard=i/N, --record-streams[=DIR],
 * --no-batch) from argv, compacting the remaining arguments in place as
 * extractObsFlags does. --threads wins over the ATSCALE_THREADS
 * environment variable (it is stored back into it, so engines
 * constructed anywhere in the process see it); --no-fastpath sets
 * ATSCALE_NO_FASTPATH, which benchx::baseRunConfig and fastPathDefault()
 * consult; --no-lanes / --lanes set ATSCALE_NO_LANES / ATSCALE_LANES,
 * which lanesDefault() consults (the multi-lane executor's A/B escape
 * hatch and single-core force-on); --scheme sets ATSCALE_SCHEME
 * (validated against the scheme registry), which schemeDefault()
 * consults; --shard sets ATSCALE_SHARD, which shardSpec() consults (the
 * engine then executes only this shard's execution units); and
 * --record-streams sets ATSCALE_STREAM_DIR (default "atscale_streams"),
 * enabling the reference-stream record/replay store
 * (core/ref_stream_store.hh). --no-batch sets ATSCALE_NO_BATCH, which
 * disables the core's chunk translation screen (an A/B handle; results
 * are bit-identical either way).
 *
 * @return false with `error` set when a flag is malformed.
 */
bool extractSweepFlags(int &argc, char **argv, std::string &error);

/**
 * This process's slice of sharded sweeps: 1-based shard `index` of
 * `count`. The engine partitions every sweep's execution units round-
 * robin by unit position — a function only of the declared job list and
 * lane grouping, never of cache state or thread count, so N shards over
 * the same job list partition it exactly. The default (1/1) executes
 * everything.
 */
struct ShardSpec
{
    std::uint32_t index = 1;
    std::uint32_t count = 1;

    /** Whether this process runs a proper subset of each sweep. */
    bool active() const { return count > 1; }
};

/**
 * Resolve the process shard from ATSCALE_SHARD ("i/N", as --shard=i/N
 * stores it). fatal() on a malformed value — a typo must not silently
 * run the whole sweep on a machine meant to take 1/Nth of it.
 */
ShardSpec shardSpec();

/**
 * Default RunSpec::fastPath for this process: true unless the
 * ATSCALE_NO_FASTPATH environment variable (or --no-fastpath via
 * extractSweepFlags) disabled it.
 */
bool fastPathDefault();

/**
 * Default RunSpec::scheme for this process: "radix" unless the
 * ATSCALE_SCHEME environment variable (or --scheme= via
 * extractSweepFlags) selected another registered translation scheme.
 */
std::string schemeDefault();

/** One schedulable job: a spec plus the platform to run it on. */
struct SweepJob
{
    RunSpec spec;
    PlatformParams params{};
};

/** Progress counts for a running sweep (totals are unique jobs). */
struct SweepProgress
{
    std::size_t total = 0;     ///< unique jobs in the sweep
    std::size_t cached = 0;    ///< satisfied from the disk cache
    std::size_t completed = 0; ///< executed to completion (excl. cached)
    std::size_t running = 0;   ///< currently executing
    /** Of `completed`, jobs that consumed a lane group's shared stream
     * instead of generating their own (amortization at work). */
    std::size_t laneShared = 0;
};

/** Pre-execution view of one declared job (for --jobs-dry-run). */
struct SweepPlanEntry
{
    RunSpec spec;
    bool cached = false;    ///< a disk-cache entry already exists
    bool duplicate = false; ///< same spec declared earlier in the list
    /** Lockstep lane group this job would execute in (its
     * RunSpec::laneGroupKey()); empty for cached/duplicate entries and
     * when lane execution is disabled. Groups with one member run
     * standalone. */
    std::string laneGroup;
};

/** Engine configuration. */
struct SweepOptions
{
    /** Worker threads; 0 = resolveThreads() (env, default serial). */
    int threads = 0;
    /**
     * Per-job observability. When any() is set, every *executed* job
     * (cached jobs carry no windows/traces) runs with its own ObsSession
     * and writes its outputs under per-job names derived via
     * ObsOptions::forJob(); file emission is serialized on an internal
     * mutex. When obs.jsonOut is set the engine additionally writes the
     * whole sweep, in declared order, as a JSON array at that path.
     */
    ObsOptions obs;
    /** Optional progress callback; invoked under the engine's mutex. */
    std::function<void(const SweepProgress &)> onProgress;
    /**
     * Execute co-schedulable jobs as lockstep lanes over one shared
     * reference stream (core/lane_exec.hh). Results are bit-identical
     * either way — the lane exactness contract — so this knob is an
     * escape hatch and A/B handle, not a modelling choice. The
     * effective setting is `lanes && lanesDefault()` — explicit
     * --no-lanes / --lanes (ATSCALE_NO_LANES / ATSCALE_LANES) overrides
     * win, and with neither set lanes engage only on multi-core hosts.
     */
    bool lanes = true;
};

/**
 * Executes declared sets of RunSpecs. Stateless between run() calls
 * apart from options and the written-output log; one engine can be
 * reused for several sweeps.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});

    /** The resolved worker-thread count. */
    int threads() const { return threads_; }

    /** Whether this engine schedules lockstep lane groups. */
    bool lanesEnabled() const { return lanes_; }

    /**
     * Classify each declared job without executing anything: which specs
     * are cache hits, which are duplicates of earlier entries.
     */
    std::vector<SweepPlanEntry> plan(const std::vector<SweepJob> &jobs) const;

    /**
     * Execute all jobs; results are returned in declared order.
     * Duplicate specs are run once (single-flight) and their result is
     * shared. Jobs with equal specs must carry equal params — give
     * variants distinct RunSpec::platformTag values.
     *
     * Under an active shard (--shard=i/N) only this shard's execution
     * units run; result slots of jobs other shards own are filled from
     * the cache when possible and are otherwise default-constructed.
     * The supported workflow treats a sharded sweep as a cache- and
     * partial-populating pass: merge the shards' cache directories and
     * partial aggregates with tools/sweep/merge_runs, then (for outputs
     * beyond the aggregate) rerun unsharded against the merged cache —
     * every job is then a cache hit and the emission is byte-identical
     * to a single-machine run.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs);

    /** Convenience: all specs on one shared platform configuration. */
    std::vector<RunResult> run(const std::vector<RunSpec> &specs,
                               const PlatformParams &params = {});

    /**
     * Run `count` opaque independent tasks on the worker pool (used by
     * benches whose per-variant measurement is not RunSpec-shaped).
     * task(i) must touch only task-local state; ordering across tasks is
     * unspecified, so collect results by index and emit after returning.
     */
    void forEachTask(std::size_t count,
                     const std::function<void(std::size_t)> &task);

    /** Files written by per-job observability in run(), in write order. */
    std::vector<std::string>
    writtenOutputs() const ATSCALE_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return written_;
    }

    /** Progress counts of the most recent run(). */
    SweepProgress
    progress() const ATSCALE_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return progress_;
    }

  private:
    void executeJob(const SweepJob &job, RunResult &result)
        ATSCALE_EXCLUDES(mu_);
    /** Execute one lane group (unit.size() >= 2 co-scheduled jobs). */
    void executeLaneUnit(const std::vector<const SweepJob *> &unit,
                         const std::vector<RunResult *> &results)
        ATSCALE_EXCLUDES(mu_);
    void noteRunning(std::size_t jobs) ATSCALE_EXCLUDES(mu_);
    void noteFinished(bool cached, std::size_t jobs, bool laneShared)
        ATSCALE_EXCLUDES(mu_);

    SweepOptions options_;
    int threads_ = 1;
    bool lanes_ = true;

    /**
     * Serializes the worker threads' shared state: progress counters,
     * the written-output log, and observability file emission (so
     * concurrent jobs never interleave writes or "wrote ..." lines).
     * The job list, single-flight map, and per-job result slots need no
     * lock — they are built before the pool starts, are read-only (or
     * index-disjoint) afterwards, and the pool join publishes them.
     */
    mutable Mutex mu_;
    SweepProgress progress_ ATSCALE_GUARDED_BY(mu_);
    std::vector<std::string> written_ ATSCALE_GUARDED_BY(mu_);
};

/** One workload's sweep. */
struct WorkloadSweep
{
    std::string workload;
    std::vector<OverheadPoint> points;
};

/**
 * Expand the overhead-measurement job list for workloads x footprints:
 * for every point the three page-size runs (4K, 2M, 1G) the paper's
 * min(t_2MB, t_1GB) baseline needs. Declared order is workload-major,
 * then footprint, then page size — the order the serial loops used.
 */
std::vector<SweepJob>
overheadSweepJobs(const std::vector<std::string> &workloads,
                  const std::vector<std::uint64_t> &footprints,
                  const RunSpec &base = {},
                  const PlatformParams &params = {});

/**
 * Expand the scheme-comparison job list: for every workload x footprint
 * point, one run per translation scheme (ROADMAP item 2's payoff).
 * Declared order is workload-major, then footprint, then scheme in the
 * given order. Schemes do not enter laneGroupKey(), so the K scheme
 * variants of one point share a stream identity and execute as one
 * lockstep lane group — one generated reference stream fanned across
 * all schemes.
 */
std::vector<SweepJob>
schemeSweepJobs(const std::vector<std::string> &workloads,
                const std::vector<std::uint64_t> &footprints,
                const std::vector<std::string> &schemes,
                const RunSpec &base = {}, const PlatformParams &params = {});

/**
 * Sweep one workload across footprints through the engine.
 * @param progress optional callback invoked per point in declared order
 */
WorkloadSweep
sweepWorkload(const std::string &workload,
              const std::vector<std::uint64_t> &footprints,
              const RunSpec &base = {}, const PlatformParams &params = {},
              const std::function<void(const OverheadPoint &)> &progress = {});

/** Sweep several workloads through one engine-scheduled job set. */
std::vector<WorkloadSweep>
sweepWorkloads(const std::vector<std::string> &workloads,
               const std::vector<std::uint64_t> &footprints,
               const RunSpec &base = {},
               const PlatformParams &params = {});

} // namespace atscale

#endif // ATSCALE_CORE_SWEEP_HH
