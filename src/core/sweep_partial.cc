#include "core/sweep_partial.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "perf/event.hh"
#include "util/logging.hh"

namespace atscale
{

namespace
{

/** Exact round-trip rendering of the frequency scale. */
std::string
freqString(double freq)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", freq);
    return buf;
}

} // namespace

void
writeSweepPartialFile(const std::string &path, const SweepPartial &partial)
{
    static std::atomic<unsigned> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp);
        fatal_if(!out, "cannot open sweep partial '%s'", tmp.c_str());
        out << "atscale-sweep-partial 1\n";
        out << "total_jobs " << partial.totalJobs << '\n';
        out << "freq_ghz " << freqString(partial.freqGHz) << '\n';
        for (const SweepPartial::Entry &entry : partial.entries) {
            const RunSpec &spec = entry.result.spec;
            out << "job " << entry.index << '\n';
            out << "workload " << spec.workload << '\n';
            out << "footprint " << spec.footprintBytes << '\n';
            out << "pagesize " << static_cast<int>(spec.pageSize) << '\n';
            out << "mode " << static_cast<int>(spec.mode) << '\n';
            out << "warmup " << spec.warmupRefs << '\n';
            out << "measure " << spec.measureRefs << '\n';
            out << "seed " << spec.seed << '\n';
            // Defaulted fields are omitted (the loader starts from a
            // default-constructed spec), mirroring cacheKey()'s tags.
            if (!spec.fastPath)
                out << "nofastpath 1\n";
            if (spec.scheme != "radix")
                out << "scheme " << spec.scheme << '\n';
            if (spec.cores != 1)
                out << "cores " << spec.cores << '\n';
            if (!spec.tenantMix.empty())
                out << "tenantmix " << spec.tenantMix << '\n';
            if (!spec.platformTag.empty())
                out << "platformtag " << spec.platformTag << '\n';
            out << "footprint_touched " << entry.result.footprintTouched
                << '\n';
            out << "page_table_bytes " << entry.result.pageTableBytes
                << '\n';
            entry.result.counters.forEach(
                [&out](EventId, const char *name, Count value) {
                    out << "counter " << name << ' ' << value << '\n';
                });
            out << "end\n";
        }
        fatal_if(!out, "write failed for sweep partial '%s'", tmp.c_str());
    }
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot rename sweep partial into place at '%s'",
             path.c_str());
}

bool
loadSweepPartialFile(const std::string &path, SweepPartial &out,
                     std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    out = SweepPartial{};

    auto fail = [&](const std::string &what) {
        error = path + ": " + what;
        return false;
    };

    std::string line;
    if (!std::getline(in, line) || line != "atscale-sweep-partial 1")
        return fail("not a sweep partial (bad header)");

    SweepPartial::Entry *entry = nullptr;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string name;
        fields >> name;
        if (name == "total_jobs") {
            fields >> out.totalJobs;
        } else if (name == "freq_ghz") {
            std::string value;
            fields >> value;
            out.freqGHz = std::strtod(value.c_str(), nullptr);
        } else if (name == "job") {
            if (entry)
                return fail("unterminated job entry");
            std::size_t index = 0;
            fields >> index;
            out.entries.push_back(SweepPartial::Entry{});
            entry = &out.entries.back();
            entry->index = index;
        } else if (name == "end") {
            entry = nullptr;
        } else {
            if (!entry)
                return fail("field '" + name + "' outside a job entry");
            RunSpec &spec = entry->result.spec;
            if (name == "workload") {
                fields >> spec.workload;
            } else if (name == "footprint") {
                fields >> spec.footprintBytes;
            } else if (name == "pagesize") {
                int v = 0;
                fields >> v;
                spec.pageSize = static_cast<PageSize>(v);
            } else if (name == "mode") {
                int v = 0;
                fields >> v;
                spec.mode = static_cast<WorkloadMode>(v);
            } else if (name == "warmup") {
                fields >> spec.warmupRefs;
            } else if (name == "measure") {
                fields >> spec.measureRefs;
            } else if (name == "seed") {
                fields >> spec.seed;
            } else if (name == "nofastpath") {
                spec.fastPath = false;
            } else if (name == "scheme") {
                fields >> spec.scheme;
            } else if (name == "cores") {
                fields >> spec.cores;
            } else if (name == "tenantmix") {
                fields >> spec.tenantMix;
            } else if (name == "platformtag") {
                fields >> spec.platformTag;
            } else if (name == "footprint_touched") {
                fields >> entry->result.footprintTouched;
            } else if (name == "page_table_bytes") {
                fields >> entry->result.pageTableBytes;
            } else if (name == "counter") {
                std::string event;
                Count value = 0;
                fields >> event >> value;
                auto id = eventFromName(event);
                if (!id)
                    return fail("unknown counter '" + event + "'");
                entry->result.counters.add(*id, value);
            } else {
                return fail("unknown field '" + name + "'");
            }
            if (fields.fail())
                return fail("malformed field '" + name + "'");
        }
    }
    if (entry)
        return fail("unterminated job entry at end of file");
    return true;
}

} // namespace atscale
