/**
 * @file
 * Shard-partial sweep aggregates: the interchange format between
 * sharded sweep runs and tools/sweep/merge_runs.
 *
 * A sweep sharded with --shard=i/N executes only its share of the
 * expanded job list, so it cannot emit the whole-sweep JSON aggregate.
 * Instead it writes a *partial* file: every declared job index this
 * shard owns, with the job's full spec and raw counters — everything
 * needed to reconstruct its RunResult exactly. merge_runs loads the N
 * partials, reassembles the declared-order result vector, and renders
 * it through the same writeRunResultsJson the single-machine sweep
 * uses, so the merged aggregate is byte-identical to an unsharded run
 * (the simulation's determinism contract makes the counters themselves
 * bit-identical across machines).
 *
 * The format is the run cache's line discipline ("name value", one
 * field per line) extended with job/end framing; like the cache it is
 * written atomically (temp + rename) and any parse failure is reported
 * rather than silently tolerated — a merge over bad partials must not
 * fabricate an aggregate.
 */

#ifndef ATSCALE_CORE_SWEEP_PARTIAL_HH
#define ATSCALE_CORE_SWEEP_PARTIAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace atscale
{

/** One sharded sweep's share of a declared job list. */
struct SweepPartial
{
    /** Declared jobs in the full (unsharded) sweep. */
    std::size_t totalJobs = 0;
    /** Cycle-to-seconds scale used by the aggregate's "seconds". */
    double freqGHz = 2.5;

    struct Entry
    {
        /** Index into the full sweep's declared job list. */
        std::size_t index = 0;
        RunResult result;
    };

    /** Owned jobs, ascending by index. */
    std::vector<Entry> entries;
};

/** Write a partial (temp + rename); fatal() on I/O failure. */
void writeSweepPartialFile(const std::string &path,
                           const SweepPartial &partial);

/**
 * Load a partial. Returns false with a populated `error` on any I/O or
 * parse problem (missing file, bad framing, unknown counter name).
 */
bool loadSweepPartialFile(const std::string &path, SweepPartial &out,
                          std::string &error);

} // namespace atscale

#endif // ATSCALE_CORE_SWEEP_PARTIAL_HH
