#include "cpu/core.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace atscale
{

namespace
{

/** Stall-pressure EWMA smoothing factor. */
constexpr double stallAlpha = 0.01;

/** page_walker_loads.* events indexed by MemLevel. */
constexpr EventId walkerLoadEvents[numMemLevels] = {
    EventId::PageWalkerLoadsDtlbL1,
    EventId::PageWalkerLoadsDtlbL2,
    EventId::PageWalkerLoadsDtlbL3,
    EventId::PageWalkerLoadsDtlbMemory,
};

} // namespace

Core::Core(Mmu &mmu, CacheHierarchy &hierarchy, AddressSpace &space,
           const CoreParams &params, const WorkloadTraits &traits,
           std::uint64_t seed)
    : mmu_(mmu), hierarchy_(hierarchy), space_(space), params_(params),
      traits_(traits), rng_(seed)
{
    // Serial-chase workloads cannot overlap walks with useful work.
    walkExposure_ = params_.walkExposure * (1.0 + (1.0 - traits_.mlpHint) * 0.8);

    // Chunk screening (host prefetch of the translation structures each
    // refilled chunk will probe) is on unless --no-batch asked for the
    // un-screened loop for an A/B run. Read once at construction: the
    // per-reference path must stay free of environment lookups.
    const char *no_batch = std::getenv("ATSCALE_NO_BATCH");
    screenChunks_ = !(no_batch && no_batch[0] == '1');
}

Count
Core::refillChunk(RefSource &source)
{
    chunkLen_ = source.fill(chunk_.data(), refChunkSize);
    chunkPos_ = 0;
    if (screenChunks_) {
        // Screen the fresh chunk: hint the host about every fast-path
        // slot and micro-TLB slot the execute loop is about to probe, so
        // random streams overlap those host-cache misses with the
        // simulation of earlier references. Touches no simulated state —
        // results are byte-identical with ATSCALE_NO_BATCH=1.
        for (Count i = 0; i < chunkLen_; ++i) {
            const Addr vaddr = chunk_[i].vaddr;
            mmu_.prefetchTranslation(vaddr);
            __builtin_prefetch(&microTlb_[microTlbIndex(vaddr)]);
        }
    }
    return chunkLen_;
}

Count
Core::run(RefSource &source, Count numRefs)
{
    // Consume the stream in whole refChunkSize batches: one virtual
    // fill() per chunk instead of one virtual next() per reference (see
    // RefSource::fill for the fetch-ahead semantics this models). The
    // buffer persists across run() calls so fetch boundaries always fall
    // at the same stream positions no matter how a measurement is
    // partitioned — a windowed (observed) run consumes the stream
    // identically to a single-shot run, and a lockstep lane run
    // (core/lane_exec) identically to both.
    if (chunkSource_ != &source) {
        chunkSource_ = &source;
        chunkLen_ = 0;
        chunkPos_ = 0;
    }
    Count done = 0;
    double flushed = static_cast<double>(cycles());
    while (done < numRefs) {
        if (chunkPos_ >= chunkLen_ && refillChunk(source) == 0)
            break;
        executeRef(source, chunk_[chunkPos_++]);
        ++done;
    }
    // Publish accumulated fractional cycles into the counter bank.
    auto delta = static_cast<Count>(cycleAcc_ - flushed);
    counters_.add(EventId::CpuClkUnhalted, delta);
#ifndef NDEBUG
    // Every cycle in the accumulator must be attributed to exactly one
    // Eq-1 component, and the published counter must trail by < 1 cycle.
    ledger_.verify(cycleAcc_, counters_.get(EventId::CpuClkUnhalted),
                   "Core::run");
#endif
    return done;
}

void
Core::invalidatePage(Addr base, std::uint64_t bytes)
{
    for (MicroTlbEntry &e : microTlb_) {
        if (e.base < base + bytes && base < e.base + e.size)
            e = MicroTlbEntry{};
    }
}

void
Core::stall([[maybe_unused]] CycleComponent component, double cycles)
{
    cycleAcc_ += cycles;
    refStall_ += cycles;
#ifndef NDEBUG
    ledger_.charge(component, cycles);
#endif
}

void
Core::accountWalk(Addr vaddr, const WalkResult &walk, bool isStore,
                  bool retired)
{
    if (tracer_) {
        WalkTrace trace;
        trace.vaddr = vaddr;
        trace.startCycle = static_cast<Cycles>(cycleAcc_);
        trace.cycles = walk.cycles;
        trace.startLevel = static_cast<std::int8_t>(walk.startLevel);
        trace.hitLevel = walk.hitLevelAt;
        trace.outcome = classifyWalk(walk, retired);
        trace.isStore = isStore;
        tracer_->record(trace);
    }
    counters_.add(isStore ? EventId::DtlbStoreMissesMissCausesAWalk
                          : EventId::DtlbLoadMissesMissCausesAWalk);
    counters_.add(isStore ? EventId::DtlbStoreMissesWalkDuration
                          : EventId::DtlbLoadMissesWalkDuration,
                  walk.cycles);
    for (int level = 0; level < numMemLevels; ++level) {
        if (walk.loadsAtLevel[static_cast<size_t>(level)]) {
            counters_.add(walkerLoadEvents[level],
                          walk.loadsAtLevel[static_cast<size_t>(level)]);
        }
    }
    if (walk.completed) {
        counters_.add(isStore ? EventId::DtlbStoreMissesWalkCompleted
                              : EventId::DtlbLoadMissesWalkCompleted);
    }
    if (retired && walk.completed && !walk.faulted) {
        counters_.add(isStore ? EventId::MemUopsRetiredStlbMissStores
                              : EventId::MemUopsRetiredStlbMissLoads);
    }
}

PhysAddr
Core::dataPaddr(Addr vaddr)
{
    MicroTlbEntry &e = microTlb_[microTlbIndex(vaddr)];
    if (vaddr - e.base < e.size)
        return e.frame + (vaddr - e.base);
    const Translation &t = space_.touch(vaddr);
    e.base = t.pageBase;
    e.size = pageBytes(t.pageSize);
    e.frame = t.frame;
    return t.paddr(vaddr);
}

Cycles
Core::wrongPathRef(Addr vaddr, Cycles budget)
{
    MmuResult t = mmu_.translate(vaddr, true, budget);
    // Per-access software-translation cost (no_vm scheme) occupies the
    // wrong-path slot just like walker time; 0 for hardware schemes.
    Cycles walker_busy = t.schemeExtraCycles;

    switch (t.tlbLevel) {
      case TlbLevel::L1:
      case TlbLevel::L2: {
        if (t.tlbLevel == TlbLevel::L2)
            counters_.add(EventId::DtlbLoadMissesStlbHit);
        // The wrong-path load issues and pollutes the data hierarchy.
        Translation tr = space_.translate(vaddr);
        if (tr.valid)
            hierarchy_.access(tr.paddr(vaddr), AccessKind::Data);
        break;
      }
      case TlbLevel::Miss:
        accountWalk(vaddr, t.walk(), false, false);
        walker_busy = t.walk().cycles;
        if (t.walk().completed && !t.walk().faulted) {
            hierarchy_.access(t.walk().translation.paddr(vaddr),
                              AccessKind::Data);
        }
        break;
    }
    return walker_busy;
}

void
Core::wrongPathEpisode(RefSource &source)
{
    double depth = params_.specDepthBase + params_.specDepthCoef * stallEwma_;
    auto draws = static_cast<std::uint64_t>(std::ceil(depth * 2.0));
    int nrefs = 1 + static_cast<int>(rng_.below(std::max<std::uint64_t>(draws, 1)));
    nrefs = std::min(nrefs, params_.maxWrongPathRefs);

    // Under heavy stall the mispredicted branch resolves later, leaving a
    // longer shadow for speculative walks (and more time to abort them).
    double resolve = static_cast<double>(params_.branchResolveCycles) *
                     (1.0 + 0.3 * stallEwma_);
    auto budget = static_cast<Cycles>(resolve);

    Cycles elapsed = 0;
    for (int i = 0; i < nrefs && elapsed < budget; ++i) {
        Addr addr;
        if (recentPos_ == 0 || rng_.chance(traits_.wrongPathRandomFraction)) {
            addr = source.wrongPathAddr(rng_);
        } else {
            std::uint32_t valid = std::min<std::uint32_t>(
                recentPos_, static_cast<std::uint32_t>(recent_.size()));
            Addr base = recent_[rng_.below(valid)];
            addr = base + rng_.below(8192) - 4096;
        }
        elapsed += wrongPathRef(addr, budget - elapsed);
        elapsed += 2; // issue slot for the wrong-path uop itself
    }
}

void
Core::executeRef(RefSource &source, const Ref &ref)
{
    const Count instr = ref.instGap + 1;
    counters_.add(EventId::InstRetired, instr);
    cycleAcc_ += static_cast<double>(instr) * params_.baseCpi;
#ifndef NDEBUG
    ledger_.charge(CycleComponent::BaseExec,
                   static_cast<double>(instr) * params_.baseCpi);
#endif
    instsSinceMiss_ += instr;
    refStall_ = 0.0;

    // --- Control flow: branches, mispredictions, machine clears --------
    branchCarry_ += static_cast<double>(instr) * traits_.branchesPerInstr;
    auto branches = static_cast<Count>(branchCarry_);
    branchCarry_ -= static_cast<double>(branches);
    if (branches) {
        counters_.add(EventId::BrInstRetiredAllBranches, branches);
        for (Count b = 0; b < branches; ++b) {
            if (rng_.chance(traits_.mispredictRate)) {
                counters_.add(EventId::BrMispRetiredAllBranches);
                stall(CycleComponent::BranchMispredict,
                      static_cast<double>(params_.mispredictPenalty));
                wrongPathEpisode(source);
            }
        }
    }

    double p_clear = params_.machineClearCoef * stallEwma_ *
                     static_cast<double>(instr);
    if (p_clear > 0.0 && rng_.chance(std::min(p_clear, 0.1))) {
        counters_.add(EventId::MachineClearsCount);
        stall(CycleComponent::MachineClear,
              static_cast<double>(params_.machineClearPenalty));
        pendingClearKill_ = true;
        // The flush discards a ROB's worth of issued-but-unretired work;
        // walks that complete for those instructions will never produce
        // a retired STLB-miss uop (their re-execution TLB-hits).
        squashInstrLeft_ = params_.squashWindow / 2 +
                           rng_.below(params_.squashWindow);
    }

    bool squashed = squashInstrLeft_ > 0;
    if (squashed)
        squashInstrLeft_ -= std::min<Count>(squashInstrLeft_, instr);

    // --- Address translation -------------------------------------------
    counters_.add(ref.isStore ? EventId::MemUopsRetiredAllStores
                              : EventId::MemUopsRetiredAllLoads);

    Cycles budget = unlimitedWalkBudget;
    if (pendingClearKill_)
        budget = 10 + rng_.below(50);

    MmuResult t = mmu_.translate(ref.vaddr, false, budget);
    // Software-translation cost charged outside the TLB/walk terms
    // (no_vm scheme); the branch is never taken for hardware schemes,
    // keeping the radix path bit-identical to the pre-seam core.
    if (t.schemeExtraCycles != 0) {
        stall(CycleComponent::SchemeSoftware,
              static_cast<double>(t.schemeExtraCycles));
    }
    if (t.tlbLevel == TlbLevel::L2) {
        counters_.add(ref.isStore ? EventId::DtlbStoreMissesStlbHit
                                  : EventId::DtlbLoadMissesStlbHit);
        stall(CycleComponent::L2TlbHit,
              static_cast<double>(t.tlbExtraLatency) *
              params_.l2TlbHitExposure);
    } else if (t.tlbLevel == TlbLevel::Miss) {
        pendingClearKill_ = false;
        bool ok = t.walk().completed && !t.walk().faulted && !squashed;
        accountWalk(ref.vaddr, t.walk(), ref.isStore, ok);
        stall(CycleComponent::PageWalk,
              static_cast<double>(t.walk().cycles) * walkExposure_);
        if (!t.walk().completed) {
            // The machine clear killed the walk; after the flush the
            // access re-executes and walks again from scratch.
            MmuResult retry = mmu_.translate(ref.vaddr, false);
            if (retry.tlbLevel == TlbLevel::Miss) {
                accountWalk(ref.vaddr, retry.walk(), ref.isStore,
                            retry.walk().completed && !retry.walk().faulted);
                stall(CycleComponent::PageWalk,
                      static_cast<double>(retry.walk().cycles) *
                      walkExposure_);
            }
        }
    }

    // --- Data access ----------------------------------------------------
    PhysAddr paddr = dataPaddr(ref.vaddr);
    MemAccessResult mem = hierarchy_.access(paddr, AccessKind::Data);
    if (mem.level != MemLevel::L1) {
        if (instsSinceMiss_ > params_.robWindow)
            windowMisses_ = 0.0;
        windowMisses_ += 1.0;
        instsSinceMiss_ = 0;
        double mlp = 1.0 + traits_.mlpHint *
                     std::min(windowMisses_ - 1.0, params_.maxMlp - 1.0);
        stall(CycleComponent::DataStall,
              static_cast<double>(mem.latency) *
              params_.dataExposure[static_cast<size_t>(mem.level)] / mlp);
    }

    recent_[recentPos_ % recent_.size()] = ref.vaddr;
    ++recentPos_;

    // --- Stall pressure update ------------------------------------------
    double per_instr = refStall_ / static_cast<double>(instr);
    stallEwma_ += stallAlpha * (per_instr - stallEwma_);
}

} // namespace atscale
