/**
 * @file
 * The timing core: consumes a workload's reference stream, drives the MMU
 * and cache hierarchy, models speculation (wrong-path references, squashed
 * walks, machine clears), and accounts cycles and performance counters.
 */

#ifndef ATSCALE_CPU_CORE_HH
#define ATSCALE_CPU_CORE_HH

#include <array>

#include "cache/hierarchy.hh"
#include "cpu/core_params.hh"
#include "cpu/ref_stream.hh"
#include "mmu/mmu.hh"
#include "obs/ledger.hh"
#include "obs/walk_trace.hh"
#include "perf/counter_set.hh"
#include "util/random.hh"
#include "vm/address_space.hh"

namespace atscale
{

/**
 * An interval-analysis timing core with a speculation model.
 *
 * Cycle accounting: instructions accrue at a base CPI; L2-TLB hits, data
 * cache misses, and page walks charge the fraction of their latency the
 * out-of-order window cannot hide, with clustered misses discounted by a
 * memory-level-parallelism estimate. Mispredicted branches spawn
 * wrong-path references whose translations can initiate page walks that
 * are squashed (aborted) when the branch resolves; machine clears kill
 * in-flight walks and force re-walks. This is what produces the paper's
 * initiated/completed/retired walk-outcome split (Table VI).
 */
class Core : public TranslationListener
{
  public:
    Core(Mmu &mmu, CacheHierarchy &hierarchy, AddressSpace &space,
         const CoreParams &params, const WorkloadTraits &traits,
         std::uint64_t seed = 42);

    /** References fetched per RefSource::fill call by run(). Aliases the
     * stream-layer constant so the multi-lane executor's shared-chunk
     * cadence (cpu/ref_stream.hh) and the core's fetch cadence can never
     * drift apart. */
    static constexpr Count refChunkSize = refStreamChunk;

    /**
     * Execute up to numRefs references from the stream, fetched in
     * refChunkSize batches.
     * @return references actually executed (less only if the stream ends)
     */
    Count run(RefSource &source, Count numRefs);

    /**
     * Drop micro-TLB entries overlapping [base, base+bytes). Driven by
     * address-space remap notifications: without this hook a remapped
     * page could keep serving its old physical frame from the data-path
     * micro-cache.
     */
    void invalidatePage(Addr base, std::uint64_t bytes);

    /** TranslationListener: a page now maps to a different frame. */
    void
    pageRemapped(Addr base, PageSize size) override
    {
        invalidatePage(base, pageBytes(size));
    }

    /**
     * Diagnostic: report the micro-TLB's cached translation for vaddr,
     * if any. Lets tests prove the data path cannot serve a stale frame
     * after a remap; never used on the simulation path.
     */
    bool
    microTlbLookup(Addr vaddr, PhysAddr &paddr) const
    {
        const MicroTlbEntry &e = microTlb_[microTlbIndex(vaddr)];
        if (vaddr - e.base < e.size) {
            paddr = e.frame + (vaddr - e.base);
            return true;
        }
        return false;
    }

    /**
     * Charge whole stall cycles from outside the reference loop — the
     * TLB-shootdown IPI cost a SharedSystem lands on a parked core.
     * Adds to the cycle accumulator only (not to the per-reference
     * stall pressure, which models data-path memory stalls); the charge
     * is published into CpuClkUnhalted at the next run() boundary, so a
     * trailing run(stream, 0) flushes charges that arrive after a
     * core's final quantum.
     */
    void
    chargeCycles(Cycles cycles)
    {
        cycleAcc_ += static_cast<double>(cycles);
#ifndef NDEBUG
        ledger_.charge(CycleComponent::ShootdownIpi,
                       static_cast<double>(cycles));
#endif
    }

    /** Performance counters accumulated so far. */
    const CounterSet &counters() const { return counters_; }

    /** Retired instructions so far. */
    Count instructions() const { return counters_.get(EventId::InstRetired); }

    /** Elapsed cycles so far. */
    Cycles cycles() const { return counters_.get(EventId::CpuClkUnhalted); }

    /** Zero the counters (microarchitectural state is retained, so a
     * measurement window can follow a warm-up window). */
    void
    resetCounters()
    {
        counters_.reset();
        cycleAcc_ = 0.0;
#ifndef NDEBUG
        ledger_.reset();
#endif
    }

#ifndef NDEBUG
    /**
     * Debug builds only: the per-component cycle ledger, for the
     * conservation cross-checks in core/multicore.cc and the diff
     * suites. Release builds compile the ledger hooks out entirely
     * (docs/OBSERVABILITY.md, "The conservation contract").
     */
    const CycleLedger &ledger() const { return ledger_; }
#endif

    const CoreParams &params() const { return params_; }
    const WorkloadTraits &traits() const { return traits_; }

    /**
     * Attach (or detach, with nullptr) a per-walk tracer. Every page
     * walk the core accounts — correct-path, wrong-path, and post-clear
     * re-walks — is recorded with its outcome label. With no tracer
     * attached the hook is one never-taken branch.
     */
    void attachTracer(WalkTracer *tracer) { tracer_ = tracer; }

  private:
    /**
     * Advance the stream by one fetch chunk into the buffer (the
     * stream-advance half of run(); consumption is the executeRef loop).
     * @return references fetched (0 = stream exhausted)
     */
    Count refillChunk(RefSource &source);

    /** Execute one correct-path reference. */
    void executeRef(RefSource &source, const Ref &ref);

    /** Run the wrong-path shadow of one mispredicted branch. */
    void wrongPathEpisode(RefSource &source);

    /** Translate + access for one wrong-path reference.
     * @return cycles the walker was busy */
    Cycles wrongPathRef(Addr vaddr, Cycles budget);

    /** Charge stall cycles to an Eq-1 component and update the
     * per-reference stall pressure. */
    void stall(CycleComponent component, double cycles);

    /** Physical address of a correct-path access (via the micro-cache). */
    PhysAddr dataPaddr(Addr vaddr);

    /** Account a walk's counter events and trace it. @param isStore
     * attribute to the store events @param retired walk belongs to a
     * retiring access */
    void accountWalk(Addr vaddr, const WalkResult &walk, bool isStore,
                     bool retired);

    Mmu &mmu_;
    CacheHierarchy &hierarchy_;
    AddressSpace &space_;
    CoreParams params_;
    WorkloadTraits traits_;
    Rng rng_;
    /** MLP-scaled effective walk exposure (see CoreParams). */
    double walkExposure_ = 0.0;
    /** Optional per-walk trace sink (null = tracing disabled). */
    WalkTracer *tracer_ = nullptr;

    CounterSet counters_;
    /** Cycle accumulator (fractional stalls), flushed into counters_. */
    double cycleAcc_ = 0.0;
#ifndef NDEBUG
    /** Debug twin of cycleAcc_, split by Eq-1 component; verified at
     * every publication boundary in run(). */
    CycleLedger ledger_;
#endif
    /** Stall cycles charged by the current reference.
     * eq1: model-state — feeds the stall-pressure EWMA, not a cycle
     * count of its own (every addition is mirrored into cycleAcc_). */
    double refStall_ = 0.0;
    /** Fractional-branch carry for stochastic-rounding branch counts. */
    double branchCarry_ = 0.0;
    /** EWMA of stall cycles per instruction (stall pressure).
     * eq1: model-state — speculation-depth input, never published. */
    double stallEwma_ = 0.0;
    /** Instructions since the last data cache miss (MLP window). */
    std::uint64_t instsSinceMiss_ = 0;
    /** Misses in the current MLP window. */
    double windowMisses_ = 0.0;
    /** A machine clear is pending: the next walk gets killed mid-flight. */
    bool pendingClearKill_ = false;
    /** Instructions still inside a machine-clear squash window: walks
     * completed here lose their retirement (the flushed instructions
     * re-execute and hit the freshly installed TLB entry), which is how
     * correct-path walks become Table VI "wrong path" walks. */
    Count squashInstrLeft_ = 0;

    /** Ring of recent correct-path addresses for wrong-path perturbation. */
    std::array<Addr, 16> recent_{};
    std::uint32_t recentPos_ = 0;

    /** Fetch-ahead reference buffer (see run()); persists across run()
     * calls so chunk boundaries are a property of the stream position,
     * not of how the caller partitions the run. Reset when the source
     * changes (buffered refs from the old stream are dropped). */
    std::array<Ref, refChunkSize> chunk_{};
    RefSource *chunkSource_ = nullptr;
    Count chunkLen_ = 0;
    Count chunkPos_ = 0;
    /** Screen refilled chunks with translation-structure prefetches
     * (host-side only; ATSCALE_NO_BATCH=1 disables for A/B runs). */
    bool screenChunks_ = true;

    /**
     * Translation micro-cache for data-path paddr computation,
     * direct-mapped on the 4 KiB virtual page number. Purely functional
     * — it produces no counters and models no hardware — so its geometry
     * is an execution-speed knob: 256 slots keeps the AddressSpace hash
     * lookup off the per-reference path for hot footprints. Large pages
     * are cached per-fragment (each slot covers the whole page, so any
     * slot whose stored range spans the probed vaddr serves it).
     */
    struct MicroTlbEntry
    {
        Addr base = ~0ull;
        std::uint64_t size = 0;
        PhysAddr frame = 0;
    };
    static constexpr std::uint32_t microTlbSlots = 256;

    static std::uint32_t
    microTlbIndex(Addr vaddr)
    {
        // Fibonacci hash of the VPN (same recipe as the MMU fast path).
        std::uint64_t vpn = vaddr >> pageShift4K;
        return static_cast<std::uint32_t>(
            (vpn * 0x9e3779b97f4a7c15ull) >> 32) & (microTlbSlots - 1);
    }

    std::array<MicroTlbEntry, microTlbSlots> microTlb_{};
};

} // namespace atscale

#endif // ATSCALE_CPU_CORE_HH
