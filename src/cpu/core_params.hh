/**
 * @file
 * Timing-core parameters.
 *
 * The core is an interval-analysis model (Karkhanis/Smith style): issue
 * cycles accrue at a base CPI, miss latencies are charged only to the
 * extent the out-of-order window cannot hide them, and memory-level
 * parallelism discounts clustered misses. Exposure factors are calibrated
 * so the simulated Haswell lands in the paper's overhead range; shapes are
 * emergent.
 */

#ifndef ATSCALE_CPU_CORE_PARAMS_HH
#define ATSCALE_CPU_CORE_PARAMS_HH

#include <array>
#include <cstdint>

#include "util/types.hh"

namespace atscale
{

/** Per-workload character hints supplied by each workload definition. */
struct WorkloadTraits
{
    /** Branch instructions per instruction. */
    double branchesPerInstr = 0.15;
    /** Mispredictions per branch. */
    double mispredictRate = 0.02;
    /**
     * Memory-level parallelism hint in [0, 1]: 1 = misses fully
     * independent (streaming), 0 = fully dependent (pointer chasing).
     */
    double mlpHint = 0.6;
    /**
     * Probability a wrong-path reference goes to a fresh random data
     * address (vs revisiting a recently touched line).
     */
    double wrongPathRandomFraction = 0.5;
};

/** Core pipeline/speculation parameters. */
struct CoreParams
{
    /** CPI of the non-memory instruction mix (ILP-limited component). */
    double baseCpi = 0.35;
    /** Fraction of an L2-TLB-hit's extra latency that reaches the
     * critical path (easy to hide, per the paper's argument). */
    double l2TlbHitExposure = 0.08;
    /**
     * Fraction of a data access latency that reaches the critical path,
     * per hit level (L1 hits are fully pipelined).
     */
    std::array<double, 4> dataExposure = {0.0, 0.15, 0.35, 0.55};
    /**
     * Base fraction of a page walk's latency that reaches the critical
     * path. The effective exposure is scaled up for low-MLP workloads
     * (serial chases leave nothing to overlap a walk with):
     * effective = walkExposure * (1 + (1 - mlpHint) * 0.8).
     */
    double walkExposure = 0.25;
    /** Instructions over which clustered misses can overlap (ROB reach). */
    std::uint32_t robWindow = 192;
    /** Maximum overlapping misses (MSHR-limited). */
    double maxMlp = 10.0;
    /** Pipeline refill penalty for a branch misprediction. */
    Cycles mispredictPenalty = 15;
    /** Pipeline flush penalty for a machine clear. */
    Cycles machineClearPenalty = 35;
    /** Cycles from wrong-path entry until the mispredicted branch
     * resolves and squashes (budget for speculative walks). */
    Cycles branchResolveCycles = 40;
    /** Cap on wrong-path references issued per misprediction episode. */
    int maxWrongPathRefs = 12;
    /** Machine clears per retired reference per unit of stall pressure
     * (memory-order/disambiguation clears grow with outstanding work). */
    double machineClearCoef = 8e-4;
    /** Instructions a machine clear squashes and re-executes (walks
     * completed inside this window lose their retired STLB-miss uop). */
    Count squashWindow = 160;
    /** Baseline speculation depth at zero stall pressure. */
    double specDepthBase = 0.3;
    /** Speculation-depth growth per cycle of average stall (long stalls
     * let the frontend run further ahead — the mechanism behind the
     * paper's growing wrong-path walk fraction). */
    double specDepthCoef = 1.5;
};

} // namespace atscale

#endif // ATSCALE_CPU_CORE_PARAMS_HH
