/**
 * @file
 * The instruction/reference stream abstraction between workloads and the
 * timing core.
 *
 * A workload is consumed as a stream of retired memory references, each
 * carrying the number of non-memory instructions issued since the previous
 * reference. This is the standard trace-driven decoupling: the core never
 * needs opcodes, only the memory behaviour and instruction mix.
 */

#ifndef ATSCALE_CPU_REF_STREAM_HH
#define ATSCALE_CPU_REF_STREAM_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace atscale
{

class StatsRegistry;

/**
 * References fetched per RefSource::fill call by the timing core's
 * fetch-ahead frontend (Core::refChunkSize aliases this). The multi-lane
 * executor advances shared streams in exactly these units, so a lane's
 * fetch boundaries land at the same stream positions a standalone run's
 * would — the foundation of the lane exactness contract.
 */
constexpr Count refStreamChunk = 256;

/** One correct-path memory reference. */
struct Ref
{
    /** Virtual address accessed. */
    Addr vaddr = 0;
    /** Non-memory instructions retired since the previous reference. */
    std::uint32_t instGap = 0;
    /** Store (vs load). */
    bool isStore = false;
};

/**
 * A restartable source of memory references. Implementations are the
 * exec-mode instrumented algorithms and the model-mode streaming
 * generators in src/workloads.
 */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Produce the next reference.
     * @return false when the workload instance is exhausted (the driver
     *         may then rewind or stop)
     */
    virtual bool next(Ref &ref) = 0;

    /**
     * Produce up to `max` references into `out`, advancing the stream as
     * `max` next() calls would; returning fewer than `max` signals
     * exhaustion. The core consumes references in chunks through this
     * hook — one virtual call per chunk instead of one per reference —
     * which models a frontend fetch-ahead window: the stream's cursors
     * run up to a chunk ahead of the reference currently executing (and
     * wrongPathAddr() draws near those run-ahead cursors, as a real
     * frontend's speculation does). Implementations that generate in
     * internal batches should override this to copy straight out of
     * their buffers.
     */
    virtual Count
    fill(Ref *out, Count max)
    {
        Count n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * A plausible wrong-path data address: an address a control-divergent
     * speculative path through the same code might touch. Divergent paths
     * share the program's locality, so implementations draw near their
     * current cursors using the *caller's* rng (never their own, which
     * must stay deterministic regardless of speculation). Must fall
     * inside the workload's mapped regions.
     */
    virtual Addr wrongPathAddr(Rng &rng) = 0;

    /**
     * Register workload-side statistics under "<prefix>.". The default
     * registers nothing; streams with interesting internal state (KV hit
     * rates, graph cursors) override it.
     */
    virtual void
    registerStats(StatsRegistry &registry, const std::string &prefix) const
    {
        (void)registry;
        (void)prefix;
    }

    // --- Wrong-path anchors ---------------------------------------------
    //
    // wrongPathAddr() reads the stream's live cursors, which ties every
    // consumer to the generator's exact run-ahead position. An *anchor*
    // decouples them: a single word captured at a chunk boundary from
    // which wrongPathAddrAt() reproduces wrongPathAddr()'s draws without
    // the stream being at that position anymore. Two machines are built
    // on this: the lane executor's multi-chunk lockstep rounds (the
    // generator runs several chunks ahead of the executing lanes) and
    // the ref-stream record/replay store (the generator is not even in
    // the process anymore — core/ref_stream_store.hh).
    //
    // A stream may declare support only if (a) every wrongPathAddr()
    // input other than the anchor word is fixed at construction, and
    // (b) fill()/next() have no side effects outside the stream's own
    // cursors (no address-space mutations), so buffering or replaying
    // chunks cannot reorder architectural events.

    /** Whether anchors reproduce this stream's wrongPathAddr exactly. */
    virtual bool supportsAnchors() const { return false; }

    /**
     * Capture the anchor for the stream's current position. Meaningful
     * only when supportsAnchors(); the default exists so generic code
     * can capture unconditionally.
     */
    virtual std::uint64_t wrongPathAnchor() const { return 0; }

    /**
     * wrongPathAddr() as the stream would have answered it at the
     * position `anchor` was captured. For supporting streams,
     * wrongPathAddrAt(wrongPathAnchor(), rng) == wrongPathAddr(rng)
     * for every rng state.
     */
    virtual Addr
    wrongPathAddrAt(std::uint64_t anchor, Rng &rng)
    {
        (void)anchor;
        return wrongPathAddr(rng);
    }
};

/**
 * Fan-out buffer over one upstream stream: generates each refStreamChunk
 * batch exactly once and holds it for any number of LaneRefView consumers
 * to replay. advance() moves the upstream by one *block* of chunks; the
 * lockstep driver (core/lane_exec) calls it once per barrier round and
 * then runs every lane over the buffered references before advancing
 * again, so the generator's work — and its host-cache-resident output —
 * is shared by all lanes.
 *
 * Block size: when the upstream supports wrong-path anchors, a round
 * buffers up to maxBlockChunks chunks, capturing the upstream's anchor
 * after each chunk so the views can reproduce the cursor state a
 * standalone run would have had while executing that chunk (standalone
 * cursors run exactly one fetch chunk ahead of execution). That cuts the
 * barrier-round count — the dominant lane-group overhead on short runs —
 * by the same factor. Streams without anchor support (side-effectful
 * fills, exec-mode traces) fall back to one chunk per round, which is
 * the original lockstep cadence and needs no anchors: the upstream's
 * live cursors are then always at the executing chunk's boundary.
 */
class RefChunkFanout
{
  public:
    /** Chunks buffered per lockstep round for anchor-capable streams. */
    static constexpr Count maxBlockChunks = 8;

    explicit RefChunkFanout(RefSource &upstream)
        : upstream_(upstream),
          blockChunks_(upstream.supportsAnchors() ? maxBlockChunks : 1),
          buf_(static_cast<std::size_t>(blockChunks_) * refStreamChunk)
    {
    }

    /**
     * Generate the next block of chunks from the upstream stream,
     * capturing a wrong-path anchor at each chunk boundary. At most
     * ceil(maxRefs / refStreamChunk) chunks are generated, so the
     * stream's final position is exactly a standalone consumer's (which
     * fetches whole chunks but never starts one past its quota) — the
     * registry-visible workload cursors depend on it.
     * @return references buffered (a short block signals exhaustion)
     */
    Count
    advance(Count maxRefs = ~0ull)
    {
        Count want = blockChunks_;
        if (maxRefs / refStreamChunk < blockChunks_) {
            want = maxRefs / refStreamChunk +
                   (maxRefs % refStreamChunk != 0 ? 1 : 0);
        }
        len_ = 0;
        numChunks_ = 0;
        for (Count c = 0; c < want; ++c) {
            Count n = upstream_.fill(buf_.data() + len_, refStreamChunk);
            len_ += n;
            anchors_[c] = upstream_.wrongPathAnchor();
            ++numChunks_;
            if (n < refStreamChunk)
                break;
        }
        ++sequence_;
        return len_;
    }

    /** Chunks buffered by the last advance(). */
    Count blockNumChunks() const { return numChunks_; }

    /** References of chunk `idx` (< blockNumChunks()) of the block. */
    const Ref *
    chunk(Count idx) const
    {
        return buf_.data() + static_cast<std::size_t>(idx) * refStreamChunk;
    }

    /** References in chunk `idx` of the block. */
    Count
    chunkLen(Count idx) const
    {
        const Count before = idx * refStreamChunk;
        return std::min(refStreamChunk, len_ - before);
    }

    /** Upstream anchor captured right after chunk `idx` was generated. */
    std::uint64_t chunkAnchor(Count idx) const { return anchors_[idx]; }

    /** Whether views should draw wrong paths through anchors. */
    bool anchored() const { return blockChunks_ > 1; }

    /** Monotone block counter (0 = nothing generated yet). */
    std::uint64_t sequence() const { return sequence_; }

    /** The shared generator (for wrong-path draws and stats). */
    RefSource &upstream() const { return upstream_; }

  private:
    RefSource &upstream_;
    const Count blockChunks_;
    std::vector<Ref> buf_;
    std::array<std::uint64_t, maxBlockChunks> anchors_{};
    Count len_ = 0;
    Count numChunks_ = 0;
    std::uint64_t sequence_ = 0;
};

/**
 * One region's base-to-base address translation between two lanes'
 * virtual layouts. AddressSpace::mapRegion aligns each region base to
 * the lane's effective page size, so lanes backed by different page
 * sizes place the same regions at different bases; workload generators
 * only ever emit base + layout-independent offset (and wrongPathAddr
 * results inside mapped regions), so rebasing by region is exact.
 */
struct RegionRemap
{
    /** Region base in the stream's home (primary-lane) layout. */
    Addr from = 0;
    /** The consuming lane's base for the same region. */
    Addr to = 0;
    /** Region span in bytes (identical across lanes). */
    std::uint64_t size = 0;
};

/**
 * One lane's view of a RefChunkFanout: fill() replays the current shared
 * chunk, rebasing every address from the primary lane's region layout
 * into this lane's, and wrongPathAddr() forwards to the shared generator
 * (caller's rng, per the RefSource contract) and rebases its result.
 * Strictly chunk-granular and lockstep: each buffered chunk may be
 * filled at most once per view, and only through whole-chunk requests.
 */
class LaneRefView : public RefSource
{
  public:
    LaneRefView(RefChunkFanout &fanout, std::vector<RegionRemap> remaps)
        : fanout_(fanout), remaps_(std::move(remaps))
    {
        identity_ = true;
        for (const RegionRemap &remap : remaps_)
            identity_ = identity_ && remap.from == remap.to;
    }

    bool
    next(Ref &ref) override
    {
        (void)ref;
        panic("LaneRefView is chunk-granular; use fill()");
    }

    Count
    fill(Ref *out, Count max) override
    {
        // Serve the buffered block one chunk at a time, in order; a new
        // block resets the cursor. Each chunk may be filled at most once
        // per view — more would mean the lane fell out of lockstep.
        if (consumedSeq_ != fanout_.sequence()) {
            consumedSeq_ = fanout_.sequence();
            chunkIdx_ = 0;
        } else {
            ++chunkIdx_;
            panic_if(chunkIdx_ >= fanout_.blockNumChunks(),
                     "lane overran the lockstep block");
        }
        Count n = fanout_.chunkLen(chunkIdx_);
        panic_if(max < n, "lane fetch smaller than the lockstep chunk");
        const Ref *src = fanout_.chunk(chunkIdx_);
        if (identity_) {
            for (Count i = 0; i < n; ++i)
                out[i] = src[i];
            return n;
        }
        for (Count i = 0; i < n; ++i) {
            out[i] = src[i];
            out[i].vaddr = rebase(src[i].vaddr);
        }
        return n;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        // Anchored blocks: the shared generator's live cursors are up to
        // a whole block ahead, so draw through the anchor captured at
        // this chunk's boundary — exactly the cursor state a standalone
        // stream has while its consumer executes this chunk. Unanchored
        // (single-chunk) rounds forward to the live cursors as before.
        Addr vaddr =
            fanout_.anchored()
                ? fanout_.upstream().wrongPathAddrAt(
                      fanout_.chunkAnchor(chunkIdx_), rng)
                : fanout_.upstream().wrongPathAddr(rng);
        return identity_ ? vaddr : rebase(vaddr);
    }

    void
    registerStats(StatsRegistry &registry,
                  const std::string &prefix) const override
    {
        fanout_.upstream().registerStats(registry, prefix);
    }

  private:
    Addr
    rebase(Addr vaddr)
    {
        // Streams touch the same region in bursts: check the last
        // matching region before scanning (regions per workload: 1-4).
        const RegionRemap &last = remaps_[lastRemap_];
        if (vaddr - last.from < last.size)
            return last.to + (vaddr - last.from);
        for (std::size_t i = 0; i < remaps_.size(); ++i) {
            if (vaddr - remaps_[i].from < remaps_[i].size) {
                lastRemap_ = i;
                return remaps_[i].to + (vaddr - remaps_[i].from);
            }
        }
        panic("lane rebase: address %#lx outside every mapped region",
              vaddr);
    }

    RefChunkFanout &fanout_;
    std::vector<RegionRemap> remaps_;
    std::size_t lastRemap_ = 0;
    std::uint64_t consumedSeq_ = 0;
    /** Chunk of the current block being executed (set by fill()). */
    std::uint64_t chunkIdx_ = 0;
    bool identity_ = true;
};

} // namespace atscale

#endif // ATSCALE_CPU_REF_STREAM_HH
