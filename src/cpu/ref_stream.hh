/**
 * @file
 * The instruction/reference stream abstraction between workloads and the
 * timing core.
 *
 * A workload is consumed as a stream of retired memory references, each
 * carrying the number of non-memory instructions issued since the previous
 * reference. This is the standard trace-driven decoupling: the core never
 * needs opcodes, only the memory behaviour and instruction mix.
 */

#ifndef ATSCALE_CPU_REF_STREAM_HH
#define ATSCALE_CPU_REF_STREAM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace atscale
{

class StatsRegistry;

/**
 * References fetched per RefSource::fill call by the timing core's
 * fetch-ahead frontend (Core::refChunkSize aliases this). The multi-lane
 * executor advances shared streams in exactly these units, so a lane's
 * fetch boundaries land at the same stream positions a standalone run's
 * would — the foundation of the lane exactness contract.
 */
constexpr Count refStreamChunk = 256;

/** One correct-path memory reference. */
struct Ref
{
    /** Virtual address accessed. */
    Addr vaddr = 0;
    /** Non-memory instructions retired since the previous reference. */
    std::uint32_t instGap = 0;
    /** Store (vs load). */
    bool isStore = false;
};

/**
 * A restartable source of memory references. Implementations are the
 * exec-mode instrumented algorithms and the model-mode streaming
 * generators in src/workloads.
 */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Produce the next reference.
     * @return false when the workload instance is exhausted (the driver
     *         may then rewind or stop)
     */
    virtual bool next(Ref &ref) = 0;

    /**
     * Produce up to `max` references into `out`, advancing the stream as
     * `max` next() calls would; returning fewer than `max` signals
     * exhaustion. The core consumes references in chunks through this
     * hook — one virtual call per chunk instead of one per reference —
     * which models a frontend fetch-ahead window: the stream's cursors
     * run up to a chunk ahead of the reference currently executing (and
     * wrongPathAddr() draws near those run-ahead cursors, as a real
     * frontend's speculation does). Implementations that generate in
     * internal batches should override this to copy straight out of
     * their buffers.
     */
    virtual Count
    fill(Ref *out, Count max)
    {
        Count n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * A plausible wrong-path data address: an address a control-divergent
     * speculative path through the same code might touch. Divergent paths
     * share the program's locality, so implementations draw near their
     * current cursors using the *caller's* rng (never their own, which
     * must stay deterministic regardless of speculation). Must fall
     * inside the workload's mapped regions.
     */
    virtual Addr wrongPathAddr(Rng &rng) = 0;

    /**
     * Register workload-side statistics under "<prefix>.". The default
     * registers nothing; streams with interesting internal state (KV hit
     * rates, graph cursors) override it.
     */
    virtual void
    registerStats(StatsRegistry &registry, const std::string &prefix) const
    {
        (void)registry;
        (void)prefix;
    }
};

/**
 * Fan-out buffer over one upstream stream: generates each refStreamChunk
 * batch exactly once and holds it for any number of LaneRefView consumers
 * to replay. advance() moves the upstream by one chunk; the lockstep
 * driver (core/lane_exec) calls it once per chunk and then runs every
 * lane over the buffered references before advancing again, so the
 * generator's work — and its host-cache-resident output — is shared by
 * all lanes.
 *
 * At any chunk boundary the upstream's internal cursors equal those of a
 * standalone stream that was consumed through Core::run (which also
 * fetches in whole refStreamChunk batches), so wrongPathAddr() draws
 * forwarded by the views see exactly the cursor state a standalone run
 * would.
 */
class RefChunkFanout
{
  public:
    explicit RefChunkFanout(RefSource &upstream) : upstream_(upstream) {}

    /**
     * Generate the next chunk from the upstream stream.
     * @return references buffered (< refStreamChunk only at exhaustion)
     */
    Count
    advance()
    {
        len_ = upstream_.fill(chunk_.data(), refStreamChunk);
        ++sequence_;
        return len_;
    }

    /** The current chunk's references. */
    const Ref *chunk() const { return chunk_.data(); }

    /** References in the current chunk. */
    Count chunkLen() const { return len_; }

    /** Monotone chunk counter (0 = nothing generated yet). */
    std::uint64_t sequence() const { return sequence_; }

    /** The shared generator (for wrong-path draws and stats). */
    RefSource &upstream() const { return upstream_; }

  private:
    RefSource &upstream_;
    std::array<Ref, refStreamChunk> chunk_{};
    Count len_ = 0;
    std::uint64_t sequence_ = 0;
};

/**
 * One region's base-to-base address translation between two lanes'
 * virtual layouts. AddressSpace::mapRegion aligns each region base to
 * the lane's effective page size, so lanes backed by different page
 * sizes place the same regions at different bases; workload generators
 * only ever emit base + layout-independent offset (and wrongPathAddr
 * results inside mapped regions), so rebasing by region is exact.
 */
struct RegionRemap
{
    /** Region base in the stream's home (primary-lane) layout. */
    Addr from = 0;
    /** The consuming lane's base for the same region. */
    Addr to = 0;
    /** Region span in bytes (identical across lanes). */
    std::uint64_t size = 0;
};

/**
 * One lane's view of a RefChunkFanout: fill() replays the current shared
 * chunk, rebasing every address from the primary lane's region layout
 * into this lane's, and wrongPathAddr() forwards to the shared generator
 * (caller's rng, per the RefSource contract) and rebases its result.
 * Strictly chunk-granular and lockstep: each buffered chunk may be
 * filled at most once per view, and only through whole-chunk requests.
 */
class LaneRefView : public RefSource
{
  public:
    LaneRefView(RefChunkFanout &fanout, std::vector<RegionRemap> remaps)
        : fanout_(fanout), remaps_(std::move(remaps))
    {
        identity_ = true;
        for (const RegionRemap &remap : remaps_)
            identity_ = identity_ && remap.from == remap.to;
    }

    bool
    next(Ref &ref) override
    {
        (void)ref;
        panic("LaneRefView is chunk-granular; use fill()");
    }

    Count
    fill(Ref *out, Count max) override
    {
        panic_if(max < fanout_.chunkLen(),
                 "lane fetch smaller than the lockstep chunk");
        panic_if(consumedSeq_ == fanout_.sequence(),
                 "lane overran the lockstep chunk");
        consumedSeq_ = fanout_.sequence();
        Count n = fanout_.chunkLen();
        const Ref *src = fanout_.chunk();
        if (identity_) {
            for (Count i = 0; i < n; ++i)
                out[i] = src[i];
            return n;
        }
        for (Count i = 0; i < n; ++i) {
            out[i] = src[i];
            out[i].vaddr = rebase(src[i].vaddr);
        }
        return n;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        Addr vaddr = fanout_.upstream().wrongPathAddr(rng);
        return identity_ ? vaddr : rebase(vaddr);
    }

    void
    registerStats(StatsRegistry &registry,
                  const std::string &prefix) const override
    {
        fanout_.upstream().registerStats(registry, prefix);
    }

  private:
    Addr
    rebase(Addr vaddr)
    {
        // Streams touch the same region in bursts: check the last
        // matching region before scanning (regions per workload: 1-4).
        const RegionRemap &last = remaps_[lastRemap_];
        if (vaddr - last.from < last.size)
            return last.to + (vaddr - last.from);
        for (std::size_t i = 0; i < remaps_.size(); ++i) {
            if (vaddr - remaps_[i].from < remaps_[i].size) {
                lastRemap_ = i;
                return remaps_[i].to + (vaddr - remaps_[i].from);
            }
        }
        panic("lane rebase: address %#lx outside every mapped region",
              vaddr);
    }

    RefChunkFanout &fanout_;
    std::vector<RegionRemap> remaps_;
    std::size_t lastRemap_ = 0;
    std::uint64_t consumedSeq_ = 0;
    bool identity_ = true;
};

} // namespace atscale

#endif // ATSCALE_CPU_REF_STREAM_HH
