/**
 * @file
 * The instruction/reference stream abstraction between workloads and the
 * timing core.
 *
 * A workload is consumed as a stream of retired memory references, each
 * carrying the number of non-memory instructions issued since the previous
 * reference. This is the standard trace-driven decoupling: the core never
 * needs opcodes, only the memory behaviour and instruction mix.
 */

#ifndef ATSCALE_CPU_REF_STREAM_HH
#define ATSCALE_CPU_REF_STREAM_HH

#include <cstdint>
#include <string>

#include "util/random.hh"
#include "util/types.hh"

namespace atscale
{

class StatsRegistry;

/** One correct-path memory reference. */
struct Ref
{
    /** Virtual address accessed. */
    Addr vaddr = 0;
    /** Non-memory instructions retired since the previous reference. */
    std::uint32_t instGap = 0;
    /** Store (vs load). */
    bool isStore = false;
};

/**
 * A restartable source of memory references. Implementations are the
 * exec-mode instrumented algorithms and the model-mode streaming
 * generators in src/workloads.
 */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Produce the next reference.
     * @return false when the workload instance is exhausted (the driver
     *         may then rewind or stop)
     */
    virtual bool next(Ref &ref) = 0;

    /**
     * Produce up to `max` references into `out`, advancing the stream as
     * `max` next() calls would; returning fewer than `max` signals
     * exhaustion. The core consumes references in chunks through this
     * hook — one virtual call per chunk instead of one per reference —
     * which models a frontend fetch-ahead window: the stream's cursors
     * run up to a chunk ahead of the reference currently executing (and
     * wrongPathAddr() draws near those run-ahead cursors, as a real
     * frontend's speculation does). Implementations that generate in
     * internal batches should override this to copy straight out of
     * their buffers.
     */
    virtual Count
    fill(Ref *out, Count max)
    {
        Count n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * A plausible wrong-path data address: an address a control-divergent
     * speculative path through the same code might touch. Divergent paths
     * share the program's locality, so implementations draw near their
     * current cursors using the *caller's* rng (never their own, which
     * must stay deterministic regardless of speculation). Must fall
     * inside the workload's mapped regions.
     */
    virtual Addr wrongPathAddr(Rng &rng) = 0;

    /**
     * Register workload-side statistics under "<prefix>.". The default
     * registers nothing; streams with interesting internal state (KV hit
     * rates, graph cursors) override it.
     */
    virtual void
    registerStats(StatsRegistry &registry, const std::string &prefix) const
    {
        (void)registry;
        (void)prefix;
    }
};

} // namespace atscale

#endif // ATSCALE_CPU_REF_STREAM_HH
