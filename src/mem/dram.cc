#include "mem/dram.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace atscale
{

Dram::Dram(const DramParams &params)
    : params_(params),
      openRow_(static_cast<size_t>(params.banks), -1)
{
    panic_if(params_.banks <= 0, "DRAM needs at least one bank");
    panic_if(!isPowerOf2(params_.rowBytes), "row size must be a power of two");
}

Cycles
Dram::access(PhysAddr paddr)
{
    std::uint64_t row = paddr / params_.rowBytes;
    // Interleave consecutive rows across banks.
    auto bank = static_cast<size_t>(row % static_cast<std::uint64_t>(params_.banks));
    auto srow = static_cast<std::int64_t>(row);
    if (openRow_[bank] == srow) {
        ++rowHits_;
        return params_.rowHitLatency;
    }
    ++rowConflicts_;
    openRow_[bank] = srow;
    return params_.rowHitLatency + params_.rowConflictExtra;
}

void
Dram::reset()
{
    std::fill(openRow_.begin(), openRow_.end(), -1);
    rowHits_ = 0;
    rowConflicts_ = 0;
}

} // namespace atscale
