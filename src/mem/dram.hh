/**
 * @file
 * Open-page DRAM latency model.
 *
 * A deliberately small model: per-bank open-row tracking with a row-hit /
 * row-conflict latency split, calibrated to the paper's DDR4-1600 parts as
 * seen from a 2.5 GHz core. The cache hierarchy adds its own lookup
 * latencies on the way down, so this class only accounts for the DRAM
 * device + controller portion of a miss.
 */

#ifndef ATSCALE_MEM_DRAM_HH
#define ATSCALE_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace atscale
{

/** Tunable DRAM timing/geometry parameters. */
struct DramParams
{
    /** Number of banks across all channels/ranks. */
    int banks = 32;
    /** Bytes per DRAM row (page). */
    std::uint64_t rowBytes = 8192;
    /** Core cycles for a row-buffer hit (CAS + controller + link). */
    Cycles rowHitLatency = 140;
    /** Extra core cycles for precharge + activate on a row conflict. */
    Cycles rowConflictExtra = 60;
};

/**
 * Latency-only DRAM model with per-bank open rows.
 */
class Dram
{
  public:
    explicit Dram(const DramParams &params = {});

    /** Access paddr; returns the device latency and updates row state. */
    Cycles access(PhysAddr paddr);

    /** Row-buffer hits observed. */
    Count rowHits() const { return rowHits_; }
    /** Row-buffer conflicts observed. */
    Count rowConflicts() const { return rowConflicts_; }
    /** Close all rows and clear statistics. */
    void reset();

    const DramParams &params() const { return params_; }

  private:
    DramParams params_;
    std::vector<std::int64_t> openRow_;
    Count rowHits_ = 0;
    Count rowConflicts_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MEM_DRAM_HH
