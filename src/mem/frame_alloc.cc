#include "mem/frame_alloc.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace atscale
{

FrameAllocator::FrameAllocator(std::uint64_t capacityBytes, PhysAddr baseAddr)
    : capacity_(capacityBytes), base_(baseAddr), next_(baseAddr)
{
}

PhysAddr
FrameAllocator::allocate(std::uint64_t bytes)
{
    panic_if(!isPowerOf2(bytes), "allocation size %#lx not a power of two",
             bytes);

    Arena &arena = arenas_[bytes];
    if (arena.cursor + bytes > arena.end) {
        // Carve a fresh slab for this size class. Slabs amortize the
        // alignment padding across many allocations; their size is
        // capped so small-capacity allocators still exhaust gracefully.
        std::uint64_t slab = std::max(
            bytes, std::min<std::uint64_t>(1ull << 30, capacity_ / 8));
        PhysAddr slab_base = alignUp(next_, bytes);
        fatal_if(slab_base + bytes - base_ > capacity_,
                 "simulated DRAM exhausted: %#lx bytes requested beyond "
                 "%#lx capacity", slab_base + bytes - base_, capacity_);
        // Trim the slab to the remaining capacity (but keep >= bytes).
        slab = std::min(slab, capacity_ - (slab_base - base_));
        arena.cursor = slab_base;
        arena.end = slab_base + slab;
        next_ = arena.end;
    }

    PhysAddr addr = arena.cursor;
    arena.cursor += bytes;
    return addr;
}

void
FrameAllocator::reset()
{
    next_ = base_;
    arenas_.clear();
}

} // namespace atscale
