/**
 * @file
 * Physical frame allocator for the simulated machine.
 *
 * Emulates a freshly booted system's first-touch allocation. Allocations
 * are segregated into per-size arenas carved from one bump cursor in
 * slabs, so interleaving page-table nodes (4 KiB) with superpage frames
 * (2 MiB / 1 GiB) does not bleed alignment padding — with a naive bump
 * pointer, alternating 4 KiB and 1 GiB allocations would waste almost
 * 1 GiB per pair and a 600 GiB workload could not fit in the paper's
 * 768 GiB machine.
 */

#ifndef ATSCALE_MEM_FRAME_ALLOC_HH
#define ATSCALE_MEM_FRAME_ALLOC_HH

#include <cstdint>
#include <map>

#include "util/types.hh"

namespace atscale
{

/**
 * Slab-segregated bump allocator over a fixed-capacity physical address
 * space.
 */
class FrameAllocator
{
  public:
    /**
     * @param capacityBytes total simulated DRAM (default: the paper's
     *        2-socket, 384 GiB/socket system)
     * @param baseAddr first allocatable physical address
     */
    explicit FrameAllocator(std::uint64_t capacityBytes = 768ull << 30,
                            PhysAddr baseAddr = 1ull << 20);

    /**
     * Allocate one naturally aligned block of the given size (a page or a
     * page-table node). fatal() when simulated DRAM is exhausted.
     *
     * @param bytes block size; must be a power of two
     * @return physical address of the block
     */
    PhysAddr allocate(std::uint64_t bytes);

    /** Bytes claimed from the arena cursor so far (including padding). */
    std::uint64_t allocatedBytes() const { return next_ - base_; }

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes() const { return capacity_; }

    /** Release everything (the simulator resets between runs). */
    void reset();

  private:
    /** A partially consumed slab dedicated to one allocation size. */
    struct Arena
    {
        PhysAddr cursor = 0;
        PhysAddr end = 0;
    };

    std::uint64_t capacity_;
    PhysAddr base_;
    PhysAddr next_;
    std::map<std::uint64_t, Arena> arenas_;
};

} // namespace atscale

#endif // ATSCALE_MEM_FRAME_ALLOC_HH
