#include "mem/phys_mem.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace atscale
{

std::uint64_t
PhysicalMemory::read64(PhysAddr paddr) const
{
    panic_if(!isAligned(paddr, 8), "misaligned 64-bit read at %#lx", paddr);
    auto it = frames_.find(paddr >> pageShift4K);
    if (it == frames_.end())
        return 0;
    return (*it->second)[(paddr & (pageSize4K - 1)) >> 3];
}

void
PhysicalMemory::write64(PhysAddr paddr, std::uint64_t value)
{
    panic_if(!isAligned(paddr, 8), "misaligned 64-bit write at %#lx", paddr);
    auto &frame = frames_[paddr >> pageShift4K];
    if (!frame)
        frame = std::make_unique<Frame>();
    (*frame)[(paddr & (pageSize4K - 1)) >> 3] = value;
}

} // namespace atscale
