#include "mem/phys_mem.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace atscale
{

std::uint64_t
PhysicalMemory::read64(PhysAddr paddr) const
{
    panic_if(!isAligned(paddr, 8), "misaligned 64-bit read at %#lx", paddr);
    const std::uint64_t fpn = paddr >> pageShift4K;
    if (fpn != lastFpn_) {
        auto it = frames_.find(fpn);
        if (it == frames_.end())
            return 0;
        lastFpn_ = fpn;
        lastFrame_ = it->second.get();
    }
    return (*lastFrame_)[(paddr & (pageSize4K - 1)) >> 3];
}

void
PhysicalMemory::write64(PhysAddr paddr, std::uint64_t value)
{
    panic_if(!isAligned(paddr, 8), "misaligned 64-bit write at %#lx", paddr);
    const std::uint64_t fpn = paddr >> pageShift4K;
    auto &frame = frames_[fpn];
    if (!frame)
        frame = std::make_unique<Frame>();
    lastFpn_ = fpn;
    lastFrame_ = frame.get();
    (*frame)[(paddr & (pageSize4K - 1)) >> 3] = value;
}

} // namespace atscale
