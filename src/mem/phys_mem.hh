/**
 * @file
 * Sparse simulated physical memory.
 *
 * Only page-table frames have actual backing storage (the walker reads real
 * PTE words from them); data frames exist purely as addresses, so a 600 GB
 * simulated footprint costs host memory proportional to the number of
 * page-table nodes touched, not the footprint.
 */

#ifndef ATSCALE_MEM_PHYS_MEM_HH
#define ATSCALE_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "util/types.hh"

namespace atscale
{

/**
 * Word-addressable sparse physical memory. Frames are materialized lazily
 * on first write; reads of never-written locations return zero (an x86
 * not-present PTE).
 */
class PhysicalMemory
{
  public:
    /** Read the aligned 64-bit word at paddr. */
    std::uint64_t read64(PhysAddr paddr) const;

    /** Write the aligned 64-bit word at paddr, materializing the frame. */
    void write64(PhysAddr paddr, std::uint64_t value);

    /** Number of frames with backing storage (page-table nodes). */
    std::size_t materializedFrames() const { return frames_.size(); }

    /** Drop all backing storage. */
    void
    clear()
    {
        frames_.clear();
        lastFpn_ = ~0ull;
        lastFrame_ = nullptr;
    }

  private:
    using Frame = std::array<std::uint64_t, pageSize4K / sizeof(std::uint64_t)>;

    std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames_;

    // Last-frame memo: page walks read several PTE words from the same
    // page-table node back to back, so remembering the previous lookup
    // removes most hash-map traffic. Frame storage is unique_ptr-held
    // and only ever released by clear(), so the cached pointer is
    // stable. Only materialized frames are memoized — an "absent" result
    // could be invalidated by a later write64. Not thread-safe to share
    // one instance across threads (each Platform owns its own).
    mutable std::uint64_t lastFpn_ = ~0ull;
    mutable Frame *lastFrame_ = nullptr;
};

} // namespace atscale

#endif // ATSCALE_MEM_PHYS_MEM_HH
