/**
 * @file
 * The software translation fast path: a small flat table in front of the
 * TLB complex that turns repeat translations of hot pages into one hash
 * probe plus an exact counter replay.
 *
 * Exactness contract
 * ------------------
 * A fast-path hit must leave the simulation in *bit-identical* state to
 * the full Mmu::translate path: same counter values, same replacement
 * metadata, same RNG positions. The design guarantees this structurally:
 *
 *  - Entries only cache first-level TLB hits, the one translate() outcome
 *    with no data-dependent side effects beyond counters and recency.
 *  - Each entry stores the direct (set, way, tag) coordinates of the L1
 *    TLB entry it shadows and revalidates them against the live array on
 *    every use (SetAssocCache::holdsAt). Eviction, invalidation, or
 *    replacement of the TLB entry makes the coordinates stale and the
 *    request falls back to the slow path — no callback from the TLB is
 *    needed for correctness.
 *  - A validated hit replays exactly the bookkeeping lookup() would have
 *    performed (TlbComplex::tryReplayL1Hit): complex lookup count, probe
 *    misses for earlier-probed arrays, hit + LRU touch on the hit array.
 *  - Entries carry no physical frame, so address-space remaps cannot be
 *    served stale from here; frame staleness is confined to the TLBs and
 *    the core micro-TLB, both scrubbed by TranslationListener hooks.
 *
 * The table's own hit/miss/install/invalidate counts are diagnostic
 * observability stats and are deliberately excluded from the exactness
 * contract (they are the only state that differs between fast path on
 * and off).
 *
 * Storage is struct-of-arrays: the VPN tags live in one flat
 * std::uint64_t vector separate from the shadowed coordinates, so the
 * batch-translate screen (RadixScheme::translateBatch) and
 * invalidatePage() scan a contiguous tag column the compiler vectorizes,
 * and a probe's tag compare costs one 8-byte load.
 */

#ifndef ATSCALE_MMU_FASTPATH_HH
#define ATSCALE_MMU_FASTPATH_HH

#include <cstdint>
#include <vector>

#include "mmu/tlb_complex.hh"

namespace atscale
{

/**
 * Flat, open-addressed, direct-mapped translation cache keyed on the
 * 4 KiB virtual page number. Large pages are cached per 4 KiB fragment:
 * several table slots may shadow the same 2 MiB TLB entry, which keeps
 * the probe a single masked multiply with no page-size loop.
 */
class FastTranslationCache
{
  public:
    /** @param slots table size; rounded meaning: must be a power of 2. */
    explicit FastTranslationCache(std::uint32_t slots = 2048)
        : mask_(slots - 1), slotVpns_(slots, emptyVpn), slotHits_(slots)
    {
    }

    /**
     * Probe for vaddr and, when the shadowed L1 TLB entry is still live,
     * replay the hit into `tlb` and report the page size, exactly as a
     * full lookup() resolving in the first level would.
     *
     * Translation-thrashing streams (footprints far beyond first-level
     * TLB reach) would pay the probe + install overhead on nearly every
     * translation and almost never hit. A duty cycle bounds that worst
     * case: the head of every window measures the table's hit rate and
     * the window's remainder bypasses the table entirely (two loads and
     * a branch) when the rate is hopeless. Two refinements keep the
     * sampling cost negligible on streams that never hit:
     *
     *  - an early verdict after earlySample probes with zero hits, so a
     *    pure thrashing stream pays 64 probes per window, not 256;
     *  - exponential backoff — each consecutive bypassing window doubles
     *    the next window's length (up to maxBackoff doublings), so a
     *    persistently thrashing stream samples ~64 probes per 64 Ki
     *    translations (~0.1% overhead) while a stream that turns hot
     *    again is rediscovered within one backed-off window.
     *
     * Bypassing is pure execution strategy — probes and installs have no
     * architectural effect — so the exactness contract is unaffected.
     *
     * @return true on a served hit; false means take the slow path.
     */
    bool
    tryHit(Addr vaddr, TlbComplex &tlb, PageSize &size_out)
    {
        if (++winPos_ > winLen_) {
            if (!bypassing_)
                bypassStreak_ = 0;
            winPos_ = 1;
            winHits_ = 0;
            bypassing_ = false;
            winLen_ = windowSize;
        }
        if (bypassing_)
            return false;
        if ((winPos_ == earlySample + 1 && winHits_ == 0) ||
            (winPos_ == sampleSize + 1 && winHits_ < sampleHitFloor)) {
            bypassing_ = true;
            ++bypassWindows_;
            if (bypassStreak_ < maxBackoff)
                ++bypassStreak_;
            winLen_ = windowSize << bypassStreak_;
            return false;
        }
        const std::uint32_t slot = index(vaddr);
        if (slotVpns_[slot] != (vaddr >> pageShift4K)) {
            ++misses_;
            return false;
        }
        if (!tlb.tryReplayL1Hit(slotHits_[slot])) {
            // The TLB moved on; retire the shadow so the slot can be
            // reused by whatever is hot now.
            slotVpns_[slot] = emptyVpn;
            ++misses_;
            return false;
        }
        size_out = slotHits_[slot].size;
        winHits_ += winPos_ <= sampleSize;
        ++hits_;
        return true;
    }

    /**
     * Pure screen: would a probe of vaddr find a matching VPN tag right
     * now? Touches no state — the batch-translate pre-pass uses it to
     * split a chunk into probable hits and the scalar-fallback subset.
     * Advisory only: the authoritative revalidation still happens in
     * tryHit()/tryReplayL1Hit on the serving path.
     */
    bool
    screen(Addr vaddr) const
    {
        return slotVpns_[index(vaddr)] == (vaddr >> pageShift4K);
    }

    /**
     * Hint the host to load vaddr's slot. The table is ~80 KiB, so a
     * random stream's probe is usually a host-cache miss; the core's
     * chunked fetch loop prefetches the upcoming chunk's slots while
     * simulating the current one.
     */
    void
    prefetch(Addr vaddr) const
    {
        const std::uint32_t slot = index(vaddr);
        __builtin_prefetch(&slotVpns_[slot]);
        __builtin_prefetch(&slotHits_[slot]);
    }

    /**
     * Shadow the L1 TLB entry currently holding vaddr's translation.
     * Called from the slow path after any outcome that leaves the
     * translation resident in the first level (L1 hit, L2 refill,
     * completed walk install). No-op while the duty cycle is bypassing
     * (installs resume with the next sampling phase).
     */
    void
    install(Addr vaddr, PageSize size, TlbComplex &tlb)
    {
        if (bypassing_)
            return;
        TlbFastHit hit;
        if (!tlb.locate(vaddr, size, hit))
            return;
        const std::uint32_t slot = index(vaddr);
        slotVpns_[slot] = vaddr >> pageShift4K;
        slotHits_[slot] = hit;
        ++installs_;
    }

    /**
     * Drop every slot shadowing the page at `base` of size `size`. Not
     * required for correctness (stale slots self-retire), but keeps the
     * invalidation story precise and the diagnostic counts meaningful.
     * The scan is a pure compare loop over the contiguous VPN column.
     */
    void
    invalidatePage(Addr base, PageSize size)
    {
        const std::uint64_t lo = base >> pageShift4K;
        const std::uint64_t hi = lo + (pageBytes(size) >> pageShift4K);
        for (std::uint64_t &vpn : slotVpns_) {
            if (vpn >= lo && vpn < hi) {
                vpn = emptyVpn;
                ++invalidations_;
            }
        }
    }

    /** Drop everything (TLB flush, fast path disable). */
    void
    flush()
    {
        for (std::uint64_t &vpn : slotVpns_)
            vpn = emptyVpn;
    }

    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
        installs_ = 0;
        invalidations_ = 0;
        bypassWindows_ = 0;
    }

    Count hits() const { return hits_; }
    Count misses() const { return misses_; }
    Count installs() const { return installs_; }
    Count invalidations() const { return invalidations_; }
    Count bypassWindows() const { return bypassWindows_; }

  private:
    /** No 48-bit address space produces this VPN. */
    static constexpr std::uint64_t emptyVpn = ~0ull;

    /** Duty cycle: translations per (un-backed-off) adaptation window. */
    static constexpr std::uint64_t windowSize = 4096;
    /** Probes at the head of each window that measure the hit rate. */
    static constexpr std::uint64_t sampleSize = 256;
    /** Early-verdict point: zero hits by here ends the sample at once. */
    static constexpr std::uint64_t earlySample = 64;
    /** Sampling-phase hits below which the window's remainder bypasses. */
    static constexpr std::uint64_t sampleHitFloor = sampleSize / 8;
    /** Maximum window-length doublings under consecutive bypasses. */
    static constexpr std::uint32_t maxBackoff = 4;

    std::uint32_t
    index(Addr vaddr) const
    {
        // Fibonacci hash of the VPN; adjacent pages land in distinct
        // slots while still mixing high bits into the index.
        std::uint64_t vpn = vaddr >> pageShift4K;
        return static_cast<std::uint32_t>(
            (vpn * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
    }

    std::uint32_t mask_;
    /** VPN tag per slot (struct-of-arrays: scanned without the hits). */
    std::vector<std::uint64_t> slotVpns_;
    /** Shadowed L1 coordinates per slot, parallel to slotVpns_. */
    std::vector<TlbFastHit> slotHits_;
    Count hits_ = 0;
    Count misses_ = 0;
    Count installs_ = 0;
    Count invalidations_ = 0;
    Count bypassWindows_ = 0;
    /** Position within the current adaptation window (1-based). */
    // atscale-lint: allow(R3 duty-cycle cursor, not a statistic)
    Count winPos_ = 0;
    /** Fast-path hits observed in the window's sampling phase. */
    // atscale-lint: allow(R3 transient window tally, folded into bypassWindows_)
    Count winHits_ = 0;
    /** Current window length (windowSize, stretched by backoff). */
    std::uint64_t winLen_ = windowSize;
    /** Consecutive bypassing windows (caps the backoff shift). */
    std::uint32_t bypassStreak_ = 0;
    /** The current window decided the stream is thrashing. */
    bool bypassing_ = false;
};

} // namespace atscale

#endif // ATSCALE_MMU_FASTPATH_HH
