#include "mmu/mmu.hh"

#include "mmu/scheme/registry.hh"
#include "util/logging.hh"

namespace atscale
{

Mmu::Mmu(AddressSpace &space, PhysicalMemory &mem, CacheHierarchy &hierarchy,
         const MmuParams &params, FrameAllocator *alloc)
    : scheme_(makeTranslationScheme(space, mem, hierarchy, alloc, params))
{
    // Devirtualize the default scheme: RadixScheme is final, so calls
    // through this pointer inline the TLB-hit fast path exactly as the
    // pre-seam MMU did.
    if (params.scheme == "radix")
        radix_ = static_cast<RadixScheme *>(scheme_.get());
}

RadixScheme &
Mmu::radixOrFatal() const
{
    fatal_if(radix_ == nullptr,
             "radix-only MMU accessor used while translation scheme '%s' "
             "is active",
             scheme_->name());
    return *radix_;
}

} // namespace atscale
