#include "mmu/mmu.hh"

namespace atscale
{

Mmu::Mmu(AddressSpace &space, PhysicalMemory &mem, CacheHierarchy &hierarchy,
         const MmuParams &params)
    : space_(space), tlb_(params.tlb), pscs_(params.psc),
      walker_(mem, hierarchy, pscs_, params.walker)
{
}

MmuResult
Mmu::translate(Addr vaddr, bool speculative, Cycles walkBudget)
{
    MmuResult result;
    TlbLookupResult tlb_result = tlb_.lookup(vaddr);
    result.tlbLevel = tlb_result.level;
    result.tlbExtraLatency = tlb_result.extraLatency;

    if (tlb_result.level != TlbLevel::Miss) {
        result.pageSize = tlb_result.pageSize;
        return result;
    }

    // Correct-path misses to not-yet-populated pages take the OS demand
    // paging path first, so the hardware walk below finds a present leaf.
    // Speculative requests must not page anything in.
    if (!speculative && space_.findVma(vaddr))
        space_.touch(vaddr);

    result.walk = walker_.walk(vaddr, space_.pageTable(), walkBudget);

    if (result.walk.completed && !result.walk.faulted) {
        result.pageSize = result.walk.translation.pageSize;
        tlb_.install(vaddr, result.pageSize);
    }
    return result;
}

void
Mmu::resetStats()
{
    tlb_.resetStats();
    pscs_.resetStats();
    walker_.resetStats();
}

void
Mmu::flushAll()
{
    tlb_.flush();
    pscs_.flush();
}

void
Mmu::registerStats(StatsRegistry &registry, const std::string &prefix) const
{
    tlb_.registerStats(registry, prefix + ".tlb");
    pscs_.registerStats(registry, prefix + ".psc");
    walker_.registerStats(registry, prefix + ".walker");
}

} // namespace atscale
