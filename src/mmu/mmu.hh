/**
 * @file
 * The memory management unit facade: TLB complex + paging-structure caches
 * + page-table walker, fronting one address space.
 */

#ifndef ATSCALE_MMU_MMU_HH
#define ATSCALE_MMU_MMU_HH

#include "cache/hierarchy.hh"
#include "mmu/paging_structure_cache.hh"
#include "mmu/tlb_complex.hh"
#include "mmu/walker.hh"
#include "vm/address_space.hh"

namespace atscale
{

/** MMU configuration. */
struct MmuParams
{
    TlbParams tlb;
    PscParams psc;
    WalkerParams walker;
};

/** Result of one translation request. */
struct MmuResult
{
    /** Where the TLB lookup was satisfied (Miss => a walk happened). */
    TlbLevel tlbLevel = TlbLevel::Miss;
    /** Extra cycles on the TLB lookup path (L2 TLB hits). */
    Cycles tlbExtraLatency = 0;
    /** Page size of the translation (valid unless the walk aborted). */
    PageSize pageSize = PageSize::Size4K;
    /** Walk details when tlbLevel == Miss. */
    WalkResult walk;
};

/**
 * The per-core MMU. Demand-populates the address space on correct-path
 * misses (the OS page-fault handler analogue), walks the real page table
 * for every TLB miss, and installs completed translations.
 */
class Mmu
{
  public:
    /**
     * @param space the address space being translated
     * @param mem physical memory (PTE storage)
     * @param hierarchy cache hierarchy shared with data accesses
     */
    Mmu(AddressSpace &space, PhysicalMemory &mem, CacheHierarchy &hierarchy,
        const MmuParams &params = {});

    /**
     * Translate vaddr.
     *
     * @param speculative the request is from a speculative (possibly
     *        wrong) path: no demand paging, and aborted walks are normal
     * @param walkBudget cycles after which an initiated walk is squashed
     */
    MmuResult translate(Addr vaddr, bool speculative = false,
                        Cycles walkBudget = unlimitedWalkBudget);

    TlbComplex &tlb() { return tlb_; }
    PagingStructureCaches &pscs() { return pscs_; }
    PageWalker &walker() { return walker_; }
    const TlbComplex &tlb() const { return tlb_; }
    const PagingStructureCaches &pscs() const { return pscs_; }
    const PageWalker &walker() const { return walker_; }

    /** Reset all statistics (contents retained). */
    void resetStats();
    /** Flush all translation state (TLBs + PSCs). */
    void flushAll();

    /** Register TLB/PSC/walker statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    AddressSpace &space_;
    TlbComplex tlb_;
    PagingStructureCaches pscs_;
    PageWalker walker_;
};

} // namespace atscale

#endif // ATSCALE_MMU_MMU_HH
