/**
 * @file
 * The memory management unit facade: TLB complex + paging-structure caches
 * + page-table walker, fronting one address space, with a software fast
 * path (mmu/fastpath.hh) that short-circuits repeat L1 TLB hits.
 */

#ifndef ATSCALE_MMU_MMU_HH
#define ATSCALE_MMU_MMU_HH

#include <cassert>

#include "cache/hierarchy.hh"
#include "mmu/fastpath.hh"
#include "mmu/paging_structure_cache.hh"
#include "mmu/tlb_complex.hh"
#include "mmu/walker.hh"
#include "vm/address_space.hh"

namespace atscale
{

/** MMU configuration. */
struct MmuParams
{
    TlbParams tlb;
    PscParams psc;
    WalkerParams walker;
    /** Enable the software translation fast path (exact; see fastpath.hh). */
    bool fastPath = true;
};

/** Result of one translation request. */
struct MmuResult
{
    /** Where the TLB lookup was satisfied (Miss => a walk happened). */
    TlbLevel tlbLevel = TlbLevel::Miss;
    /** Extra cycles on the TLB lookup path (L2 TLB hits). */
    Cycles tlbExtraLatency = 0;
    /** Page size of the translation (valid unless the walk aborted). */
    PageSize pageSize = PageSize::Size4K;

    /**
     * Walk details; meaningful only when tlbLevel == Miss. On TLB hits
     * the accounting fields are deliberately left unwritten (fastpath.hh
     * depends on the hit path doing zero walk bookkeeping), so debug
     * builds assert here and poison the storage (see poisonWalk) to
     * catch any unguarded read dynamically; lint rule R4 catches them
     * statically. Release builds compile down to a plain field access.
     */
    const WalkResult &
    walk() const
    {
        assert(tlbLevel == TlbLevel::Miss &&
               "MmuResult::walk read on a TLB hit (fields are undefined)");
        return walk_;
    }

#ifndef NDEBUG
    MmuResult() { poisonWalk(); }

    /**
     * Debug-only: fill the walk accounting fields with a recognizable
     * garbage pattern so a read that slips past the assert (e.g. via
     * memcpy of the whole struct) shows up as implausible numbers
     * instead of plausible stale ones.
     */
    void
    poisonWalk()
    {
        walk_.cycles = static_cast<Cycles>(0xDEADDEADDEADDEADull);
        walk_.ptwAccesses = static_cast<Count>(0xDEADDEADDEADDEADull);
        walk_.startLevel = -0xDEAD;
        walk_.loadsAtLevel.fill(static_cast<Count>(0xDEADDEADDEADDEADull));
        walk_.hitLevelAt.fill(-13);
    }
#else
    MmuResult() = default;
#endif

  private:
    friend class Mmu;
    WalkResult walk_;
};

/**
 * The per-core MMU. Demand-populates the address space on correct-path
 * misses (the OS page-fault handler analogue), walks the real page table
 * for every TLB miss, and installs completed translations.
 */
class Mmu : public TranslationListener
{
  public:
    /**
     * @param space the address space being translated
     * @param mem physical memory (PTE storage)
     * @param hierarchy cache hierarchy shared with data accesses
     */
    Mmu(AddressSpace &space, PhysicalMemory &mem, CacheHierarchy &hierarchy,
        const MmuParams &params = {});

    /**
     * Translate vaddr.
     *
     * The hot case — a repeat hit on a first-level-resident page — is
     * served by the fast path with bit-identical counter and replacement
     * state to the full lookup (see mmu/fastpath.hh for the contract).
     * Neither MMU path consumes RNG on a hit, and speculative/walkBudget
     * only matter on misses, so the short-circuit is safe for wrong-path
     * requests too.
     *
     * @param speculative the request is from a speculative (possibly
     *        wrong) path: no demand paging, and aborted walks are normal
     * @param walkBudget cycles after which an initiated walk is squashed
     */
    MmuResult
    translate(Addr vaddr, bool speculative = false,
              Cycles walkBudget = unlimitedWalkBudget)
    {
        if (fastEnabled_) {
            MmuResult result;
            if (fast_.tryHit(vaddr, tlb_, result.pageSize)) {
                result.tlbLevel = TlbLevel::L1;
                return result;
            }
        }
        return translateSlow(vaddr, speculative, walkBudget);
    }

    TlbComplex &tlb() { return tlb_; }
    PagingStructureCaches &pscs() { return pscs_; }
    PageWalker &walker() { return walker_; }
    const TlbComplex &tlb() const { return tlb_; }
    const PagingStructureCaches &pscs() const { return pscs_; }
    const PageWalker &walker() const { return walker_; }
    FastTranslationCache &fastCache() { return fast_; }
    const FastTranslationCache &fastCache() const { return fast_; }

    /** Whether the fast path is consulted. */
    bool fastPathEnabled() const { return fastEnabled_; }
    /** Enable/disable the fast path at run time (disabling drops it). */
    void setFastPath(bool enabled);

    /**
     * Drop any translation state for the page at `base` of size `size`
     * (TLBs + fast path). The invlpg analogue, driven by address-space
     * remap notifications.
     */
    void invalidatePage(Addr base, PageSize size);

    /** TranslationListener: a page now maps to a different frame. */
    void
    pageRemapped(Addr base, PageSize size) override
    {
        invalidatePage(base, size);
    }

    /** Reset all statistics (contents retained). */
    void resetStats();
    /** Flush all translation state (TLBs + PSCs + fast path). */
    void flushAll();

    /** Register TLB/PSC/walker/fast-path statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    /**
     * Process-stable digest of all exactness-relevant translation state:
     * TLB contents/recency/stats and PSC contents/recency/stats. The
     * fast-path table is deliberately excluded — it is a shadow structure
     * whose diagnostic counters legitimately differ between fast path on
     * and off.
     */
    std::uint64_t stateHash() const;

  private:
    /** The full lookup/demand-page/walk/install path. */
    MmuResult translateSlow(Addr vaddr, bool speculative, Cycles walkBudget);

    AddressSpace &space_;
    TlbComplex tlb_;
    PagingStructureCaches pscs_;
    PageWalker walker_;
    FastTranslationCache fast_;
    bool fastEnabled_ = true;
};

} // namespace atscale

#endif // ATSCALE_MMU_MMU_HH
