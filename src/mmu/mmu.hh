/**
 * @file
 * The memory management unit facade: one TranslationScheme (radix by
 * default — TLB complex + paging-structure caches + page-table walker
 * with the software fast path) behind a stable seam, selected by
 * MmuParams::scheme through mmu/scheme/registry.hh. The facade owns the
 * TranslationListener invalidation plumbing and keeps the radix hot
 * path devirtualized so the fast-path PR's throughput survives the
 * seam.
 */

#ifndef ATSCALE_MMU_MMU_HH
#define ATSCALE_MMU_MMU_HH

#include <memory>

#include "mmu/scheme/radix_scheme.hh"
#include "mmu/scheme/translation_scheme.hh"
#include "vm/address_space.hh"

namespace atscale
{

class FrameAllocator;

/**
 * The per-core MMU: a thin facade over the active translation scheme.
 * For the default radix scheme the facade dispatches through a concrete
 * (final) pointer, so the TLB-hit fast path inlines exactly as before
 * the scheme seam existed.
 */
class Mmu : public TranslationListener
{
  public:
    /**
     * @param space the address space being translated
     * @param mem physical memory (PTE storage)
     * @param hierarchy cache hierarchy shared with data accesses
     * @param alloc frame allocator for schemes that allocate simulated
     *        physical storage (hashed tables, park lines); the radix
     *        and no_vm schemes never touch it
     */
    Mmu(AddressSpace &space, PhysicalMemory &mem, CacheHierarchy &hierarchy,
        const MmuParams &params = {}, FrameAllocator *alloc = nullptr);

    /**
     * Translate vaddr through the active scheme.
     *
     * @param speculative the request is from a speculative (possibly
     *        wrong) path: no demand paging, and aborted walks are normal
     * @param walkBudget cycles after which an initiated walk is squashed
     */
    MmuResult
    translate(Addr vaddr, bool speculative = false,
              Cycles walkBudget = unlimitedWalkBudget)
    {
        if (radix_)
            return radix_->translate(vaddr, speculative, walkBudget);
        return scheme_->translate(vaddr, speculative, walkBudget);
    }

    /**
     * Translate a batch of addresses, bit-identical to calling
     * translate() once per element in order (the batch differential
     * suite proves it). The radix scheme coalesces equal-page runs into
     * O(1) counter replays, which is where the sequential-stream batch
     * speedup comes from; other schemes run the scalar loop.
     *
     * @pre out.size() >= vaddrs.size()
     */
    void
    translateBatch(std::span<const Addr> vaddrs, std::span<MmuResult> out,
                   bool speculative = false,
                   Cycles walkBudget = unlimitedWalkBudget)
    {
        if (radix_) {
            radix_->translateBatch(vaddrs, out, speculative, walkBudget);
            return;
        }
        scheme_->translateBatch(vaddrs, out, speculative, walkBudget);
    }

    /**
     * Host-prefetch hint that a translate of vaddr is coming (the core's
     * chunked fetch loop screens each refilled chunk). Touches no
     * simulated state, so it is exact by construction.
     */
    void
    prefetchTranslation(Addr vaddr) const
    {
        if (radix_)
            radix_->prefetchTranslation(vaddr);
    }

    /** The active translation scheme. */
    TranslationScheme &scheme() { return *scheme_; }
    const TranslationScheme &scheme() const { return *scheme_; }
    /** Registry name of the active scheme. */
    const char *schemeName() const { return scheme_->name(); }

    /**
     * Radix-component accessors. fatal() when a non-radix scheme is
     * active — callers poking TLB/PSC/walker internals are asserting
     * radix structure that other schemes do not have.
     */
    TlbComplex &tlb() { return radixOrFatal().tlb(); }
    PagingStructureCaches &pscs() { return radixOrFatal().pscs(); }
    PageWalker &walker() { return radixOrFatal().walker(); }
    const TlbComplex &tlb() const { return radixOrFatal().tlb(); }
    const PagingStructureCaches &pscs() const { return radixOrFatal().pscs(); }
    const PageWalker &walker() const { return radixOrFatal().walker(); }
    FastTranslationCache &fastCache() { return radixOrFatal().fastCache(); }
    const FastTranslationCache &
    fastCache() const
    {
        return radixOrFatal().fastCache();
    }

    /** Whether the scheme's fast path is consulted. */
    bool fastPathEnabled() const { return scheme_->fastPathEnabled(); }
    /** Enable/disable the fast path (a no-op for schemes without one). */
    void setFastPath(bool enabled) { scheme_->setFastPath(enabled); }

    /**
     * Drop any translation state for the page at `base` of size `size`.
     * The invlpg analogue, driven by address-space remap notifications.
     */
    void
    invalidatePage(Addr base, PageSize size)
    {
        scheme_->invalidatePage(base, size);
    }

    /** TranslationListener: a page now maps to a different frame. */
    void
    pageRemapped(Addr base, PageSize size) override
    {
        invalidatePage(base, size);
    }

    /** Reset all statistics (contents retained). */
    void resetStats() { scheme_->resetStats(); }
    /** Flush all cached translation state. */
    void flushAll() { scheme_->flushAll(); }

    /** Register the scheme's statistics under "<prefix>.". */
    void
    registerStats(StatsRegistry &registry, const std::string &prefix) const
    {
        scheme_->registerStats(registry, prefix);
    }

    /**
     * Process-stable digest of all exactness-relevant translation state
     * (scheme-defined; see TranslationScheme::stateHash).
     */
    std::uint64_t stateHash() const { return scheme_->stateHash(); }

  private:
    RadixScheme &radixOrFatal() const;

    std::unique_ptr<TranslationScheme> scheme_;
    /** Non-null iff the radix scheme is active (devirtualized path). */
    RadixScheme *radix_ = nullptr;
};

} // namespace atscale

#endif // ATSCALE_MMU_MMU_HH
