#include "mmu/paging_structure_cache.hh"

#include "obs/stats_registry.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace atscale
{

PagingStructureCaches::PagingStructureCaches(const PscParams &params)
    : params_(params)
{
    arrays_[0].entries.resize(params.pdeEntries);
    arrays_[1].entries.resize(params.pdpteEntries);
    arrays_[2].entries.resize(params.pml4eEntries);
}

bool
PagingStructureCaches::Array::lookup(std::uint64_t tag, PhysAddr &node,
                                     std::uint64_t now)
{
    for (Entry &e : entries) {
        if (e.valid && e.tag == tag) {
            e.stamp = now;
            node = e.node;
            ++hits;
            return true;
        }
    }
    return false;
}

void
PagingStructureCaches::Array::fill(std::uint64_t tag, PhysAddr node,
                                   std::uint64_t now)
{
    if (entries.empty())
        return;
    Entry *victim = &entries[0];
    for (Entry &e : entries) {
        if (e.valid && e.tag == tag) {
            e.node = node;
            e.stamp = now;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->node = node;
    victim->stamp = now;
}

void
PagingStructureCaches::Array::flush()
{
    for (Entry &e : entries)
        e.valid = false;
    hits = 0;
}

PscProbeResult
PagingStructureCaches::probe(Addr vaddr, PhysAddr cr3)
{
    PscProbeResult result;
    result.startLevel = ptLevels - 1;
    result.node = cr3;
    if (!params_.enabled)
        return result;

    ++clock_;
    // Probe lowest level first: a PDE-cache hit skips the most accesses.
    for (int entry_level = 1; entry_level <= 3; ++entry_level) {
        Array &array = arrays_[static_cast<size_t>(entry_level - 1)];
        PhysAddr node = 0;
        if (array.lookup(tagFor(vaddr, entry_level), node, clock_)) {
            result.startLevel = entry_level - 1;
            result.node = node;
            ++hits_;
            return result;
        }
    }
    ++misses_;
    return result;
}

void
PagingStructureCaches::fill(Addr vaddr, int level, PhysAddr node)
{
    if (!params_.enabled)
        return;
    panic_if(level < 1 || level > 3, "PSC fill at bad level %d", level);
    ++clock_;
    arrays_[static_cast<size_t>(level - 1)].fill(tagFor(vaddr, level), node,
                                                 clock_);
}

void
PagingStructureCaches::invalidatePage(Addr base, PageSize size)
{
    if (!params_.enabled)
        return;
    // INVLPG semantics: drop every paging-structure entry whose reach
    // covers the invalidated page (SDM vol. 3, 4.10.4.1). The arrays
    // are tiny and fully associative, so a sweep per level is fine.
    for (int entry_level = 1; entry_level <= 3; ++entry_level) {
        Array &array = arrays_[static_cast<size_t>(entry_level - 1)];
        std::uint64_t lo = tagFor(base, entry_level);
        std::uint64_t hi = tagFor(base + pageBytes(size) - 1, entry_level);
        for (Entry &e : array.entries) {
            if (e.valid && e.tag >= lo && e.tag <= hi)
                e.valid = false;
        }
    }
}

void
PagingStructureCaches::flush()
{
    for (Array &a : arrays_)
        a.flush();
    resetStats();
}

void
PagingStructureCaches::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    for (Array &a : arrays_)
        a.hits = 0;
}

Count
PagingStructureCaches::levelHits(int level) const
{
    panic_if(level < 1 || level > 3, "PSC level %d out of range", level);
    return arrays_[static_cast<size_t>(level - 1)].hits;
}

std::uint64_t
PagingStructureCaches::stateHash() const
{
    std::uint64_t h = fnv1aBasis;
    for (const Array &a : arrays_) {
        for (const Entry &e : a.entries) {
            h = hashCombine(h, e.valid ? 1 : 0);
            if (e.valid) {
                h = hashCombine(h, e.tag);
                h = hashCombine(h, e.node);
            }
            h = hashCombine(h, e.stamp);
        }
        h = hashCombine(h, a.hits);
    }
    h = hashCombine(h, clock_);
    h = hashCombine(h, hits_);
    h = hashCombine(h, misses_);
    return h;
}

void
PagingStructureCaches::registerStats(StatsRegistry &registry,
                                     const std::string &prefix) const
{
    registry.addScalar(prefix + ".hits", [this] {
        return static_cast<double>(hits());
    }, "probes that hit some array");
    registry.addScalar(prefix + ".misses", [this] {
        return static_cast<double>(misses());
    }, "probes that missed every array");
    const char *names[] = {"pde", "pdpte", "pml4e"};
    for (int level = 1; level <= 3; ++level) {
        registry.addScalar(
            prefix + "." + names[level - 1] + "_hits",
            [this, level] { return static_cast<double>(levelHits(level)); },
            "probes satisfied by this array");
    }
}

} // namespace atscale
