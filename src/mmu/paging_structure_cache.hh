/**
 * @file
 * Intel-style paging-structure caches (MMU caches).
 *
 * Three small fully-associative arrays cache PML4E, PDPTE, and PDE entries
 * by virtual-address prefix, letting the walker skip accesses at or near
 * the top of the radix tree ("skip, don't walk" translation caching).
 * Entry payloads are the physical address of the next-level node, read
 * straight out of the cached entry.
 */

#ifndef ATSCALE_MMU_PAGING_STRUCTURE_CACHE_HH
#define ATSCALE_MMU_PAGING_STRUCTURE_CACHE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"
#include "vm/page_size.hh"

namespace atscale
{

class StatsRegistry;

/** Geometry of the three paging-structure caches. */
struct PscParams
{
    /** PML4E cache entries (tags bits 47:39). */
    std::uint32_t pml4eEntries = 4;
    /** PDPTE cache entries (tags bits 47:30). */
    std::uint32_t pdpteEntries = 4;
    /** PDE cache entries (tags bits 47:21). */
    std::uint32_t pdeEntries = 32;
    /** Globally disable the caches (ablation). */
    bool enabled = true;
};

/** Outcome of a PSC probe: the level to start walking at. */
struct PscProbeResult
{
    /**
     * Radix level of the first node the walker must access: 3 = PML4
     * (no PSC hit), 2 = PDPT, 1 = PD, 0 = PT (PDE cache hit).
     */
    int startLevel = ptLevels - 1;
    /** Physical address of that node (CR3 when startLevel == 3). */
    PhysAddr node = 0;
};

/**
 * The three-level paging-structure cache complex. Each array is fully
 * associative with true-LRU replacement, matching what reverse engineering
 * reports for Intel parts.
 */
class PagingStructureCaches
{
  public:
    explicit PagingStructureCaches(const PscParams &params = {});

    /**
     * Probe all arrays for vaddr and return the lowest-level hit, i.e.
     * the latest possible walk entry point.
     * @param cr3 physical address of the page-table root
     */
    PscProbeResult probe(Addr vaddr, PhysAddr cr3);

    /**
     * Record that the walker read the entry at the given level for vaddr
     * and it pointed to next-level node `node`. Level uses radix-tree
     * numbering: 3 = PML4E, 2 = PDPTE, 1 = PDE. Leaf (level 0) entries
     * are cached in the TLBs, not here.
     */
    void fill(Addr vaddr, int level, PhysAddr node);

    /**
     * Drop every entry whose reach covers the page at `base` of the
     * given size — the INVLPG analogue for the paging-structure caches
     * (x86 invalidates PSC entries for the linear address along with
     * the TLB entry).
     */
    void invalidatePage(Addr base, PageSize size);

    /** Invalidate everything. */
    void flush();
    /** Reset statistics. */
    void resetStats();

    /** Probes that hit some array. */
    Count hits() const { return hits_; }
    /** Probes that missed every array. */
    Count misses() const { return misses_; }
    /** Per-array hit counts indexed by entry level (1, 2, 3). */
    Count levelHits(int level) const;

    /** Register probe and per-array hit statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    const PscParams &params() const { return params_; }

    /** Process-stable digest of all arrays' contents + statistics. */
    std::uint64_t stateHash() const;

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        PhysAddr node = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    /** One fully associative array. */
    struct Array
    {
        std::vector<Entry> entries;
        Count hits = 0;

        bool lookup(std::uint64_t tag, PhysAddr &node, std::uint64_t now);
        void fill(std::uint64_t tag, PhysAddr node, std::uint64_t now);
        void flush();
    };

    /** Tag for the array caching entries at the given radix level. */
    static std::uint64_t
    tagFor(Addr vaddr, int level)
    {
        return vaddr >> (pageShift4K + level * ptIndexBits);
    }

    PscParams params_;
    /** Index 0 -> PDE cache (level 1), 1 -> PDPTE (2), 2 -> PML4E (3). */
    std::array<Array, 3> arrays_;
    std::uint64_t clock_ = 0;
    Count hits_ = 0;
    Count misses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_PAGING_STRUCTURE_CACHE_HH
