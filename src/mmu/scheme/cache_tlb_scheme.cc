#include "mmu/scheme/cache_tlb_scheme.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "util/bitfield.hh"
#include "util/hash.hh"

namespace atscale
{

namespace
{
constexpr std::uint64_t parkLineBytes = 64;
} // namespace

CacheTlbScheme::CacheTlbScheme(AddressSpace &space, PhysicalMemory &mem,
                               CacheHierarchy &hierarchy,
                               FrameAllocator &alloc,
                               const MmuParams &params)
    : space_(space), hierarchy_(hierarchy), params_(params.cacheTlb),
      tlb_(params.tlb), pscs_(params.psc),
      walker_(mem, hierarchy, pscs_, params.walker),
      fastEnabled_(params.fastPath)
{
    std::uint64_t lines = 1ull << ceilLog2(
        std::max<std::uint64_t>(params_.parkLines, 1));
    parkBase_ = alloc.allocate(lines * parkLineBytes);
    parkMask_ = static_cast<std::size_t>(lines - 1);
    park_.resize(lines);
}

PhysAddr
CacheTlbScheme::parkLineAddr(std::size_t idx) const
{
    return parkBase_ + static_cast<PhysAddr>(idx) * parkLineBytes;
}

MmuResult
CacheTlbScheme::translateSlow(Addr vaddr, bool speculative,
                              Cycles walkBudget)
{
    MmuResult result;
    TlbLookupResult tlb_result = tlb_.lookup(vaddr);
    result.tlbLevel = tlb_result.level;
    result.tlbExtraLatency = tlb_result.extraLatency;

    if (tlb_result.level != TlbLevel::Miss) {
        result.pageSize = tlb_result.pageSize;
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
        return result;
    }

    if (!speculative && space_.findVma(vaddr))
        space_.touch(vaddr);

    // Probe the parked-entry line through the data hierarchy. A parked
    // translation only counts if its line is still cache-resident: a
    // probe answered by DRAM is no faster than a walk, so (as in
    // Victima) entries that decayed out of the cache are dead.
    std::uint64_t vpn = vaddr >> pageShift4K;
    std::size_t idx = parkIndex(vpn);
    MemAccessResult probe =
        hierarchy_.access(parkLineAddr(idx), AccessKind::PtwLoad);
    Cycles spent = probe.latency + params_.probeExtraCycles;

    WalkResult &walk = walkSlot(result);
    const ParkSlot &slot = park_[idx];
    if (slot.vpn == vpn && probe.level != MemLevel::Memory) {
        ++parkHits_;
        walk.completed = true;
        walk.faulted = false;
        walk.translation = slot.translation;
        walk.cycles = std::min(spent, walkBudget);
        walk.ptwAccesses = 1;
        walk.startLevel = 0;
        walk.loadsAtLevel.fill(0);
        ++walk.loadsAtLevel[static_cast<int>(probe.level)];
        walk.hitLevelAt.fill(-1);
        walk.hitLevelAt[0] = static_cast<std::int8_t>(probe.level);

        result.pageSize = walk.translation.pageSize;
        tlb_.install(vaddr, result.pageSize);
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
        return result;
    }

    ++parkMisses_;
    Cycles remaining = walkBudget > spent ? walkBudget - spent : 0;
    walk = walker_.walk(vaddr, space_.pageTable(), remaining);
    walk.cycles += spent;
    walk.ptwAccesses += 1;
    walk.loadsAtLevel[static_cast<int>(probe.level)] += 1;

    if (walk.completed && !walk.faulted) {
        result.pageSize = walk.translation.pageSize;
        tlb_.install(vaddr, result.pageSize);
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
        // Park the fresh translation: write the line (modeled as one
        // extra hierarchy touch, deliberately not charged to this walk
        // — the fill happens off the translation's critical path).
        ParkSlot &fill = park_[idx];
        if (fill.vpn != ~0ull && fill.vpn != vpn)
            ++parkConflicts_;
        fill.vpn = vpn;
        fill.translation = walk.translation;
        ++parkInstalls_;
        hierarchy_.access(parkLineAddr(idx), AccessKind::PtwLoad);
    }
    return result;
}

void
CacheTlbScheme::setFastPath(bool enabled)
{
    fastEnabled_ = enabled;
    if (!enabled)
        fast_.flush();
}

void
CacheTlbScheme::invalidatePage(Addr base, PageSize size)
{
    tlb_.invalidatePage(base, size);
    fast_.invalidatePage(base, size);
    // Parked entries index by 4 KiB VPN, so drop every covered slot.
    for (Addr page = base; page < base + pageBytes(size);
         page += pageSize4K) {
        std::uint64_t vpn = page >> pageShift4K;
        ParkSlot &slot = park_[parkIndex(vpn)];
        if (slot.vpn == vpn) {
            slot.vpn = ~0ull;
            slot.translation = Translation{};
        }
    }
}

void
CacheTlbScheme::resetStats()
{
    tlb_.resetStats();
    pscs_.resetStats();
    walker_.resetStats();
    fast_.resetStats();
    parkHits_ = 0;
    parkMisses_ = 0;
    parkInstalls_ = 0;
    parkConflicts_ = 0;
}

void
CacheTlbScheme::flushAll()
{
    tlb_.flush();
    pscs_.flush();
    fast_.flush();
    for (ParkSlot &slot : park_) {
        slot.vpn = ~0ull;
        slot.translation = Translation{};
    }
}

std::uint64_t
CacheTlbScheme::stateHash() const
{
    std::uint64_t h = hashCombine(tlb_.stateHash(), pscs_.stateHash());
    for (const ParkSlot &slot : park_) {
        if (slot.vpn != ~0ull) {
            h = hashCombine(h, slot.vpn);
            h = hashCombine(h, slot.translation.frame);
        }
    }
    return h;
}

void
CacheTlbScheme::registerStats(StatsRegistry &registry,
                              const std::string &prefix) const
{
    tlb_.registerStats(registry, prefix + ".tlb");
    pscs_.registerStats(registry, prefix + ".psc");
    walker_.registerStats(registry, prefix + ".walker");
    registry.addScalar(prefix + ".park.hits", [this] {
        return static_cast<double>(parkHits_);
    }, "park probes that found the entry still cache-resident");
    registry.addScalar(prefix + ".park.misses", [this] {
        return static_cast<double>(parkMisses_);
    }, "park probes that missed (wrong VPN, empty, or served by DRAM)");
    registry.addScalar(prefix + ".park.installs", [this] {
        return static_cast<double>(parkInstalls_);
    }, "translations parked after completed walks");
    registry.addScalar(prefix + ".park.conflicts", [this] {
        return static_cast<double>(parkConflicts_);
    }, "installs that evicted a different VPN's parked entry");
    registry.addScalar(prefix + ".fastpath.hits", [this] {
        return static_cast<double>(fast_.hits());
    }, "translations served by the software fast path (diagnostic)");
    registry.addScalar(prefix + ".fastpath.misses", [this] {
        return static_cast<double>(fast_.misses());
    }, "fast-path probes that fell back to the full path (diagnostic)");
}

} // namespace atscale
