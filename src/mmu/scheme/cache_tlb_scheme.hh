/**
 * @file
 * The cache-parked TLB translation scheme (Victima-style, Kanellopoulos
 * et al., PAPERS.md): translations evicted from / missing in the TLB
 * complex are parked in ordinary data cache lines, so a TLB miss first
 * probes one cache line through the shared hierarchy before falling
 * back to the full radix walk. The park region is real simulated
 * physical memory, so parked entries compete with data for L2/L3
 * capacity exactly as Victima's modified cache would.
 *
 * Eq-1 mapping: a park hit is a 1-access walk (ptwAccesses = 1, load
 * counted at the level that served the probe); a park miss charges the
 * probe on top of the radix walk it triggers, so walkCyclesPerPtwAccess
 * reflects the probe's cost honestly.
 */

#ifndef ATSCALE_MMU_SCHEME_CACHE_TLB_SCHEME_HH
#define ATSCALE_MMU_SCHEME_CACHE_TLB_SCHEME_HH

#include <vector>

#include "mmu/fastpath.hh"
#include "mmu/scheme/translation_scheme.hh"
#include "vm/address_space.hh"

namespace atscale
{

/**
 * Radix translation with a cache-parked second-chance TLB: the full
 * radix kit (TLB complex + PSCs + walker + fast path) plus a
 * direct-mapped park table of per-4KiB-VPN translations living in
 * allocated physical cache lines.
 */
class CacheTlbScheme final : public TranslationScheme
{
  public:
    CacheTlbScheme(AddressSpace &space, PhysicalMemory &mem,
                   CacheHierarchy &hierarchy, FrameAllocator &alloc,
                   const MmuParams &params);

    MmuResult
    translate(Addr vaddr, bool speculative, Cycles walkBudget) override
    {
        if (fastEnabled_) {
            MmuResult result;
            if (fast_.tryHit(vaddr, tlb_, result.pageSize)) {
                result.tlbLevel = TlbLevel::L1;
                return result;
            }
        }
        return translateSlow(vaddr, speculative, walkBudget);
    }

    const char *name() const override { return "cache_tlb"; }

    bool fastPathEnabled() const override { return fastEnabled_; }
    void setFastPath(bool enabled) override;

    void invalidatePage(Addr base, PageSize size) override;
    void resetStats() override;
    void flushAll() override;
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const override;
    std::uint64_t stateHash() const override;

    /** Park probes that found the entry still cache-resident. */
    Count parkHits() const { return parkHits_; }
    /** Park probes that missed (wrong VPN, empty, or fell to DRAM). */
    Count parkMisses() const { return parkMisses_; }
    /** Translations parked after completed walks. */
    Count parkInstalls() const { return parkInstalls_; }
    /** Installs that evicted a different VPN's parked entry. */
    Count parkConflicts() const { return parkConflicts_; }
    /** Park lines in the table. */
    std::uint64_t parkLines() const { return park_.size(); }

    const TlbComplex &tlb() const { return tlb_; }

  private:
    /** One parked translation; vpn ~0 = empty. */
    struct ParkSlot
    {
        std::uint64_t vpn = ~0ull;
        Translation translation;
    };

    MmuResult translateSlow(Addr vaddr, bool speculative, Cycles walkBudget);

    std::size_t
    parkIndex(std::uint64_t vpn) const
    {
        return static_cast<std::size_t>(
            (vpn * 0x9e3779b97f4a7c15ull) >> 32) & parkMask_;
    }

    PhysAddr parkLineAddr(std::size_t idx) const;

    AddressSpace &space_;
    CacheHierarchy &hierarchy_;
    CacheTlbSchemeParams params_;
    TlbComplex tlb_;
    PagingStructureCaches pscs_;
    PageWalker walker_;
    FastTranslationCache fast_;
    bool fastEnabled_ = true;

    PhysAddr parkBase_;
    std::size_t parkMask_;
    std::vector<ParkSlot> park_;

    Count parkHits_ = 0;
    Count parkMisses_ = 0;
    Count parkInstalls_ = 0;
    Count parkConflicts_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_SCHEME_CACHE_TLB_SCHEME_HH
