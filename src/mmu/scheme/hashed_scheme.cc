#include "mmu/scheme/hashed_scheme.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "util/hash.hh"

namespace atscale
{

HashedScheme::HashedScheme(AddressSpace &space, PhysicalMemory &mem,
                           CacheHierarchy &hierarchy, FrameAllocator &alloc,
                           const MmuParams &params)
    : space_(space), mem_(mem), alloc_(alloc), hierarchy_(hierarchy),
      params_(params.hashed), tlb_(params.tlb),
      fastEnabled_(params.fastPath)
{
}

void
HashedScheme::ensureTable()
{
    if (table_)
        return;
    std::uint64_t capacity = params_.capacityPages;
    if (capacity == 0)
        capacity = std::max<std::uint64_t>(
            space_.reservedBytes() >> pageShift4K, 1024);
    table_ = std::make_unique<HashedPageTable>(mem_, alloc_, capacity);
}

void
HashedScheme::syncMapping(Addr vaddr)
{
    Addr base = vaddr & ~(pageSize4K - 1);
    Translation t = space_.translate(base);
    if (!t.valid)
        return;
    PhysAddr existing;
    if (table_->lookup(base, existing))
        return;
    table_->map(base, t.paddr(base));
    ++mappingsMirrored_;
}

MmuResult
HashedScheme::translateSlow(Addr vaddr, bool speculative, Cycles walkBudget)
{
    MmuResult result;
    TlbLookupResult tlb_result = tlb_.lookup(vaddr);
    result.tlbLevel = tlb_result.level;
    result.tlbExtraLatency = tlb_result.extraLatency;

    if (tlb_result.level != TlbLevel::Miss) {
        result.pageSize = tlb_result.pageSize;
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
        return result;
    }

    // Demand paging stays the radix table's job; the inverted table
    // mirrors the resulting 4 KiB mapping before the timed walk so the
    // hash walk finds what the page-fault handler just created.
    if (!speculative && space_.findVma(vaddr))
        space_.touch(vaddr);
    ensureTable();
    syncMapping(vaddr);

    ++walksInitiated_;
    WalkResult &walk = walkSlot(result);
    walk.startLevel = 0;
    walk.hitLevelAt.fill(-1);
    if (walkBudget <= params_.startupCycles) {
        // Squashed before the hash unit issued anything.
        ++walksAborted_;
        walk.completed = false;
        walk.faulted = false;
        walk.translation = Translation{};
        walk.cycles = walkBudget;
        walk.ptwAccesses = 0;
        walk.loadsAtLevel.fill(0);
        walkCycles_ += walk.cycles;
        return result;
    }

    HashedWalkResult hashed =
        table_->walk(vaddr, hierarchy_, params_.perStepCycles,
                     walkBudget - params_.startupCycles);

    walk.completed = !hashed.aborted;
    walk.faulted = walk.completed && !hashed.found;
    walk.cycles = std::min(params_.startupCycles + hashed.cycles, walkBudget);
    walk.ptwAccesses = hashed.accesses;
    walk.loadsAtLevel = hashed.loadsAtLevel;
    walk.hitLevelAt[0] = hashed.firstLoadLevel;
    walk.translation = Translation{};
    if (hashed.accesses > 1)
        collisionSpills_ += hashed.accesses - 1;
    if (hashed.aborted)
        ++walksAborted_;
    else
        ++walksCompleted_;
    walkCycles_ += walk.cycles;

    if (walk.completed && !walk.faulted) {
        walk.translation.valid = true;
        walk.translation.pageSize = PageSize::Size4K;
        walk.translation.frame = hashed.frame;
        walk.translation.pageBase = vaddr & ~(pageSize4K - 1);
        result.pageSize = PageSize::Size4K;
        tlb_.install(vaddr, result.pageSize);
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
    }
    return result;
}

void
HashedScheme::setFastPath(bool enabled)
{
    fastEnabled_ = enabled;
    if (!enabled)
        fast_.flush();
}

void
HashedScheme::invalidatePage(Addr base, PageSize size)
{
    tlb_.invalidatePage(base, size);
    fast_.invalidatePage(base, size);
    if (!table_)
        return;
    // The listener fires after the radix table was updated, so refresh
    // every mirrored 4 KiB chunk of the remapped page in place (an
    // inverted table cannot erase without tombstones).
    for (Addr page = base; page < base + pageBytes(size);
         page += pageSize4K) {
        Translation t = space_.translate(page);
        if (t.valid)
            table_->remap(page, t.paddr(page));
    }
}

void
HashedScheme::resetStats()
{
    tlb_.resetStats();
    fast_.resetStats();
    walksInitiated_ = 0;
    walksCompleted_ = 0;
    walksAborted_ = 0;
    collisionSpills_ = 0;
    mappingsMirrored_ = 0;
    walkCycles_ = 0;
}

void
HashedScheme::flushAll()
{
    tlb_.flush();
    fast_.flush();
}

std::uint64_t
HashedScheme::stateHash() const
{
    std::uint64_t h = tlb_.stateHash();
    h = hashCombine(h, table_ ? table_->size() : 0);
    h = hashCombine(h, walksInitiated_);
    h = hashCombine(h, walkCycles_);
    return h;
}

void
HashedScheme::registerStats(StatsRegistry &registry,
                            const std::string &prefix) const
{
    tlb_.registerStats(registry, prefix + ".tlb");
    registry.addScalar(prefix + ".hashed.walks_initiated", [this] {
        return static_cast<double>(walksInitiated_);
    }, "hashed walks started on TLB misses");
    registry.addScalar(prefix + ".hashed.walks_completed", [this] {
        return static_cast<double>(walksCompleted_);
    }, "hashed walks that reached a terminal bucket entry");
    registry.addScalar(prefix + ".hashed.walks_aborted", [this] {
        return static_cast<double>(walksAborted_);
    }, "hashed walks squashed by their cycle budget");
    registry.addScalar(prefix + ".hashed.collision_spills", [this] {
        return static_cast<double>(collisionSpills_);
    }, "bucket-line loads beyond the first per walk (collision chains)");
    registry.addScalar(prefix + ".hashed.mappings_mirrored", [this] {
        return static_cast<double>(mappingsMirrored_);
    }, "4 KiB mappings mirrored from the radix table on demand");
    registry.addScalar(prefix + ".hashed.walk_cycles", [this] {
        return static_cast<double>(walkCycles_);
    }, "total cycles across all hashed walks");
    registry.addScalar(prefix + ".hashed.table_bytes", [this] {
        return static_cast<double>(table_ ? table_->tableBytes() : 0);
    }, "physical bytes occupied by the inverted table");
    registry.addScalar(prefix + ".fastpath.hits", [this] {
        return static_cast<double>(fast_.hits());
    }, "translations served by the software fast path (diagnostic)");
    registry.addScalar(prefix + ".fastpath.misses", [this] {
        return static_cast<double>(fast_.misses());
    }, "fast-path probes that fell back to the full path (diagnostic)");
}

} // namespace atscale
