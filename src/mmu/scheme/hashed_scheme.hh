/**
 * @file
 * The hashed (inverted) page-table translation scheme — the paper's
 * Discussion alternative that avoids the radix tree's log-M walk
 * overhead. Promotes vm/hashed_page_table.hh into a full scheme: the
 * same TLB complex and software fast path front it (so the TLB side of
 * Eq-1 is directly comparable with radix), but every TLB miss is served
 * by hashing the VPN and loading bucket lines through the shared
 * hierarchy — ~1 access independent of footprint, at the cost of the
 * radix tree's spatial PTE clustering and MMU-cache skipping.
 *
 * Eq-1 mapping: walks report through a synthesized WalkResult with
 * startLevel 0 (no PSC skipping exists) and hitLevelAt[0] = the level
 * that served the first bucket load; collision spills appear as extra
 * ptwAccesses, so walkCyclesPerPtwAccess stays meaningful.
 */

#ifndef ATSCALE_MMU_SCHEME_HASHED_SCHEME_HH
#define ATSCALE_MMU_SCHEME_HASHED_SCHEME_HH

#include <memory>

#include "mmu/fastpath.hh"
#include "mmu/scheme/translation_scheme.hh"
#include "vm/address_space.hh"
#include "vm/hashed_page_table.hh"

namespace atscale
{

/**
 * Hashed page-table translation: TLB complex + fast path in front, an
 * open-addressing inverted table in simulated physical memory behind.
 *
 * The hashed table mirrors the address space's radix table lazily, one
 * 4 KiB mapping at a time on first miss (an inverted page table is
 * always 4 KiB-granular), so demand paging and remapPage stay the
 * radix table's job and both formats describe the same memory.
 */
class HashedScheme final : public TranslationScheme
{
  public:
    HashedScheme(AddressSpace &space, PhysicalMemory &mem,
                 CacheHierarchy &hierarchy, FrameAllocator &alloc,
                 const MmuParams &params);

    MmuResult
    translate(Addr vaddr, bool speculative, Cycles walkBudget) override
    {
        if (fastEnabled_) {
            MmuResult result;
            if (fast_.tryHit(vaddr, tlb_, result.pageSize)) {
                result.tlbLevel = TlbLevel::L1;
                return result;
            }
        }
        return translateSlow(vaddr, speculative, walkBudget);
    }

    const char *name() const override { return "hashed"; }

    bool fastPathEnabled() const override { return fastEnabled_; }
    void setFastPath(bool enabled) override;

    void invalidatePage(Addr base, PageSize size) override;
    void resetStats() override;
    void flushAll() override;
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const override;
    std::uint64_t stateHash() const override;

    /** The inverted table; nullptr until the first miss builds it. */
    const HashedPageTable *table() const { return table_.get(); }
    const TlbComplex &tlb() const { return tlb_; }

    /** Hashed walks started. */
    Count walksInitiated() const { return walksInitiated_; }
    /** Hashed walks cut short by their budget. */
    Count walksAborted() const { return walksAborted_; }
    /** Bucket loads beyond the first per walk (collision chains). */
    Count collisionSpills() const { return collisionSpills_; }

  private:
    MmuResult translateSlow(Addr vaddr, bool speculative, Cycles walkBudget);

    /** Build the table on first use (capacity from params or space). */
    void ensureTable();
    /** Mirror vaddr's 4 KiB mapping from the radix table, if present. */
    void syncMapping(Addr vaddr);

    AddressSpace &space_;
    PhysicalMemory &mem_;
    FrameAllocator &alloc_;
    CacheHierarchy &hierarchy_;
    HashedSchemeParams params_;
    TlbComplex tlb_;
    FastTranslationCache fast_;
    bool fastEnabled_ = true;
    std::unique_ptr<HashedPageTable> table_;

    Count walksInitiated_ = 0;
    Count walksCompleted_ = 0;
    Count walksAborted_ = 0;
    Count collisionSpills_ = 0;
    Count mappingsMirrored_ = 0;
    Cycles walkCycles_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_SCHEME_HASHED_SCHEME_HH
