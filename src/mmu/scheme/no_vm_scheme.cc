#include "mmu/scheme/no_vm_scheme.hh"

#include "obs/stats_registry.hh"
#include "util/hash.hh"

namespace atscale
{

std::uint64_t
NoVmScheme::stateHash() const
{
    // No cached translation state exists; digest the knob and the
    // access count so lane-vs-standalone comparisons still bite.
    return hashCombine(fnv1a("no_vm"), accesses_ * 0x9e3779b97f4a7c15ull +
                                           params_.perAccessCycles);
}

void
NoVmScheme::registerStats(StatsRegistry &registry,
                          const std::string &prefix) const
{
    registry.addScalar(prefix + ".software.accesses", [this] {
        return static_cast<double>(accesses_);
    }, "accesses charged the fixed software-translation cost");
    registry.addScalar(prefix + ".software.cycles_charged", [this] {
        return static_cast<double>(accesses_ * params_.perAccessCycles);
    }, "total software-translation cycles charged (outside Eq-1 walk "
       "terms; appears in CPI, not WCPI)");
}

} // namespace atscale
