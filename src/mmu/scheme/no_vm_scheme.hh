/**
 * @file
 * The no-virtual-memory baseline scheme (Zagieboylo et al., *The Cost
 * of Software-Based Memory Management Without Virtual Memory*,
 * PAPERS.md): no TLBs, no walker, no translation hardware at all. Every
 * access is charged a fixed software-translation cost — the bounds
 * check / base-offset arithmetic a software-managed single-address-
 * space system pays instead of address translation.
 *
 * Eq-1 mapping: tlbMissesPerAccess is identically zero (every request
 * reports as an L1 "hit"), so the walk-side WCPI terms vanish; the
 * per-access software cost is returned as MmuResult::schemeExtraCycles
 * and charged by the core as stall cycles, visible in CPI and in this
 * scheme's `.software.*` stats rather than in the walk decomposition.
 */

#ifndef ATSCALE_MMU_SCHEME_NO_VM_SCHEME_HH
#define ATSCALE_MMU_SCHEME_NO_VM_SCHEME_HH

#include "mmu/scheme/translation_scheme.hh"

namespace atscale
{

/** Software-managed translation-free baseline. */
class NoVmScheme final : public TranslationScheme
{
  public:
    explicit NoVmScheme(const MmuParams &params) : params_(params.noVm) {}

    MmuResult
    translate(Addr vaddr, bool speculative, Cycles walkBudget) override
    {
        (void)vaddr;
        (void)speculative;
        (void)walkBudget;
        ++accesses_;
        MmuResult result;
        // L1 "hit": zero TLB/walk events reach the counters, exactly as
        // hardware with no translation machinery would report.
        result.tlbLevel = TlbLevel::L1;
        result.schemeExtraCycles = params_.perAccessCycles;
        return result;
    }

    const char *name() const override { return "no_vm"; }

    /** Nothing caches translations, so nothing needs dropping. */
    void invalidatePage(Addr base, PageSize size) override
    {
        (void)base;
        (void)size;
    }

    void resetStats() override { accesses_ = 0; }
    void flushAll() override {}

    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const override;

    std::uint64_t stateHash() const override;

    /** Accesses charged the software-translation cost. */
    Count accesses() const { return accesses_; }

  private:
    NoVmSchemeParams params_;
    Count accesses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_SCHEME_NO_VM_SCHEME_HH
