#include "mmu/scheme/radix_scheme.hh"

#include "obs/stats_registry.hh"
#include "util/hash.hh"

namespace atscale
{

RadixScheme::RadixScheme(AddressSpace &space, PhysicalMemory &mem,
                         CacheHierarchy &hierarchy, const MmuParams &params)
    : space_(space), tlb_(params.tlb), pscs_(params.psc),
      walker_(mem, hierarchy, pscs_, params.walker),
      fastEnabled_(params.fastPath)
{
}

MmuResult
RadixScheme::translateSlow(Addr vaddr, bool speculative, Cycles walkBudget)
{
    MmuResult result;
    TlbLookupResult tlb_result = tlb_.lookup(vaddr);
    result.tlbLevel = tlb_result.level;
    result.tlbExtraLatency = tlb_result.extraLatency;

    if (tlb_result.level != TlbLevel::Miss) {
        result.pageSize = tlb_result.pageSize;
        // L1 hit, or L2 hit that just refilled L1: either way the
        // translation is now first-level resident and worth shadowing.
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
        return result;
    }

    // Correct-path misses to not-yet-populated pages take the OS demand
    // paging path first, so the hardware walk below finds a present leaf.
    // Speculative requests must not page anything in.
    if (!speculative && space_.findVma(vaddr))
        space_.touch(vaddr);

    WalkResult &walk = walkSlot(result);
    walk = walker_.walk(vaddr, space_.pageTable(), walkBudget);

    if (walk.completed && !walk.faulted) {
        result.pageSize = walk.translation.pageSize;
        tlb_.install(vaddr, result.pageSize);
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
    }
    return result;
}

void
RadixScheme::setFastPath(bool enabled)
{
    fastEnabled_ = enabled;
    if (!enabled)
        fast_.flush();
}

void
RadixScheme::invalidatePage(Addr base, PageSize size)
{
    tlb_.invalidatePage(base, size);
    pscs_.invalidatePage(base, size);
    fast_.invalidatePage(base, size);
}

void
RadixScheme::resetStats()
{
    tlb_.resetStats();
    pscs_.resetStats();
    walker_.resetStats();
    fast_.resetStats();
}

void
RadixScheme::flushAll()
{
    tlb_.flush();
    pscs_.flush();
    fast_.flush();
}

std::uint64_t
RadixScheme::stateHash() const
{
    return hashCombine(tlb_.stateHash(), pscs_.stateHash());
}

void
RadixScheme::registerStats(StatsRegistry &registry,
                           const std::string &prefix) const
{
    tlb_.registerStats(registry, prefix + ".tlb");
    pscs_.registerStats(registry, prefix + ".psc");
    walker_.registerStats(registry, prefix + ".walker");
    registry.addScalar(prefix + ".fastpath.hits", [this] {
        return static_cast<double>(fast_.hits());
    }, "translations served by the software fast path (diagnostic)");
    registry.addScalar(prefix + ".fastpath.misses", [this] {
        return static_cast<double>(fast_.misses());
    }, "fast-path probes that fell back to the full path (diagnostic)");
    registry.addScalar(prefix + ".fastpath.installs", [this] {
        return static_cast<double>(fast_.installs());
    }, "fast-path shadow entries installed (diagnostic)");
    registry.addScalar(prefix + ".fastpath.invalidations", [this] {
        return static_cast<double>(fast_.invalidations());
    }, "fast-path entries dropped by page invalidations (diagnostic)");
    registry.addScalar(prefix + ".fastpath.bypass_windows", [this] {
        return static_cast<double>(fast_.bypassWindows());
    }, "adaptation windows that bypassed the table as thrashing "
       "(diagnostic)");
}

} // namespace atscale
