#include "mmu/scheme/radix_scheme.hh"

#include "obs/stats_registry.hh"
#include "util/hash.hh"

namespace atscale
{

RadixScheme::RadixScheme(AddressSpace &space, PhysicalMemory &mem,
                         CacheHierarchy &hierarchy, const MmuParams &params)
    : space_(space), tlb_(params.tlb), pscs_(params.psc),
      walker_(mem, hierarchy, pscs_, params.walker),
      fastEnabled_(params.fastPath)
{
}

MmuResult
RadixScheme::translateSlow(Addr vaddr, bool speculative, Cycles walkBudget)
{
    MmuResult result;
    TlbLookupResult tlb_result = tlb_.lookup(vaddr);
    result.tlbLevel = tlb_result.level;
    result.tlbExtraLatency = tlb_result.extraLatency;

    if (tlb_result.level != TlbLevel::Miss) {
        result.pageSize = tlb_result.pageSize;
        // L1 hit, or L2 hit that just refilled L1: either way the
        // translation is now first-level resident and worth shadowing.
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
        return result;
    }

    // Correct-path misses to not-yet-populated pages take the OS demand
    // paging path first, so the hardware walk below finds a present leaf.
    // Speculative requests must not page anything in.
    if (!speculative && space_.findVma(vaddr))
        space_.touch(vaddr);

    WalkResult &walk = walkSlot(result);
    walk = walker_.walk(vaddr, space_.pageTable(), walkBudget);

    if (walk.completed && !walk.faulted) {
        result.pageSize = walk.translation.pageSize;
        tlb_.install(vaddr, result.pageSize);
        if (fastEnabled_)
            fast_.install(vaddr, result.pageSize, tlb_);
    }
    return result;
}

void
RadixScheme::translateBatch(std::span<const Addr> vaddrs,
                            std::span<MmuResult> out, bool speculative,
                            Cycles walkBudget)
{
    const std::size_t n = vaddrs.size();

    if (fastEnabled_ && n > 0)
        fast_.prefetch(vaddrs[0]);

    std::size_t i = 0;
    while (i < n) {
        // Length of the run of consecutive references inside one 4 KiB
        // page. Sequential streams produce long runs (64 references per
        // page at cache-line stride); random streams degenerate to
        // run == 1 and take the plain scalar path below.
        const std::uint64_t vpn = vaddrs[i] >> pageShift4K;
        std::size_t run = 1;
        while (i + run < n && (vaddrs[i + run] >> pageShift4K) == vpn) {
            // Tentative L1-hit header for the follower, written while its
            // result line is already in the store buffer; the replay
            // branch below patches pageSize in, and the fallback path
            // overwrites the whole result, so a failed replay sees none
            // of this.
            out[i + run].tlbLevel = TlbLevel::L1;
            out[i + run].tlbExtraLatency = 0;
            out[i + run].schemeExtraCycles = 0;
            ++run;
        }

        // Touch the NEXT run's fast-path slot while this run translates
        // and replays — a purely host-side hint (no simulated state is
        // read or written) that hides the slot arrays' load latency
        // without a separate whole-chunk screening pass.
        if (fastEnabled_ && i + run < n)
            fast_.prefetch(vaddrs[i + run]);

        out[i] = translate(vaddrs[i], speculative, walkBudget);

        if (run > 1) {
            // Every remaining reference of the run would resolve as an
            // L1 hit on whatever entry the first translation left
            // first-level resident (an L1 hit touched it, an L2 hit
            // refilled it, a completed walk installed it). Replay all
            // run-1 hits in O(1); if the page is not resident (faulted
            // or squashed walk), re-translate each reference exactly as
            // the scalar sequence would.
            TlbFastHit hit;
            if (tlb_.locate(vaddrs[i], out[i].pageSize, hit) &&
                tlb_.tryReplayL1HitRun(hit, static_cast<Count>(run - 1))) {
                // Complete the hit headers staged during the run scan.
                // Only the header is ever written, not the whole 128-byte
                // result: the walk fields are contractually undefined on
                // TLB hits (MmuResult::walk asserts), so leaving them
                // unwritten halves the replay loop's store traffic.
                const PageSize ps = out[i].pageSize;
                for (std::size_t j = 1; j < run; ++j)
                    out[i + j].pageSize = ps;
            } else {
                for (std::size_t j = 1; j < run; ++j)
                    out[i + j] =
                        translate(vaddrs[i + j], speculative, walkBudget);
            }
        }
        i += run;
    }
}

void
RadixScheme::setFastPath(bool enabled)
{
    fastEnabled_ = enabled;
    if (!enabled)
        fast_.flush();
}

void
RadixScheme::invalidatePage(Addr base, PageSize size)
{
    tlb_.invalidatePage(base, size);
    pscs_.invalidatePage(base, size);
    fast_.invalidatePage(base, size);
}

void
RadixScheme::resetStats()
{
    tlb_.resetStats();
    pscs_.resetStats();
    walker_.resetStats();
    fast_.resetStats();
}

void
RadixScheme::flushAll()
{
    tlb_.flush();
    pscs_.flush();
    fast_.flush();
}

std::uint64_t
RadixScheme::stateHash() const
{
    return hashCombine(tlb_.stateHash(), pscs_.stateHash());
}

void
RadixScheme::registerStats(StatsRegistry &registry,
                           const std::string &prefix) const
{
    tlb_.registerStats(registry, prefix + ".tlb");
    pscs_.registerStats(registry, prefix + ".psc");
    walker_.registerStats(registry, prefix + ".walker");
    registry.addScalar(prefix + ".fastpath.hits", [this] {
        return static_cast<double>(fast_.hits());
    }, "translations served by the software fast path (diagnostic)");
    registry.addScalar(prefix + ".fastpath.misses", [this] {
        return static_cast<double>(fast_.misses());
    }, "fast-path probes that fell back to the full path (diagnostic)");
    registry.addScalar(prefix + ".fastpath.installs", [this] {
        return static_cast<double>(fast_.installs());
    }, "fast-path shadow entries installed (diagnostic)");
    registry.addScalar(prefix + ".fastpath.invalidations", [this] {
        return static_cast<double>(fast_.invalidations());
    }, "fast-path entries dropped by page invalidations (diagnostic)");
    registry.addScalar(prefix + ".fastpath.bypass_windows", [this] {
        return static_cast<double>(fast_.bypassWindows());
    }, "adaptation windows that bypassed the table as thrashing "
       "(diagnostic)");
}

} // namespace atscale
