/**
 * @file
 * The radix translation scheme: the paper's Haswell model — TLB complex
 * + paging-structure caches + hardware page-table walker, with the
 * software fast path (mmu/fastpath.hh) short-circuiting repeat L1 TLB
 * hits. This is the pre-seam MMU moved behind TranslationScheme,
 * bit-for-bit: the golden and differential suites
 * (tests/test_golden_stats.cc, tests/test_scheme_diff.cc) pin its
 * counters, state hash, and JSON output to the pre-refactor values.
 */

#ifndef ATSCALE_MMU_SCHEME_RADIX_SCHEME_HH
#define ATSCALE_MMU_SCHEME_RADIX_SCHEME_HH

#include "mmu/fastpath.hh"
#include "mmu/scheme/translation_scheme.hh"
#include "vm/address_space.hh"

namespace atscale
{

/**
 * Radix-walk translation. Demand-populates the address space on
 * correct-path misses (the OS page-fault handler analogue), walks the
 * real page table for every TLB miss, and installs completed
 * translations.
 */
class RadixScheme final : public TranslationScheme
{
  public:
    /**
     * @param space the address space being translated
     * @param mem physical memory (PTE storage)
     * @param hierarchy cache hierarchy shared with data accesses
     */
    RadixScheme(AddressSpace &space, PhysicalMemory &mem,
                CacheHierarchy &hierarchy, const MmuParams &params);

    /**
     * The hot case — a repeat hit on a first-level-resident page — is
     * served by the fast path with bit-identical counter and replacement
     * state to the full lookup (see mmu/fastpath.hh for the contract).
     * Neither path consumes RNG on a hit, and speculative/walkBudget
     * only matter on misses, so the short-circuit is safe for wrong-path
     * requests too. Inline (and the class final) so the MMU facade's
     * devirtualized radix dispatch keeps the fast-path PR's throughput.
     */
    MmuResult
    translate(Addr vaddr, bool speculative, Cycles walkBudget) override
    {
        if (fastEnabled_) {
            MmuResult result;
            if (fast_.tryHit(vaddr, tlb_, result.pageSize)) {
                result.tlbLevel = TlbLevel::L1;
                return result;
            }
        }
        return translateSlow(vaddr, speculative, walkBudget);
    }

    /**
     * Batch translate with equal-VPN run coalescing: the first reference
     * of each same-4-KiB-page run goes through the full translate()
     * path; the run's remainder — L1 hits on whatever entry that left
     * first-level resident — is replayed in O(1) via
     * TlbComplex::tryReplayL1HitRun. Falls back to the scalar loop for
     * any run whose page did not end up first-level resident (faulted or
     * squashed walks). A prefetch pre-pass walks the chunk's fast-path
     * slots so random probes overlap their host-cache misses.
     * Bit-identical to the scalar sequence (tests/test_batch_diff.cc).
     */
    void translateBatch(std::span<const Addr> vaddrs,
                        std::span<MmuResult> out, bool speculative,
                        Cycles walkBudget) override;

    /** Host-prefetch hint for an upcoming translate (no state touched). */
    void
    prefetchTranslation(Addr vaddr) const
    {
        if (fastEnabled_)
            fast_.prefetch(vaddr);
    }

    const char *name() const override { return "radix"; }

    TlbComplex &tlb() { return tlb_; }
    PagingStructureCaches &pscs() { return pscs_; }
    PageWalker &walker() { return walker_; }
    const TlbComplex &tlb() const { return tlb_; }
    const PagingStructureCaches &pscs() const { return pscs_; }
    const PageWalker &walker() const { return walker_; }
    FastTranslationCache &fastCache() { return fast_; }
    const FastTranslationCache &fastCache() const { return fast_; }

    /** Whether the fast path is consulted. */
    bool fastPathEnabled() const override { return fastEnabled_; }
    /** Enable/disable the fast path at run time (disabling drops it). */
    void setFastPath(bool enabled) override;

    void invalidatePage(Addr base, PageSize size) override;
    void resetStats() override;
    void flushAll() override;
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const override;

    /**
     * Digest of TLB contents/recency/stats and PSC contents/recency/
     * stats. The fast-path table is deliberately excluded — it is a
     * shadow structure whose diagnostic counters legitimately differ
     * between fast path on and off.
     */
    std::uint64_t stateHash() const override;

  private:
    /** The full lookup/demand-page/walk/install path. */
    MmuResult translateSlow(Addr vaddr, bool speculative, Cycles walkBudget);

    AddressSpace &space_;
    TlbComplex tlb_;
    PagingStructureCaches pscs_;
    PageWalker walker_;
    FastTranslationCache fast_;
    bool fastEnabled_ = true;
};

} // namespace atscale

#endif // ATSCALE_MMU_SCHEME_RADIX_SCHEME_HH
