#include "mmu/scheme/registry.hh"

#include "mmu/scheme/cache_tlb_scheme.hh"
#include "mmu/scheme/hashed_scheme.hh"
#include "mmu/scheme/no_vm_scheme.hh"
#include "mmu/scheme/radix_scheme.hh"
#include "util/logging.hh"

namespace atscale
{

namespace
{

/**
 * The closed scheme-name vocabulary (lint R8: every TranslationScheme
 * subclass must appear in this table and in makeTranslationScheme).
 */
constexpr const char *kSchemeNames[] = {
    "radix",     // RadixScheme
    "hashed",    // HashedScheme
    "cache_tlb", // CacheTlbScheme
    "no_vm",     // NoVmScheme
};

} // namespace

const std::vector<std::string> &
schemeNames()
{
    static const std::vector<std::string> names(std::begin(kSchemeNames),
                                                std::end(kSchemeNames));
    return names;
}

bool
isTranslationScheme(const std::string &name)
{
    for (const char *known : kSchemeNames)
        if (name == known)
            return true;
    return false;
}

std::string
schemeNameList()
{
    std::string list;
    for (const char *known : kSchemeNames) {
        if (!list.empty())
            list += ", ";
        list += known;
    }
    return list;
}

std::unique_ptr<TranslationScheme>
makeTranslationScheme(AddressSpace &space, PhysicalMemory &mem,
                      CacheHierarchy &hierarchy, FrameAllocator *alloc,
                      const MmuParams &params)
{
    const std::string &name = params.scheme;
    if (name == "radix")
        return std::make_unique<RadixScheme>(space, mem, hierarchy, params);
    if (name == "hashed") {
        fatal_if(alloc == nullptr, "translation scheme 'hashed' needs a "
                 "frame allocator for its table storage");
        return std::make_unique<HashedScheme>(space, mem, hierarchy, *alloc,
                                              params);
    }
    if (name == "cache_tlb") {
        fatal_if(alloc == nullptr, "translation scheme 'cache_tlb' needs a "
                 "frame allocator for its park lines");
        return std::make_unique<CacheTlbScheme>(space, mem, hierarchy,
                                                *alloc, params);
    }
    if (name == "no_vm")
        return std::make_unique<NoVmScheme>(params);
    fatal("unknown translation scheme '%s' (known: %s)", name.c_str(),
          schemeNameList().c_str());
}

} // namespace atscale
