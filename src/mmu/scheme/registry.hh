/**
 * @file
 * The translation-scheme registry: name -> scheme construction, plus
 * the closed name vocabulary. Every TranslationScheme subclass must be
 * constructible here and listed in kSchemeNames (lint rule R8 enforces
 * both, mirroring R7's closed event vocabulary).
 */

#ifndef ATSCALE_MMU_SCHEME_REGISTRY_HH
#define ATSCALE_MMU_SCHEME_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "mmu/scheme/translation_scheme.hh"

namespace atscale
{

class AddressSpace;
class PhysicalMemory;
class CacheHierarchy;
class FrameAllocator;

/** All registered scheme names, in declared (stable) order. */
const std::vector<std::string> &schemeNames();

/** Whether `name` names a registered scheme. */
bool isTranslationScheme(const std::string &name);

/** Comma-separated scheme names for error messages and --help text. */
std::string schemeNameList();

/**
 * Construct the scheme params.scheme names. fatal() on an unknown name,
 * and on schemes that need physical storage (hashed, cache_tlb) when no
 * frame allocator is supplied.
 *
 * @param alloc frame allocator for schemes that allocate simulated
 *        physical storage; may be nullptr for schemes that do not
 */
std::unique_ptr<TranslationScheme>
makeTranslationScheme(AddressSpace &space, PhysicalMemory &mem,
                      CacheHierarchy &hierarchy, FrameAllocator *alloc,
                      const MmuParams &params);

} // namespace atscale

#endif // ATSCALE_MMU_SCHEME_REGISTRY_HH
