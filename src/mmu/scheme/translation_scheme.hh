/**
 * @file
 * The translation-scheme seam: one interface every translation
 * architecture implements, so radix walking, hashed page tables,
 * cache-parked TLB entries, and a no-virtual-memory baseline all run in
 * the same sweeps over the same reference streams (ROADMAP item 2).
 *
 * A scheme owns every structure between "the core asked for vaddr" and
 * "here is a timed translation": TLBs, walkers, software caches, or
 * nothing at all. The MMU facade (mmu/mmu.hh) holds exactly one scheme
 * and forwards the TranslationListener invalidation plumbing to it.
 *
 * Schemes are constructed by name through the registry
 * (mmu/scheme/registry.hh); lint rule R8 enforces that every subclass is
 * reachable from the registry and registers its statistics.
 */

#ifndef ATSCALE_MMU_SCHEME_TRANSLATION_SCHEME_HH
#define ATSCALE_MMU_SCHEME_TRANSLATION_SCHEME_HH

#include <cassert>
#include <span>
#include <string>

#include "mmu/paging_structure_cache.hh"
#include "mmu/tlb_complex.hh"
#include "mmu/walker.hh"
#include "vm/page_size.hh"

namespace atscale
{

class StatsRegistry;

/** `hashed` scheme knobs (mmu/scheme/hashed_scheme.hh). */
struct HashedSchemeParams
{
    /** Fixed walker cycles per bucket-line load (hash unit FSM). */
    Cycles perStepCycles = 2;
    /** Fixed cycles to start a hashed walk (hash + arbitration). */
    Cycles startupCycles = 5;
    /**
     * Table capacity in 4 KiB mappings; 0 sizes the table from the
     * address space's reserved bytes at first use.
     */
    std::uint64_t capacityPages = 0;
};

/** `cache_tlb` scheme knobs (mmu/scheme/cache_tlb_scheme.hh). */
struct CacheTlbSchemeParams
{
    /**
     * Cache lines reserved for parked translations (rounded up to a
     * power of two). Each line holds one parked 4 KiB-VPN entry.
     */
    std::uint64_t parkLines = 1ull << 16;
    /** Fixed cycles per park probe beyond the data-hierarchy latency. */
    Cycles probeExtraCycles = 2;
};

/** `no_vm` scheme knobs (mmu/scheme/no_vm_scheme.hh). */
struct NoVmSchemeParams
{
    /** Fixed software-translation cycles charged per memory access. */
    Cycles perAccessCycles = 4;
};

/** MMU configuration. */
struct MmuParams
{
    TlbParams tlb;
    PscParams psc;
    WalkerParams walker;
    /** Enable the software translation fast path (exact; see fastpath.hh). */
    bool fastPath = true;
    /** Translation scheme name (see mmu/scheme/registry.hh). */
    std::string scheme = "radix";
    HashedSchemeParams hashed;
    CacheTlbSchemeParams cacheTlb;
    NoVmSchemeParams noVm;
};

/** Result of one translation request. */
struct MmuResult
{
    /** Where the TLB lookup was satisfied (Miss => a walk happened). */
    TlbLevel tlbLevel = TlbLevel::Miss;
    /** Extra cycles on the TLB lookup path (L2 TLB hits). */
    Cycles tlbExtraLatency = 0;
    /** Page size of the translation (valid unless the walk aborted). */
    PageSize pageSize = PageSize::Size4K;
    /**
     * Cycles the scheme charges outside the TLB/walk accounting — the
     * per-access software cost of schemes with no translation hardware
     * (no_vm). Always 0 for hardware schemes, so the radix path is
     * bit-identical to the pre-seam MMU.
     */
    Cycles schemeExtraCycles = 0;

    /**
     * Walk details; meaningful only when tlbLevel == Miss. On TLB hits
     * the accounting fields are deliberately left unwritten (fastpath.hh
     * depends on the hit path doing zero walk bookkeeping), so debug
     * builds assert here and poison the storage (see poisonWalk) to
     * catch any unguarded read dynamically; lint rule R4 catches them
     * statically. Release builds compile down to a plain field access.
     */
    const WalkResult &
    walk() const
    {
        assert(tlbLevel == TlbLevel::Miss &&
               "MmuResult::walk read on a TLB hit (fields are undefined)");
        return walk_;
    }

#ifndef NDEBUG
    MmuResult() { poisonWalk(); }

    /**
     * Debug-only: fill the walk accounting fields with a recognizable
     * garbage pattern so a read that slips past the assert (e.g. via
     * memcpy of the whole struct) shows up as implausible numbers
     * instead of plausible stale ones.
     */
    void
    poisonWalk()
    {
        walk_.cycles = static_cast<Cycles>(0xDEADDEADDEADDEADull);
        walk_.ptwAccesses = static_cast<Count>(0xDEADDEADDEADDEADull);
        walk_.startLevel = -0xDEAD;
        walk_.loadsAtLevel.fill(static_cast<Count>(0xDEADDEADDEADDEADull));
        walk_.hitLevelAt.fill(-13);
    }
#else
    MmuResult() = default;
#endif

  private:
    friend class TranslationScheme;
    WalkResult walk_;
};

/**
 * One translation architecture behind the MMU facade.
 *
 * Contract (docs/TRANSLATION_SCHEMES.md spells out the details):
 *  - translate() is the only timed entry point. It must be a pure
 *    function of the scheme's own state — no RNG, no wall clock (lint
 *    R1) — so runs stay bit-reproducible and lane-exact.
 *  - Walk accounting is reported through the standard WalkResult so the
 *    Eq-1 WCPI decomposition stays comparable across schemes; schemes
 *    with no radix walk synthesize one (see hashed_scheme.cc).
 *  - invalidatePage() must drop or refresh every cached translation
 *    covering the page — the remapPage exactness rules from the fast
 *    path PR apply to every scheme.
 *  - registerStats() must register every counter the scheme keeps
 *    (lint R3/R8) so the observability layer sees all schemes alike.
 */
class TranslationScheme
{
  public:
    virtual ~TranslationScheme() = default;

    /**
     * Translate vaddr.
     *
     * @param speculative the request is from a speculative (possibly
     *        wrong) path: no demand paging, and aborted walks are normal
     * @param walkBudget cycles after which an initiated walk is squashed
     */
    virtual MmuResult translate(Addr vaddr, bool speculative,
                                Cycles walkBudget) = 0;

    /**
     * Translate a batch of addresses, exactly as if translate() had been
     * called once per element in order with no intervening operations.
     * The contract is bit-exactness, not just result equality: counters,
     * replacement metadata, and demand-paging side effects must all match
     * the scalar sequence (the batch differential suite compares state
     * hashes and exported JSON). The default is the scalar loop itself;
     * schemes override it only when they can prove a faster path
     * equivalent (see RadixScheme::translateBatch).
     *
     * @pre out.size() >= vaddrs.size()
     */
    virtual void
    translateBatch(std::span<const Addr> vaddrs, std::span<MmuResult> out,
                   bool speculative, Cycles walkBudget)
    {
        for (std::size_t i = 0; i < vaddrs.size(); ++i)
            out[i] = translate(vaddrs[i], speculative, walkBudget);
    }

    /** Registry name of this scheme ("radix", "hashed", ...). */
    virtual const char *name() const = 0;

    /** Whether a software fast path is consulted (radix-family only). */
    virtual bool fastPathEnabled() const { return false; }
    /** Enable/disable the fast path; a no-op for schemes without one. */
    virtual void setFastPath(bool enabled) { (void)enabled; }

    /**
     * Drop any translation state for the page at `base` of size `size`.
     * The invlpg analogue, driven by address-space remap notifications.
     */
    virtual void invalidatePage(Addr base, PageSize size) = 0;

    /** Reset all statistics (cached contents retained). */
    virtual void resetStats() = 0;
    /** Flush all cached translation state. */
    virtual void flushAll() = 0;

    /** Register every scheme statistic under "<prefix>.". */
    virtual void registerStats(StatsRegistry &registry,
                               const std::string &prefix) const = 0;

    /**
     * Process-stable digest of all exactness-relevant translation state
     * (used by the differential/lane suites to compare end states).
     */
    virtual std::uint64_t stateHash() const = 0;

  protected:
    /**
     * Writable access to the walk slot for scheme implementations.
     * Callers populate it only on the miss path, mirroring the
     * MmuResult::walk() read-side contract.
     */
    static WalkResult &
    walkSlot(MmuResult &result)
    {
        assert(result.tlbLevel == TlbLevel::Miss &&
               "walk slot is populated only for TLB misses");
        return result.walk_;
    }
};

} // namespace atscale

#endif // ATSCALE_MMU_SCHEME_TRANSLATION_SCHEME_HH
