#include "mmu/tlb.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace atscale
{

Tlb::Tlb(std::string name, const CacheGeometry &geom,
         std::initializer_list<PageSize> sizes)
    : array_(std::move(name), geom), sizes_(sizes)
{
    panic_if(sizes_.empty(), "TLB must support at least one page size");
}

bool
Tlb::holds(PageSize size) const
{
    return std::find(sizes_.begin(), sizes_.end(), size) != sizes_.end();
}

void
Tlb::registerStats(StatsRegistry &registry, const std::string &prefix) const
{
    registry.addScalar(prefix + ".hits", [this] {
        return static_cast<double>(hits());
    }, "lookups satisfied by this array");
    registry.addScalar(prefix + ".misses", [this] {
        return static_cast<double>(misses());
    }, "lookups this array missed");
}

void
Tlb::insert(Addr vaddr, PageSize size)
{
    panic_if(!holds(size), "TLB '%s' cannot hold %s pages",
             array_.name().c_str(), pageSizeName(size).c_str());
    array_.fill(key(vaddr, size));
}

std::uint64_t
Tlb::stateHash() const
{
    return hashCombine(array_.stateHash(), misses_);
}

} // namespace atscale
