/**
 * @file
 * A translation lookaside buffer: a set-associative array of page-number
 * tags for one or more page sizes.
 */

#ifndef ATSCALE_MMU_TLB_HH
#define ATSCALE_MMU_TLB_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "vm/page_size.hh"

namespace atscale
{

class StatsRegistry;

/**
 * A TLB array. Each entry tags a (virtual page number, page size) pair;
 * lookups probe every page size the array supports, mirroring how a
 * unified second-level TLB holds both 4 KiB and 2 MiB translations.
 */
class Tlb
{
  public:
    /**
     * @param name array name for reports
     * @param geom geometry (sets x ways)
     * @param sizes page sizes this array can hold
     */
    Tlb(std::string name, const CacheGeometry &geom,
        std::initializer_list<PageSize> sizes);

    /**
     * Look up vaddr; on a hit, returns true and reports the entry's page
     * size through size_out.
     */
    bool
    lookup(Addr vaddr, PageSize &size_out)
    {
        for (PageSize size : sizes_) {
            if (array_.access(key(vaddr, size))) {
                size_out = size;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    /** Insert a translation for the page containing vaddr. */
    void insert(Addr vaddr, PageSize size);

    /** Invalidate the entry for the page containing vaddr, if present. */
    bool
    invalidate(Addr vaddr, PageSize size)
    {
        return array_.invalidate(key(vaddr, size));
    }

    /** True iff this array can hold the given page size. */
    bool holds(PageSize size) const;

    /** Invalidate all entries. */
    void flush() { array_.flush(); }

    /** Lifetime hits. */
    Count hits() const { return array_.hits(); }
    /** Lifetime misses (every probe set that missed counts once). */
    Count misses() const { return misses_; }
    /** Reset statistics. */
    void
    resetStats()
    {
        array_.resetStats();
        misses_ = 0;
    }

    const std::string &name() const { return array_.name(); }
    Count capacity() const { return array_.capacity(); }

    /** Register this array's statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    /**
     * Key encoding: virtual page number in the low bits (so the set
     * index uses VPN bits), page size tagged in the high bits (VPNs use
     * at most 36 bits of a 48-bit address space). Public so the
     * fast-path layer can compute direct-way coordinates.
     */
    static std::uint64_t
    key(Addr vaddr, PageSize size)
    {
        return (static_cast<std::uint64_t>(size) << 56) |
               (vaddr >> pageShift(size));
    }

    // --- Fast-path support (see mmu/fastpath.hh) ------------------------

    /** The underlying tag array, for direct-way validation and replay. */
    SetAssocCache &array() { return array_; }
    const SetAssocCache &array() const { return array_; }

    /**
     * Replay the bookkeeping of a lookup() that missed every supported
     * page size: one tag-array miss per probed size plus this array's
     * own miss count. Exactly what lookup() does when it returns false.
     */
    void
    noteLookupMiss()
    {
        for (std::size_t i = 0; i < sizes_.size(); ++i)
            array_.noteMiss();
        ++misses_;
    }

    /** Replay n consecutive noteLookupMiss() calls in O(1). */
    void
    noteLookupMissRun(Count n)
    {
        array_.noteMissRun(static_cast<Count>(sizes_.size()) * n);
        misses_ += n;
    }

    /** Process-stable digest of contents, recency, and statistics. */
    std::uint64_t stateHash() const;

  private:
    SetAssocCache array_;
    std::vector<PageSize> sizes_;
    Count misses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_TLB_HH
