/**
 * @file
 * A translation lookaside buffer: a set-associative array of page-number
 * tags for one or more page sizes.
 */

#ifndef ATSCALE_MMU_TLB_HH
#define ATSCALE_MMU_TLB_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "vm/page_size.hh"

namespace atscale
{

class StatsRegistry;

/**
 * A TLB array. Each entry tags a (virtual page number, page size) pair;
 * lookups probe every page size the array supports, mirroring how a
 * unified second-level TLB holds both 4 KiB and 2 MiB translations.
 */
class Tlb
{
  public:
    /**
     * @param name array name for reports
     * @param geom geometry (sets x ways)
     * @param sizes page sizes this array can hold
     */
    Tlb(std::string name, const CacheGeometry &geom,
        std::initializer_list<PageSize> sizes);

    /**
     * Look up vaddr; on a hit, returns true and reports the entry's page
     * size through size_out.
     */
    bool lookup(Addr vaddr, PageSize &size_out);

    /** Insert a translation for the page containing vaddr. */
    void insert(Addr vaddr, PageSize size);

    /** True iff this array can hold the given page size. */
    bool holds(PageSize size) const;

    /** Invalidate all entries. */
    void flush() { array_.flush(); }

    /** Lifetime hits. */
    Count hits() const { return array_.hits(); }
    /** Lifetime misses (every probe set that missed counts once). */
    Count misses() const { return misses_; }
    /** Reset statistics. */
    void
    resetStats()
    {
        array_.resetStats();
        misses_ = 0;
    }

    const std::string &name() const { return array_.name(); }
    Count capacity() const { return array_.capacity(); }

    /** Register this array's statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    /**
     * Key encoding: virtual page number in the low bits (so the set
     * index uses VPN bits), page size tagged in the high bits (VPNs use
     * at most 36 bits of a 48-bit address space).
     */
    static std::uint64_t
    key(Addr vaddr, PageSize size)
    {
        return (static_cast<std::uint64_t>(size) << 56) |
               (vaddr >> pageShift(size));
    }

    SetAssocCache array_;
    std::vector<PageSize> sizes_;
    Count misses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_TLB_HH
