#include "mmu/tlb_complex.hh"

#include "obs/stats_registry.hh"

namespace atscale
{

TlbComplex::TlbComplex(const TlbParams &params)
    : params_(params),
      l1_4k_("dTLB-L1-4K", params.l1_4k, {PageSize::Size4K}),
      l1_2m_("dTLB-L1-2M", params.l1_2m, {PageSize::Size2M}),
      l1_1g_("dTLB-L1-1G", params.l1_1g, {PageSize::Size1G}),
      l2_("STLB", params.l2, {PageSize::Size4K, PageSize::Size2M})
{
}

Tlb &
TlbComplex::l1For(PageSize size)
{
    switch (size) {
      case PageSize::Size4K:
        return l1_4k_;
      case PageSize::Size2M:
        return l1_2m_;
      case PageSize::Size1G:
        return l1_1g_;
    }
    return l1_4k_;
}

TlbLookupResult
TlbComplex::lookup(Addr vaddr)
{
    ++lookups_;
    TlbLookupResult result;

    // All first-level arrays are probed in parallel in hardware.
    for (Tlb *tlb : {&l1_4k_, &l1_2m_, &l1_1g_}) {
        if (tlb->lookup(vaddr, result.pageSize)) {
            result.level = TlbLevel::L1;
            return result;
        }
    }

    if (l2_.lookup(vaddr, result.pageSize)) {
        result.level = TlbLevel::L2;
        result.extraLatency = params_.l2HitExtraLatency;
        // Refill the first level on the way back.
        l1For(result.pageSize).insert(vaddr, result.pageSize);
        return result;
    }

    ++misses_;
    result.level = TlbLevel::Miss;
    return result;
}

void
TlbComplex::install(Addr vaddr, PageSize size)
{
    l1For(size).insert(vaddr, size);
    if (l2_.holds(size))
        l2_.insert(vaddr, size);
}

void
TlbComplex::flush()
{
    l1_4k_.flush();
    l1_2m_.flush();
    l1_1g_.flush();
    l2_.flush();
}

void
TlbComplex::resetStats()
{
    l1_4k_.resetStats();
    l1_2m_.resetStats();
    l1_1g_.resetStats();
    l2_.resetStats();
    lookups_ = 0;
    misses_ = 0;
}

Count
TlbComplex::l1Hits() const
{
    return l1_4k_.hits() + l1_2m_.hits() + l1_1g_.hits();
}

void
TlbComplex::registerStats(StatsRegistry &registry,
                          const std::string &prefix) const
{
    registry.addScalar(prefix + ".lookups", [this] {
        return static_cast<double>(lookups());
    }, "translation requests");
    registry.addScalar(prefix + ".l1_hits", [this] {
        return static_cast<double>(l1Hits());
    }, "hits across the first-level arrays");
    registry.addScalar(prefix + ".l2_hits", [this] {
        return static_cast<double>(l2Hits());
    }, "second-level (STLB) hits");
    registry.addScalar(prefix + ".misses", [this] {
        return static_cast<double>(misses());
    }, "lookups that missed both levels");
    for (const Tlb *tlb : {&l1_4k_, &l1_2m_, &l1_1g_, &l2_})
        tlb->registerStats(registry, prefix + "." + tlb->name());
}

} // namespace atscale
