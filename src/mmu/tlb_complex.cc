#include "mmu/tlb_complex.hh"

#include "obs/stats_registry.hh"
#include "util/hash.hh"

namespace atscale
{

TlbComplex::TlbComplex(const TlbParams &params)
    : params_(params),
      l1_4k_("dTLB-L1-4K", params.l1_4k, {PageSize::Size4K}),
      l1_2m_("dTLB-L1-2M", params.l1_2m, {PageSize::Size2M}),
      l1_1g_("dTLB-L1-1G", params.l1_1g, {PageSize::Size1G}),
      l2_("STLB", params.l2, {PageSize::Size4K, PageSize::Size2M})
{
}

void
TlbComplex::install(Addr vaddr, PageSize size)
{
    l1For(size).insert(vaddr, size);
    if (l2_.holds(size))
        l2_.insert(vaddr, size);
}

void
TlbComplex::invalidatePage(Addr base, PageSize size)
{
    l1For(size).invalidate(base, size);
    if (l2_.holds(size))
        l2_.invalidate(base, size);
}

bool
TlbComplex::locate(Addr vaddr, PageSize size, TlbFastHit &out)
{
    SetAssocCache &array = l1For(size).array();
    std::uint64_t key = Tlb::key(vaddr, size);
    int way = array.findWay(key);
    if (way < 0)
        return false;
    out.size = size;
    out.set = array.setIndexOf(key);
    out.way = static_cast<std::uint32_t>(way);
    out.tag = array.tagOf(key);
    return true;
}

void
TlbComplex::flush()
{
    l1_4k_.flush();
    l1_2m_.flush();
    l1_1g_.flush();
    l2_.flush();
}

void
TlbComplex::resetStats()
{
    l1_4k_.resetStats();
    l1_2m_.resetStats();
    l1_1g_.resetStats();
    l2_.resetStats();
    lookups_ = 0;
    misses_ = 0;
}

Count
TlbComplex::l1Hits() const
{
    return l1_4k_.hits() + l1_2m_.hits() + l1_1g_.hits();
}

std::uint64_t
TlbComplex::stateHash() const
{
    std::uint64_t h = l1_4k_.stateHash();
    h = hashCombine(h, l1_2m_.stateHash());
    h = hashCombine(h, l1_1g_.stateHash());
    h = hashCombine(h, l2_.stateHash());
    h = hashCombine(h, lookups_);
    h = hashCombine(h, misses_);
    return h;
}

void
TlbComplex::registerStats(StatsRegistry &registry,
                          const std::string &prefix) const
{
    registry.addScalar(prefix + ".lookups", [this] {
        return static_cast<double>(lookups());
    }, "translation requests");
    registry.addScalar(prefix + ".l1_hits", [this] {
        return static_cast<double>(l1Hits());
    }, "hits across the first-level arrays");
    registry.addScalar(prefix + ".l2_hits", [this] {
        return static_cast<double>(l2Hits());
    }, "second-level (STLB) hits");
    registry.addScalar(prefix + ".misses", [this] {
        return static_cast<double>(misses());
    }, "lookups that missed both levels");
    for (const Tlb *tlb : {&l1_4k_, &l1_2m_, &l1_1g_, &l2_})
        tlb->registerStats(registry, prefix + "." + tlb->name());
}

} // namespace atscale
