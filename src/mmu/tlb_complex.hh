/**
 * @file
 * The two-level TLB organization of the paper's Haswell system (Table III):
 * split first-level arrays per page size and a unified 1024-entry second
 * level shared by 4 KiB and 2 MiB pages (1 GiB translations are not cached
 * in the second level on this microarchitecture).
 */

#ifndef ATSCALE_MMU_TLB_COMPLEX_HH
#define ATSCALE_MMU_TLB_COMPLEX_HH

#include <cstdint>

#include "mmu/tlb.hh"

namespace atscale
{

/** Where a TLB lookup was satisfied. */
enum class TlbLevel : std::uint8_t
{
    L1 = 0,
    L2 = 1,
    Miss = 2,
};

/** TLB organization parameters (defaults: Haswell, Table III). */
struct TlbParams
{
    CacheGeometry l1_4k = {16, 4, ReplPolicy::Lru};  // 64 entries
    CacheGeometry l1_2m = {8, 4, ReplPolicy::Lru};   // 32 entries
    CacheGeometry l1_1g = {1, 4, ReplPolicy::Lru};   // 4 entries, fully assoc
    CacheGeometry l2 = {128, 8, ReplPolicy::Lru};    // 1024 entries
    /** Additional cycles for an L2 TLB hit vs an L1 hit (7-cpu: 8). */
    Cycles l2HitExtraLatency = 8;
};

/** Result of a TLB complex lookup. */
struct TlbLookupResult
{
    TlbLevel level = TlbLevel::Miss;
    PageSize pageSize = PageSize::Size4K;
    /** Extra cycles beyond the pipelined L1 path. */
    Cycles extraLatency = 0;
};

/**
 * The full first+second level dTLB complex.
 */
class TlbComplex
{
  public:
    explicit TlbComplex(const TlbParams &params = {});

    /** Look up vaddr; L2 hits refill the appropriate L1 array. */
    TlbLookupResult lookup(Addr vaddr);

    /** Install a completed walk's translation into L1 (and L2 if held). */
    void install(Addr vaddr, PageSize size);

    /** Invalidate everything. */
    void flush();
    /** Reset statistics. */
    void resetStats();

    /** First-level hits across all arrays. */
    Count l1Hits() const;
    /** Second-level hits. */
    Count l2Hits() const { return l2_.hits(); }
    /** Lookups that missed both levels. */
    Count misses() const { return misses_; }
    /** Total lookups. */
    Count lookups() const { return lookups_; }

    /** Register complex-level and per-array statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    const TlbParams &params() const { return params_; }

  private:
    Tlb &l1For(PageSize size);

    TlbParams params_;
    Tlb l1_4k_;
    Tlb l1_2m_;
    Tlb l1_1g_;
    Tlb l2_;
    Count lookups_ = 0;
    Count misses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_TLB_COMPLEX_HH
