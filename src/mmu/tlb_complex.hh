/**
 * @file
 * The two-level TLB organization of the paper's Haswell system (Table III):
 * split first-level arrays per page size and a unified 1024-entry second
 * level shared by 4 KiB and 2 MiB pages (1 GiB translations are not cached
 * in the second level on this microarchitecture).
 */

#ifndef ATSCALE_MMU_TLB_COMPLEX_HH
#define ATSCALE_MMU_TLB_COMPLEX_HH

#include <cstdint>

#include "mmu/tlb.hh"

namespace atscale
{

/** Where a TLB lookup was satisfied. */
enum class TlbLevel : std::uint8_t
{
    L1 = 0,
    L2 = 1,
    Miss = 2,
};

/** TLB organization parameters (defaults: Haswell, Table III). */
struct TlbParams
{
    CacheGeometry l1_4k = {16, 4, ReplPolicy::Lru};  // 64 entries
    CacheGeometry l1_2m = {8, 4, ReplPolicy::Lru};   // 32 entries
    CacheGeometry l1_1g = {1, 4, ReplPolicy::Lru};   // 4 entries, fully assoc
    CacheGeometry l2 = {128, 8, ReplPolicy::Lru};    // 1024 entries
    /** Additional cycles for an L2 TLB hit vs an L1 hit (7-cpu: 8). */
    Cycles l2HitExtraLatency = 8;
};

/** Result of a TLB complex lookup. */
struct TlbLookupResult
{
    TlbLevel level = TlbLevel::Miss;
    PageSize pageSize = PageSize::Size4K;
    /** Extra cycles beyond the pipelined L1 path. */
    Cycles extraLatency = 0;
};

/**
 * Direct-way coordinates of a first-level TLB entry, captured when a
 * translation is resolved through the full lookup path and replayed by
 * the fast-path layer (mmu/fastpath.hh). `tag` revalidates the way on
 * every replay, so eviction or replacement of the underlying entry
 * silently retires the coordinates.
 */
struct TlbFastHit
{
    PageSize size = PageSize::Size4K;
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    std::uint64_t tag = 0;
};

/**
 * The full first+second level dTLB complex.
 */
class TlbComplex
{
  public:
    explicit TlbComplex(const TlbParams &params = {});

    /** Look up vaddr; L2 hits refill the appropriate L1 array. */
    TlbLookupResult
    lookup(Addr vaddr)
    {
        ++lookups_;
        TlbLookupResult result;

        // All first-level arrays are probed in parallel in hardware.
        for (Tlb *tlb : {&l1_4k_, &l1_2m_, &l1_1g_}) {
            if (tlb->lookup(vaddr, result.pageSize)) {
                result.level = TlbLevel::L1;
                return result;
            }
        }

        if (l2_.lookup(vaddr, result.pageSize)) {
            result.level = TlbLevel::L2;
            result.extraLatency = params_.l2HitExtraLatency;
            // Refill the first level on the way back.
            l1For(result.pageSize).insert(vaddr, result.pageSize);
            return result;
        }

        ++misses_;
        result.level = TlbLevel::Miss;
        return result;
    }

    /** Install a completed walk's translation into L1 (and L2 if held). */
    void install(Addr vaddr, PageSize size);

    /**
     * Invalidate any entry covering the page at `base` of size `size` in
     * both levels (the simulated invlpg, driven by address-space remaps).
     */
    void invalidatePage(Addr base, PageSize size);

    /** Invalidate everything. */
    void flush();
    /** Reset statistics. */
    void resetStats();

    /** First-level hits across all arrays. */
    Count l1Hits() const;
    /** Second-level hits. */
    Count l2Hits() const { return l2_.hits(); }
    /** Lookups that missed both levels. */
    Count misses() const { return misses_; }
    /** Total lookups. */
    Count lookups() const { return lookups_; }

    /** Register complex-level and per-array statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    const TlbParams &params() const { return params_; }

    // --- Fast-path support (see mmu/fastpath.hh) ------------------------

    /**
     * Capture direct-way coordinates for vaddr's resident L1 entry of
     * the given page size. @return false when the entry is not (or no
     * longer) in the first level.
     */
    bool locate(Addr vaddr, PageSize size, TlbFastHit &out);

    /**
     * Validate the coordinates against the live array and, when they
     * still name the entry they were captured from, replay the exact
     * bookkeeping of lookup() resolving as an L1 hit there: the
     * complex-level lookup count, one whole-array probe miss for every
     * first-level array probed before the hit one (probe order is 4K,
     * 2M, 1G, as in lookup()), and the hit array's hit count + recency
     * touch. After a successful replay every counter and every
     * replacement bit is exactly as if lookup() had run.
     *
     * @return false (with no state touched) when the entry has been
     *         evicted, replaced, or invalidated since it was located.
     */
    bool
    tryReplayL1Hit(const TlbFastHit &hit)
    {
        SetAssocCache &array = l1For(hit.size).array();
        if (!array.holdsAt(hit.set, hit.way, hit.tag))
            return false;
        ++lookups_;
        if (hit.size != PageSize::Size4K) {
            l1_4k_.noteLookupMiss();
            if (hit.size == PageSize::Size1G)
                l1_2m_.noteLookupMiss();
        }
        array.touchHit(hit.set, hit.way);
        return true;
    }

    /**
     * Replay n consecutive tryReplayL1Hit() calls on the same
     * coordinates in O(1). Validates once — consecutive replays of one
     * entry with no intervening operations cannot invalidate it — then
     * applies the run forms of every counter/recency update, so the
     * result is bit-identical to n scalar replays (and therefore to n
     * scalar lookup() calls resolving as L1 hits on this entry).
     */
    bool
    tryReplayL1HitRun(const TlbFastHit &hit, Count n)
    {
        SetAssocCache &array = l1For(hit.size).array();
        if (!array.holdsAt(hit.set, hit.way, hit.tag))
            return false;
        lookups_ += n;
        if (hit.size != PageSize::Size4K) {
            l1_4k_.noteLookupMissRun(n);
            if (hit.size == PageSize::Size1G)
                l1_2m_.noteLookupMissRun(n);
        }
        array.touchHitRun(hit.set, hit.way, n);
        return true;
    }

    /** The first-level array holding the given page size. */
    Tlb &l1Array(PageSize size) { return l1For(size); }
    /** The unified second level. */
    Tlb &l2Array() { return l2_; }

    /** Process-stable digest of both levels' full state + statistics. */
    std::uint64_t stateHash() const;

  private:
    /** The first-level array for a page size (hot: must stay inline). */
    Tlb &
    l1For(PageSize size)
    {
        switch (size) {
          case PageSize::Size4K:
            return l1_4k_;
          case PageSize::Size2M:
            return l1_2m_;
          case PageSize::Size1G:
            return l1_1g_;
        }
        return l1_4k_;
    }

    TlbParams params_;
    Tlb l1_4k_;
    Tlb l1_2m_;
    Tlb l1_1g_;
    Tlb l2_;
    Count lookups_ = 0;
    Count misses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_TLB_COMPLEX_HH
