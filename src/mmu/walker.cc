#include "mmu/walker.hh"

#include "obs/stats_registry.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"
#include "vm/pte.hh"

namespace atscale
{

PageWalker::PageWalker(PhysicalMemory &mem, CacheHierarchy &hierarchy,
                       PagingStructureCaches &pscs,
                       const WalkerParams &params)
    : mem_(mem), hierarchy_(hierarchy), pscs_(pscs), params_(params)
{
}

WalkResult
PageWalker::walk(Addr vaddr, const PageTable &table, Cycles budget)
{
    ++initiated_;

    WalkResult result;
    result.ptwAccesses = 0;
    result.loadsAtLevel.fill(0);
    result.hitLevelAt.fill(-1);
    PscProbeResult start = pscs_.probe(vaddr, table.root());
    result.startLevel = start.startLevel;
    result.cycles = params_.startupCycles;

    PhysAddr node = start.node;
    int level = start.startLevel;

    while (true) {
        if (result.cycles >= budget) {
            // Squashed before this PTE load could issue.
            result.cycles = budget;
            ++aborted_;
            walkCycles_ += result.cycles;
            return result;
        }

        PhysAddr entry_addr =
            node + static_cast<PhysAddr>(ptIndex(vaddr, level)) * pteBytes;
        MemAccessResult mem_access =
            hierarchy_.access(entry_addr, AccessKind::PtwLoad);
        ++result.ptwAccesses;
        ++result.loadsAtLevel[static_cast<size_t>(mem_access.level)];
        result.hitLevelAt[static_cast<size_t>(level)] =
            static_cast<std::int8_t>(mem_access.level);
        result.cycles += mem_access.latency + params_.perStepCycles;

        if (result.cycles > budget) {
            // Squashed while this load was in flight.
            result.cycles = budget;
            ++aborted_;
            walkCycles_ += result.cycles;
            return result;
        }

        Pte pte = Pte::unpack(mem_.read64(entry_addr));
        if (!pte.present) {
            result.completed = true;
            result.faulted = true;
            break;
        }

        bool is_leaf = (level == 0) || pte.pageSize;
        if (is_leaf) {
            result.completed = true;
            result.translation.valid = true;
            result.translation.pageSize = static_cast<PageSize>(level);
            result.translation.frame = pte.addr;
            result.translation.pageBase =
                alignDown(vaddr, pageBytes(result.translation.pageSize));
            break;
        }

        // A non-leaf entry was read: cache it in the PSC for later walks.
        pscs_.fill(vaddr, level, pte.addr);
        node = pte.addr;
        --level;
        panic_if(level < 0, "walked past the leaf level at vaddr %#lx",
                 vaddr);
    }

    ++completed_;
    walkCycles_ += result.cycles;
    return result;
}

void
PageWalker::resetStats()
{
    initiated_ = 0;
    completed_ = 0;
    aborted_ = 0;
    walkCycles_ = 0;
}

void
PageWalker::registerStats(StatsRegistry &registry,
                          const std::string &prefix) const
{
    registry.addScalar(prefix + ".initiated", [this] {
        return static_cast<double>(walksInitiated());
    }, "walks started");
    registry.addScalar(prefix + ".completed", [this] {
        return static_cast<double>(walksCompleted());
    }, "walks that reached a terminal entry");
    registry.addScalar(prefix + ".aborted", [this] {
        return static_cast<double>(walksAborted());
    }, "walks cut short by their cycle budget");
    registry.addScalar(prefix + ".walk_cycles", [this] {
        return static_cast<double>(totalWalkCycles());
    }, "total cycles across all walks");
}

} // namespace atscale
