/**
 * @file
 * The hardware page-table walker.
 *
 * Walks the radix tree in simulated physical memory, starting from the
 * deepest paging-structure-cache hit, issuing each PTE load through the
 * shared cache hierarchy. Walks can be aborted part-way by a cycle budget,
 * modelling pipeline squashes that kill in-flight speculative walks.
 */

#ifndef ATSCALE_MMU_WALKER_HH
#define ATSCALE_MMU_WALKER_HH

#include <array>
#include <cstdint>
#include <limits>

#include "cache/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "mmu/paging_structure_cache.hh"
#include "vm/page_table.hh"

namespace atscale
{

class StatsRegistry;

/** Walker timing parameters. */
struct WalkerParams
{
    /** Fixed per-step cycles beyond the PTE load latency (walker FSM). */
    Cycles perStepCycles = 2;
    /** Fixed cycles to start a walk (miss queue, walker arbitration). */
    Cycles startupCycles = 5;
};

/** No budget: the walk runs to completion. */
constexpr Cycles unlimitedWalkBudget = std::numeric_limits<Cycles>::max();

/**
 * Everything a single walk did.
 *
 * Only the outcome flags and the translation are defined after default
 * construction; the accounting fields (cycles, ptwAccesses, startLevel,
 * loadsAtLevel, hitLevelAt) are initialized by PageWalker::walk and are
 * meaningful only when a walk actually ran (completed, faulted, or
 * budget-aborted — for MmuResult, tlbLevel == Miss). Leaving them
 * uninitialized keeps MmuResult construction off the MMU's TLB-hit fast
 * path, which the translate throughput benchmarks are sensitive to.
 */
struct WalkResult
{
    /** The walk reached a terminal entry (leaf or not-present). */
    bool completed = false;
    /** Terminal entry was not present (page fault if on correct path). */
    bool faulted = false;
    /** The translation, valid iff completed && !faulted. */
    Translation translation;
    /** Cycles the walk occupied the walker (capped at the budget). */
    Cycles cycles;
    /** PTE loads issued into the cache hierarchy. */
    Count ptwAccesses;
    /** Radix level the walk started at after PSC probing (3 = root). */
    int startLevel;
    /** PTE loads satisfied at each memory level (page_walker_loads.*). */
    std::array<Count, numMemLevels> loadsAtLevel;
    /**
     * Cache-hierarchy level (MemLevel as int) that served the PTE load at
     * each radix level, indexed 0 (PT) .. 3 (PML4); -1 where the walk
     * issued no load (skipped by the PSC, or cut short by the budget).
     */
    std::array<std::int8_t, ptLevels> hitLevelAt;
};

/**
 * A single hardware page-table walker (the paper's system has exactly one,
 * Table III).
 */
class PageWalker
{
  public:
    /**
     * @param mem physical memory holding PTE words
     * @param hierarchy shared cache hierarchy for PTE loads
     * @param pscs paging-structure caches consulted and filled by walks
     */
    PageWalker(PhysicalMemory &mem, CacheHierarchy &hierarchy,
               PagingStructureCaches &pscs, const WalkerParams &params = {});

    /**
     * Walk the page table for vaddr.
     *
     * @param table the page table to walk
     * @param budget abort the walk once this many cycles are consumed
     */
    WalkResult walk(Addr vaddr, const PageTable &table,
                    Cycles budget = unlimitedWalkBudget);

    /** Walks started. */
    Count walksInitiated() const { return initiated_; }
    /** Walks that reached a terminal entry. */
    Count walksCompleted() const { return completed_; }
    /** Walks cut short by their budget. */
    Count walksAborted() const { return aborted_; }
    /** Total cycles across all walks. */
    Cycles totalWalkCycles() const { return walkCycles_; }
    /** Reset statistics. */
    void resetStats();

    /** Register walk-outcome statistics under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    const WalkerParams &params() const { return params_; }

  private:
    PhysicalMemory &mem_;
    CacheHierarchy &hierarchy_;
    PagingStructureCaches &pscs_;
    WalkerParams params_;

    Count initiated_ = 0;
    Count completed_ = 0;
    Count aborted_ = 0;
    Cycles walkCycles_ = 0;
};

} // namespace atscale

#endif // ATSCALE_MMU_WALKER_HH
