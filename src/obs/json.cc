#include "obs/json.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace atscale
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

JsonWriter::~JsonWriter()
{
    panic_if(!stack_.empty(), "JsonWriter destroyed with %zu open scopes",
             stack_.size());
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeItem(bool isKey)
{
    if (keyPending_) {
        panic_if(isKey, "JSON key written while a key was pending");
        keyPending_ = false;
        return;
    }
    panic_if(!stack_.empty() && stack_.back() == Scope::Object && !isKey,
             "JSON value written inside an object without a key");
    if (!stack_.empty()) {
        if (!first_)
            os_ << ',';
        indent();
    }
    first_ = false;
}

void
JsonWriter::beforeScopeEnd()
{
    panic_if(stack_.empty(), "JSON scope closed with none open");
    panic_if(keyPending_, "JSON scope closed with a dangling key");
    bool wasEmpty = first_;
    stack_.pop_back();
    first_ = false;
    if (!wasEmpty)
        indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeItem(false);
    os_ << '{';
    stack_.push_back(Scope::Object);
    first_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    beforeScopeEnd();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeItem(false);
    os_ << '[';
    stack_.push_back(Scope::Array);
    first_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    beforeScopeEnd();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    panic_if(stack_.empty() || stack_.back() == Scope::Array,
             "JSON key '%s' written outside an object", k.c_str());
    beforeItem(true);
    os_ << '"' << jsonEscape(k) << "\":";
    if (pretty_)
        os_ << ' ';
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeItem(false);
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeItem(false);
    if (!std::isfinite(v)) {
        os_ << "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeItem(false);
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeItem(false);
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeItem(false);
    os_ << (v ? "true" : "false");
    return *this;
}

} // namespace atscale
