/**
 * @file
 * A tiny streaming JSON writer: enough to emit run results, window
 * series, and Chrome trace_event files without any external dependency.
 * Commas, quoting, and nesting are managed by an explicit object/array
 * stack; misuse (value without a key inside an object, unclosed scopes)
 * panics rather than emitting malformed output.
 */

#ifndef ATSCALE_OBS_JSON_HH
#define ATSCALE_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace atscale
{

/** Escape a string for inclusion in a JSON document (no outer quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming writer. Pretty-prints with 2-space indentation when
 * constructed with pretty=true, otherwise emits compact single-line JSON
 * (the right choice for JSONL records).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a key inside an object; must be followed by a value/scope. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(bool v);

    /** Convenience: key + value in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** All opened scopes are closed. */
    bool done() const { return stack_.empty(); }

  private:
    enum class Scope : std::uint8_t { Object, Array };

    void beforeItem(bool isKey);
    void beforeScopeEnd();
    void indent();

    std::ostream &os_;
    bool pretty_;
    std::vector<Scope> stack_;
    /** First item not yet written in the innermost scope. */
    bool first_ = true;
    /** A key was just written; the next item is its value. */
    bool keyPending_ = false;
};

} // namespace atscale

#endif // ATSCALE_OBS_JSON_HH
