#include "obs/ledger.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace atscale
{

const char *
cycleComponentName(CycleComponent component)
{
    switch (component) {
      case CycleComponent::BaseExec: return "base_exec";
      case CycleComponent::BranchMispredict: return "branch_mispredict";
      case CycleComponent::MachineClear: return "machine_clear";
      case CycleComponent::L2TlbHit: return "l2_tlb_hit";
      case CycleComponent::PageWalk: return "page_walk";
      case CycleComponent::DataStall: return "data_stall";
      case CycleComponent::SchemeSoftware: return "scheme_software";
      case CycleComponent::ShootdownIpi: return "shootdown_ipi";
    }
    return "?";
}

const char *
cycleComponentEq1Role(CycleComponent component)
{
    switch (component) {
      case CycleComponent::BaseExec: return "base";
      case CycleComponent::BranchMispredict: return "base";
      case CycleComponent::MachineClear: return "base";
      case CycleComponent::L2TlbHit: return "tlb";
      case CycleComponent::PageWalk: return "walk";
      case CycleComponent::DataStall: return "memory";
      case CycleComponent::SchemeSoftware: return "software";
      case CycleComponent::ShootdownIpi: return "coherence";
    }
    return "?";
}

CycleLedger::Report
CycleLedger::check(double accumulator, Count published) const
{
    Report report;
    // Exact equality on purpose: the ledger mirrors the accumulator
    // addition-for-addition, so the doubles are bitwise equal unless a
    // charge went around the ledger (or through it twice).
    if (total_ != accumulator) {
        std::ostringstream os;
        os << "cycle ledger broken: components sum to " << total_
           << " but the accumulator holds " << accumulator
           << " (orphan charge of " << (accumulator - total_)
           << " cycles bypassed the Eq-1 decomposition); components:";
        for (std::size_t i = 0; i < numCycleComponents; ++i) {
            os << " " << cycleComponentName(static_cast<CycleComponent>(i))
               << "=" << components_[i];
        }
        report.ok = false;
        report.message = os.str();
        return report;
    }
    double residue = accumulator - static_cast<double>(published);
    if (residue < 0.0 || residue >= 1.0) {
        std::ostringstream os;
        os << "cycle publication broken: accumulator " << accumulator
           << " vs published " << published << " leaves a residue of "
           << residue << " (must be in [0, 1) after a flush)";
        report.ok = false;
        report.message = os.str();
    }
    return report;
}

void
CycleLedger::verify(double accumulator, Count published,
                    const char *who) const
{
    Report report = check(accumulator, published);
    fatal_if(!report.ok, "%s: %s", who, report.message.c_str());
}

} // namespace atscale
