/**
 * @file
 * Debug-build cycle-conservation ledger: every cycle the timing core
 * charges is tagged with the Eq-1 component it belongs to, and at each
 * publication boundary the tagged components must sum — exactly, in
 * floating point — to the core's cycle accumulator. A charge that
 * bypasses the decomposition (the runtime twin of lint rule R10,
 * docs/STATIC_ANALYSIS.md) trips the check the first time it runs.
 *
 * The class itself compiles in every build type so its arithmetic is
 * unit-testable under the default RelWithDebInfo tier-1 configuration;
 * only the hot-path hooks inside Core (cpu/core.hh) and the end-of-run
 * verification are `#ifndef NDEBUG`, which is what keeps release
 * benches byte-identical with the ledger compiled out.
 */

#ifndef ATSCALE_OBS_LEDGER_HH
#define ATSCALE_OBS_LEDGER_HH

#include <array>
#include <cstddef>
#include <string>

#include "util/types.hh"

namespace atscale
{

/**
 * The closed vocabulary of places a simulated cycle can come from.
 * One enumerator per charge site family in the timing core; adding a
 * new way to charge cycles means adding its component here, mapping its
 * Eq-1 role below, and charging through the ledger — rule R10 rejects
 * the shortcut of bumping the accumulator directly.
 */
enum class CycleComponent : unsigned char
{
    /** instr x baseCpi issue cycles. */
    BaseExec,
    /** Branch-mispredict resolution penalty. */
    BranchMispredict,
    /** Machine-clear flush penalty. */
    MachineClear,
    /** Exposed latency of an L2 TLB hit (Eq-1 TLB term). */
    L2TlbHit,
    /** Exposed page-walk cycles, including post-clear re-walks
     * (Eq-1 walk term — the WCPI numerator's cycle source). */
    PageWalk,
    /** MLP-discounted data-cache miss stalls. */
    DataStall,
    /** Software-translation cost outside the TLB/walk terms
     * (TranslationScheme::schemeExtraCycles — the no_vm scheme). */
    SchemeSoftware,
    /** TLB-shootdown IPI cost landed by a SharedSystem remap. */
    ShootdownIpi,
};

constexpr std::size_t numCycleComponents = 8;

/** Stable lower-case name, for messages and reports. */
const char *cycleComponentName(CycleComponent component);

/**
 * Which Eq-1 term of the paper's decomposition the component feeds:
 * "base" (non-translation execution), "tlb", "walk", "software"
 * (translation cost outside the hardware terms), "memory"
 * (non-translation stalls), or "coherence" (shootdown traffic).
 * The lint's R10 component map (tools/lint/atscale_lint.py) mirrors
 * this table; the fixture self-test keeps the two from drifting.
 */
const char *cycleComponentEq1Role(CycleComponent component);

/**
 * Per-core cycle ledger. charge() must mirror every addition into the
 * core's cycle accumulator with the identical value in the identical
 * order — double addition is deterministic, so the running totals then
 * stay bitwise equal and check() can demand exact equality rather than
 * a tolerance (a tolerance would let small orphan charges hide).
 */
class CycleLedger
{
  public:
    /** Attribute `cycles` to `component`. */
    void
    charge(CycleComponent component, double cycles)
    {
        components_[static_cast<std::size_t>(component)] += cycles;
        total_ += cycles;
    }

    /** Forget everything (mirrors Core::resetCounters). */
    void
    reset()
    {
        components_.fill(0.0);
        total_ = 0.0;
    }

    /** Sum of all charges since the last reset. */
    double total() const { return total_; }

    /** Charges attributed to one component since the last reset. */
    double
    component(CycleComponent component) const
    {
        return components_[static_cast<std::size_t>(component)];
    }

    /** Outcome of a conservation check, testable without death tests. */
    struct Report
    {
        bool ok = true;
        std::string message;
    };

    /**
     * Verify conservation against the core's accounting state:
     * (a) the tagged components sum exactly to `accumulator` (any
     * difference is an orphan or double charge), and (b) the published
     * counter trails the accumulator by less than one cycle (the
     * truncation residue of Core::run's flush; more means a publication
     * bypassed the accumulator, negative means it over-published).
     * @param accumulator the core's fractional cycle accumulator
     * @param published   cycles published into CpuClkUnhalted
     */
    Report check(double accumulator, Count published) const;

    /** check(), fatal on failure; `who` names the call site. */
    void verify(double accumulator, Count published, const char *who) const;

  private:
    std::array<double, numCycleComponents> components_{};
    double total_ = 0.0;
};

} // namespace atscale

#endif // ATSCALE_OBS_LEDGER_HH
