#include "obs/sampler.hh"

#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace atscale
{

double
WindowSample::cpi() const
{
    Count instr = instructions();
    return instr ? static_cast<double>(delta.get(EventId::CpuClkUnhalted)) /
                       static_cast<double>(instr)
                 : 0.0;
}

WindowSampler::WindowSampler(Count windowInstructions)
    : window_(windowInstructions)
{
    fatal_if(window_ == 0, "sampler window must be at least 1 instruction");
}

void
WindowSampler::reset(const CounterSet &baseline)
{
    baseline_ = baseline;
    lastClose_ = baseline;
    lastCloseInstr_ = 0;
    windows_.clear();
}

void
WindowSampler::observe(const CounterSet &cumulative)
{
    Count instr = cumulative.since(baseline_).get(EventId::InstRetired);
    if (instr - lastCloseInstr_ < window_)
        return;

    WindowSample sample;
    sample.index = windows_.size();
    sample.instrStart = lastCloseInstr_;
    sample.instrEnd = instr;
    sample.delta = cumulative.since(lastClose_);
    sample.wcpi = wcpiTerms(sample.delta);
    sample.outcomes = walkOutcomes(sample.delta);
    windows_.push_back(sample);

    lastClose_ = cumulative;
    lastCloseInstr_ = instr;

    for (const Sink &sink : sinks_)
        sink(windows_.back());
}

std::string
windowSampleToJsonl(const WindowSample &w)
{
    std::ostringstream os;
    os.precision(10);
    os << "{\"window\":" << w.index
       << ",\"instr_start\":" << w.instrStart
       << ",\"instr_end\":" << w.instrEnd
       << ",\"cycles\":" << w.delta.get(EventId::CpuClkUnhalted)
       << ",\"cpi\":" << w.cpi()
       << ",\"wcpi\":" << w.wcpi.wcpi()
       << ",\"accesses_per_instr\":" << w.wcpi.accessesPerInstr
       << ",\"tlb_misses_per_access\":" << w.wcpi.tlbMissesPerAccess
       << ",\"ptw_accesses_per_walk\":" << w.wcpi.ptwAccessesPerWalk
       << ",\"walk_cycles_per_ptw_access\":" << w.wcpi.walkCyclesPerPtwAccess
       << ",\"walks_initiated\":" << w.outcomes.initiated
       << ",\"walks_completed\":" << w.outcomes.completed
       << ",\"walks_retired\":" << w.outcomes.retired
       << ",\"aborted_fraction\":" << w.outcomes.abortedFraction()
       << ",\"wrong_path_fraction\":" << w.outcomes.wrongPathFraction()
       << "}";
    return os.str();
}

void
WindowSampler::exportJsonl(std::ostream &os) const
{
    for (const WindowSample &w : windows_)
        os << windowSampleToJsonl(w) << '\n';
}

} // namespace atscale
