/**
 * @file
 * Windowed counter sampling: carve a run's cumulative CounterSet into
 * fixed instruction windows and derive per-window metrics (the Equation-1
 * WCPI decomposition and the Table-VI walk-outcome mix), enabling
 * time-resolved plots (the paper's Fig. 5 trajectories) and online
 * consumers such as the hugepage advisor.
 *
 * Semantics match CounterSet::since(): the sampler is reset with a
 * baseline snapshot at the start of the measurement window (excluding
 * warm-up), then observes monotone cumulative snapshots of the same
 * counters. A window closes at the first observation at or past the next
 * window boundary, and the whole delta since the previous close is
 * attributed to it — windows are only as granular as the observations,
 * so each covers at least windowInstructions instructions.
 */

#ifndef ATSCALE_OBS_SAMPLER_HH
#define ATSCALE_OBS_SAMPLER_HH

#include <functional>
#include <iosfwd>
#include <vector>

#include "perf/counter_set.hh"
#include "perf/derived.hh"

namespace atscale
{

/** One completed sampling window. */
struct WindowSample
{
    /** Window ordinal, 0-based from the baseline. */
    std::uint64_t index = 0;
    /** Instructions retired since baseline at the window's open/close. */
    Count instrStart = 0;
    Count instrEnd = 0;
    /** Counter deltas over the window. */
    CounterSet delta;
    /** Equation-1 terms of the window. */
    WcpiTerms wcpi;
    /** Table-VI walk-outcome mix of the window. */
    WalkOutcomes outcomes;

    /** Cycles per instruction over the window. */
    double cpi() const;
    /** Instructions in the window. */
    Count instructions() const { return instrEnd - instrStart; }
};

/**
 * The sampler. Construct with a window size, reset() with the baseline
 * snapshot, then observe() cumulative snapshots as the run progresses.
 */
class WindowSampler
{
  public:
    using Sink = std::function<void(const WindowSample &)>;

    /** @param windowInstructions window size; must be > 0 */
    explicit WindowSampler(Count windowInstructions);

    /**
     * Start a measurement: remember `baseline` as instruction zero and
     * drop previously collected windows. Deltas are computed with
     * CounterSet::since(), so warm-up activity before the baseline never
     * leaks into any window.
     */
    void reset(const CounterSet &baseline);

    /**
     * Observe a cumulative snapshot; closes at most one window (whole
     * delta attributed). Snapshots must be monotone over one run.
     */
    void observe(const CounterSet &cumulative);

    /** Register a callback invoked as each window closes. */
    void addSink(Sink sink) { sinks_.push_back(std::move(sink)); }

    /** Completed windows, oldest first. */
    const std::vector<WindowSample> &windows() const { return windows_; }

    Count windowInstructions() const { return window_; }

    /** One JSONL line per completed window (schema in OBSERVABILITY.md). */
    void exportJsonl(std::ostream &os) const;

  private:
    Count window_;
    CounterSet baseline_;
    /** Snapshot at the last window close (initially the baseline). */
    CounterSet lastClose_;
    /** Instructions since baseline at the last window close. */
    Count lastCloseInstr_ = 0;
    std::vector<WindowSample> windows_;
    std::vector<Sink> sinks_;
};

/** Serialize one window as a single JSONL line (no trailing newline). */
std::string windowSampleToJsonl(const WindowSample &window);

} // namespace atscale

#endif // ATSCALE_OBS_SAMPLER_HH
