#include "obs/session.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "util/logging.hh"

namespace atscale
{

namespace
{

/** Parse the value of a --flag=value argument as a positive integer. */
bool
parseCount(const std::string &value, std::uint64_t &out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    return *end == '\0' && out > 0;
}

/** Strip a trailing ".json" so derived outputs sit next to the JSON. */
std::string
stem(const std::string &path)
{
    const std::string suffix = ".json";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0)
        return path.substr(0, path.size() - suffix.size());
    return path;
}

} // namespace

ObsOptions
ObsOptions::forJob(const std::string &tag) const
{
    ObsOptions options = *this;
    if (!options.jsonOut.empty())
        options.jsonOut = stem(options.jsonOut) + "." + tag + ".json";
    if (!options.tracePrefix.empty())
        options.tracePrefix += "." + tag;
    return options;
}

bool
parseObsFlag(const std::string &arg, ObsOptions &options, std::string &error)
{
    error.clear();
    auto valueOf = [&](const char *prefix, std::string &out) {
        std::size_t n = std::string(prefix).size();
        if (arg.compare(0, n, prefix) != 0)
            return false;
        out = arg.substr(n);
        return true;
    };

    std::string value;
    if (valueOf("--sample-window=", value)) {
        if (!parseCount(value, options.sampleWindow)) {
            error = "--sample-window expects a positive instruction count";
            return false;
        }
        return true;
    }
    if (valueOf("--trace=", value)) {
        if (value.empty()) {
            error = "--trace expects a non-empty output prefix";
            return false;
        }
        options.tracePrefix = value;
        return true;
    }
    if (valueOf("--json-out=", value)) {
        if (value.empty()) {
            error = "--json-out expects a non-empty output path";
            return false;
        }
        options.jsonOut = value;
        return true;
    }
    if (valueOf("--trace-capacity=", value)) {
        std::uint64_t n = 0;
        if (!parseCount(value, n)) {
            error = "--trace-capacity expects a positive record count";
            return false;
        }
        options.traceCapacity = static_cast<std::size_t>(n);
        return true;
    }
    // Malformed spellings of our flags (e.g. "--trace" without '=') are
    // errors, not silently unrelated arguments.
    for (const char *name :
         {"--sample-window", "--trace-capacity", "--trace", "--json-out"}) {
        if (arg.compare(0, std::string(name).size(), name) == 0) {
            error = std::string(name) + " requires =<value>";
            return false;
        }
    }
    return false;
}

bool
extractObsFlags(int &argc, char **argv, ObsOptions &options,
                std::string &error)
{
    error.clear();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string err;
        if (parseObsFlag(argv[i], options, err))
            continue;
        if (!err.empty()) {
            if (error.empty())
                error = err;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return error.empty();
}

ObsSession::ObsSession(const ObsOptions &options)
    : options_(options)
{
    if (options_.sampleWindow > 0)
        sampler_ = std::make_unique<WindowSampler>(options_.sampleWindow);
    if (!options_.tracePrefix.empty())
        tracer_ = std::make_unique<WalkTracer>(options_.traceCapacity);
}

void
ObsSession::beginMeasurement(const CounterSet &baseline)
{
    if (sampler_)
        sampler_->reset(baseline);
    if (tracer_)
        tracer_->clear();
}

void
ObsSession::observe(const CounterSet &cumulative)
{
    if (sampler_)
        sampler_->observe(cumulative);
}

Count
ObsSession::chunkRefs() const
{
    if (!sampler_)
        return 0;
    // Observe a few times per window so boundaries land close to the
    // target without measurably slowing the run. References retire at
    // least one instruction each, so window/4 refs never skips a window.
    return std::clamp<Count>(options_.sampleWindow / 4, 256, 1 << 16);
}

void
ObsSession::finishRun()
{
    statsSnapshot_ = registry_.snapshot();
    registry_.clear();
}

std::string
ObsSession::windowsPath() const
{
    if (!sampling())
        return "";
    if (!options_.jsonOut.empty())
        return stem(options_.jsonOut) + ".windows.jsonl";
    if (!options_.tracePrefix.empty())
        return options_.tracePrefix + ".windows.jsonl";
    return "";
}

std::string
ObsSession::walksJsonlPath() const
{
    return tracing() ? options_.tracePrefix + ".walks.jsonl" : "";
}

std::string
ObsSession::chromeTracePath() const
{
    return tracing() ? options_.tracePrefix + ".trace.json" : "";
}

std::vector<std::string>
ObsSession::writeOutputs(double freqGHz) const
{
    std::vector<std::string> written;
    auto open = [&](const std::string &path) {
        std::ofstream out(path);
        fatal_if(!out, "cannot open observability output '%s'", path.c_str());
        return out;
    };

    if (std::string path = windowsPath(); !path.empty()) {
        std::ofstream out = open(path);
        sampler_->exportJsonl(out);
        written.push_back(path);
    }
    if (tracing()) {
        std::ofstream walks = open(walksJsonlPath());
        tracer_->exportJsonl(walks);
        written.push_back(walksJsonlPath());

        std::ofstream chrome = open(chromeTracePath());
        tracer_->exportChromeTrace(chrome, freqGHz);
        written.push_back(chromeTracePath());
    }
    return written;
}

} // namespace atscale
