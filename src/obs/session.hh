/**
 * @file
 * One run's observability bundle: options parsed from --trace= /
 * --sample-window= / --json-out= flags, plus the stats registry, window
 * sampler, and walk tracer those options enable. The experiment driver
 * owns the simulation; it attaches the session's tracer to the core,
 * registers component stats, feeds the sampler cumulative counter
 * snapshots, and finally snapshots the registry before the platform is
 * torn down. Everything here is passive — the session never touches the
 * simulator, so an absent session costs the hot path nothing.
 */

#ifndef ATSCALE_OBS_SESSION_HH
#define ATSCALE_OBS_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/sampler.hh"
#include "obs/stats_registry.hh"
#include "obs/walk_trace.hh"

namespace atscale
{

/** What to observe, usually parsed from command-line flags. */
struct ObsOptions
{
    /** Instructions per sampling window (0 = sampling off). */
    Count sampleWindow = 0;
    /** Output prefix for walk traces (empty = tracing off). */
    std::string tracePrefix;
    /** Path for the RunResult JSON (empty = off). */
    std::string jsonOut;
    /** Walk-trace ring capacity. */
    std::size_t traceCapacity = 1 << 16;

    /** Any observability requested at all. */
    bool
    any() const
    {
        return sampleWindow > 0 || !tracePrefix.empty() || !jsonOut.empty();
    }

    /**
     * Derive per-job options for one run of a sweep: output paths gain
     * the job's tag ("out.json" -> "out.<tag>.json", trace prefix "p" ->
     * "p.<tag>") so concurrently executing jobs never collide on files.
     * Sampling/trace-capacity knobs are inherited unchanged.
     */
    ObsOptions forJob(const std::string &tag) const;
};

/**
 * Parse one command-line argument against the observability flags
 * (--sample-window=N, --trace=PREFIX, --json-out=PATH,
 * --trace-capacity=N).
 *
 * @return true when the argument was a well-formed observability flag.
 *         On false, `error` distinguishes a malformed observability flag
 *         (non-empty message) from an unrelated argument (empty).
 */
bool parseObsFlag(const std::string &arg, ObsOptions &options,
                  std::string &error);

/**
 * Extract every observability flag from argv (argv[0] is untouched),
 * compacting the remaining arguments in place and shrinking argc, so a
 * harness can parse its own arguments afterwards.
 *
 * @return false when any observability flag was malformed; `error`
 *         carries the first parse error. Unrelated arguments are never
 *         errors here — they are left for the caller.
 */
bool extractObsFlags(int &argc, char **argv, ObsOptions &options,
                     std::string &error);

/** The observability state for one run. */
class ObsSession
{
  public:
    explicit ObsSession(const ObsOptions &options);

    const ObsOptions &options() const { return options_; }

    /** Any instrumentation enabled. */
    bool enabled() const { return options_.any(); }
    bool sampling() const { return sampler_ != nullptr; }
    bool tracing() const { return tracer_ != nullptr; }

    StatsRegistry &registry() { return registry_; }
    /** Null when sampling is off. */
    WindowSampler *sampler() { return sampler_.get(); }
    /** Null when tracing is off. */
    WalkTracer *tracer() { return tracer_.get(); }

    /**
     * Start the measurement window: baseline the sampler on the
     * post-warm-up counter snapshot and clear the tracer.
     */
    void beginMeasurement(const CounterSet &baseline);

    /** Feed the sampler one cumulative snapshot (no-op if not sampling). */
    void observe(const CounterSet &cumulative);

    /**
     * Reference-stream chunk size the experiment driver should use
     * between observations (0 = no chunking needed).
     */
    Count chunkRefs() const;

    /**
     * Materialize registry values (call before the registered components
     * are destroyed) and drop the registrations.
     */
    void finishRun();

    /** Stats captured by finishRun(). */
    const std::vector<StatsRegistry::Sample> &
    statsSnapshot() const
    {
        return statsSnapshot_;
    }

    /** Derived output paths (empty when the corresponding output is off). */
    std::string windowsPath() const;
    std::string walksJsonlPath() const;
    std::string chromeTracePath() const;

    /**
     * Write the window JSONL and the two trace files (whichever are
     * enabled). fatal() if a file cannot be opened.
     * @param freqGHz cycle-to-microsecond scale for the Chrome trace
     * @return the paths written
     */
    std::vector<std::string> writeOutputs(double freqGHz = 2.5) const;

  private:
    ObsOptions options_;
    StatsRegistry registry_;
    std::unique_ptr<WindowSampler> sampler_;
    std::unique_ptr<WalkTracer> tracer_;
    std::vector<StatsRegistry::Sample> statsSnapshot_;
};

} // namespace atscale

#endif // ATSCALE_OBS_SESSION_HH
