#include "obs/stats_registry.hh"

#include <algorithm>
#include <ostream>

#include "util/logging.hh"

namespace atscale
{

bool
StatsRegistry::taken(const std::string &name) const
{
    for (const ScalarEntry &e : scalars_)
        if (e.name == name)
            return true;
    for (const HistEntry &e : hists_)
        if (e.name == name)
            return true;
    return false;
}

void
StatsRegistry::addScalar(const std::string &name, Getter get,
                         const std::string &desc)
{
    fatal_if(name.empty(), "statistic must have a name");
    fatal_if(!get, "statistic '%s' has no getter", name.c_str());
    MutexLock lock(mu_);
    fatal_if(taken(name), "duplicate statistic '%s'", name.c_str());
    scalars_.push_back({name, std::move(get), desc});
}

void
StatsRegistry::addHistogram(const std::string &name, const Histogram *hist,
                            const std::string &desc)
{
    fatal_if(name.empty(), "statistic must have a name");
    fatal_if(!hist, "histogram statistic '%s' is null", name.c_str());
    MutexLock lock(mu_);
    fatal_if(taken(name), "duplicate statistic '%s'", name.c_str());
    hists_.push_back({name, hist, desc});
}

std::vector<StatsRegistry::Sample>
StatsRegistry::snapshot() const
{
    MutexLock lock(mu_);
    std::vector<Sample> out;
    out.reserve(scalars_.size() + hists_.size() * 4);
    for (const ScalarEntry &e : scalars_)
        out.push_back({e.name, e.get(), e.desc});
    for (const HistEntry &e : hists_) {
        out.push_back({e.name + ".count",
                       static_cast<double>(e.hist->total()), e.desc});
        if (e.hist->total() > 0) {
            out.push_back({e.name + ".p50", e.hist->quantile(0.50), ""});
            out.push_back({e.name + ".p90", e.hist->quantile(0.90), ""});
            out.push_back({e.name + ".p99", e.hist->quantile(0.99), ""});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Sample &a, const Sample &b) { return a.name < b.name; });
    return out;
}

namespace
{

/** Number of leading dot-separated components `a` and `b` share. */
std::size_t
sharedComponents(const std::string &a, const std::string &b)
{
    std::size_t shared = 0, start = 0;
    while (true) {
        std::size_t ea = a.find('.', start);
        std::size_t eb = b.find('.', start);
        if (ea == std::string::npos || eb != ea ||
            a.compare(start, ea - start, b, start, eb - start) != 0) {
            return shared;
        }
        ++shared;
        start = ea + 1;
    }
}

} // namespace

void
StatsRegistry::dump(std::ostream &os) const
{
    std::vector<Sample> samples = snapshot();
    std::string prev;
    for (const Sample &s : samples) {
        // Print any group headers this name opens relative to the last.
        std::size_t depth = sharedComponents(prev, s.name);
        std::size_t start = 0;
        for (std::size_t d = 0; d < depth; ++d)
            start = s.name.find('.', start) + 1;
        std::size_t dot;
        while ((dot = s.name.find('.', start)) != std::string::npos) {
            os << std::string(depth * 2, ' ')
               << s.name.substr(start, dot - start) << '\n';
            ++depth;
            start = dot + 1;
        }
        os << std::string(depth * 2, ' ') << s.name.substr(start) << ' '
           << s.value;
        if (!s.desc.empty())
            os << "  # " << s.desc;
        os << '\n';
        prev = s.name;
    }
}

void
StatsRegistry::clear()
{
    MutexLock lock(mu_);
    scalars_.clear();
    hists_.clear();
}

} // namespace atscale
