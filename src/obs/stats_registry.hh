/**
 * @file
 * A gem5-style statistics registry: components register named scalars and
 * distributions under dotted hierarchical names ("mmu.tlb.l2.hits"), and
 * the registry renders them as a tree or materializes a flat snapshot at
 * end of run.
 *
 * Scalars are registered as callbacks reading the component's existing
 * counters, so registration costs nothing on the simulation hot path;
 * values are only pulled when the registry is dumped or snapshotted.
 * Because callbacks capture component pointers, a registry must not be
 * read after the registered components are destroyed — callers that need
 * the values to outlive the run take a snapshot() first.
 */

#ifndef ATSCALE_OBS_STATS_REGISTRY_HH
#define ATSCALE_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace atscale
{

/**
 * The registry. Names are dotted paths; registration order is free, the
 * dump sorts lexicographically and indents by path component.
 */
class StatsRegistry
{
  public:
    /** Callback producing the current value of a scalar statistic. */
    using Getter = std::function<double()>;

    /** Register a scalar statistic. fatal() on duplicate names. */
    void addScalar(const std::string &name, Getter get,
                   const std::string &desc = "");

    /**
     * Register a distribution. The histogram is observed by pointer and
     * expands to <name>.count / .p50 / .p90 / .p99 in dumps/snapshots.
     */
    void addHistogram(const std::string &name, const Histogram *hist,
                      const std::string &desc = "");

    /** One materialized (name, value) pair. */
    struct Sample
    {
        std::string name;
        double value = 0.0;
        std::string desc;
    };

    /** Pull every statistic's current value, sorted by name. */
    std::vector<Sample> snapshot() const;

    /** Render the current values as an indented tree. */
    void dump(std::ostream &os) const;

    /** Registered statistics (histograms count once). */
    std::size_t size() const { return scalars_.size() + hists_.size(); }
    bool empty() const { return size() == 0; }

    /** Drop all registrations (callbacks may dangle past their source). */
    void clear();

  private:
    struct ScalarEntry
    {
        std::string name;
        Getter get;
        std::string desc;
    };

    struct HistEntry
    {
        std::string name;
        const Histogram *hist;
        std::string desc;
    };

    bool taken(const std::string &name) const;

    std::vector<ScalarEntry> scalars_;
    std::vector<HistEntry> hists_;
};

} // namespace atscale

#endif // ATSCALE_OBS_STATS_REGISTRY_HH
