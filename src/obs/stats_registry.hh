/**
 * @file
 * A gem5-style statistics registry: components register named scalars and
 * distributions under dotted hierarchical names ("mmu.tlb.l2.hits"), and
 * the registry renders them as a tree or materializes a flat snapshot at
 * end of run.
 *
 * Scalars are registered as callbacks reading the component's existing
 * counters, so registration costs nothing on the simulation hot path;
 * values are only pulled when the registry is dumped or snapshotted.
 * Because callbacks capture component pointers, a registry must not be
 * read after the registered components are destroyed — callers that need
 * the values to outlive the run take a snapshot() first.
 */

#ifndef ATSCALE_OBS_STATS_REGISTRY_HH
#define ATSCALE_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.hh"
#include "util/thread_annotations.hh"

namespace atscale
{

/**
 * The registry. Names are dotted paths; registration order is free, the
 * dump sorts lexicographically and indents by path component.
 */
class StatsRegistry
{
  public:
    /** Callback producing the current value of a scalar statistic. */
    using Getter = std::function<double()>;

    /** Register a scalar statistic. fatal() on duplicate names. */
    void addScalar(const std::string &name, Getter get,
                   const std::string &desc = "") ATSCALE_EXCLUDES(mu_);

    /**
     * Register a distribution. The histogram is observed by pointer and
     * expands to <name>.count / .p50 / .p90 / .p99 in dumps/snapshots.
     */
    void addHistogram(const std::string &name, const Histogram *hist,
                      const std::string &desc = "") ATSCALE_EXCLUDES(mu_);

    /** One materialized (name, value) pair. */
    struct Sample
    {
        std::string name;
        double value = 0.0;
        std::string desc;
    };

    /** Pull every statistic's current value, sorted by name. */
    std::vector<Sample> snapshot() const ATSCALE_EXCLUDES(mu_);

    /** Render the current values as an indented tree. */
    void dump(std::ostream &os) const ATSCALE_EXCLUDES(mu_);

    /** Registered statistics (histograms count once). */
    std::size_t
    size() const ATSCALE_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return scalars_.size() + hists_.size();
    }
    bool empty() const { return size() == 0; }

    /** Drop all registrations (callbacks may dangle past their source). */
    void clear() ATSCALE_EXCLUDES(mu_);

  private:
    struct ScalarEntry
    {
        std::string name;
        Getter get;
        std::string desc;
    };

    struct HistEntry
    {
        std::string name;
        const Histogram *hist;
        std::string desc;
    };

    bool taken(const std::string &name) const ATSCALE_REQUIRES(mu_);

    /**
     * Serializes registration against snapshot/dump. A registry is
     * normally confined to one sweep job's worker thread, but nothing
     * in the API forces that — components register from wherever the
     * experiment driver wires them — so the registry locks its own
     * tables rather than trusting every caller's threading discipline.
     * Getter callbacks run under the lock during snapshot(); they read
     * component counters and must not re-enter the registry.
     */
    mutable Mutex mu_;
    std::vector<ScalarEntry> scalars_ ATSCALE_GUARDED_BY(mu_);
    std::vector<HistEntry> hists_ ATSCALE_GUARDED_BY(mu_);
};

} // namespace atscale

#endif // ATSCALE_OBS_STATS_REGISTRY_HH
