#include "obs/walk_trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "obs/json.hh"
#include "util/logging.hh"

namespace atscale
{

namespace
{

constexpr const char *outcomeNames[] = {
    "completed", "faulted", "aborted", "wrong_path"};

/** MemLevel names, local so obs does not link against the cache lib. */
constexpr const char *hitLevelNames[] = {"L1", "L2", "L3", "memory"};

/**
 * Find `"key":` in a JSONL line and return the character offset of the
 * value, or npos.
 */
std::size_t
valueOffset(const std::string &line, const char *key)
{
    std::string needle = std::string("\"") + key + "\":";
    std::size_t pos = line.find(needle);
    return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

bool
parseU64(const std::string &line, const char *key, std::uint64_t &out,
         int base = 10)
{
    std::size_t pos = valueOffset(line, key);
    if (pos == std::string::npos)
        return false;
    if (line[pos] == '"')
        ++pos;
    char *end = nullptr;
    out = std::strtoull(line.c_str() + pos, &end, base);
    return end != line.c_str() + pos;
}

bool
parseString(const std::string &line, const char *key, std::string &out)
{
    std::size_t pos = valueOffset(line, key);
    if (pos == std::string::npos || line[pos] != '"')
        return false;
    std::size_t close = line.find('"', pos + 1);
    if (close == std::string::npos)
        return false;
    out = line.substr(pos + 1, close - pos - 1);
    return true;
}

} // namespace

const char *
walkOutcomeName(WalkOutcome outcome)
{
    return outcomeNames[static_cast<std::size_t>(outcome)];
}

std::optional<WalkOutcome>
walkOutcomeFromName(const std::string &name)
{
    for (std::size_t i = 0; i < 4; ++i)
        if (name == outcomeNames[i])
            return static_cast<WalkOutcome>(i);
    return std::nullopt;
}

WalkOutcome
classifyWalk(const WalkResult &walk, bool retired)
{
    if (!walk.completed)
        return WalkOutcome::Aborted;
    if (walk.faulted)
        return WalkOutcome::Faulted;
    return retired ? WalkOutcome::Completed : WalkOutcome::WrongPath;
}

WalkTracer::WalkTracer(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

const WalkTrace &
WalkTracer::at(std::size_t i) const
{
    panic_if(i >= size(), "walk trace index %zu out of range", i);
    std::size_t start = recorded_ < ring_.size() ? 0 : head_;
    return ring_[(start + i) % ring_.size()];
}

void
WalkTracer::clear()
{
    head_ = 0;
    recorded_ = 0;
}

std::string
walkTraceToJsonl(const WalkTrace &trace, std::uint64_t seq)
{
    char va[32];
    std::snprintf(va, sizeof(va), "0x%llx",
                  static_cast<unsigned long long>(trace.vaddr));
    std::ostringstream os;
    os << "{\"seq\":" << seq << ",\"va\":\"" << va << "\",\"store\":"
       << (trace.isStore ? "true" : "false")
       << ",\"start_level\":" << static_cast<int>(trace.startLevel)
       << ",\"outcome\":\"" << walkOutcomeName(trace.outcome)
       << "\",\"cycles\":" << trace.cycles
       << ",\"start_cycle\":" << trace.startCycle << ",\"pte_hit\":[";
    for (int i = 0; i < ptLevels; ++i) {
        if (i)
            os << ',';
        os << static_cast<int>(trace.hitLevel[static_cast<std::size_t>(i)]);
    }
    os << "]}";
    return os.str();
}

std::optional<WalkTrace>
walkTraceFromJsonl(const std::string &line)
{
    WalkTrace t;
    std::uint64_t u;
    std::string s;

    if (!parseU64(line, "va", u, 16))
        return std::nullopt;
    t.vaddr = u;
    if (!parseString(line, "outcome", s))
        return std::nullopt;
    auto outcome = walkOutcomeFromName(s);
    if (!outcome)
        return std::nullopt;
    t.outcome = *outcome;
    if (!parseU64(line, "cycles", u))
        return std::nullopt;
    t.cycles = u;
    if (!parseU64(line, "start_cycle", u))
        return std::nullopt;
    t.startCycle = u;
    if (!parseU64(line, "start_level", u))
        return std::nullopt;
    t.startLevel = static_cast<std::int8_t>(u);

    std::size_t pos = valueOffset(line, "store");
    if (pos == std::string::npos)
        return std::nullopt;
    t.isStore = line.compare(pos, 4, "true") == 0;

    pos = valueOffset(line, "pte_hit");
    if (pos == std::string::npos || line[pos] != '[')
        return std::nullopt;
    ++pos;
    for (int i = 0; i < ptLevels; ++i) {
        char *end = nullptr;
        long v = std::strtol(line.c_str() + pos, &end, 10);
        if (end == line.c_str() + pos)
            return std::nullopt;
        t.hitLevel[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(v);
        pos = static_cast<std::size_t>(end - line.c_str());
        if (i + 1 < ptLevels) {
            if (line[pos] != ',')
                return std::nullopt;
            ++pos;
        }
    }
    return t;
}

void
WalkTracer::exportJsonl(std::ostream &os) const
{
    std::uint64_t seq = firstSeq();
    for (std::size_t i = 0; i < size(); ++i)
        os << walkTraceToJsonl(at(i), seq + i) << '\n';
}

void
WalkTracer::exportChromeTrace(std::ostream &os, double freqGHz) const
{
    // Cycles -> microseconds at the platform frequency.
    const double usPerCycle = 1.0 / (freqGHz * 1e3);

    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (std::size_t i = 0; i < size(); ++i) {
        const WalkTrace &t = at(i);
        char va[32];
        std::snprintf(va, sizeof(va), "0x%llx",
                      static_cast<unsigned long long>(t.vaddr));
        os << '\n';
        w.beginObject();
        w.kv("name", std::string("walk ") + walkOutcomeName(t.outcome));
        w.kv("cat", "ptw");
        w.kv("ph", "X");
        w.kv("ts", static_cast<double>(t.startCycle) * usPerCycle);
        // Perfetto drops zero-duration complete events; floor at 1 ns.
        w.kv("dur",
             std::max(static_cast<double>(t.cycles) * usPerCycle, 1e-3));
        w.kv("pid", std::uint64_t{1});
        w.kv("tid", std::uint64_t{1});
        w.key("args").beginObject();
        w.kv("va", va);
        w.kv("store", t.isStore);
        w.kv("start_level", static_cast<int>(t.startLevel));
        w.kv("cycles", t.cycles);
        w.key("pte_hit").beginArray();
        for (int lvl = 0; lvl < ptLevels; ++lvl) {
            std::int8_t h = t.hitLevel[static_cast<std::size_t>(lvl)];
            w.value(h == walkLevelNotVisited
                        ? "-"
                        : hitLevelNames[static_cast<std::size_t>(h)]);
        }
        w.endArray();
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.kv("displayTimeUnit", "ns");
    w.endObject();
    os << '\n';
}

} // namespace atscale
