/**
 * @file
 * Per-walk tracing: a bounded ring buffer of WalkTrace records capturing
 * everything one page-table walk did — virtual address, the radix level
 * the walk started at after PSC probing, where in the cache hierarchy
 * each visited level's PTE was found, cycles, and the walk's fate
 * (completed / faulted / aborted / wrong-path).
 *
 * Records export to JSONL (one record per line, machine-readable) and to
 * Chrome trace_event JSON loadable in Perfetto / chrome://tracing. The
 * tracer is attached to a Core by pointer; when no tracer is attached the
 * hook is a single never-taken branch, so tracing costs nothing when
 * disabled.
 */

#ifndef ATSCALE_OBS_WALK_TRACE_HH
#define ATSCALE_OBS_WALK_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "mmu/walker.hh"

namespace atscale
{

/** Fate of one traced walk (the trace-level view of Table VI). */
enum class WalkOutcome : std::uint8_t
{
    /** Completed with a present leaf and the access retired. */
    Completed = 0,
    /** Completed at a not-present entry (page fault on a correct path). */
    Faulted = 1,
    /** Squashed by its cycle budget before reaching a terminal entry. */
    Aborted = 2,
    /** Completed but the access never retired (speculative or flushed). */
    WrongPath = 3,
};

/** Outcome name ("completed", "faulted", "aborted", "wrong_path"). */
const char *walkOutcomeName(WalkOutcome outcome);

/** Reverse lookup from an outcome name. */
std::optional<WalkOutcome> walkOutcomeFromName(const std::string &name);

/**
 * Classify a finished walk. `retired` is whether the triggering access
 * retired on the correct path (false for speculative walks and walks
 * inside a machine-clear squash window).
 */
WalkOutcome classifyWalk(const WalkResult &walk, bool retired);

/** Sentinel for "radix level not visited" in WalkTrace::hitLevel. */
constexpr std::int8_t walkLevelNotVisited = -1;

/** One traced walk. */
struct WalkTrace
{
    /** Virtual address whose translation triggered the walk. */
    Addr vaddr = 0;
    /** Core cycle at which the walk was accounted. */
    Cycles startCycle = 0;
    /** Cycles the walk occupied the walker. */
    Cycles cycles = 0;
    /** Radix level the walk started at after PSC probing (3 = root). */
    std::int8_t startLevel = ptLevels - 1;
    /**
     * Cache-hierarchy level (MemLevel as int) that served the PTE load
     * at each radix level, indexed 0 (PT) .. 3 (PML4);
     * walkLevelNotVisited where the walk never issued a load.
     */
    std::array<std::int8_t, ptLevels> hitLevel{
        walkLevelNotVisited, walkLevelNotVisited,
        walkLevelNotVisited, walkLevelNotVisited};
    WalkOutcome outcome = WalkOutcome::Completed;
    /** The triggering access was a store. */
    bool isStore = false;

    bool operator==(const WalkTrace &) const = default;
};

/**
 * Bounded ring buffer of walk records. When full, new records overwrite
 * the oldest; recorded() vs size() exposes how many were dropped.
 */
class WalkTracer
{
  public:
    explicit WalkTracer(std::size_t capacity = 1 << 16);

    /** Append one record (overwrites the oldest when full). */
    void
    record(const WalkTrace &trace)
    {
        ring_[head_] = trace;
        head_ = (head_ + 1) % ring_.size();
        ++recorded_;
    }

    /** Records currently held (<= capacity). */
    std::size_t
    size() const
    {
        return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                        : ring_.size();
    }

    /** Records ever recorded (monotone). */
    std::uint64_t recorded() const { return recorded_; }

    /** Records lost to ring wraparound. */
    std::uint64_t dropped() const { return recorded_ - size(); }

    std::size_t capacity() const { return ring_.size(); }

    /** The i-th held record, oldest first (0 <= i < size()). */
    const WalkTrace &at(std::size_t i) const;

    /** Sequence number of the oldest held record (0-based). */
    std::uint64_t firstSeq() const { return dropped(); }

    /** Forget all records. */
    void clear();

    /** One JSONL line per held record, oldest first. */
    void exportJsonl(std::ostream &os) const;

    /**
     * Chrome trace_event JSON ("traceEvents" array of complete events,
     * one per walk, timestamped in microseconds at freqGHz). Loadable in
     * Perfetto and chrome://tracing.
     */
    void exportChromeTrace(std::ostream &os, double freqGHz = 2.5) const;

  private:
    std::vector<WalkTrace> ring_;
    std::size_t head_ = 0;
    std::uint64_t recorded_ = 0;
};

/** Serialize one record as a single JSONL line (no trailing newline). */
std::string walkTraceToJsonl(const WalkTrace &trace, std::uint64_t seq);

/**
 * Parse a line produced by walkTraceToJsonl / WalkTracer::exportJsonl.
 * Returns nullopt on malformed input.
 */
std::optional<WalkTrace> walkTraceFromJsonl(const std::string &line);

} // namespace atscale

#endif // ATSCALE_OBS_WALK_TRACE_HH
