/**
 * @file
 * A bank of performance counters, one per EventId.
 */

#ifndef ATSCALE_PERF_COUNTER_SET_HH
#define ATSCALE_PERF_COUNTER_SET_HH

#include <array>
#include <cstdint>

#include "perf/event.hh"
#include "util/types.hh"

namespace atscale
{

/**
 * Fixed-size counter bank. Supports snapshot/delta so a measurement
 * window can be carved out of a longer run (warm-up exclusion).
 */
class CounterSet
{
  public:
    /** Increment an event by n. */
    void
    add(EventId id, Count n = 1)
    {
        counts_[static_cast<size_t>(id)] += n;
    }

    /** Read an event. */
    Count
    get(EventId id) const
    {
        return counts_[static_cast<size_t>(id)];
    }

    /** Zero all counters. */
    void reset() { counts_.fill(0); }

    /**
     * Invoke fn(id, name, value) for every event in EventId order, so
     * exporters and dumpers never hand-enumerate the event vocabulary.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (int i = 0; i < numEvents; ++i) {
            auto id = static_cast<EventId>(i);
            fn(id, eventName(id), counts_[static_cast<size_t>(i)]);
        }
    }

    /** Element-wise difference (this - earlier snapshot). */
    CounterSet
    since(const CounterSet &snapshot) const
    {
        CounterSet delta;
        for (size_t i = 0; i < counts_.size(); ++i)
            delta.counts_[i] = counts_[i] - snapshot.counts_[i];
        return delta;
    }

    /** Element-wise sum. */
    CounterSet &
    operator+=(const CounterSet &other)
    {
        for (size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        return *this;
    }

  private:
    std::array<Count, numEvents> counts_{};
};

} // namespace atscale

#endif // ATSCALE_PERF_COUNTER_SET_HH
