#include "perf/derived.hh"

namespace atscale
{

namespace
{

double
ratio(double num, double den)
{
    return den > 0 ? num / den : 0.0;
}

} // namespace

double
WalkOutcomes::abortedFraction() const
{
    return ratio(static_cast<double>(aborted),
                 static_cast<double>(initiated));
}

double
WalkOutcomes::wrongPathFraction() const
{
    return ratio(static_cast<double>(wrongPath),
                 static_cast<double>(initiated));
}

double
WalkOutcomes::nonRetiredFraction() const
{
    return ratio(static_cast<double>(aborted + wrongPath),
                 static_cast<double>(initiated));
}

WalkOutcomes
walkOutcomes(const CounterSet &c)
{
    WalkOutcomes outcomes;
    outcomes.initiated =
        c.get(EventId::DtlbLoadMissesMissCausesAWalk) +
        c.get(EventId::DtlbStoreMissesMissCausesAWalk);
    outcomes.completed =
        c.get(EventId::DtlbLoadMissesWalkCompleted) +
        c.get(EventId::DtlbStoreMissesWalkCompleted);
    outcomes.retired =
        c.get(EventId::MemUopsRetiredStlbMissLoads) +
        c.get(EventId::MemUopsRetiredStlbMissStores);
    outcomes.aborted = outcomes.initiated - outcomes.completed;
    outcomes.wrongPath = outcomes.completed - outcomes.retired;
    return outcomes;
}

Count
totalAccesses(const CounterSet &c)
{
    return c.get(EventId::MemUopsRetiredAllLoads) +
           c.get(EventId::MemUopsRetiredAllStores);
}

Count
totalWalkCycles(const CounterSet &c)
{
    return c.get(EventId::DtlbLoadMissesWalkDuration) +
           c.get(EventId::DtlbStoreMissesWalkDuration);
}

Count
totalWalksInitiated(const CounterSet &c)
{
    return c.get(EventId::DtlbLoadMissesMissCausesAWalk) +
           c.get(EventId::DtlbStoreMissesMissCausesAWalk);
}

double
WcpiTerms::wcpi() const
{
    return accessesPerInstr * tlbMissesPerAccess * ptwAccessesPerWalk *
           walkCyclesPerPtwAccess;
}

WcpiTerms
wcpiTerms(const CounterSet &c)
{
    auto instr = static_cast<double>(c.get(EventId::InstRetired));
    auto accesses = static_cast<double>(totalAccesses(c));
    auto walks = static_cast<double>(totalWalksInitiated(c));
    auto ptw_accesses = static_cast<double>(
        c.get(EventId::PageWalkerLoadsDtlbL1) +
        c.get(EventId::PageWalkerLoadsDtlbL2) +
        c.get(EventId::PageWalkerLoadsDtlbL3) +
        c.get(EventId::PageWalkerLoadsDtlbMemory));
    auto walk_cycles = static_cast<double>(totalWalkCycles(c));

    WcpiTerms terms;
    terms.accessesPerInstr = ratio(accesses, instr);
    terms.tlbMissesPerAccess = ratio(walks, accesses);
    terms.ptwAccessesPerWalk = ratio(ptw_accesses, walks);
    terms.walkCyclesPerPtwAccess = ratio(walk_cycles, ptw_accesses);
    return terms;
}

ProxyMetrics
proxyMetrics(const CounterSet &c)
{
    auto instr = static_cast<double>(c.get(EventId::InstRetired));
    auto cycles = static_cast<double>(c.get(EventId::CpuClkUnhalted));
    auto accesses = static_cast<double>(totalAccesses(c));
    auto walks = static_cast<double>(totalWalksInitiated(c));
    auto walk_cycles = static_cast<double>(totalWalkCycles(c));

    ProxyMetrics proxy;
    proxy.tlbMissesPerKiloAccess = 1000.0 * ratio(walks, accesses);
    proxy.tlbMissesPerKiloInstr = 1000.0 * ratio(walks, instr);
    proxy.walkCycleFraction = ratio(walk_cycles, cycles);
    proxy.walkCyclesPerAccess = ratio(walk_cycles, accesses);
    proxy.walkCyclesPerInstr = ratio(walk_cycles, instr);
    return proxy;
}

PteLocations
pteLocations(const CounterSet &c)
{
    auto l1 = static_cast<double>(c.get(EventId::PageWalkerLoadsDtlbL1));
    auto l2 = static_cast<double>(c.get(EventId::PageWalkerLoadsDtlbL2));
    auto l3 = static_cast<double>(c.get(EventId::PageWalkerLoadsDtlbL3));
    auto mem = static_cast<double>(c.get(EventId::PageWalkerLoadsDtlbMemory));
    double total = l1 + l2 + l3 + mem;

    PteLocations loc;
    loc.l1 = ratio(l1, total);
    loc.l2 = ratio(l2, total);
    loc.l3 = ratio(l3, total);
    loc.memory = ratio(mem, total);
    return loc;
}

double
machineClearsPerKiloInstr(const CounterSet &c)
{
    return 1000.0 *
           ratio(static_cast<double>(c.get(EventId::MachineClearsCount)),
                 static_cast<double>(c.get(EventId::InstRetired)));
}

} // namespace atscale
