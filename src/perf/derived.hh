/**
 * @file
 * Derived metrics: the paper's counter arithmetic.
 *
 * Implements Table VI (walk outcome counts), Equation 1 (the WCPI
 * decomposition), the five AT-pressure proxy metrics compared in Table V,
 * and the PTE access-location distribution of Fig 8 — all as pure
 * functions of a CounterSet, so they work identically on simulated and
 * real PMU data.
 */

#ifndef ATSCALE_PERF_DERIVED_HH
#define ATSCALE_PERF_DERIVED_HH

#include "perf/counter_set.hh"

namespace atscale
{

/** Table VI: outcomes of initiated page-table walks. */
struct WalkOutcomes
{
    Count initiated = 0;  ///< dtlb_{load,store}_misses.miss_causes_a_walk
    Count completed = 0;  ///< dtlb_{load,store}_misses.walk_completed
    Count retired = 0;    ///< mem_uops_retired.stlb_miss_{loads,stores}
    Count aborted = 0;    ///< initiated - completed
    Count wrongPath = 0;  ///< completed - retired

    /** Fraction of initiated walks that were aborted. */
    double abortedFraction() const;
    /** Fraction of initiated walks that completed on a wrong path. */
    double wrongPathFraction() const;
    /** Aborted + wrong-path fraction (the paper's headline 57%). */
    double nonRetiredFraction() const;
};

/** Compute Table VI outcome counts from a counter bank. */
WalkOutcomes walkOutcomes(const CounterSet &counters);

/** Equation 1: the multiplicative WCPI decomposition. */
struct WcpiTerms
{
    /** Accesses / instruction — the program term. */
    double accessesPerInstr = 0;
    /** TLB misses (walks) / access — the TLB term. */
    double tlbMissesPerAccess = 0;
    /** PTW accesses / walk — the MMU cache term. */
    double ptwAccessesPerWalk = 0;
    /** Walk cycles / PTW access — the cache hierarchy term. */
    double walkCyclesPerPtwAccess = 0;

    /** The product of the four terms (== walk cycles / instruction). */
    double wcpi() const;
};

/** Compute the Equation-1 terms from a counter bank. */
WcpiTerms wcpiTerms(const CounterSet &counters);

/** The five AT-pressure proxy metrics of Table V. */
struct ProxyMetrics
{
    double tlbMissesPerKiloAccess = 0;
    double tlbMissesPerKiloInstr = 0;
    /** Fraction of cycles with an outstanding walk. */
    double walkCycleFraction = 0;
    double walkCyclesPerAccess = 0;
    double walkCyclesPerInstr = 0;
};

/** Compute the Table-V proxy metrics from a counter bank. */
ProxyMetrics proxyMetrics(const CounterSet &counters);

/** Fig 8: where the walker found PTEs, as fractions of all PTW loads. */
struct PteLocations
{
    double l1 = 0;
    double l2 = 0;
    double l3 = 0;
    double memory = 0;
};

/** Compute the PTE-location distribution from a counter bank. */
PteLocations pteLocations(const CounterSet &counters);

/** Convenience: total retired memory accesses (loads + stores). */
Count totalAccesses(const CounterSet &counters);

/** Convenience: total walk cycles (load + store walks). */
Count totalWalkCycles(const CounterSet &counters);

/** Convenience: total initiated walks. */
Count totalWalksInitiated(const CounterSet &counters);

/** Machine clears per (kilo) instruction, for Fig 9. */
double machineClearsPerKiloInstr(const CounterSet &counters);

} // namespace atscale

#endif // ATSCALE_PERF_DERIVED_HH
