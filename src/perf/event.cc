#include "perf/event.hh"

#include <array>

#include "util/logging.hh"

namespace atscale
{

namespace
{

const std::array<const char *, numEvents> names = {
    "cpu_clk_unhalted.thread",
    "inst_retired.any",
    "mem_uops_retired.all_loads",
    "mem_uops_retired.all_stores",
    "mem_uops_retired.stlb_miss_loads",
    "mem_uops_retired.stlb_miss_stores",
    "dtlb_load_misses.miss_causes_a_walk",
    "dtlb_store_misses.miss_causes_a_walk",
    "dtlb_load_misses.walk_completed",
    "dtlb_store_misses.walk_completed",
    "dtlb_load_misses.walk_duration",
    "dtlb_store_misses.walk_duration",
    "dtlb_load_misses.stlb_hit",
    "dtlb_store_misses.stlb_hit",
    "page_walker_loads.dtlb_l1",
    "page_walker_loads.dtlb_l2",
    "page_walker_loads.dtlb_l3",
    "page_walker_loads.dtlb_memory",
    "machine_clears.count",
    "br_inst_retired.all_branches",
    "br_misp_retired.all_branches",
};

} // namespace

const char *
eventName(EventId id)
{
    auto idx = static_cast<size_t>(id);
    panic_if(idx >= names.size(), "bad event id %zu", idx);
    return names[idx];
}

std::optional<EventId>
eventFromName(const std::string &name)
{
    for (size_t i = 0; i < names.size(); ++i)
        if (name == names[i])
            return static_cast<EventId>(i);
    return std::nullopt;
}

} // namespace atscale
