/**
 * @file
 * Performance event identifiers.
 *
 * The vocabulary mirrors the Intel Haswell events the paper reads (Table
 * VI and Section V): dTLB miss/walk events split by load/store, the
 * page_walker_loads hit-location events, retired-uop STLB-miss events,
 * machine clears, and branch mispredictions. Keeping the hardware names
 * makes the analysis layer identical whether counters come from the
 * bundled simulator or from a real PMU.
 */

#ifndef ATSCALE_PERF_EVENT_HH
#define ATSCALE_PERF_EVENT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace atscale
{

/** Every performance event the harness knows about. */
enum class EventId : std::uint8_t
{
    CpuClkUnhalted = 0,              ///< cpu_clk_unhalted.thread
    InstRetired,                     ///< inst_retired.any

    MemUopsRetiredAllLoads,          ///< mem_uops_retired.all_loads
    MemUopsRetiredAllStores,         ///< mem_uops_retired.all_stores
    MemUopsRetiredStlbMissLoads,     ///< mem_uops_retired.stlb_miss_loads
    MemUopsRetiredStlbMissStores,    ///< mem_uops_retired.stlb_miss_stores

    DtlbLoadMissesMissCausesAWalk,   ///< dtlb_load_misses.miss_causes_a_walk
    DtlbStoreMissesMissCausesAWalk,  ///< dtlb_store_misses.miss_causes_a_walk
    DtlbLoadMissesWalkCompleted,     ///< dtlb_load_misses.walk_completed
    DtlbStoreMissesWalkCompleted,    ///< dtlb_store_misses.walk_completed
    DtlbLoadMissesWalkDuration,      ///< dtlb_load_misses.walk_duration
    DtlbStoreMissesWalkDuration,     ///< dtlb_store_misses.walk_duration
    DtlbLoadMissesStlbHit,           ///< dtlb_load_misses.stlb_hit
    DtlbStoreMissesStlbHit,          ///< dtlb_store_misses.stlb_hit

    PageWalkerLoadsDtlbL1,           ///< page_walker_loads.dtlb_l1
    PageWalkerLoadsDtlbL2,           ///< page_walker_loads.dtlb_l2
    PageWalkerLoadsDtlbL3,           ///< page_walker_loads.dtlb_l3
    PageWalkerLoadsDtlbMemory,       ///< page_walker_loads.dtlb_memory

    MachineClearsCount,              ///< machine_clears.count
    BrInstRetiredAllBranches,        ///< br_inst_retired.all_branches
    BrMispRetiredAllBranches,        ///< br_misp_retired.all_branches

    NumEvents,
};

/** Number of distinct events. */
constexpr int numEvents = static_cast<int>(EventId::NumEvents);

/** Hardware-style event name (e.g. "dtlb_load_misses.walk_duration"). */
const char *eventName(EventId id);

/** Reverse lookup from a hardware-style name. */
std::optional<EventId> eventFromName(const std::string &name);

} // namespace atscale

#endif // ATSCALE_PERF_EVENT_HH
