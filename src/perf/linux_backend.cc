#include "perf/linux_backend.hh"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <climits>
#include <cstring>
#include <fstream>

#include "util/logging.hh"

namespace atscale
{

std::uint64_t
scaledCounterValue(std::uint64_t value, std::uint64_t enabled,
                   std::uint64_t running)
{
    if (running == 0)
        return 0;
    if (running >= enabled)
        return value;
    return static_cast<std::uint64_t>(
        static_cast<double>(value) *
        (static_cast<double>(enabled) / static_cast<double>(running)));
}

#ifdef __linux__

namespace
{

struct EventEncoding
{
    EventId id;
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t
hwCache(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

// Portable encodings first; raw Haswell (06_3F) encodings for the rest.
// Raw format: event | (umask << 8).
constexpr std::uint64_t
rawEvent(std::uint64_t event, std::uint64_t umask)
{
    return event | (umask << 8);
}

// Every EventId must appear here and in event.cc's name table — a
// silently unmapped event reads as zero (atscale-lint rule R7).
const EventEncoding encodings[] = {
    {EventId::CpuClkUnhalted, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {EventId::InstRetired, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {EventId::BrInstRetiredAllBranches, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {EventId::BrMispRetiredAllBranches, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_MISSES},
    {EventId::DtlbLoadMissesMissCausesAWalk, PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
             PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {EventId::DtlbStoreMissesMissCausesAWalk, PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_WRITE,
             PERF_COUNT_HW_CACHE_RESULT_MISS)},
    // Raw Haswell encodings (Intel SDM / perfmon events).
    {EventId::DtlbLoadMissesWalkCompleted, PERF_TYPE_RAW, rawEvent(0x08, 0x0e)},
    {EventId::DtlbStoreMissesWalkCompleted, PERF_TYPE_RAW, rawEvent(0x49, 0x0e)},
    {EventId::DtlbLoadMissesWalkDuration, PERF_TYPE_RAW, rawEvent(0x08, 0x10)},
    {EventId::DtlbStoreMissesWalkDuration, PERF_TYPE_RAW, rawEvent(0x49, 0x10)},
    {EventId::DtlbLoadMissesStlbHit, PERF_TYPE_RAW, rawEvent(0x08, 0x60)},
    {EventId::DtlbStoreMissesStlbHit, PERF_TYPE_RAW, rawEvent(0x49, 0x60)},
    {EventId::MemUopsRetiredAllLoads, PERF_TYPE_RAW, rawEvent(0xd0, 0x81)},
    {EventId::MemUopsRetiredAllStores, PERF_TYPE_RAW, rawEvent(0xd0, 0x82)},
    {EventId::MemUopsRetiredStlbMissLoads, PERF_TYPE_RAW, rawEvent(0xd0, 0x11)},
    {EventId::MemUopsRetiredStlbMissStores, PERF_TYPE_RAW,
     rawEvent(0xd0, 0x12)},
    {EventId::PageWalkerLoadsDtlbL1, PERF_TYPE_RAW, rawEvent(0xbc, 0x11)},
    {EventId::PageWalkerLoadsDtlbL2, PERF_TYPE_RAW, rawEvent(0xbc, 0x12)},
    {EventId::PageWalkerLoadsDtlbL3, PERF_TYPE_RAW, rawEvent(0xbc, 0x14)},
    {EventId::PageWalkerLoadsDtlbMemory, PERF_TYPE_RAW, rawEvent(0xbc, 0x18)},
    {EventId::MachineClearsCount, PERF_TYPE_RAW, rawEvent(0xc3, 0x01)},
};

const EventEncoding *
findEncoding(EventId id)
{
    for (const auto &e : encodings)
        if (e.id == id)
            return &e;
    return nullptr;
}

int
realOpen(std::uint32_t type, std::uint64_t config, int groupFd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    int fd = static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, groupFd, 0));
    return fd >= 0 ? fd : -errno;
}

int
realClose(int fd)
{
    return ::close(fd) == 0 ? 0 : -errno;
}

int
realControl(int fd, CounterCtl ctl)
{
    unsigned long request = PERF_EVENT_IOC_RESET;
    switch (ctl) {
      case CounterCtl::Reset:
        request = PERF_EVENT_IOC_RESET;
        break;
      case CounterCtl::Enable:
        request = PERF_EVENT_IOC_ENABLE;
        break;
      case CounterCtl::Disable:
        request = PERF_EVENT_IOC_DISABLE;
        break;
    }
    return ioctl(fd, request, 0) == 0 ? 0 : -errno;
}

int
realRead(int fd, CounterReadSample &out)
{
    struct
    {
        std::uint64_t value;
        std::uint64_t enabled;
        std::uint64_t running;
    } data{};
    ssize_t n = ::read(fd, &data, sizeof(data));
    if (n < 0)
        return -errno;
    if (n != static_cast<ssize_t>(sizeof(data)))
        return -EIO;
    out.value = data.value;
    out.enabled = data.enabled;
    out.running = data.running;
    return 0;
}

} // namespace

const PerfCounterOps &
realPerfCounterOps()
{
    static const PerfCounterOps ops{realOpen, realClose, realControl,
                                    realRead};
    return ops;
}

#else // !__linux__

namespace
{

struct EventEncoding
{
    EventId id;
    std::uint32_t type;
    std::uint64_t config;
};

const EventEncoding *
findEncoding(EventId)
{
    return nullptr;
}

} // namespace

const PerfCounterOps &
realPerfCounterOps()
{
    static const PerfCounterOps ops{
        [](std::uint32_t, std::uint64_t, int) { return -ENOSYS; },
        [](int) { return -ENOSYS; },
        [](int, CounterCtl) { return -ENOSYS; },
        [](int, CounterReadSample &) { return -ENOSYS; },
    };
    return ops;
}

#endif // __linux__

LinuxPerfBackend::LinuxPerfBackend(const PerfCounterOps *ops)
    : ops_(ops ? *ops : realPerfCounterOps())
{
}

LinuxPerfBackend::~LinuxPerfBackend()
{
    close();
}

bool
LinuxPerfBackend::available()
{
#ifdef __linux__
    const PerfCounterOps &ops = realPerfCounterOps();
    int fd = ops.open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd < 0)
        return false;
    ops.close(fd);
    return true;
#else
    return false;
#endif
}

int
LinuxPerfBackend::perfParanoidLevel()
{
    std::ifstream proc("/proc/sys/kernel/perf_event_paranoid");
    int level = INT_MIN;
    if (proc)
        proc >> level;
    return proc ? level : INT_MIN;
}

std::vector<EventId>
LinuxPerfBackend::open(const std::vector<EventId> &events)
{
    close();
    for (EventId id : events) {
        const EventEncoding *enc = findEncoding(id);
        if (!enc)
            continue;
        int fd = ops_.open(enc->type, enc->config, -1);
        if (fd < 0)
            continue;
        fds_.push_back(fd);
        openedIds_.push_back(id);
    }
    return openedIds_;
}

bool
LinuxPerfBackend::openGroup(const std::vector<EventId> &events)
{
    close();
    grouped_ = true;
    for (EventId id : events) {
        const EventEncoding *enc = findEncoding(id);
        int fd = enc ? ops_.open(enc->type, enc->config,
                                 fds_.empty() ? -1 : fds_.front())
                     : -ENOENT;
        if (fd < 0) {
            // Partial-open failure: roll the whole group back so no fd
            // leaks and the backend is observably empty.
            close();
            return false;
        }
        fds_.push_back(fd);
        openedIds_.push_back(id);
    }
    return !fds_.empty();
}

std::vector<EventProbe>
LinuxPerfBackend::probeEvents(const std::vector<EventId> &events,
                              const PerfCounterOps *opsOverride)
{
    const PerfCounterOps &ops =
        opsOverride ? *opsOverride : realPerfCounterOps();
    std::vector<EventProbe> probes;
    probes.reserve(events.size());
    for (EventId id : events) {
        EventProbe probe;
        probe.id = id;
        const EventEncoding *enc = findEncoding(id);
        if (!enc) {
            probe.error = ENOENT;
        } else {
            int fd = ops.open(enc->type, enc->config, -1);
            if (fd < 0) {
                probe.error = -fd;
            } else {
                probe.available = true;
                ops.close(fd);
            }
        }
        probes.push_back(probe);
    }
    return probes;
}

void
LinuxPerfBackend::start()
{
    for (int fd : fds_) {
        ops_.control(fd, CounterCtl::Reset);
        ops_.control(fd, CounterCtl::Enable);
    }
}

void
LinuxPerfBackend::stop()
{
    for (int fd : fds_)
        ops_.control(fd, CounterCtl::Disable);
}

CounterSet
LinuxPerfBackend::read() const
{
    constexpr int maxEintrRetries = 64;
    CounterSet counters;
    for (size_t i = 0; i < fds_.size(); ++i) {
        CounterReadSample sample;
        int rc = ops_.read(fds_[i], sample);
        for (int retry = 0; rc == -EINTR && retry < maxEintrRetries; ++retry)
            rc = ops_.read(fds_[i], sample);
        if (rc != 0)
            continue;
        counters.add(openedIds_[i],
                     scaledCounterValue(sample.value, sample.enabled,
                                        sample.running));
    }
    return counters;
}

void
LinuxPerfBackend::close()
{
    for (int fd : fds_)
        ops_.close(fd);
    fds_.clear();
    openedIds_.clear();
    grouped_ = false;
}

} // namespace atscale
