#include "perf/linux_backend.hh"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

#include "util/logging.hh"

namespace atscale
{

#ifdef __linux__

namespace
{

struct EventEncoding
{
    EventId id;
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t
hwCache(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

// Portable encodings first; raw Haswell (06_3F) encodings for the rest.
// Raw format: event | (umask << 8).
constexpr std::uint64_t
rawEvent(std::uint64_t event, std::uint64_t umask)
{
    return event | (umask << 8);
}

const EventEncoding encodings[] = {
    {EventId::CpuClkUnhalted, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {EventId::InstRetired, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {EventId::BrInstRetiredAllBranches, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {EventId::BrMispRetiredAllBranches, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_MISSES},
    {EventId::DtlbLoadMissesMissCausesAWalk, PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
             PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {EventId::DtlbStoreMissesMissCausesAWalk, PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_WRITE,
             PERF_COUNT_HW_CACHE_RESULT_MISS)},
    // Raw Haswell encodings (Intel SDM / perfmon events).
    {EventId::DtlbLoadMissesWalkCompleted, PERF_TYPE_RAW, rawEvent(0x08, 0x0e)},
    {EventId::DtlbStoreMissesWalkCompleted, PERF_TYPE_RAW, rawEvent(0x49, 0x0e)},
    {EventId::DtlbLoadMissesWalkDuration, PERF_TYPE_RAW, rawEvent(0x08, 0x10)},
    {EventId::DtlbStoreMissesWalkDuration, PERF_TYPE_RAW, rawEvent(0x49, 0x10)},
    {EventId::DtlbLoadMissesStlbHit, PERF_TYPE_RAW, rawEvent(0x08, 0x60)},
    {EventId::DtlbStoreMissesStlbHit, PERF_TYPE_RAW, rawEvent(0x49, 0x60)},
    {EventId::MemUopsRetiredAllLoads, PERF_TYPE_RAW, rawEvent(0xd0, 0x81)},
    {EventId::MemUopsRetiredAllStores, PERF_TYPE_RAW, rawEvent(0xd0, 0x82)},
    {EventId::MemUopsRetiredStlbMissLoads, PERF_TYPE_RAW, rawEvent(0xd0, 0x11)},
    {EventId::MemUopsRetiredStlbMissStores, PERF_TYPE_RAW,
     rawEvent(0xd0, 0x12)},
    {EventId::PageWalkerLoadsDtlbL1, PERF_TYPE_RAW, rawEvent(0xbc, 0x11)},
    {EventId::PageWalkerLoadsDtlbL2, PERF_TYPE_RAW, rawEvent(0xbc, 0x12)},
    {EventId::PageWalkerLoadsDtlbL3, PERF_TYPE_RAW, rawEvent(0xbc, 0x14)},
    {EventId::PageWalkerLoadsDtlbMemory, PERF_TYPE_RAW, rawEvent(0xbc, 0x18)},
    {EventId::MachineClearsCount, PERF_TYPE_RAW, rawEvent(0xc3, 0x01)},
};

const EventEncoding *
findEncoding(EventId id)
{
    for (const auto &e : encodings)
        if (e.id == id)
            return &e;
    return nullptr;
}

int
openCounter(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

} // namespace

bool
LinuxPerfBackend::available()
{
    int fd = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    if (fd < 0)
        return false;
    ::close(fd);
    return true;
}

std::vector<EventId>
LinuxPerfBackend::open(const std::vector<EventId> &events)
{
    for (EventId id : events) {
        const EventEncoding *enc = findEncoding(id);
        if (!enc)
            continue;
        int fd = openCounter(enc->type, enc->config);
        if (fd < 0)
            continue;
        fds_.push_back(fd);
        openedIds_.push_back(id);
    }
    return openedIds_;
}

void
LinuxPerfBackend::start()
{
    for (int fd : fds_) {
        ioctl(fd, PERF_EVENT_IOC_RESET, 0);
        ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
}

void
LinuxPerfBackend::stop()
{
    for (int fd : fds_)
        ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
}

CounterSet
LinuxPerfBackend::read() const
{
    CounterSet counters;
    for (size_t i = 0; i < fds_.size(); ++i) {
        struct
        {
            std::uint64_t value;
            std::uint64_t enabled;
            std::uint64_t running;
        } data{};
        if (::read(fds_[i], &data, sizeof(data)) != sizeof(data))
            continue;
        std::uint64_t value = data.value;
        if (data.running && data.running < data.enabled) {
            // Multiplex scaling.
            value = static_cast<std::uint64_t>(
                static_cast<double>(value) *
                (static_cast<double>(data.enabled) /
                 static_cast<double>(data.running)));
        }
        counters.add(openedIds_[i], value);
    }
    return counters;
}

void
LinuxPerfBackend::close()
{
    for (int fd : fds_)
        ::close(fd);
    fds_.clear();
    openedIds_.clear();
}

#else // !__linux__

bool
LinuxPerfBackend::available()
{
    return false;
}

std::vector<EventId>
LinuxPerfBackend::open(const std::vector<EventId> &)
{
    return {};
}

void
LinuxPerfBackend::start()
{
}

void
LinuxPerfBackend::stop()
{
}

CounterSet
LinuxPerfBackend::read() const
{
    return {};
}

void
LinuxPerfBackend::close()
{
}

#endif // __linux__

LinuxPerfBackend::~LinuxPerfBackend()
{
    close();
}

} // namespace atscale
