/**
 * @file
 * Optional real-PMU backend via perf_event_open(2).
 *
 * The paper's harness reads Haswell PMU events on live machines; this
 * backend lets the same analysis layer run on real hardware when the
 * kernel and CPU allow it. Generic events (cycles, instructions, branch
 * and dTLB misses) use portable PERF_TYPE_HARDWARE/HW_CACHE encodings;
 * the walk-duration and page_walker_loads events use best-effort raw
 * Haswell encodings. Counters are opened unscheduled-grouped so the
 * kernel may multiplex; reads are scaled by time_enabled/time_running.
 *
 * Everything degrades gracefully: on non-Linux builds, in containers
 * without perf access, or on CPUs without the raw events, the backend
 * reports unavailable events and the caller falls back to the simulator.
 * probeEvents() and perfParanoidLevel() turn "gracefully absent" into a
 * diagnosable report (src/validate uses both).
 *
 * All kernel interaction goes through an injectable PerfCounterOps
 * surface so the fd-lifetime and scaling logic is unit-testable with a
 * fake-fd shim (tests/test_linux_backend.cc) — no PMU required.
 */

#ifndef ATSCALE_PERF_LINUX_BACKEND_HH
#define ATSCALE_PERF_LINUX_BACKEND_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "perf/counter_set.hh"

namespace atscale
{

/**
 * Multiplex scaling: extrapolate a counter that the kernel scheduled on
 * a PMC for only part of the measurement window (time_running <
 * time_enabled). Pure, so the edge cases are unit-testable:
 *  - running == 0: the counter never got a PMC; there is no information
 *    to extrapolate from, so the scaled value is 0 (not infinity).
 *  - running >= enabled: fully scheduled; the raw value stands.
 *  - otherwise: value * enabled / running (linear extrapolation).
 */
std::uint64_t scaledCounterValue(std::uint64_t value, std::uint64_t enabled,
                                 std::uint64_t running);

/** Counter control requests, abstracted from the Linux ioctl numbers. */
enum class CounterCtl : std::uint8_t
{
    Reset,
    Enable,
    Disable,
};

/** One counter read: raw value plus the kernel's scheduling times. */
struct CounterReadSample
{
    std::uint64_t value = 0;
    std::uint64_t enabled = 0;
    std::uint64_t running = 0;
};

/**
 * The syscall surface the backend drives. The default instance wraps
 * perf_event_open/ioctl/read/close (or returns -ENOSYS off Linux);
 * tests inject fakes to exercise fd lifetime, partial-open rollback,
 * EINTR retry, and multiplex scaling without any PMU. Every function
 * returns >= 0 on success and a negative errno on failure.
 */
struct PerfCounterOps
{
    /** Open a counter; returns an fd or -errno. */
    std::function<int(std::uint32_t type, std::uint64_t config, int groupFd)>
        open;
    /** Close an fd. */
    std::function<int(int fd)> close;
    /** Reset / enable / disable an open counter. */
    std::function<int(int fd, CounterCtl ctl)> control;
    /** Read one sample; may return -EINTR (the backend retries). */
    std::function<int(int fd, CounterReadSample &out)> read;
};

/** The real syscall implementation (-ENOSYS everywhere off Linux). */
const PerfCounterOps &realPerfCounterOps();

/** Availability of one event on this machine, with the failing errno. */
struct EventProbe
{
    EventId id{};
    bool available = false;
    /** 0 when available; otherwise the (positive) errno, or ENOENT when
     * the event has no encoding for this backend at all. */
    int error = 0;
};

/**
 * A set of opened perf file descriptors, one per requested EventId.
 */
class LinuxPerfBackend
{
  public:
    /** @param ops syscall surface override for tests (null = real). */
    explicit LinuxPerfBackend(const PerfCounterOps *ops = nullptr);
    ~LinuxPerfBackend();

    LinuxPerfBackend(const LinuxPerfBackend &) = delete;
    LinuxPerfBackend &operator=(const LinuxPerfBackend &) = delete;

    /** True when perf_event_open is usable at all in this environment. */
    static bool available();

    /**
     * The kernel's perf_event_paranoid setting, or INT_MIN when it
     * cannot be read (non-Linux, /proc unmounted). Level <= 2 suffices
     * for this backend: counters exclude kernel and hypervisor.
     */
    static int perfParanoidLevel();

    /**
     * Try to open each event independently (no group leader); events
     * without an encoding or refused by the kernel are skipped. This is
     * the best-effort mode: callers that want to measure whatever the
     * machine exposes. Any previously opened counters are closed first.
     * @return the subset that opened successfully
     */
    std::vector<EventId> open(const std::vector<EventId> &events);

    /**
     * Open all events as one scheduling group (first opened fd is the
     * leader), all-or-nothing: if any event fails to open, every fd
     * opened so far is closed again and the backend is left empty.
     * Grouped counters are scheduled together, so their ratios are
     * consistent — the right mode when deriving Eq-1 terms from a
     * machine with enough PMCs. Any previously opened counters are
     * closed first.
     * @return true when every event opened
     */
    bool openGroup(const std::vector<EventId> &events);

    /**
     * Probe which of the requested events this machine can open, one
     * open/close round-trip each, without leaving anything open.
     */
    static std::vector<EventProbe>
    probeEvents(const std::vector<EventId> &events,
                const PerfCounterOps *ops = nullptr);

    /** Zero and enable all opened counters. */
    void start();

    /** Disable all opened counters. */
    void stop();

    /**
     * Read all opened counters (multiplex-scaled) into a CounterSet.
     * Interrupted reads are retried (EINTR); unopened events and reads
     * that keep failing read as zero.
     */
    CounterSet read() const;

    /** Events successfully opened. */
    const std::vector<EventId> &opened() const { return openedIds_; }

    /** True when the open counters form one scheduling group. */
    bool grouped() const { return grouped_; }

    /** Close everything. */
    void close();

  private:
    PerfCounterOps ops_;
    std::vector<int> fds_;
    std::vector<EventId> openedIds_;
    bool grouped_ = false;
};

} // namespace atscale

#endif // ATSCALE_PERF_LINUX_BACKEND_HH
