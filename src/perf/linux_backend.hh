/**
 * @file
 * Optional real-PMU backend via perf_event_open(2).
 *
 * The paper's harness reads Haswell PMU events on live machines; this
 * backend lets the same analysis layer run on real hardware when the
 * kernel and CPU allow it. Generic events (cycles, instructions, branch
 * and dTLB misses) use portable PERF_TYPE_HARDWARE/HW_CACHE encodings;
 * the walk-duration and page_walker_loads events use best-effort raw
 * Haswell encodings. Counters are opened unscheduled-grouped so the
 * kernel may multiplex; reads are scaled by time_enabled/time_running.
 *
 * Everything degrades gracefully: on non-Linux builds, in containers
 * without perf access, or on CPUs without the raw events, the backend
 * reports unavailable events and the caller falls back to the simulator.
 */

#ifndef ATSCALE_PERF_LINUX_BACKEND_HH
#define ATSCALE_PERF_LINUX_BACKEND_HH

#include <vector>

#include "perf/counter_set.hh"

namespace atscale
{

/**
 * A set of opened perf file descriptors, one per requested EventId.
 */
class LinuxPerfBackend
{
  public:
    LinuxPerfBackend() = default;
    ~LinuxPerfBackend();

    LinuxPerfBackend(const LinuxPerfBackend &) = delete;
    LinuxPerfBackend &operator=(const LinuxPerfBackend &) = delete;

    /** True when perf_event_open is usable at all in this environment. */
    static bool available();

    /**
     * Try to open counters for the given events on the calling thread.
     * @return the subset that opened successfully
     */
    std::vector<EventId> open(const std::vector<EventId> &events);

    /** Zero and enable all opened counters. */
    void start();

    /** Disable all opened counters. */
    void stop();

    /**
     * Read all opened counters (multiplex-scaled) into a CounterSet.
     * Unopened events read as zero.
     */
    CounterSet read() const;

    /** Events successfully opened. */
    const std::vector<EventId> &opened() const { return openedIds_; }

    /** Close everything. */
    void close();

  private:
    std::vector<int> fds_;
    std::vector<EventId> openedIds_;
};

} // namespace atscale

#endif // ATSCALE_PERF_LINUX_BACKEND_HH
