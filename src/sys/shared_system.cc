#include "sys/shared_system.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace atscale
{

SharedSystem::CoreNode::CoreNode(SharedSystem &sys,
                                 const SharedSystemParams &params,
                                 const WorkloadTraits &traits,
                                 std::uint64_t seed)
    : hierarchy(params.hierarchy, &sys.llc_),
      mmu(sys.space_, sys.mem_, hierarchy, params.mmu, &sys.alloc_),
      core(mmu, hierarchy, sys.space_, params.core, traits, seed)
{
}

SharedSystem::SharedSystem(const SharedSystemParams &params, PageSize backing,
                           const WorkloadTraits &traits, std::uint64_t seed)
    : params_(params), alloc_(params.dramBytes),
      space_(mem_, alloc_, backing), llc_(params.hierarchy)
{
    fatal_if(params.cores == 0, "a shared system needs at least one core");
    nodes_.reserve(params.cores);
    for (std::uint32_t k = 0; k < params.cores; ++k) {
        // Core 0 gets the caller's seed exactly so a K=1 system runs
        // the same speculation sequence as a private Platform.
        nodes_.push_back(std::make_unique<CoreNode>(
            *this, params, traits, seed + k * 0x9e3779b9ull));
        // Per-core listener order mirrors Platform: MMU before core.
        space_.addTranslationListener(&nodes_.back()->mmu);
        space_.addTranslationListener(&nodes_.back()->core);
    }
    // The shootdown coordinator observes last: by the time the cost is
    // charged, every core's cached translation state is already gone.
    space_.addTranslationListener(this);

    shootdownsInitiated_.assign(params.cores, 0);
    shootdownsReceived_.assign(params.cores, 0);
    shootdownCycles_.assign(params.cores, 0);
}

SharedSystem::~SharedSystem()
{
    space_.removeTranslationListener(this);
}

Count
SharedSystem::run(const std::vector<RefSource *> &streams, Count refsPerCore)
{
    panic_if(streams.size() != nodes_.size(),
             "need one reference stream per core (%zu streams, %zu cores)",
             streams.size(), nodes_.size());
    std::vector<Count> left(nodes_.size(), refsPerCore);
    Count core0 = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t k = 0; k < nodes_.size(); ++k) {
            if (left[k] == 0)
                continue;
            activeCore_ = static_cast<std::uint32_t>(k);
            Count want = std::min<Count>(Core::refChunkSize, left[k]);
            Count ran = nodes_[k]->core.run(*streams[k], want);
            if (k == 0)
                core0 += ran;
            // A short quantum means the stream ended: park this core
            // (the other tenants keep running their full shares).
            left[k] = ran < want ? 0 : left[k] - want;
            if (left[k] > 0)
                progress = true;
        }
    }
    // Publish shootdown charges that landed on a core after its final
    // quantum. Zero-length runs flush the integer cycle residue and are
    // exact no-ops otherwise, so K=1 stays bit-identical.
    for (std::size_t k = 0; k < nodes_.size(); ++k) {
        activeCore_ = static_cast<std::uint32_t>(k);
        nodes_[k]->core.run(*streams[k], 0);
    }
    activeCore_ = 0;
    return core0;
}

void
SharedSystem::resetStats()
{
    for (auto &node : nodes_) {
        node->core.resetCounters();
        node->mmu.resetStats();
        node->hierarchy.resetStats(); // private L1/L2 only (tail borrowed)
    }
    llc_.resetStats();
    std::fill(shootdownsInitiated_.begin(), shootdownsInitiated_.end(), 0);
    std::fill(shootdownsReceived_.begin(), shootdownsReceived_.end(), 0);
    std::fill(shootdownCycles_.begin(), shootdownCycles_.end(), 0);
}

void
SharedSystem::pageRemapped(Addr base, PageSize size)
{
    (void)base;
    (void)size;
    // A single core has no remote TLBs: no IPIs, no charge. This is
    // load-bearing for the K=1 differential suite — a lone core must
    // count exactly what a private Platform counts.
    if (nodes_.size() == 1)
        return;
    const std::uint32_t from = activeCore_;
    ++shootdownsInitiated_[from];
    const Cycles initiator_cost = params_.shootdownInitiatorCycles +
                                  params_.shootdownIpiCycles;
    shootdownCycles_[from] += initiator_cost;
    nodes_[from]->core.chargeCycles(initiator_cost);
    for (std::size_t k = 0; k < nodes_.size(); ++k) {
        if (k == from)
            continue;
        ++shootdownsReceived_[k];
        shootdownCycles_[k] += params_.shootdownIpiCycles;
        nodes_[k]->core.chargeCycles(params_.shootdownIpiCycles);
    }
}

void
SharedSystem::registerStats(StatsRegistry &registry,
                            const std::string &prefix) const
{
    for (std::size_t k = 0; k < nodes_.size(); ++k) {
        std::string base = prefix + ".core" + std::to_string(k);
        nodes_[k]->mmu.registerStats(registry, base + ".mmu");
        nodes_[k]->hierarchy.registerStats(registry, base + ".cache");
        registry.addScalar(base + ".shootdowns_initiated", [this, k] {
            return static_cast<double>(shootdownsInitiated_[k]);
        }, "remaps this core's stream triggered");
        registry.addScalar(base + ".shootdowns_received", [this, k] {
            return static_cast<double>(shootdownsReceived_[k]);
        }, "shootdown IPIs landed on this core");
        registry.addScalar(base + ".shootdown_cycles", [this, k] {
            return static_cast<double>(shootdownCycles_[k]);
        }, "stall cycles charged by the shootdown model");
    }
    registry.addScalar(prefix + ".shootdowns_total", [this] {
        Count total = 0;
        for (Count c : shootdownsInitiated_)
            total += c;
        return static_cast<double>(total);
    }, "remap-triggered shootdowns across all cores");
    registry.addScalar(prefix + ".vm.footprint_bytes", [this] {
        return static_cast<double>(space_.footprintBytes());
    }, "data bytes populated (pages touched x page size)");
    registry.addScalar(prefix + ".vm.page_table_bytes", [this] {
        return static_cast<double>(space_.pageTable().nodeBytes());
    }, "bytes of page-table nodes built");
}

std::uint64_t
SharedSystem::stateHash() const
{
    std::uint64_t h = 0;
    for (const auto &node : nodes_) {
        h = hashCombine(h, node->mmu.stateHash());
        h = hashCombine(h, node->hierarchy.stateHash());
    }
    for (std::size_t k = 0; k < nodes_.size(); ++k) {
        h = hashCombine(h, shootdownsInitiated_[k]);
        h = hashCombine(h, shootdownsReceived_[k]);
        h = hashCombine(h, shootdownCycles_[k]);
    }
    return h;
}

} // namespace atscale
