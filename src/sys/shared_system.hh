/**
 * @file
 * Multi-core shared-hierarchy simulation: K Core+Mmu pairs with private
 * L1/L2 caches converging on one SharedLlc (L3 + DRAM), one shared
 * AddressSpace, and inter-core TLB shootdowns on page remaps.
 *
 * This is the shared-hierarchy translation-contention setup of Patil,
 * "TLB and Pagewalk Performance in Multicore Architectures with Large
 * Die-Stacked DRAM Cache" (PAPERS.md): page-walker loads from different
 * cores contend for the same L3 sets as each other's data, and a remap
 * initiated while one core runs stalls every other core with an IPI.
 *
 * Determinism contract (docs/MULTICORE.md): cores step strictly
 * round-robin, one refChunkSize quantum at a time, on the calling
 * thread. No simulation state is ever touched concurrently, the
 * interleave is a pure function of the per-tenant streams, and a K=1
 * system is bit-for-bit identical to a private single-core Platform
 * (proven by tests/test_multicore_diff.cc).
 */

#ifndef ATSCALE_SYS_SHARED_SYSTEM_HH
#define ATSCALE_SYS_SHARED_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "mmu/mmu.hh"
#include "vm/address_space.hh"

namespace atscale
{

class StatsRegistry;

/**
 * Shared-machine configuration. The single-machine fields mirror
 * PlatformParams (core/platform.hh) so a SweepEngine PlatformParams can
 * be transcribed 1:1; they are duplicated rather than included because
 * src/sys sits below src/core in the link graph.
 */
struct SharedSystemParams
{
    HierarchyParams hierarchy;
    MmuParams mmu;
    CoreParams core;
    /** Core frequency, for converting cycles to seconds. */
    double freqGHz = 2.5;
    /** Simulated DRAM capacity (2 sockets x 384 GiB). */
    std::uint64_t dramBytes = 768ull << 30;

    /** Number of simulated cores (1 = degenerate single-core). */
    std::uint32_t cores = 1;

    /**
     * TLB-shootdown cost model (docs/MULTICORE.md): on a remap with
     * K > 1 cores, every remote core is charged `shootdownIpiCycles`
     * (interrupt entry, TLB invalidation, exit) and the initiating core
     * is charged `shootdownInitiatorCycles` (building the IPI multicast)
     * plus one `shootdownIpiCycles` round-trip waiting for the last
     * acknowledgement — the remotes invalidate in parallel. A K=1
     * system charges nothing: there is no remote TLB to shoot down.
     */
    Cycles shootdownIpiCycles = 120;
    Cycles shootdownInitiatorCycles = 40;
};

/**
 * One simulated multi-core machine: K cores with private L1/L2 and
 * per-core MMUs over one shared L3+DRAM, one physical memory, and one
 * address space (the multi-tenant "one store" layout — tenants map
 * distinct regions of the same space).
 *
 * cross-core: every core's CacheHierarchy points at llc_, and every
 * remap fans out to every core's Mmu + micro-TLB through the shared
 * space's TranslationListener list. Safe lock-free because run() steps
 * exactly one core at a time on one thread (see file header).
 */
class ATSCALE_SHARED_ACROSS_CORES SharedSystem : public TranslationListener
{
  public:
    /**
     * @param backing page size requested for all workload data regions
     * @param traits workload character for the timing cores
     * @param seed core 0 gets exactly this seed (single-core identity);
     *             core k gets seed + k * 0x9e3779b9
     */
    SharedSystem(const SharedSystemParams &params, PageSize backing,
                 const WorkloadTraits &traits, std::uint64_t seed = 42);
    ~SharedSystem() override;

    SharedSystem(const SharedSystem &) = delete;
    SharedSystem &operator=(const SharedSystem &) = delete;

    std::uint32_t cores() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    AddressSpace &space() { return space_; }
    const AddressSpace &space() const { return space_; }
    SharedLlc &llc() { return llc_; }

    Core &core(std::uint32_t k) { return nodes_[k]->core; }
    Mmu &mmu(std::uint32_t k) { return nodes_[k]->mmu; }
    CacheHierarchy &hierarchy(std::uint32_t k)
    {
        return nodes_[k]->hierarchy;
    }
    const Core &core(std::uint32_t k) const { return nodes_[k]->core; }
    const Mmu &mmu(std::uint32_t k) const { return nodes_[k]->mmu; }
    const CacheHierarchy &hierarchy(std::uint32_t k) const
    {
        return nodes_[k]->hierarchy;
    }

    /**
     * Deterministic round-robin interleave: step cores 0..K-1 in turn,
     * each by one Core::refChunkSize quantum of its own stream, until
     * every core has executed refsPerCore references (or its stream
     * ended). A final zero-length run() per core publishes shootdown
     * cycles that landed after a core's last quantum, so counters are
     * complete when this returns. Core::run is partition-invariant, so
     * for K=1 this is bit-identical to one core.run(stream, refsPerCore)
     * call.
     *
     * @param streams one reference stream per core (tenant streams)
     * @return references executed by core 0
     */
    Count run(const std::vector<RefSource *> &streams, Count refsPerCore);

    /**
     * Open a measurement window: reset every core's counters, every
     * MMU's and hierarchy's statistics, the shared L3/DRAM statistics,
     * and the shootdown counts (microarchitectural contents retained),
     * exactly as runExperiment does between warm-up and measurement.
     */
    void resetStats();

    /**
     * TranslationListener: a page was remapped. The per-core MMUs and
     * micro-TLBs have already invalidated themselves (they registered
     * before this coordinator); this hook only charges the IPI cost
     * model and counts the shootdown. The initiator is the core whose
     * quantum is currently running (activeCore).
     */
    void pageRemapped(Addr base, PageSize size) override;

    /** Core whose quantum run() is currently stepping (0 outside run).
     * Exposed for tests that trigger remaps outside run(). */
    std::uint32_t activeCore() const { return activeCore_; }
    void setActiveCore(std::uint32_t k) { activeCore_ = k; }

    /** Shootdowns this core initiated (its stream remapped a page). */
    Count shootdownsInitiated(std::uint32_t k) const
    {
        return shootdownsInitiated_[k];
    }
    /** Shootdown IPIs this core received from other cores. */
    Count shootdownsReceived(std::uint32_t k) const
    {
        return shootdownsReceived_[k];
    }
    /** Stall cycles the shootdown model charged to this core. */
    Count shootdownCycles(std::uint32_t k) const
    {
        return shootdownCycles_[k];
    }

    /**
     * Register per-core component statistics under
     * "<prefix>.core<k>.{mmu,cache,shootdowns_*}" plus shared
     * address-space and total-shootdown scalars under "<prefix>.".
     */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix = "system") const;

    /** Process-stable digest over every core's MMU + hierarchy state
     * (the shared L3 is folded in through each hierarchy's hash). */
    std::uint64_t stateHash() const;

    const SharedSystemParams &params() const { return params_; }

  private:
    /** One core's private slice of the machine. Heap-allocated so the
     * components keep stable addresses as the node list is built. */
    struct CoreNode
    {
        CoreNode(SharedSystem &sys, const SharedSystemParams &params,
                 const WorkloadTraits &traits, std::uint64_t seed);

        CacheHierarchy hierarchy;
        Mmu mmu;
        Core core;
    };

    SharedSystemParams params_;
    PhysicalMemory mem_;
    FrameAllocator alloc_;
    AddressSpace space_;
    /** cross-core: the one L3+DRAM tail every node's hierarchy probes;
     * serial interleave, so lock-free by contract. */
    SharedLlc llc_;
    std::vector<std::unique_ptr<CoreNode>> nodes_;

    std::uint32_t activeCore_ = 0;

    // Shootdown statistics, one slot per core. Registered with the
    // stats registry in registerStats; vectors rather than Count
    // members because the core count is a runtime parameter.
    std::vector<Count> shootdownsInitiated_;
    std::vector<Count> shootdownsReceived_;
    std::vector<Count> shootdownCycles_;
};

} // namespace atscale

#endif // ATSCALE_SYS_SHARED_SYSTEM_HH
