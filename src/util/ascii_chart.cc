#include "util/ascii_chart.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/logging.hh"
#include "util/table.hh"

namespace atscale
{

namespace
{

const char seriesGlyphs[] = "ox+*#@%&ABCDEFGH";
const char bandGlyphs[] = ".:=#%@ox";

} // namespace

char
ScatterChart::addSeries(const std::string &name)
{
    char glyph = seriesGlyphs[series_.size() % (sizeof(seriesGlyphs) - 1)];
    series_.push_back({name, glyph, {}});
    return glyph;
}

void
ScatterChart::point(int s, double x, double y)
{
    panic_if(s < 0 || s >= static_cast<int>(series_.size()),
             "bad series index %d", s);
    series_[static_cast<size_t>(s)].pts.emplace_back(x, y);
}

void
ScatterChart::print(std::ostream &os) const
{
    os << title_ << '\n';
    bool any = false;
    double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
    for (const auto &s : series_) {
        for (auto [x, y] : s.pts) {
            double px = logX_ ? std::log10(std::max(x, 1e-300)) : x;
            if (!any) {
                xmin = xmax = px;
                ymin = ymax = y;
                any = true;
            } else {
                xmin = std::min(xmin, px);
                xmax = std::max(xmax, px);
                ymin = std::min(ymin, y);
                ymax = std::max(ymax, y);
            }
        }
    }
    if (!any) {
        os << "  (no data)\n";
        return;
    }
    if (xmax - xmin < 1e-12)
        xmax = xmin + 1.0;
    if (ymax - ymin < 1e-12)
        ymax = ymin + 1.0;

    std::vector<std::string> grid(static_cast<size_t>(height_),
                                  std::string(static_cast<size_t>(width_), ' '));
    for (const auto &s : series_) {
        for (auto [x, y] : s.pts) {
            double px = logX_ ? std::log10(std::max(x, 1e-300)) : x;
            int col = static_cast<int>(
                std::lround((px - xmin) / (xmax - xmin) * (width_ - 1)));
            int row = static_cast<int>(
                std::lround((y - ymin) / (ymax - ymin) * (height_ - 1)));
            row = height_ - 1 - row;
            grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = s.glyph;
        }
    }

    for (int r = 0; r < height_; ++r) {
        double yval = ymax - (ymax - ymin) * r / (height_ - 1);
        os << strfmt("%10.3g |", yval) << grid[static_cast<size_t>(r)] << '\n';
    }
    os << std::string(11, ' ') << '+' << std::string(static_cast<size_t>(width_), '-')
       << '\n';
    double xlo = logX_ ? std::pow(10.0, xmin) : xmin;
    double xhi = logX_ ? std::pow(10.0, xmax) : xmax;
    os << std::string(12, ' ')
       << strfmt("%-20.4g%*s%.4g", xlo, width_ - 28, "", xhi) << '\n';
    os << std::string(12, ' ') << xlabel_ << (logX_ ? " (log scale)" : "")
       << "   [y: " << ylabel_ << "]\n";
    os << "  legend:";
    for (const auto &s : series_)
        os << "  " << s.glyph << "=" << s.name;
    os << '\n';
}

void
BandChart::addBand(const std::string &name)
{
    bands_.push_back(name);
}

void
BandChart::column(const std::string &label, const std::vector<double> &fracs)
{
    panic_if(fracs.size() != bands_.size(),
             "band chart column has %zu fractions for %zu bands",
             fracs.size(), bands_.size());
    columns_.emplace_back(label, fracs);
}

void
BandChart::print(std::ostream &os) const
{
    os << title_ << '\n';
    if (columns_.empty() || bands_.empty()) {
        os << "  (no data)\n";
        return;
    }
    const int colWidth = 6;
    int width = colWidth * static_cast<int>(columns_.size());
    std::vector<std::string> grid(static_cast<size_t>(height_),
                                  std::string(static_cast<size_t>(width), ' '));

    for (size_t c = 0; c < columns_.size(); ++c) {
        const auto &fracs = columns_[c].second;
        double total = 0;
        for (double f : fracs)
            total += f;
        if (total <= 0)
            total = 1;
        // Fill rows bottom-up, band by band.
        double cum = 0;
        for (size_t b = 0; b < bands_.size(); ++b) {
            double lo = cum / total;
            cum += fracs[b];
            double hi = cum / total;
            int rlo = static_cast<int>(std::lround(lo * height_));
            int rhi = static_cast<int>(std::lround(hi * height_));
            char glyph = bandGlyphs[b % (sizeof(bandGlyphs) - 1)];
            for (int r = rlo; r < rhi; ++r) {
                int row = height_ - 1 - r;
                for (int k = 0; k < colWidth - 1; ++k) {
                    grid[static_cast<size_t>(row)]
                        [c * colWidth + static_cast<size_t>(k)] = glyph;
                }
            }
        }
    }

    for (int r = 0; r < height_; ++r) {
        double frac = 1.0 - static_cast<double>(r) / height_;
        os << strfmt("%5.2f |", frac) << grid[static_cast<size_t>(r)] << '\n';
    }
    os << std::string(6, ' ') << '+' << std::string(static_cast<size_t>(width), '-')
       << '\n';
    os << std::string(7, ' ');
    for (const auto &[label, fracs] : columns_) {
        (void)fracs;
        std::string cell = label.substr(0, colWidth - 1);
        os << cell << std::string(static_cast<size_t>(colWidth) - cell.size(), ' ');
    }
    os << '\n' << std::string(7, ' ') << xlabel_ << '\n';
    os << "  bands (bottom to top):";
    for (size_t b = 0; b < bands_.size(); ++b)
        os << "  " << bandGlyphs[b % (sizeof(bandGlyphs) - 1)] << "=" << bands_[b];
    os << '\n';
}

} // namespace atscale
