/**
 * @file
 * Terminal plotting for figure reproduction: multi-series scatter/line
 * charts (optionally log-scaled x) and stacked band charts (for walk
 * outcome and PTE-location distributions).
 */

#ifndef ATSCALE_UTIL_ASCII_CHART_HH
#define ATSCALE_UTIL_ASCII_CHART_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace atscale
{

/**
 * A multi-series scatter chart rendered with one glyph per series.
 * X may be plotted on a log10 scale (the paper's footprint axes are
 * logarithmic).
 */
class ScatterChart
{
  public:
    ScatterChart(std::string title, std::string xlabel, std::string ylabel,
                 int width = 72, int height = 20)
        : title_(std::move(title)), xlabel_(std::move(xlabel)),
          ylabel_(std::move(ylabel)), width_(width), height_(height)
    {}

    /** Use log10(x) for the horizontal axis. */
    void logX(bool enable) { logX_ = enable; }

    /** Add a named series; returns its glyph. */
    char addSeries(const std::string &name);

    /** Add a point to series index s (in addSeries order). */
    void point(int s, double x, double y);

    /** Render to a stream. */
    void print(std::ostream &os) const;

  private:
    struct Series
    {
        std::string name;
        char glyph;
        std::vector<std::pair<double, double>> pts;
    };

    std::string title_, xlabel_, ylabel_;
    int width_, height_;
    bool logX_ = false;
    std::vector<Series> series_;
};

/**
 * A stacked band chart: at each x position the named bands sum to 1.0 and
 * are rendered as vertical runs of per-band glyphs, mirroring the paper's
 * walk-outcome and PTE-location figures.
 */
class BandChart
{
  public:
    BandChart(std::string title, std::string xlabel,
              int height = 20)
        : title_(std::move(title)), xlabel_(std::move(xlabel)),
          height_(height)
    {}

    /** Add a named band (stacking order = call order, bottom first). */
    void addBand(const std::string &name);

    /**
     * Add one column: label (e.g. footprint) and the per-band fractions
     * (will be normalized; must match the number of bands).
     */
    void column(const std::string &label, const std::vector<double> &fracs);

    /** Render to a stream. */
    void print(std::ostream &os) const;

  private:
    std::string title_, xlabel_;
    int height_;
    std::vector<std::string> bands_;
    std::vector<std::pair<std::string, std::vector<double>>> columns_;
};

} // namespace atscale

#endif // ATSCALE_UTIL_ASCII_CHART_HH
