/**
 * @file
 * Bit-manipulation helpers used throughout the address-translation stack.
 */

#ifndef ATSCALE_UTIL_BITFIELD_HH
#define ATSCALE_UTIL_BITFIELD_HH

#include <cassert>
#include <cstdint>

#include "util/types.hh"

namespace atscale
{

/**
 * Extract the bit field [hi:lo] (inclusive) from val.
 */
constexpr std::uint64_t
bits(std::uint64_t val, int hi, int lo)
{
    std::uint64_t mask = (hi - lo >= 63) ? ~0ull : ((1ull << (hi - lo + 1)) - 1);
    return (val >> lo) & mask;
}

/** Extract a single bit. */
constexpr std::uint64_t
bit(std::uint64_t val, int n)
{
    return (val >> n) & 1ull;
}

/** Insert the low bits of field into [hi:lo] of val. */
constexpr std::uint64_t
insertBits(std::uint64_t val, int hi, int lo, std::uint64_t field)
{
    std::uint64_t mask = (hi - lo >= 63) ? ~0ull : ((1ull << (hi - lo + 1)) - 1);
    return (val & ~(mask << lo)) | ((field & mask) << lo);
}

/** True iff val is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Floor of log2(val); val must be non-zero. */
constexpr int
floorLog2(std::uint64_t val)
{
    assert(val != 0);
    int result = 0;
    while (val >>= 1)
        ++result;
    return result;
}

/** Ceiling of log2(val); val must be non-zero. */
constexpr int
ceilLog2(std::uint64_t val)
{
    return isPowerOf2(val) ? floorLog2(val) : floorLog2(val) + 1;
}

/** Round addr down to a multiple of align (align must be a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round addr up to a multiple of align (align must be a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True iff addr is aligned to align (a power of two). */
constexpr bool
isAligned(std::uint64_t addr, std::uint64_t align)
{
    return (addr & (align - 1)) == 0;
}

/**
 * Radix-tree index of a virtual address at a given level.
 *
 * Level 3 is the root (PML4), level 0 the leaf page table, matching the
 * x86-64 numbering used in the MMU code.
 */
constexpr int
ptIndex(Addr vaddr, int level)
{
    int lo = pageShift4K + level * ptIndexBits;
    return static_cast<int>(bits(vaddr, lo + ptIndexBits - 1, lo));
}

} // namespace atscale

#endif // ATSCALE_UTIL_BITFIELD_HH
