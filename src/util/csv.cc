#include "util/csv.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace atscale
{

CsvWriter::CsvWriter(const std::string &path)
{
    if (path.empty())
        return;
    out_.open(path);
    fatal_if(!out_, "cannot open CSV output file '%s'", path.c_str());
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    if (!active())
        return;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
outputPath(const std::string &name)
{
    const char *dir = std::getenv("ATSCALE_OUT_DIR");
    if (!dir || !*dir)
        return "";
    return std::string(dir) + "/" + name;
}

} // namespace atscale
