/**
 * @file
 * Tiny CSV emitter used by benches and examples to dump figure/table data.
 */

#ifndef ATSCALE_UTIL_CSV_HH
#define ATSCALE_UTIL_CSV_HH

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace atscale
{

/**
 * Writes rows of comma-separated values to a file. Values are escaped if
 * they contain commas or quotes. A writer with an empty path is a no-op,
 * so callers can unconditionally emit rows.
 */
class CsvWriter
{
  public:
    CsvWriter() = default;

    /** Open path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** True when the writer is connected to a file. */
    bool active() const { return out_.is_open(); }

    /** Write one row from pre-formatted cells. */
    void row(const std::vector<std::string> &cells);

    /** Write one row from heterogeneous values via operator<<. */
    template <typename... Ts>
    void
    rowv(const Ts &...vals)
    {
        if (!active())
            return;
        std::vector<std::string> cells;
        (cells.push_back(toCell(vals)), ...);
        row(cells);
    }

  private:
    template <typename T>
    static std::string
    toCell(const T &v)
    {
        std::ostringstream os;
        os << v;
        return os.str();
    }

    static std::string escape(const std::string &cell);

    std::ofstream out_;
};

/**
 * Resolve the output path for a named data file: if the environment
 * variable ATSCALE_OUT_DIR is set, returns "<dir>/<name>"; otherwise an
 * empty string (callers then construct inactive CsvWriters).
 */
std::string outputPath(const std::string &name);

} // namespace atscale

#endif // ATSCALE_UTIL_CSV_HH
