/**
 * @file
 * Small deterministic hashing helpers.
 *
 * Used for value-identity hashing of experiment specs (core/run_spec.hh):
 * the hashes must be stable across processes and platforms so they can
 * key on-disk artifacts and deduplicate work between runs, which rules
 * out std::hash (unspecified, per-implementation).
 */

#ifndef ATSCALE_UTIL_HASH_HH
#define ATSCALE_UTIL_HASH_HH

#include <cstdint>
#include <string_view>

namespace atscale
{

/** FNV-1a offset basis / prime (64-bit). */
inline constexpr std::uint64_t fnv1aBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t fnv1aPrime = 0x00000100000001b3ull;

/** FNV-1a over a byte string, continuing from `h`. */
constexpr std::uint64_t
fnv1a(std::string_view bytes, std::uint64_t h = fnv1aBasis)
{
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= fnv1aPrime;
    }
    return h;
}

/**
 * Fold one 64-bit value into a running hash. Mixes with FNV-1a over the
 * value's 8 bytes so field order matters and adjacent small integers do
 * not collide.
 */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (8 * i)) & 0xff;
        h *= fnv1aPrime;
    }
    return h;
}

} // namespace atscale

#endif // ATSCALE_UTIL_HASH_HH
