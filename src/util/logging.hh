/**
 * @file
 * Minimal gem5-flavoured logging and error handling.
 *
 * panic() is for internal invariant violations (aborts, may dump core);
 * fatal() is for user/configuration errors (clean exit(1)); warn() and
 * inform() are advisory.
 */

#ifndef ATSCALE_UTIL_LOGGING_HH
#define ATSCALE_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace atscale
{

/** Print a formatted message and abort(). Internal bugs only. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message and exit(1). User errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted warning to stderr. */
void warnImpl(const char *fmt, ...);

/** Print a formatted informational message to stderr. */
void informImpl(const char *fmt, ...);

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...);

} // namespace atscale

#define panic(...) ::atscale::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::atscale::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::atscale::warnImpl(__VA_ARGS__)
#define inform(...) ::atscale::informImpl(__VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                             \
    } while (0)

/** fatal() if the condition holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // ATSCALE_UTIL_LOGGING_HH
