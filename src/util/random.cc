#include "util/random.hh"

#include <cmath>

namespace atscale
{

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    double u = real();
    if (s == 1.0) {
        // CDF(x) ~ ln(x+1)/ln(n+1)
        double x = std::exp(u * std::log(static_cast<double>(n))) - 1.0;
        std::uint64_t r = static_cast<std::uint64_t>(x);
        return r >= n ? n - 1 : r;
    }
    // Bounded Pareto inverse CDF over [1, n].
    double one_minus_s = 1.0 - s;
    double hi = std::pow(static_cast<double>(n), one_minus_s);
    double x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / one_minus_s);
    std::uint64_t r = static_cast<std::uint64_t>(x) - 1;
    return r >= n ? n - 1 : r;
}

} // namespace atscale
