/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All simulator and workload randomness flows through Xoshiro256** with
 * explicit seeding so every experiment is exactly reproducible. A separate
 * stateless mixing function (splitMix64) is used by the model-mode workload
 * generators to derive, e.g., the neighbour list of graph vertex v without
 * materializing the graph.
 *
 * Concurrency invariant (relied on by core/sweep.hh's parallel engine):
 * there is NO global or static RNG state anywhere in this module — every
 * generator is an Rng instance owned by exactly one platform, workload
 * stream, or bench rig, seeded from its job's RunSpec. mix64() is pure.
 * Keep it that way: a hidden shared generator would make results depend
 * on job interleaving and break the engine's determinism guarantee.
 */

#ifndef ATSCALE_UTIL_RANDOM_HH
#define ATSCALE_UTIL_RANDOM_HH

#include <cstdint>

namespace atscale
{

/** Stateless 64-bit mixer (splitmix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Xoshiro256** PRNG. Fast, high quality, and fully deterministic given a
 * seed; used for all stochastic choices in the simulator and workloads.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            word = mix64(x);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free variant is fine for
        // simulation purposes (bias < 2^-64 relative).
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /**
     * Approximately Zipf-distributed integer in [0, n) with exponent s,
     * via inverse-CDF on the continuous bounded Pareto approximation.
     * Used by scale-free access patterns (e.g. tc-kron hub locality).
     */
    std::uint64_t
    zipf(std::uint64_t n, double s);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace atscale

#endif // ATSCALE_UTIL_RANDOM_HH
