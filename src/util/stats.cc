#include "util/stats.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace atscale
{

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, int nbuckets)
    : lo_(lo), width_((hi - lo) / nbuckets),
      buckets_(static_cast<size_t>(nbuckets), 0)
{
    panic_if(nbuckets <= 0, "histogram needs at least one bucket");
    panic_if(hi <= lo, "histogram range is empty");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    total_ += weight;
    if (x < lo_) {
        underflow_ += weight;
        return;
    }
    auto idx = static_cast<size_t>((x - lo_) / width_);
    if (idx >= buckets_.size()) {
        overflow_ += weight;
        return;
    }
    buckets_[idx] += weight;
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    double target = p * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (cum >= target)
        return lo_;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        double next = cum + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            double frac = (target - cum) / static_cast<double>(buckets_[i]);
            return bucketLo(static_cast<int>(i)) + frac * width_;
        }
        cum = next;
    }
    return lo_ + width_ * static_cast<double>(buckets_.size());
}

std::vector<double>
Histogram::percentiles(const std::vector<double> &ps) const
{
    std::vector<double> out;
    out.reserve(ps.size());
    for (double p : ps)
        out.push_back(quantile(p));
    return out;
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(buckets_.size() != other.buckets_.size() ||
                 lo_ != other.lo_ || width_ != other.width_,
             "cannot merge histograms with different geometry");
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

} // namespace atscale
