/**
 * @file
 * Small statistics accumulators used by the simulator and the analysis
 * layer: streaming mean/variance and fixed-bucket histograms.
 */

#ifndef ATSCALE_UTIL_STATS_HH
#define ATSCALE_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atscale
{

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (n_ == 1 || x < min_)
            min_ = x;
        if (n_ == 1 || x > max_)
            max_ = x;
    }

    /** Number of samples seen. */
    std::uint64_t count() const { return n_; }
    /** Sample mean (0 if empty). */
    double mean() const { return mean_; }
    /** Sample variance (unbiased; 0 if fewer than 2 samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    /** Sample standard deviation. */
    double stddev() const;
    /** Smallest sample (0 if empty). */
    double min() const { return n_ ? min_ : 0.0; }
    /** Largest sample (0 if empty). */
    double max() const { return n_ ? max_ : 0.0; }
    /** Reset to the empty state. */
    void reset() { *this = RunningStat(); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over fixed-width buckets [lo, hi) with overflow/underflow
 * buckets at the ends.
 */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the first regular bucket
     * @param hi upper bound of the last regular bucket
     * @param nbuckets number of regular buckets
     */
    Histogram(double lo, double hi, int nbuckets);

    /** Add one sample. */
    void add(double x, std::uint64_t weight = 1);

    /** Total weight added. */
    std::uint64_t total() const { return total_; }
    /** Weight in regular bucket i. */
    std::uint64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }
    /** Number of regular buckets. */
    int numBuckets() const { return static_cast<int>(buckets_.size()); }
    /** Weight below lo. */
    std::uint64_t underflow() const { return underflow_; }
    /** Weight at or above hi. */
    std::uint64_t overflow() const { return overflow_; }
    /** Lower edge of bucket i. */
    double bucketLo(int i) const { return lo_ + width_ * i; }

    /**
     * Approximate p-quantile (linear interpolation within buckets).
     * An empty histogram has no quantiles: returns NaN.
     */
    double quantile(double p) const;

    /**
     * Several quantiles at once (each NaN when the histogram is empty).
     * @param ps probabilities in [0, 1], in any order
     */
    std::vector<double> percentiles(const std::vector<double> &ps) const;

    /**
     * Accumulate another histogram's contents into this one. The two
     * must have identical geometry (lo, width, bucket count); panics
     * otherwise.
     */
    void merge(const Histogram &other);

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace atscale

#endif // ATSCALE_UTIL_STATS_HH
