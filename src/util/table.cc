#include "util/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>

namespace atscale
{

void
TablePrinter::print(std::ostream &os) const
{
    // Compute column widths over header and all rows.
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> widths(ncols, 0);
    auto account = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < ncols)
                os << "  ";
        }
        os << '\n';
    };

    size_t total = 0;
    for (size_t w : widths)
        total += w;
    total += 2 * (ncols > 0 ? ncols - 1 : 0);

    if (!title_.empty()) {
        os << title_ << '\n';
        os << std::string(std::max(title_.size(), total), '=') << '\n';
    }
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtBytes(std::uint64_t bytes)
{
    static const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int s = 0;
    while (v >= 1024.0 && s < 4) {
        v /= 1024.0;
        ++s;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix[s]);
    return buf;
}

} // namespace atscale
