/**
 * @file
 * Fixed-width text table printer for reproducing the paper's tables on
 * stdout.
 */

#ifndef ATSCALE_UTIL_TABLE_HH
#define ATSCALE_UTIL_TABLE_HH

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace atscale
{

/**
 * Accumulates rows of cells and renders them with per-column widths,
 * a header separator, and an optional title.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(const std::vector<std::string> &cells) { header_ = cells; }

    /** Append a data row from pre-formatted cells. */
    void row(const std::vector<std::string> &cells) { rows_.push_back(cells); }

    /** Append a data row from heterogeneous values via operator<<. */
    template <typename... Ts>
    void
    rowv(const Ts &...vals)
    {
        std::vector<std::string> cells;
        (cells.push_back(toCell(vals)), ...);
        rows_.push_back(std::move(cells));
    }

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

  private:
    template <typename T>
    static std::string
    toCell(const T &v)
    {
        std::ostringstream os;
        os << v;
        return os.str();
    }

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format a byte count with a binary-scaled suffix (KiB/MiB/GiB/TiB). */
std::string fmtBytes(std::uint64_t bytes);

} // namespace atscale

#endif // ATSCALE_UTIL_TABLE_HH
