/**
 * @file
 * Clang thread-safety ("capability") annotations, plus the annotated
 * Mutex / MutexLock / CondVar wrappers every cross-thread structure in
 * this repo must use instead of raw std::mutex (lint rule R5).
 *
 * The macros expand to clang `capability` attributes when the compiler
 * supports them (clang with -Wthread-safety) and to nothing elsewhere
 * (GCC), so annotated code builds identically everywhere while clang
 * statically proves the locking discipline: every ATSCALE_GUARDED_BY
 * member is only touched with its mutex held, every ATSCALE_REQUIRES
 * function is only called under lock, and so on. CI runs the clang
 * build with -Wthread-safety -Werror, making a locking violation a
 * compile error rather than a TSan lottery ticket.
 *
 * Why wrappers instead of annotating std::mutex directly: libstdc++'s
 * std::mutex carries no capability attribute, so GUARDED_BY(a
 * std::mutex member) itself trips -Wthread-safety-attributes. The
 * Mutex class below is the canonical fix (see the clang thread-safety
 * docs' mutex.h): a zero-overhead std::mutex wrapper that *is* a
 * capability, plus a scoped MutexLock and a CondVar that interoperates
 * with it.
 */

#ifndef ATSCALE_UTIL_THREAD_ANNOTATIONS_HH
#define ATSCALE_UTIL_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ATSCALE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ATSCALE_THREAD_ANNOTATION
#define ATSCALE_THREAD_ANNOTATION(x) // no-op on GCC and old clang
#endif

/** Marks a type as a capability (lockable) for the analysis. */
#define ATSCALE_CAPABILITY(name) ATSCALE_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define ATSCALE_SCOPED_CAPABILITY ATSCALE_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with the given mutex held. */
#define ATSCALE_GUARDED_BY(x) ATSCALE_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by the given mutex. */
#define ATSCALE_PT_GUARDED_BY(x) ATSCALE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the given mutex(es) held. */
#define ATSCALE_REQUIRES(...) \
    ATSCALE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that must be called with the given mutex(es) NOT held. */
#define ATSCALE_EXCLUDES(...) \
    ATSCALE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function that acquires the given mutex(es) and does not release. */
#define ATSCALE_ACQUIRE(...) \
    ATSCALE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the given mutex(es). */
#define ATSCALE_RELEASE(...) \
    ATSCALE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the mutex when it returns `ret`. */
#define ATSCALE_TRY_ACQUIRE(ret, ...) \
    ATSCALE_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Function returning a reference to the given capability. */
#define ATSCALE_RETURN_CAPABILITY(x) \
    ATSCALE_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function. Justify it. */
#define ATSCALE_NO_THREAD_SAFETY_ANALYSIS \
    ATSCALE_THREAD_ANNOTATION(no_thread_safety_analysis)

/**
 * Marks a class as a cross-core shared structure in the multi-core
 * simulation (one instance reachable from several simulated cores, e.g.
 * a shared L3 or the shootdown coordinator). Compiles to nothing; the
 * marker exists for lint rule R9, which requires every class that *is*
 * or *holds* such a structure to either guard it with the annotated
 * Mutex above or carry a `cross-core:` comment documenting why
 * lock-free access is safe (docs/MULTICORE.md, docs/STATIC_ANALYSIS.md).
 */
#define ATSCALE_SHARED_ACROSS_CORES

namespace atscale
{

/**
 * The repo's mutex: std::mutex annotated as a capability. Same size,
 * same cost — lock()/unlock() inline straight through — but clang can
 * reason about it. Prefer MutexLock for scoped acquisition.
 */
class ATSCALE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ATSCALE_ACQUIRE() { mu_.lock(); }
    void unlock() ATSCALE_RELEASE() { mu_.unlock(); }
    bool try_lock() ATSCALE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/** Scoped lock over Mutex (std::lock_guard with annotations). */
class ATSCALE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ATSCALE_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() ATSCALE_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable usable with Mutex. wait() must be called with the
 * mutex held (enforced by the annotation); it atomically releases while
 * blocked and reacquires before returning, exactly like
 * std::condition_variable.
 */
class CondVar
{
  public:
    void
    wait(Mutex &mu) ATSCALE_REQUIRES(mu)
    {
        // Adopt the already-held native mutex for the wait protocol,
        // then release the adapter so scope exit does not unlock: the
        // caller still holds `mu`, as the annotation promises.
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    template <typename Predicate>
    void
    waitUntil(Mutex &mu, Predicate pred) ATSCALE_REQUIRES(mu)
    {
        while (!pred())
            wait(mu);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace atscale

#endif // ATSCALE_UTIL_THREAD_ANNOTATIONS_HH
