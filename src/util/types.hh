/**
 * @file
 * Fundamental type aliases and architectural constants shared by every
 * atscale library.
 *
 * We model a 48-bit x86-64 virtual address space translated through a
 * 4-level radix page table, exactly as on the Haswell systems used in the
 * paper.
 */

#ifndef ATSCALE_UTIL_TYPES_HH
#define ATSCALE_UTIL_TYPES_HH

#include <cstdint>

namespace atscale
{

/** A virtual address. 48 significant bits on x86-64 4-level paging. */
using Addr = std::uint64_t;

/** A physical address in the simulated machine. */
using PhysAddr = std::uint64_t;

/** A count of clock cycles. */
using Cycles = std::uint64_t;

/** A count of instructions, references, events, ... */
using Count = std::uint64_t;

/** Number of significant virtual address bits (x86-64, 4-level). */
constexpr int vaddrBits = 48;

/** log2 of the base page size (4 KiB). */
constexpr int pageShift4K = 12;
/** log2 of the 2 MiB superpage size. */
constexpr int pageShift2M = 21;
/** log2 of the 1 GiB superpage size. */
constexpr int pageShift1G = 30;

/** Base page size in bytes. */
constexpr std::uint64_t pageSize4K = 1ull << pageShift4K;
/** 2 MiB superpage size in bytes. */
constexpr std::uint64_t pageSize2M = 1ull << pageShift2M;
/** 1 GiB superpage size in bytes. */
constexpr std::uint64_t pageSize1G = 1ull << pageShift1G;

/** Bits of virtual address consumed per radix-tree level. */
constexpr int ptIndexBits = 9;
/** Entries per page-table node (one 4 KiB frame of 8-byte PTEs). */
constexpr int ptEntriesPerNode = 1 << ptIndexBits;
/** Size of one page-table entry in bytes. */
constexpr int pteBytes = 8;
/** Number of radix-tree levels (PML4, PDPT, PD, PT). */
constexpr int ptLevels = 4;

/** Convenience byte-size literals. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

} // namespace atscale

#endif // ATSCALE_UTIL_TYPES_HH
