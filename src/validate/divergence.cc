#include "validate/divergence.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <initializer_list>
#include <ostream>

#include "obs/json.hh"
#include "perf/derived.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace atscale
{

namespace
{

/** One comparable component: name, evaluator, required events. */
struct ComponentSpec
{
    const char *name;
    double (*eval)(const CounterSet &);
    std::initializer_list<EventId> required;
};

double
evalIpc(const CounterSet &c)
{
    const double cycles =
        static_cast<double>(c.get(EventId::CpuClkUnhalted));
    if (cycles <= 0)
        return 0;
    return static_cast<double>(c.get(EventId::InstRetired)) / cycles;
}

double
evalWcpi(const CounterSet &c)
{
    // Walk cycles / instruction straight from the counters — more
    // robust than multiplying the four Eq-1 terms when a multiplexed
    // ratio is noisy, and algebraically the same quantity.
    return proxyMetrics(c).walkCyclesPerInstr;
}

double
evalAccessesPerInstr(const CounterSet &c)
{
    return wcpiTerms(c).accessesPerInstr;
}

double
evalMissPerKiloInstr(const CounterSet &c)
{
    return proxyMetrics(c).tlbMissesPerKiloInstr;
}

double
evalMissPerAccess(const CounterSet &c)
{
    return wcpiTerms(c).tlbMissesPerAccess;
}

double
evalPtwPerWalk(const CounterSet &c)
{
    return wcpiTerms(c).ptwAccessesPerWalk;
}

double
evalCyclesPerPtw(const CounterSet &c)
{
    return wcpiTerms(c).walkCyclesPerPtwAccess;
}

double
evalPscHitFraction(const CounterSet &c)
{
    // A radix walk needs 4 PTW accesses with a cold MMU cache; fewer
    // per walk means the paging-structure caches skipped upper levels.
    const double perWalk = wcpiTerms(c).ptwAccessesPerWalk;
    return 1.0 - std::clamp(perWalk / 4.0, 0.0, 1.0);
}

double
evalWalkCycleFraction(const CounterSet &c)
{
    return proxyMetrics(c).walkCycleFraction;
}

constexpr EventId kCycles = EventId::CpuClkUnhalted;
constexpr EventId kInstr = EventId::InstRetired;
constexpr EventId kLoads = EventId::MemUopsRetiredAllLoads;
constexpr EventId kStores = EventId::MemUopsRetiredAllStores;
constexpr EventId kWalkL = EventId::DtlbLoadMissesMissCausesAWalk;
constexpr EventId kWalkS = EventId::DtlbStoreMissesMissCausesAWalk;
constexpr EventId kDurL = EventId::DtlbLoadMissesWalkDuration;
constexpr EventId kDurS = EventId::DtlbStoreMissesWalkDuration;
constexpr EventId kPwl1 = EventId::PageWalkerLoadsDtlbL1;
constexpr EventId kPwl2 = EventId::PageWalkerLoadsDtlbL2;
constexpr EventId kPwl3 = EventId::PageWalkerLoadsDtlbL3;
constexpr EventId kPwlM = EventId::PageWalkerLoadsDtlbMemory;

const ComponentSpec componentSpecs[] = {
    {"ipc", evalIpc, {kCycles, kInstr}},
    {"wcpi", evalWcpi, {kDurL, kDurS, kInstr}},
    {"accesses_per_instr", evalAccessesPerInstr, {kLoads, kStores, kInstr}},
    {"dtlb_miss_per_kilo_instr", evalMissPerKiloInstr,
     {kWalkL, kWalkS, kInstr}},
    {"tlb_miss_per_access", evalMissPerAccess,
     {kWalkL, kWalkS, kLoads, kStores}},
    {"ptw_accesses_per_walk", evalPtwPerWalk,
     {kPwl1, kPwl2, kPwl3, kPwlM, kWalkL, kWalkS}},
    {"walk_cycles_per_ptw_access", evalCyclesPerPtw,
     {kDurL, kDurS, kPwl1, kPwl2, kPwl3, kPwlM}},
    {"psc_hit_fraction", evalPscHitFraction,
     {kPwl1, kPwl2, kPwl3, kPwlM, kWalkL, kWalkS}},
    {"walk_cycle_fraction", evalWalkCycleFraction, {kDurL, kDurS, kCycles}},
};

double
relativeError(double simulated, double measured)
{
    const double scale =
        std::max(std::fabs(simulated), std::fabs(measured));
    if (scale < 1e-12)
        return 0;
    return std::fabs(measured - simulated) / scale;
}

void
writeCounters(JsonWriter &json, const std::string &key,
              const CounterSet &counters)
{
    json.key(key).beginObject();
    counters.forEach([&](EventId, const char *name, Count value) {
        json.kv(name, static_cast<std::uint64_t>(value));
    });
    json.endObject();
}

} // namespace

bool
DivergenceReport::allAgree() const
{
    for (const ValidationPoint &point : points)
        if (!point.agrees)
            return false;
    return true;
}

std::vector<ComponentDelta>
compareCounters(const CounterSet &simulated, const CounterSet &measured,
                const std::vector<EventId> &measuredEvents, double tolerance)
{
    std::array<bool, numEvents> have{};
    for (EventId id : measuredEvents)
        have[static_cast<std::size_t>(id)] = true;

    std::vector<ComponentDelta> deltas;
    deltas.reserve(std::size(componentSpecs));
    for (const ComponentSpec &spec : componentSpecs) {
        ComponentDelta delta;
        delta.name = spec.name;
        delta.simulated = spec.eval(simulated);
        delta.measured = spec.eval(measured);
        delta.relError = relativeError(delta.simulated, delta.measured);
        delta.measurable = true;
        for (EventId id : spec.required)
            delta.measurable =
                delta.measurable && have[static_cast<std::size_t>(id)];
        delta.within = delta.measurable && delta.relError <= tolerance;
        deltas.push_back(std::move(delta));
    }
    return deltas;
}

void
finalizeReport(DivergenceReport &report)
{
    std::vector<std::pair<std::string, double>> worst;
    for (ValidationPoint &point : report.points) {
        point.agrees = true;
        for (const ComponentDelta &delta : point.components) {
            if (!delta.measurable)
                continue;
            point.agrees = point.agrees && delta.within;
            bool found = false;
            for (auto &entry : worst) {
                if (entry.first == delta.name) {
                    entry.second = std::max(entry.second, delta.relError);
                    found = true;
                    break;
                }
            }
            if (!found)
                worst.emplace_back(delta.name, delta.relError);
        }
    }
    std::sort(worst.begin(), worst.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second ||
                         (a.second == b.second && a.first < b.first);
              });
    report.maxRelError = std::move(worst);
}

void
writeDivergenceJson(const DivergenceReport &report, std::ostream &os,
                    bool pretty)
{
    JsonWriter json(os, pretty);
    json.beginObject();
    json.kv("schema", "atscale-validation-v1");
    json.kv("status", report.status);
    json.kv("reason", report.reason);
    json.kv("perf_event_paranoid", report.paranoidLevel);
    json.kv("tolerance", report.tolerance);

    json.key("events").beginArray();
    for (const EventProbe &probe : report.probes) {
        json.beginObject();
        json.kv("event", eventName(probe.id));
        json.kv("available", probe.available);
        json.kv("errno", probe.error);
        json.endObject();
    }
    json.endArray();

    json.key("points").beginArray();
    for (const ValidationPoint &point : report.points) {
        json.beginObject();
        json.kv("workload", point.workload);
        json.kv("footprint_bytes",
                static_cast<std::uint64_t>(point.footprintBytes));
        json.kv("page_size", pageSizeName(point.pageSize));
        json.kv("refs_replayed",
                static_cast<std::uint64_t>(point.refsReplayed));
        json.kv("truncated", point.truncated);
        json.kv("agrees", point.agrees);
        json.key("components").beginArray();
        for (const ComponentDelta &delta : point.components) {
            json.beginObject();
            json.kv("name", delta.name);
            json.kv("simulated", delta.simulated);
            json.kv("measured", delta.measured);
            json.kv("rel_error", delta.relError);
            json.kv("measurable", delta.measurable);
            json.kv("within_tolerance", delta.within);
            json.endObject();
        }
        json.endArray();
        writeCounters(json, "simulated_counters", point.simulated);
        writeCounters(json, "measured_counters", point.measured);
        json.endObject();
    }
    json.endArray();

    json.key("max_rel_error").beginObject();
    for (const auto &entry : report.maxRelError)
        json.kv(entry.first, entry.second);
    json.endObject();

    json.kv("all_agree", report.allAgree());
    json.endObject();
}

void
writeDivergenceFile(const DivergenceReport &report, const std::string &path)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot write divergence report to %s", path.c_str());
    writeDivergenceJson(report, os);
    os << "\n";
}

void
printDivergenceTable(const DivergenceReport &report, std::ostream &os)
{
    if (report.status != "ok") {
        os << "validation: " << report.status << " — " << report.reason
           << "\n";
        int unavailable = 0;
        for (const EventProbe &probe : report.probes)
            if (!probe.available)
                ++unavailable;
        if (!report.probes.empty())
            os << "  events unavailable: " << unavailable << "/"
               << report.probes.size() << "\n";
        return;
    }

    TablePrinter table("measured vs simulated WCPI components");
    table.header({"workload", "footprint", "pages", "component", "sim",
                  "meas", "rel_err", "verdict"});
    for (const ValidationPoint &point : report.points) {
        for (const ComponentDelta &delta : point.components) {
            const char *verdict = !delta.measurable ? "unmeasured"
                                  : delta.within    ? "agree"
                                                    : "DIVERGES";
            table.rowv(point.workload, fmtBytes(point.footprintBytes),
                       pageSizeName(point.pageSize), delta.name,
                       fmtDouble(delta.simulated, 4),
                       fmtDouble(delta.measured, 4),
                       fmtDouble(delta.relError, 3), verdict);
        }
    }
    table.print(os);
}

} // namespace atscale
