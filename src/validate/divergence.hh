/**
 * @file
 * Measured-vs-simulated divergence analysis for the Eq-1 WCPI
 * decomposition.
 *
 * Both sides of the validation loop produce a CounterSet in the same
 * event vocabulary (src/perf/event.hh); the derived-metric layer is
 * shared by construction. This module turns a (simulated, measured)
 * counter pair into per-component relative errors — the Eq-1 terms,
 * the Table-V proxies, IPC, and a PSC hit fraction — and aggregates
 * them into a DivergenceReport with one machine-readable "status"
 * field. A report is produced in every environment: on counter-less
 * containers it carries status "skipped_no_pmu" plus the per-event
 * probe diagnosis instead of silently doing nothing.
 */

#ifndef ATSCALE_VALIDATE_DIVERGENCE_HH
#define ATSCALE_VALIDATE_DIVERGENCE_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "perf/linux_backend.hh"
#include "vm/page_size.hh"

namespace atscale
{

/** One derived component compared across the two counter sources. */
struct ComponentDelta
{
    /** Component name (e.g. "tlb_miss_per_access"). */
    std::string name;
    double simulated = 0;
    double measured = 0;
    /** |measured - simulated| / max(|simulated|, |measured|); 0 when
     * both sides are ~0. */
    double relError = 0;
    /** Measurable and relError <= tolerance. */
    bool within = false;
    /** Every hardware event this component needs was actually counted;
     * when false the hardware cannot confirm or refute this component
     * and relError is not evidence of anything. */
    bool measurable = false;
};

/** One workload x footprint x page-size validation point. */
struct ValidationPoint
{
    std::string workload;
    std::uint64_t footprintBytes = 0;
    PageSize pageSize = PageSize::Size4K;
    CounterSet simulated;
    CounterSet measured;
    /** References replayed natively in the measured window. */
    Count refsReplayed = 0;
    /** The native replay recycled host pages (footprint under-mapped). */
    bool truncated = false;
    std::vector<ComponentDelta> components;
    /** Every measurable component is within tolerance. */
    bool agrees = true;
};

/** The whole validation run, in one report. */
struct DivergenceReport
{
    /** Machine-readable outcome: "ok" or "skipped_no_pmu". */
    std::string status = "skipped_no_pmu";
    /** Human-readable diagnosis when skipped. */
    std::string reason;
    /** /proc/sys/kernel/perf_event_paranoid, INT_MIN when unreadable. */
    int paranoidLevel = 0;
    /** Relative-error tolerance applied per component. */
    double tolerance = 0;
    /** Per-event availability on this machine. */
    std::vector<EventProbe> probes;
    std::vector<ValidationPoint> points;
    /** Worst relative error per component across all points, sorted
     * descending (only components measurable somewhere appear). */
    std::vector<std::pair<std::string, double>> maxRelError;

    /** Every point agrees (vacuously true with no points). */
    bool allAgree() const;
};

/**
 * Compare one simulated/measured counter pair across all divergence
 * components. `measuredEvents` is the set the backend actually opened;
 * components needing an unopened event come back measurable == false.
 */
std::vector<ComponentDelta>
compareCounters(const CounterSet &simulated, const CounterSet &measured,
                const std::vector<EventId> &measuredEvents,
                double tolerance);

/** Fill report.maxRelError and point/report agreement flags. */
void finalizeReport(DivergenceReport &report);

/** Emit the report as JSON (schema "atscale-validation-v1"). */
void writeDivergenceJson(const DivergenceReport &report, std::ostream &os,
                         bool pretty = true);

/** Write the JSON report to a file; fatal() when unwritable. */
void writeDivergenceFile(const DivergenceReport &report,
                         const std::string &path);

/** Render the human-readable divergence table. */
void printDivergenceTable(const DivergenceReport &report, std::ostream &os);

} // namespace atscale

#endif // ATSCALE_VALIDATE_DIVERGENCE_HH
