#include "validate/native_driver.hh"

#include <sys/mman.h>

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "util/logging.hh"
#include "vm/address_space.hh"
#include "workloads/registry.hh"

namespace atscale
{

namespace
{

/** One pre-translated replay step: a host byte to load or store. */
struct NativeOp
{
    std::uint8_t *ptr;
    bool store;
};

/** Anonymous host mapping sized for the replay's distinct pages. */
class HostBuffer
{
  public:
    HostBuffer(std::uint64_t bytes, PageSize pageSize) : bytes_(bytes)
    {
        void *p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        fatal_if(p == MAP_FAILED, "native driver: mmap of %llu bytes failed",
                 static_cast<unsigned long long>(bytes_));
        base_ = static_cast<std::uint8_t *>(p);
#ifdef MADV_HUGEPAGE
        // Best-effort: ask the host for transparent huge pages when the
        // simulated side uses superpages, so the measured TLB pressure
        // tracks the simulated backing. THP gives no guarantee; the
        // divergence report documents this as a known-divergent knob.
        if (pageSize != PageSize::Size4K)
            ::madvise(base_, bytes_, MADV_HUGEPAGE);
#else
        (void)pageSize;
#endif
    }

    ~HostBuffer()
    {
        if (base_)
            ::munmap(base_, bytes_);
    }

    HostBuffer(const HostBuffer &) = delete;
    HostBuffer &operator=(const HostBuffer &) = delete;

    std::uint8_t *base() const { return base_; }

  private:
    std::uint64_t bytes_;
    std::uint8_t *base_ = nullptr;
};

/**
 * Replay `count` ops starting at *pos (wrapping), accumulating a load
 * checksum so the loop has observable effects the optimizer must keep.
 */
std::uint64_t
replayOps(const std::vector<NativeOp> &ops, Count count, std::size_t *pos,
          std::uint64_t sum)
{
    std::size_t p = *pos;
    const std::size_t n = ops.size();
    for (Count i = 0; i < count; ++i) {
        const NativeOp &op = ops[p];
        if (op.store)
            *op.ptr = static_cast<std::uint8_t>(sum);
        else
            sum += *op.ptr;
        if (++p == n)
            p = 0;
    }
    *pos = p;
    return sum;
}

} // namespace

NativeRunResult
runNativeWorkload(const NativeRunOptions &options, LinuxPerfBackend &backend)
{
    NativeRunResult result;

    std::unique_ptr<Workload> workload = createWorkload(options.workload);
    fatal_if(!workload->supports(WorkloadMode::Exec),
             "native driver: workload %s has no exec mode",
             options.workload.c_str());

    // Instantiate on a throwaway simulated address space just to obtain
    // the traced reference stream; nothing simulated runs here.
    PhysicalMemory mem;
    FrameAllocator alloc;
    AddressSpace space(mem, alloc, options.pageSize);
    WorkloadConfig config;
    config.footprintBytes = options.footprintBytes;
    config.seed = options.seed;
    config.mode = WorkloadMode::Exec;
    std::unique_ptr<RefSource> stream = workload->instantiate(space, config);

    // Pull one bounded window of references; the exec trace wraps
    // endlessly, so replaying this window cyclically reproduces the same
    // stream the simulator consumes. Capped at the trace sink's own
    // limit — beyond it the window would repeat anyway.
    const Count total = options.warmupRefs + options.measureRefs;
    const Count window = std::min<Count>(total, 4u << 20);
    std::vector<Ref> refs(window);
    Count got = stream->fill(refs.data(), window);
    fatal_if(got == 0, "native driver: %s produced no references",
             options.workload.c_str());
    refs.resize(got);

    // Pass 1: assign each distinct simulated 4 KiB page a host slot.
    // Build-time lookup table only — never iterated (atscale-lint R2).
    const std::uint64_t slotBytes = pageBytes(PageSize::Size4K);
    const std::uint64_t maxSlots =
        std::max<std::uint64_t>(1, options.maxHostBytes / slotBytes);
    std::unordered_map<std::uint64_t, std::uint64_t> pageSlot;
    std::uint64_t nextSlot = 0;
    for (const Ref &ref : refs) {
        const std::uint64_t page = ref.vaddr / slotBytes;
        auto it = pageSlot.find(page);
        if (it != pageSlot.end())
            continue;
        std::uint64_t slot;
        if (nextSlot < maxSlots) {
            slot = nextSlot++;
        } else {
            // Host cap reached: recycle slots deterministically. The
            // replayed footprint is then smaller than requested and the
            // result says so (truncated).
            slot = page % maxSlots;
            result.truncated = true;
        }
        pageSlot.emplace(page, slot);
    }
    result.distinctPages = pageSlot.size();
    result.hostBytesMapped = nextSlot * slotBytes;

    // Pass 2: pre-translate every reference to a host pointer so the
    // measured loop is pure memory traffic, no table lookups.
    HostBuffer buffer(result.hostBytesMapped, options.pageSize);
    std::vector<NativeOp> ops;
    ops.reserve(refs.size());
    for (const Ref &ref : refs) {
        const std::uint64_t slot = pageSlot.at(ref.vaddr / slotBytes);
        ops.push_back({buffer.base() + slot * slotBytes +
                           ref.vaddr % slotBytes,
                       ref.isStore});
    }

    // Populate every slot before measuring so demand-zero faults land in
    // the warm-up, not the counter window (the paper's dry-run analogue).
    for (std::uint64_t slot = 0; slot < nextSlot; ++slot)
        buffer.base()[slot * slotBytes] = 1;

    std::size_t pos = 0;
    std::uint64_t sum = replayOps(ops, options.warmupRefs, &pos, 0);

    backend.start();
    sum = replayOps(ops, options.measureRefs, &pos, sum);
    backend.stop();

    result.counters = backend.read();
    result.refsReplayed = options.measureRefs;
    result.measured = !backend.opened().empty();
    result.checksum = sum | 1;
    return result;
}

} // namespace atscale
