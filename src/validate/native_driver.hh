/**
 * @file
 * Native-execution driver: replay an exec-mode workload's reference
 * stream against real host memory while hardware counters run.
 *
 * This is the measured half of the validation loop (docs/VALIDATION.md).
 * The exec-mode workloads trace a real algorithm's accesses at simulated
 * virtual addresses; here those addresses are rebound, page by page, to
 * a host allocation of the same page-granular footprint, and the trace
 * is replayed as actual loads and stores. The host's MMU then sees the
 * same access pattern the simulator models, and a LinuxPerfBackend
 * around the replay window yields the measured counter vector that
 * src/validate/divergence.hh compares against the simulated one.
 *
 * What is faithful: the page-level reuse/locality structure, the
 * load/store mix, the working-set size. What is deliberately not: the
 * replay loop's own instruction stream (a tight array walk, not the
 * original algorithm), so instruction-normalized components diverge by
 * construction — the divergence report states this rather than hiding
 * it (see docs/VALIDATION.md, "known-divergent assumptions").
 */

#ifndef ATSCALE_VALIDATE_NATIVE_DRIVER_HH
#define ATSCALE_VALIDATE_NATIVE_DRIVER_HH

#include <string>

#include "perf/linux_backend.hh"
#include "vm/page_size.hh"
#include "workloads/workload.hh"

namespace atscale
{

/** One native replay's knobs (the measured twin of a RunSpec). */
struct NativeRunOptions
{
    std::string workload = "mcf-rand";
    std::uint64_t footprintBytes = 64ull << 20;
    /** Simulated-side backing; on the host it is an madvise hint. */
    PageSize pageSize = PageSize::Size4K;
    Count warmupRefs = 200'000;
    Count measureRefs = 1'000'000;
    std::uint64_t seed = 1;
    /** Host-allocation safety cap; beyond it pages are recycled. */
    std::uint64_t maxHostBytes = 2ull << 30;
};

/** What one native replay produced. */
struct NativeRunResult
{
    /** Measured counters (multiplex-scaled); zero when not measured. */
    CounterSet counters;
    /** References replayed in the measured window. */
    Count refsReplayed = 0;
    /** Host bytes backing the replay (distinct pages x 4 KiB). */
    std::uint64_t hostBytesMapped = 0;
    /** Distinct simulated pages the trace touched. */
    std::uint64_t distinctPages = 0;
    /** The host page pool hit maxHostBytes and recycled slots. */
    bool truncated = false;
    /** Counters were actually collected (backend had open events). */
    bool measured = false;
    /** Load-byte checksum (defeats dead-code elimination; ignore). */
    std::uint64_t checksum = 0;
};

/**
 * Instantiate `options.workload` in exec mode at the requested
 * footprint, rebind its traced reference stream to host memory, warm
 * up, and replay the measurement window between backend.start() and
 * backend.stop(). The caller opens the backend's events beforehand;
 * with nothing open the replay still runs (result.measured == false),
 * which is what the unit tests and counter-less CI exercise.
 */
NativeRunResult runNativeWorkload(const NativeRunOptions &options,
                                  LinuxPerfBackend &backend);

} // namespace atscale

#endif // ATSCALE_VALIDATE_NATIVE_DRIVER_HH
