#include "validate/validation_sweep.hh"

#include <climits>
#include <cstring>
#include <sstream>

#include "core/run_cache.hh"
#include "core/sweep.hh"
#include "validate/native_driver.hh"

namespace atscale
{

namespace
{

/** The measured twin of a simulated spec (distinct cache namespace). */
RunSpec
hardwareSpec(const RunSpec &spec)
{
    RunSpec hw = spec;
    hw.platformTag = "hw";
    return hw;
}

std::string
skipReason(int paranoidLevel, const std::vector<EventProbe> &probes)
{
    std::ostringstream os;
    os << "perf_event_open unusable";
    if (paranoidLevel == INT_MIN)
        os << " (perf_event_paranoid unreadable; non-Linux or /proc "
              "unmounted)";
    else
        os << " (perf_event_paranoid=" << paranoidLevel
           << "; <= 2 suffices for this backend, so a refusal at that "
              "level means no PMU is exposed — container or VM)";
    int unavailable = 0;
    int firstErrno = 0;
    for (const EventProbe &probe : probes) {
        if (probe.available)
            continue;
        ++unavailable;
        if (firstErrno == 0)
            firstErrno = probe.error;
    }
    if (!probes.empty()) {
        os << "; " << unavailable << "/" << probes.size()
           << " events unavailable";
        if (firstErrno != 0)
            os << " (first error: " << std::strerror(firstErrno) << ")";
    }
    return os.str();
}

} // namespace

std::vector<EventId>
validationEvents()
{
    return {
        EventId::CpuClkUnhalted,
        EventId::InstRetired,
        EventId::MemUopsRetiredAllLoads,
        EventId::MemUopsRetiredAllStores,
        EventId::DtlbLoadMissesMissCausesAWalk,
        EventId::DtlbStoreMissesMissCausesAWalk,
        EventId::DtlbLoadMissesWalkCompleted,
        EventId::DtlbStoreMissesWalkCompleted,
        EventId::DtlbLoadMissesWalkDuration,
        EventId::DtlbStoreMissesWalkDuration,
        EventId::PageWalkerLoadsDtlbL1,
        EventId::PageWalkerLoadsDtlbL2,
        EventId::PageWalkerLoadsDtlbL3,
        EventId::PageWalkerLoadsDtlbMemory,
    };
}

DivergenceReport
runValidationSweep(const ValidationOptions &options)
{
    DivergenceReport report;
    report.tolerance = options.tolerance;
    report.paranoidLevel = LinuxPerfBackend::perfParanoidLevel();

    if (options.forceNoPmu) {
        report.status = "skipped_no_pmu";
        report.reason = "PMU measurement disabled by request "
                        "(--force-no-pmu)";
        finalizeReport(report);
        return report;
    }

    report.probes = LinuxPerfBackend::probeEvents(validationEvents());
    if (!LinuxPerfBackend::available()) {
        report.status = "skipped_no_pmu";
        report.reason = skipReason(report.paranoidLevel, report.probes);
        finalizeReport(report);
        return report;
    }

    // Declare the simulated side as one engine sweep: exec mode, so the
    // simulator consumes exactly the trace the native replay does.
    std::vector<RunSpec> specs;
    for (const std::string &workload : options.workloads) {
        for (std::uint64_t footprint : options.footprints) {
            for (PageSize pageSize : options.pageSizes) {
                RunSpec spec;
                spec.workload = workload;
                spec.footprintBytes = footprint;
                spec.pageSize = pageSize;
                spec.mode = WorkloadMode::Exec;
                spec.warmupRefs = options.warmupRefs;
                spec.measureRefs = options.measureRefs;
                spec.seed = options.seed;
                specs.push_back(spec);
            }
        }
    }

    SweepOptions sweepOptions;
    sweepOptions.threads = options.threads;
    SweepEngine engine(sweepOptions);
    std::vector<RunResult> simulated = engine.run(specs);

    // The measured side runs serially: concurrent replays would fight
    // for the same PMCs and for memory bandwidth, polluting each other's
    // counters.
    std::vector<EventId> probedAvailable;
    for (const EventProbe &probe : report.probes)
        if (probe.available)
            probedAvailable.push_back(probe.id);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        ValidationPoint point;
        point.workload = specs[i].workload;
        point.footprintBytes = specs[i].footprintBytes;
        point.pageSize = specs[i].pageSize;
        point.simulated = simulated[i].counters;

        const RunSpec hwSpec = hardwareSpec(specs[i]);
        std::vector<EventId> measuredEvents;
        RunResult cached;
        if (loadCachedRun(hwSpec, cached)) {
            // A prior run on this machine; the probe set stands in for
            // the exact opened set (same machine, same events).
            point.measured = cached.counters;
            point.refsReplayed = specs[i].measureRefs;
            measuredEvents = probedAvailable;
        } else {
            LinuxPerfBackend backend;
            measuredEvents = backend.open(validationEvents());
            NativeRunOptions native;
            native.workload = specs[i].workload;
            native.footprintBytes = specs[i].footprintBytes;
            native.pageSize = specs[i].pageSize;
            native.warmupRefs = specs[i].warmupRefs;
            native.measureRefs = specs[i].measureRefs;
            native.seed = specs[i].seed;
            native.maxHostBytes = options.maxHostBytes;
            NativeRunResult run = runNativeWorkload(native, backend);
            point.measured = run.counters;
            point.refsReplayed = run.refsReplayed;
            point.truncated = run.truncated;
            if (run.measured) {
                RunResult hwResult;
                hwResult.spec = hwSpec;
                hwResult.counters = run.counters;
                hwResult.footprintTouched = run.hostBytesMapped;
                storeCachedRun(hwSpec, hwResult);
            }
        }

        point.components = compareCounters(point.simulated, point.measured,
                                           measuredEvents,
                                           options.tolerance);
        report.points.push_back(std::move(point));
    }

    report.status = "ok";
    finalizeReport(report);
    return report;
}

} // namespace atscale
