/**
 * @file
 * ValidationSweep: pair simulated and measured runs over matched
 * (workload, footprint, page size) points and produce one
 * DivergenceReport.
 *
 * The simulated side goes through the regular SweepEngine — exec-mode
 * RunSpecs, disk-cached like any other run. The measured side replays
 * the same exec traces natively (src/validate/native_driver.hh) under
 * LinuxPerfBackend, and its counter vectors are cached too, under the
 * same RunSpec keyed with platformTag "hw", so repeated validation runs
 * on the same machine only pay for the PMU windows once.
 *
 * On machines without usable counters (containers, perf_event_paranoid
 * lockdown, non-Linux) the sweep short-circuits into a skip report that
 * still carries the per-event probe diagnosis — CI's counter-less leg
 * asserts exactly this shape.
 */

#ifndef ATSCALE_VALIDATE_VALIDATION_SWEEP_HH
#define ATSCALE_VALIDATE_VALIDATION_SWEEP_HH

#include <string>
#include <vector>

#include "validate/divergence.hh"

namespace atscale
{

/** Knobs of one validation sweep. */
struct ValidationOptions
{
    /** Exec-capable workloads: one per paper suite (SPEC, cloud, GAP,
     * PARSEC). */
    std::vector<std::string> workloads = {
        "mcf-rand",
        "memcached-uniform",
        "cc-urand",
        "streamcluster-rand",
    };
    /** Footprints small enough to replay on a host (native side maps
     * real memory). */
    std::vector<std::uint64_t> footprints = {64ull << 20, 256ull << 20};
    std::vector<PageSize> pageSizes = {PageSize::Size4K, PageSize::Size2M};
    Count warmupRefs = 200'000;
    Count measureRefs = 1'000'000;
    std::uint64_t seed = 1;
    /** Per-component relative-error tolerance. The loose default
     * reflects that the native replay shares the access pattern, not
     * the instruction stream (docs/VALIDATION.md). */
    double tolerance = 0.5;
    /** Simulated-side worker threads (0 = resolveThreads()). */
    int threads = 0;
    /** Skip PMU measurement even when available (CI's no-PMU leg). */
    bool forceNoPmu = false;
    /** Host-memory cap for the native replay, per point. */
    std::uint64_t maxHostBytes = 2ull << 30;
};

/** The events a validation run asks the PMU for (Eq-1 vocabulary). */
std::vector<EventId> validationEvents();

/**
 * Run the full sweep: simulate every point, measure every point (when
 * the PMU allows), compare, and return the finalized report. Never
 * throws on missing counters — that is a report status, not an error.
 */
DivergenceReport runValidationSweep(const ValidationOptions &options);

} // namespace atscale

#endif // ATSCALE_VALIDATE_VALIDATION_SWEEP_HH
