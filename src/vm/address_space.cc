#include "vm/address_space.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace atscale
{

namespace
{

/** Start of the simulated heap, clear of the (unmodelled) text segment. */
constexpr Addr heapBase = 1ull << 30;
/** Unmapped guard gap between regions. */
constexpr std::uint64_t guardGap = 2ull << 20;

} // namespace

AddressSpace::AddressSpace(PhysicalMemory &mem, FrameAllocator &alloc,
                           PageSize backing)
    : mem_(mem), alloc_(alloc), table_(mem, alloc), backing_(backing),
      cursor_(heapBase)
{
}

PageSize
AddressSpace::effectiveBacking(PageSize requested, std::uint64_t bytes)
{
    // hugetlbfs cannot back a region with pages larger than the region:
    // fall back, 1G -> 2M -> 4K, as the paper describes for sub-1GiB
    // regions in the 1 GiB configuration.
    if (requested == PageSize::Size1G && bytes < pageSize1G)
        requested = PageSize::Size2M;
    if (requested == PageSize::Size2M && bytes < pageSize2M)
        requested = PageSize::Size4K;
    return requested;
}

Addr
AddressSpace::mapRegion(const std::string &name, std::uint64_t bytes)
{
    fatal_if(bytes == 0, "region '%s' has zero size", name.c_str());

    Vma vma;
    vma.name = name;
    vma.size = bytes;
    vma.requested = backing_;
    vma.effective = effectiveBacking(backing_, bytes);
    vma.base = alignUp(cursor_, pageBytes(vma.effective));

    fatal_if(vma.base + bytes >= (1ull << vaddrBits),
             "virtual address space exhausted by region '%s'", name.c_str());

    // Advance past the region's final (super)page so the next region can
    // never share a leaf mapping with this one.
    cursor_ = alignUp(vma.base + bytes, pageBytes(vma.effective)) + guardGap;
    reserved_ += bytes;
    vmas_.push_back(vma);
    return vma.base;
}

const Vma *
AddressSpace::findVma(Addr vaddr) const
{
    // Regions are allocated in ascending order; binary search on base.
    auto it = std::upper_bound(
        vmas_.begin(), vmas_.end(), vaddr,
        [](Addr a, const Vma &v) { return a < v.base; });
    if (it == vmas_.begin())
        return nullptr;
    --it;
    return it->contains(vaddr) ? &*it : nullptr;
}

const Translation &
AddressSpace::touch(Addr vaddr)
{
    const Vma *vma = findVma(vaddr);
    fatal_if(!vma, "access to unmapped virtual address %#lx", vaddr);

    Addr page_base = alignDown(vaddr, pageBytes(vma->effective));
    if (const Translation *t = pages_.find(page_base))
        return *t;

    std::uint64_t page = pageBytes(vma->effective);
    PhysAddr frame = alloc_.allocate(page);
    table_.map(page_base, frame, vma->effective);
    footprint_ += page;

    Translation t;
    t.valid = true;
    t.pageSize = vma->effective;
    t.frame = frame;
    t.pageBase = page_base;
    return pages_.insert(page_base, t);
}

void
AddressSpace::removeTranslationListener(TranslationListener *listener)
{
    listeners_.erase(
        std::remove(listeners_.begin(), listeners_.end(), listener),
        listeners_.end());
}

const Translation &
AddressSpace::remapPage(Addr vaddr)
{
    const Vma *vma = findVma(vaddr);
    fatal_if(!vma, "remap of unmapped virtual address %#lx", vaddr);

    Addr page_base = alignDown(vaddr, pageBytes(vma->effective));
    Translation *found = pages_.find(page_base);
    fatal_if(!found, "remap of never-populated virtual address %#lx", vaddr);

    Translation &t = *found;
    PhysAddr frame = alloc_.allocate(pageBytes(vma->effective));
    table_.remap(page_base, frame, vma->effective);
    t.frame = frame;

    // TLB-shootdown analogue: everything caching this page's translation
    // must drop it before the old frame can be reused.
    for (TranslationListener *listener : listeners_)
        listener->pageRemapped(page_base, vma->effective);
    return t;
}

} // namespace atscale
