/**
 * @file
 * Process address space: virtual regions, page-size backing policy, and
 * demand population of the page table.
 *
 * Mirrors the paper's experimental setup: every heap region is backed by a
 * chosen page size via hugetlbfs + the glibc.malloc.hugetlb tunable, with
 * the documented fallback that regions smaller than the requested superpage
 * cannot be superpage-backed (the source of the 1 GiB anomaly at small
 * footprints that motivates the min(t_2MB, t_1GB) baseline).
 */

#ifndef ATSCALE_VM_ADDRESS_SPACE_HH
#define ATSCALE_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <vector>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "vm/invalidation.hh"
#include "vm/page_map.hh"
#include "vm/page_table.hh"
#include "vm/vma.hh"

namespace atscale
{

/**
 * A single-process virtual address space over a shared physical machine.
 * Pages are populated on first touch (the experiment's warm-up phase plays
 * the role of the paper's 60-second dry run).
 */
class AddressSpace
{
  public:
    /**
     * @param mem simulated physical memory
     * @param alloc physical frame allocator
     * @param backing page size requested for all data regions
     */
    AddressSpace(PhysicalMemory &mem, FrameAllocator &alloc,
                 PageSize backing);

    /**
     * Reserve a named virtual region of the given size. The effective page
     * size follows the fallback rule; the region base is aligned to it.
     *
     * @return base virtual address of the region
     */
    Addr mapRegion(const std::string &name, std::uint64_t bytes);

    /**
     * Ensure the page containing vaddr is mapped (allocating the data
     * frame and page-table path on first touch) and return its
     * translation. fatal() if vaddr is outside any region.
     */
    const Translation &touch(Addr vaddr);

    /**
     * Migrate the populated page containing vaddr to a freshly allocated
     * physical frame (the page-migration / compaction analogue), then
     * notify every registered TranslationListener so no cached
     * translation can keep serving the old frame. fatal() if the page
     * was never touched.
     *
     * @return the page's new translation
     */
    const Translation &remapPage(Addr vaddr);

    /**
     * Register a structure caching translation state derived from this
     * space (TLBs, micro-TLBs, software translation caches). Listeners
     * are notified on every remapPage().
     */
    void
    addTranslationListener(TranslationListener *listener)
    {
        listeners_.push_back(listener);
    }

    /**
     * Unregister a listener. Remaining listeners keep their relative
     * notification order; re-adding appends at the end. Unknown
     * listeners are ignored (tear-down paths may race destruction
     * order). Must not be called from inside a pageRemapped callback.
     */
    void removeTranslationListener(TranslationListener *listener);

    /** Functional translation through the page table (no population). */
    Translation translate(Addr vaddr) const { return table_.translate(vaddr); }

    /** The page table, for the hardware walker. */
    const PageTable &pageTable() const { return table_; }

    /** Region lookup for diagnostics; nullptr when unmapped. */
    const Vma *findVma(Addr vaddr) const;

    /** All regions. */
    const std::vector<Vma> &vmas() const { return vmas_; }

    /** Bytes of data pages populated so far (the memory footprint). */
    std::uint64_t footprintBytes() const { return footprint_; }

    /** Total bytes reserved across regions. */
    std::uint64_t reservedBytes() const { return reserved_; }

    /** Page size requested for data regions. */
    PageSize backing() const { return backing_; }

    /**
     * The backing fallback rule: the requested size, unless the region is
     * too small to hold even one such page.
     */
    static PageSize effectiveBacking(PageSize requested, std::uint64_t bytes);

  private:
    PhysicalMemory &mem_;
    FrameAllocator &alloc_;
    PageTable table_;
    PageSize backing_;
    std::vector<Vma> vmas_;
    Addr cursor_;
    std::uint64_t footprint_ = 0;
    std::uint64_t reserved_ = 0;
    /** Populated pages: effective-page base -> translation. */
    PageMap pages_;
    /** Structures to notify when a mapping changes. */
    std::vector<TranslationListener *> listeners_;
};

} // namespace atscale

#endif // ATSCALE_VM_ADDRESS_SPACE_HH
