#include "vm/hashed_page_table.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace atscale
{

HashedPageTable::HashedPageTable(PhysicalMemory &mem, FrameAllocator &alloc,
                                 std::uint64_t capacityPages)
    : mem_(mem)
{
    fatal_if(capacityPages == 0, "hashed page table needs capacity");
    std::uint64_t entries = 1ull << ceilLog2(capacityPages * 3 / 2 + 1);
    buckets_ = std::max<std::uint64_t>(entries / entriesPerBucket, 1);

    // The table is one physically contiguous allocation, as an inverted
    // page table would be.
    base_ = alloc.allocate(1ull << ceilLog2(tableBytes()));
}

std::uint64_t
HashedPageTable::bucketOf(std::uint64_t vpn) const
{
    return mix64(vpn) & (buckets_ - 1);
}

PhysAddr
HashedPageTable::entryAddr(std::uint64_t bucket, int slot) const
{
    return base_ + bucket * bucketBytes +
           static_cast<PhysAddr>(slot) * 16;
}

void
HashedPageTable::map(Addr vaddr, PhysAddr frame)
{
    std::uint64_t vpn = vaddr >> pageShift4K;
    std::uint64_t bucket = bucketOf(vpn);
    for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
        std::uint64_t b = (bucket + probe) & (buckets_ - 1);
        for (int slot = 0; slot < entriesPerBucket; ++slot) {
            PhysAddr addr = entryAddr(b, slot);
            std::uint64_t tag = mem_.read64(addr);
            if (tag == 0) {
                // Tag stores vpn+1 so vpn 0 is representable.
                mem_.write64(addr, vpn + 1);
                mem_.write64(addr + 8, frame);
                ++size_;
                return;
            }
            panic_if(tag == vpn + 1, "double map of vaddr %#lx", vaddr);
        }
    }
    fatal("hashed page table full (%llu mappings)",
          static_cast<unsigned long long>(size_));
}

bool
HashedPageTable::remap(Addr vaddr, PhysAddr frame)
{
    std::uint64_t vpn = vaddr >> pageShift4K;
    std::uint64_t bucket = bucketOf(vpn);
    for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
        std::uint64_t b = (bucket + probe) & (buckets_ - 1);
        for (int slot = 0; slot < entriesPerBucket; ++slot) {
            PhysAddr addr = entryAddr(b, slot);
            std::uint64_t tag = mem_.read64(addr);
            if (tag == 0)
                return false;
            if (tag == vpn + 1) {
                mem_.write64(addr + 8, frame);
                return true;
            }
        }
    }
    return false;
}

bool
HashedPageTable::lookup(Addr vaddr, PhysAddr &frame) const
{
    std::uint64_t vpn = vaddr >> pageShift4K;
    std::uint64_t bucket = bucketOf(vpn);
    for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
        std::uint64_t b = (bucket + probe) & (buckets_ - 1);
        for (int slot = 0; slot < entriesPerBucket; ++slot) {
            PhysAddr addr = entryAddr(b, slot);
            std::uint64_t tag = mem_.read64(addr);
            if (tag == 0)
                return false;
            if (tag == vpn + 1) {
                frame = mem_.read64(addr + 8);
                return true;
            }
        }
    }
    return false;
}

HashedWalkResult
HashedPageTable::walk(Addr vaddr, CacheHierarchy &hierarchy,
                      Cycles perStepCycles, Cycles budget) const
{
    std::uint64_t vpn = vaddr >> pageShift4K;
    std::uint64_t bucket = bucketOf(vpn);

    HashedWalkResult result;
    for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
        if (result.cycles >= budget) {
            result.aborted = true;
            result.cycles = budget;
            return result;
        }
        std::uint64_t b = (bucket + probe) & (buckets_ - 1);
        // One cache-line load covers the whole bucket.
        MemAccessResult mem_access =
            hierarchy.access(entryAddr(b, 0), AccessKind::PtwLoad);
        ++result.accesses;
        result.cycles += mem_access.latency + perStepCycles;
        ++result.loadsAtLevel[static_cast<int>(mem_access.level)];
        if (result.firstLoadLevel < 0)
            result.firstLoadLevel =
                static_cast<std::int8_t>(mem_access.level);

        for (int slot = 0; slot < entriesPerBucket; ++slot) {
            std::uint64_t tag = mem_.read64(entryAddr(b, slot));
            if (tag == 0)
                return result; // not mapped
            if (tag == vpn + 1) {
                result.found = true;
                result.frame = mem_.read64(entryAddr(b, slot) + 8);
                return result;
            }
        }
        // Bucket full of other tags: spill to the next line.
    }
    return result;
}

} // namespace atscale
