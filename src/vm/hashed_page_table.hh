/**
 * @file
 * A hashed (inverted) page table — the alternative page-table format the
 * paper's Discussion calls for study: "alternative page table data
 * structures that do not introduce a log M overhead are deserving of
 * further study."
 *
 * Translations live in an open-addressing hash table in simulated
 * physical memory. Each bucket is one 64-byte cache line holding four
 * 16-byte (VPN, PFN) entries; a walk hashes the VPN, loads the bucket
 * line (one memory access), and probes its entries, spilling to the next
 * line on collision. Walk length is therefore ~1 access independent of
 * footprint — at the cost of losing the radix tree's spatial clustering
 * of translations for neighbouring pages (no MMU-cache skipping, poorer
 * PTE cache locality), the classic trade-off.
 */

#ifndef ATSCALE_VM_HASHED_PAGE_TABLE_HH
#define ATSCALE_VM_HASHED_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <limits>

#include "cache/hierarchy.hh"
#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "util/types.hh"

namespace atscale
{

/** Timing/result of one hashed walk. */
struct HashedWalkResult
{
    bool found = false;
    /** The walk was cut short by its cycle budget before terminating. */
    bool aborted = false;
    PhysAddr frame = 0;
    /** Bucket-line loads performed (1 + collision spills). */
    Count accesses = 0;
    Cycles cycles = 0;
    /** Bucket loads satisfied at each memory level (Eq-1 accounting). */
    std::array<Count, numMemLevels> loadsAtLevel{};
    /** MemLevel (as int) that served the first bucket load; -1 if none. */
    std::int8_t firstLoadLevel = -1;
};

/**
 * Open-addressing hashed page table over 4 KiB pages.
 */
class HashedPageTable
{
  public:
    /**
     * @param mem simulated physical memory backing the table
     * @param alloc frame allocator for the table's storage
     * @param capacityPages table capacity in mappings (sized up to the
     *        next power of two of ~1.5x this value)
     */
    HashedPageTable(PhysicalMemory &mem, FrameAllocator &alloc,
                    std::uint64_t capacityPages);

    /** Insert a VPN -> frame mapping. fatal() when the table is full. */
    void map(Addr vaddr, PhysAddr frame);

    /**
     * Point an existing mapping at a new frame (the remapPage
     * analogue; an inverted page table updates in place, it cannot
     * erase without tombstones).
     *
     * @return false when vaddr's page was never mapped
     */
    bool remap(Addr vaddr, PhysAddr frame);

    /** Functional lookup (no timing). */
    bool lookup(Addr vaddr, PhysAddr &frame) const;

    /**
     * Hardware walk: hash the VPN and load bucket lines through the
     * shared hierarchy until the entry (or an empty slot) is found.
     *
     * The budget is checked before each bucket load: once the cycles
     * consumed reach it, the walk aborts (found stays false) without
     * issuing further loads, mirroring PageWalker's squash semantics.
     *
     * @param perStepCycles fixed walker cycles per bucket load
     * @param budget abort the walk once this many cycles are consumed
     */
    HashedWalkResult
    walk(Addr vaddr, CacheHierarchy &hierarchy, Cycles perStepCycles = 2,
         Cycles budget = std::numeric_limits<Cycles>::max()) const;

    /** Mappings stored. */
    Count size() const { return size_; }
    /** Bucket count (4 entries each). */
    std::uint64_t buckets() const { return buckets_; }
    /** Bytes of physical memory the table occupies. */
    std::uint64_t tableBytes() const { return buckets_ * bucketBytes; }

    /** Entries per bucket line. */
    static constexpr int entriesPerBucket = 4;
    /** Bytes per bucket (one cache line). */
    static constexpr std::uint64_t bucketBytes = 64;

  private:
    std::uint64_t bucketOf(std::uint64_t vpn) const;
    PhysAddr entryAddr(std::uint64_t bucket, int slot) const;

    PhysicalMemory &mem_;
    PhysAddr base_;
    std::uint64_t buckets_;
    Count size_ = 0;
};

} // namespace atscale

#endif // ATSCALE_VM_HASHED_PAGE_TABLE_HH
