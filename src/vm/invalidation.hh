/**
 * @file
 * Translation invalidation notifications.
 *
 * When the OS layer (AddressSpace) changes a virtual-to-physical mapping,
 * every structure caching derived translation state must drop its copy:
 * the hardware TLBs and software fast path (via Mmu) and the core's
 * data-path micro-TLB. This is the simulated analogue of the kernel's
 * TLB-shootdown path after a page migration or copy-on-write.
 *
 * The listener list is the single registry of who caches translations;
 * adding a new translation-caching structure means implementing this
 * interface and registering in Platform, which keeps invalidation precise
 * by construction instead of by convention.
 */

#ifndef ATSCALE_VM_INVALIDATION_HH
#define ATSCALE_VM_INVALIDATION_HH

#include "vm/page_size.hh"

namespace atscale
{

/** A structure that caches translations and must observe remaps. */
class TranslationListener
{
  public:
    virtual ~TranslationListener() = default;

    /**
     * The page at `base` (aligned, of size `size`) now maps to a
     * different physical frame. Drop any cached translation state
     * covering it.
     */
    virtual void pageRemapped(Addr base, PageSize size) = 0;
};

} // namespace atscale

#endif // ATSCALE_VM_INVALIDATION_HH
