/**
 * @file
 * Open-addressed page-base → Translation map for the demand-paging hot
 * path.
 *
 * AddressSpace::touch runs once per data reference that misses the core's
 * micro-TLB, so its page lookup is simulation hot-loop code. A
 * std::unordered_map spends most of that lookup on a node pointer chase;
 * this map stores keys and values in flat arrays with linear probing, so
 * the common hit costs one hash and one or two adjacent key loads.
 *
 * The usage pattern it exploits: pages are inserted on first touch and
 * never erased (remaps update the value in place), keys are page-aligned
 * virtual bases (so all-ones is a free empty sentinel), and callers never
 * hold a returned reference across a subsequent insert (growth rehashes).
 */

#ifndef ATSCALE_VM_PAGE_MAP_HH
#define ATSCALE_VM_PAGE_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"
#include "vm/page_table.hh"

namespace atscale
{

/**
 * Flat linear-probing hash map from page base address to Translation.
 * Insert-only (values are mutable in place); grows at 1/2 load factor.
 */
class PageMap
{
  public:
    explicit PageMap(std::size_t initialSlots = 1024)
        : keys_(initialSlots, emptyKey), vals_(initialSlots),
          mask_(initialSlots - 1)
    {
        panic_if((initialSlots & mask_) != 0,
                 "PageMap: slot count must be a power of two");
    }

    /** Value for key, or nullptr. Valid until the next insert(). */
    Translation *
    find(Addr key)
    {
        for (std::size_t i = index(key);; i = (i + 1) & mask_) {
            if (keys_[i] == key)
                return &vals_[i];
            if (keys_[i] == emptyKey)
                return nullptr;
        }
    }

    const Translation *
    find(Addr key) const
    {
        return const_cast<PageMap *>(this)->find(key);
    }

    /**
     * Insert a key the caller has just proven absent via find().
     * @return the stored value; valid until the next insert()
     */
    Translation &
    insert(Addr key, const Translation &value)
    {
        if ((count_ + 1) * 2 > keys_.size())
            grow();
        ++count_;
        std::size_t i = index(key);
        while (keys_[i] != emptyKey)
            i = (i + 1) & mask_;
        keys_[i] = key;
        vals_[i] = value;
        return vals_[i];
    }

    /** Number of stored pages. */
    std::size_t size() const { return count_; }

  private:
    /** Page bases are page-aligned, so all-ones can't be a real key. */
    static constexpr Addr emptyKey = ~0ull;

    std::size_t
    index(Addr key) const
    {
        // Fibonacci hash: page bases share low zero bits, so multiply
        // first and take high bits.
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
    }

    void
    grow()
    {
        std::vector<Addr> oldKeys(keys_.size() * 2, emptyKey);
        std::vector<Translation> oldVals(vals_.size() * 2);
        oldKeys.swap(keys_);
        oldVals.swap(vals_);
        mask_ = keys_.size() - 1;
        for (std::size_t i = 0; i < oldKeys.size(); ++i) {
            if (oldKeys[i] == emptyKey)
                continue;
            std::size_t j = index(oldKeys[i]);
            while (keys_[j] != emptyKey)
                j = (j + 1) & mask_;
            keys_[j] = oldKeys[i];
            vals_[j] = oldVals[i];
        }
    }

    std::vector<Addr> keys_;
    std::vector<Translation> vals_;
    std::size_t mask_;
    std::size_t count_ = 0;
};

} // namespace atscale

#endif // ATSCALE_VM_PAGE_MAP_HH
