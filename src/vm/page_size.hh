/**
 * @file
 * Page size enumeration and helpers for x86-64 4 KiB / 2 MiB / 1 GiB pages.
 */

#ifndef ATSCALE_VM_PAGE_SIZE_HH
#define ATSCALE_VM_PAGE_SIZE_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace atscale
{

/** The three x86-64 translation granularities. */
enum class PageSize : std::uint8_t
{
    Size4K = 0,
    Size2M = 1,
    Size1G = 2,
};

/** Number of distinct page sizes. */
constexpr int numPageSizes = 3;

/** log2 of the page size in bytes. */
constexpr int
pageShift(PageSize size)
{
    switch (size) {
      case PageSize::Size4K:
        return pageShift4K;
      case PageSize::Size2M:
        return pageShift2M;
      case PageSize::Size1G:
        return pageShift1G;
    }
    return pageShift4K;
}

/** Page size in bytes. */
constexpr std::uint64_t
pageBytes(PageSize size)
{
    return 1ull << pageShift(size);
}

/**
 * Radix-tree level at which this page size's leaf PTE lives:
 * 0 = PT (4 KiB), 1 = PD (2 MiB), 2 = PDPT (1 GiB).
 */
constexpr int
leafLevel(PageSize size)
{
    return static_cast<int>(size);
}

/** Human-readable name ("4K", "2M", "1G"). */
inline std::string
pageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Size4K:
        return "4K";
      case PageSize::Size2M:
        return "2M";
      case PageSize::Size1G:
        return "1G";
    }
    return "?";
}

} // namespace atscale

#endif // ATSCALE_VM_PAGE_SIZE_HH
