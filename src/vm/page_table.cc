#include "vm/page_table.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace atscale
{

PageTable::PageTable(PhysicalMemory &mem, FrameAllocator &alloc)
    : mem_(mem), alloc_(alloc)
{
    root_ = alloc_.allocate(pageSize4K);
    // Touch the root so it is materialized even before the first map().
    mem_.write64(root_, 0);
    ++nodes_;
}

PhysAddr
PageTable::walkOrCreate(PhysAddr nodeBase, int index)
{
    PhysAddr entry_addr = nodeBase + static_cast<PhysAddr>(index) * pteBytes;
    Pte pte = Pte::unpack(mem_.read64(entry_addr));
    if (pte.present) {
        panic_if(pte.pageSize,
                 "mapping conflict: intermediate node needed where a "
                 "superpage leaf exists (entry %#lx)", entry_addr);
        return pte.addr;
    }
    PhysAddr node = alloc_.allocate(pageSize4K);
    ++nodes_;
    Pte fresh;
    fresh.present = true;
    fresh.addr = node;
    mem_.write64(entry_addr, fresh.pack());
    return node;
}

void
PageTable::map(Addr vaddr, PhysAddr frame, PageSize size)
{
    std::uint64_t page = pageBytes(size);
    panic_if(!isAligned(vaddr, page), "unaligned vaddr %#lx for %s page",
             vaddr, pageSizeName(size).c_str());
    panic_if(!isAligned(frame, page), "unaligned frame %#lx for %s page",
             frame, pageSizeName(size).c_str());

    int leaf = leafLevel(size);
    PhysAddr node = root_;
    for (int level = ptLevels - 1; level > leaf; --level)
        node = walkOrCreate(node, ptIndex(vaddr, level));

    PhysAddr entry_addr =
        node + static_cast<PhysAddr>(ptIndex(vaddr, leaf)) * pteBytes;
    Pte existing = Pte::unpack(mem_.read64(entry_addr));
    panic_if(existing.present, "double map of vaddr %#lx", vaddr);

    Pte pte;
    pte.present = true;
    pte.pageSize = (size != PageSize::Size4K);
    pte.addr = frame;
    mem_.write64(entry_addr, pte.pack());
}

void
PageTable::remap(Addr vaddr, PhysAddr frame, PageSize size)
{
    std::uint64_t page = pageBytes(size);
    panic_if(!isAligned(vaddr, page), "unaligned vaddr %#lx for %s page",
             vaddr, pageSizeName(size).c_str());
    panic_if(!isAligned(frame, page), "unaligned frame %#lx for %s page",
             frame, pageSizeName(size).c_str());

    int leaf = leafLevel(size);
    PhysAddr entry_addr = entryAddr(vaddr, leaf);
    panic_if(entry_addr == 0, "remap of unmapped vaddr %#lx", vaddr);

    Pte pte = Pte::unpack(mem_.read64(entry_addr));
    panic_if(!pte.present, "remap of unmapped vaddr %#lx", vaddr);
    panic_if(pte.pageSize != (size != PageSize::Size4K),
             "remap of vaddr %#lx with mismatched page size %s", vaddr,
             pageSizeName(size).c_str());

    pte.addr = frame;
    mem_.write64(entry_addr, pte.pack());
}

Translation
PageTable::translate(Addr vaddr) const
{
    PhysAddr node = root_;
    for (int level = ptLevels - 1; level >= 0; --level) {
        PhysAddr entry_addr =
            node + static_cast<PhysAddr>(ptIndex(vaddr, level)) * pteBytes;
        Pte pte = Pte::unpack(mem_.read64(entry_addr));
        if (!pte.present)
            return {};
        bool is_leaf = (level == 0) || pte.pageSize;
        if (is_leaf) {
            Translation result;
            result.valid = true;
            result.pageSize = static_cast<PageSize>(level);
            result.frame = pte.addr;
            result.pageBase = alignDown(vaddr, pageBytes(result.pageSize));
            return result;
        }
        node = pte.addr;
    }
    return {};
}

PhysAddr
PageTable::entryAddr(Addr vaddr, int level) const
{
    PhysAddr node = root_;
    for (int l = ptLevels - 1; l > level; --l) {
        PhysAddr entry_addr =
            node + static_cast<PhysAddr>(ptIndex(vaddr, l)) * pteBytes;
        Pte pte = Pte::unpack(mem_.read64(entry_addr));
        if (!pte.present || pte.pageSize)
            return 0;
        node = pte.addr;
    }
    return node + static_cast<PhysAddr>(ptIndex(vaddr, level)) * pteBytes;
}

} // namespace atscale
