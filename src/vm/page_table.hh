/**
 * @file
 * The x86-64 4-level radix page table, built out of real PTE words in
 * simulated physical memory so the hardware page-table walker can read it
 * exactly as a Haswell walker would.
 */

#ifndef ATSCALE_VM_PAGE_TABLE_HH
#define ATSCALE_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "vm/page_size.hh"
#include "vm/pte.hh"

namespace atscale
{

/** Result of a functional (software) page-table walk. */
struct Translation
{
    bool valid = false;
    /** Size of the mapping's leaf page. */
    PageSize pageSize = PageSize::Size4K;
    /** Physical address of the mapped frame (page-aligned). */
    PhysAddr frame = 0;
    /** Virtual base of the mapped page. */
    Addr pageBase = 0;

    /** Translate an address within this page. */
    PhysAddr
    paddr(Addr vaddr) const
    {
        return frame + (vaddr - pageBase);
    }
};

/**
 * A 4-level x86-64 page table. Intermediate nodes are 4 KiB frames of 512
 * 8-byte entries allocated from the shared FrameAllocator; superpage leaves
 * use the PS bit at the PD (2 MiB) or PDPT (1 GiB) level.
 */
class PageTable
{
  public:
    /**
     * @param mem simulated physical memory holding the PTE words
     * @param alloc allocator for page-table node frames
     */
    PageTable(PhysicalMemory &mem, FrameAllocator &alloc);

    /**
     * Install a mapping: vaddr's page of the given size maps to frame.
     * vaddr and frame must be aligned to the page size. Intermediate
     * nodes are created on demand. panic() if the mapping conflicts with
     * an existing one.
     */
    void map(Addr vaddr, PhysAddr frame, PageSize size);

    /**
     * Point an existing leaf mapping at a new frame (page migration).
     * panic() if vaddr is not mapped at exactly the given page size.
     */
    void remap(Addr vaddr, PhysAddr frame, PageSize size);

    /** Functional lookup (no timing, no caches). */
    Translation translate(Addr vaddr) const;

    /** Physical address of the root (PML4) node, i.e. CR3. */
    PhysAddr root() const { return root_; }

    /**
     * Physical address of the PTE word consulted at the given level for
     * vaddr, assuming all intermediate nodes exist. Level 3 is the PML4.
     * Returns 0 if an intermediate node is missing.
     */
    PhysAddr entryAddr(Addr vaddr, int level) const;

    /** Number of node frames allocated (radix-tree size). */
    Count nodeCount() const { return nodes_; }

    /** Bytes of physical memory consumed by page-table nodes. */
    std::uint64_t
    nodeBytes() const
    {
        return nodes_ * pageSize4K;
    }

  private:
    /** Return the node the entry at (nodeBase, index) points to, creating
     * it if absent. */
    PhysAddr walkOrCreate(PhysAddr nodeBase, int index);

    PhysicalMemory &mem_;
    FrameAllocator &alloc_;
    PhysAddr root_;
    Count nodes_ = 0;
};

} // namespace atscale

#endif // ATSCALE_VM_PAGE_TABLE_HH
