/**
 * @file
 * x86-64 page-table entry encoding.
 *
 * We model the architecturally relevant bits only: Present (bit 0),
 * Accessed (bit 5), Dirty (bit 6), PS (bit 7, marks a superpage leaf in a
 * PDE/PDPTE), and the frame address field (bits 51:12).
 */

#ifndef ATSCALE_VM_PTE_HH
#define ATSCALE_VM_PTE_HH

#include <cstdint>

#include "util/bitfield.hh"
#include "util/types.hh"

namespace atscale
{

/** Decoded view of a page-table entry. */
struct Pte
{
    bool present = false;
    bool accessed = false;
    bool dirty = false;
    /** Page-size bit: this PDE/PDPTE maps a superpage directly. */
    bool pageSize = false;
    /** Physical address of the next-level node or the mapped frame. */
    PhysAddr addr = 0;

    /** Encode into the architectural 64-bit format. */
    std::uint64_t
    pack() const
    {
        std::uint64_t raw = 0;
        raw |= present ? 1ull << 0 : 0;
        raw |= accessed ? 1ull << 5 : 0;
        raw |= dirty ? 1ull << 6 : 0;
        raw |= pageSize ? 1ull << 7 : 0;
        raw = insertBits(raw, 51, 12, addr >> 12);
        return raw;
    }

    /** Decode from the architectural 64-bit format. */
    static Pte
    unpack(std::uint64_t raw)
    {
        Pte pte;
        pte.present = bit(raw, 0);
        pte.accessed = bit(raw, 5);
        pte.dirty = bit(raw, 6);
        pte.pageSize = bit(raw, 7);
        pte.addr = bits(raw, 51, 12) << 12;
        return pte;
    }
};

} // namespace atscale

#endif // ATSCALE_VM_PTE_HH
