/**
 * @file
 * Virtual memory area descriptor.
 */

#ifndef ATSCALE_VM_VMA_HH
#define ATSCALE_VM_VMA_HH

#include <string>

#include "vm/page_size.hh"

namespace atscale
{

/**
 * One contiguous virtual region with a page-size backing decision, the
 * analogue of a hugetlbfs-backed glibc heap segment in the paper's setup.
 */
struct Vma
{
    std::string name;
    Addr base = 0;
    std::uint64_t size = 0;
    /** Page size the experiment asked for. */
    PageSize requested = PageSize::Size4K;
    /** Page size the allocator could actually provide (fallback rule). */
    PageSize effective = PageSize::Size4K;

    /** True iff vaddr falls inside this region. */
    bool
    contains(Addr vaddr) const
    {
        return vaddr >= base && vaddr - base < size;
    }
};

} // namespace atscale

#endif // ATSCALE_VM_VMA_HH
