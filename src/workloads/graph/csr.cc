#include "workloads/graph/csr.hh"

#include "util/logging.hh"

namespace atscale
{

CsrGraph::CsrGraph(const GraphSpec &spec) : spec_(spec)
{
    const std::uint64_t n = spec.numVertices;
    fatal_if(n == 0, "graph needs at least one vertex");

    offsets_.resize(n + 1);
    offsets_[0] = 0;
    for (std::uint64_t v = 0; v < n; ++v)
        offsets_[v + 1] = offsets_[v] + spec.degreeOf(v);

    neighbors_.resize(offsets_[n]);
    for (std::uint64_t v = 0; v < n; ++v) {
        std::uint32_t deg = spec.degreeOf(v);
        for (std::uint32_t j = 0; j < deg; ++j) {
            neighbors_[offsets_[v] + j] =
                static_cast<std::uint32_t>(spec.neighbor(v, j));
        }
    }
}

} // namespace atscale
