/**
 * @file
 * Compressed-sparse-row graph built from a GraphSpec's hash-defined
 * topology, so exec-mode runs and model-mode streams see the same graph.
 */

#ifndef ATSCALE_WORKLOADS_GRAPH_CSR_HH
#define ATSCALE_WORKLOADS_GRAPH_CSR_HH

#include <cstdint>
#include <vector>

#include "workloads/graph/graph_spec.hh"

namespace atscale
{

/**
 * A host-resident CSR graph. Vertex ids are 32-bit, as in GAPBS.
 */
class CsrGraph
{
  public:
    /** Materialize the graph described by spec (exec mode only). */
    explicit CsrGraph(const GraphSpec &spec);

    std::uint64_t numVertices() const { return offsets_.size() - 1; }
    std::uint64_t numEdges() const { return neighbors_.size(); }

    /** Degree of vertex v. */
    std::uint32_t
    degree(std::uint64_t v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    /** Start index of v's neighbour list in the packed array. */
    std::uint64_t offset(std::uint64_t v) const { return offsets_[v]; }

    /** j-th neighbour of v. */
    std::uint32_t
    neighbor(std::uint64_t v, std::uint32_t j) const
    {
        return neighbors_[offsets_[v] + j];
    }

    const std::vector<std::uint64_t> &offsets() const { return offsets_; }
    const std::vector<std::uint32_t> &neighbors() const { return neighbors_; }

    const GraphSpec &spec() const { return spec_; }

  private:
    GraphSpec spec_;
    std::vector<std::uint64_t> offsets_;
    std::vector<std::uint32_t> neighbors_;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_GRAPH_CSR_HH
