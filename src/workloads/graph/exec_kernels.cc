#include "workloads/graph/exec_kernels.hh"

#include <algorithm>
#include <deque>

namespace atscale
{

namespace
{

/** Traced read of offsets[v]. */
std::uint64_t
readOffset(ExecGraphContext &ctx, std::uint64_t v, std::uint32_t gap = 1)
{
    ctx.sink.load(ctx.layout.offsets + v * 8, gap);
    return ctx.graph.offset(v);
}

/** Traced read of the j-th packed neighbour of v. */
std::uint32_t
readNeighbor(ExecGraphContext &ctx, std::uint64_t v, std::uint32_t j,
             std::uint32_t gap = 1)
{
    ctx.sink.load(ctx.layout.neighbors + (ctx.graph.offset(v) + j) * 4, gap);
    return ctx.graph.neighbor(v, j);
}

} // namespace

std::vector<std::int64_t>
execBfs(ExecGraphContext &ctx, std::uint64_t source)
{
    const std::uint64_t n = ctx.graph.numVertices();
    TracedArray<std::int64_t> parent(ctx.sink, ctx.layout.props, n, -1);
    std::deque<std::uint64_t> queue;

    parent.set(source, static_cast<std::int64_t>(source));
    queue.push_back(source);
    while (!queue.empty()) {
        std::uint64_t v = queue.front();
        queue.pop_front();
        readOffset(ctx, v);
        std::uint32_t deg = ctx.graph.degree(v);
        for (std::uint32_t j = 0; j < deg; ++j) {
            std::uint32_t u = readNeighbor(ctx, v, j);
            if (parent.get(u) < 0) {
                parent.set(u, static_cast<std::int64_t>(v));
                queue.push_back(u);
            }
        }
    }

    std::vector<std::int64_t> result(n);
    for (std::uint64_t v = 0; v < n; ++v)
        result[v] = parent.raw(v);
    return result;
}

std::vector<double>
execPr(ExecGraphContext &ctx, int iterations)
{
    const std::uint64_t n = ctx.graph.numVertices();
    const double damping = 0.85;
    TracedArray<double> score(ctx.sink, ctx.layout.props, n,
                              1.0 / static_cast<double>(n));
    TracedArray<double> next(ctx.sink, ctx.layout.props + n * 8, n, 0.0);

    for (int iter = 0; iter < iterations; ++iter) {
        for (std::uint64_t v = 0; v < n; ++v)
            next.raw(v) = (1.0 - damping) / static_cast<double>(n);
        for (std::uint64_t v = 0; v < n; ++v) {
            readOffset(ctx, v, 2);
            std::uint32_t deg = ctx.graph.degree(v);
            if (deg == 0)
                continue;
            double share = damping * score.get(v) / deg;
            for (std::uint32_t j = 0; j < deg; ++j) {
                std::uint32_t u = readNeighbor(ctx, v, j);
                next.set(u, next.get(u, 2) + share, 2);
            }
        }
        for (std::uint64_t v = 0; v < n; ++v)
            score.raw(v) = next.raw(v);
    }

    std::vector<double> result(n);
    for (std::uint64_t v = 0; v < n; ++v)
        result[v] = score.raw(v);
    return result;
}

std::vector<std::uint32_t>
execCc(ExecGraphContext &ctx)
{
    const std::uint64_t n = ctx.graph.numVertices();
    TracedArray<std::uint32_t> comp(ctx.sink, ctx.layout.props, n, 0);
    for (std::uint64_t v = 0; v < n; ++v)
        comp.raw(v) = static_cast<std::uint32_t>(v);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint64_t v = 0; v < n; ++v) {
            readOffset(ctx, v);
            std::uint32_t deg = ctx.graph.degree(v);
            std::uint32_t cv = comp.get(v);
            for (std::uint32_t j = 0; j < deg; ++j) {
                std::uint32_t u = readNeighbor(ctx, v, j);
                std::uint32_t cu = comp.get(u);
                if (cu < cv) {
                    comp.set(v, cu);
                    cv = cu;
                    changed = true;
                } else if (cv < cu) {
                    comp.set(u, cv);
                    changed = true;
                }
            }
        }
    }

    std::vector<std::uint32_t> result(n);
    for (std::uint64_t v = 0; v < n; ++v)
        result[v] = comp.raw(v);
    return result;
}

std::uint64_t
execTc(ExecGraphContext &ctx)
{
    const std::uint64_t n = ctx.graph.numVertices();
    // Orientation preprocessing (untraced, as GAPBS does it once):
    // keep only neighbours with a larger id, sorted.
    std::vector<std::vector<std::uint32_t>> oriented(n);
    for (std::uint64_t v = 0; v < n; ++v) {
        std::uint32_t deg = ctx.graph.degree(v);
        for (std::uint32_t j = 0; j < deg; ++j) {
            std::uint32_t u = ctx.graph.neighbor(v, j);
            if (u > v)
                oriented[v].push_back(u);
        }
        std::sort(oriented[v].begin(), oriented[v].end());
        oriented[v].erase(
            std::unique(oriented[v].begin(), oriented[v].end()),
            oriented[v].end());
    }

    std::uint64_t triangles = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
        readOffset(ctx, v, 2);
        const auto &adj_v = oriented[v];
        for (std::size_t j = 0; j < adj_v.size(); ++j) {
            ctx.sink.load(ctx.layout.neighbors +
                              (ctx.graph.offset(v) + j) * 4,
                          2);
            std::uint32_t w = adj_v[j];
            readOffset(ctx, w, 2);
            const auto &adj_w = oriented[w];
            // Sorted merge-intersection, traced on both lists.
            std::size_t a = j + 1, b = 0;
            while (a < adj_v.size() && b < adj_w.size()) {
                ctx.sink.load(ctx.layout.neighbors +
                                  (ctx.graph.offset(v) + a) * 4,
                              2);
                ctx.sink.load(ctx.layout.neighbors +
                                  (ctx.graph.offset(w) + b) * 4,
                              2);
                if (adj_v[a] == adj_w[b]) {
                    ++triangles;
                    ++a;
                    ++b;
                } else if (adj_v[a] < adj_w[b]) {
                    ++a;
                } else {
                    ++b;
                }
            }
        }
    }
    return triangles;
}

std::vector<double>
execBc(ExecGraphContext &ctx, std::uint64_t source)
{
    const std::uint64_t n = ctx.graph.numVertices();
    TracedArray<std::int64_t> depth(ctx.sink, ctx.layout.props, n, -1);
    TracedArray<double> sigma(ctx.sink, ctx.layout.props + n * 8, n, 0.0);
    TracedArray<double> delta(ctx.sink, ctx.layout.props + n * 16, n, 0.0);

    std::vector<std::uint64_t> order;
    order.reserve(n);

    depth.set(source, 0);
    sigma.set(source, 1.0);
    std::deque<std::uint64_t> queue{source};
    while (!queue.empty()) {
        std::uint64_t v = queue.front();
        queue.pop_front();
        order.push_back(v);
        readOffset(ctx, v);
        std::uint32_t deg = ctx.graph.degree(v);
        std::int64_t dv = depth.get(v);
        for (std::uint32_t j = 0; j < deg; ++j) {
            std::uint32_t u = readNeighbor(ctx, v, j);
            if (depth.get(u) < 0) {
                depth.set(u, dv + 1);
                queue.push_back(u);
            }
            if (depth.raw(u) == dv + 1)
                sigma.set(u, sigma.get(u) + sigma.get(v));
        }
    }

    // Dependency accumulation in reverse BFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        std::uint64_t v = *it;
        readOffset(ctx, v);
        std::uint32_t deg = ctx.graph.degree(v);
        std::int64_t dv = depth.get(v);
        for (std::uint32_t j = 0; j < deg; ++j) {
            std::uint32_t u = readNeighbor(ctx, v, j);
            if (depth.get(u) == dv + 1 && sigma.raw(u) > 0.0) {
                double contribution = sigma.get(v) / sigma.get(u) *
                                      (1.0 + delta.get(u));
                delta.set(v, delta.get(v) + contribution);
            }
        }
    }

    std::vector<double> result(n);
    for (std::uint64_t v = 0; v < n; ++v)
        result[v] = delta.raw(v);
    return result;
}

} // namespace atscale
