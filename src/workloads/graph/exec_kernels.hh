/**
 * @file
 * Exec-mode GAP kernels: real algorithm implementations over a
 * materialized CSR graph, with every major-structure access traced at its
 * simulated address. Each kernel returns an algorithmic result so tests
 * can verify correctness independently of the tracing.
 */

#ifndef ATSCALE_WORKLOADS_GRAPH_EXEC_KERNELS_HH
#define ATSCALE_WORKLOADS_GRAPH_EXEC_KERNELS_HH

#include <cstdint>
#include <vector>

#include "workloads/graph/csr.hh"
#include "workloads/graph/model_stream.hh"
#include "workloads/trace.hh"

namespace atscale
{

/** Everything an exec kernel needs. */
struct ExecGraphContext
{
    const CsrGraph &graph;
    TraceSink &sink;
    GraphLayout layout;
};

/** Breadth-first search from `source`; returns per-vertex parent
 * (-1 = unreached, source's parent is itself). */
std::vector<std::int64_t> execBfs(ExecGraphContext &ctx,
                                  std::uint64_t source);

/** Push-style PageRank; returns final scores (sum ~ 1). */
std::vector<double> execPr(ExecGraphContext &ctx, int iterations);

/** Label-propagation connected components; returns per-vertex labels. */
std::vector<std::uint32_t> execCc(ExecGraphContext &ctx);

/** Degree-oriented triangle counting; returns the triangle count. */
std::uint64_t execTc(ExecGraphContext &ctx);

/** Single-source Brandes betweenness contribution; returns deltas. */
std::vector<double> execBc(ExecGraphContext &ctx, std::uint64_t source);

} // namespace atscale

#endif // ATSCALE_WORKLOADS_GRAPH_EXEC_KERNELS_HH
