/**
 * @file
 * Synthetic graph parameterization shared by the exec-mode builders and
 * the model-mode streams.
 *
 * Mirrors the GAP benchmark suite's embedded generators (Table II):
 *  - urand: Erdos-Renyi-style uniform random edges, average degree 16
 *  - kron:  Kronecker/RMAT-style scale-free graphs, average degree 16
 *
 * Topology is a pure function of (seed, vertex, slot) via 64-bit mixing,
 * so the model-mode streams can ask "who is neighbour j of vertex v?"
 * without storing the graph.
 */

#ifndef ATSCALE_WORKLOADS_GRAPH_GRAPH_SPEC_HH
#define ATSCALE_WORKLOADS_GRAPH_GRAPH_SPEC_HH

#include <cmath>
#include <cstdint>
#include <string>

#include "util/random.hh"

namespace atscale
{

/** Input generator family. */
enum class GraphKind
{
    Urand,
    Kron,
};

/** Generator name as the paper writes it. */
inline std::string
graphKindName(GraphKind kind)
{
    return kind == GraphKind::Urand ? "urand" : "kron";
}

/** Map a uniform [0,1) value to a Zipf-like index in [0, n). */
inline std::uint64_t
zipfIndex(double u, std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    double x;
    if (s == 1.0) {
        x = std::exp(u * std::log(static_cast<double>(n)));
    } else {
        double one_minus_s = 1.0 - s;
        double hi = std::pow(static_cast<double>(n), one_minus_s);
        x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / one_minus_s);
    }
    auto r = static_cast<std::uint64_t>(x) - 1;
    return r >= n ? n - 1 : r;
}

/**
 * A synthetic graph described by (kind, vertex count, seed). Average
 * degree is fixed at 16 as in the GAP generators' defaults.
 */
struct GraphSpec
{
    GraphKind kind = GraphKind::Urand;
    std::uint64_t numVertices = 1 << 20;
    std::uint64_t seed = 1;

    /** GAP default average degree. */
    static constexpr std::uint32_t avgDegree = 16;
    /** Kron skew exponent (scale-free hub concentration; > 1 puts a
     * large constant fraction of all edge endpoints on the hubs). */
    static constexpr double kronSkew = 1.1;

    /** Out-degree of vertex v (urand: ~Poisson around 16; kron: skewed). */
    std::uint32_t
    degreeOf(std::uint64_t v) const
    {
        std::uint64_t h = mix64(seed ^ (v * 0x9e3779b97f4a7c15ull));
        if (kind == GraphKind::Urand)
            return 12 + static_cast<std::uint32_t>(h % 9); // 12..20, mean 16
        // Scale-free: a few hubs with huge degree, a long tail of small
        // ones. Hubs are the lowest-numbered vertices (degree-sorted
        // relabelling, as GAP's builder does for tc).
        if (v < numVertices / 1024 + 1) {
            return static_cast<std::uint32_t>(
                256 + h % (avgDegree * 64)); // hubs
        }
        return 1 + static_cast<std::uint32_t>(h % 16); // tail, mean ~8
    }

    /** Neighbour j of vertex v. */
    std::uint64_t
    neighbor(std::uint64_t v, std::uint32_t j) const
    {
        std::uint64_t h = mix64(seed ^ (v * 0x2545f4914f6cdd1dull) ^
                                (static_cast<std::uint64_t>(j) << 40));
        if (kind == GraphKind::Urand)
            return h % numVertices;
        // Kron edges preferentially attach to hubs.
        double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        return zipfIndex(u, numVertices, kronSkew);
    }

    /** Total directed edges (approximate for model mode). */
    std::uint64_t
    numEdges() const
    {
        return numVertices * avgDegree;
    }
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_GRAPH_GRAPH_SPEC_HH
