#include "workloads/graph/graph_workload.hh"

#include <algorithm>

#include "util/logging.hh"
#include "workloads/graph/csr.hh"
#include "workloads/graph/exec_kernels.hh"
#include "workloads/trace.hh"

namespace atscale
{

namespace
{

/** Exec mode materializes the graph in host memory; cap it. */
constexpr std::uint64_t execFootprintCap = 2ull << 30;

} // namespace

WorkloadTraits
GraphWorkload::traits() const
{
    WorkloadTraits t;
    switch (kernel_) {
      case GraphKernel::Bfs:
        t = {0.20, 0.030, 0.60, 0.5};
        break;
      case GraphKernel::Pr:
        t = {0.12, 0.010, 0.80, 0.5};
        break;
      case GraphKernel::Cc:
        t = {0.15, 0.020, 0.70, 0.5};
        break;
      case GraphKernel::Bc:
        t = {0.18, 0.025, 0.60, 0.5};
        break;
      case GraphKernel::Tc:
        t = {0.25, 0.040, 0.70, 0.4};
        break;
    }
    return t;
}

std::uint64_t
GraphWorkload::verticesForFootprint(std::uint64_t footprintBytes) const
{
    std::uint64_t bytes_per_vertex =
        8 + 4ull * GraphSpec::avgDegree + kernelPropBytes(kernel_);
    return std::max<std::uint64_t>(footprintBytes / bytes_per_vertex, 1024);
}

std::unique_ptr<RefSource>
GraphWorkload::instantiate(AddressSpace &space, const WorkloadConfig &config)
{
    GraphSpec spec;
    spec.kind = kind_;
    spec.numVertices = verticesForFootprint(config.footprintBytes);
    spec.seed = config.seed;

    const std::uint32_t prop_bytes = kernelPropBytes(kernel_);

    if (config.mode == WorkloadMode::Model) {
        GraphLayout layout;
        layout.offsets = space.mapRegion("offsets", (spec.numVertices + 1) * 8);
        layout.neighborsBytes = spec.numEdges() * 4;
        layout.neighbors = space.mapRegion("neighbors", layout.neighborsBytes);
        if (prop_bytes) {
            layout.propsBytes = spec.numVertices * prop_bytes;
            layout.props = space.mapRegion("props", layout.propsBytes);
        }
        return std::make_unique<GraphModelStream>(kernel_, spec, layout,
                                                  config.seed ^ 0xabcd);
    }

    // Exec mode: build the CSR and trace one real kernel run.
    fatal_if(config.footprintBytes > execFootprintCap,
             "exec-mode graph footprint %llu exceeds the %llu cap; "
             "use model mode for large sweeps",
             static_cast<unsigned long long>(config.footprintBytes),
             static_cast<unsigned long long>(execFootprintCap));

    CsrGraph graph(spec);
    GraphLayout layout;
    layout.offsets = space.mapRegion("offsets", (spec.numVertices + 1) * 8);
    layout.neighborsBytes = std::max<std::uint64_t>(graph.numEdges(), 1) * 4;
    layout.neighbors = space.mapRegion("neighbors", layout.neighborsBytes);
    // Exec kernels lay out up to three 8-byte property arrays.
    layout.propsBytes = spec.numVertices * std::max<std::uint32_t>(
        prop_bytes, 8);
    layout.props = space.mapRegion("props", layout.propsBytes);

    TraceSink sink;
    ExecGraphContext ctx{graph, sink, layout};
    switch (kernel_) {
      case GraphKernel::Bfs:
        execBfs(ctx, 0);
        break;
      case GraphKernel::Pr:
        execPr(ctx, 3);
        break;
      case GraphKernel::Cc:
        execCc(ctx);
        break;
      case GraphKernel::Bc:
        execBc(ctx, 0);
        break;
      case GraphKernel::Tc:
        execTc(ctx);
        break;
    }
    return std::make_unique<TraceReplaySource>(sink.takeTrace());
}

} // namespace atscale
