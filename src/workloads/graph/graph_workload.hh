/**
 * @file
 * The ten GAP workloads of Table I: {bc, bfs, cc, pr, tc} x {urand, kron}.
 */

#ifndef ATSCALE_WORKLOADS_GRAPH_GRAPH_WORKLOAD_HH
#define ATSCALE_WORKLOADS_GRAPH_GRAPH_WORKLOAD_HH

#include "workloads/graph/model_stream.hh"
#include "workloads/workload.hh"

namespace atscale
{

/**
 * One GAP kernel + input generator pair. Supports both exec mode (real
 * kernel over a materialized CSR, traced) and model mode (streaming
 * grammar over the same hash-defined topology).
 */
class GraphWorkload : public Workload
{
  public:
    GraphWorkload(GraphKernel kernel, GraphKind kind)
        : kernel_(kernel), kind_(kind)
    {
    }

    std::string program() const override { return graphKernelName(kernel_); }
    std::string generator() const override { return graphKindName(kind_); }
    WorkloadTraits traits() const override;
    bool supports(WorkloadMode) const override { return true; }

    std::unique_ptr<RefSource>
    instantiate(AddressSpace &space, const WorkloadConfig &config) override;

    GraphKernel kernel() const { return kernel_; }
    GraphKind kind() const { return kind_; }

    /** Vertex count an instantiation at this footprint will use. */
    std::uint64_t verticesForFootprint(std::uint64_t footprintBytes) const;

  private:
    GraphKernel kernel_;
    GraphKind kind_;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_GRAPH_GRAPH_WORKLOAD_HH
