#include "workloads/graph/model_stream.hh"

#include <algorithm>
#include <cmath>

#include "obs/stats_registry.hh"
#include "util/logging.hh"
#include "workloads/locality.hh"

namespace atscale
{

namespace
{

/** Cap on per-batch work so scale-free hubs don't stall the stream. */
constexpr std::uint32_t hubCap = 128;

} // namespace

const char *
graphKernelName(GraphKernel kernel)
{
    switch (kernel) {
      case GraphKernel::Bc:
        return "bc";
      case GraphKernel::Bfs:
        return "bfs";
      case GraphKernel::Cc:
        return "cc";
      case GraphKernel::Pr:
        return "pr";
      case GraphKernel::Tc:
        return "tc";
    }
    return "?";
}

std::uint32_t
kernelPropBytes(GraphKernel kernel)
{
    switch (kernel) {
      case GraphKernel::Bc:
        return 40; // parent, sigma, delta, depth, queue slot
      case GraphKernel::Bfs:
        return 16; // parent, queue slot
      case GraphKernel::Cc:
        return 8; // component id
      case GraphKernel::Pr:
        return 16; // score, next score
      case GraphKernel::Tc:
        return 0; // operates on the CSR alone
    }
    return 0;
}

GraphModelStream::GraphModelStream(GraphKernel kernel, const GraphSpec &spec,
                                   const GraphLayout &layout,
                                   std::uint64_t seed)
    : kernel_(kernel), spec_(spec), layout_(layout),
      propStride_(kernelPropBytes(kernel)), rng_(seed)
{
    batch_.reserve(1024);
}

void
GraphModelStream::push(Addr vaddr, std::uint32_t gap, bool store)
{
    batch_.push_back({vaddr, gap, store});
}

Addr
GraphModelStream::offsetAddr(std::uint64_t v) const
{
    return layout_.offsets + v * 8;
}

Addr
GraphModelStream::neighborAddr(std::uint64_t v, std::uint32_t j) const
{
    // Neighbour lists are packed at average-degree granularity.
    std::uint64_t slot = v * GraphSpec::avgDegree + j;
    return layout_.neighbors + (slot * 4) % layout_.neighborsBytes;
}

Addr
GraphModelStream::propAddr(std::uint64_t v, std::uint32_t slot) const
{
    return layout_.props + v * propStride_ + slot * 8;
}

std::uint64_t
GraphModelStream::targetVertex(std::uint64_t v, std::uint32_t j)
{
    const std::uint64_t n = spec_.numVertices;
    if (spec_.kind == GraphKind::Kron) {
        // Scale-free inputs: most endpoints are hubs (naturally warm),
        // a slice tracks the frontier working set, and a thin Zipf tail
        // reaches across the graph. Net effect: lower, flatter AT
        // pressure than urand (Table IV kron slopes ~0.10 vs ~0.15).
        double u = rng_.real();
        if (u < 0.80) {
            double h = rng_.real();
            return zipfIndex(h, std::min<std::uint64_t>(n, 65536), 1.1);
        }
        if (u < 0.92) {
            auto window = static_cast<std::uint64_t>(
                std::pow(static_cast<double>(n), 0.75));
            window = std::min(std::max<std::uint64_t>(window, 32768), n);
            return (v + n - 1 - rng_.below(window)) % n;
        }
        return zipfIndex(rng_.real(), n, 1.05);
    }
    // Uniform-random inputs: frontier/community reuse layered as a hot
    // core + sublinear working set + power-law tail.
    static const LocalityProfile urandProfile{0.70, 0.20, 0.75, 1.0, 32768};
    (void)j;
    return drawLocal(rng_, v, n, urandProfile);
}

bool
GraphModelStream::next(Ref &ref)
{
    while (pos_ >= batch_.size()) {
        batch_.clear();
        pos_ = 0;
        generate();
    }
    ref = batch_[pos_++];
    ++refsEmitted_;
    return true;
}

Count
GraphModelStream::fill(Ref *out, Count max)
{
    // Copy straight out of the internal generation batch instead of one
    // virtual next() per reference.
    Count n = 0;
    while (n < max) {
        while (pos_ >= batch_.size()) {
            batch_.clear();
            pos_ = 0;
            generate();
        }
        Count take = std::min<Count>(max - n, batch_.size() - pos_);
        std::copy_n(batch_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    take, out + n);
        pos_ += take;
        n += take;
    }
    refsEmitted_ += n;
    return n;
}

void
GraphModelStream::registerStats(StatsRegistry &registry,
                                const std::string &prefix) const
{
    registry.addScalar(prefix + ".vertices_visited", [this] {
        return static_cast<double>(vertex_);
    }, "sequential vertex-cursor position");
    registry.addScalar(prefix + ".refs_emitted", [this] {
        return static_cast<double>(refsEmitted_);
    }, "memory references emitted to the core");
}

Addr
GraphModelStream::wrongPathAddr(Rng &rng)
{
    return wrongPathAddrAt(vertex_, rng);
}

Addr
GraphModelStream::wrongPathAddrAt(std::uint64_t anchor, Rng &rng)
{
    // Divergent paths through graph code touch the adjacency array or a
    // property array of some other vertex, with the same locality the
    // correct path has (draws use the caller's rng only, so the stream
    // itself stays identical across page-size runs). The anchor is the
    // vertex cursor at the consumer's fetch boundary.
    const std::uint64_t n = spec_.numVertices;
    std::uint64_t u;
    if (spec_.kind == GraphKind::Kron) {
        if (rng.chance(0.8)) {
            u = zipfIndex(rng.real(), std::min<std::uint64_t>(n, 65536),
                          1.1);
        } else {
            u = zipfIndex(rng.real(), n, 1.05);
        }
    } else {
        static const LocalityProfile profile{0.70, 0.20, 0.75, 1.0, 32768};
        u = drawLocal(rng, anchor, n, profile);
    }
    if (layout_.propsBytes == 0 || rng.chance(0.10)) {
        return neighborAddr(
            u, static_cast<std::uint32_t>(rng.below(GraphSpec::avgDegree)));
    }
    return propAddr(u, 0);
}

void
GraphModelStream::generate()
{
    switch (kernel_) {
      case GraphKernel::Pr:
        generatePr();
        break;
      case GraphKernel::Bfs:
        generateBfs();
        break;
      case GraphKernel::Cc:
        generateCc();
        break;
      case GraphKernel::Bc:
        generateBc();
        break;
      case GraphKernel::Tc:
        generateTc();
        break;
    }
    vertex_ = (vertex_ + 1) % spec_.numVertices;
}

void
GraphModelStream::generatePr()
{
    // Pull-style PageRank: contributions are gathered from random
    // in-neighbours into the sequential destination vertex.
    std::uint64_t v = vertex_;
    push(offsetAddr(v), 2);
    std::uint32_t deg = std::min(spec_.degreeOf(v), hubCap);
    for (std::uint32_t j = 0; j < deg; ++j) {
        push(neighborAddr(v, j), 2);
        std::uint64_t u = targetVertex(v, j);
        push(propAddr(u, 0), 3);
    }
    push(propAddr(v, 1), 2, true);
}

void
GraphModelStream::generateBfs()
{
    // Top-down step: pop a frontier vertex (sequential queue), check and
    // claim unvisited neighbours.
    push(propAddr(queuePos_ % spec_.numVertices, 1), 2);
    ++queuePos_;
    // Direction-optimizing BFS does the bulk of its edge work in
    // bottom-up passes that scan vertices sequentially; top-down steps
    // pop unordered frontier vertices.
    std::uint64_t v =
        rng_.chance(0.7) ? vertex_ : targetVertex(vertex_, 0);
    push(offsetAddr(v), 2);
    std::uint32_t deg = std::min(spec_.degreeOf(v), hubCap);
    for (std::uint32_t j = 0; j < deg; ++j) {
        push(neighborAddr(v, j), 2);
        std::uint64_t u = targetVertex(vertex_, j);
        push(propAddr(u, 0), 2); // visited/parent check
        if (rng_.below(std::max(deg, 1u)) == 0) {
            push(propAddr(u, 0), 1, true); // claim parent
            push(propAddr(queuePos_ % spec_.numVertices, 1), 1, true);
        }
    }
}

void
GraphModelStream::generateCc()
{
    // Label-propagation over edges with pointer-jumping shortcuts.
    std::uint64_t v = vertex_;
    push(offsetAddr(v), 2);
    std::uint32_t deg = std::min(spec_.degreeOf(v), hubCap);
    for (std::uint32_t j = 0; j < deg; ++j) {
        push(neighborAddr(v, j), 2);
        std::uint64_t u = targetVertex(v, j);
        push(propAddr(u, 0), 2);
        if (rng_.chance(0.3)) {
            // comp[comp[u]]: a dependent random read.
            std::uint64_t u2 = targetVertex(u, j + 1);
            push(propAddr(u2, 0), 2);
        }
        if (rng_.chance(0.25))
            push(propAddr(std::min(u, v), 0), 2, true);
    }
}

void
GraphModelStream::generateBc()
{
    // Brandes: a bfs-like sweep that also reads path counts (sigma) and
    // accumulates dependencies (delta) per edge.
    push(propAddr(queuePos_ % spec_.numVertices, 4), 1);
    ++queuePos_;
    // bc's sweeps are bfs-shaped: mostly sequential passes, with
    // unordered frontier pops in between.
    std::uint64_t v =
        rng_.chance(0.6) ? vertex_ : targetVertex(vertex_, 0);
    push(offsetAddr(v), 1);
    std::uint32_t deg = std::min(spec_.degreeOf(v), hubCap);
    for (std::uint32_t j = 0; j < deg; ++j) {
        push(neighborAddr(v, j), 1);
        std::uint64_t u = targetVertex(vertex_, j);
        push(propAddr(u, 3), 2);       // depth check
        push(propAddr(u, 1), 2);       // sigma read
        push(propAddr(v, 2), 2, true); // delta accumulate
        if (rng_.below(std::max(deg, 1u)) == 0) {
            push(propAddr(u, 0), 1, true);
            push(propAddr(queuePos_ % spec_.numVertices, 4), 1, true);
        }
    }
}

void
GraphModelStream::generateTc()
{
    // Degree-oriented triangle counting: intersect adj(u) with adj(w) for
    // each edge (u, w). Larger hub lists mean more compare instructions
    // per access (galloping), which shifts the instruction mix with scale.
    std::uint64_t u = vertex_;
    push(offsetAddr(u), 2);
    std::uint32_t deg_u = std::min(spec_.degreeOf(u), hubCap / 4);
    std::uint32_t gap = 2;
    if (spec_.kind == GraphKind::Kron) {
        gap += static_cast<std::uint32_t>(
            std::log2(static_cast<double>(spec_.numVertices)) / 6.0);
    }
    for (std::uint32_t j = 0; j < deg_u; ++j) {
        push(neighborAddr(u, j), gap);
        std::uint64_t w = spec_.neighbor(u, j);
        if (spec_.kind == GraphKind::Urand && rng_.chance(0.70)) {
            // Recently intersected lists are still cached (the sorted
            // relabelled CSR clusters co-counted vertices).
            w = (u + spec_.numVertices - 1 - rng_.below(16384)) %
                spec_.numVertices;
        }
        push(offsetAddr(w), gap);
        std::uint32_t len = std::min(
            {spec_.degreeOf(w), spec_.degreeOf(u), hubCap / 4});
        for (std::uint32_t k = 0; k < len; ++k) {
            push(neighborAddr(w, k), gap);
            if (k % 2 == 0)
                push(neighborAddr(u, k), gap);
        }
    }
}

} // namespace atscale
