/**
 * @file
 * Model-mode reference streams for the five GAP kernels.
 *
 * Each kernel is modelled as its characteristic per-vertex/per-edge access
 * grammar over the CSR layout (offsets array, packed neighbour array,
 * per-vertex property arrays), with topology coming from GraphSpec's hash
 * functions. Nothing is materialized, so footprints can reach the paper's
 * ~600 GB.
 *
 * Kernel grammars (all emit one Ref per dynamic load/store of a major
 * data structure; instGap carries the surrounding non-memory work):
 *  - pr:  sequential vertex scan; per edge a sequential neighbour-id read
 *         plus a random read of the source vertex's score (pull).
 *  - bfs: frontier pops (sequential queue), random offset reads, a
 *         sequential neighbour burst, random parent/visited checks and
 *         occasional parent writes + queue pushes.
 *  - cc:  edge scan with random component reads, pointer-jumping chains
 *         (dependent random reads), and occasional writes.
 *  - bc:  bfs plus per-edge sigma reads and delta accumulations (the most
 *         random references per edge of the suite).
 *  - tc:  degree-oriented set intersection: sequential bursts over two
 *         adjacency lists. With kron inputs the second list belongs to a
 *         Zipf-chosen hub, whose pages stay hot — the paper's explanation
 *         for tc-kron's graceful AT scaling.
 */

#ifndef ATSCALE_WORKLOADS_GRAPH_MODEL_STREAM_HH
#define ATSCALE_WORKLOADS_GRAPH_MODEL_STREAM_HH

#include <cstdint>
#include <vector>

#include "cpu/ref_stream.hh"
#include "workloads/graph/graph_spec.hh"

namespace atscale
{

/** The five GAP kernels (Table I). */
enum class GraphKernel
{
    Bc,
    Bfs,
    Cc,
    Pr,
    Tc,
};

/** Kernel name ("bc", "bfs", ...). */
const char *graphKernelName(GraphKernel kernel);

/** Bytes of per-vertex property state the kernel keeps. */
std::uint32_t kernelPropBytes(GraphKernel kernel);

/** Simulated virtual placement of the CSR structures. */
struct GraphLayout
{
    Addr offsets = 0;       ///< 8 B per vertex (+1)
    Addr neighbors = 0;     ///< 4 B per directed edge
    Addr props = 0;         ///< kernelPropBytes per vertex (may be 0)
    std::uint64_t neighborsBytes = 0;
    std::uint64_t propsBytes = 0;
};

/**
 * Endless reference stream for one (kernel, graph) pair.
 */
class GraphModelStream : public RefSource
{
  public:
    GraphModelStream(GraphKernel kernel, const GraphSpec &spec,
                     const GraphLayout &layout, std::uint64_t seed);

    bool next(Ref &ref) override;
    Count fill(Ref *out, Count max) override;
    Addr wrongPathAddr(Rng &rng) override;
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const override;

    // Wrong-path draws depend on one mutable cursor (the sequential
    // vertex cursor); everything else is fixed at construction, and
    // fill() touches no state outside the stream. That makes the stream
    // anchorable: bufferable ahead by the lane executor and recordable
    // by the ref-stream store (see RefSource).
    bool supportsAnchors() const override { return true; }
    std::uint64_t wrongPathAnchor() const override { return vertex_; }
    Addr wrongPathAddrAt(std::uint64_t anchor, Rng &rng) override;

  private:
    /** Refill batch_ with the next vertex/edge-group's references. */
    void generate();

    void push(Addr vaddr, std::uint32_t gap, bool store = false);

    Addr offsetAddr(std::uint64_t v) const;
    Addr neighborAddr(std::uint64_t v, std::uint32_t j) const;
    Addr propAddr(std::uint64_t v, std::uint32_t slot) const;

    /**
     * The vertex whose per-vertex state edge (v, j) touches. Kron inputs
     * hit Zipf-distributed hubs; urand inputs are uniform in topology but
     * exhibit power-law reuse at runtime (frontier/community locality),
     * modelled as a stack-distance draw anchored at v.
     */
    std::uint64_t targetVertex(std::uint64_t v, std::uint32_t j);

    void generatePr();
    void generateBfs();
    void generateCc();
    void generateBc();
    void generateTc();

    GraphKernel kernel_;
    GraphSpec spec_;
    GraphLayout layout_;
    std::uint32_t propStride_;
    Rng rng_;

    std::vector<Ref> batch_;
    std::size_t pos_ = 0;
    /** Sequential vertex cursor. */
    std::uint64_t vertex_ = 0;
    /** Sequential queue cursor (bfs/bc frontier). */
    std::uint64_t queuePos_ = 0;
    /** References emitted (for workload stats). */
    Count refsEmitted_ = 0;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_GRAPH_MODEL_STREAM_HH
