#include "workloads/kv/kv_server_workload.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "util/logging.hh"

namespace atscale
{

namespace
{

/** One tenant's key-mix flavour. */
enum class TenantMix
{
    Zipfian,
    Scan,
    Churn,
};

TenantMix
parseMix(const std::string &name)
{
    if (name == "zipfian")
        return TenantMix::Zipfian;
    if (name == "scan")
        return TenantMix::Scan;
    if (name == "churn")
        return TenantMix::Churn;
    fatal("unknown kvserver tenant mix '%s' (zipfian, scan, churn)",
          name.c_str());
}

/** Split "a,b,c" into its entries; an empty string yields the default. */
std::vector<std::string>
splitMixList(std::string list)
{
    if (list.empty())
        list = KvServerWorkload::defaultMix;
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/**
 * One tenant's request stream against the shared store. Generates in
 * request batches like the memcached model stream; the compaction
 * cadence lives in fill() so remaps land at fetch-chunk boundaries
 * (see the file header of kv_server_workload.hh for why that is safe).
 */
class KvTenantStream : public RefSource
{
  public:
    KvTenantStream(TenantMix mix, AddressSpace &space, Addr buckets,
                   std::uint64_t numBuckets, Addr slab, std::uint64_t items,
                   Addr scratch, std::uint64_t seed)
        : mix_(mix), space_(space), buckets_(buckets),
          numBuckets_(numBuckets), slab_(slab), items_(items),
          scratch_(scratch), rng_(seed),
          compactPeriod_(mix == TenantMix::Churn ? 4 : 32)
    {
        batch_.reserve(32);
        // Decorrelate tenants' slab cursors so churn tenants do not
        // write the same slots in lockstep.
        slabCursor_ = rng_.below(std::max<std::uint64_t>(items_, 1));
    }

    bool
    next(Ref &ref) override
    {
        while (pos_ >= batch_.size()) {
            batch_.clear();
            pos_ = 0;
            generate();
        }
        ref = batch_[pos_++];
        return true;
    }

    Count
    fill(Ref *out, Count max) override
    {
        // Slab-compaction analogue: migrate an item page this stream
        // emitted during the previous fill — executed, hence populated
        // — on a deterministic fill-count cadence. Under a SharedSystem
        // this fans out as an inter-core TLB shootdown.
        ++fills_;
        if (victim_ != 0 && fills_ % compactPeriod_ == 0) {
            space_.remapPage(victim_);
            ++compactions_;
            victim_ = 0;
        }
        Count n = RefSource::fill(out, max);
        for (Count i = 0; i < n; ++i) {
            if (out[i].vaddr - slab_ < items_ * KvServerWorkload::itemBytes) {
                victim_ = out[i].vaddr;
                break;
            }
        }
        return n;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        if (rng.chance(0.4))
            return buckets_ + rng.below(numBuckets_) * 8;
        return itemAddr(rng.below(std::max<std::uint64_t>(items_, 1)));
    }

    void
    registerStats(StatsRegistry &registry,
                  const std::string &prefix) const override
    {
        registry.addScalar(prefix + ".requests", [this] {
            return static_cast<double>(requests_);
        }, "client requests generated");
        registry.addScalar(prefix + ".compactions", [this] {
            return static_cast<double>(compactions_);
        }, "slab pages migrated (shootdown triggers)");
    }

  private:
    void
    push(Addr a, std::uint32_t gap, bool store = false)
    {
        batch_.push_back({a, gap, store});
    }

    Addr
    itemAddr(std::uint64_t slot) const
    {
        return slab_ + slot * KvServerWorkload::itemBytes;
    }

    void
    generate()
    {
        // Request parsing on the tenant's private connection buffers.
        for (int i = 0; i < 6; ++i)
            push(scratch_ + ((scratchPos_ + i * 64) & (scratchBytes - 1)), 6);
        scratchPos_ = (scratchPos_ + 512) & (scratchBytes - 1);
        ++requests_;

        std::uint64_t n = std::max<std::uint64_t>(items_, 1);
        switch (mix_) {
          case TenantMix::Zipfian: {
            // Skewed GET: hot-key bucket probe, short chain, payload.
            std::uint64_t slot = rng_.zipf(n, 0.99);
            push(buckets_ + (slot % numBuckets_) * 8, 20);
            push(itemAddr(slot), 3);
            while (rng_.chance(0.25)) {
                slot = rng_.zipf(n, 0.99);
                push(itemAddr(slot), 2);
            }
            // A small SET fraction updates the hot value in place.
            push(itemAddr(slot) + 64, 30, rng_.chance(0.05));
            break;
          }
          case TenantMix::Scan: {
            // Range read: one bucket probe then a sequential sweep of
            // item slots (the slab is layout-ordered).
            push(buckets_ + (scanPos_ % numBuckets_) * 8, 16);
            for (int i = 0; i < 16; ++i)
                push(itemAddr((scanPos_ + i) % n), 2);
            scanPos_ = (scanPos_ + 16 + rng_.below(4)) % n;
            break;
          }
          case TenantMix::Churn: {
            // Insert/evict: allocate at the cursor, write the item,
            // relink the bucket, advance the eviction clock.
            slabCursor_ = (slabCursor_ + 1) % n;
            push(itemAddr(slabCursor_), 12, true);
            push(itemAddr(slabCursor_) + 64, 2, true);
            push(buckets_ + rng_.below(numBuckets_) * 8, 2, true);
            push(itemAddr((slabCursor_ + 1) % n), 2);
            break;
          }
        }
    }

    static constexpr std::uint64_t scratchBytes = 1 << 20;

    TenantMix mix_;
    AddressSpace &space_;
    Addr buckets_;
    std::uint64_t numBuckets_;
    Addr slab_;
    std::uint64_t items_;
    Addr scratch_;
    Rng rng_;
    /** fill() calls between slab compactions (remap triggers). */
    std::uint64_t compactPeriod_;
    std::uint64_t slabCursor_ = 0;
    std::uint64_t scanPos_ = 0;
    std::uint64_t scratchPos_ = 0;
    std::uint64_t fills_ = 0;
    /** Slab address from the previous fill, next compaction victim. */
    Addr victim_ = 0;
    Count requests_ = 0;
    Count compactions_ = 0;
    std::vector<Ref> batch_;
    std::size_t pos_ = 0;
};

} // namespace

WorkloadTraits
KvServerWorkload::traits() const
{
    // Branchy protocol/request code like memcached; mixed-tenant chains
    // give little memory-level parallelism.
    return {0.18, 0.014, 0.40, 0.6};
}

std::vector<std::unique_ptr<RefSource>>
KvServerWorkload::instantiateTenants(AddressSpace &space,
                                     const WorkloadConfig &config,
                                     std::uint32_t tenants)
{
    fatal_if(config.mode != WorkloadMode::Model,
             "kvserver-mix only supports model mode");
    fatal_if(tenants == 0, "kvserver-mix needs at least one tenant");

    // One store for everyone: footprint = slab + bucket heads (the
    // per-tenant connection buffers are noise-sized).
    std::uint64_t items = std::max<std::uint64_t>(
        config.footprintBytes / (itemBytes + 8), 1024);
    std::uint64_t buckets = items;
    Addr bucket_base = space.mapRegion("buckets", buckets * 8);
    Addr slab_base = space.mapRegion("slab", items * itemBytes);

    std::vector<std::string> mixes = splitMixList(config.tenantMix);
    std::vector<std::unique_ptr<RefSource>> streams;
    streams.reserve(tenants);
    for (std::uint32_t t = 0; t < tenants; ++t) {
        Addr scratch = space.mapRegion(
            "conn-buffers" + std::to_string(t), 1 << 20);
        streams.push_back(std::make_unique<KvTenantStream>(
            parseMix(mixes[t % mixes.size()]), space, bucket_base, buckets,
            slab_base, items, scratch,
            (config.seed ^ 0x77) + t * 0x9e3779b9ull));
    }
    return streams;
}

std::unique_ptr<RefSource>
KvServerWorkload::instantiate(AddressSpace &space,
                              const WorkloadConfig &config)
{
    auto streams = instantiateTenants(space, config, 1);
    return std::move(streams.front());
}

} // namespace atscale
