/**
 * @file
 * The kvserver-mix workload: one KV store shared by N client tenants
 * with per-tenant key mixes — the ROADMAP's north-star multi-tenant
 * scenario, built for the multi-core SharedSystem (docs/MULTICORE.md).
 *
 * All tenants hit ONE store (one bucket array + one item slab in one
 * address space); each tenant adds only a private connection-buffer
 * region. Three key mixes, cycled over WorkloadConfig::tenantMix:
 *
 *  - zipfian: skewed GETs (hot keys), the classic cache-friendly tail
 *  - scan:    scan-heavy range reads sweeping the slab sequentially
 *  - churn:   insert/evict-heavy writes advancing the slab cursor
 *
 * Every tenant's refill path also triggers the store's slab-compaction
 * analogue: on a deterministic per-stream cadence, an item page the
 * tenant recently touched is migrated via AddressSpace::remapPage —
 * which under a multi-core system fans out as an inter-core TLB
 * shootdown. Churn tenants compact an order of magnitude more often
 * than read-mostly ones. Remaps fire only at fill() boundaries, on
 * pages emitted by the *previous* fill, so the page is guaranteed
 * already executed (hence populated) no matter how the core partitions
 * its run.
 */

#ifndef ATSCALE_WORKLOADS_KV_KV_SERVER_WORKLOAD_HH
#define ATSCALE_WORKLOADS_KV_KV_SERVER_WORKLOAD_HH

#include "workloads/workload.hh"

namespace atscale
{

/** Multi-tenant KV server + mixed-key client drivers. */
class KvServerWorkload : public Workload
{
  public:
    std::string program() const override { return "kvserver"; }
    std::string generator() const override { return "mix"; }
    WorkloadTraits traits() const override;
    bool
    supports(WorkloadMode mode) const override
    {
        return mode == WorkloadMode::Model;
    }

    std::unique_ptr<RefSource>
    instantiate(AddressSpace &space, const WorkloadConfig &config) override;

    std::vector<std::unique_ptr<RefSource>>
    instantiateTenants(AddressSpace &space, const WorkloadConfig &config,
                       std::uint32_t tenants) override;

    /** Item slot size in bytes. */
    static constexpr std::uint32_t itemBytes = 128;
    /** Default per-tenant mix cycle when config.tenantMix is empty. */
    static constexpr const char *defaultMix = "zipfian,scan,churn";
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_KV_KV_SERVER_WORKLOAD_HH
