#include "workloads/kv/kv_store.hh"

#include "obs/stats_registry.hh"
#include "util/logging.hh"

namespace atscale
{

KvStore::KvStore(const KvStoreParams &params, TraceSink &sink,
                 Addr bucketBase, Addr slabBase)
    : params_(params), sink_(sink), bucketBase_(bucketBase),
      slabBase_(slabBase),
      bucketHeads_(params.buckets, invalidSlot),
      items_(params.capacity)
{
    panic_if(params_.capacity == 0, "KV store needs capacity");
    panic_if(params_.buckets == 0, "KV store needs buckets");
}

std::uint64_t
KvStore::bucketOf(std::uint64_t key) const
{
    return mix64(key) % params_.buckets;
}

std::uint32_t
KvStore::readBucket(std::uint64_t bucket)
{
    sink_.load(bucketBase_ + bucket * 8, 3);
    return bucketHeads_[bucket];
}

void
KvStore::writeBucket(std::uint64_t bucket, std::uint32_t slot)
{
    sink_.store(bucketBase_ + bucket * 8, 1);
    bucketHeads_[bucket] = slot;
}

Addr
KvStore::itemAddr(std::uint32_t slot) const
{
    return slabBase_ + static_cast<Addr>(slot) * params_.itemBytes;
}

bool
KvStore::get(std::uint64_t key)
{
    std::uint64_t bucket = bucketOf(key);
    std::uint32_t slot = readBucket(bucket);
    while (slot != invalidSlot) {
        sink_.load(itemAddr(slot), 2); // key + next pointer in one line
        Item &item = items_[slot];
        if (item.key == key) {
            item.referenced = true;
            // Touch the value payload (second line of the item).
            sink_.load(itemAddr(slot) + 64, 2);
            ++hits_;
            return true;
        }
        slot = item.next;
    }
    ++misses_;
    return false;
}

void
KvStore::unlink(std::uint32_t slot)
{
    std::uint64_t bucket = bucketOf(items_[slot].key);
    std::uint32_t cur = readBucket(bucket);
    if (cur == slot) {
        writeBucket(bucket, items_[slot].next);
        return;
    }
    while (cur != invalidSlot) {
        sink_.load(itemAddr(cur), 1);
        std::uint32_t next = items_[cur].next;
        if (next == slot) {
            sink_.store(itemAddr(cur), 1);
            items_[cur].next = items_[slot].next;
            return;
        }
        cur = next;
    }
}

std::uint32_t
KvStore::allocateSlot()
{
    if (used_ < params_.capacity) {
        // Slab bump allocation while there is room.
        auto slot = static_cast<std::uint32_t>(used_);
        ++used_;
        return slot;
    }
    // Clock eviction: find an unreferenced victim.
    while (true) {
        Item &cand = items_[clockHand_];
        sink_.load(itemAddr(clockHand_), 1);
        std::uint32_t slot = clockHand_;
        clockHand_ = (clockHand_ + 1) %
                     static_cast<std::uint32_t>(params_.capacity);
        if (!cand.valid)
            return slot;
        if (cand.referenced) {
            sink_.store(itemAddr(slot), 1);
            cand.referenced = false;
            continue;
        }
        unlink(slot);
        cand.valid = false;
        return slot;
    }
}

void
KvStore::set(std::uint64_t key)
{
    std::uint64_t bucket = bucketOf(key);
    // Overwrite in place if present.
    std::uint32_t slot = readBucket(bucket);
    while (slot != invalidSlot) {
        sink_.load(itemAddr(slot), 2);
        if (items_[slot].key == key) {
            sink_.store(itemAddr(slot) + 64, 2);
            items_[slot].referenced = true;
            return;
        }
        slot = items_[slot].next;
    }

    std::uint32_t fresh = allocateSlot();
    Item &item = items_[fresh];
    item.key = key;
    item.valid = true;
    item.referenced = true;
    item.next = bucketHeads_[bucket];
    sink_.store(itemAddr(fresh), 2);
    sink_.store(itemAddr(fresh) + 64, 1); // value payload
    writeBucket(bucket, fresh);
}

void
KvStore::registerStats(StatsRegistry &registry,
                       const std::string &prefix) const
{
    registry.addScalar(prefix + ".items", [this] {
        return static_cast<double>(size());
    }, "items currently stored");
    registry.addScalar(prefix + ".get_hits", [this] {
        return static_cast<double>(hits());
    }, "lifetime get() hits");
    registry.addScalar(prefix + ".get_misses", [this] {
        return static_cast<double>(misses());
    }, "lifetime get() misses");
}

} // namespace atscale
