/**
 * @file
 * A slab-allocated chained-hash key-value store (the memcached stand-in
 * for exec mode), with traced bucket and item accesses.
 */

#ifndef ATSCALE_WORKLOADS_KV_KV_STORE_HH
#define ATSCALE_WORKLOADS_KV_KV_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"
#include "workloads/trace.hh"

namespace atscale
{

class StatsRegistry;

/** KV store geometry. */
struct KvStoreParams
{
    /** Capacity in items (slab slots). */
    std::uint64_t capacity = 1 << 16;
    /** Bytes per item slot (key + links + value), memcached-ish. */
    std::uint32_t itemBytes = 128;
    /** Hash buckets (one 8-byte head per bucket). */
    std::uint64_t buckets = 1 << 16;
};

/**
 * Real chained-hash store with clock eviction. All bucket-head and item
 * accesses are traced at simulated addresses.
 */
class KvStore
{
  public:
    /**
     * @param sink trace destination
     * @param bucketBase simulated base of the bucket-head array
     * @param slabBase simulated base of the item slab
     */
    KvStore(const KvStoreParams &params, TraceSink &sink, Addr bucketBase,
            Addr slabBase);

    /** Look up a key. @return true on hit (value touched). */
    bool get(std::uint64_t key);

    /** Insert/overwrite a key, evicting via clock when full. */
    void set(std::uint64_t key);

    /** Items currently stored. */
    std::uint64_t size() const { return used_; }

    /** Lifetime get() hits. */
    Count hits() const { return hits_; }
    /** Lifetime get() misses. */
    Count misses() const { return misses_; }

    /** Register occupancy and hit/miss counts under "<prefix>.". */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

  private:
    static constexpr std::uint32_t invalidSlot = ~0u;

    struct Item
    {
        std::uint64_t key = 0;
        std::uint32_t next = invalidSlot;
        bool valid = false;
        bool referenced = false;
    };

    std::uint64_t bucketOf(std::uint64_t key) const;
    /** Traced read of a bucket head. */
    std::uint32_t readBucket(std::uint64_t bucket);
    /** Traced write of a bucket head. */
    void writeBucket(std::uint64_t bucket, std::uint32_t slot);
    /** Simulated address of an item slot. */
    Addr itemAddr(std::uint32_t slot) const;
    /** Find a free slot, evicting with the clock hand if needed. */
    std::uint32_t allocateSlot();
    /** Unlink slot from its bucket chain (traced). */
    void unlink(std::uint32_t slot);

    KvStoreParams params_;
    TraceSink &sink_;
    Addr bucketBase_;
    Addr slabBase_;
    std::vector<std::uint32_t> bucketHeads_;
    std::vector<Item> items_;
    std::uint64_t used_ = 0;
    std::uint32_t clockHand_ = 0;
    Count hits_ = 0;
    Count misses_ = 0;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_KV_KV_STORE_HH
