#include "workloads/kv/memcached_workload.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "util/logging.hh"
#include "workloads/kv/kv_store.hh"
#include "workloads/trace.hh"

namespace atscale
{

namespace
{

/**
 * Model-mode stream: the statistical twin of KvStore under a uniform
 * driver, with the request parsing/response instruction overhead that
 * makes memcached's accesses-per-instruction low.
 */
class MemcachedModelStream : public RefSource
{
  public:
    MemcachedModelStream(Addr buckets, std::uint64_t numBuckets, Addr slab,
                         std::uint64_t items, Addr scratch, double hitRate,
                         std::uint64_t seed)
        : buckets_(buckets), numBuckets_(numBuckets), slab_(slab),
          items_(items), scratch_(scratch), hitRate_(hitRate), rng_(seed)
    {
        batch_.reserve(32);
    }

    bool
    next(Ref &ref) override
    {
        while (pos_ >= batch_.size()) {
            batch_.clear();
            pos_ = 0;
            generate();
        }
        ref = batch_[pos_++];
        return true;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return wrongPathAddrAt(slabCursor_, rng);
    }

    // The slab cursor is the only mutable wrongPathAddr input; the
    // bucket/item geometry is fixed at construction and fill() touches
    // nothing outside the stream, so the stream is anchorable
    // (lane-bufferable and recordable — see RefSource).
    bool supportsAnchors() const override { return true; }
    std::uint64_t wrongPathAnchor() const override { return slabCursor_; }

    Addr
    wrongPathAddrAt(std::uint64_t anchor, Rng &rng) override
    {
        // Divergent request handling touches some other bucket or a
        // (recency-clustered) item, like the correct path does.
        if (rng.chance(0.4))
            return buckets_ + rng.below(numBuckets_) * 8;
        std::uint64_t n = std::max<std::uint64_t>(items_, 1);
        std::uint64_t slot =
            rng.chance(0.7)
                ? (anchor + n - 1 -
                   rng.below(std::min<std::uint64_t>(n, 16384))) % n
                : rng.below(n);
        return itemAddr(slot);
    }

    void
    registerStats(StatsRegistry &registry,
                  const std::string &prefix) const override
    {
        registry.addScalar(prefix + ".requests", [this] {
            return static_cast<double>(requests_);
        }, "GET requests generated");
        registry.addScalar(prefix + ".get_hits", [this] {
            return static_cast<double>(getHits_);
        }, "GET requests that hit");
        registry.addScalar(prefix + ".get_misses", [this] {
            return static_cast<double>(getMisses_);
        }, "GET requests that missed (refilled via SET)");
    }

  private:
    void
    push(Addr a, std::uint32_t gap, bool store = false)
    {
        batch_.push_back({a, gap, store});
    }

    Addr
    itemAddr(std::uint64_t slot) const
    {
        return slab_ + slot * MemcachedWorkload::itemBytes;
    }

    /** A recently touched item slot (slab allocation clusters recency). */
    std::uint64_t
    itemTarget()
    {
        std::uint64_t n = std::max<std::uint64_t>(items_, 1);
        if (rng_.chance(0.7))
            return (slabCursor_ + n - 1 - rng_.below(std::min<std::uint64_t>(
                                            n, 16384))) % n;
        return rng_.below(n);
    }

    void
    generate()
    {
        // Request parsing and connection handling: a burst of warm
        // accesses to the per-connection buffers (most of memcached's
        // instructions and accesses live here, not in the table).
        for (int i = 0; i < 8; ++i)
            push(scratch_ + ((scratchPos_ + i * 64) & (scratchBytes - 1)), 6);
        scratchPos_ = (scratchPos_ + 512) & (scratchBytes - 1);

        // Hash + bucket probe (uniform keys hash to uniform buckets).
        push(buckets_ + rng_.below(numBuckets_) * 8, 20);

        // Chain walk: geometric number of item probes.
        std::uint64_t slot = itemTarget();
        push(itemAddr(slot), 3);
        while (rng_.chance(0.30)) {
            slot = itemTarget();
            push(itemAddr(slot), 2);
        }

        ++requests_;
        if (rng_.chance(hitRate_)) {
            // Hit: touch the value payload and build the response.
            ++getHits_;
            push(itemAddr(slot) + 64, 4);
            push(itemAddr(slot) + 64, 30);
        } else {
            // Miss: the client refills with a SET — allocate at the slab
            // cursor, write the item, relink the bucket, occasionally
            // advance the eviction clock.
            ++getMisses_;
            std::uint64_t n = std::max<std::uint64_t>(items_, 1);
            slabCursor_ = (slabCursor_ + 1) % n;
            push(itemAddr(slabCursor_), 12, true);
            push(itemAddr(slabCursor_) + 64, 2, true);
            push(buckets_ + rng_.below(numBuckets_) * 8, 2, true);
            if (rng_.chance(0.5))
                push(itemAddr((slabCursor_ + 1) % n), 2); // clock hand
        }
    }

    static constexpr std::uint64_t scratchBytes = 1 << 20;

    Addr buckets_;
    std::uint64_t numBuckets_;
    Addr slab_;
    std::uint64_t items_;
    Addr scratch_;
    double hitRate_;
    Rng rng_;
    std::uint64_t slabCursor_ = 0;
    std::uint64_t scratchPos_ = 0;
    Count requests_ = 0;
    Count getHits_ = 0;
    Count getMisses_ = 0;
    std::vector<Ref> batch_;
    std::size_t pos_ = 0;
};

} // namespace

WorkloadTraits
MemcachedWorkload::traits() const
{
    // Request handling is branchy protocol code; chains give little MLP.
    return {0.18, 0.015, 0.40, 0.6};
}

std::unique_ptr<RefSource>
MemcachedWorkload::instantiate(AddressSpace &space,
                               const WorkloadConfig &config)
{
    // Footprint = item slab + one 8-byte bucket head per item.
    std::uint64_t items = std::max<std::uint64_t>(
        config.footprintBytes / (itemBytes + 8), 1024);
    std::uint64_t buckets = items;

    Addr bucket_base = space.mapRegion("buckets", buckets * 8);
    Addr slab_base = space.mapRegion("slab", items * itemBytes);

    if (config.mode == WorkloadMode::Model) {
        Addr scratch_base = space.mapRegion("conn-buffers", 1 << 20);
        double hit_rate = std::min(
            1.0, static_cast<double>(items) / static_cast<double>(keyspace));
        return std::make_unique<MemcachedModelStream>(
            bucket_base, buckets, slab_base, items, scratch_base, hit_rate,
            config.seed ^ 0x77);
    }

    // Exec mode: drive the real store with a uniform YCSB-style mix.
    fatal_if(config.footprintBytes > (1ull << 31),
             "exec-mode memcached footprint too large; use model mode");
    KvStoreParams params;
    params.capacity = items;
    params.buckets = buckets;
    params.itemBytes = itemBytes;

    TraceSink sink;
    KvStore store(params, sink, bucket_base, slab_base);
    Rng rng(config.seed ^ 0x88);
    // Uniform GETs over a keyspace scaled to the store (exec instances
    // are small); misses refill with SETs, as YCSB's read-mostly mix.
    std::uint64_t eff_keyspace = items * 4;
    std::uint64_t ops = std::min<std::uint64_t>(items * 8, 2'000'000);
    for (std::uint64_t i = 0; i < ops; ++i) {
        std::uint64_t key = rng.below(eff_keyspace);
        if (!store.get(key))
            store.set(key);
    }
    return std::make_unique<TraceReplaySource>(sink.takeTrace());
}

} // namespace atscale
