/**
 * @file
 * The memcached-uniform workload (Table I: YCSB with a uniform key
 * distribution).
 *
 * The server's footprint is the item slab + hash table; the YCSB driver
 * draws keys uniformly from a fixed keyspace, so the KV hit rate grows
 * with the instantiated footprint — the mechanism behind the paper's
 * complex, nonlinear memcached scaling (V-A): at small footprints most
 * operations run the miss/insert path, at large footprints the hit path.
 */

#ifndef ATSCALE_WORKLOADS_KV_MEMCACHED_WORKLOAD_HH
#define ATSCALE_WORKLOADS_KV_MEMCACHED_WORKLOAD_HH

#include "workloads/workload.hh"

namespace atscale
{

/** memcached + uniform YCSB driver. */
class MemcachedWorkload : public Workload
{
  public:
    std::string program() const override { return "memcached"; }
    std::string generator() const override { return "uniform"; }
    WorkloadTraits traits() const override;
    bool supports(WorkloadMode) const override { return true; }

    std::unique_ptr<RefSource>
    instantiate(AddressSpace &space, const WorkloadConfig &config) override;

    /** Fixed keyspace the uniform driver draws from (items). */
    static constexpr std::uint64_t keyspace = 500'000'000;
    /** Item slot size in bytes. */
    static constexpr std::uint32_t itemBytes = 128;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_KV_MEMCACHED_WORKLOAD_HH
