/**
 * @file
 * Temporal-locality modelling for the streaming workloads.
 *
 * Real programs' reuse distances follow heavy-tailed (approximately
 * power-law) distributions: most references revisit recently used data,
 * but a slowly decaying tail reaches arbitrarily far. Model-mode streams
 * draw their "random" targets at a power-law-distributed distance from a
 * moving anchor, which is what makes TLB/cache miss rates grow smoothly
 * with the logarithm of the footprint instead of saturating at the first
 * footprint that exceeds TLB reach — the central scaling behaviour the
 * paper measures. It also concentrates page-table-entry reuse, keeping
 * hot PTEs high in the cache hierarchy (Fig 8).
 */

#ifndef ATSCALE_WORKLOADS_LOCALITY_HH
#define ATSCALE_WORKLOADS_LOCALITY_HH

#include <cmath>
#include <cstdint>

#include "util/random.hh"

namespace atscale
{

/**
 * Draw a reuse distance in [1, n] with P(r) ~ r^-s.
 *
 * s = 1 gives the classic log-uniform stack-distance profile (miss ratio
 * of an LRU cache of size C over a footprint of size N ~ ln(N/C)/ln(N));
 * s > 1 is more local, s < 1 closer to uniform.
 */
inline std::uint64_t
reuseDistance(Rng &rng, std::uint64_t n, double s)
{
    if (n <= 1)
        return 1;
    double u = rng.real();
    double r;
    if (s == 1.0) {
        r = std::exp(u * std::log(static_cast<double>(n)));
    } else {
        double oms = 1.0 - s;
        double hi = std::pow(static_cast<double>(n), oms);
        r = std::pow(u * (hi - 1.0) + 1.0, 1.0 / oms);
    }
    auto dist = static_cast<std::uint64_t>(r);
    if (dist < 1)
        dist = 1;
    if (dist > n)
        dist = n;
    return dist;
}

/**
 * A "random" element index with power-law temporal locality: at distance
 * reuseDistance(s) behind the moving anchor (mod n).
 */
inline std::uint64_t
localTarget(Rng &rng, std::uint64_t anchor, std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    std::uint64_t r = reuseDistance(rng, n, s);
    return (anchor + n - r) % n;
}

/**
 * Composite temporal-locality profile.
 *
 * Real working sets are layered: a small hot core (top of the reuse
 * stack — frontier tips, allocator metadata) that any TLB covers; an
 * algorithmic working set that grows sublinearly with the instance
 * (frontier width, active tree) and produces the paper's TLB miss-rate
 * "cliffs" when it crosses a structure's reach; and a heavy power-law
 * tail that keeps a trickle of arbitrarily-far references, giving the
 * smooth log component. Each workload tunes the three weights.
 */
struct LocalityProfile
{
    /** Probability a draw lands in the hot core. */
    double hotWeight = 0.7;
    /** Probability a draw is uniform over the working-set window. */
    double wsWeight = 0.2;
    /** Working-set window size = n^wsExponent elements. */
    double wsExponent = 0.75;
    /** Stack-distance exponent of the remaining tail draws. */
    double tailS = 1.0;
    /** Hot-core size in elements. */
    std::uint64_t hotSize = 32768;
};

/** Draw an element in [0, n) according to a LocalityProfile, anchored at
 * a moving cursor (recent elements are behind the cursor). */
inline std::uint64_t
drawLocal(Rng &rng, std::uint64_t cursor, std::uint64_t n,
          const LocalityProfile &profile)
{
    if (n <= 1)
        return 0;
    double u = rng.real();
    if (u < profile.hotWeight) {
        std::uint64_t hot = std::min(profile.hotSize, n);
        return (cursor + n - 1 - rng.below(hot)) % n;
    }
    if (u < profile.hotWeight + profile.wsWeight) {
        auto window = static_cast<std::uint64_t>(
            std::pow(static_cast<double>(n), profile.wsExponent));
        window = std::min(std::max(window, profile.hotSize), n);
        return (cursor + n - 1 - rng.below(window)) % n;
    }
    return localTarget(rng, cursor, n, profile.tailS);
}

} // namespace atscale

#endif // ATSCALE_WORKLOADS_LOCALITY_HH
