#include "workloads/mcf/mcf_exec.hh"

#include <algorithm>
#include <cmath>

#include "util/random.hh"
#include "workloads/mcf/mcf_workload.hh"

namespace atscale
{

McfInstance::McfInstance(std::uint64_t nodes, std::uint32_t arcsPerNode,
                         std::uint64_t seed)
    : numNodes(nodes)
{
    Rng rng(seed);
    arcs.reserve(nodes * arcsPerNode);
    // A ring backbone keeps the network connected; the rest is random.
    for (std::uint32_t v = 0; v < nodes; ++v) {
        arcs.push_back({v, static_cast<std::uint32_t>((v + 1) % nodes),
                        static_cast<std::int32_t>(rng.below(1000)) - 200});
    }
    for (std::uint64_t i = nodes; i < nodes * arcsPerNode; ++i) {
        auto tail = static_cast<std::uint32_t>(rng.below(nodes));
        auto head = static_cast<std::uint32_t>(rng.below(nodes));
        arcs.push_back({tail, head,
                        static_cast<std::int32_t>(rng.below(1000)) - 200});
    }
}

namespace
{

/** Traced view of the solver's node state (potential/parent/depth live in
 * one node struct, as in mcf's node_t). */
struct TracedNodes
{
    TracedNodes(TraceSink &trace, Addr region, std::uint64_t n)
        : sink(&trace), base(region), potential(n, 0), parent(n, 0),
          depth(n, 0)
    {
    }

    Addr
    addr(std::uint64_t v, std::uint32_t field) const
    {
        return base + v * McfWorkload::nodeBytes + field * 8;
    }

    std::int64_t
    readPotential(std::uint64_t v)
    {
        sink->load(addr(v, 0), 1);
        return potential[v];
    }

    void
    writePotential(std::uint64_t v, std::int64_t value)
    {
        sink->store(addr(v, 0), 1);
        potential[v] = value;
    }

    std::uint32_t
    readParent(std::uint64_t v)
    {
        sink->load(addr(v, 1), 1);
        return parent[v];
    }

    std::uint32_t
    readDepth(std::uint64_t v)
    {
        sink->load(addr(v, 2), 1);
        return depth[v];
    }

    TraceSink *sink;
    Addr base;
    std::vector<std::int64_t> potential;
    std::vector<std::uint32_t> parent;
    std::vector<std::uint32_t> depth;
};

} // namespace

McfResult
runNetworkSimplex(const McfInstance &instance, TraceSink &sink,
                  Addr nodeBase, Addr arcBase, int maxRounds)
{
    const std::uint64_t n = instance.numNodes;
    TracedNodes nodes(sink, nodeBase, n);

    // Initial basis: the ring backbone as spanning tree rooted at 0.
    for (std::uint32_t v = 0; v < n; ++v) {
        nodes.parent[v] = v == 0 ? 0 : v - 1;
        nodes.depth[v] = v;
    }

    McfResult result;
    for (int round = 0; round < maxRounds; ++round) {
        double negative_sum = 0;
        std::size_t best_arc = instance.arcs.size();
        std::int64_t best_reduced = 0;

        // Pricing: sequential scan of the arc array, two random node
        // potential reads per arc.
        for (std::size_t a = 0; a < instance.arcs.size(); ++a) {
            sink.load(arcBase + a * McfWorkload::arcBytes, 1);
            const McfInstance::Arc &arc = instance.arcs[a];
            std::int64_t reduced = arc.cost +
                                   nodes.readPotential(arc.tail) -
                                   nodes.readPotential(arc.head);
            if (reduced < 0) {
                negative_sum += static_cast<double>(reduced);
                if (reduced < best_reduced) {
                    best_reduced = reduced;
                    best_arc = a;
                }
            }
        }
        result.objectiveTrace.push_back(negative_sum);
        if (best_arc == instance.arcs.size())
            break; // optimal: no negative reduced cost

        // Pivot: walk the tree from both endpoints to their join point
        // (dependent parent chases), then absorb the reduced cost into
        // the head-side subtree potentials along the walked path.
        const McfInstance::Arc &enter = instance.arcs[best_arc];
        std::uint64_t u = enter.tail, w = enter.head;
        std::uint32_t du = nodes.readDepth(u), dw = nodes.readDepth(w);
        std::vector<std::uint64_t> head_path;
        while (u != w) {
            if (du >= dw) {
                u = nodes.readParent(u);
                du = du ? du - 1 : 0;
            } else {
                head_path.push_back(w);
                w = nodes.readParent(w);
                dw = dw ? dw - 1 : 0;
            }
            if (head_path.size() > n)
                break; // degenerate tree safety valve
        }
        // Shift the head-side potentials by the reduced cost so the
        // entering arc prices to zero (pot'[head] = pot[head] + reduced
        // makes cost + pot[tail] - pot'[head] == 0).
        for (std::uint64_t v : head_path)
            nodes.writePotential(v, nodes.readPotential(v) + best_reduced);
        ++result.pivots;
    }

    // Final residual for the optimality trend check.
    double residual = 0;
    for (const McfInstance::Arc &arc : instance.arcs) {
        std::int64_t reduced = arc.cost + nodes.potential[arc.tail] -
                               nodes.potential[arc.head];
        if (reduced < 0)
            residual += static_cast<double>(reduced);
    }
    result.residual = residual;
    return result;
}

} // namespace atscale
