/**
 * @file
 * Exec-mode mcf: a real (simplified) network-simplex min-cost-flow solver
 * over a synthetic random instance, with every node/arc structure access
 * traced at simulated addresses.
 *
 * The solver maintains a spanning-tree basis with node potentials, runs
 * pricing scans over the arc array (the sequential phase), and pivots
 * negative-reduced-cost arcs into the basis by walking tree paths and
 * updating potentials (the pointer-chasing phase) — the same two access
 * regimes the SPEC 429.mcf inner loops exhibit and the model stream
 * mimics.
 */

#ifndef ATSCALE_WORKLOADS_MCF_MCF_EXEC_HH
#define ATSCALE_WORKLOADS_MCF_MCF_EXEC_HH

#include <cstdint>
#include <vector>

#include "workloads/trace.hh"

namespace atscale
{

/** A random min-cost-flow instance. */
struct McfInstance
{
    /** Build a connected random instance. */
    McfInstance(std::uint64_t numNodes, std::uint32_t arcsPerNode,
                std::uint64_t seed);

    struct Arc
    {
        std::uint32_t tail;
        std::uint32_t head;
        std::int32_t cost;
    };

    std::uint64_t numNodes;
    std::vector<Arc> arcs;
};

/** Result of a solver run, for correctness checks. */
struct McfResult
{
    /** Objective value after each pricing round (monotone non-increase
     * of the reduced-cost sum is the solver invariant tests verify). */
    std::vector<double> objectiveTrace;
    /** Pivots performed. */
    Count pivots = 0;
    /** Final sum of negative reduced costs (0 = optimal pricing). */
    double residual = 0.0;
};

/**
 * Run the simplified network simplex.
 *
 * @param instance the flow network
 * @param sink trace destination
 * @param nodeBase simulated base address of the node structure array
 * @param arcBase simulated base address of the arc structure array
 * @param maxRounds pricing rounds to run (bounded for tracing purposes)
 */
McfResult runNetworkSimplex(const McfInstance &instance, TraceSink &sink,
                            Addr nodeBase, Addr arcBase, int maxRounds);

} // namespace atscale

#endif // ATSCALE_WORKLOADS_MCF_MCF_EXEC_HH
