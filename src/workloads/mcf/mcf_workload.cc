#include "workloads/mcf/mcf_workload.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "workloads/locality.hh"
#include "workloads/mcf/mcf_exec.hh"

namespace atscale
{

namespace
{

/** mcf's node reuse: a modest hot core (active tree around the current
 * pivot), a working set that grows almost linearly with the network —
 * the source of mcf's late, steep overhead growth — and a log tail. */
constexpr LocalityProfile mcfProfile{0.60, 0.25, 0.90, 1.0, 16384};

} // namespace

namespace
{

/** Model stream for the network-simplex inner loops. */
class McfModelStream : public RefSource
{
  public:
    McfModelStream(Addr nodes, std::uint64_t numNodes, Addr arcs,
                   std::uint64_t numArcs, std::uint64_t seed)
        : nodes_(nodes), numNodes_(numNodes), arcs_(arcs), numArcs_(numArcs),
          rng_(seed)
    {
        batch_.reserve(64);
    }

    bool
    next(Ref &ref) override
    {
        while (pos_ >= batch_.size()) {
            batch_.clear();
            pos_ = 0;
            generate();
        }
        ref = batch_[pos_++];
        return true;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return wrongPathAddrAt(arcCursor_, rng);
    }

    // The arc cursor is the only mutable wrongPathAddr input and fill()
    // has no side effects outside the stream, so the stream is
    // anchorable (lane-bufferable and recordable — see RefSource).
    bool supportsAnchors() const override { return true; }
    std::uint64_t wrongPathAnchor() const override { return arcCursor_; }

    Addr
    wrongPathAddrAt(std::uint64_t anchor, Rng &rng) override
    {
        // Speculative paths price other arcs near the scan cursor and
        // poke reuse-correlated nodes.
        if (rng.chance(0.6)) {
            std::uint64_t v = drawLocal(rng, anchor % numNodes_,
                                        numNodes_, mcfProfile);
            return nodes_ + v * McfWorkload::nodeBytes;
        }
        std::uint64_t a = (anchor + rng.below(1024)) % numArcs_;
        return arcs_ + a * McfWorkload::arcBytes;
    }

  private:
    void
    push(Addr a, std::uint32_t gap, bool store = false)
    {
        batch_.push_back({a, gap, store});
    }

    Addr
    nodeAddr(std::uint64_t v, std::uint32_t off = 0) const
    {
        return nodes_ + v * McfWorkload::nodeBytes + off;
    }

    void
    generate()
    {
        // Pricing: a sequential burst over the arc array; each arc's
        // reduced cost needs its tail and head node potentials — two
        // random node reads per arc.
        for (int i = 0; i < 8; ++i) {
            push(arcs_ + arcCursor_ * McfWorkload::arcBytes, 1);
            arcCursor_ = (arcCursor_ + 1) % numArcs_;
            std::uint64_t anchor = arcCursor_ % numNodes_;
            std::uint64_t tail =
                drawLocal(rng_, anchor, numNodes_, mcfProfile);
            std::uint64_t head =
                drawLocal(rng_, anchor, numNodes_, mcfProfile);
            push(nodeAddr(tail), 1);
            push(nodeAddr(head), 2);
        }

        // Occasionally an arc enters the basis: walk the spanning tree
        // from both endpoints to the join node and update flows — a
        // dependent pointer chase with writes.
        if (rng_.chance(0.12)) {
            std::uint64_t v =
                drawLocal(rng_, arcCursor_ % numNodes_, numNodes_,
                          mcfProfile);
            int depth = 8 + static_cast<int>(rng_.below(10));
            for (int d = 0; d < depth; ++d) {
                // next = v->parent (dependent chase up the spanning tree;
                // tree edges connect reuse-correlated nodes).
                v = drawLocal(rng_, v, numNodes_, mcfProfile);
                push(nodeAddr(v, 8), 1);
                if (d % 3 == 0)
                    push(nodeAddr(v, 64), 1, true); // flow update
            }
        }
    }

    Addr nodes_;
    std::uint64_t numNodes_;
    Addr arcs_;
    std::uint64_t numArcs_;
    Rng rng_;
    std::uint64_t arcCursor_ = 0;
    std::vector<Ref> batch_;
    std::size_t pos_ = 0;
};

} // namespace

WorkloadTraits
McfWorkload::traits() const
{
    // Data-dependent branches mispredict often; chases kill MLP.
    return {0.22, 0.05, 0.15, 0.7};
}

std::unique_ptr<RefSource>
McfWorkload::instantiate(AddressSpace &space, const WorkloadConfig &config)
{
    std::uint64_t bytes_per_node =
        nodeBytes + static_cast<std::uint64_t>(arcsPerNode) * arcBytes;
    std::uint64_t nodes = std::max<std::uint64_t>(
        config.footprintBytes / bytes_per_node, 1024);
    std::uint64_t arcs = nodes * arcsPerNode;

    Addr node_base = space.mapRegion("nodes", nodes * nodeBytes);
    Addr arc_base = space.mapRegion("arcs", arcs * arcBytes);

    if (config.mode == WorkloadMode::Exec) {
        fatal_if(config.footprintBytes > (1ull << 31),
                 "exec-mode mcf footprint too large; use model mode");
        McfInstance instance(nodes, arcsPerNode, config.seed);
        TraceSink sink;
        runNetworkSimplex(instance, sink, node_base, arc_base,
                          /*maxRounds=*/8);
        return std::make_unique<TraceReplaySource>(sink.takeTrace());
    }

    return std::make_unique<McfModelStream>(node_base, nodes, arc_base, arcs,
                                            config.seed ^ 0x3cf0);
}

} // namespace atscale
