/**
 * @file
 * The mcf-rand workload (Table I: SPEC 2006 429.mcf, network simplex,
 * with the paper's own `rand` instance generator).
 *
 * Network simplex alternates sequential arc-array pricing scans with
 * dependent pointer chases over node structures (spanning-tree walks).
 * The two random node reads per priced arc over an ever-growing node
 * array are what give mcf its very high TLB miss rate (~20% of accesses
 * at the largest footprints) and its superlinear overhead growth; the
 * dependent chases give it almost no memory-level parallelism.
 */

#ifndef ATSCALE_WORKLOADS_MCF_MCF_WORKLOAD_HH
#define ATSCALE_WORKLOADS_MCF_MCF_WORKLOAD_HH

#include "workloads/workload.hh"

namespace atscale
{

/** mcf + rand generator. */
class McfWorkload : public Workload
{
  public:
    std::string program() const override { return "mcf"; }
    std::string generator() const override { return "rand"; }
    WorkloadTraits traits() const override;
    bool supports(WorkloadMode) const override { return true; }

    std::unique_ptr<RefSource>
    instantiate(AddressSpace &space, const WorkloadConfig &config) override;

    /** Node structure size (SPEC mcf nodes are ~120 B; padded). */
    static constexpr std::uint32_t nodeBytes = 128;
    /** Arc structure size. */
    static constexpr std::uint32_t arcBytes = 64;
    /** Arcs per node in the rand instances. */
    static constexpr std::uint32_t arcsPerNode = 6;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_MCF_MCF_WORKLOAD_HH
