// Thread-safety invariant (relied on by core/sweep.hh's parallel
// engine): this registry holds no mutable state. workloadNames() returns
// a fresh vector and createWorkload() constructs a brand-new Workload
// from constants, so any number of concurrent jobs may call them; each
// job owns its workload instance outright. Do not add caches or shared
// singletons here without making them thread-safe AND
// interleaving-independent.

#include "workloads/registry.hh"

#include "util/logging.hh"
#include "workloads/graph/graph_workload.hh"
#include "workloads/kv/kv_server_workload.hh"
#include "workloads/kv/memcached_workload.hh"
#include "workloads/mcf/mcf_workload.hh"
#include "workloads/sc/streamcluster_workload.hh"

namespace atscale
{

std::vector<std::string>
workloadNames()
{
    return {
        "bc-kron",        "bc-urand", "bfs-kron", "bfs-urand",
        "cc-kron",        "cc-urand", "kvserver-mix", "mcf-rand",
        "memcached-uniform", "pr-kron", "pr-urand",
        "streamcluster-rand", "tc-kron", "tc-urand",
    };
}

std::unique_ptr<Workload>
createWorkload(const std::string &name)
{
    auto graph = [](GraphKernel kernel, GraphKind kind) {
        return std::make_unique<GraphWorkload>(kernel, kind);
    };

    if (name == "bc-urand")
        return graph(GraphKernel::Bc, GraphKind::Urand);
    if (name == "bc-kron")
        return graph(GraphKernel::Bc, GraphKind::Kron);
    if (name == "bfs-urand")
        return graph(GraphKernel::Bfs, GraphKind::Urand);
    if (name == "bfs-kron")
        return graph(GraphKernel::Bfs, GraphKind::Kron);
    if (name == "cc-urand")
        return graph(GraphKernel::Cc, GraphKind::Urand);
    if (name == "cc-kron")
        return graph(GraphKernel::Cc, GraphKind::Kron);
    if (name == "pr-urand")
        return graph(GraphKernel::Pr, GraphKind::Urand);
    if (name == "pr-kron")
        return graph(GraphKernel::Pr, GraphKind::Kron);
    if (name == "tc-urand")
        return graph(GraphKernel::Tc, GraphKind::Urand);
    if (name == "tc-kron")
        return graph(GraphKernel::Tc, GraphKind::Kron);
    if (name == "kvserver-mix")
        return std::make_unique<KvServerWorkload>();
    if (name == "mcf-rand")
        return std::make_unique<McfWorkload>();
    if (name == "memcached-uniform")
        return std::make_unique<MemcachedWorkload>();
    if (name == "streamcluster-rand")
        return std::make_unique<StreamclusterWorkload>();

    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::unique_ptr<Workload>>
createAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    for (const std::string &name : workloadNames())
        all.push_back(createWorkload(name));
    return all;
}

} // namespace atscale
