/**
 * @file
 * Workload registry: the paper's thirteen program-generator pairs by name.
 */

#ifndef ATSCALE_WORKLOADS_REGISTRY_HH
#define ATSCALE_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace atscale
{

/** Names of all thirteen workloads, in the paper's Table IV order. */
std::vector<std::string> workloadNames();

/**
 * Create a workload by its paper name (e.g. "bc-urand", "mcf-rand",
 * "memcached-uniform"). fatal() on unknown names.
 */
std::unique_ptr<Workload> createWorkload(const std::string &name);

/** Create all thirteen workloads. */
std::vector<std::unique_ptr<Workload>> createAllWorkloads();

} // namespace atscale

#endif // ATSCALE_WORKLOADS_REGISTRY_HH
