#include "workloads/sc/streamcluster_exec.hh"

#include <algorithm>
#include <cmath>

#include "util/random.hh"

namespace atscale
{

namespace
{

/** Traced squared-Euclidean distance between a point and a centre. */
double
distance(const std::vector<float> &a, std::size_t a_off,
         const std::vector<float> &b, std::size_t b_off, std::uint32_t dims,
         TraceSink &sink, Addr a_addr, Addr b_addr)
{
    double sum = 0;
    for (std::uint32_t d = 0; d < dims; ++d) {
        // One traced access per 16 floats (a 64 B line), as the hardware
        // counters would see it.
        if (d % 16 == 0) {
            sink.load(a_addr + d * 4, 3);
            sink.load(b_addr + d * 4, 3);
        }
        double diff = static_cast<double>(a[a_off + d]) -
                      static_cast<double>(b[b_off + d]);
        sum += diff * diff;
    }
    return sum;
}

} // namespace

StreamclusterResult
runStreamcluster(std::uint64_t numPoints, std::uint32_t dims,
                 std::uint64_t chunkPoints, std::uint64_t seed,
                 TraceSink &sink, Addr pointBase, Addr centerBase,
                 std::uint32_t pointBytes)
{
    Rng rng(seed);
    std::vector<float> points(numPoints * dims);
    for (float &x : points)
        x = static_cast<float>(rng.real());

    // Centre table: up to 256 centres, stored apart from the points.
    std::vector<float> centers;
    std::vector<std::uint64_t> center_ids;
    const std::size_t max_centers = 256;
    double open_cost = 0.15 * dims; // facility cost

    StreamclusterResult result;
    std::vector<std::uint32_t> assignment(numPoints, 0);

    for (std::uint64_t chunk = 0; chunk * chunkPoints < numPoints; ++chunk) {
        std::uint64_t begin = chunk * chunkPoints;
        std::uint64_t end = std::min(begin + chunkPoints, numPoints);

        // First centre of the stream.
        if (centers.empty()) {
            centers.insert(centers.end(), points.begin() + begin * dims,
                           points.begin() + (begin + 1) * dims);
            center_ids.push_back(begin);
        }

        double chunk_cost = 0;
        for (std::uint64_t p = begin; p < end; ++p) {
            Addr p_addr = pointBase + p * pointBytes;
            // Assign to the nearest centre.
            double best = -1;
            std::uint32_t best_c = 0;
            for (std::size_t c = 0; c < center_ids.size(); ++c) {
                double dist = distance(points, p * dims, centers, c * dims,
                                       dims, sink, p_addr,
                                       centerBase + c * 64);
                if (best < 0 || dist < best) {
                    best = dist;
                    best_c = static_cast<std::uint32_t>(c);
                }
            }
            assignment[p] = best_c;
            // Online facility location: open a centre here with
            // probability proportional to the assignment cost.
            if (center_ids.size() < max_centers &&
                rng.real() < best / open_cost) {
                sink.store(centerBase + center_ids.size() * 64, 5);
                centers.insert(centers.end(), points.begin() + p * dims,
                               points.begin() + (p + 1) * dims);
                center_ids.push_back(p);
                assignment[p] =
                    static_cast<std::uint32_t>(center_ids.size() - 1);
                best = 0;
            }
            chunk_cost += best;
        }

        // One improving local-search pass over the chunk: move a point
        // to a random other centre if that reduces its cost.
        for (std::uint64_t p = begin; p < end; ++p) {
            if (center_ids.size() < 2)
                break;
            Addr p_addr = pointBase + p * pointBytes;
            auto cand = static_cast<std::uint32_t>(
                rng.below(center_ids.size()));
            double current = distance(points, p * dims, centers,
                                      assignment[p] * dims, dims, sink,
                                      p_addr,
                                      centerBase + assignment[p] * 64);
            double moved = distance(points, p * dims, centers,
                                    cand * dims, dims, sink, p_addr,
                                    centerBase + cand * 64);
            if (moved < current) {
                chunk_cost -= (current - moved);
                assignment[p] = cand;
            }
        }
        result.costTrace.push_back(chunk_cost);
    }
    result.centers = center_ids.size();
    return result;
}

} // namespace atscale
