/**
 * @file
 * Exec-mode streamcluster: a real online k-median local search over
 * random points, processed in chunks as PARSEC's streamcluster does,
 * with every point/centre access traced at simulated addresses.
 */

#ifndef ATSCALE_WORKLOADS_SC_STREAMCLUSTER_EXEC_HH
#define ATSCALE_WORKLOADS_SC_STREAMCLUSTER_EXEC_HH

#include <cstdint>
#include <vector>

#include "workloads/trace.hh"

namespace atscale
{

/** Result of a clustering run, for correctness checks. */
struct StreamclusterResult
{
    /** Final number of open centres. */
    std::size_t centers = 0;
    /** Total assignment cost after each chunk (non-increasing per chunk
     * as the local search accepts only improving moves). */
    std::vector<double> costTrace;
};

/**
 * Cluster `numPoints` random points of `dims` dimensions, streamed in
 * chunks of `chunkPoints`, opening centres with the online-facility-
 * location rule and applying improving reassignments.
 *
 * @param sink trace destination
 * @param pointBase simulated base of the point array (pointBytes apart)
 * @param centerBase simulated base of the centre table
 * @param pointBytes bytes per stored point
 */
StreamclusterResult
runStreamcluster(std::uint64_t numPoints, std::uint32_t dims,
                 std::uint64_t chunkPoints, std::uint64_t seed,
                 TraceSink &sink, Addr pointBase, Addr centerBase,
                 std::uint32_t pointBytes);

} // namespace atscale

#endif // ATSCALE_WORKLOADS_SC_STREAMCLUSTER_EXEC_HH
