#include "workloads/sc/streamcluster_workload.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "workloads/sc/streamcluster_exec.hh"
#include "workloads/trace.hh"

namespace atscale
{

namespace
{

class StreamclusterModelStream : public RefSource
{
  public:
    StreamclusterModelStream(Addr points, std::uint64_t numPoints,
                             Addr centers, std::uint64_t numCenters,
                             std::uint64_t seed)
        : points_(points), numPoints_(numPoints), centers_(centers),
          numCenters_(numCenters), rng_(seed)
    {
        batch_.reserve(64);
        // Instance-dependent chunk size and pass count: clustering
        // effort and the resident block vary with the random instance,
        // the source of the paper's footprint-uncorrelated scatter.
        passesPerChunk_ = 6 + mix64(seed) % 12;
        chunkPoints_ = 8192 + mix64(seed ^ 0xc1u) % 57344;
    }

    bool
    next(Ref &ref) override
    {
        while (pos_ >= batch_.size()) {
            batch_.clear();
            pos_ = 0;
            generate();
        }
        ref = batch_[pos_++];
        return true;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return wrongPathAddrAt(chunkBase_, rng);
    }

    // The chunk base is the only mutable wrongPathAddr input and fill()
    // has no side effects outside the stream, so the stream is
    // anchorable (lane-bufferable and recordable — see RefSource).
    bool supportsAnchors() const override { return true; }
    std::uint64_t wrongPathAnchor() const override { return chunkBase_; }

    Addr
    wrongPathAddrAt(std::uint64_t anchor, Rng &rng) override
    {
        // Mispredicted distance comparisons speculate into other chunk
        // points, sometimes far-away candidate points, or the centre
        // table — streamcluster's correct-path walks are so rare that
        // these dominate its initiated-walk mix (the paper's 57%).
        double u = rng.real();
        if (u < 0.5) {
            std::uint64_t chunk_len = std::min(chunkPoints_, numPoints_);
            std::uint64_t pt = (anchor + rng.below(chunk_len)) %
                               numPoints_;
            return points_ + pt * StreamclusterWorkload::pointBytes +
                   rng.below(8) * 64;
        }
        if (u < 0.8) {
            return points_ +
                   rng.below(numPoints_) * StreamclusterWorkload::pointBytes;
        }
        return centers_ + rng.below(numCenters_) * 64;
    }

  private:
    void
    push(Addr a, std::uint32_t gap, bool store = false)
    {
        batch_.push_back({a, gap, store});
    }

    void
    generate()
    {
        // Distance evaluation for one point of the current chunk.
        // Points are reached through a shuffled pointer array, so the
        // order within a chunk is random; whether that hurts depends on
        // how the instance's chunk size compares with TLB reach — the
        // source of streamcluster's large but footprint-uncorrelated AT
        // overhead (Table IV: R^2 = 0.12).
        std::uint64_t chunk_len = std::min(chunkPoints_, numPoints_);
        std::uint64_t point = chunkBase_ + rng_.below(chunk_len);
        Addr base = points_ + (point % numPoints_) *
                                  StreamclusterWorkload::pointBytes;
        for (std::uint32_t off = 0;
             off < StreamclusterWorkload::pointBytes; off += 64) {
            push(base + off, 3); // coordinate block, fused multiply-adds
        }
        push(centers_ + rng_.below(numCenters_) * 64, 2);
        if (rng_.chance(0.05))
            push(centers_ + rng_.below(numCenters_) * 64, 2, true);

        ++cursor_;
        if (cursor_ >= chunk_len) {
            cursor_ = 0;
            ++pass_;
            if (pass_ >= passesPerChunk_) {
                pass_ = 0;
                // Stream in the next chunk (cold sequential pages).
                chunkBase_ = (chunkBase_ + chunk_len) % numPoints_;
            }
        }
    }

    Addr points_;
    std::uint64_t numPoints_;
    Addr centers_;
    std::uint64_t numCenters_;
    Rng rng_;
    std::uint64_t chunkBase_ = 0;
    std::uint64_t cursor_ = 0;
    std::uint64_t pass_ = 0;
    std::uint64_t passesPerChunk_;
    std::uint64_t chunkPoints_;
    std::vector<Ref> batch_;
    std::size_t pos_ = 0;
};

} // namespace

WorkloadTraits
StreamclusterWorkload::traits() const
{
    // Dense FP loops: few branches, high MLP; but distance-comparison
    // branches that do mispredict speculate into far-away points.
    return {0.10, 0.015, 0.90, 0.8};
}

std::unique_ptr<RefSource>
StreamclusterWorkload::instantiate(AddressSpace &space,
                                   const WorkloadConfig &config)
{
    std::uint64_t points = std::max<std::uint64_t>(
        config.footprintBytes / pointBytes, 1024);
    std::uint64_t centers = 64 + mix64(config.seed ^ points) % 192;

    Addr point_base = space.mapRegion("points", points * pointBytes);
    Addr center_base = space.mapRegion("centers", centers * 64);

    if (config.mode == WorkloadMode::Exec) {
        fatal_if(config.footprintBytes > (1ull << 30),
                 "exec-mode streamcluster footprint too large; "
                 "use model mode");
        TraceSink sink;
        runStreamcluster(points, /*dims=*/128,
                         std::min<std::uint64_t>(points, 4096),
                         config.seed, sink, point_base, center_base,
                         pointBytes);
        return std::make_unique<TraceReplaySource>(sink.takeTrace());
    }

    return std::make_unique<StreamclusterModelStream>(
        point_base, points, center_base, centers,
        config.seed ^ mix64(points));
}

} // namespace atscale
