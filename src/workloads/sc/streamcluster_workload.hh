/**
 * @file
 * The streamcluster-rand workload (Table I: PARSEC streamcluster, online
 * k-median clustering over uniformly random points).
 *
 * streamcluster processes its input in fixed-size chunks: the working set
 * is one chunk plus a small centre table regardless of the total input
 * size. That is why the paper finds no clear relationship between its
 * memory footprint and AT overhead (Table IV: R^2 = 0.12) — the footprint
 * grows but the hot pages do not. Its wrong-path/aborted walk fraction is
 * nevertheless large (up to 57%): correct-path walks are rare (dense
 * sequential scans), so the speculative walks from mispredicted distance
 * comparisons dominate the initiated-walk mix.
 */

#ifndef ATSCALE_WORKLOADS_SC_STREAMCLUSTER_WORKLOAD_HH
#define ATSCALE_WORKLOADS_SC_STREAMCLUSTER_WORKLOAD_HH

#include "workloads/workload.hh"

namespace atscale
{

/** streamcluster + rand generator. */
class StreamclusterWorkload : public Workload
{
  public:
    std::string program() const override { return "streamcluster"; }
    std::string generator() const override { return "rand"; }
    WorkloadTraits traits() const override;
    bool supports(WorkloadMode) const override { return true; }

    std::unique_ptr<RefSource>
    instantiate(AddressSpace &space, const WorkloadConfig &config) override;

    /** Bytes per point (PARSEC default: 128-dim float). */
    static constexpr std::uint32_t pointBytes = 512;
    /** Points processed per chunk (fixed working set). */
    static constexpr std::uint64_t chunkPoints = 32768;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_SC_STREAMCLUSTER_WORKLOAD_HH
