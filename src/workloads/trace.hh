/**
 * @file
 * Tracing support for exec-mode workloads: a bounded trace sink, a
 * replaying RefSource, and a traced-array wrapper that records every
 * element access of a real data structure at its simulated virtual
 * address.
 */

#ifndef ATSCALE_WORKLOADS_TRACE_HH
#define ATSCALE_WORKLOADS_TRACE_HH

#include <cstdint>
#include <vector>

#include "cpu/ref_stream.hh"
#include "util/logging.hh"

namespace atscale
{

/**
 * Collects references emitted by an instrumented algorithm, up to a cap
 * (the algorithm keeps running; excess references are dropped, which
 * simply shortens the recorded window).
 */
class TraceSink
{
  public:
    explicit TraceSink(std::size_t maxRefs = 4u << 20) : maxRefs_(maxRefs)
    {
        trace_.reserve(std::min<std::size_t>(maxRefs_, 1u << 20));
    }

    /** Record a load of vaddr after `gap` non-memory instructions. */
    void
    load(Addr vaddr, std::uint32_t gap = 1)
    {
        record(vaddr, gap, false);
    }

    /** Record a store of vaddr after `gap` non-memory instructions. */
    void
    store(Addr vaddr, std::uint32_t gap = 1)
    {
        record(vaddr, gap, true);
    }

    /** The recorded trace. */
    const std::vector<Ref> &trace() const { return trace_; }
    std::vector<Ref> &&takeTrace() { return std::move(trace_); }

  private:
    void
    record(Addr vaddr, std::uint32_t gap, bool store)
    {
        if (trace_.size() < maxRefs_)
            trace_.push_back({vaddr, gap, store});
    }

    std::size_t maxRefs_;
    std::vector<Ref> trace_;
};

/**
 * Replays a recorded trace as an endless stream (wrapping around), with
 * wrong-path addresses drawn from the trace itself.
 */
class TraceReplaySource : public RefSource
{
  public:
    explicit TraceReplaySource(std::vector<Ref> trace)
        : trace_(std::move(trace))
    {
        fatal_if(trace_.empty(), "cannot replay an empty trace");
    }

    bool
    next(Ref &ref) override
    {
        ref = trace_[pos_];
        pos_ = (pos_ + 1) % trace_.size();
        return true;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return wrongPathAddrAt(pos_, rng);
    }

    // The replay cursor is the only mutable wrongPathAddr input and the
    // trace itself is fixed after construction, so the stream is
    // anchorable (lane-bufferable — see RefSource).
    bool supportsAnchors() const override { return true; }
    std::uint64_t wrongPathAnchor() const override { return pos_; }

    Addr
    wrongPathAddrAt(std::uint64_t anchor, Rng &rng) override
    {
        // Sample near the replay cursor: divergent paths touch what the
        // program is touching around now.
        std::size_t window = std::min<std::size_t>(trace_.size(), 4096);
        std::size_t idx = (static_cast<std::size_t>(anchor) +
                           trace_.size() - rng.below(window)) %
                          trace_.size();
        return trace_[idx].vaddr;
    }

    std::size_t traceLength() const { return trace_.size(); }

  private:
    std::vector<Ref> trace_;
    std::size_t pos_ = 0;
};

/**
 * A host-resident array whose element accesses are traced at simulated
 * addresses. The instrumentation records one reference per element load
 * or store, the granularity the paper's mem_uops counters see.
 */
template <typename T>
class TracedArray
{
  public:
    TracedArray() = default;

    /**
     * @param sink trace destination
     * @param simBase the array's base in the simulated address space
     * @param size element count
     */
    TracedArray(TraceSink &sink, Addr simBase, std::size_t size,
                T init = T())
        : sink_(&sink), base_(simBase), data_(size, init)
    {
    }

    /** Traced element read. */
    T
    get(std::size_t i, std::uint32_t gap = 1) const
    {
        sink_->load(base_ + i * sizeof(T), gap);
        return data_[i];
    }

    /** Traced element write. */
    void
    set(std::size_t i, const T &value, std::uint32_t gap = 1)
    {
        sink_->store(base_ + i * sizeof(T), gap);
        data_[i] = value;
    }

    /** Untraced access (initialization, verification). */
    T &raw(std::size_t i) { return data_[i]; }
    const T &raw(std::size_t i) const { return data_[i]; }

    std::size_t size() const { return data_.size(); }

  private:
    TraceSink *sink_ = nullptr;
    Addr base_ = 0;
    std::vector<T> data_;
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_TRACE_HH
