#include "workloads/workload.hh"

namespace atscale
{

std::vector<std::unique_ptr<RefSource>>
Workload::instantiateTenants(AddressSpace &space,
                             const WorkloadConfig &config,
                             std::uint32_t tenants)
{
    std::vector<std::unique_ptr<RefSource>> streams;
    streams.reserve(tenants);
    for (std::uint32_t t = 0; t < tenants; ++t) {
        WorkloadConfig tenant = config;
        // Tenant 0 keeps the caller's seed untouched: a 1-tenant
        // instantiation must be indistinguishable from instantiate().
        tenant.seed = config.seed + t * 0x9e3779b9ull;
        streams.push_back(instantiate(space, tenant));
    }
    return streams;
}

} // namespace atscale
