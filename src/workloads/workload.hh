/**
 * @file
 * Workload interface.
 *
 * A workload pairs a program with an input generator (the paper's
 * program-inputgenerator naming, Tables I & II) and can instantiate
 * itself at any target memory footprint. Instantiation reserves the
 * program's data regions in an AddressSpace and returns a reference
 * stream for the timing core.
 *
 * Two instantiation modes:
 *  - Exec: the real algorithm runs on real (host) data structures and its
 *    memory accesses are traced. Faithful, but footprint-limited by host
 *    RAM.
 *  - Model: a streaming generator statistically equivalent to the
 *    algorithm's access pattern, with topology derived from hash
 *    functions, materializing nothing. This is the substitution that
 *    lets the sweep reach the paper's ~600 GB footprints.
 */

#ifndef ATSCALE_WORKLOADS_WORKLOAD_HH
#define ATSCALE_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/core_params.hh"
#include "cpu/ref_stream.hh"
#include "vm/address_space.hh"

namespace atscale
{

/** How a workload instance produces its reference stream. */
enum class WorkloadMode
{
    /** Streaming access-pattern generator (any footprint). */
    Model,
    /** Real algorithm on host data structures, traced (small footprints). */
    Exec,
};

/** Parameters of one workload instantiation. */
struct WorkloadConfig
{
    /** Target data footprint in bytes (as measured in the 4 KiB config). */
    std::uint64_t footprintBytes = 256ull << 20;
    /** Instance seed (graph topology, key sequence, ...). */
    std::uint64_t seed = 1;
    WorkloadMode mode = WorkloadMode::Model;
    /**
     * Comma-separated per-tenant key-mix list for multi-tenant
     * instantiation ("zipfian,scan,churn"), cycled across tenants.
     * Empty = the workload's default mix. Single-tenant workloads
     * ignore it.
     */
    std::string tenantMix;
};

/**
 * A benchmark program + input generator pair.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Program name (e.g. "bc", "mcf"). */
    virtual std::string program() const = 0;

    /** Input generator name (e.g. "urand", "kron", "rand"). */
    virtual std::string generator() const = 0;

    /** The paper's program-generator workload name (e.g. "bc-urand"). */
    std::string
    name() const
    {
        return program() + "-" + generator();
    }

    /** Pipeline/speculation character of the program's code. */
    virtual WorkloadTraits traits() const = 0;

    /** True if the workload supports the given mode. */
    virtual bool supports(WorkloadMode mode) const = 0;

    /**
     * Reserve the workload's data regions in the address space and
     * return an endless reference stream over them.
     */
    virtual std::unique_ptr<RefSource>
    instantiate(AddressSpace &space, const WorkloadConfig &config) = 0;

    /**
     * Multi-tenant instantiation for the multi-core runner: reserve
     * regions and return one reference stream per tenant (tenant k
     * drives simulated core k). The default treats tenants as
     * independent instances in one space: tenant 0 is exactly
     * instantiate(space, config) — which is what makes a 1-tenant
     * shared system bit-identical to the single-core path — and tenants
     * 1..N-1 are instances with decorrelated seeds mapping their own
     * regions. Multi-tenant workloads (kvserver-mix) override this to
     * share one store across all tenants and honour config.tenantMix.
     */
    virtual std::vector<std::unique_ptr<RefSource>>
    instantiateTenants(AddressSpace &space, const WorkloadConfig &config,
                       std::uint32_t tenants);
};

} // namespace atscale

#endif // ATSCALE_WORKLOADS_WORKLOAD_HH
