/**
 * @file
 * Unit tests for the address space and its hugetlbfs-like backing policy.
 */

#include <gtest/gtest.h>

#include "vm/address_space.hh"

using namespace atscale;

class AddressSpaceTest : public ::testing::Test
{
  protected:
    PhysicalMemory mem;
    FrameAllocator alloc{64ull << 30};
};

TEST_F(AddressSpaceTest, TouchPopulatesLazily)
{
    AddressSpace space(mem, alloc, PageSize::Size4K);
    Addr base = space.mapRegion("data", 1 << 20);
    EXPECT_EQ(space.footprintBytes(), 0u);

    const Translation &t = space.touch(base + 0x1234);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pageSize, PageSize::Size4K);
    EXPECT_EQ(t.pageBase, base + 0x1000);
    EXPECT_EQ(space.footprintBytes(), pageSize4K);

    // Same page: idempotent.
    const Translation &again = space.touch(base + 0x1ff8);
    EXPECT_EQ(again.frame, t.frame);
    EXPECT_EQ(space.footprintBytes(), pageSize4K);

    // The page table agrees.
    Translation via_table = space.translate(base + 0x1234);
    ASSERT_TRUE(via_table.valid);
    EXPECT_EQ(via_table.frame, t.frame);
}

TEST_F(AddressSpaceTest, DistinctPagesGetDistinctFrames)
{
    AddressSpace space(mem, alloc, PageSize::Size4K);
    Addr base = space.mapRegion("data", 1 << 20);
    PhysAddr f1 = space.touch(base).frame;
    PhysAddr f2 = space.touch(base + pageSize4K).frame;
    EXPECT_NE(f1, f2);
    EXPECT_EQ(space.footprintBytes(), 2 * pageSize4K);
}

TEST_F(AddressSpaceTest, FindVmaAndGuards)
{
    AddressSpace space(mem, alloc, PageSize::Size4K);
    Addr a = space.mapRegion("a", 1 << 20);
    Addr b = space.mapRegion("b", 1 << 20);
    ASSERT_NE(space.findVma(a), nullptr);
    EXPECT_EQ(space.findVma(a)->name, "a");
    EXPECT_EQ(space.findVma(b)->name, "b");
    EXPECT_EQ(space.findVma(b - 1), nullptr); // guard gap
    EXPECT_EQ(space.findVma(0), nullptr);
    EXPECT_GT(b, a + (1 << 20));
}

TEST_F(AddressSpaceTest, ReservedBytesAccumulate)
{
    AddressSpace space(mem, alloc, PageSize::Size4K);
    space.mapRegion("a", 123);
    space.mapRegion("b", 1 << 20);
    EXPECT_EQ(space.reservedBytes(), 123u + (1 << 20));
}

TEST_F(AddressSpaceTest, SuperpageRegionsAreAlignedAndIsolated)
{
    AddressSpace space(mem, alloc, PageSize::Size1G);
    // Mixed sizes: big region gets 1G pages, small ones fall back.
    Addr small = space.mapRegion("small", 300 << 20);
    Addr big = space.mapRegion("big", 3ull << 30);
    Addr tail = space.mapRegion("tail", 100 << 20);

    EXPECT_EQ(space.findVma(small)->effective, PageSize::Size2M);
    EXPECT_EQ(space.findVma(big)->effective, PageSize::Size1G);
    EXPECT_EQ(space.findVma(tail)->effective, PageSize::Size2M);
    EXPECT_TRUE(isAligned(big, pageSize1G));

    // Touching the big region's last byte must not collide with tail:
    // its final 1G page extends past the region end, but the next
    // region starts beyond it.
    space.touch(big + (3ull << 30) - 1);
    space.touch(tail);
    EXPECT_EQ(space.translate(tail).pageSize, PageSize::Size2M);
}

TEST_F(AddressSpaceTest, FootprintCountsEffectivePageSize)
{
    AddressSpace space(mem, alloc, PageSize::Size2M);
    Addr base = space.mapRegion("data", 64ull << 20);
    space.touch(base + 1);
    EXPECT_EQ(space.footprintBytes(), pageSize2M);
}

TEST_F(AddressSpaceTest, TouchOutsideRegionsIsFatal)
{
    AddressSpace space(mem, alloc, PageSize::Size4K);
    space.mapRegion("data", 1 << 20);
    EXPECT_DEATH(space.touch(0x10), "unmapped");
}

TEST_F(AddressSpaceTest, ZeroSizeRegionIsFatal)
{
    AddressSpace space(mem, alloc, PageSize::Size4K);
    EXPECT_DEATH(space.mapRegion("empty", 0), "zero size");
}

/**
 * Parameterized sweep of the backing fallback rule (Section III-B):
 * requested size x region size -> effective size.
 */
struct BackingCase
{
    PageSize requested;
    std::uint64_t bytes;
    PageSize expected;
};

class BackingPolicy : public ::testing::TestWithParam<BackingCase>
{
};

TEST_P(BackingPolicy, FallbackRule)
{
    const BackingCase &c = GetParam();
    EXPECT_EQ(AddressSpace::effectiveBacking(c.requested, c.bytes),
              c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, BackingPolicy,
    ::testing::Values(
        // 4K requests are always honoured.
        BackingCase{PageSize::Size4K, 100, PageSize::Size4K},
        BackingCase{PageSize::Size4K, 10ull << 30, PageSize::Size4K},
        // 2M requests fall back below 2 MiB.
        BackingCase{PageSize::Size2M, pageSize2M - 1, PageSize::Size4K},
        BackingCase{PageSize::Size2M, pageSize2M, PageSize::Size2M},
        BackingCase{PageSize::Size2M, 10ull << 30, PageSize::Size2M},
        // 1G requests fall back below 1 GiB (the paper's anomaly), and
        // all the way to 4K for tiny regions.
        BackingCase{PageSize::Size1G, pageSize1G - 1, PageSize::Size2M},
        BackingCase{PageSize::Size1G, pageSize1G, PageSize::Size1G},
        BackingCase{PageSize::Size1G, pageSize2M - 1, PageSize::Size4K}));
