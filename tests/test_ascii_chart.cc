/**
 * @file
 * Unit tests for the terminal chart renderers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_chart.hh"

using namespace atscale;

TEST(ScatterChart, RendersSeriesAndLegend)
{
    ScatterChart chart("T", "x", "y");
    int a = 0;
    chart.addSeries("alpha");
    chart.addSeries("beta");
    chart.point(a, 1.0, 1.0);
    chart.point(a, 10.0, 2.0);
    chart.point(1, 5.0, 1.5);
    std::ostringstream os;
    chart.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("T"), std::string::npos);
    // Both glyphs appear in the grid.
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(ScatterChart, EmptyChartSaysNoData)
{
    ScatterChart chart("empty", "x", "y");
    chart.addSeries("s");
    std::ostringstream os;
    chart.print(os);
    EXPECT_NE(os.str().find("no data"), std::string::npos);
}

TEST(ScatterChart, LogXHandlesWideRanges)
{
    ScatterChart chart("log", "footprint", "overhead");
    chart.logX(true);
    chart.addSeries("w");
    chart.point(0, 256e6, 0.1);
    chart.point(0, 600e9, 0.5);
    std::ostringstream os;
    chart.print(os); // must not crash or produce inf
    EXPECT_EQ(os.str().find("inf"), std::string::npos);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(ScatterChart, SinglePointDoesNotDivideByZero)
{
    ScatterChart chart("one", "x", "y");
    chart.addSeries("s");
    chart.point(0, 3.0, 4.0);
    std::ostringstream os;
    chart.print(os);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(BandChart, ColumnsNormalizeAndRender)
{
    BandChart chart("bands", "footprint");
    chart.addBand("retired");
    chart.addBand("wrong-path");
    chart.addBand("aborted");
    chart.column("1G", {0.8, 0.1, 0.1});
    chart.column("16G", {2.0, 1.0, 1.0}); // unnormalized on purpose
    std::ostringstream os;
    chart.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("retired"), std::string::npos);
    EXPECT_NE(out.find("aborted"), std::string::npos);
    EXPECT_NE(out.find("16G"), std::string::npos);
}

TEST(BandChart, MismatchedFractionCountDies)
{
    BandChart chart("bad", "x");
    chart.addBand("a");
    chart.addBand("b");
    EXPECT_DEATH(chart.column("c", {1.0}), "fractions");
}

TEST(BandChart, EmptyRendersNoData)
{
    BandChart chart("empty", "x");
    std::ostringstream os;
    chart.print(os);
    EXPECT_NE(os.str().find("no data"), std::string::npos);
}
