/**
 * @file
 * Differential suite for vectorized batch translation.
 *
 * Mmu::translateBatch promises to be bit-identical to calling
 * translate() once per element in order — not just equal results, but
 * equal side effects: TLB/PSC contents, recency, replacement metadata,
 * statistics, demand-paging state, and walker-driven cache traffic.
 * The radix scheme backs that promise with equal-page run coalescing
 * (RadixScheme::translateBatch), so this suite is what keeps the O(1)
 * replay honest.
 *
 * Two surfaces are proven:
 *
 *  (A) MMU-level: the same reference sequence driven scalar vs batched
 *      (256-reference spans, the core's fetch chunk) must produce, for
 *      every reference, an identical MmuResult, and must leave identical
 *      translation-structure and cache-hierarchy state — across
 *      3 workloads x 3 seeds x all 4 translation schemes, both for
 *      plain demand translations and for speculative requests under a
 *      starvation walk budget (which forces the non-resident fallback).
 *
 *  (B) Run-level: ATSCALE_NO_BATCH=1 disables the core's chunk
 *      screening (host-side prefetch of the structures a refilled chunk
 *      will probe); a full simulation with screening on and off must
 *      export identical counters, state hashes, and JSON bytes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/platform.hh"
#include "core/run_export.hh"
#include "workloads/registry.hh"

using namespace atscale;

namespace
{

/** Workloads spanning the translation-relevant access-pattern space. */
const char *const kWorkloads[] = {
    "memcached-uniform", // uniform random over a big hash space
    "pr-kron",           // skewed (Zipf hub) graph scan
    "mcf-rand",          // pointer chasing (dependent random reads)
};

const std::uint64_t kSeeds[] = {1, 7, 1234};

/** Every registered translation scheme; the non-radix ones take the
 * default scalar loop, so for them this suite is an interface proof. */
const char *const kSchemes[] = {"radix", "hashed", "cache_tlb", "no_vm"};

constexpr Count kRefs = 48 * refStreamChunk;     // demand phase
constexpr Count kSpecRefs = 16 * refStreamChunk; // starved speculative phase

/** One platform plus a same-config stream, ready to be driven by hand. */
struct Rig
{
    std::unique_ptr<Workload> workload;
    std::unique_ptr<Platform> platform;
    std::unique_ptr<RefSource> stream;

    Rig(const std::string &workloadName, std::uint64_t seed,
        const std::string &scheme)
    {
        workload = createWorkload(workloadName);
        PlatformParams params;
        params.mmu.scheme = scheme;
        platform = std::make_unique<Platform>(params, PageSize::Size4K,
                                              workload->traits(),
                                              seed * 0x9e37 + 7);
        WorkloadConfig wl_config;
        wl_config.footprintBytes = 1ull << 24;
        wl_config.seed = seed;
        stream = workload->instantiate(platform->space, wl_config);
    }

    std::vector<Addr>
    fetch(Count refs)
    {
        std::vector<Addr> vaddrs;
        vaddrs.reserve(refs);
        std::vector<Ref> chunk(refStreamChunk);
        while (vaddrs.size() < refs) {
            Count got = stream->fill(chunk.data(), refStreamChunk);
            if (got == 0)
                break;
            for (Count i = 0; i < got; ++i)
                vaddrs.push_back(chunk[i].vaddr);
        }
        return vaddrs;
    }
};

/** Everything a divergent batch replay could corrupt. */
struct MmuState
{
    std::uint64_t mmuHash = 0;
    std::uint64_t cacheHash = 0;
    std::uint64_t footprint = 0;
};

MmuState
stateOf(const Platform &platform)
{
    MmuState state;
    state.mmuHash = platform.mmu.stateHash();
    state.cacheHash = platform.hierarchy.stateHash();
    state.footprint = platform.space.footprintBytes();
    return state;
}

void
expectSameResult(const MmuResult &scalar, const MmuResult &batch,
                 std::size_t i)
{
    ASSERT_EQ(scalar.tlbLevel, batch.tlbLevel) << "ref " << i;
    EXPECT_EQ(scalar.tlbExtraLatency, batch.tlbExtraLatency) << "ref " << i;
    EXPECT_EQ(scalar.pageSize, batch.pageSize) << "ref " << i;
    EXPECT_EQ(scalar.schemeExtraCycles, batch.schemeExtraCycles)
        << "ref " << i;
    if (scalar.tlbLevel == TlbLevel::Miss) {
        EXPECT_EQ(scalar.walk().cycles, batch.walk().cycles) << "ref " << i;
        EXPECT_EQ(scalar.walk().ptwAccesses, batch.walk().ptwAccesses)
            << "ref " << i;
    }
}

class BatchDiff
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::uint64_t, const char *>>
{
};

} // namespace

TEST_P(BatchDiff, BatchEqualsScalarSequence)
{
    const auto [workloadName, seed, scheme] = GetParam();

    Rig scalar(workloadName, seed, scheme);
    Rig batch(workloadName, seed, scheme);

    // Same workload, same seeds: both rigs must see the same addresses,
    // or the comparison below compares nothing.
    std::vector<Addr> vaddrs = scalar.fetch(kRefs);
    std::vector<Addr> check = batch.fetch(kRefs);
    ASSERT_EQ(vaddrs, check);
    ASSERT_GE(vaddrs.size(), refStreamChunk);

    // Phase 1: demand translations (page things in, walk, install).
    std::vector<MmuResult> scalar_out(vaddrs.size());
    std::vector<MmuResult> batch_out(vaddrs.size());
    for (std::size_t i = 0; i < vaddrs.size(); ++i)
        scalar_out[i] = scalar.platform->mmu.translate(vaddrs[i]);
    for (std::size_t i = 0; i < vaddrs.size(); i += refStreamChunk) {
        std::size_t n = std::min<std::size_t>(refStreamChunk,
                                              vaddrs.size() - i);
        batch.platform->mmu.translateBatch(
            std::span<const Addr>(vaddrs.data() + i, n),
            std::span<MmuResult>(batch_out.data() + i, n));
    }
    for (std::size_t i = 0; i < vaddrs.size(); ++i)
        expectSameResult(scalar_out[i], batch_out[i], i);

    MmuState scalar_state = stateOf(*scalar.platform);
    MmuState batch_state = stateOf(*batch.platform);
    EXPECT_EQ(scalar_state.mmuHash, batch_state.mmuHash);
    EXPECT_EQ(scalar_state.cacheHash, batch_state.cacheHash);
    EXPECT_EQ(scalar_state.footprint, batch_state.footprint);

    // Phase 2: speculative requests under a starvation walk budget.
    // Most misses abort without installing, so equal-page runs are NOT
    // first-level resident and the batch path must take its scalar
    // fallback — the replay guard, not the replay, is under test.
    std::vector<Addr> spec_vaddrs = scalar.fetch(kSpecRefs);
    ASSERT_EQ(spec_vaddrs, batch.fetch(kSpecRefs));
    scalar_out.assign(spec_vaddrs.size(), MmuResult{});
    batch_out.assign(spec_vaddrs.size(), MmuResult{});
    const Cycles kBudget = 1;
    for (std::size_t i = 0; i < spec_vaddrs.size(); ++i)
        scalar_out[i] =
            scalar.platform->mmu.translate(spec_vaddrs[i], true, kBudget);
    for (std::size_t i = 0; i < spec_vaddrs.size(); i += refStreamChunk) {
        std::size_t n = std::min<std::size_t>(refStreamChunk,
                                              spec_vaddrs.size() - i);
        batch.platform->mmu.translateBatch(
            std::span<const Addr>(spec_vaddrs.data() + i, n),
            std::span<MmuResult>(batch_out.data() + i, n), true, kBudget);
    }
    for (std::size_t i = 0; i < spec_vaddrs.size(); ++i)
        expectSameResult(scalar_out[i], batch_out[i], i);

    scalar_state = stateOf(*scalar.platform);
    batch_state = stateOf(*batch.platform);
    EXPECT_EQ(scalar_state.mmuHash, batch_state.mmuHash);
    EXPECT_EQ(scalar_state.cacheHash, batch_state.cacheHash);
    EXPECT_EQ(scalar_state.footprint, batch_state.footprint);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BatchDiff,
    ::testing::Combine(::testing::ValuesIn(kWorkloads),
                       ::testing::ValuesIn(kSeeds),
                       ::testing::ValuesIn(kSchemes)),
    [](const ::testing::TestParamInfo<BatchDiff::ParamType> &suite_info) {
        std::string name = std::get<0>(suite_info.param);
        name += "_s" + std::to_string(std::get<1>(suite_info.param));
        name += "_";
        name += std::get<2>(suite_info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(BatchDiff, EmptyAndSingletonSpansTouchNothingExtra)
{
    Rig rig("memcached-uniform", 3, "radix");
    std::vector<Addr> vaddrs = rig.fetch(refStreamChunk);
    std::vector<MmuResult> out(refStreamChunk);

    rig.platform->mmu.translateBatch(
        std::span<const Addr>(vaddrs.data(), refStreamChunk),
        std::span<MmuResult>(out.data(), refStreamChunk));
    MmuState before = stateOf(*rig.platform);

    // Empty span: no state may move.
    rig.platform->mmu.translateBatch(std::span<const Addr>(),
                                     std::span<MmuResult>());
    MmuState after = stateOf(*rig.platform);
    EXPECT_EQ(before.mmuHash, after.mmuHash);
    EXPECT_EQ(before.cacheHash, after.cacheHash);

    // Singleton span == one translate() call.
    Rig twin("memcached-uniform", 3, "radix");
    std::vector<Addr> twin_vaddrs = twin.fetch(refStreamChunk);
    ASSERT_EQ(vaddrs, twin_vaddrs);
    std::vector<MmuResult> twin_out(refStreamChunk);
    twin.platform->mmu.translateBatch(
        std::span<const Addr>(twin_vaddrs.data(), refStreamChunk),
        std::span<MmuResult>(twin_out.data(), refStreamChunk));

    MmuResult single = rig.platform->mmu.translate(vaddrs[0]);
    std::vector<MmuResult> single_batch(1);
    twin.platform->mmu.translateBatch(
        std::span<const Addr>(twin_vaddrs.data(), 1),
        std::span<MmuResult>(single_batch.data(), 1));
    expectSameResult(single, single_batch[0], 0);
    EXPECT_EQ(rig.platform->mmu.stateHash(), twin.platform->mmu.stateHash());
}

namespace
{

/** Full-simulation state, mirroring tests/test_fastpath_diff.cc. */
struct RunState
{
    CounterSet counters;
    std::uint64_t mmuHash = 0;
    std::uint64_t cacheHash = 0;
    std::string json;
};

RunState
simulateScreened(const std::string &workloadName, std::uint64_t seed,
                 bool screened)
{
    // Core reads ATSCALE_NO_BATCH once at construction.
    if (screened)
        ::unsetenv("ATSCALE_NO_BATCH");
    else
        ::setenv("ATSCALE_NO_BATCH", "1", 1);

    RunSpec spec;
    spec.workload = workloadName;
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 60'000;
    spec.seed = seed;

    std::unique_ptr<Workload> workload = createWorkload(workloadName);
    Platform platform(PlatformParams{}, spec.pageSize, workload->traits(),
                      spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);

    platform.core.run(*stream, spec.warmupRefs);
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    platform.core.run(*stream, spec.measureRefs);

    RunState state;
    state.counters = platform.core.counters();
    state.mmuHash = platform.mmu.stateHash();
    state.cacheHash = platform.hierarchy.stateHash();

    RunResult result;
    result.spec = spec;
    result.counters = state.counters;
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();
    std::ostringstream os;
    writeRunResultJson(os, result);
    state.json = os.str();

    ::unsetenv("ATSCALE_NO_BATCH");
    return state;
}

} // namespace

TEST(BatchDiff, ChunkScreeningIsInvisible)
{
    for (std::uint64_t seed : {1ull, 7ull}) {
        RunState on = simulateScreened("pr-kron", seed, true);
        RunState off = simulateScreened("pr-kron", seed, false);
        on.counters.forEach(
            [&](EventId id, const char *name, Count value) {
                EXPECT_EQ(value, off.counters.get(id))
                    << name << " seed " << seed;
            });
        EXPECT_EQ(on.mmuHash, off.mmuHash) << "seed " << seed;
        EXPECT_EQ(on.cacheHash, off.cacheHash) << "seed " << seed;
        EXPECT_EQ(on.json, off.json) << "seed " << seed;
    }
}
