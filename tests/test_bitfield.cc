/**
 * @file
 * Unit tests for util/bitfield.hh.
 */

#include <gtest/gtest.h>

#include "util/bitfield.hh"

using namespace atscale;

TEST(Bitfield, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xff00ull, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xdeadbeefull, 31, 16), 0xdeadull);
    EXPECT_EQ(bits(0xdeadbeefull, 15, 0), 0xbeefull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
    EXPECT_EQ(bits(0b1010ull, 3, 3), 1ull);
}

TEST(Bitfield, BitExtractsSingleBit)
{
    EXPECT_EQ(bit(0b100ull, 2), 1ull);
    EXPECT_EQ(bit(0b100ull, 1), 0ull);
    EXPECT_EQ(bit(1ull << 63, 63), 1ull);
}

TEST(Bitfield, InsertBitsRoundTripsWithBits)
{
    std::uint64_t v = insertBits(0, 51, 12, 0xabcdeull);
    EXPECT_EQ(bits(v, 51, 12), 0xabcdeull);
    // Other bits untouched.
    std::uint64_t w = insertBits(~0ull, 15, 8, 0);
    EXPECT_EQ(bits(w, 7, 0), 0xffull);
    EXPECT_EQ(bits(w, 15, 8), 0ull);
    EXPECT_EQ(bits(w, 63, 16), bits(~0ull, 63, 16));
}

TEST(Bitfield, PowerOfTwoPredicates)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(Bitfield, Logarithms)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(4096), 12);
    EXPECT_EQ(floorLog2(4097), 12);
    EXPECT_EQ(ceilLog2(4096), 12);
    EXPECT_EQ(ceilLog2(4097), 13);
    EXPECT_EQ(floorLog2(~0ull), 63);
}

TEST(Bitfield, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_TRUE(isAligned(0x200000, pageSize2M));
    EXPECT_FALSE(isAligned(0x201000, pageSize2M));
}

TEST(Bitfield, PtIndexMatchesX86Layout)
{
    // Bits 20:12 are the PT index, 29:21 the PD index, 38:30 the PDPT
    // index, 47:39 the PML4 index.
    Addr va = (0x1a5ull << 39) | (0x0f3ull << 30) | (0x123ull << 21) |
              (0x0abull << 12) | 0x567;
    EXPECT_EQ(ptIndex(va, 3), 0x1a5);
    EXPECT_EQ(ptIndex(va, 2), 0x0f3);
    EXPECT_EQ(ptIndex(va, 1), 0x123);
    EXPECT_EQ(ptIndex(va, 0), 0x0ab);
}

/** Property sweep: alignUp/alignDown bracket the value for many inputs. */
class AlignProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AlignProperty, BracketsValue)
{
    std::uint64_t align = GetParam();
    for (std::uint64_t v = 0; v < 4 * align; v += align / 4 + 1) {
        EXPECT_LE(alignDown(v, align), v);
        EXPECT_GE(alignUp(v, align), v);
        EXPECT_TRUE(isAligned(alignDown(v, align), align));
        EXPECT_TRUE(isAligned(alignUp(v, align), align));
        EXPECT_LT(v - alignDown(v, align), align);
        EXPECT_LT(alignUp(v, align) - v, align);
    }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignProperty,
                         ::testing::Values(1ull << 3, 1ull << 12, 1ull << 21,
                                           1ull << 30));
