/**
 * @file
 * Unit and invariant tests for the timing core, including the Table VI
 * walk-outcome identities on live counter data.
 */

#include <gtest/gtest.h>

#include "core/platform.hh"
#include "perf/derived.hh"

using namespace atscale;

namespace
{

/** A controllable synthetic stream over one mapped region. */
class SyntheticStream : public RefSource
{
  public:
    SyntheticStream(Addr base, std::uint64_t bytes, double randomFraction,
                    std::uint64_t seed = 9)
        : base_(base), bytes_(bytes), randomFraction_(randomFraction),
          rng_(seed)
    {
    }

    bool
    next(Ref &ref) override
    {
        Addr offset;
        if (rng_.chance(randomFraction_)) {
            offset = rng_.below(bytes_) & ~7ull;
        } else {
            cursor_ = (cursor_ + 64) % bytes_;
            offset = cursor_;
        }
        ref.vaddr = base_ + offset;
        ref.instGap = 2;
        ref.isStore = rng_.chance(0.25);
        return true;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return base_ + (rng.below(bytes_) & ~7ull);
    }

  private:
    Addr base_;
    std::uint64_t bytes_;
    double randomFraction_;
    Rng rng_;
    std::uint64_t cursor_ = 0;
};

struct Rig
{
    explicit Rig(PageSize backing, std::uint64_t bytes = 256ull << 20,
                 double random_fraction = 0.5, std::uint64_t seed = 42)
        : platform(PlatformParams{}, backing, WorkloadTraits{}, seed)
    {
        base = platform.space.mapRegion("data", bytes);
        stream = std::make_unique<SyntheticStream>(base, bytes,
                                                   random_fraction);
    }

    Platform platform;
    Addr base = 0;
    std::unique_ptr<SyntheticStream> stream;
};

} // namespace

TEST(Core, CountsInstructionsAndAccesses)
{
    Rig rig(PageSize::Size4K);
    Count done = rig.platform.core.run(*rig.stream, 10'000);
    EXPECT_EQ(done, 10'000u);
    const CounterSet &c = rig.platform.core.counters();
    EXPECT_EQ(totalAccesses(c), 10'000u);
    // Every ref carries instGap 2 + itself.
    EXPECT_EQ(c.get(EventId::InstRetired), 30'000u);
    EXPECT_GT(c.get(EventId::CpuClkUnhalted), 0u);
}

TEST(Core, TableVIInvariantsHold)
{
    Rig rig(PageSize::Size4K);
    rig.platform.core.run(*rig.stream, 200'000);
    WalkOutcomes o = walkOutcomes(rig.platform.core.counters());
    EXPECT_GT(o.initiated, 0u);
    EXPECT_LE(o.completed, o.initiated);
    EXPECT_LE(o.retired, o.completed);
    // aborted and wrongPath are the (non-negative) differences.
    EXPECT_EQ(o.aborted + o.completed, o.initiated);
    EXPECT_EQ(o.wrongPath + o.retired, o.completed);
}

TEST(Core, WalkCountersAreConsistent)
{
    Rig rig(PageSize::Size4K);
    rig.platform.core.run(*rig.stream, 100'000);
    const CounterSet &c = rig.platform.core.counters();
    // Walk durations only exist if walks happened, and imply PTW loads.
    Count walks = totalWalksInitiated(c);
    Count ptw_loads = c.get(EventId::PageWalkerLoadsDtlbL1) +
                      c.get(EventId::PageWalkerLoadsDtlbL2) +
                      c.get(EventId::PageWalkerLoadsDtlbL3) +
                      c.get(EventId::PageWalkerLoadsDtlbMemory);
    EXPECT_GT(walks, 0u);
    EXPECT_GE(ptw_loads, walks / 2); // aborted walks may do 0 loads
    EXPECT_LE(ptw_loads, walks * 4); // a 4K walk loads at most 4 PTEs
    EXPECT_GT(totalWalkCycles(c), 0u);
    // The walker agrees with the counter bank.
    EXPECT_EQ(rig.platform.mmu.walker().walksInitiated(), walks);
}

TEST(Core, DeterministicForSameSeed)
{
    Rig a(PageSize::Size4K);
    Rig b(PageSize::Size4K);
    a.platform.core.run(*a.stream, 50'000);
    b.platform.core.run(*b.stream, 50'000);
    for (int i = 0; i < numEvents; ++i) {
        auto id = static_cast<EventId>(i);
        EXPECT_EQ(a.platform.core.counters().get(id),
                  b.platform.core.counters().get(id))
            << eventName(id);
    }
}

TEST(Core, SuperpagesReduceWalksAndCycles)
{
    Rig small(PageSize::Size4K);
    Rig big(PageSize::Size2M);
    small.platform.core.run(*small.stream, 300'000);
    big.platform.core.run(*big.stream, 300'000);

    const CounterSet &c4k = small.platform.core.counters();
    const CounterSet &c2m = big.platform.core.counters();
    EXPECT_LT(totalWalksInitiated(c2m), totalWalksInitiated(c4k) / 4);
    EXPECT_LT(c2m.get(EventId::CpuClkUnhalted),
              c4k.get(EventId::CpuClkUnhalted));
    // Identical instruction streams.
    EXPECT_EQ(c2m.get(EventId::InstRetired), c4k.get(EventId::InstRetired));
}

TEST(Core, ResetCountersKeepsWarmState)
{
    Rig rig(PageSize::Size4K, 64ull << 20, 0.0); // purely sequential
    rig.platform.core.run(*rig.stream, 50'000);
    rig.platform.core.resetCounters();
    EXPECT_EQ(rig.platform.core.cycles(), 0u);
    rig.platform.core.run(*rig.stream, 50'000);
    // Second window over already-touched pages: mostly TLB hits, few
    // walks compared to accesses.
    const CounterSet &c = rig.platform.core.counters();
    EXPECT_LT(totalWalksInitiated(c), totalAccesses(c) / 10);
}

TEST(Core, SpeculationProducesWrongPathWalks)
{
    WorkloadTraits spicy;
    spicy.branchesPerInstr = 0.2;
    spicy.mispredictRate = 0.05;
    Platform platform(PlatformParams{}, PageSize::Size4K, spicy, 1);
    Addr base = platform.space.mapRegion("data", 512ull << 20);
    SyntheticStream stream(base, 512ull << 20, 0.8);
    platform.core.run(stream, 300'000);

    WalkOutcomes o = walkOutcomes(platform.core.counters());
    EXPECT_GT(o.wrongPath + o.aborted, 0u);
    EXPECT_GT(platform.core.counters().get(
                  EventId::BrMispRetiredAllBranches),
              0u);
}

TEST(Core, MachineClearsOccurUnderPressure)
{
    Rig rig(PageSize::Size4K, 2ull << 30, 0.95);
    rig.platform.core.run(*rig.stream, 500'000);
    EXPECT_GT(rig.platform.core.counters().get(EventId::MachineClearsCount),
              0u);
}

TEST(Core, BranchCountTracksDensity)
{
    Rig rig(PageSize::Size4K);
    rig.platform.core.run(*rig.stream, 100'000);
    const CounterSet &c = rig.platform.core.counters();
    double per_instr =
        static_cast<double>(c.get(EventId::BrInstRetiredAllBranches)) /
        static_cast<double>(c.get(EventId::InstRetired));
    EXPECT_NEAR(per_instr, WorkloadTraits{}.branchesPerInstr, 0.01);
}
