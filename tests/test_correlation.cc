/**
 * @file
 * Unit tests for Pearson and Spearman correlation (Table V statistics).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/correlation.hh"

using namespace atscale;

TEST(Pearson, PerfectLinearCorrelation)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> neg{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, KnownValue)
{
    // Hand-computed example.
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{1, 3, 2, 4};
    // cov = 2.5/3..., direct formula: r = 0.8
    EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
}

TEST(Pearson, DegenerateInputsReturnZero)
{
    EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1.0}, {1.0}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Ranks, SimpleOrdering)
{
    std::vector<double> ranks = averageRanks({30, 10, 20});
    EXPECT_DOUBLE_EQ(ranks[0], 3.0);
    EXPECT_DOUBLE_EQ(ranks[1], 1.0);
    EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(Ranks, TiesGetAverageRank)
{
    std::vector<double> ranks = averageRanks({1, 2, 2, 3});
    EXPECT_DOUBLE_EQ(ranks[0], 1.0);
    EXPECT_DOUBLE_EQ(ranks[1], 2.5);
    EXPECT_DOUBLE_EQ(ranks[2], 2.5);
    EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Spearman, InvariantUnderMonotoneTransforms)
{
    std::vector<double> x{1, 2, 3, 4, 5, 6};
    std::vector<double> y;
    for (double v : x)
        y.push_back(std::exp(v)); // nonlinear but monotone
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    // Pearson is NOT 1 for this pair — that is the whole point of using
    // Spearman in Table V.
    EXPECT_LT(pearson(x, y), 0.95);
}

TEST(Spearman, PerfectInversion)
{
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{9, 7, 5, 3};
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(Spearman, KnownValueWithTies)
{
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{1, 1, 2, 3};
    double rho = spearman(x, y);
    EXPECT_GT(rho, 0.9);
    EXPECT_LT(rho, 1.0);
}

TEST(CorrelationDeathTest, SizeMismatch)
{
    EXPECT_DEATH(pearson({1.0}, {1.0, 2.0}), "mismatch");
}
