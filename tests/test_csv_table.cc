/**
 * @file
 * Unit tests for the CSV writer and table printer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hh"
#include "util/table.hh"

using namespace atscale;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(Csv, InactiveWriterIsNoOp)
{
    CsvWriter w;
    EXPECT_FALSE(w.active());
    w.rowv("a", 1, 2.5); // must not crash
}

TEST(Csv, WritesRowsAndEscapes)
{
    std::string path = ::testing::TempDir() + "/atscale_csv_test.csv";
    {
        CsvWriter w(path);
        ASSERT_TRUE(w.active());
        w.rowv("workload", "footprint", "overhead");
        w.rowv("bc-urand", 1024, 0.25);
        w.row({"has,comma", "has\"quote", "plain"});
    }
    std::string content = slurp(path);
    EXPECT_NE(content.find("workload,footprint,overhead\n"),
              std::string::npos);
    EXPECT_NE(content.find("bc-urand,1024,0.25\n"), std::string::npos);
    EXPECT_NE(content.find("\"has,comma\",\"has\"\"quote\",plain\n"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Csv, OutputPathHonoursEnvironment)
{
    unsetenv("ATSCALE_OUT_DIR");
    EXPECT_EQ(outputPath("x.csv"), "");
    setenv("ATSCALE_OUT_DIR", "/tmp/somewhere", 1);
    EXPECT_EQ(outputPath("x.csv"), "/tmp/somewhere/x.csv");
    unsetenv("ATSCALE_OUT_DIR");
}

TEST(Table, RendersHeaderSeparatorAndAlignment)
{
    TablePrinter t("Title");
    t.header({"col", "value"});
    t.rowv("short", 1);
    t.rowv("a-much-longer-cell", 123456);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("col"), std::string::npos);
    EXPECT_NE(out.find("a-much-longer-cell"), std::string::npos);
    EXPECT_NE(out.find("123456"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, HandlesRaggedRows)
{
    TablePrinter t;
    t.header({"a", "b", "c"});
    t.rowv("only-one");
    std::ostringstream os;
    t.print(os); // must not crash
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Format, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(-0.5, 3), "-0.500");
}

TEST(Format, FmtBytes)
{
    EXPECT_EQ(fmtBytes(512), "512.0B");
    EXPECT_EQ(fmtBytes(1024), "1.0KiB");
    EXPECT_EQ(fmtBytes(1536), "1.5KiB");
    EXPECT_EQ(fmtBytes(1ull << 20), "1.0MiB");
    EXPECT_EQ(fmtBytes(1ull << 30), "1.0GiB");
    EXPECT_EQ(fmtBytes(600ull << 30), "600.0GiB");
    EXPECT_EQ(fmtBytes(2ull << 40), "2.0TiB");
}
