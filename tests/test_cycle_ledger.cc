/**
 * @file
 * The cycle-conservation ledger (src/obs/ledger.hh): unit tests for the
 * conservation arithmetic in every build type, plus — in debug builds,
 * where the Core hooks are compiled in — end-to-end checks that a real
 * simulation's cycles are fully attributed across Eq-1 components and
 * that the multicore coherence component matches the SharedSystem's own
 * shootdown account. The deliberate-orphan tests are the runtime twin
 * of lint rule R10's bad fixture: a charge that bypasses the
 * decomposition must be caught.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/multicore.hh"
#include "core/platform.hh"
#include "obs/ledger.hh"
#include "sys/shared_system.hh"
#include "workloads/registry.hh"

using namespace atscale;

namespace
{

/** Mirror of the Core pattern: an accumulator plus its ledger twin. */
struct Mirror
{
    double acc = 0.0;
    CycleLedger ledger;

    void
    charge(CycleComponent component, double cycles)
    {
        acc += cycles;
        ledger.charge(component, cycles);
    }
};

} // namespace

TEST(CycleLedger, MirroredChargesConserveExactly)
{
    Mirror m;
    // Values chosen to exercise non-representable fractions: only the
    // identical addition order makes the totals bitwise equal.
    m.charge(CycleComponent::BaseExec, 0.1);
    m.charge(CycleComponent::PageWalk, 33.7);
    m.charge(CycleComponent::DataStall, 0.3);
    m.charge(CycleComponent::PageWalk, 1e-9);
    m.charge(CycleComponent::ShootdownIpi, 160.0);

    CycleLedger::Report report =
        m.ledger.check(m.acc, static_cast<Count>(m.acc));
    EXPECT_TRUE(report.ok) << report.message;
    EXPECT_EQ(m.ledger.total(), m.acc);
    EXPECT_EQ(m.ledger.component(CycleComponent::PageWalk), 33.7 + 1e-9);
}

TEST(CycleLedger, OrphanChargeIsCaught)
{
    Mirror m;
    m.charge(CycleComponent::BaseExec, 100.0);
    m.acc += 5.0; // the orphan: bumps the accumulator, skips the ledger

    CycleLedger::Report report =
        m.ledger.check(m.acc, static_cast<Count>(m.acc));
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.message.find("orphan charge"), std::string::npos)
        << report.message;
    EXPECT_NE(report.message.find("base_exec=100"), std::string::npos)
        << report.message;
}

TEST(CycleLedger, DoubleAttributionIsCaught)
{
    Mirror m;
    m.charge(CycleComponent::L2TlbHit, 7.0);
    m.ledger.charge(CycleComponent::L2TlbHit, 7.0); // charged twice

    EXPECT_FALSE(m.ledger.check(m.acc, static_cast<Count>(m.acc)).ok);
}

TEST(CycleLedger, PublicationResidueMustStayBelowOneCycle)
{
    Mirror m;
    m.charge(CycleComponent::BaseExec, 10.75);

    // A proper flush truncates: published 10, residue 0.75.
    EXPECT_TRUE(m.ledger.check(m.acc, 10).ok);
    // Published short by a whole cycle: something bypassed the flush.
    CycleLedger::Report under = m.ledger.check(m.acc, 9);
    EXPECT_FALSE(under.ok);
    EXPECT_NE(under.message.find("publication"), std::string::npos);
    // Over-published: more cycles in the counter than were ever charged.
    EXPECT_FALSE(m.ledger.check(m.acc, 11).ok);
}

TEST(CycleLedger, VerifyIsFatalOnOrphans)
{
    Mirror m;
    m.charge(CycleComponent::MachineClear, 40.0);
    m.acc += 1.0;
    EXPECT_DEATH(m.ledger.verify(m.acc, 41, "test"), "orphan charge");
}

TEST(CycleLedger, ResetForgetsEverything)
{
    Mirror m;
    m.charge(CycleComponent::SchemeSoftware, 12.0);
    m.ledger.reset();
    EXPECT_EQ(m.ledger.total(), 0.0);
    EXPECT_EQ(m.ledger.component(CycleComponent::SchemeSoftware), 0.0);
    EXPECT_TRUE(m.ledger.check(0.0, 0).ok);
}

TEST(CycleLedger, ComponentVocabularyIsClosed)
{
    // Every enumerator has a stable name and a mapped Eq-1 role; the
    // lint's R10 component map mirrors this table by name.
    for (std::size_t i = 0; i < numCycleComponents; ++i) {
        auto component = static_cast<CycleComponent>(i);
        EXPECT_STRNE(cycleComponentName(component), "?");
        EXPECT_STRNE(cycleComponentEq1Role(component), "?");
    }
    EXPECT_STREQ(cycleComponentName(CycleComponent::PageWalk), "page_walk");
    EXPECT_STREQ(cycleComponentEq1Role(CycleComponent::PageWalk), "walk");
    EXPECT_STREQ(cycleComponentEq1Role(CycleComponent::ShootdownIpi),
                 "coherence");
}

#ifndef NDEBUG

// Debug builds compile the Core hooks in: a real run's cycles must be
// fully attributed. (Core::run also self-verifies at every publication
// boundary — reaching the assertions below means those all held.)
TEST(CycleLedgerEndToEnd, SingleCoreRunIsFullyAttributed)
{
    std::unique_ptr<Workload> workload = createWorkload("memcached-uniform");
    PlatformParams params;
    Platform platform(params, PageSize::Size4K, workload->traits(), 7);

    WorkloadConfig config;
    config.footprintBytes = 1ull << 24;
    config.seed = 7;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, config);
    platform.core.run(*stream, 30'000);

    const CycleLedger &ledger = platform.core.ledger();
    CycleLedger::Report report =
        ledger.check(ledger.total(), platform.core.cycles());
    EXPECT_TRUE(report.ok) << report.message;

    // The components land where the model says they should.
    EXPECT_GT(ledger.component(CycleComponent::BaseExec), 0.0);
    EXPECT_GT(ledger.component(CycleComponent::PageWalk), 0.0);
    EXPECT_GT(ledger.component(CycleComponent::DataStall), 0.0);
    // No shootdowns on a private platform, no software scheme either.
    EXPECT_EQ(ledger.component(CycleComponent::ShootdownIpi), 0.0);
    EXPECT_EQ(ledger.component(CycleComponent::SchemeSoftware), 0.0);

    // Attribution survives a measurement-window reset.
    platform.core.resetCounters();
    EXPECT_EQ(platform.core.ledger().total(), 0.0);
    platform.core.run(*stream, 10'000);
    const CycleLedger &after = platform.core.ledger();
    EXPECT_TRUE(after.check(after.total(), platform.core.cycles()).ok);
    EXPECT_GT(after.total(), 0.0);
}

TEST(CycleLedgerEndToEnd, ShootdownCyclesMatchTheCoherenceComponent)
{
    RunSpec spec;
    spec.workload = "kvserver-mix";
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 10'000;
    spec.measureRefs = 40'000;
    spec.seed = 7;
    spec.cores = 4;
    spec.tenantMix = "zipfian,scan,churn,zipfian";

    // runMulticoreExperiment fatals internally (per tenant) if a core's
    // coherence component diverges from the SharedSystem's shootdown
    // account or the published cycles leave a stale residue; surviving
    // the call with live shootdown traffic is the assertion.
    MulticoreRunResult result = runMulticoreExperiment(spec);
    ASSERT_EQ(result.perTenant.size(), 4u);
    Count shootdown_cycles = 0;
    for (const TenantResult &tenant : result.perTenant)
        shootdown_cycles += tenant.shootdownCycles;
    EXPECT_GT(shootdown_cycles, 0u);
}

#endif // NDEBUG
