/**
 * @file
 * Unit tests for the open-page DRAM model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace atscale;

TEST(Dram, FirstAccessConflictsThenHits)
{
    Dram dram;
    Cycles first = dram.access(0x1000);
    Cycles second = dram.access(0x1040); // same row
    EXPECT_EQ(first,
              dram.params().rowHitLatency + dram.params().rowConflictExtra);
    EXPECT_EQ(second, dram.params().rowHitLatency);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
}

TEST(Dram, DifferentRowsSameBankConflict)
{
    DramParams params;
    Dram dram(params);
    std::uint64_t stride =
        params.rowBytes * static_cast<std::uint64_t>(params.banks);
    dram.access(0x0);
    // Same bank (row number differs by banks), different row.
    Cycles lat = dram.access(stride);
    EXPECT_EQ(lat, params.rowHitLatency + params.rowConflictExtra);
}

TEST(Dram, AdjacentRowsLandInDifferentBanks)
{
    DramParams params;
    Dram dram(params);
    dram.access(0x0);
    dram.access(params.rowBytes);     // next row, next bank
    dram.access(0x40);                // back to bank 0, same row: hit
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST(Dram, ResetClosesRows)
{
    Dram dram;
    dram.access(0x1000);
    dram.access(0x1000);
    EXPECT_EQ(dram.rowHits(), 1u);
    dram.reset();
    EXPECT_EQ(dram.rowHits(), 0u);
    Cycles lat = dram.access(0x1000);
    EXPECT_EQ(lat,
              dram.params().rowHitLatency + dram.params().rowConflictExtra);
}

TEST(Dram, StreamingIsMostlyRowHits)
{
    Dram dram;
    Count accesses = 0;
    for (PhysAddr a = 0; a < 1 << 20; a += 64) {
        dram.access(a);
        ++accesses;
    }
    // One conflict per row touched, the rest hits.
    EXPECT_GT(dram.rowHits(), accesses * 9 / 10);
}

TEST(DramDeathTest, BadGeometry)
{
    DramParams params;
    params.banks = 0;
    EXPECT_DEATH(Dram{params}, "bank");
    DramParams bad_row;
    bad_row.rowBytes = 3000;
    EXPECT_DEATH(Dram{bad_row}, "power of two");
}
