/**
 * @file
 * Correctness tests for the exec-mode mcf network simplex and
 * streamcluster k-median solvers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "workloads/mcf/mcf_exec.hh"
#include "workloads/mcf/mcf_workload.hh"
#include "workloads/sc/streamcluster_exec.hh"
#include "workloads/sc/streamcluster_workload.hh"

using namespace atscale;

TEST(McfExec, InstanceIsConnectedAndSized)
{
    McfInstance instance(100, 6, 3);
    EXPECT_EQ(instance.numNodes, 100u);
    EXPECT_EQ(instance.arcs.size(), 600u);
    // Ring backbone present.
    for (std::uint32_t v = 0; v < 100; ++v) {
        EXPECT_EQ(instance.arcs[v].tail, v);
        EXPECT_EQ(instance.arcs[v].head, (v + 1) % 100);
    }
    for (const auto &arc : instance.arcs) {
        EXPECT_LT(arc.tail, 100u);
        EXPECT_LT(arc.head, 100u);
    }
}

TEST(McfExec, PivotsKeepPricingStable)
{
    McfInstance instance(500, 6, 7);
    TraceSink sink;
    McfResult result = runNetworkSimplex(instance, sink, 1ull << 30,
                                         2ull << 30, 20);
    ASSERT_FALSE(result.objectiveTrace.empty());
    EXPECT_GT(result.pivots, 0u);
    // Each pivot prices its entering arc to zero; with this simplified
    // (path- rather than subtree-updating) simplex the total negative
    // reduced cost is not monotone, but it must stay bounded rather
    // than diverge.
    double first = std::abs(result.objectiveTrace.front());
    double last = std::abs(result.objectiveTrace.back());
    EXPECT_LT(last, 2.0 * first + 1.0);
    EXPECT_TRUE(std::isfinite(result.residual));
    // Trace recorded both arc-scan and node accesses.
    EXPECT_GT(sink.trace().size(), instance.arcs.size());
}

TEST(McfExec, DeterministicForSeed)
{
    McfInstance a(300, 6, 11), b(300, 6, 11);
    TraceSink sa, sb;
    McfResult ra = runNetworkSimplex(a, sa, 1ull << 30, 2ull << 30, 5);
    McfResult rb = runNetworkSimplex(b, sb, 1ull << 30, 2ull << 30, 5);
    EXPECT_EQ(ra.pivots, rb.pivots);
    EXPECT_EQ(ra.objectiveTrace, rb.objectiveTrace);
    EXPECT_EQ(sa.trace().size(), sb.trace().size());
}

TEST(McfExec, WorkloadInstantiatesInExecMode)
{
    PhysicalMemory mem;
    FrameAllocator alloc(16ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);
    McfWorkload workload;
    ASSERT_TRUE(workload.supports(WorkloadMode::Exec));

    WorkloadConfig config;
    config.footprintBytes = 4ull << 20;
    config.mode = WorkloadMode::Exec;
    auto stream = workload.instantiate(space, config);
    Ref ref;
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_TRUE(stream->next(ref));
        ASSERT_NE(space.findVma(ref.vaddr), nullptr) << std::hex << ref.vaddr;
    }
}

TEST(StreamclusterExec, OpensBoundedCenters)
{
    TraceSink sink;
    StreamclusterResult result = runStreamcluster(
        2000, 32, 512, 5, sink, 1ull << 30, 2ull << 30, 512);
    EXPECT_GE(result.centers, 1u);
    EXPECT_LE(result.centers, 256u);
    EXPECT_EQ(result.costTrace.size(), 4u); // 2000 points / 512 chunks
    for (double cost : result.costTrace)
        EXPECT_GE(cost, 0.0);
    EXPECT_FALSE(sink.trace().empty());
}

TEST(StreamclusterExec, MoreSpreadOutPointsCostMore)
{
    // With a single centre forced (huge open cost via tiny dims), cost
    // grows with point count.
    TraceSink s1, s2;
    StreamclusterResult small = runStreamcluster(500, 16, 250, 9, s1,
                                                 1ull << 30, 2ull << 30, 512);
    StreamclusterResult large = runStreamcluster(2000, 16, 250, 9, s2,
                                                 1ull << 30, 2ull << 30, 512);
    double small_total = 0, large_total = 0;
    for (double c : small.costTrace)
        small_total += c;
    for (double c : large.costTrace)
        large_total += c;
    EXPECT_GT(large_total, small_total * 0.5);
}

TEST(StreamclusterExec, WorkloadInstantiatesInExecMode)
{
    PhysicalMemory mem;
    FrameAllocator alloc(16ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);
    StreamclusterWorkload workload;
    ASSERT_TRUE(workload.supports(WorkloadMode::Exec));

    WorkloadConfig config;
    config.footprintBytes = 8ull << 20;
    config.mode = WorkloadMode::Exec;
    auto stream = workload.instantiate(space, config);
    Ref ref;
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_TRUE(stream->next(ref));
        ASSERT_NE(space.findVma(ref.vaddr), nullptr);
    }
}
