/**
 * @file
 * Integration tests: full experiment runs through the public API, the
 * overhead measurement, result caching, and the sweep helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/overhead.hh"
#include "core/sweep.hh"

using namespace atscale;

namespace
{

RunConfig
quickConfig(const std::string &workload = "bfs-urand",
            std::uint64_t footprint = 512ull << 20)
{
    RunConfig config;
    config.workload = workload;
    config.footprintBytes = footprint;
    config.warmupRefs = 50'000;
    config.measureRefs = 150'000;
    return config;
}

} // namespace

TEST(Experiment, ProducesConsistentCounters)
{
    RunResult result = runExperiment(quickConfig());
    EXPECT_GT(result.cycles(), 0u);
    EXPECT_GT(result.instructions(), 0u);
    EXPECT_GT(result.cpi(), 0.1);
    EXPECT_LT(result.cpi(), 50.0);
    EXPECT_EQ(totalAccesses(result.counters), 150'000u);
    EXPECT_GT(result.footprintTouched, 0u);
    EXPECT_GT(result.pageTableBytes, 0u);
    EXPECT_GT(result.seconds(), 0.0);

    // Equation 1 holds on live data: product of terms == WCPI directly.
    WcpiTerms terms = wcpiTerms(result.counters);
    double direct =
        static_cast<double>(totalWalkCycles(result.counters)) /
        static_cast<double>(result.instructions());
    EXPECT_NEAR(terms.wcpi(), direct, 1e-9);
}

TEST(Experiment, DeterministicAcrossCalls)
{
    RunResult a = runExperiment(quickConfig());
    RunResult b = runExperiment(quickConfig());
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(totalWalksInitiated(a.counters),
              totalWalksInitiated(b.counters));
}

TEST(Experiment, PageSizeChangesOnlyTranslationBehaviour)
{
    RunConfig config = quickConfig();
    RunResult r4k = runExperiment(config);
    config.pageSize = PageSize::Size2M;
    RunResult r2m = runExperiment(config);
    // Same instruction stream...
    EXPECT_EQ(r4k.instructions(), r2m.instructions());
    // ...less translation pressure with superpages.
    EXPECT_LT(totalWalksInitiated(r2m.counters),
              totalWalksInitiated(r4k.counters));
    EXPECT_LE(r2m.cycles(), r4k.cycles());
}

TEST(Experiment, DiskCacheRoundTrips)
{
    std::string dir = ::testing::TempDir() + "/atscale_cache_test";
    std::filesystem::create_directories(dir);
    setenv("ATSCALE_CACHE_DIR", dir.c_str(), 1);

    RunConfig config = quickConfig("cc-urand");
    RunResult first = runExperiment(config);
    // The second call must come from disk and be bit-identical.
    RunResult second = runExperiment(config);
    unsetenv("ATSCALE_CACHE_DIR");

    EXPECT_EQ(first.cycles(), second.cycles());
    EXPECT_EQ(first.footprintTouched, second.footprintTouched);
    for (int i = 0; i < numEvents; ++i) {
        auto id = static_cast<EventId>(i);
        EXPECT_EQ(first.counters.get(id), second.counters.get(id));
    }
    // A cache file exists for this run.
    EXPECT_FALSE(std::filesystem::is_empty(dir));
    std::filesystem::remove_all(dir);
}

TEST(Experiment, ExecModeFootprintCapIsFatal)
{
    RunConfig config = quickConfig("mcf-rand", 1ull << 40);
    config.mode = WorkloadMode::Exec;
    EXPECT_DEATH(runExperiment(config), "too large");
}

TEST(Overhead, BaselineIsMinOfSuperpageRuns)
{
    OverheadPoint point = measureOverhead(quickConfig());
    double base = point.baselineCycles();
    EXPECT_EQ(base, std::min<double>(point.run2m.cycles(),
                                     point.run1g.cycles()));
    EXPECT_GT(point.run4k.cycles(), 0u);
    // AT-intensive workload at 512 MiB: 4K should be slower.
    EXPECT_TRUE(point.atSensitive());
    EXPECT_GT(point.relativeOverhead(), 0.0);
    EXPECT_LT(point.relativeOverhead(), 3.0);
}

TEST(Sweep, FootprintsAreLogSpacedAndOrdered)
{
    auto sweep = footprintSweep(1ull << 28, 1ull << 34, 2);
    ASSERT_GE(sweep.size(), 4u);
    EXPECT_EQ(sweep.front(), 1ull << 28);
    for (size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GT(sweep[i], sweep[i - 1]);
        double ratio = static_cast<double>(sweep[i]) /
                       static_cast<double>(sweep[i - 1]);
        EXPECT_LT(ratio, 10.0);
    }
    EXPECT_NEAR(static_cast<double>(sweep.back()),
                static_cast<double>(1ull << 34),
                static_cast<double>(1ull << 30));
}

TEST(Sweep, DefaultRangeMatchesThePaper)
{
    auto footprints = defaultFootprints();
    EXPECT_GE(footprints.front(), 200ull << 20);
    EXPECT_LE(footprints.front(), 300ull << 20);
    EXPECT_GE(footprints.back(), 500ull << 30);
}

TEST(Sweep, QuickEnvSelectsReducedSweep)
{
    setenv("ATSCALE_QUICK", "1", 1);
    EXPECT_EQ(sweepFootprints().size(), quickFootprints().size());
    unsetenv("ATSCALE_QUICK");
    EXPECT_EQ(sweepFootprints().size(), defaultFootprints().size());
}

TEST(Sweep, SweepWorkloadCollectsPointsInOrder)
{
    std::vector<std::uint64_t> footprints{256ull << 20, 1ull << 30};
    RunConfig base;
    base.warmupRefs = 20'000;
    base.measureRefs = 50'000;
    int calls = 0;
    WorkloadSweep sweep = sweepWorkload(
        "pr-kron", footprints, base, {},
        [&](const OverheadPoint &) { ++calls; });
    EXPECT_EQ(sweep.workload, "pr-kron");
    ASSERT_EQ(sweep.points.size(), 2u);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(sweep.points[0].footprintBytes, 256ull << 20);
    EXPECT_EQ(sweep.points[1].footprintBytes, 1ull << 30);
}
