/**
 * @file
 * Randomized differential suite for the software translation fast path.
 *
 * The fast path's entire value rests on one claim: enabling it changes
 * nothing except wall-clock time. This suite runs the same (workload,
 * seed) simulations twice — fast path on and off — across access
 * patterns chosen to stress different parts of the translation machinery
 * (uniform KV lookups, skewed kron graph traversal, pointer chasing) and
 * demands exact equality of:
 *
 *  - every EventId counter (bit-for-bit, not approximately),
 *  - the final microarchitectural state of the TLB complex and the
 *    paging-structure caches (contents, recency, replacement metadata,
 *    statistics — via stateHash()),
 *  - the final data cache hierarchy state,
 *  - the exported RunResult JSON, byte for byte.
 *
 * Any divergence — a missed counter replay, an extra LRU touch, an RNG
 * draw on the wrong path — fails loudly here before it can corrupt a
 * result set.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "core/run_export.hh"
#include "obs/ledger.hh"
#include "workloads/registry.hh"

using namespace atscale;

namespace
{

/** Workloads spanning the translation-relevant access-pattern space. */
const char *const kWorkloads[] = {
    "memcached-uniform", // uniform random over a big hash space
    "pr-kron",           // skewed (Zipf hub) graph scan
    "mcf-rand",          // pointer chasing (dependent random reads)
};

const std::uint64_t kSeeds[] = {1, 7, 1234};

/** Final state of one simulation, everything exactness covers. */
struct RunState
{
    CounterSet counters;
    std::uint64_t mmuHash = 0;
    std::uint64_t cacheHash = 0;
    std::uint64_t footprint = 0;
    std::string json;
};

RunState
simulate(const std::string &workloadName, std::uint64_t seed, bool fastPath)
{
    RunSpec spec;
    spec.workload = workloadName;
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 60'000;
    spec.seed = seed;
    // Both exported JSONs carry the same spec: fastPath is execution
    // strategy, not result identity, and the bytes must not differ.
    spec.fastPath = true;

    std::unique_ptr<Workload> workload = createWorkload(workloadName);
    PlatformParams params;
    params.mmu.fastPath = fastPath;
    Platform platform(params, spec.pageSize, workload->traits(),
                      spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);

    platform.core.run(*stream, spec.warmupRefs);
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    platform.core.run(*stream, spec.measureRefs);

#ifndef NDEBUG
    // Debug builds: the measurement window's cycles must be fully
    // attributed across Eq-1 components (docs/OBSERVABILITY.md) —
    // fast path on or off must not perturb the decomposition.
    {
        const CycleLedger &ledger = platform.core.ledger();
        CycleLedger::Report report =
            ledger.check(ledger.total(), platform.core.cycles());
        EXPECT_TRUE(report.ok) << report.message;
    }
#endif

    RunState state;
    state.counters = platform.core.counters();
    state.mmuHash = platform.mmu.stateHash();
    state.cacheHash = platform.hierarchy.stateHash();
    state.footprint = platform.space.footprintBytes();

    RunResult result;
    result.spec = spec;
    result.counters = state.counters;
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();
    std::ostringstream os;
    writeRunResultJson(os, result);
    state.json = os.str();

    // The fast path must actually be exercised when enabled, or this
    // suite silently tests nothing.
    if (fastPath) {
        EXPECT_GT(platform.mmu.fastCache().hits(), 0u)
            << workloadName << " seed " << seed;
    } else {
        EXPECT_EQ(platform.mmu.fastCache().hits(), 0u);
    }
    return state;
}

class FastPathDiff
    : public ::testing::TestWithParam<std::tuple<const char *, std::uint64_t>>
{
};

} // namespace

TEST_P(FastPathDiff, OnAndOffAreBitIdentical)
{
    const auto [workload, seed] = GetParam();
    RunState on = simulate(workload, seed, true);
    RunState off = simulate(workload, seed, false);

    // Every architectural counter, bit for bit.
    on.counters.forEach([&](EventId id, const char *name, Count value) {
        EXPECT_EQ(value, off.counters.get(id)) << name;
    });

    // Final translation-structure and data-cache state (contents,
    // recency, replacement metadata, statistics).
    EXPECT_EQ(on.mmuHash, off.mmuHash);
    EXPECT_EQ(on.cacheHash, off.cacheHash);
    EXPECT_EQ(on.footprint, off.footprint);

    // The full exported artifact.
    EXPECT_EQ(on.json, off.json);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FastPathDiff,
    ::testing::Combine(::testing::ValuesIn(kWorkloads),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<FastPathDiff::ParamType> &suite_info) {
        std::string name = std::get<0>(suite_info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_s" + std::to_string(std::get<1>(suite_info.param));
    });

TEST(FastPathDiff, RunSpecKnobReachesTheMmu)
{
    // The spec-level escape hatch must actually disable the fast path.
    std::unique_ptr<Workload> workload = createWorkload("bfs-urand");
    PlatformParams params;
    params.mmu.fastPath = false;
    Platform platform(params, PageSize::Size4K, workload->traits(), 11);
    EXPECT_FALSE(platform.mmu.fastPathEnabled());

    platform.mmu.setFastPath(true);
    EXPECT_TRUE(platform.mmu.fastPathEnabled());
}
