/**
 * @file
 * Unit tests for the physical frame allocator.
 */

#include <gtest/gtest.h>

#include "mem/frame_alloc.hh"
#include "util/bitfield.hh"

using namespace atscale;

TEST(FrameAlloc, AllocationsAreAlignedAndDisjoint)
{
    FrameAllocator alloc(1ull << 30);
    PhysAddr a = alloc.allocate(pageSize4K);
    PhysAddr b = alloc.allocate(pageSize4K);
    EXPECT_TRUE(isAligned(a, pageSize4K));
    EXPECT_TRUE(isAligned(b, pageSize4K));
    EXPECT_GE(b, a + pageSize4K);
}

TEST(FrameAlloc, SuperpageAlignment)
{
    FrameAllocator alloc(8ull << 30);
    alloc.allocate(pageSize4K); // misalign the cursor
    PhysAddr two_meg = alloc.allocate(pageSize2M);
    EXPECT_TRUE(isAligned(two_meg, pageSize2M));
    PhysAddr one_gig = alloc.allocate(pageSize1G);
    EXPECT_TRUE(isAligned(one_gig, pageSize1G));
}

TEST(FrameAlloc, TracksAllocatedBytes)
{
    FrameAllocator alloc(1ull << 30);
    EXPECT_EQ(alloc.allocatedBytes(), 0u);
    alloc.allocate(pageSize4K);
    EXPECT_GE(alloc.allocatedBytes(), pageSize4K);
}

TEST(FrameAlloc, ResetReleases)
{
    FrameAllocator alloc(1ull << 30);
    PhysAddr first = alloc.allocate(pageSize4K);
    alloc.allocate(pageSize4K);
    alloc.reset();
    EXPECT_EQ(alloc.allocatedBytes(), 0u);
    EXPECT_EQ(alloc.allocate(pageSize4K), first);
}

TEST(FrameAlloc, CapacityAccessor)
{
    FrameAllocator alloc(42ull << 20);
    EXPECT_EQ(alloc.capacityBytes(), 42ull << 20);
}

TEST(FrameAllocDeathTest, ExhaustionIsFatal)
{
    FrameAllocator alloc(1ull << 20); // 1 MiB
    for (int i = 0; i < 256; ++i)
        alloc.allocate(pageSize4K);
    EXPECT_DEATH(alloc.allocate(pageSize4K), "exhausted");
}

TEST(FrameAllocDeathTest, NonPowerOfTwoPanics)
{
    FrameAllocator alloc(1ull << 20);
    EXPECT_DEATH(alloc.allocate(3 * pageSize4K), "power of two");
}
