/**
 * @file
 * Golden counter snapshots for canonical RunSpecs.
 *
 * Eight runs — three workloads at two page-size backings, plus two
 * 4-core shared-hierarchy KV-server mixes — are pinned as checked-in
 * JSON files (tests/golden/). Any change to the simulation that moves
 * any counter, derived metric, or footprint of these runs fails here
 * with a field-level diff, making result drift a reviewed decision
 * instead of an accident.
 *
 * When a drift IS intended (a modelling change, a result-semantics
 * version bump), regenerate with:
 *
 *     ATSCALE_UPDATE_GOLDEN=1 ./test_golden_stats
 *
 * and commit the new files together with a cacheKey() version bump in
 * core/run_spec.cc (stale on-disk run caches must retire with the
 * goldens).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_export.hh"

using namespace atscale;

#ifndef ATSCALE_GOLDEN_DIR
#error "ATSCALE_GOLDEN_DIR must point at tests/golden"
#endif

namespace
{

struct GoldenCase
{
    const char *workload;
    PageSize pageSize;
    /** 1 = the classic private-hierarchy path; >1 = SharedSystem. */
    std::uint32_t cores = 1;
    /** Tenant key-mix list for multi-core kvserver cases. */
    const char *tenantMix = "";
    /** Suffix distinguishing multi-core case names ("" = none). */
    const char *nameTag = "";
};

const GoldenCase kCases[] = {
    {"bfs-urand", PageSize::Size4K}, {"bfs-urand", PageSize::Size2M},
    {"pr-kron", PageSize::Size4K},   {"pr-kron", PageSize::Size2M},
    {"mcf-rand", PageSize::Size4K},  {"mcf-rand", PageSize::Size2M},
    // Multi-core shared-hierarchy pins: four zipfian tenants (read-heavy
    // contention) and four churn tenants (remap/shootdown-heavy).
    {"kvserver-mix", PageSize::Size4K, 4, "zipfian", "zipf4"},
    {"kvserver-mix", PageSize::Size4K, 4, "churn", "churn4"},
};

RunSpec
specFor(const GoldenCase &c)
{
    RunSpec spec;
    spec.workload = c.workload;
    spec.footprintBytes = 1ull << 24;
    spec.pageSize = c.pageSize;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 60'000;
    spec.seed = 3;
    spec.cores = c.cores;
    spec.tenantMix = c.tenantMix;
    return spec;
}

std::string
goldenPath(const RunSpec &spec)
{
    return std::string(ATSCALE_GOLDEN_DIR) + "/" + spec.fileTag() + ".json";
}

std::string
renderRun(const RunSpec &spec)
{
    RunResult result = runExperiment(spec);
    std::ostringstream os;
    writeRunResultJson(os, result);
    return os.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

bool
updateRequested()
{
    const char *env = std::getenv("ATSCALE_UPDATE_GOLDEN");
    return env && *env && *env != '0';
}

class GoldenStats : public ::testing::TestWithParam<GoldenCase>
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Golden runs must come from the simulator, never from a
        // possibly-stale on-disk run cache.
        unsetenv("ATSCALE_CACHE_DIR");
    }
};

} // namespace

TEST_P(GoldenStats, MatchesCheckedInSnapshot)
{
    RunSpec spec = specFor(GetParam());
    std::string actual = renderRun(spec);
    std::string path = goldenPath(spec);

    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (generate with ATSCALE_UPDATE_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();

    if (actual == expected)
        return;

    // Field-level diff: report every drifted line, not just "differs".
    std::vector<std::string> want = splitLines(expected);
    std::vector<std::string> got = splitLines(actual);
    std::size_t n = std::max(want.size(), got.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::string &w = i < want.size() ? want[i] : "<missing>";
        const std::string &g = i < got.size() ? got[i] : "<missing>";
        EXPECT_EQ(g, w) << path << " line " << (i + 1);
    }
    FAIL() << "golden drift in " << path
           << " — if intended, regenerate with ATSCALE_UPDATE_GOLDEN=1 "
              "and bump the cacheKey() version";
}

INSTANTIATE_TEST_SUITE_P(
    CanonicalRuns, GoldenStats, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<GoldenCase> &suite_info) {
        std::string name = suite_info.param.workload;
        for (char &c : name)
            if (c == '-')
                c = '_';
        name += "_" + pageSizeName(suite_info.param.pageSize);
        if (*suite_info.param.nameTag)
            name += std::string("_") + suite_info.param.nameTag;
        return name;
    });
