/**
 * @file
 * Correctness tests for the exec-mode graph kernels: algorithmic results
 * are validated against independent reference computations, and the
 * traces they emit are checked for region discipline.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "workloads/graph/csr.hh"
#include "workloads/graph/exec_kernels.hh"
#include "workloads/graph/graph_workload.hh"
#include "workloads/trace.hh"

using namespace atscale;

namespace
{

GraphSpec
smallSpec(GraphKind kind = GraphKind::Urand, std::uint64_t n = 2000)
{
    GraphSpec spec;
    spec.kind = kind;
    spec.numVertices = n;
    spec.seed = 11;
    return spec;
}

struct ExecRig
{
    explicit ExecRig(const GraphSpec &spec) : graph(spec)
    {
        layout.offsets = 1ull << 30;
        layout.neighbors = 2ull << 30;
        layout.neighborsBytes = graph.numEdges() * 4;
        layout.props = 3ull << 30;
        layout.propsBytes = spec.numVertices * 40;
    }

    CsrGraph graph;
    TraceSink sink;
    GraphLayout layout;

    ExecGraphContext
    ctx()
    {
        return {graph, sink, layout};
    }
};

/** Reference union-find for component checking. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent[x] != x)
            x = parent[x] = parent[parent[x]];
        return x;
    }

    void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }

  private:
    std::vector<std::size_t> parent;
};

} // namespace

TEST(CsrGraph, MatchesSpecTopology)
{
    GraphSpec spec = smallSpec();
    CsrGraph graph(spec);
    EXPECT_EQ(graph.numVertices(), spec.numVertices);
    for (std::uint64_t v = 0; v < spec.numVertices; v += 97) {
        ASSERT_EQ(graph.degree(v), spec.degreeOf(v));
        for (std::uint32_t j = 0; j < graph.degree(v); ++j)
            EXPECT_EQ(graph.neighbor(v, j), spec.neighbor(v, j));
    }
    EXPECT_EQ(graph.numEdges(), graph.offsets().back());
}

TEST(ExecBfs, ParentsFormValidTree)
{
    ExecRig rig(smallSpec());
    auto ctx = rig.ctx();
    auto parent = execBfs(ctx, 0);

    ASSERT_EQ(parent.size(), rig.graph.numVertices());
    EXPECT_EQ(parent[0], 0);
    Count reached = 0;
    for (std::uint64_t v = 0; v < parent.size(); ++v) {
        if (parent[v] < 0)
            continue;
        ++reached;
        if (v == 0)
            continue;
        // parent[v] must actually have v as a neighbour.
        auto p = static_cast<std::uint64_t>(parent[v]);
        bool is_edge = false;
        for (std::uint32_t j = 0; j < rig.graph.degree(p); ++j)
            is_edge |= (rig.graph.neighbor(p, j) == v);
        EXPECT_TRUE(is_edge) << "bad parent for vertex " << v;
    }
    // A 2000-vertex graph with average degree 16 is connected w.h.p.
    EXPECT_GT(reached, rig.graph.numVertices() * 9 / 10);
    EXPECT_FALSE(rig.sink.trace().empty());
}

TEST(ExecPr, ScoresSumToOne)
{
    ExecRig rig(smallSpec());
    auto ctx = rig.ctx();
    auto scores = execPr(ctx, 5);
    double sum = std::accumulate(scores.begin(), scores.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 0.05);
    for (double s : scores)
        EXPECT_GE(s, 0.0);
}

TEST(ExecCc, LabelsMatchUnionFind)
{
    // A deliberately sparse graph so multiple components exist.
    GraphSpec spec = smallSpec(GraphKind::Urand, 400);
    ExecRig rig(spec);
    auto ctx = rig.ctx();
    auto labels = execCc(ctx);

    UnionFind reference(spec.numVertices);
    for (std::uint64_t v = 0; v < spec.numVertices; ++v)
        for (std::uint32_t j = 0; j < rig.graph.degree(v); ++j)
            reference.unite(v, rig.graph.neighbor(v, j));

    // Same-component iff same-label.
    for (std::uint64_t v = 0; v < spec.numVertices; v += 7) {
        for (std::uint64_t u = v + 1; u < spec.numVertices; u += 13) {
            bool same_ref = reference.find(u) == reference.find(v);
            bool same_label = labels[u] == labels[v];
            EXPECT_EQ(same_ref, same_label)
                << "vertices " << u << ", " << v;
        }
    }
}

TEST(ExecTc, MatchesBruteForceOnTinyGraph)
{
    GraphSpec spec = smallSpec(GraphKind::Urand, 120);
    ExecRig rig(spec);
    auto ctx = rig.ctx();
    std::uint64_t counted = execTc(ctx);

    // Brute force on the symmetrized, deduplicated adjacency.
    std::uint64_t n = spec.numVertices;
    std::vector<std::set<std::uint32_t>> adj(n);
    for (std::uint64_t v = 0; v < n; ++v) {
        for (std::uint32_t j = 0; j < rig.graph.degree(v); ++j) {
            std::uint32_t u = rig.graph.neighbor(v, j);
            if (u > v)
                adj[v].insert(u);
        }
    }
    std::uint64_t expected = 0;
    for (std::uint64_t a = 0; a < n; ++a) {
        for (std::uint32_t b : adj[a]) {
            for (std::uint32_t c : adj[b]) {
                expected += adj[a].count(c);
            }
        }
    }
    EXPECT_EQ(counted, expected);
}

TEST(ExecBc, DeltasAreNonNegativeAndSourceful)
{
    ExecRig rig(smallSpec(GraphKind::Urand, 1000));
    auto ctx = rig.ctx();
    auto deltas = execBc(ctx, 0);
    double total = 0;
    for (double d : deltas) {
        EXPECT_GE(d, 0.0);
        total += d;
    }
    EXPECT_GT(total, 0.0);
}

TEST(ExecTrace, AddressesRespectTheLayout)
{
    ExecRig rig(smallSpec(GraphKind::Kron, 1500));
    auto ctx = rig.ctx();
    execPr(ctx, 2);
    ASSERT_FALSE(rig.sink.trace().empty());
    for (const Ref &ref : rig.sink.trace()) {
        bool in_offsets = ref.vaddr >= rig.layout.offsets &&
                          ref.vaddr < rig.layout.offsets +
                                          (rig.graph.numVertices() + 1) * 8;
        bool in_neighbors =
            ref.vaddr >= rig.layout.neighbors &&
            ref.vaddr < rig.layout.neighbors + rig.layout.neighborsBytes;
        bool in_props = ref.vaddr >= rig.layout.props &&
                        ref.vaddr < rig.layout.props + rig.layout.propsBytes;
        ASSERT_TRUE(in_offsets || in_neighbors || in_props)
            << std::hex << ref.vaddr;
    }
}

TEST(ExecWorkload, InstantiateProducesReplayableTrace)
{
    PhysicalMemory mem;
    FrameAllocator alloc(16ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);

    GraphWorkload workload(GraphKernel::Bfs, GraphKind::Urand);
    WorkloadConfig config;
    config.footprintBytes = 8ull << 20;
    config.mode = WorkloadMode::Exec;
    auto stream = workload.instantiate(space, config);

    Ref ref;
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_TRUE(stream->next(ref));
        ASSERT_NE(space.findVma(ref.vaddr), nullptr);
    }
}

TEST(ExecWorkload, OversizedExecFootprintIsFatal)
{
    PhysicalMemory mem;
    FrameAllocator alloc(16ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);
    GraphWorkload workload(GraphKernel::Pr, GraphKind::Urand);
    WorkloadConfig config;
    config.footprintBytes = 1ull << 40;
    config.mode = WorkloadMode::Exec;
    EXPECT_DEATH(workload.instantiate(space, config), "exec-mode");
}

TEST(TraceReplay, WrapsAround)
{
    std::vector<Ref> trace{{0x1000, 1, false}, {0x2000, 2, true}};
    TraceReplaySource replay(trace);
    Ref ref;
    replay.next(ref);
    EXPECT_EQ(ref.vaddr, 0x1000u);
    replay.next(ref);
    EXPECT_EQ(ref.vaddr, 0x2000u);
    EXPECT_TRUE(ref.isStore);
    replay.next(ref);
    EXPECT_EQ(ref.vaddr, 0x1000u); // wrapped
}

TEST(TraceSink, CapsRecordedRefs)
{
    TraceSink sink(10);
    for (int i = 0; i < 100; ++i)
        sink.load(0x1000 + i * 8);
    EXPECT_EQ(sink.trace().size(), 10u);
}
