/**
 * @file
 * Tests for the hashed (inverted) page table alternative.
 */

#include <gtest/gtest.h>

#include "vm/hashed_page_table.hh"

using namespace atscale;

class HashedPtTest : public ::testing::Test
{
  protected:
    PhysicalMemory mem;
    FrameAllocator alloc{4ull << 30};
};

TEST_F(HashedPtTest, MapLookupRoundTrip)
{
    HashedPageTable table(mem, alloc, 1024);
    table.map(0x12345000, 0xabc000);
    PhysAddr frame = 0;
    ASSERT_TRUE(table.lookup(0x12345000, frame));
    EXPECT_EQ(frame, 0xabc000u);
    ASSERT_TRUE(table.lookup(0x12345fff, frame)) << "same page";
    EXPECT_FALSE(table.lookup(0x12346000, frame)) << "next page";
    EXPECT_EQ(table.size(), 1u);
}

TEST_F(HashedPtTest, Vpn0IsMappable)
{
    HashedPageTable table(mem, alloc, 64);
    table.map(0x0, 0x7000);
    PhysAddr frame = 0;
    ASSERT_TRUE(table.lookup(0x123, frame));
    EXPECT_EQ(frame, 0x7000u);
}

TEST_F(HashedPtTest, ManyMappingsSurviveCollisions)
{
    HashedPageTable table(mem, alloc, 4096);
    for (std::uint64_t p = 0; p < 4000; ++p)
        table.map(p << pageShift4K, (p + 100) << pageShift4K);
    for (std::uint64_t p = 0; p < 4000; ++p) {
        PhysAddr frame = 0;
        ASSERT_TRUE(table.lookup(p << pageShift4K, frame)) << p;
        EXPECT_EQ(frame, (p + 100) << pageShift4K);
    }
    EXPECT_EQ(table.size(), 4000u);
}

TEST_F(HashedPtTest, WalkFindsEntriesInOneOrFewAccesses)
{
    HashedPageTable table(mem, alloc, 4096);
    CacheHierarchy hierarchy;
    for (std::uint64_t p = 0; p < 2048; ++p)
        table.map(p << pageShift4K, p << pageShift4K);

    double total_accesses = 0;
    for (std::uint64_t p = 0; p < 2048; ++p) {
        HashedWalkResult r = table.walk(p << pageShift4K, hierarchy);
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.frame, p << pageShift4K);
        EXPECT_GE(r.accesses, 1u);
        total_accesses += static_cast<double>(r.accesses);
    }
    // At ~0.33 load factor the vast majority of walks are single-line.
    EXPECT_LT(total_accesses / 2048, 1.2);
}

TEST_F(HashedPtTest, WalkOfUnmappedTerminates)
{
    HashedPageTable table(mem, alloc, 256);
    CacheHierarchy hierarchy;
    HashedWalkResult r = table.walk(0x99999000, hierarchy);
    EXPECT_FALSE(r.found);
    EXPECT_GE(r.accesses, 1u);
}

TEST_F(HashedPtTest, DoubleMapPanics)
{
    HashedPageTable table(mem, alloc, 64);
    table.map(0x1000, 0x2000);
    EXPECT_DEATH(table.map(0x1000, 0x3000), "double map");
}

TEST_F(HashedPtTest, FullTableIsFatal)
{
    HashedPageTable table(mem, alloc, 4);
    // Capacity rounds up; fill beyond any slack.
    EXPECT_DEATH(
        {
            for (std::uint64_t p = 0; p < 1000; ++p)
                table.map(p << pageShift4K, p << pageShift4K);
        },
        "full");
}

TEST_F(HashedPtTest, RemapRepointsAnExistingMapping)
{
    HashedPageTable table(mem, alloc, 1024);
    table.map(0x5000, 0xaaa000);
    ASSERT_TRUE(table.remap(0x5000, 0xbbb000));
    PhysAddr frame = 0;
    ASSERT_TRUE(table.lookup(0x5000, frame));
    EXPECT_EQ(frame, 0xbbb000u);
    EXPECT_EQ(table.size(), 1u) << "remap updates in place, no growth";

    // Remapping a page that was never mapped reports failure and
    // inserts nothing.
    EXPECT_FALSE(table.remap(0x9000, 0xccc000));
    EXPECT_FALSE(table.lookup(0x9000, frame));
    EXPECT_EQ(table.size(), 1u);
}

TEST_F(HashedPtTest, RemapFindsEntriesDeepInCollisionChains)
{
    // A near-full tiny table forces long probe chains; remap must chase
    // them exactly as lookup does.
    HashedPageTable table(mem, alloc, 64);
    const std::uint64_t n = 48;
    for (std::uint64_t p = 0; p < n; ++p)
        table.map(p << pageShift4K, p << pageShift4K);
    for (std::uint64_t p = 0; p < n; ++p)
        ASSERT_TRUE(table.remap(p << pageShift4K, (p + 500) << pageShift4K))
            << p;
    for (std::uint64_t p = 0; p < n; ++p) {
        PhysAddr frame = 0;
        ASSERT_TRUE(table.lookup(p << pageShift4K, frame)) << p;
        EXPECT_EQ(frame, (p + 500) << pageShift4K);
    }
}

TEST_F(HashedPtTest, CollisionChainsShowUpInWalkAccessCounts)
{
    // Same near-full table: some walks must spill past their home
    // bucket, and the per-walk access count reports exactly how far.
    HashedPageTable table(mem, alloc, 64);
    CacheHierarchy hierarchy;
    const std::uint64_t n = 48;
    for (std::uint64_t p = 0; p < n; ++p)
        table.map(p << pageShift4K, p << pageShift4K);

    Count total = 0, spilled = 0;
    for (std::uint64_t p = 0; p < n; ++p) {
        HashedWalkResult r = table.walk(p << pageShift4K, hierarchy);
        ASSERT_TRUE(r.found);
        total += r.accesses;
        if (r.accesses > 1)
            ++spilled;
    }
    EXPECT_GT(spilled, 0u) << "a near-full table must chain somewhere";
    EXPECT_GT(total, n) << "chained walks load more than one line";
}

TEST_F(HashedPtTest, WalkAccountsEveryLoadByMemoryLevel)
{
    HashedPageTable table(mem, alloc, 1024);
    CacheHierarchy hierarchy;
    table.map(0x7000, 0x3000);

    HashedWalkResult r = table.walk(0x7000, hierarchy);
    ASSERT_TRUE(r.found);
    Count by_level = 0;
    for (Count c : r.loadsAtLevel)
        by_level += c;
    EXPECT_EQ(by_level, r.accesses) << "every load has a service level";
    ASSERT_GE(r.firstLoadLevel, 0);
    EXPECT_GT(r.loadsAtLevel[r.firstLoadLevel], 0u);

    // A repeat walk hits the just-loaded bucket line in cache.
    HashedWalkResult warm = table.walk(0x7000, hierarchy);
    EXPECT_EQ(warm.firstLoadLevel, static_cast<int>(MemLevel::L1));
}

TEST_F(HashedPtTest, WalkBudgetAbortsBeforeTheNextLoad)
{
    HashedPageTable table(mem, alloc, 256);
    CacheHierarchy hierarchy;
    table.map(0x4000, 0x8000);

    // Zero budget: squashed before the first bucket load.
    HashedWalkResult squashed = table.walk(0x4000, hierarchy, 2, 0);
    EXPECT_TRUE(squashed.aborted);
    EXPECT_FALSE(squashed.found);
    EXPECT_EQ(squashed.accesses, 0u);
    EXPECT_EQ(squashed.cycles, 0u);

    // A generous budget changes nothing about the result.
    HashedWalkResult full = table.walk(0x4000, hierarchy);
    EXPECT_FALSE(full.aborted);
    ASSERT_TRUE(full.found);
    EXPECT_EQ(full.frame, 0x8000u);
}

TEST_F(HashedPtTest, WalkLengthIsFootprintIndependent)
{
    // The headline property vs the radix tree: walks stay ~1 access no
    // matter how many translations the table holds.
    CacheHierarchy hierarchy;
    double avg_small, avg_large;
    {
        HashedPageTable table(mem, alloc, 1 << 12);
        for (std::uint64_t p = 0; p < (1 << 11); ++p)
            table.map(p << pageShift4K, p << pageShift4K);
        Count acc = 0;
        for (std::uint64_t p = 0; p < (1 << 11); ++p)
            acc += table.walk(p << pageShift4K, hierarchy).accesses;
        avg_small = static_cast<double>(acc) / (1 << 11);
    }
    {
        HashedPageTable table(mem, alloc, 1 << 18);
        for (std::uint64_t p = 0; p < (1 << 17); ++p)
            table.map(p << pageShift4K, p << pageShift4K);
        Count acc = 0;
        for (std::uint64_t p = 0; p < (1 << 17); ++p)
            acc += table.walk(p << pageShift4K, hierarchy).accesses;
        avg_large = static_cast<double>(acc) / (1 << 17);
    }
    EXPECT_NEAR(avg_small, avg_large, 0.1);
}
