/**
 * @file
 * Unit tests for the shared cache hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

using namespace atscale;

TEST(Hierarchy, ColdAccessGoesToMemoryThenWarmsEveryLevel)
{
    CacheHierarchy h;
    MemAccessResult cold = h.access(0x100000, AccessKind::Data);
    EXPECT_EQ(cold.level, MemLevel::Memory);
    EXPECT_GT(cold.latency, h.params().l3Latency);

    MemAccessResult warm = h.access(0x100000, AccessKind::Data);
    EXPECT_EQ(warm.level, MemLevel::L1);
    EXPECT_EQ(warm.latency, h.params().l1Latency);
}

TEST(Hierarchy, SameLineDifferentWordHits)
{
    CacheHierarchy h;
    h.access(0x100000, AccessKind::Data);
    MemAccessResult r = h.access(0x100038, AccessKind::Data);
    EXPECT_EQ(r.level, MemLevel::L1);
}

TEST(Hierarchy, L1EvictionFallsBackToL2)
{
    CacheHierarchy h;
    // Fill one L1 set (64 sets, 8 ways; stride = 64 sets * 64 B).
    const std::uint64_t set_stride = 64 * 64;
    h.access(0x0, AccessKind::Data);
    for (int i = 1; i <= 8; ++i)
        h.access(i * set_stride, AccessKind::Data);
    // 0x0 has been evicted from L1 but not from the (bigger) L2.
    MemAccessResult r = h.access(0x0, AccessKind::Data);
    EXPECT_EQ(r.level, MemLevel::L2);
    EXPECT_EQ(r.latency, h.params().l2Latency);
}

TEST(Hierarchy, KindsAreAttributedSeparately)
{
    CacheHierarchy h;
    h.access(0x1000, AccessKind::Data);
    h.access(0x2000, AccessKind::PtwLoad);
    h.access(0x2000, AccessKind::PtwLoad);
    EXPECT_EQ(h.kindCount(AccessKind::Data), 1u);
    EXPECT_EQ(h.kindCount(AccessKind::PtwLoad), 2u);
    EXPECT_EQ(h.levelCount(AccessKind::PtwLoad, MemLevel::Memory), 1u);
    EXPECT_EQ(h.levelCount(AccessKind::PtwLoad, MemLevel::L1), 1u);
}

TEST(Hierarchy, DataAndPtwShareTheArrays)
{
    CacheHierarchy h;
    h.access(0x5000, AccessKind::PtwLoad);
    // A data access to the same line hits what the walker brought in.
    MemAccessResult r = h.access(0x5000, AccessKind::Data);
    EXPECT_EQ(r.level, MemLevel::L1);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    CacheHierarchy h;
    h.access(0x1000, AccessKind::Data);
    h.resetStats();
    EXPECT_EQ(h.kindCount(AccessKind::Data), 0u);
    EXPECT_EQ(h.access(0x1000, AccessKind::Data).level, MemLevel::L1);
}

TEST(Hierarchy, FlushDropsContents)
{
    CacheHierarchy h;
    h.access(0x1000, AccessKind::Data);
    h.flush();
    EXPECT_EQ(h.access(0x1000, AccessKind::Data).level, MemLevel::Memory);
}

TEST(Hierarchy, LatenciesAreMonotoneAcrossLevels)
{
    HierarchyParams p;
    EXPECT_LT(p.l1Latency, p.l2Latency);
    EXPECT_LT(p.l2Latency, p.l3Latency);
    CacheHierarchy h(p);
    MemAccessResult mem = h.access(0x42000, AccessKind::Data);
    EXPECT_GT(mem.latency, p.l3Latency);
}

TEST(Hierarchy, DefaultGeometryMatchesTableIII)
{
    HierarchyParams p;
    // 32 KiB L1D, 256 KiB L2, 30 MiB L3 at 64 B lines.
    EXPECT_EQ(p.l1.sets * p.l1.ways * p.lineBytes, 32u << 10);
    EXPECT_EQ(p.l2.sets * p.l2.ways * p.lineBytes, 256u << 10);
    EXPECT_EQ(static_cast<std::uint64_t>(p.l3.sets) * p.l3.ways * p.lineBytes,
              30ull << 20);
}

TEST(Hierarchy, MemLevelNames)
{
    EXPECT_STREQ(memLevelName(MemLevel::L1), "L1");
    EXPECT_STREQ(memLevelName(MemLevel::Memory), "Memory");
}
