/**
 * @file
 * Tests for the WCPI-guided hugepage advisor (the paper's proposed
 * application), on synthetic counter streams and on a live simulation.
 */

#include <gtest/gtest.h>

#include "core/hugepage_advisor.hh"
#include "core/platform.hh"
#include "perf/derived.hh"
#include "workloads/registry.hh"

using namespace atscale;

namespace
{

/** Feed the advisor a window with a chosen WCPI. */
void
feedWindow(HugepageAdvisor &advisor, CounterSet &cumulative, double wcpi)
{
    Count instr = advisor.params().windowInstructions;
    cumulative.add(EventId::InstRetired, instr);
    cumulative.add(EventId::DtlbLoadMissesWalkDuration,
                   static_cast<Count>(wcpi * static_cast<double>(instr)));
    advisor.observe(cumulative);
}

} // namespace

TEST(HugepageAdvisor, StartsAt4K)
{
    HugepageAdvisor advisor;
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Keep4K);
    EXPECT_EQ(advisor.windowCount(), 0u);
}

TEST(HugepageAdvisor, PromotesAfterSustainedPressure)
{
    AdvisorParams params;
    params.promoteWcpi = 0.05;
    params.promoteWindows = 3;
    HugepageAdvisor advisor(params);
    CounterSet c;

    feedWindow(advisor, c, 0.2);
    feedWindow(advisor, c, 0.2);
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Keep4K) << "needs 3 windows";
    feedWindow(advisor, c, 0.2);
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Promote2M);
    EXPECT_EQ(advisor.windowCount(), 3u);
}

TEST(HugepageAdvisor, BriefSpikesDoNotPromote)
{
    HugepageAdvisor advisor;
    CounterSet c;
    for (int i = 0; i < 10; ++i) {
        feedWindow(advisor, c, 0.2);   // hot
        feedWindow(advisor, c, 0.02);  // neutral resets the streak
    }
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Keep4K);
}

TEST(HugepageAdvisor, DemotesWithHysteresis)
{
    AdvisorParams params;
    params.promoteWindows = 2;
    params.demoteWindows = 4;
    HugepageAdvisor advisor(params);
    CounterSet c;
    feedWindow(advisor, c, 0.3);
    feedWindow(advisor, c, 0.3);
    ASSERT_EQ(advisor.advice(), HugepageAdvice::Promote2M);

    for (int i = 0; i < 3; ++i)
        feedWindow(advisor, c, 0.0);
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Promote2M)
        << "demotion needs 4 cold windows";
    feedWindow(advisor, c, 0.0);
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Keep4K);
}

TEST(HugepageAdvisor, PartialWindowsAreBuffered)
{
    HugepageAdvisor advisor;
    CounterSet c;
    c.add(EventId::InstRetired, advisor.params().windowInstructions / 2);
    advisor.observe(c);
    EXPECT_EQ(advisor.windowCount(), 0u);
    c.add(EventId::InstRetired, advisor.params().windowInstructions / 2);
    advisor.observe(c);
    EXPECT_EQ(advisor.windowCount(), 1u);
}

TEST(HugepageAdvisor, LiveRunPromotesAnAtIntensiveWorkload)
{
    // bfs-urand at 8 GiB with 4K pages has WCPI well above threshold.
    auto workload = createWorkload("bfs-urand");
    Platform platform(PlatformParams{}, PageSize::Size4K,
                      workload->traits(), 3);
    WorkloadConfig config;
    config.footprintBytes = 8ull << 30;
    auto stream = workload->instantiate(platform.space, config);

    HugepageAdvisor advisor;
    for (int slice = 0; slice < 20; ++slice) {
        platform.core.run(*stream, 60'000);
        if (advisor.observe(platform.core.counters()) ==
            HugepageAdvice::Promote2M) {
            break;
        }
    }
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Promote2M);
}

TEST(HugepageAdvisor, LiveRunKeepsLowPressureWorkloadAt4K)
{
    // A 2M-backed run has almost no walk cycles: the advisor, observing
    // it, must not promote further.
    auto workload = createWorkload("pr-urand");
    Platform platform(PlatformParams{}, PageSize::Size2M,
                      workload->traits(), 3);
    WorkloadConfig config;
    config.footprintBytes = 1ull << 30;
    auto stream = workload->instantiate(platform.space, config);

    HugepageAdvisor advisor;
    for (int slice = 0; slice < 12; ++slice) {
        platform.core.run(*stream, 60'000);
        advisor.observe(platform.core.counters());
    }
    EXPECT_EQ(advisor.advice(), HugepageAdvice::Keep4K);
}
