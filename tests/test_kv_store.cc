/**
 * @file
 * Correctness tests for the exec-mode key-value store.
 */

#include <gtest/gtest.h>

#include "workloads/kv/kv_store.hh"
#include "workloads/kv/memcached_workload.hh"
#include "workloads/trace.hh"

using namespace atscale;

namespace
{

struct StoreRig
{
    explicit StoreRig(std::uint64_t capacity = 64, std::uint64_t buckets = 16)
        : store({capacity, 128, buckets}, sink, 1ull << 30, 2ull << 30)
    {
    }

    TraceSink sink;
    KvStore store;
};

} // namespace

TEST(KvStore, GetMissesOnEmpty)
{
    StoreRig rig;
    EXPECT_FALSE(rig.store.get(42));
    EXPECT_EQ(rig.store.misses(), 1u);
    EXPECT_EQ(rig.store.hits(), 0u);
}

TEST(KvStore, SetThenGetHits)
{
    StoreRig rig;
    rig.store.set(42);
    EXPECT_TRUE(rig.store.get(42));
    EXPECT_EQ(rig.store.hits(), 1u);
    EXPECT_EQ(rig.store.size(), 1u);
}

TEST(KvStore, OverwriteDoesNotGrow)
{
    StoreRig rig;
    rig.store.set(7);
    rig.store.set(7);
    EXPECT_EQ(rig.store.size(), 1u);
    EXPECT_TRUE(rig.store.get(7));
}

TEST(KvStore, ChainsHandleBucketCollisions)
{
    // 1 bucket: every key chains.
    StoreRig rig(16, 1);
    for (std::uint64_t k = 0; k < 10; ++k)
        rig.store.set(k);
    for (std::uint64_t k = 0; k < 10; ++k)
        EXPECT_TRUE(rig.store.get(k)) << k;
    EXPECT_FALSE(rig.store.get(999));
}

TEST(KvStore, EvictionKeepsCapacityBound)
{
    StoreRig rig(32, 8);
    for (std::uint64_t k = 0; k < 200; ++k)
        rig.store.set(k);
    EXPECT_LE(rig.store.size(), 32u);
    // Recently inserted keys should still be resident.
    Count recent_hits = 0;
    for (std::uint64_t k = 190; k < 200; ++k)
        recent_hits += rig.store.get(k);
    EXPECT_GT(recent_hits, 5u);
    // Ancient keys must be gone (store holds at most 32).
    Count ancient_hits = 0;
    for (std::uint64_t k = 0; k < 10; ++k)
        ancient_hits += rig.store.get(k);
    EXPECT_EQ(ancient_hits, 0u);
}

TEST(KvStore, EvictedKeysAreUnlinkedFromChains)
{
    // Tiny store with a single bucket: eviction must repair the chain.
    StoreRig rig(4, 1);
    for (std::uint64_t k = 0; k < 12; ++k)
        rig.store.set(k);
    // Every surviving key must still be reachable (chain not corrupted).
    Count live = 0;
    for (std::uint64_t k = 0; k < 12; ++k)
        live += rig.store.get(k);
    EXPECT_LE(live, 4u);
    EXPECT_GT(live, 0u);
}

TEST(KvStore, TraceRecordsBucketAndItemAccesses)
{
    StoreRig rig;
    rig.store.set(1);
    rig.store.get(1);
    bool touched_bucket = false, touched_item = false;
    for (const Ref &ref : rig.sink.trace()) {
        touched_bucket |= ref.vaddr >= (1ull << 30) &&
                          ref.vaddr < (1ull << 30) + (16 * 8);
        touched_item |= ref.vaddr >= (2ull << 30);
    }
    EXPECT_TRUE(touched_bucket);
    EXPECT_TRUE(touched_item);
}

TEST(MemcachedExec, UniformDriverHitRateTracksKeyspace)
{
    PhysicalMemory mem;
    FrameAllocator alloc(16ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);

    MemcachedWorkload workload;
    WorkloadConfig config;
    config.footprintBytes = 4ull << 20;
    config.mode = WorkloadMode::Exec;
    auto stream = workload.instantiate(space, config);
    Ref ref;
    for (int i = 0; i < 10'000; ++i) {
        ASSERT_TRUE(stream->next(ref));
        ASSERT_NE(space.findVma(ref.vaddr), nullptr);
    }
}
