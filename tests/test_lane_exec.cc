/**
 * @file
 * Differential suite for lockstep multi-lane execution.
 *
 * The lane executor's entire value rests on one claim: sharing the
 * reference stream across platform configurations changes nothing except
 * wall-clock time. This suite runs the same specs both ways — as a
 * lockstep lane group and standalone — and demands exact equality of:
 *
 *  - every EventId counter (bit-for-bit, not approximately),
 *  - the final microarchitectural state of the TLB complex, the
 *    paging-structure caches, and the data cache hierarchy (contents,
 *    recency, replacement metadata, statistics — via stateHash()),
 *  - the exported RunResult JSON, byte for byte,
 *
 * across 3 workloads x 3 seeds with all three page-size backings as
 * lanes (the hard case: 4K and 2M layouts place regions at different
 * virtual bases, so every shared reference is rebased). It further
 * proves that a cached lane dropping out of a group — including the
 * primary, which hosts the shared stream — leaves the surviving lanes'
 * results unchanged, and that the engine's serial and parallel lane
 * scheduling produce byte-identical sweeps with lanes on or off.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/experiment.hh"
#include "core/lane_exec.hh"
#include "core/platform.hh"
#include "core/run_cache.hh"
#include "core/run_export.hh"
#include "core/sweep.hh"
#include "workloads/registry.hh"

using namespace atscale;

namespace
{

/** Workloads spanning the translation-relevant access-pattern space,
 * all with several regions (so rebasing is actually exercised). */
const char *const kWorkloads[] = {
    "memcached-uniform", // uniform random over a big hash space
    "pr-kron",           // skewed (Zipf hub) graph scan
    "mcf-rand",          // pointer chasing (dependent random reads)
};

const std::uint64_t kSeeds[] = {1, 7, 1234};

const PageSize kLanes[] = {PageSize::Size4K, PageSize::Size2M,
                           PageSize::Size1G};

RunSpec
laneSpec(const std::string &workload, std::uint64_t seed, PageSize size)
{
    RunSpec spec;
    spec.workload = workload;
    spec.footprintBytes = 1ull << 24;
    spec.pageSize = size;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 60'000;
    spec.seed = seed;
    return spec;
}

/** Scoped private cache directory (empty name disables the cache). */
class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(const std::string &name)
    {
        if (!name.empty()) {
            path_ = ::testing::TempDir() + "/" + name;
            std::filesystem::remove_all(path_);
            std::filesystem::create_directories(path_);
            setenv("ATSCALE_CACHE_DIR", path_.c_str(), 1);
        } else {
            unsetenv("ATSCALE_CACHE_DIR");
        }
    }

    ~ScopedCacheDir()
    {
        unsetenv("ATSCALE_CACHE_DIR");
        if (!path_.empty())
            std::filesystem::remove_all(path_);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Final state of one simulation, everything exactness covers. */
struct RunState
{
    CounterSet counters;
    std::uint64_t mmuHash = 0;
    std::uint64_t cacheHash = 0;
    std::uint64_t footprint = 0;
    std::string json;
};

std::string
resultJson(const RunResult &result)
{
    std::ostringstream os;
    writeRunResultJson(os, result);
    return os.str();
}

/** One standalone run, driven by hand so the microarchitectural state
 * can be hashed before teardown (mirrors runExperiment exactly). */
RunState
simulateStandalone(const RunSpec &spec)
{
    std::unique_ptr<Workload> workload = createWorkload(spec.workload);
    PlatformParams params;
    Platform platform(params, spec.pageSize, workload->traits(),
                      spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);

    platform.core.run(*stream, spec.warmupRefs);
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    platform.core.run(*stream, spec.measureRefs);

    RunState state;
    state.counters = platform.core.counters();
    state.mmuHash = platform.mmu.stateHash();
    state.cacheHash = platform.hierarchy.stateHash();
    state.footprint = platform.space.footprintBytes();

    RunResult result;
    result.spec = spec;
    result.counters = state.counters;
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();
    state.json = resultJson(result);
    return state;
}

/** The same specs as one lockstep lane group, state hashed per lane. */
std::vector<RunState>
simulateLanes(const std::vector<RunSpec> &specs)
{
    std::vector<LaneJob> lanes;
    lanes.reserve(specs.size());
    for (const RunSpec &spec : specs)
        lanes.push_back(LaneJob{spec, PlatformParams{}, nullptr});

    std::vector<RunState> states(specs.size());
    std::vector<RunResult> results = runLaneGroup(
        lanes, [&](std::size_t lane, const Platform &platform) {
            states[lane].mmuHash = platform.mmu.stateHash();
            states[lane].cacheHash = platform.hierarchy.stateHash();
        });
    for (std::size_t i = 0; i < specs.size(); ++i) {
        states[i].counters = results[i].counters;
        states[i].footprint = results[i].footprintTouched;
        states[i].json = resultJson(results[i]);
    }
    return states;
}

void
expectIdentical(const RunState &lane, const RunState &standalone,
                const std::string &label)
{
    // Every architectural counter, bit for bit.
    lane.counters.forEach([&](EventId id, const char *name, Count value) {
        EXPECT_EQ(value, standalone.counters.get(id))
            << label << " " << name;
    });

    // Final translation-structure and data-cache state (contents,
    // recency, replacement metadata, statistics).
    EXPECT_EQ(lane.mmuHash, standalone.mmuHash) << label;
    EXPECT_EQ(lane.cacheHash, standalone.cacheHash) << label;
    EXPECT_EQ(lane.footprint, standalone.footprint) << label;

    // The full exported artifact.
    EXPECT_EQ(lane.json, standalone.json) << label;
}

class LaneExecDiff
    : public ::testing::TestWithParam<std::tuple<const char *, std::uint64_t>>
{
};

} // namespace

TEST(LaneGroupKey, CoversStreamIdentityOnly)
{
    const RunSpec base = laneSpec("bfs-urand", 1, PageSize::Size4K);
    auto key = [&](auto mutate) {
        RunSpec other = base;
        mutate(other);
        return other.laneGroupKey();
    };

    // Platform-side knobs share a stream (they become lanes).
    EXPECT_EQ(base.laneGroupKey(),
              key([](RunSpec &s) { s.pageSize = PageSize::Size1G; }));
    EXPECT_EQ(base.laneGroupKey(),
              key([](RunSpec &s) { s.fastPath = false; }));
    EXPECT_EQ(base.laneGroupKey(),
              key([](RunSpec &s) { s.platformTag = "stlb4096"; }));

    // Stream-side knobs must separate groups.
    EXPECT_NE(base.laneGroupKey(),
              key([](RunSpec &s) { s.workload = "cc-kron"; }));
    EXPECT_NE(base.laneGroupKey(),
              key([](RunSpec &s) { s.footprintBytes *= 2; }));
    EXPECT_NE(base.laneGroupKey(),
              key([](RunSpec &s) { s.warmupRefs += 1; }));
    EXPECT_NE(base.laneGroupKey(),
              key([](RunSpec &s) { s.measureRefs += 1; }));
    EXPECT_NE(base.laneGroupKey(), key([](RunSpec &s) { s.seed += 1; }));
}

TEST_P(LaneExecDiff, LanesMatchStandaloneBitForBit)
{
    ScopedCacheDir cache(""); // memoization off: every run executes
    const auto [workload, seed] = GetParam();
    std::vector<RunSpec> specs;
    for (PageSize size : kLanes)
        specs.push_back(laneSpec(workload, seed, size));

    std::vector<RunState> lanes = simulateLanes(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        expectIdentical(lanes[i], simulateStandalone(specs[i]),
                        pageSizeName(specs[i].pageSize));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, LaneExecDiff,
    ::testing::Combine(::testing::ValuesIn(kWorkloads),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<LaneExecDiff::ParamType> &suite_info) {
        std::string name = std::get<0>(suite_info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_s" + std::to_string(std::get<1>(suite_info.param));
    });

TEST(LaneExec, AblationVariantsShareAStream)
{
    // Fast-path A/B lanes share a group (laneGroupKey ignores fastPath)
    // and both must match their standalone runs — which are themselves
    // bit-identical by the fast-path contract.
    ScopedCacheDir cache("");
    RunSpec on = laneSpec("memcached-uniform", 7, PageSize::Size4K);
    RunSpec off = on;
    off.fastPath = false;

    std::vector<RunState> lanes = simulateLanes({on, off});
    RunState standalone_on = simulateStandalone(on);
    expectIdentical(lanes[0], standalone_on, "fastpath-on");

    // The off lane's JSON carries its own spec; compare dynamics only.
    lanes[1].counters.forEach([&](EventId id, const char *name,
                                  Count value) {
        EXPECT_EQ(value, standalone_on.counters.get(id)) << name;
    });
    EXPECT_EQ(lanes[1].cacheHash, standalone_on.cacheHash);
    EXPECT_EQ(lanes[1].footprint, standalone_on.footprint);
}

TEST(LaneExec, CachedLaneDropsOutWithoutPerturbingTheRest)
{
    std::vector<RunSpec> specs;
    for (PageSize size : kLanes)
        specs.push_back(laneSpec("mcf-rand", 42, size));

    // Ground truth: the full cold group, memoization off.
    ScopedCacheDir off("");
    std::vector<RunState> cold = simulateLanes(specs);

    // Prime exactly one lane's cache entry, then rerun the group: the
    // primed lane is served from disk and the survivors execute as a
    // smaller group. Priming the primary (index 0) also shifts which
    // lane hosts the shared stream.
    for (std::size_t primed : {std::size_t{0}, std::size_t{1}}) {
        ScopedCacheDir cache("lane_dropout_" + std::to_string(primed));
        RunResult seeded = runExperiment(specs[primed]);
        ASSERT_TRUE(cachedRunExists(specs[primed]));

        std::vector<LaneJob> lanes;
        for (const RunSpec &spec : specs)
            lanes.push_back(LaneJob{spec, PlatformParams{}, nullptr});
        std::vector<RunResult> rerun = runLaneGroup(lanes);

        for (std::size_t i = 0; i < specs.size(); ++i) {
            cold[i].counters.forEach(
                [&](EventId id, const char *name, Count value) {
                    EXPECT_EQ(value, rerun[i].counters.get(id))
                        << "primed=" << primed << " lane=" << i << " "
                        << name;
                });
            EXPECT_EQ(cold[i].footprint, rerun[i].footprintTouched);
            EXPECT_EQ(cold[i].json, resultJson(rerun[i]));
        }
        (void)seeded;
    }
}

TEST(LaneExec, EngineSerialParallelAndNoLanesAgreeByteForByte)
{
    // The engine-level guarantee: lane groups scheduled on 1 thread, on
    // 4 threads, and disabled entirely all emit identical bytes.
    ScopedCacheDir cache("");
    unsetenv("ATSCALE_THREADS");
    unsetenv("ATSCALE_NO_LANES");
    // Force lanes on regardless of the host's core count — this test is
    // about exactness, not about lanesDefault()'s scheduling heuristic.
    setenv("ATSCALE_LANES", "1", 1);

    RunSpec base = laneSpec("memcached-uniform", 3, PageSize::Size4K);
    auto jobs = overheadSweepJobs({"memcached-uniform", "pr-kron"},
                                  {1ull << 24, 1ull << 25}, base);

    auto bytes = [](const std::vector<RunResult> &results) {
        std::ostringstream os;
        writeRunResultsJson(os, results);
        return os.str();
    };

    SweepOptions serial;
    serial.threads = 1;
    SweepEngine engine_serial(serial);
    ASSERT_TRUE(engine_serial.lanesEnabled());
    std::string serial_bytes = bytes(engine_serial.run(jobs));
    EXPECT_EQ(engine_serial.progress().laneShared, jobs.size());

    SweepOptions parallel;
    parallel.threads = 4;
    SweepEngine engine_parallel(parallel);
    std::string parallel_bytes = bytes(engine_parallel.run(jobs));
    EXPECT_EQ(serial_bytes, parallel_bytes);

    SweepOptions nolanes;
    nolanes.threads = 4;
    nolanes.lanes = false;
    SweepEngine engine_nolanes(nolanes);
    ASSERT_FALSE(engine_nolanes.lanesEnabled());
    std::string nolanes_bytes = bytes(engine_nolanes.run(jobs));
    EXPECT_EQ(engine_nolanes.progress().laneShared, 0u);
    EXPECT_EQ(serial_bytes, nolanes_bytes);

    unsetenv("ATSCALE_LANES");
}

TEST(LaneExec, EnvironmentOverridesControlTheDefault)
{
    // Explicit force-on wins over the core-count heuristic.
    setenv("ATSCALE_LANES", "1", 1);
    unsetenv("ATSCALE_NO_LANES");
    EXPECT_TRUE(lanesDefault());
    SweepEngine forced;
    EXPECT_TRUE(forced.lanesEnabled());

    // Explicit off wins over everything, including explicit on.
    setenv("ATSCALE_NO_LANES", "1", 1);
    EXPECT_FALSE(lanesDefault());
    SweepEngine engine;
    EXPECT_FALSE(engine.lanesEnabled());

    // With neither set, the default follows the host's core count: a
    // lane group runs one worker thread per lane, so a single-core host
    // declines (docs/PERF.md §lanes).
    unsetenv("ATSCALE_NO_LANES");
    unsetenv("ATSCALE_LANES");
    EXPECT_EQ(lanesDefault(), std::thread::hardware_concurrency() > 1);
}
