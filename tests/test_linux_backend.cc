/**
 * @file
 * Tests for the optional perf_event_open backend. These degrade to
 * availability checks when the environment forbids PMU access (e.g. in
 * containers), exactly as the backend itself is designed to do.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <climits>
#include <vector>

#include "perf/linux_backend.hh"

using namespace atscale;

namespace
{

/**
 * A fake kernel for the PerfCounterOps surface: hands out fds, records
 * every close, and can be told to refuse opens or interrupt reads.
 */
struct FakeKernel
{
    int nextFd = 100;
    int opens = 0;
    /** Opens with index >= failFrom (0-based) are refused. */
    int failFrom = INT_MAX;
    int failErrno = EACCES;
    /** reads to serve -EINTR before succeeding. */
    int eintrBeforeSuccess = 0;
    CounterReadSample sample{1000, 0, 0};
    std::vector<int> openFds;
    std::vector<int> closedFds;
    std::vector<int> groupFds;

    PerfCounterOps
    ops()
    {
        PerfCounterOps o;
        o.open = [this](std::uint32_t, std::uint64_t, int groupFd) {
            if (opens++ >= failFrom)
                return -failErrno;
            groupFds.push_back(groupFd);
            int fd = nextFd++;
            openFds.push_back(fd);
            return fd;
        };
        o.close = [this](int fd) {
            closedFds.push_back(fd);
            return 0;
        };
        o.control = [](int, CounterCtl) { return 0; };
        o.read = [this](int, CounterReadSample &out) {
            if (eintrBeforeSuccess > 0) {
                --eintrBeforeSuccess;
                return -EINTR;
            }
            out = sample;
            return 0;
        };
        return o;
    }
};

} // namespace

TEST(LinuxPerf, AvailabilityProbeDoesNotCrash)
{
    // Either answer is fine; the call itself must be safe.
    (void)LinuxPerfBackend::available();
}

TEST(LinuxPerf, OpenReturnsSubsetOfRequested)
{
    LinuxPerfBackend backend;
    std::vector<EventId> requested = {
        EventId::CpuClkUnhalted,
        EventId::InstRetired,
        EventId::DtlbLoadMissesMissCausesAWalk,
    };
    std::vector<EventId> opened = backend.open(requested);
    EXPECT_LE(opened.size(), requested.size());
    for (EventId id : opened) {
        bool was_requested = false;
        for (EventId r : requested)
            was_requested |= (r == id);
        EXPECT_TRUE(was_requested);
    }
}

TEST(LinuxPerf, MeasuresRealWorkWhenAvailable)
{
    if (!LinuxPerfBackend::available())
        GTEST_SKIP() << "perf_event_open not permitted here";

    LinuxPerfBackend backend;
    auto opened = backend.open({EventId::CpuClkUnhalted,
                                EventId::InstRetired});
    if (opened.empty())
        GTEST_SKIP() << "no hardware counters could be opened";

    backend.start();
    // Burn some cycles.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 1'000'000; ++i)
        sink = sink + static_cast<std::uint64_t>(i) * 2654435761u;
    backend.stop();

    CounterSet counters = backend.read();
    for (EventId id : opened)
        EXPECT_GT(counters.get(id), 0u) << eventName(id);
}

TEST(LinuxPerf, StopWithoutOpenIsSafe)
{
    LinuxPerfBackend backend;
    backend.start();
    backend.stop();
    CounterSet counters = backend.read();
    EXPECT_EQ(counters.get(EventId::CpuClkUnhalted), 0u);
    backend.close();
}

TEST(LinuxPerf, ParanoidLevelProbeDoesNotCrash)
{
    // INT_MIN (unreadable) or any integer; the call must be safe.
    (void)LinuxPerfBackend::perfParanoidLevel();
}

// The fake-fd tests drive open/close/read through the encodings table,
// which only exists on Linux builds.
#ifdef __linux__

TEST(LinuxPerfFake, GroupOpenRollbackClosesEveryFd)
{
    FakeKernel kernel;
    kernel.failFrom = 2; // third event's open is refused
    PerfCounterOps ops = kernel.ops();
    LinuxPerfBackend backend(&ops);

    bool ok = backend.openGroup({EventId::CpuClkUnhalted,
                                 EventId::InstRetired,
                                 EventId::DtlbLoadMissesMissCausesAWalk});
    EXPECT_FALSE(ok);
    EXPECT_TRUE(backend.opened().empty());
    // The two fds that did open were both closed again (no leak).
    EXPECT_EQ(kernel.openFds.size(), 2u);
    EXPECT_EQ(kernel.closedFds, kernel.openFds);
}

TEST(LinuxPerfFake, GroupOpenLinksFollowersToLeader)
{
    FakeKernel kernel;
    PerfCounterOps ops = kernel.ops();
    LinuxPerfBackend backend(&ops);

    ASSERT_TRUE(backend.openGroup({EventId::CpuClkUnhalted,
                                   EventId::InstRetired}));
    EXPECT_TRUE(backend.grouped());
    ASSERT_EQ(kernel.groupFds.size(), 2u);
    EXPECT_EQ(kernel.groupFds[0], -1);               // leader
    EXPECT_EQ(kernel.groupFds[1], kernel.openFds[0]); // follower -> leader
    backend.close();
    EXPECT_EQ(kernel.closedFds, kernel.openFds);
    EXPECT_FALSE(backend.grouped());
}

TEST(LinuxPerfFake, BestEffortOpenSkipsRefusedEvents)
{
    FakeKernel kernel;
    kernel.failFrom = 1; // only the first event opens
    PerfCounterOps ops = kernel.ops();
    LinuxPerfBackend backend(&ops);

    std::vector<EventId> opened =
        backend.open({EventId::CpuClkUnhalted, EventId::InstRetired,
                      EventId::DtlbLoadMissesMissCausesAWalk});
    ASSERT_EQ(opened.size(), 1u);
    EXPECT_EQ(opened[0], EventId::CpuClkUnhalted);
    EXPECT_FALSE(backend.grouped());
    backend.close();
    EXPECT_EQ(kernel.closedFds, kernel.openFds);
}

TEST(LinuxPerfFake, ReadRetriesThroughEintr)
{
    FakeKernel kernel;
    kernel.eintrBeforeSuccess = 3;
    kernel.sample = {4242, 1000, 1000};
    PerfCounterOps ops = kernel.ops();
    LinuxPerfBackend backend(&ops);

    ASSERT_FALSE(backend.open({EventId::InstRetired}).empty());
    CounterSet counters = backend.read();
    EXPECT_EQ(counters.get(EventId::InstRetired), 4242u);
}

TEST(LinuxPerfFake, ReadAppliesMultiplexScaling)
{
    FakeKernel kernel;
    // Scheduled on a PMC for half the window: value extrapolates 2x.
    kernel.sample = {500, 1000, 500};
    PerfCounterOps ops = kernel.ops();
    LinuxPerfBackend backend(&ops);

    ASSERT_FALSE(backend.open({EventId::CpuClkUnhalted}).empty());
    CounterSet counters = backend.read();
    EXPECT_EQ(counters.get(EventId::CpuClkUnhalted), 1000u);
}

TEST(LinuxPerfFake, ReopenClosesPreviousFds)
{
    FakeKernel kernel;
    PerfCounterOps ops = kernel.ops();
    LinuxPerfBackend backend(&ops);

    ASSERT_FALSE(backend.open({EventId::CpuClkUnhalted}).empty());
    ASSERT_FALSE(backend.open({EventId::InstRetired}).empty());
    ASSERT_EQ(kernel.closedFds.size(), 1u);
    EXPECT_EQ(kernel.closedFds[0], kernel.openFds[0]);
    backend.close();
    EXPECT_EQ(kernel.closedFds, kernel.openFds);
}

TEST(LinuxPerfFake, ProbeEventsReportsErrnoAndLeavesNothingOpen)
{
    FakeKernel kernel;
    kernel.failFrom = 1;
    kernel.failErrno = EACCES;
    PerfCounterOps ops = kernel.ops();

    std::vector<EventProbe> probes = LinuxPerfBackend::probeEvents(
        {EventId::CpuClkUnhalted, EventId::InstRetired}, &ops);
    ASSERT_EQ(probes.size(), 2u);
    EXPECT_TRUE(probes[0].available);
    EXPECT_EQ(probes[0].error, 0);
    EXPECT_FALSE(probes[1].available);
    EXPECT_EQ(probes[1].error, EACCES);
    // The probe round-trips: the one fd it opened was closed again.
    EXPECT_EQ(kernel.closedFds, kernel.openFds);
}

#endif // __linux__
