/**
 * @file
 * Tests for the optional perf_event_open backend. These degrade to
 * availability checks when the environment forbids PMU access (e.g. in
 * containers), exactly as the backend itself is designed to do.
 */

#include <gtest/gtest.h>

#include "perf/linux_backend.hh"

using namespace atscale;

TEST(LinuxPerf, AvailabilityProbeDoesNotCrash)
{
    // Either answer is fine; the call itself must be safe.
    (void)LinuxPerfBackend::available();
}

TEST(LinuxPerf, OpenReturnsSubsetOfRequested)
{
    LinuxPerfBackend backend;
    std::vector<EventId> requested = {
        EventId::CpuClkUnhalted,
        EventId::InstRetired,
        EventId::DtlbLoadMissesMissCausesAWalk,
    };
    std::vector<EventId> opened = backend.open(requested);
    EXPECT_LE(opened.size(), requested.size());
    for (EventId id : opened) {
        bool was_requested = false;
        for (EventId r : requested)
            was_requested |= (r == id);
        EXPECT_TRUE(was_requested);
    }
}

TEST(LinuxPerf, MeasuresRealWorkWhenAvailable)
{
    if (!LinuxPerfBackend::available())
        GTEST_SKIP() << "perf_event_open not permitted here";

    LinuxPerfBackend backend;
    auto opened = backend.open({EventId::CpuClkUnhalted,
                                EventId::InstRetired});
    if (opened.empty())
        GTEST_SKIP() << "no hardware counters could be opened";

    backend.start();
    // Burn some cycles.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 1'000'000; ++i)
        sink = sink + static_cast<std::uint64_t>(i) * 2654435761u;
    backend.stop();

    CounterSet counters = backend.read();
    for (EventId id : opened)
        EXPECT_GT(counters.get(id), 0u) << eventName(id);
}

TEST(LinuxPerf, StopWithoutOpenIsSafe)
{
    LinuxPerfBackend backend;
    backend.start();
    backend.stop();
    CounterSet counters = backend.read();
    EXPECT_EQ(counters.get(EventId::CpuClkUnhalted), 0u);
    backend.close();
}
