/**
 * @file
 * Property tests for the temporal-locality layer that drives the
 * paper-shaped scaling behaviour of the model-mode workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"
#include "workloads/locality.hh"

using namespace atscale;

TEST(ReuseDistance, StaysInRange)
{
    Rng rng(1);
    for (std::uint64_t n : {1ull, 2ull, 100ull, 1ull << 30}) {
        for (int i = 0; i < 1000; ++i) {
            std::uint64_t r = reuseDistance(rng, n, 1.0);
            EXPECT_GE(r, 1u);
            EXPECT_LE(r, n);
        }
    }
}

TEST(ReuseDistance, LogUniformTailMass)
{
    // For s = 1 the distance is log-uniform: P(r > sqrt(n)) ~ 0.5.
    Rng rng(2);
    const std::uint64_t n = 1ull << 30;
    const std::uint64_t root = 1ull << 15;
    int beyond = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        beyond += (reuseDistance(rng, n, 1.0) > root);
    EXPECT_NEAR(static_cast<double>(beyond) / draws, 0.5, 0.02);
}

TEST(ReuseDistance, HigherExponentIsMoreLocal)
{
    Rng rng(3);
    const std::uint64_t n = 1ull << 24;
    const std::uint64_t cut = 1 << 12;
    auto tail_fraction = [&](double s) {
        int beyond = 0;
        for (int i = 0; i < 20000; ++i)
            beyond += (reuseDistance(rng, n, s) > cut);
        return static_cast<double>(beyond) / 20000;
    };
    double flat = tail_fraction(0.8);
    double mid = tail_fraction(1.0);
    double local = tail_fraction(1.3);
    EXPECT_GT(flat, mid);
    EXPECT_GT(mid, local);
}

TEST(DrawLocal, RespectsComponentWindows)
{
    // Hot-only profile: every draw within hotSize of the cursor.
    Rng rng(4);
    LocalityProfile hot_only{1.0, 0.0, 0.75, 1.0, 1000};
    const std::uint64_t n = 1ull << 20;
    const std::uint64_t cursor = 500'000;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t t = drawLocal(rng, cursor, n, hot_only);
        std::uint64_t dist = (cursor + n - t) % n;
        EXPECT_GE(dist, 1u);
        EXPECT_LE(dist, 1000u);
    }
}

TEST(DrawLocal, WorkingSetWindowScalesSublinearly)
{
    Rng rng(5);
    LocalityProfile ws_only{0.0, 1.0, 0.75, 1.0, 100};
    const std::uint64_t n = 1ull << 24;
    auto window = static_cast<std::uint64_t>(
        std::pow(static_cast<double>(n), 0.75));
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t t = drawLocal(rng, 0, n, ws_only);
        std::uint64_t dist = (0 + n - t) % n;
        EXPECT_LE(dist, window);
    }
}

TEST(DrawLocal, HandlesDegenerateSizes)
{
    Rng rng(6);
    EXPECT_EQ(drawLocal(rng, 0, 0, {}), 0u);
    EXPECT_EQ(drawLocal(rng, 0, 1, {}), 0u);
    // n smaller than hotSize: still in range.
    LocalityProfile p{1.0, 0.0, 0.75, 1.0, 1 << 20};
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(drawLocal(rng, 3, 10, p), 10u);
}

TEST(DrawLocal, TailReachesTheWholeRange)
{
    Rng rng(7);
    LocalityProfile tail_only{0.0, 0.0, 0.75, 1.0, 100};
    const std::uint64_t n = 1 << 20;
    std::uint64_t max_dist = 0;
    for (int i = 0; i < 50000; ++i) {
        std::uint64_t t = drawLocal(rng, 0, n, tail_only);
        max_dist = std::max(max_dist, (n - t) % n);
    }
    EXPECT_GT(max_dist, n / 2);
}
