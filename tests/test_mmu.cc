/**
 * @file
 * Unit tests for the MMU facade.
 */

#include <gtest/gtest.h>

#include "mmu/mmu.hh"

using namespace atscale;

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest()
        : alloc(1ull << 34), space(mem, alloc, PageSize::Size4K),
          mmu(space, mem, hierarchy)
    {
        base = space.mapRegion("data", 64ull << 20);
    }

    PhysicalMemory mem;
    FrameAllocator alloc;
    CacheHierarchy hierarchy;
    AddressSpace space;
    Mmu mmu;
    Addr base;
};

TEST_F(MmuTest, MissWalksThenInstalls)
{
    MmuResult first = mmu.translate(base);
    EXPECT_EQ(first.tlbLevel, TlbLevel::Miss);
    EXPECT_TRUE(first.walk().completed);
    EXPECT_FALSE(first.walk().faulted);
    EXPECT_EQ(first.pageSize, PageSize::Size4K);

    MmuResult second = mmu.translate(base + 0x800);
    EXPECT_EQ(second.tlbLevel, TlbLevel::L1);
}

TEST_F(MmuTest, DemandPagingHappensOnCorrectPathOnly)
{
    // Correct path: the page gets populated.
    mmu.translate(base + pageSize4K);
    EXPECT_TRUE(space.translate(base + pageSize4K).valid);

    // Speculative path to an untouched page: walk faults, no population,
    // no TLB install.
    Addr fresh = base + 10 * pageSize4K;
    MmuResult spec = mmu.translate(fresh, /*speculative=*/true);
    EXPECT_EQ(spec.tlbLevel, TlbLevel::Miss);
    EXPECT_TRUE(spec.walk().faulted);
    EXPECT_FALSE(space.translate(fresh).valid);
    EXPECT_EQ(mmu.translate(fresh, true).tlbLevel, TlbLevel::Miss);
}

TEST_F(MmuTest, SpeculativeToUnmappedRegionIsHarmless)
{
    MmuResult r = mmu.translate(0x10, /*speculative=*/true);
    EXPECT_EQ(r.tlbLevel, TlbLevel::Miss);
    EXPECT_TRUE(r.walk().completed);
    EXPECT_TRUE(r.walk().faulted);
}

TEST_F(MmuTest, AbortedWalkDoesNotInstall)
{
    MmuResult aborted = mmu.translate(base, false, /*walkBudget=*/1);
    EXPECT_FALSE(aborted.walk().completed);
    // Not installed: the next lookup misses again.
    MmuResult retry = mmu.translate(base);
    EXPECT_EQ(retry.tlbLevel, TlbLevel::Miss);
}

TEST_F(MmuTest, WalkLoadsGoThroughSharedHierarchy)
{
    Count before = hierarchy.kindCount(AccessKind::PtwLoad);
    mmu.translate(base);
    EXPECT_GT(hierarchy.kindCount(AccessKind::PtwLoad), before);
}

TEST_F(MmuTest, SpeculativeCompletedWalkInstalls)
{
    // Populate via a correct-path touch first, flush the TLB, then a
    // speculative access to the same page: the walk completes and may
    // install (as real hardware does).
    mmu.translate(base);
    mmu.tlb().flush();
    MmuResult spec = mmu.translate(base, true);
    EXPECT_EQ(spec.tlbLevel, TlbLevel::Miss);
    EXPECT_TRUE(spec.walk().completed);
    EXPECT_FALSE(spec.walk().faulted);
    EXPECT_EQ(mmu.translate(base).tlbLevel, TlbLevel::L1);
}

TEST_F(MmuTest, ResetStatsClearsEverything)
{
    mmu.translate(base);
    mmu.resetStats();
    EXPECT_EQ(mmu.tlb().lookups(), 0u);
    EXPECT_EQ(mmu.walker().walksInitiated(), 0u);
    EXPECT_EQ(mmu.pscs().hits() + mmu.pscs().misses(), 0u);
}

TEST_F(MmuTest, FlushAllForcesFullWalkAgain)
{
    mmu.translate(base);
    mmu.flushAll();
    MmuResult r = mmu.translate(base);
    EXPECT_EQ(r.tlbLevel, TlbLevel::Miss);
    EXPECT_EQ(r.walk().startLevel, 3);
}

TEST_F(MmuTest, SuperpageBackingPropagates)
{
    PhysicalMemory mem2;
    FrameAllocator alloc2(1ull << 34);
    AddressSpace space2(mem2, alloc2, PageSize::Size2M);
    CacheHierarchy hierarchy2;
    Mmu mmu2(space2, mem2, hierarchy2);
    Addr b = space2.mapRegion("data", 64ull << 20);
    MmuResult r = mmu2.translate(b + 12345);
    EXPECT_EQ(r.tlbLevel, TlbLevel::Miss);
    EXPECT_EQ(r.pageSize, PageSize::Size2M);
    EXPECT_EQ(r.walk().ptwAccesses, 3u);
    EXPECT_EQ(mmu2.translate(b + 99999).tlbLevel, TlbLevel::L1);
}
