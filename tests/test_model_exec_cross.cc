/**
 * @file
 * Cross-validation: at footprints small enough to run the real
 * algorithms, exec mode (real code, traced) and model mode (streaming
 * statistical twin) must agree on the first-order AT characteristics.
 * These are deliberately loose envelopes — the model is a statistical
 * twin, not a replay — but they catch the model drifting into a
 * different regime entirely.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace atscale;

namespace
{

RunResult
runMode(const std::string &workload, WorkloadMode mode)
{
    RunConfig config;
    config.workload = workload;
    config.footprintBytes = 96ull << 20;
    config.warmupRefs = 80'000;
    config.measureRefs = 250'000;
    config.mode = mode;
    return runExperiment(config);
}

} // namespace

class ModelExecCross : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModelExecCross, FirstOrderMetricsAgree)
{
    RunResult exec_run = runMode(GetParam(), WorkloadMode::Exec);
    RunResult model_run = runMode(GetParam(), WorkloadMode::Model);

    WcpiTerms exec_terms = wcpiTerms(exec_run.counters);
    WcpiTerms model_terms = wcpiTerms(model_run.counters);

    // Same regime of AT pressure per access. (A single exec traversal
    // like BFS visits each vertex once and so misses more than the
    // steady-state mixture the model represents; the envelope allows
    // for that.)
    double exec_miss = std::max(exec_terms.tlbMissesPerAccess, 1e-4);
    double model_miss = std::max(model_terms.tlbMissesPerAccess, 1e-4);
    EXPECT_LT(model_miss / exec_miss, 25.0) << GetParam();
    EXPECT_GT(model_miss / exec_miss, 1.0 / 25.0) << GetParam();

    // Walks stay radix-bounded in both.
    EXPECT_GE(exec_terms.ptwAccessesPerWalk, 0.9);
    EXPECT_LE(exec_terms.ptwAccessesPerWalk, 4.1);
    EXPECT_GE(model_terms.ptwAccessesPerWalk, 0.9);
    EXPECT_LE(model_terms.ptwAccessesPerWalk, 4.1);

    // CPIs within a workload-scale envelope.
    EXPECT_LT(model_run.cpi() / exec_run.cpi(), 8.0) << GetParam();
    EXPECT_GT(model_run.cpi() / exec_run.cpi(), 1.0 / 8.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SharedModes, ModelExecCross,
                         ::testing::Values("bfs-urand", "pr-kron",
                                           "cc-urand", "memcached-uniform",
                                           "mcf-rand"),
                         [](const auto &suite_info) {
                             std::string name = suite_info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });
