/**
 * @file
 * Differential + determinism battery for the shared-hierarchy
 * multi-core simulation (src/sys/shared_system.hh).
 *
 * The SharedSystem's value rests on two claims, each proven here
 * bit-for-bit rather than approximately:
 *
 *  (A) K=1 degenerates exactly: a one-core SharedSystem — shared-L3
 *      plumbing, listener fan-out, round-robin quanta, trailing
 *      shootdown flushes and all — is byte-identical to the classic
 *      private-hierarchy Platform on every EventId counter, the MMU and
 *      cache-hierarchy state hashes, and the exported RunResult JSON,
 *      across 3 workloads x 3 seeds x all translation schemes.
 *
 *  (B) K>1 is deterministic: repeated 4-core runs produce identical
 *      per-tenant counters, shootdown counts, state hashes, and export
 *      bytes, and a sweep containing multi-core specs emits the same
 *      bytes on 1 thread, on 4 threads, and with lanes on or off (the
 *      engine must run multi-core specs standalone — they consume
 *      per-tenant streams, not the lanes' shared stream).
 *
 * Plus the headline acceptance run: a 4-core kvserver mix where every
 * tenant makes progress and slab compactions raise nonzero inter-core
 * TLB shootdowns on every core.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/multicore.hh"
#include "core/platform.hh"
#include "core/run_export.hh"
#include "core/sweep.hh"
#include "mmu/scheme/registry.hh"
#include "obs/ledger.hh"
#include "perf/derived.hh"
#include "sys/shared_system.hh"
#include "workloads/registry.hh"

using namespace atscale;

namespace
{

/** Workloads spanning the translation-relevant access-pattern space. */
const char *const kWorkloads[] = {
    "memcached-uniform", // uniform random over a big hash space
    "pr-kron",           // skewed (Zipf hub) graph scan
    "kvserver-mix",      // the multi-tenant KV store (remaps included)
};

const std::uint64_t kSeeds[] = {1, 7, 1234};

RunSpec
diffSpec(const std::string &workload, std::uint64_t seed,
         const std::string &scheme)
{
    RunSpec spec;
    spec.workload = workload;
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 60'000;
    spec.seed = seed;
    spec.scheme = scheme;
    return spec;
}

/** The headline configuration: 4 tenants on one KV store. */
RunSpec
fourCoreKvSpec(const std::string &mix)
{
    RunSpec spec;
    spec.workload = "kvserver-mix";
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 10'000;
    spec.measureRefs = 40'000;
    spec.seed = 7;
    spec.cores = 4;
    spec.tenantMix = mix;
    return spec;
}

/** Scoped private cache directory (empty name disables the cache). */
class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(const std::string &name)
    {
        if (!name.empty()) {
            path_ = ::testing::TempDir() + "/" + name;
            std::filesystem::remove_all(path_);
            std::filesystem::create_directories(path_);
            setenv("ATSCALE_CACHE_DIR", path_.c_str(), 1);
        } else {
            unsetenv("ATSCALE_CACHE_DIR");
        }
    }

    ~ScopedCacheDir()
    {
        unsetenv("ATSCALE_CACHE_DIR");
        if (!path_.empty())
            std::filesystem::remove_all(path_);
    }

  private:
    std::string path_;
};

/** Final state of one simulation, everything exactness covers. */
struct RunState
{
    CounterSet counters;
    std::uint64_t mmuHash = 0;
    std::uint64_t cacheHash = 0;
    std::uint64_t footprint = 0;
    std::string json;
};

std::string
resultJson(const RunResult &result)
{
    std::ostringstream os;
    writeRunResultJson(os, result);
    return os.str();
}

/** The classic private-hierarchy path, driven by hand so the
 * microarchitectural state can be hashed before teardown (mirrors
 * runExperiment exactly). */
RunState
simulatePrivate(const RunSpec &spec)
{
    std::unique_ptr<Workload> workload = createWorkload(spec.workload);
    PlatformParams params;
    params.mmu.fastPath = params.mmu.fastPath && spec.fastPath;
    params.mmu.scheme = spec.scheme;
    Platform platform(params, spec.pageSize, workload->traits(),
                      spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);

    platform.core.run(*stream, spec.warmupRefs);
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    platform.core.run(*stream, spec.measureRefs);

    RunState state;
    state.counters = platform.core.counters();
    state.mmuHash = platform.mmu.stateHash();
    state.cacheHash = platform.hierarchy.stateHash();
    state.footprint = platform.space.footprintBytes();

    RunResult result;
    result.spec = spec;
    result.counters = state.counters;
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();
    state.json = resultJson(result);
    return state;
}

/** The same spec on a SharedSystem, state hashed per core before
 * teardown (mirrors runMulticoreExperiment exactly). */
RunState
simulateShared(const RunSpec &spec)
{
    std::unique_ptr<Workload> workload = createWorkload(spec.workload);
    SharedSystemParams params;
    params.mmu.fastPath = params.mmu.fastPath && spec.fastPath;
    params.mmu.scheme = spec.scheme;
    params.cores = spec.cores;
    SharedSystem sys(params, spec.pageSize, workload->traits(),
                     spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    wl_config.tenantMix = spec.tenantMix;
    std::vector<std::unique_ptr<RefSource>> tenants =
        workload->instantiateTenants(sys.space(), wl_config, sys.cores());
    std::vector<RefSource *> streams;
    for (const auto &tenant : tenants)
        streams.push_back(tenant.get());

    sys.run(streams, spec.warmupRefs);
    sys.resetStats();
    sys.run(streams, spec.measureRefs);

#ifndef NDEBUG
    // Debug builds: every core's measurement cycles must be fully
    // attributed, and the coherence component must equal the system's
    // own per-core shootdown account (docs/OBSERVABILITY.md).
    for (std::uint32_t k = 0; k < sys.cores(); ++k) {
        const CycleLedger &ledger = sys.core(k).ledger();
        CycleLedger::Report report =
            ledger.check(ledger.total(), sys.core(k).cycles());
        EXPECT_TRUE(report.ok) << "core " << k << ": " << report.message;
        EXPECT_EQ(ledger.component(CycleComponent::ShootdownIpi),
                  static_cast<double>(sys.shootdownCycles(k)))
            << "core " << k;
    }
#endif

    RunState state;
    state.counters = sys.core(0).counters();
    state.mmuHash = sys.mmu(0).stateHash();
    state.cacheHash = sys.hierarchy(0).stateHash();
    state.footprint = sys.space().footprintBytes();

    RunResult result;
    result.spec = spec;
    result.counters = state.counters;
    result.footprintTouched = sys.space().footprintBytes();
    result.pageTableBytes = sys.space().pageTable().nodeBytes();
    state.json = resultJson(result);
    return state;
}

void
expectIdentical(const RunState &shared, const RunState &priv,
                const std::string &label)
{
    // Every architectural counter, bit for bit.
    shared.counters.forEach([&](EventId id, const char *name, Count value) {
        EXPECT_EQ(value, priv.counters.get(id)) << label << " " << name;
    });

    // Final translation-structure and data-cache state (contents,
    // recency, replacement metadata, statistics).
    EXPECT_EQ(shared.mmuHash, priv.mmuHash) << label;
    EXPECT_EQ(shared.cacheHash, priv.cacheHash) << label;
    EXPECT_EQ(shared.footprint, priv.footprint) << label;

    // The full exported artifact.
    EXPECT_EQ(shared.json, priv.json) << label;
}

class MulticoreDiff
    : public ::testing::TestWithParam<std::tuple<const char *, std::uint64_t>>
{
};

} // namespace

// (A) One-core SharedSystem == private Platform, all schemes.
TEST_P(MulticoreDiff, SingleCoreDegeneratesBitForBit)
{
    ScopedCacheDir cache(""); // memoization off: every run executes
    const auto [workload, seed] = GetParam();
    for (const std::string &scheme : schemeNames()) {
        RunSpec spec = diffSpec(workload, seed, scheme);
        expectIdentical(simulateShared(spec), simulatePrivate(spec),
                        scheme);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MulticoreDiff,
    ::testing::Combine(::testing::ValuesIn(kWorkloads),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<MulticoreDiff::ParamType> &suite_info) {
        std::string name = std::get<0>(suite_info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_s" + std::to_string(std::get<1>(suite_info.param));
    });

// (A) The public entry points agree: runExperiment's private path and
// runMulticoreExperiment's K=1 path emit the same bytes.
TEST(MulticoreDiff, RunnerEntryPointsAgreeAtOneCore)
{
    ScopedCacheDir cache("");
    RunSpec spec = diffSpec("memcached-uniform", 7, "radix");
    RunResult priv = runExperiment(spec);
    MulticoreRunResult shared = runMulticoreExperiment(spec);
    ASSERT_EQ(shared.perTenant.size(), 1u);
    EXPECT_EQ(resultJson(priv), resultJson(shared.aggregate));
    priv.counters.forEach([&](EventId id, const char *name, Count value) {
        EXPECT_EQ(value, shared.aggregate.counters.get(id)) << name;
        EXPECT_EQ(value, shared.perTenant[0].counters.get(id)) << name;
    });
    // One core means no one to shoot down.
    EXPECT_EQ(shared.perTenant[0].shootdownsInitiated, 0u);
    EXPECT_EQ(shared.perTenant[0].shootdownsReceived, 0u);
    EXPECT_EQ(shared.perTenant[0].shootdownCycles, 0u);
}

// (B) Repeated K=4 runs are byte-identical, per tenant and in aggregate.
TEST(MulticoreDiff, FourCoreRepeatedRunsAreByteIdentical)
{
    ScopedCacheDir cache("");
    RunSpec spec = fourCoreKvSpec("zipfian,scan,churn,zipfian");
    MulticoreRunResult a = runMulticoreExperiment(spec);
    MulticoreRunResult b = runMulticoreExperiment(spec);

    ASSERT_EQ(a.perTenant.size(), 4u);
    ASSERT_EQ(b.perTenant.size(), 4u);
    EXPECT_EQ(a.stateHash, b.stateHash);
    EXPECT_EQ(resultJson(a.aggregate), resultJson(b.aggregate));
    for (std::size_t k = 0; k < 4; ++k) {
        a.perTenant[k].counters.forEach(
            [&](EventId id, const char *name, Count value) {
                EXPECT_EQ(value, b.perTenant[k].counters.get(id))
                    << "core " << k << " " << name;
            });
        EXPECT_EQ(a.perTenant[k].shootdownsInitiated,
                  b.perTenant[k].shootdownsInitiated) << k;
        EXPECT_EQ(a.perTenant[k].shootdownsReceived,
                  b.perTenant[k].shootdownsReceived) << k;
        EXPECT_EQ(a.perTenant[k].shootdownCycles,
                  b.perTenant[k].shootdownCycles) << k;
    }
}

// (B) The engine emits identical bytes for a sweep with multi-core
// specs on 1 thread, 4 threads, and with lanes forced on or off — the
// lane partition must run cores>1 specs standalone in every mode.
TEST(MulticoreDiff, SweepThreadsAndLanesDoNotPerturbMulticoreRuns)
{
    ScopedCacheDir cache("");
    unsetenv("ATSCALE_THREADS");
    unsetenv("ATSCALE_NO_LANES");
    setenv("ATSCALE_LANES", "1", 1);

    std::vector<SweepJob> jobs;
    for (std::uint32_t cores : {1u, 2u, 4u}) {
        RunSpec spec = fourCoreKvSpec("zipfian,churn");
        spec.cores = cores;
        spec.measureRefs = 20'000;
        jobs.push_back(SweepJob{spec, PlatformParams{}});
    }
    // A single-core lane-friendly spec rides along so the lane grouping
    // machinery is actually active next to the standalone units.
    jobs.push_back(SweepJob{diffSpec("pr-kron", 3, "radix"),
                            PlatformParams{}});

    auto bytes = [](const std::vector<RunResult> &results) {
        std::ostringstream os;
        writeRunResultsJson(os, results);
        return os.str();
    };

    SweepOptions serial;
    serial.threads = 1;
    std::string serial_bytes = bytes(SweepEngine(serial).run(jobs));

    SweepOptions parallel;
    parallel.threads = 4;
    std::string parallel_bytes = bytes(SweepEngine(parallel).run(jobs));
    EXPECT_EQ(serial_bytes, parallel_bytes);

    SweepOptions nolanes;
    nolanes.threads = 4;
    nolanes.lanes = false;
    std::string nolanes_bytes = bytes(SweepEngine(nolanes).run(jobs));
    EXPECT_EQ(serial_bytes, nolanes_bytes);

    unsetenv("ATSCALE_LANES");
}

// The headline acceptance run: 4 tenants on one store, every core makes
// progress, per-tenant WCPI is well-formed, and the slab compactions
// raise inter-core shootdowns on every core.
TEST(Multicore, FourCoreKvServerRaisesShootdownsOnEveryCore)
{
    ScopedCacheDir cache("");
    RunSpec spec = fourCoreKvSpec("zipfian,scan,churn,zipfian");
    MulticoreRunResult result = runMulticoreExperiment(spec);

    ASSERT_EQ(result.perTenant.size(), 4u);
    Count initiated = 0, received = 0;
    for (std::size_t k = 0; k < 4; ++k) {
        const TenantResult &tenant = result.perTenant[k];
        EXPECT_GT(tenant.instructions(), 0u) << "core " << k;
        EXPECT_GT(tenant.cycles(), 0u) << "core " << k;
        EXPECT_GT(tenant.cpi(), 0.0) << "core " << k;
        WcpiTerms wcpi = wcpiTerms(tenant.counters);
        EXPECT_GE(wcpi.wcpi(), 0.0) << "core " << k;
        // Everyone gets interrupted: any other core's compaction lands
        // here as an IPI with a nonzero stall charge.
        EXPECT_GT(tenant.shootdownsReceived, 0u) << "core " << k;
        EXPECT_GT(tenant.shootdownCycles, 0u) << "core " << k;
        initiated += tenant.shootdownsInitiated;
        received += tenant.shootdownsReceived;
    }
    // Each shootdown reaches K-1 = 3 remote cores.
    EXPECT_GT(initiated, 0u);
    EXPECT_EQ(received, initiated * 3);

    // The aggregate rolls up all four tenants.
    Count instr = 0;
    for (const TenantResult &tenant : result.perTenant)
        instr += tenant.instructions();
    EXPECT_EQ(result.aggregate.instructions(), instr);
}
