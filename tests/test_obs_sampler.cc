/**
 * @file
 * Unit tests for the windowed counter sampler and the observability flag
 * parsing in obs/session.hh.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/sampler.hh"
#include "obs/session.hh"

using namespace atscale;

namespace
{

/** A cumulative snapshot with the given instruction/cycle counts. */
CounterSet
snapshot(Count instr, Count cycles)
{
    CounterSet c;
    c.add(EventId::InstRetired, instr);
    c.add(EventId::CpuClkUnhalted, cycles);
    return c;
}

} // namespace

TEST(WindowSampler, NoWindowBeforeBoundary)
{
    WindowSampler sampler(1000);
    sampler.reset(CounterSet{});
    sampler.observe(snapshot(999, 2000));
    EXPECT_TRUE(sampler.windows().empty());
}

TEST(WindowSampler, ClosesAtBoundary)
{
    WindowSampler sampler(1000);
    sampler.reset(CounterSet{});
    sampler.observe(snapshot(1000, 2000));
    ASSERT_EQ(sampler.windows().size(), 1u);
    const WindowSample &w = sampler.windows()[0];
    EXPECT_EQ(w.index, 0u);
    EXPECT_EQ(w.instrStart, 0u);
    EXPECT_EQ(w.instrEnd, 1000u);
    EXPECT_EQ(w.instructions(), 1000u);
    EXPECT_DOUBLE_EQ(w.cpi(), 2.0);
}

TEST(WindowSampler, WholeDeltaAttributedToOneWindow)
{
    // An observation far past the boundary closes exactly one window
    // covering the whole delta: windows are only as granular as the
    // snapshots.
    WindowSampler sampler(1000);
    sampler.reset(CounterSet{});
    sampler.observe(snapshot(3500, 7000));
    ASSERT_EQ(sampler.windows().size(), 1u);
    EXPECT_EQ(sampler.windows()[0].instructions(), 3500u);

    // The next boundary is relative to the close, not a multiple of the
    // window size.
    sampler.observe(snapshot(4499, 9000));
    EXPECT_EQ(sampler.windows().size(), 1u);
    sampler.observe(snapshot(4500, 9000));
    ASSERT_EQ(sampler.windows().size(), 2u);
    EXPECT_EQ(sampler.windows()[1].instrStart, 3500u);
    EXPECT_EQ(sampler.windows()[1].instrEnd, 4500u);
}

TEST(WindowSampler, WarmupExcludedLikeCounterSetSince)
{
    // The baseline carries warm-up counts; every window delta must match
    // what CounterSet::since() would report against the same snapshots.
    CounterSet warmup = snapshot(50'000, 120'000);
    warmup.add(EventId::DtlbLoadMissesMissCausesAWalk, 777);

    WindowSampler sampler(1000);
    sampler.reset(warmup);

    CounterSet later = warmup;
    later.add(EventId::InstRetired, 1500);
    later.add(EventId::CpuClkUnhalted, 3000);
    later.add(EventId::DtlbLoadMissesMissCausesAWalk, 5);
    sampler.observe(later);

    ASSERT_EQ(sampler.windows().size(), 1u);
    const WindowSample &w = sampler.windows()[0];
    EXPECT_EQ(w.instructions(), 1500u);
    CounterSet expect = later.since(warmup);
    EXPECT_EQ(w.delta.get(EventId::InstRetired),
              expect.get(EventId::InstRetired));
    EXPECT_EQ(w.delta.get(EventId::DtlbLoadMissesMissCausesAWalk), 5u);
    // None of the 777 warm-up walks leak into the window.
    EXPECT_EQ(w.outcomes.initiated, 5u);
}

TEST(WindowSampler, ResetDropsCollectedWindows)
{
    WindowSampler sampler(100);
    sampler.reset(CounterSet{});
    sampler.observe(snapshot(100, 100));
    ASSERT_EQ(sampler.windows().size(), 1u);
    sampler.reset(snapshot(100, 100));
    EXPECT_TRUE(sampler.windows().empty());
    sampler.observe(snapshot(200, 300));
    ASSERT_EQ(sampler.windows().size(), 1u);
    EXPECT_EQ(sampler.windows()[0].instructions(), 100u);
    EXPECT_DOUBLE_EQ(sampler.windows()[0].cpi(), 2.0);
}

TEST(WindowSampler, SinksSeeEachWindowOnce)
{
    WindowSampler sampler(100);
    sampler.reset(CounterSet{});
    int calls = 0;
    Count last_end = 0;
    sampler.addSink([&](const WindowSample &w) {
        ++calls;
        last_end = w.instrEnd;
    });
    sampler.observe(snapshot(150, 100));
    sampler.observe(snapshot(180, 120));
    sampler.observe(snapshot(260, 200));
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(last_end, 260u);
}

TEST(WindowSampler, JsonlHasOneLinePerWindow)
{
    WindowSampler sampler(100);
    sampler.reset(CounterSet{});
    sampler.observe(snapshot(100, 250));
    sampler.observe(snapshot(200, 450));
    std::ostringstream os;
    sampler.exportJsonl(os);
    std::istringstream in(os.str());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        EXPECT_NE(line.find("\"window\":" + std::to_string(lines)),
                  std::string::npos);
        EXPECT_NE(line.find("\"cpi\":"), std::string::npos);
        EXPECT_NE(line.find("\"wcpi\":"), std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, 2);
}

TEST(WindowSamplerDeathTest, ZeroWindowIsFatal)
{
    EXPECT_DEATH(WindowSampler sampler(0), "window");
}

TEST(ObsFlags, ParsesAllFlags)
{
    ObsOptions options;
    std::string error;
    EXPECT_TRUE(parseObsFlag("--sample-window=200000", options, error));
    EXPECT_TRUE(parseObsFlag("--trace=/tmp/run1", options, error));
    EXPECT_TRUE(parseObsFlag("--json-out=/tmp/run1.json", options, error));
    EXPECT_TRUE(parseObsFlag("--trace-capacity=4096", options, error));
    EXPECT_EQ(options.sampleWindow, 200'000u);
    EXPECT_EQ(options.tracePrefix, "/tmp/run1");
    EXPECT_EQ(options.jsonOut, "/tmp/run1.json");
    EXPECT_EQ(options.traceCapacity, 4096u);
    EXPECT_TRUE(options.any());
}

TEST(ObsFlags, MalformedFlagSetsError)
{
    ObsOptions options;
    std::string error;
    EXPECT_FALSE(parseObsFlag("--sample-window=abc", options, error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(parseObsFlag("--sample-window", options, error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(parseObsFlag("--trace=", options, error));
    EXPECT_FALSE(error.empty());
}

TEST(ObsFlags, UnrelatedArgumentLeavesErrorEmpty)
{
    ObsOptions options;
    std::string error;
    EXPECT_FALSE(parseObsFlag("--footprint=1G", options, error));
    EXPECT_TRUE(error.empty());
    EXPECT_FALSE(options.any());
}

TEST(ObsSession, DisabledSessionHasNoInstruments)
{
    ObsSession session(ObsOptions{});
    EXPECT_FALSE(session.enabled());
    EXPECT_FALSE(session.sampling());
    EXPECT_FALSE(session.tracing());
    EXPECT_EQ(session.sampler(), nullptr);
    EXPECT_EQ(session.tracer(), nullptr);
    EXPECT_EQ(session.chunkRefs(), 0u);
}

TEST(ObsSession, SamplingSessionChunksTheRun)
{
    ObsOptions options;
    options.sampleWindow = 100'000;
    ObsSession session(options);
    EXPECT_TRUE(session.sampling());
    ASSERT_NE(session.sampler(), nullptr);
    Count chunk = session.chunkRefs();
    EXPECT_GT(chunk, 0u);
    EXPECT_LE(chunk, 100'000u);
}
