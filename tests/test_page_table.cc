/**
 * @file
 * Unit tests for PTE encoding and the 4-level radix page table.
 */

#include <gtest/gtest.h>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "vm/page_table.hh"
#include "vm/pte.hh"

using namespace atscale;

TEST(Pte, PackUnpackRoundTrip)
{
    Pte pte;
    pte.present = true;
    pte.accessed = true;
    pte.dirty = false;
    pte.pageSize = true;
    pte.addr = 0x123456789000ull;
    Pte copy = Pte::unpack(pte.pack());
    EXPECT_EQ(copy.present, pte.present);
    EXPECT_EQ(copy.accessed, pte.accessed);
    EXPECT_EQ(copy.dirty, pte.dirty);
    EXPECT_EQ(copy.pageSize, pte.pageSize);
    EXPECT_EQ(copy.addr, pte.addr);
}

TEST(Pte, ZeroIsNotPresent)
{
    EXPECT_FALSE(Pte::unpack(0).present);
}

TEST(Pte, ArchitecturalBitPositions)
{
    Pte pte;
    pte.present = true;
    pte.pageSize = true;
    pte.addr = 0xabc000;
    std::uint64_t raw = pte.pack();
    EXPECT_EQ(raw & 1, 1u);            // P is bit 0
    EXPECT_EQ((raw >> 7) & 1, 1u);     // PS is bit 7
    EXPECT_EQ((raw >> 12) & 0xabcull, 0xabcull);
}

class PageTableTest : public ::testing::Test
{
  protected:
    PhysicalMemory mem;
    FrameAllocator alloc{1ull << 30};
    PageTable table{mem, alloc};
};

TEST_F(PageTableTest, UnmappedTranslatesInvalid)
{
    EXPECT_FALSE(table.translate(0x1234000).valid);
}

TEST_F(PageTableTest, Map4KTranslates)
{
    table.map(0x7f0000123000ull, 0xabc000, PageSize::Size4K);
    Translation t = table.translate(0x7f0000123456ull);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pageSize, PageSize::Size4K);
    EXPECT_EQ(t.frame, 0xabc000u);
    EXPECT_EQ(t.pageBase, 0x7f0000123000ull);
    EXPECT_EQ(t.paddr(0x7f0000123456ull), 0xabc456u);
    // Sibling page still unmapped.
    EXPECT_FALSE(table.translate(0x7f0000124000ull).valid);
}

TEST_F(PageTableTest, MapSuperpages)
{
    table.map(0x40000000ull, 0x80000000ull, PageSize::Size1G);
    table.map(0x80200000ull, 0x10200000ull, PageSize::Size2M);

    Translation gig = table.translate(0x40000000ull + 123456789);
    ASSERT_TRUE(gig.valid);
    EXPECT_EQ(gig.pageSize, PageSize::Size1G);
    EXPECT_EQ(gig.paddr(0x40000000ull + 123456789),
              0x80000000ull + 123456789);

    Translation two = table.translate(0x80200000ull + 0x12345);
    ASSERT_TRUE(two.valid);
    EXPECT_EQ(two.pageSize, PageSize::Size2M);
    EXPECT_EQ(two.frame, 0x10200000u);
}

TEST_F(PageTableTest, NodeCountGrowsAsExpected)
{
    // Root only at first.
    EXPECT_EQ(table.nodeCount(), 1u);
    // One 4K mapping needs PML4 -> PDPT -> PD -> PT: 3 new nodes.
    table.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_EQ(table.nodeCount(), 4u);
    // A second mapping in the same PT adds nothing.
    table.map(0x2000, 0x3000, PageSize::Size4K);
    EXPECT_EQ(table.nodeCount(), 4u);
    // A mapping 2 MiB away needs a new PT only.
    table.map(0x200000, 0x4000, PageSize::Size4K);
    EXPECT_EQ(table.nodeCount(), 5u);
    // A 1G mapping in a fresh PML4 slot needs nothing below the PDPT.
    table.map(1ull << 39, 1ull << 30, PageSize::Size1G);
    EXPECT_EQ(table.nodeCount(), 6u);
    EXPECT_EQ(table.nodeBytes(), 6 * pageSize4K);
}

TEST_F(PageTableTest, EntryAddrWalksTheRadixTree)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    // The PML4 entry lives in the root frame at the PML4 index.
    PhysAddr pml4e = table.entryAddr(va, 3);
    EXPECT_EQ(pml4e, table.root() + ptIndex(va, 3) * pteBytes);
    // Each level's entry must be present and point to the next node.
    for (int level = 3; level > 0; --level) {
        PhysAddr entry = table.entryAddr(va, level);
        ASSERT_NE(entry, 0u);
        Pte pte = Pte::unpack(mem.read64(entry));
        EXPECT_TRUE(pte.present);
    }
    // Leaf PTE holds the frame.
    Pte leaf = Pte::unpack(mem.read64(table.entryAddr(va, 0)));
    EXPECT_TRUE(leaf.present);
    EXPECT_EQ(leaf.addr, 0xabc000u);
    // entryAddr below a missing path returns 0.
    EXPECT_EQ(table.entryAddr(0x5000000000ull, 0), 0u);
}

using PageTableDeathTest = PageTableTest;

TEST_F(PageTableDeathTest, DoubleMapPanics)
{
    table.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_DEATH(table.map(0x1000, 0x9000, PageSize::Size4K), "double map");
}

TEST_F(PageTableDeathTest, MisalignedMapPanics)
{
    EXPECT_DEATH(table.map(0x1234, 0x2000, PageSize::Size4K), "unaligned");
    EXPECT_DEATH(table.map(0x200000, 0x1000, PageSize::Size2M), "unaligned");
}

TEST_F(PageTableDeathTest, SuperpageOverIntermediatePanics)
{
    // 4K mapping creates a PD/PT under the 1G-aligned region...
    table.map(0x40000000ull, 0x1000, PageSize::Size4K);
    // ...so a 1G leaf over the same region must conflict.
    EXPECT_DEATH(table.map(0x40000000ull, 0x80000000ull, PageSize::Size1G),
                 "double map|conflict");
}

/** Property sweep: map/translate round-trips at every page size. */
class PageSizeRoundTrip : public ::testing::TestWithParam<PageSize>
{
};

TEST_P(PageSizeRoundTrip, MapTranslateRoundTrip)
{
    PhysicalMemory mem;
    FrameAllocator alloc(1ull << 38);
    PageTable table(mem, alloc);
    PageSize size = GetParam();
    std::uint64_t page = pageBytes(size);

    for (int i = 0; i < 8; ++i) {
        Addr va = (1ull << 40) + static_cast<Addr>(i) * 3 * page;
        PhysAddr frame = alloc.allocate(page);
        table.map(va, frame, size);
        Translation t = table.translate(va + page / 2);
        ASSERT_TRUE(t.valid);
        EXPECT_EQ(t.pageSize, size);
        EXPECT_EQ(t.paddr(va + page / 2), frame + page / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, PageSizeRoundTrip,
                         ::testing::Values(PageSize::Size4K, PageSize::Size2M,
                                           PageSize::Size1G));
