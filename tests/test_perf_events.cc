/**
 * @file
 * Unit tests for the perf event registry, counter sets, and the paper's
 * derived-metric arithmetic (Table VI, Equation 1, Table V proxies).
 */

#include <gtest/gtest.h>

#include "perf/counter_set.hh"
#include "perf/derived.hh"
#include "perf/event.hh"

using namespace atscale;

TEST(Events, NamesRoundTrip)
{
    for (int i = 0; i < numEvents; ++i) {
        auto id = static_cast<EventId>(i);
        auto back = eventFromName(eventName(id));
        ASSERT_TRUE(back.has_value()) << eventName(id);
        EXPECT_EQ(*back, id);
    }
}

TEST(Events, UnknownNameIsNullopt)
{
    EXPECT_FALSE(eventFromName("not.an.event").has_value());
}

TEST(Events, HaswellNames)
{
    EXPECT_STREQ(eventName(EventId::DtlbLoadMissesMissCausesAWalk),
                 "dtlb_load_misses.miss_causes_a_walk");
    EXPECT_STREQ(eventName(EventId::PageWalkerLoadsDtlbL3),
                 "page_walker_loads.dtlb_l3");
    EXPECT_STREQ(eventName(EventId::MemUopsRetiredStlbMissStores),
                 "mem_uops_retired.stlb_miss_stores");
}

TEST(CounterSet, AddGetResetSince)
{
    CounterSet c;
    c.add(EventId::InstRetired, 100);
    c.add(EventId::InstRetired);
    EXPECT_EQ(c.get(EventId::InstRetired), 101u);

    CounterSet snapshot = c;
    c.add(EventId::InstRetired, 9);
    EXPECT_EQ(c.since(snapshot).get(EventId::InstRetired), 9u);

    CounterSet sum;
    sum += c;
    sum += c;
    EXPECT_EQ(sum.get(EventId::InstRetired), 220u);

    c.reset();
    EXPECT_EQ(c.get(EventId::InstRetired), 0u);
}

namespace
{

/** A synthetic counter bank with known, self-consistent values. */
CounterSet
syntheticCounters()
{
    CounterSet c;
    c.add(EventId::CpuClkUnhalted, 1'000'000);
    c.add(EventId::InstRetired, 500'000);
    c.add(EventId::MemUopsRetiredAllLoads, 150'000);
    c.add(EventId::MemUopsRetiredAllStores, 50'000);
    c.add(EventId::DtlbLoadMissesMissCausesAWalk, 8'000);
    c.add(EventId::DtlbStoreMissesMissCausesAWalk, 2'000);
    c.add(EventId::DtlbLoadMissesWalkCompleted, 7'000);
    c.add(EventId::DtlbStoreMissesWalkCompleted, 1'500);
    c.add(EventId::MemUopsRetiredStlbMissLoads, 6'000);
    c.add(EventId::MemUopsRetiredStlbMissStores, 1'000);
    c.add(EventId::DtlbLoadMissesWalkDuration, 320'000);
    c.add(EventId::DtlbStoreMissesWalkDuration, 80'000);
    c.add(EventId::PageWalkerLoadsDtlbL1, 6'000);
    c.add(EventId::PageWalkerLoadsDtlbL2, 4'000);
    c.add(EventId::PageWalkerLoadsDtlbL3, 3'000);
    c.add(EventId::PageWalkerLoadsDtlbMemory, 2'000);
    c.add(EventId::MachineClearsCount, 50);
    return c;
}

} // namespace

TEST(Derived, TableVIOutcomes)
{
    WalkOutcomes o = walkOutcomes(syntheticCounters());
    EXPECT_EQ(o.initiated, 10'000u);
    EXPECT_EQ(o.completed, 8'500u);
    EXPECT_EQ(o.retired, 7'000u);
    EXPECT_EQ(o.aborted, 1'500u);
    EXPECT_EQ(o.wrongPath, 1'500u);
    EXPECT_DOUBLE_EQ(o.abortedFraction(), 0.15);
    EXPECT_DOUBLE_EQ(o.wrongPathFraction(), 0.15);
    EXPECT_DOUBLE_EQ(o.nonRetiredFraction(), 0.30);
}

TEST(Derived, EquationOneTermsAndProduct)
{
    WcpiTerms terms = wcpiTerms(syntheticCounters());
    EXPECT_DOUBLE_EQ(terms.accessesPerInstr, 200'000.0 / 500'000.0);
    EXPECT_DOUBLE_EQ(terms.tlbMissesPerAccess, 10'000.0 / 200'000.0);
    EXPECT_DOUBLE_EQ(terms.ptwAccessesPerWalk, 15'000.0 / 10'000.0);
    EXPECT_DOUBLE_EQ(terms.walkCyclesPerPtwAccess, 400'000.0 / 15'000.0);
    // The Equation-1 identity: the product of the four terms IS walk
    // cycles per instruction.
    EXPECT_NEAR(terms.wcpi(), 400'000.0 / 500'000.0, 1e-12);
}

TEST(Derived, ProxyMetrics)
{
    ProxyMetrics proxy = proxyMetrics(syntheticCounters());
    EXPECT_DOUBLE_EQ(proxy.tlbMissesPerKiloAccess, 50.0);
    EXPECT_DOUBLE_EQ(proxy.tlbMissesPerKiloInstr, 20.0);
    EXPECT_DOUBLE_EQ(proxy.walkCycleFraction, 0.4);
    EXPECT_DOUBLE_EQ(proxy.walkCyclesPerAccess, 2.0);
    EXPECT_DOUBLE_EQ(proxy.walkCyclesPerInstr, 0.8);
}

TEST(Derived, PteLocationsSumToOne)
{
    PteLocations loc = pteLocations(syntheticCounters());
    EXPECT_NEAR(loc.l1 + loc.l2 + loc.l3 + loc.memory, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(loc.l1, 0.4);
    EXPECT_DOUBLE_EQ(loc.memory, 2.0 / 15.0);
}

TEST(Derived, MachineClears)
{
    EXPECT_DOUBLE_EQ(machineClearsPerKiloInstr(syntheticCounters()), 0.1);
}

TEST(Derived, EmptyCountersDoNotDivideByZero)
{
    CounterSet empty;
    WcpiTerms terms = wcpiTerms(empty);
    EXPECT_DOUBLE_EQ(terms.wcpi(), 0.0);
    ProxyMetrics proxy = proxyMetrics(empty);
    EXPECT_DOUBLE_EQ(proxy.walkCycleFraction, 0.0);
    PteLocations loc = pteLocations(empty);
    EXPECT_DOUBLE_EQ(loc.l1 + loc.l2 + loc.l3 + loc.memory, 0.0);
    WalkOutcomes o = walkOutcomes(empty);
    EXPECT_DOUBLE_EQ(o.nonRetiredFraction(), 0.0);
}
