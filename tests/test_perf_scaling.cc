/**
 * @file
 * Unit tests for the pure counter arithmetic the validation loop leans
 * on: multiplex scaling (time_enabled / time_running extrapolation) and
 * the Eq-1 WCPI decomposition on hand-computed counter vectors.
 */

#include <gtest/gtest.h>

#include "perf/derived.hh"
#include "perf/linux_backend.hh"

using namespace atscale;

TEST(MultiplexScaling, ZeroRunningReadsAsZero)
{
    // Never scheduled on a PMC: no information, not infinity.
    EXPECT_EQ(scaledCounterValue(12345, 1'000'000, 0), 0u);
}

TEST(MultiplexScaling, FullyScheduledIsIdentity)
{
    EXPECT_EQ(scaledCounterValue(777, 1'000'000, 1'000'000), 777u);
    // running > enabled (clock-granularity skew) must not shrink it.
    EXPECT_EQ(scaledCounterValue(777, 1'000'000, 1'000'001), 777u);
}

TEST(MultiplexScaling, HalfScheduledExtrapolatesDouble)
{
    EXPECT_EQ(scaledCounterValue(500, 1'000'000, 500'000), 1000u);
}

TEST(MultiplexScaling, QuarterScheduledExtrapolatesFourfold)
{
    EXPECT_EQ(scaledCounterValue(250, 2'000'000, 500'000), 1000u);
}

TEST(MultiplexScaling, ZeroValueStaysZero)
{
    EXPECT_EQ(scaledCounterValue(0, 1'000'000, 10), 0u);
}

namespace
{

/**
 * A hand-computed counter vector with clean ratios:
 *   2,000,000 instr, 1,000,000 cycles burned,
 *   500,000 accesses (400k loads + 100k stores)   -> 0.25 acc/instr
 *   10,000 walks (8k load + 2k store)             -> 0.02 miss/acc
 *   30,000 PTW accesses (10k+12k+5k+3k)           -> 3 ptw/walk
 *   240,000 walk cycles (200k load + 40k store)   -> 8 cyc/ptw
 *   => WCPI = 0.25 * 0.02 * 3 * 8 = 0.12
 */
CounterSet
handComputedCounters()
{
    CounterSet c;
    c.add(EventId::InstRetired, 2'000'000);
    c.add(EventId::CpuClkUnhalted, 1'000'000);
    c.add(EventId::MemUopsRetiredAllLoads, 400'000);
    c.add(EventId::MemUopsRetiredAllStores, 100'000);
    c.add(EventId::DtlbLoadMissesMissCausesAWalk, 8'000);
    c.add(EventId::DtlbStoreMissesMissCausesAWalk, 2'000);
    c.add(EventId::DtlbLoadMissesWalkCompleted, 6'000);
    c.add(EventId::DtlbStoreMissesWalkCompleted, 1'500);
    c.add(EventId::MemUopsRetiredStlbMissLoads, 5'000);
    c.add(EventId::MemUopsRetiredStlbMissStores, 1'000);
    c.add(EventId::DtlbLoadMissesWalkDuration, 200'000);
    c.add(EventId::DtlbStoreMissesWalkDuration, 40'000);
    c.add(EventId::PageWalkerLoadsDtlbL1, 10'000);
    c.add(EventId::PageWalkerLoadsDtlbL2, 12'000);
    c.add(EventId::PageWalkerLoadsDtlbL3, 5'000);
    c.add(EventId::PageWalkerLoadsDtlbMemory, 3'000);
    return c;
}

} // namespace

TEST(Eq1Decomposition, TermsMatchHandComputation)
{
    WcpiTerms terms = wcpiTerms(handComputedCounters());
    EXPECT_DOUBLE_EQ(terms.accessesPerInstr, 0.25);
    EXPECT_DOUBLE_EQ(terms.tlbMissesPerAccess, 0.02);
    EXPECT_DOUBLE_EQ(terms.ptwAccessesPerWalk, 3.0);
    EXPECT_DOUBLE_EQ(terms.walkCyclesPerPtwAccess, 8.0);
    EXPECT_DOUBLE_EQ(terms.wcpi(), 0.12);
}

TEST(Eq1Decomposition, ProductEqualsDirectWalkCyclesPerInstr)
{
    // Eq-1's defining identity: the four-term product telescopes into
    // walk cycles / instruction, the quantity proxyMetrics reads
    // directly off the counters.
    CounterSet c = handComputedCounters();
    EXPECT_DOUBLE_EQ(wcpiTerms(c).wcpi(),
                     proxyMetrics(c).walkCyclesPerInstr);
}

TEST(Eq1Decomposition, ProxyMetricsMatchHandComputation)
{
    ProxyMetrics proxy = proxyMetrics(handComputedCounters());
    EXPECT_DOUBLE_EQ(proxy.tlbMissesPerKiloAccess, 20.0);
    EXPECT_DOUBLE_EQ(proxy.tlbMissesPerKiloInstr, 5.0);
    EXPECT_DOUBLE_EQ(proxy.walkCycleFraction, 0.24);
    EXPECT_DOUBLE_EQ(proxy.walkCyclesPerAccess, 0.48);
    EXPECT_DOUBLE_EQ(proxy.walkCyclesPerInstr, 0.12);
}

TEST(Eq1Decomposition, WalkOutcomesMatchHandComputation)
{
    WalkOutcomes outcomes = walkOutcomes(handComputedCounters());
    EXPECT_EQ(outcomes.initiated, 10'000u);
    EXPECT_EQ(outcomes.completed, 7'500u);
    EXPECT_EQ(outcomes.retired, 6'000u);
    EXPECT_EQ(outcomes.aborted, 2'500u);
    EXPECT_EQ(outcomes.wrongPath, 1'500u);
    EXPECT_DOUBLE_EQ(outcomes.abortedFraction(), 0.25);
    EXPECT_DOUBLE_EQ(outcomes.wrongPathFraction(), 0.15);
    EXPECT_DOUBLE_EQ(outcomes.nonRetiredFraction(), 0.40);
}

TEST(Eq1Decomposition, PteLocationsMatchHandComputation)
{
    PteLocations loc = pteLocations(handComputedCounters());
    EXPECT_DOUBLE_EQ(loc.l1, 10'000.0 / 30'000.0);
    EXPECT_DOUBLE_EQ(loc.l2, 12'000.0 / 30'000.0);
    EXPECT_DOUBLE_EQ(loc.l3, 5'000.0 / 30'000.0);
    EXPECT_DOUBLE_EQ(loc.memory, 3'000.0 / 30'000.0);
}

TEST(Eq1Decomposition, EmptyCountersYieldZerosNotNans)
{
    CounterSet empty;
    WcpiTerms terms = wcpiTerms(empty);
    EXPECT_EQ(terms.accessesPerInstr, 0.0);
    EXPECT_EQ(terms.tlbMissesPerAccess, 0.0);
    EXPECT_EQ(terms.ptwAccessesPerWalk, 0.0);
    EXPECT_EQ(terms.walkCyclesPerPtwAccess, 0.0);
    EXPECT_EQ(terms.wcpi(), 0.0);
    ProxyMetrics proxy = proxyMetrics(empty);
    EXPECT_EQ(proxy.walkCycleFraction, 0.0);
}
