/**
 * @file
 * Unit tests for the sparse simulated physical memory.
 */

#include <gtest/gtest.h>

#include "mem/phys_mem.hh"

using namespace atscale;

TEST(PhysMem, UnwrittenReadsAreZero)
{
    PhysicalMemory mem;
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.read64(0xdeadb000), 0u);
    EXPECT_EQ(mem.materializedFrames(), 0u);
}

TEST(PhysMem, WriteThenRead)
{
    PhysicalMemory mem;
    mem.write64(0x2008, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(0x2008), 0x1122334455667788ull);
    // Neighbouring words still zero.
    EXPECT_EQ(mem.read64(0x2000), 0u);
    EXPECT_EQ(mem.read64(0x2010), 0u);
    EXPECT_EQ(mem.materializedFrames(), 1u);
}

TEST(PhysMem, FramesAreSparse)
{
    PhysicalMemory mem;
    mem.write64(0x0, 1);
    mem.write64(1ull << 40, 2); // 1 TiB away
    EXPECT_EQ(mem.materializedFrames(), 2u);
    EXPECT_EQ(mem.read64(0x0), 1u);
    EXPECT_EQ(mem.read64(1ull << 40), 2u);
}

TEST(PhysMem, FrameBoundaries)
{
    PhysicalMemory mem;
    // Last word of one frame and first of the next.
    mem.write64(0x1ff8, 0xa);
    mem.write64(0x2000, 0xb);
    EXPECT_EQ(mem.read64(0x1ff8), 0xau);
    EXPECT_EQ(mem.read64(0x2000), 0xbu);
    EXPECT_EQ(mem.materializedFrames(), 2u);
}

TEST(PhysMem, OverwriteInPlace)
{
    PhysicalMemory mem;
    mem.write64(0x3000, 1);
    mem.write64(0x3000, 2);
    EXPECT_EQ(mem.read64(0x3000), 2u);
    EXPECT_EQ(mem.materializedFrames(), 1u);
}

TEST(PhysMem, ClearDropsEverything)
{
    PhysicalMemory mem;
    mem.write64(0x1000, 7);
    mem.clear();
    EXPECT_EQ(mem.materializedFrames(), 0u);
    EXPECT_EQ(mem.read64(0x1000), 0u);
}

TEST(PhysMemDeathTest, MisalignedAccessPanics)
{
    PhysicalMemory mem;
    EXPECT_DEATH(mem.read64(0x1001), "misaligned");
    EXPECT_DEATH(mem.write64(0x1004 | 1, 0), "misaligned");
}
