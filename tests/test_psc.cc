/**
 * @file
 * Unit tests for the paging-structure caches.
 */

#include <gtest/gtest.h>

#include "mmu/paging_structure_cache.hh"

using namespace atscale;

namespace
{
constexpr PhysAddr cr3 = 0x1000;
} // namespace

TEST(Psc, ColdProbeStartsAtRoot)
{
    PagingStructureCaches pscs;
    PscProbeResult r = pscs.probe(0x12345678000ull, cr3);
    EXPECT_EQ(r.startLevel, 3);
    EXPECT_EQ(r.node, cr3);
    EXPECT_EQ(pscs.misses(), 1u);
}

TEST(Psc, DeepestHitWins)
{
    PagingStructureCaches pscs;
    Addr va = 0x7f8000200000ull;
    pscs.fill(va, 3, 0xaaaa000); // PML4E -> PDPT node
    pscs.fill(va, 2, 0xbbbb000); // PDPTE -> PD node
    pscs.fill(va, 1, 0xcccc000); // PDE   -> PT node

    PscProbeResult r = pscs.probe(va, cr3);
    EXPECT_EQ(r.startLevel, 0); // PDE cache hit: only the leaf remains
    EXPECT_EQ(r.node, 0xcccc000u);
    EXPECT_EQ(pscs.levelHits(1), 1u);
}

TEST(Psc, PrefixSharingMatchesRegionSizes)
{
    PagingStructureCaches pscs;
    Addr va = 0x7f8000200000ull;
    pscs.fill(va, 1, 0xcccc000);

    // Same 2 MiB region: hits the PDE cache.
    EXPECT_EQ(pscs.probe(va + 0x1fffff, cr3).startLevel, 0);
    // Next 2 MiB region: PDE tag differs, full walk.
    EXPECT_EQ(pscs.probe(va + pageSize2M, cr3).startLevel, 3);

    pscs.fill(va, 2, 0xbbbb000);
    // Next 2 MiB region now hits the PDPTE cache (same 1 GiB region).
    PscProbeResult r = pscs.probe(va + pageSize2M, cr3);
    EXPECT_EQ(r.startLevel, 1);
    EXPECT_EQ(r.node, 0xbbbb000u);
}

TEST(Psc, LruWithinArray)
{
    PscParams params;
    params.pdeEntries = 2;
    PagingStructureCaches pscs(params);
    pscs.fill(0x0ull, 1, 0x1000);
    pscs.fill(1ull << 21, 1, 0x2000);
    // Touch the first, then insert a third: the second is the victim.
    pscs.probe(0x0ull, cr3);
    pscs.fill(2ull << 21, 1, 0x3000);
    EXPECT_EQ(pscs.probe(0x0ull, cr3).startLevel, 0);
    EXPECT_EQ(pscs.probe(1ull << 21, cr3).startLevel, 3);
    EXPECT_EQ(pscs.probe(2ull << 21, cr3).startLevel, 0);
}

TEST(Psc, FillUpdatesExistingEntry)
{
    PagingStructureCaches pscs;
    pscs.fill(0x0ull, 1, 0x1000);
    pscs.fill(0x0ull, 1, 0x9000); // remap
    EXPECT_EQ(pscs.probe(0x0ull, cr3).node, 0x9000u);
}

TEST(Psc, DisabledCachesNeverHit)
{
    PscParams params;
    params.enabled = false;
    PagingStructureCaches pscs(params);
    pscs.fill(0x0ull, 1, 0x1000);
    PscProbeResult r = pscs.probe(0x0ull, cr3);
    EXPECT_EQ(r.startLevel, 3);
    EXPECT_EQ(pscs.hits(), 0u);
    EXPECT_EQ(pscs.misses(), 0u);
}

TEST(Psc, FlushAndStats)
{
    PagingStructureCaches pscs;
    pscs.fill(0x0ull, 2, 0x1000);
    pscs.probe(0x0ull, cr3);
    EXPECT_EQ(pscs.hits(), 1u);
    pscs.flush();
    EXPECT_EQ(pscs.hits(), 0u);
    EXPECT_EQ(pscs.probe(0x0ull, cr3).startLevel, 3);
}

TEST(PscDeathTest, BadLevels)
{
    PagingStructureCaches pscs;
    EXPECT_DEATH(pscs.fill(0, 0, 0x1000), "bad level");
    EXPECT_DEATH(pscs.fill(0, 4, 0x1000), "bad level");
    EXPECT_DEATH(pscs.levelHits(0), "out of range");
}
